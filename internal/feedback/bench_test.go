package feedback

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

func benchRecords(n int) []Feedback {
	recs := make([]Feedback, n)
	for i := range recs {
		recs[i] = Feedback{
			Time:   time.Unix(int64(i), 0).UTC(),
			Server: "server",
			Client: EntityID(fmt.Sprintf("client-%d", i%50)),
			Rating: Positive,
		}
	}
	return recs
}

func BenchmarkHistoryAppend(b *testing.B) {
	h := NewHistory("s")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := h.AppendOutcome("c", i%10 != 0, time.Unix(int64(i), 0)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWindowCountsFromEnd(b *testing.B) {
	h := NewHistory("s")
	for i := 0; i < 100000; i++ {
		if err := h.AppendOutcome("c", i%10 != 0, time.Unix(int64(i), 0)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.WindowCountsFromEnd(10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCollusionReorder(b *testing.B) {
	h := NewHistory("server")
	for _, f := range benchRecords(10000) {
		if err := h.Append(f); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.CollusionOrder()
	}
}

func BenchmarkJSONCodec(b *testing.B) {
	recs := benchRecords(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteJSONLines(&buf, recs); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadJSONLines(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinaryCodec(b *testing.B) {
	recs := benchRecords(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, err := EncodeBinaryAll(recs)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeBinaryAll(buf); err != nil {
			b.Fatal(err)
		}
	}
}
