// Monitoring: the continuous-deployment shape of the two-phase mechanism.
// A Monitor consumes a provider's transaction stream, re-assessing every 10
// transactions. The provider behaves honestly, turns malicious at
// transaction 500, and — once flagged and starved of victims — returns to
// honest behaviour; the monitor's alert log captures both transitions.
package main

import (
	"fmt"
	"log"
	"time"

	"honestplayer"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tester, err := honestplayer.NewMultiTester(honestplayer.TesterConfig{
		// Continuous re-assessment needs the familywise correction; see
		// the ablation-correction experiment.
		FamilywiseCorrection: true,
	})
	if err != nil {
		return err
	}
	assessor, err := honestplayer.NewTwoPhase(tester, honestplayer.Average{})
	if err != nil {
		return err
	}
	monitor, err := honestplayer.NewMonitor(assessor, "provider-7", 10, 0.9)
	if err != nil {
		return err
	}

	rng := honestplayer.NewRNG(23)
	outcome := func(i int) bool {
		switch {
		case i < 500:
			return rng.Bernoulli(0.95) // honest
		case i < 540:
			return false // attack burst
		default:
			return rng.Bernoulli(0.95) // back to honest (laundering attempt)
		}
	}
	for i := 0; i < 1600; i++ {
		a, err := monitor.Record("client", outcome(i), time.Unix(int64(i), 0))
		if err != nil {
			return err
		}
		_ = a
	}

	fmt.Printf("stream of %d transactions processed; final status: suspicious=%v\n",
		monitor.History().Len(), monitor.Suspicious())
	fmt.Println("alert log:")
	for _, alert := range monitor.Alerts() {
		status := "cleared"
		if alert.Suspicious {
			status = "SUSPICIOUS"
		}
		fmt.Printf("  txn %4d: %-10s (trust so far %.3f)\n",
			alert.Transaction, status, alert.Assessment.Trust)
	}
	fmt.Println()
	fmt.Println("The burst at transaction 500 is flagged within a few windows. Note how")
	fmt.Println("long the flag persists after the attacker resumes honest behaviour: the")
	fmt.Println("bad windows stay in the recent suffixes until they age out — reputation")
	fmt.Println("laundering is slow by construction.")
	return nil
}
