package behavior

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"honestplayer/internal/feedback"
	"honestplayer/internal/stats"
)

// This file implements the incremental assessment engine's phase-1 side: an
// Accumulator that consumes one feedback at a time in amortised O(1) and can
// reproduce, bit for bit, what the batch testers would compute over the same
// history — without ever walking the history again.
//
// The difficulty is that the testers end-align their windows: at history
// length n the windows cover [n mod m + i·m, n mod m + (i+1)·m), so a single
// append shifts every window boundary. The accumulator exploits that there
// are only m possible alignments ("phases") and that each append completes
// exactly one window — the window [n−m, n) of phase n mod m. Maintaining all
// m phase families therefore costs O(1) per append: one histogram bump in
// one phase, plus a checkpoint copy of that phase's running histogram every
// stride boundary (amortised O(m/strideWindows)).
//
// At read time the phase selected by the current length holds exactly the
// window table the batch tester would have built, and every multi-test
// suffix starts at a stride boundary of that phase, so its histogram is the
// O(m) difference between the running histogram and a checkpoint. The
// per-suffix distribution test then reuses the exact arithmetic of
// testHistogram, with the two expensive pure steps (binomial PMF
// construction and threshold calibration) memoised on their exact inputs so
// repeated reads over a drifting p̂ skip the Lgamma-heavy rebuilds.
//
// The collusion testers re-order each suffix by feedback issuer before
// windowing, which no fixed window table survives. For those the accumulator
// maintains a per-client index (global record positions plus a good-count
// prefix, O(1) per append) and computes each re-ordered window count
// directly from group overlap arithmetic — O(clients·log n + windows) per
// suffix instead of materialising and re-scanning the re-ordered history.

// accMode selects which batch tester the accumulator reproduces.
type accMode int

const (
	accSingle accMode = iota
	accMulti
	accMultiNaive
	accCollusion
	accCollusionMulti
)

// Binomial PMF cache geometry. The cache is an open-addressing table whose
// payloads live in one flat float64 arena (slot i's PMF occupies the i-th
// stride), so it carries no pointers for the garbage collector to scan and a
// hit is one key probe plus a contiguous slice view. A read over a w-window
// history touches ≈w distinct p̂ values and the drift of p̂ under appends
// keeps minting nearby ones, so the table grows (doubling up to the
// Config.ArenaCap-derived size, DefaultArenaCap entries unless overridden)
// while its load stays under half. At the size cap the table runs two
// generations instead of overwriting in place: when load would pass half, the
// current generation retires to prev and lookups that miss the fresh table
// migrate their entry back with a copy — an order of magnitude cheaper than a
// Lgamma/Exp refill — while entries idle for a whole generation fall off.
// The cached PMF is a pure function of its key, so any eviction or migration
// policy is result-neutral.
// DefaultArenaCap is the default PMF-arena size cap in entries per
// generation (2^15), the size the engine shipped with before the cap became
// configurable. See Config.ArenaCap for the memory arithmetic.
const DefaultArenaCap = 1 << 15

const (
	binoMinBits = 10
	// binoCapMinBits floors the configured cap: a generation never runs
	// smaller than one probe window, or every miss would thrash the whole
	// table.
	binoCapMinBits = 4
	binoProbeLimit = 16

	// binoEmptyKey marks a free slot. Keys are Float64bits of p̂ ∈ [0, 1],
	// whose bit patterns never exceed 0x3FF0…0, so all-ones cannot collide
	// with a real key.
	binoEmptyKey = ^uint64(0)

	// collusionMemoLimit bounds the collusion paths' *Binomial memo map;
	// at the limit it is dropped and rebuilt (plain epoch reset).
	collusionMemoLimit = 1 << 15
)

// binoCache is the PMF arena (see the geometry comment above the constants).
type binoCache struct {
	bits    int
	maxBits int       // size cap from Config.ArenaCap; grow stops here
	stride  int       // m + 1 floats per slot
	keys    []uint64  // len 1<<bits; binoEmptyKey marks empty
	pmfs    []float64 // len (1<<bits)·stride
	used    int

	// Previous generation, populated only once the table reaches maxBits
	// (both generations then share the cap size, so home() addresses either).
	prevKeys []uint64
	prevPmfs []float64
}

// arenaBits converts an entry cap into table bits: the smallest power of two
// holding cap entries, floored at binoCapMinBits.
func arenaBits(cap int) int {
	bits := binoCapMinBits
	for 1<<bits < cap {
		bits++
	}
	return bits
}

func newBinoCache(m, arenaCap int) *binoCache {
	if arenaCap <= 0 {
		arenaCap = DefaultArenaCap
	}
	c := &binoCache{bits: binoMinBits, maxBits: arenaBits(arenaCap), stride: m + 1}
	if c.bits > c.maxBits {
		c.bits = c.maxBits
	}
	c.keys = make([]uint64, 1<<c.bits)
	for i := range c.keys {
		c.keys[i] = binoEmptyKey
	}
	c.pmfs = make([]float64, (1<<c.bits)*c.stride)
	return c
}

func (c *binoCache) slot(i uint64) []float64 {
	off := int(i) * c.stride
	return c.pmfs[off : off+c.stride : off+c.stride]
}

func (c *binoCache) home(key uint64) uint64 {
	return (key * 0x9e3779b97f4a7c15) >> (64 - uint(c.bits))
}

// grow doubles the table and reinserts every occupied slot. Entries that
// lose the probe race after rehashing are dropped (result-neutral: the PMF
// is a pure function of its key and would simply be refilled).
func (c *binoCache) grow() {
	old := *c
	c.bits++
	c.keys = make([]uint64, 1<<c.bits)
	for i := range c.keys {
		c.keys[i] = binoEmptyKey
	}
	c.pmfs = make([]float64, (1<<c.bits)*c.stride)
	c.used = 0
	mask := uint64(len(c.keys) - 1)
	for i, key := range old.keys {
		if key == binoEmptyKey {
			continue
		}
		base := c.home(key)
		for probe := uint64(0); probe < binoProbeLimit; probe++ {
			j := (base + probe) & mask
			if c.keys[j] == binoEmptyKey {
				c.keys[j] = key
				copy(c.slot(j), old.slot(uint64(i)))
				c.used++
				break
			}
		}
	}
}

// rotate retires the current generation into prev and starts an empty one,
// reusing the retired prev generation's buffers. Entries still in use migrate
// back on their next lookup (a stride-sized copy instead of a Lgamma/Exp
// refill); entries idle for a full generation fall off. This keeps the load
// under half at the size cap without the eviction thrash of overwriting a
// saturated table in place.
func (c *binoCache) rotate() {
	if c.prevKeys == nil {
		c.prevKeys = make([]uint64, len(c.keys))
		c.prevPmfs = make([]float64, len(c.pmfs))
	}
	c.keys, c.prevKeys = c.prevKeys, c.keys
	c.pmfs, c.prevPmfs = c.prevPmfs, c.pmfs
	for i := range c.keys {
		c.keys[i] = binoEmptyKey
	}
	c.used = 0
}

// prevLookup probes the previous generation for key, returning its PMF slot
// or nil on a miss.
func (c *binoCache) prevLookup(key uint64) []float64 {
	if c.prevKeys == nil {
		return nil
	}
	mask := uint64(len(c.prevKeys) - 1)
	base := c.home(key)
	for probe := uint64(0); probe < binoProbeLimit; probe++ {
		i := (base + probe) & mask
		switch c.prevKeys[i] {
		case key:
			off := int(i) * c.stride
			return c.prevPmfs[off : off+c.stride : off+c.stride]
		case binoEmptyKey:
			return nil
		}
	}
	return nil
}

// checkpoint freezes one phase's running window-count histogram at a stride
// boundary: the state after exactly j·strideWindows windows. Suffix j of a
// multi-test starts there, so its histogram is cum − checkpoint[j].
type checkpoint struct {
	counts []int32 // per-bucket window counts, len m+1
	sum    int64   // sum of window good-counts, for O(1) suffix p̂
}

// accPhase is one window alignment: the windows [φ + i·m, φ + (i+1)·m) for a
// fixed residue φ = n mod m. The phase gains a window exactly when the
// history length n satisfies n ≡ φ (mod m).
type accPhase struct {
	counts      []int64 // running per-bucket window counts, len m+1
	sum         int64   // running sum of window good-counts
	windows     int     // windows completed in this phase
	checkpoints []checkpoint
}

// clientSeries is one feedback issuer's records: global history positions in
// time order plus a good-count prefix, which is all the collusion re-ordering
// needs — a re-ordered window's good count is a sum of per-group ranges.
type clientSeries struct {
	idx  []int // global record indices, ascending
	good []int // good[i] = good records among idx[:i]; len(good) == len(idx)+1
}

// kGridEntry caches how one window count resolves on the calibrator's grid:
// the dense index of its windows bucket and the 1/√w extrapolation scale.
// Both depend only on the window count. A zero scale marks an empty entry
// (real scales lie in (0, 1]).
type kGridEntry struct {
	wbIdx int32
	scale float64
}

// confTable is one confidence bucket's threshold table, direct-indexed by
// wbIdx·pbStride + pBucket. NaN marks an empty slot. The table mirrors the
// calibrator's own grid cache, minus its mutex and hashing: in steady state
// a suffix threshold is one slice load and one multiply.
type confTable struct {
	tbl []float64
}

// Accumulator maintains per-server behaviour statistics incrementally:
// Append consumes one feedback in amortised O(1), and Test reproduces the
// corresponding batch tester's Verdict — Honest flag, per-suffix p̂,
// distances, thresholds, and errors — bit-identically, at a read cost of
// O(m · #suffixes) independent of the history length.
//
// Concurrency contract: Append must not run concurrently with anything, and
// Test must not run concurrently with Append; concurrent Tests are
// serialised internally. The store layer provides exactly this — Append runs
// under the shard write lock, Test under the shard read lock.
type Accumulator struct {
	cfg  Config
	mode accMode
	name string

	n         int   // records consumed
	goodTotal int   // running good count ΣG
	prefRing  []int // good-count prefix over the last m+1 positions (ring)

	phases []accPhase // single/multi modes; indexed by n mod m

	clients map[feedback.EntityID]*clientSeries // collusion modes

	mu       sync.Mutex // guards scratch and the memo state during Test
	scratch  *stats.Histogram
	bino     *binoCache                 // single/multi modes: B(m, p̂) PMF arena
	binoObjs map[uint64]*stats.Binomial // collusion modes: L1HistDistance needs *Binomial

	// Threshold memoisation on the calibrator's grid coordinates (window
	// bucket, p̂ bucket, confidence bucket) rather than exact float inputs:
	// the coordinate space is tiny, so the tables stay cache-resident and
	// hit near-always, where exact-input keys mostly miss and fall through
	// to the calibrator's locked cache.
	kGrid     []kGridEntry       // per window count: bucket index + scale
	wbIndex   map[int]int        // windows bucket -> dense index
	pbStride  int                // table row width: max p̂ bucket + 1
	threshTab map[int]*confTable // confidence bucket -> threshold table
}

// SupportsAccumulator reports whether NewAccumulatorFor can mirror t.
func SupportsAccumulator(t Tester) bool {
	switch t.(type) {
	case *Single, *Multi, *MultiNaive, *Collusion:
		return true
	}
	return false
}

// NewAccumulatorFor returns an accumulator that reproduces t.Test
// incrementally, or (nil, false) when t's scheme has no incremental form.
// All built-in testers are supported.
func NewAccumulatorFor(t Tester) (*Accumulator, bool) {
	var (
		cfg  Config
		mode accMode
	)
	switch tt := t.(type) {
	case *Single:
		cfg, mode = tt.cfg, accSingle
	case *Multi:
		cfg, mode = tt.cfg, accMulti
	case *MultiNaive:
		cfg, mode = tt.cfg, accMultiNaive
	case *Collusion:
		cfg, mode = tt.cfg, accCollusion
		if tt.multi {
			mode = accCollusionMulti
		}
	default:
		return nil, false
	}
	a := &Accumulator{cfg: cfg, mode: mode, name: t.Name()}
	m := cfg.WindowSize
	switch mode {
	case accCollusion, accCollusionMulti:
		a.clients = make(map[feedback.EntityID]*clientSeries)
		a.binoObjs = make(map[uint64]*stats.Binomial)
	default:
		a.bino = newBinoCache(m, cfg.ArenaCap)
		a.prefRing = make([]int, m+1)
		a.phases = make([]accPhase, m)
		for i := range a.phases {
			a.phases[i].counts = make([]int64, m+1)
		}
	}
	a.scratch = stats.MustHistogram(m)
	a.wbIndex = make(map[int]int)
	a.pbStride = cfg.Calibrator.PBucket(1) + 1
	a.threshTab = make(map[int]*confTable)
	return a, true
}

// Name returns the name of the tester this accumulator reproduces.
func (a *Accumulator) Name() string { return a.name }

// Config returns the effective configuration.
func (a *Accumulator) Config() Config { return a.cfg }

// Len returns the number of records consumed.
func (a *Accumulator) Len() int { return a.n }

// GoodCount returns the running number of good transactions ΣG.
func (a *Accumulator) GoodCount() int { return a.goodTotal }

// Append consumes the next feedback record in amortised O(1). Records must
// arrive in history (time) order; the store rebuilds the accumulator on its
// rare out-of-order insert path. See the type comment for the concurrency
// contract.
func (a *Accumulator) Append(f feedback.Feedback) {
	a.n++
	if f.Good() {
		a.goodTotal++
	}
	m := a.cfg.WindowSize
	if a.clients != nil {
		cs := a.clients[f.Client]
		if cs == nil {
			cs = &clientSeries{good: []int{0}}
			a.clients[f.Client] = cs
		}
		cs.idx = append(cs.idx, a.n-1)
		g := cs.good[len(cs.good)-1]
		if f.Good() {
			g++
		}
		cs.good = append(cs.good, g)
		return
	}
	a.prefRing[a.n%(m+1)] = a.goodTotal
	if a.n < m {
		return
	}
	// The append completed the window [n−m, n) of phase n mod m; its good
	// count is a ring-prefix difference.
	c := a.goodTotal - a.prefRing[(a.n-m)%(m+1)]
	ph := &a.phases[a.n%m]
	ws := a.cfg.Stride / m
	if ph.windows%ws == 0 {
		cp := checkpoint{counts: make([]int32, m+1), sum: ph.sum}
		for i, v := range ph.counts {
			cp.counts[i] = int32(v)
		}
		ph.checkpoints = append(ph.checkpoints, cp)
	}
	ph.counts[c]++
	ph.sum += int64(c)
	ph.windows++
}

// Test evaluates the maintained statistics exactly as the corresponding
// batch tester would evaluate the full history, including its
// ErrInsufficientHistory behaviour. It is read-only with respect to the
// appended records and safe for concurrent use with itself.
func (a *Accumulator) Test() (Verdict, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch a.mode {
	case accSingle:
		return a.testSingle()
	case accMulti:
		return a.testMulti(true)
	case accMultiNaive:
		// MultiNaive is the paper-exact reference: identical suffixes, never
		// familywise-corrected.
		return a.testMulti(false)
	case accCollusion:
		return a.testCollusion()
	default:
		return a.testCollusionMulti()
	}
}

// effectiveConfidence resolves the per-suffix confidence the way the batch
// testHistogram does: zero selects the calibrator's configured level (the
// Threshold shorthand), anything else is used as-is (ThresholdAt).
func (a *Accumulator) effectiveConfidence(confidence float64) float64 {
	if confidence == 0 {
		return a.cfg.Calibrator.Config().Confidence
	}
	return confidence
}

// testSingle mirrors Single.Test: one test over all end-aligned windows.
func (a *Accumulator) testSingle() (Verdict, error) {
	m := a.cfg.WindowSize
	k := a.n / m
	if k < a.cfg.MinWindows {
		return Verdict{}, fmt.Errorf("%w: %d windows < %d", ErrInsufficientHistory, k, a.cfg.MinWindows)
	}
	ph := &a.phases[a.n%m]
	effConf := a.effectiveConfidence(0)
	var res SuffixResult
	if err := a.testDiff(&res, ph.counts, nil, k, ph.sum, effConf, a.confTab(effConf)); err != nil {
		return Verdict{}, err
	}
	return Verdict{Honest: res.Pass, Suffixes: []SuffixResult{res}}, nil
}

// testMulti mirrors Multi.Test (corrected=true) and MultiNaive.Test
// (corrected=false): suffix i covers the most recent k − i·ws windows and
// starts at checkpoint i of the current phase.
func (a *Accumulator) testMulti(corrected bool) (Verdict, error) {
	m := a.cfg.WindowSize
	k := a.n / m
	if k < a.cfg.MinWindows {
		return Verdict{}, fmt.Errorf("%w: %d windows < %d", ErrInsufficientHistory, k, a.cfg.MinWindows)
	}
	ws := a.cfg.Stride / m
	ph := &a.phases[a.n%m]
	numSuffixes := (k-a.cfg.MinWindows)/ws + 1
	confidence := 0.0
	if corrected {
		confidence = a.cfg.suffixConfidence(numSuffixes)
	}
	effConf := a.effectiveConfidence(confidence)
	ct := a.confTab(effConf)
	v := Verdict{Honest: true, Suffixes: make([]SuffixResult, numSuffixes)}
	// The loop body is testDiff with its loop-invariant state hoisted out of
	// the per-suffix call: ~10³ suffixes per read make the call boundary's
	// argument traffic and field reloads measurable. Every arithmetic step
	// matches testDiff (and through it the batch testHistogram) exactly.
	cal := a.cfg.Calibrator
	kGrid, tbl, pbStride := a.kGrid, ct.tbl, a.pbStride
	cum, sum := ph.counts, ph.sum
	c := a.bino
	keys, mask, shift := c.keys, uint64(len(c.keys)-1), 64-uint(c.bits)
	for i := 0; i < numSuffixes; i++ {
		cp := &ph.checkpoints[i]
		res := &v.Suffixes[i]
		kk := k - i*ws
		res.Transactions = kk * m
		res.Windows = kk
		pHat := float64(sum-cp.sum) / float64(m*kk)
		res.PHat = pHat
		// Inlined binomialPMF probe: a steady-state hit is one hashed probe
		// into the arena. Misses delegate and reload the hoisted table views,
		// which grow/rotate may have swapped.
		key := math.Float64bits(pHat)
		base := (key * 0x9e3779b97f4a7c15) >> shift
		var pmf []float64
		var err error
		for probe := uint64(0); ; probe++ {
			if probe == binoProbeLimit || keys[(base+probe)&mask] == binoEmptyKey {
				if pmf, err = a.binomialPMFMiss(key, pHat); err != nil {
					return Verdict{}, err
				}
				keys, mask, shift = c.keys, uint64(len(c.keys)-1), 64-uint(c.bits)
				break
			}
			if j := (base + probe) & mask; keys[j] == key {
				pmf = c.slot(j)
				break
			}
		}
		d, err := stats.L1DiffDistance(cum, cp.counts, int64(kk), pmf)
		if err != nil {
			return Verdict{}, err
		}
		res.Distance = d
		if kk < len(kGrid) {
			if kg := kGrid[kk]; kg.scale != 0 {
				if idx := int(kg.wbIdx)*pbStride + cal.PBucket(pHat); idx < len(tbl) {
					if eps := tbl[idx]; eps == eps { // non-NaN: filled
						res.Threshold = eps * kg.scale
						if res.Pass = d <= res.Threshold; !res.Pass {
							v.Honest = false
						}
						continue
					}
				}
			}
		}
		// Grid slot not resolved yet: take the calibrating slow path, then
		// reload the views it may have grown.
		thr, err := a.gridThreshold(kk, pHat, effConf, ct)
		if err != nil {
			return Verdict{}, err
		}
		kGrid, tbl = a.kGrid, ct.tbl
		res.Threshold = thr
		if res.Pass = d <= thr; !res.Pass {
			v.Honest = false
		}
	}
	return v, nil
}

// testCollusion mirrors Collusion.Test (single variant): the whole history
// re-ordered by issuer, end-aligned windows, one test.
func (a *Accumulator) testCollusion() (Verdict, error) {
	m := a.cfg.WindowSize
	k := a.n / m
	if k < a.cfg.MinWindows {
		return Verdict{}, fmt.Errorf("%w: %d windows < %d", ErrInsufficientHistory, k, a.cfg.MinWindows)
	}
	counts := a.collusionCounts(0, make([]int, 0, k))
	a.scratch.Reset()
	for _, c := range counts {
		_ = a.scratch.Add(c)
	}
	effConf := a.effectiveConfidence(0)
	res, err := a.testHistogramMemo(a.scratch, effConf, a.confTab(effConf))
	if err != nil {
		return Verdict{}, err
	}
	return Verdict{Honest: res.Pass, Suffixes: []SuffixResult{res}}, nil
}

// testCollusionMulti mirrors Collusion.Test (multi variant): every
// stride-aligned time suffix, each re-ordered by issuer and tested.
func (a *Accumulator) testCollusionMulti() (Verdict, error) {
	cfg := a.cfg
	m := cfg.WindowSize
	usable := (a.n / m) * m
	usableWindows := usable / m
	if usableWindows < cfg.MinWindows {
		return Verdict{}, fmt.Errorf("%w: %d windows < %d",
			ErrInsufficientHistory, usableWindows, cfg.MinWindows)
	}
	strideWindows := cfg.Stride / m
	numSuffixes := (usableWindows-cfg.MinWindows)/strideWindows + 1
	effConf := a.effectiveConfidence(cfg.suffixConfidence(numSuffixes))
	ct := a.confTab(effConf)
	v := Verdict{Honest: true}
	buf := make([]int, 0, usableWindows)
	for np := usable; np/m >= cfg.MinWindows; np -= cfg.Stride {
		counts := a.collusionCounts(a.n-np, buf[:0])
		a.scratch.Reset()
		for _, c := range counts {
			_ = a.scratch.Add(c)
		}
		res, err := a.testHistogramMemo(a.scratch, effConf, ct)
		if err != nil {
			return Verdict{}, err
		}
		v.Suffixes = append(v.Suffixes, res)
		if !res.Pass {
			v.Honest = false
		}
	}
	return v, nil
}

// collusionCounts computes the end-aligned window good-counts of the
// issuer-re-ordered suffix starting at global record index s, appending them
// to counts. It never materialises the re-ordered sequence: groups are
// enumerated in CollusionOrder order (larger groups first, client ID ties),
// and each window's good count is assembled from per-group prefix ranges.
func (a *Accumulator) collusionCounts(s int, counts []int) []int {
	m := a.cfg.WindowSize
	length := a.n - s
	type group struct {
		cs  *clientSeries
		id  feedback.EntityID
		pos int // first index in cs.idx belonging to the suffix
		cnt int // records of this client inside the suffix
	}
	groups := make([]group, 0, len(a.clients))
	for id, cs := range a.clients {
		pos := sort.SearchInts(cs.idx, s)
		if cnt := len(cs.idx) - pos; cnt > 0 {
			groups = append(groups, group{cs: cs, id: id, pos: pos, cnt: cnt})
		}
	}
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].cnt != groups[j].cnt {
			return groups[i].cnt > groups[j].cnt
		}
		return groups[i].id < groups[j].id
	})
	// End-aligned windows over the re-ordered sequence: the first
	// length mod m re-ordered positions fall outside every window.
	off := length % m
	cursor := 0
	winGood, winFill := 0, 0
	for _, g := range groups {
		apos, rem := g.pos, g.cnt
		if cursor < off {
			skip := off - cursor
			if skip > rem {
				skip = rem
			}
			cursor += skip
			apos += skip
			rem -= skip
		}
		for rem > 0 {
			take := m - winFill
			if take > rem {
				take = rem
			}
			winGood += g.cs.good[apos+take] - g.cs.good[apos]
			winFill += take
			cursor += take
			apos += take
			rem -= take
			if winFill == m {
				counts = append(counts, winGood)
				winGood, winFill = 0, 0
			}
		}
	}
	return counts
}

// testDiff is testHistogram over one suffix's window-count vector, read as
// the difference cum − sub without ever materialising it (sub is nil for the
// whole-phase single test): k is the suffix's window count and sum its
// good-count total, both known O(1) from the phase and checkpoint running
// sums. The result is written in place so multi-tests fill their suffix
// slice without copying. The expensive pure steps — B(m, p̂) construction
// and threshold calibration — are memoised (see binomial and gridThreshold);
// every arithmetic step mirrors testHistogram, so the result is
// bit-identical to the batch tester's. Callers hold a.mu.
func (a *Accumulator) testDiff(res *SuffixResult, cum []int64, sub []int32, k int, sum int64, effConf float64, ct *confTable) error {
	m := a.cfg.WindowSize
	res.Transactions = k * m
	res.Windows = k
	res.PHat = float64(sum) / float64(m*k)
	pmf, err := a.binomialPMF(res.PHat)
	if err != nil {
		return err
	}
	res.Distance, err = stats.L1DiffDistance(cum, sub, int64(k), pmf)
	if err != nil {
		return err
	}
	// Steady-state threshold fast path, hand-inlined from gridThreshold: one
	// slice load resolves k to its grid bucket and scale, one table slot
	// holds the calibrated eps.
	if k < len(a.kGrid) {
		if kg := a.kGrid[k]; kg.scale != 0 {
			if idx := int(kg.wbIdx)*a.pbStride + a.cfg.Calibrator.PBucket(res.PHat); idx < len(ct.tbl) {
				if eps := ct.tbl[idx]; eps == eps { // non-NaN: filled
					res.Threshold = eps * kg.scale
					res.Pass = res.Distance <= res.Threshold
					return nil
				}
			}
		}
	}
	res.Threshold, err = a.gridThreshold(k, res.PHat, effConf, ct)
	if err != nil {
		return err
	}
	res.Pass = res.Distance <= res.Threshold
	return nil
}

// testHistogramMemo is testDiff for the collusion paths, which build
// their re-ordered window histograms explicitly. Callers hold a.mu.
func (a *Accumulator) testHistogramMemo(h *stats.Histogram, effConf float64, ct *confTable) (SuffixResult, error) {
	m := a.cfg.WindowSize
	k := int(h.Total())
	res := SuffixResult{Transactions: k * m, Windows: k}
	res.PHat = float64(h.Sum()) / float64(m*k)
	ref, err := a.binomial(res.PHat)
	if err != nil {
		return res, err
	}
	res.Distance, err = stats.L1HistDistance(h, ref)
	if err != nil {
		return res, err
	}
	res.Threshold, err = a.gridThreshold(k, res.PHat, effConf, ct)
	if err != nil {
		return res, err
	}
	res.Pass = res.Distance <= res.Threshold
	return res, nil
}

// binomialPMF returns the cached PMF table of B(m, p̂) from the arena. The
// fill is a pure function of (m, p̂) — stats.BinomialPMFInto, the same code
// path NewBinomial uses — so caching on the exact p̂ bits changes nothing
// about results; it skips the Lgamma/Exp-heavy construction when a p̂ recurs
// across reads. Equal good-count ratios over different suffix lengths divide
// to the same float64 (IEEE division is correctly rounded), so the cache
// unifies far more suffixes than exact (sum, windows) pairs would suggest.
func (a *Accumulator) binomialPMF(pHat float64) ([]float64, error) {
	c := a.bino
	key := math.Float64bits(pHat)
	mask := uint64(len(c.keys) - 1)
	base := c.home(key)
	for probe := uint64(0); probe < binoProbeLimit; probe++ {
		i := (base + probe) & mask
		switch c.keys[i] {
		case key:
			return c.slot(i), nil
		case binoEmptyKey:
			return a.binomialPMFMiss(key, pHat)
		}
	}
	return a.binomialPMFMiss(key, pHat)
}

// binomialPMFMiss resolves a current-generation miss: it keeps the load under
// half (growing below the cap, rotating generations at it), migrates the
// entry from the previous generation when present, and fills afresh
// otherwise.
func (a *Accumulator) binomialPMFMiss(key uint64, pHat float64) ([]float64, error) {
	c := a.bino
	if c.used > len(c.keys)/2 {
		if c.bits < c.maxBits {
			c.grow()
		} else {
			c.rotate()
		}
	}
	mask := uint64(len(c.keys) - 1)
	base := c.home(key)
	i := base & mask // overwrite the home slot if the probe window is full
	fresh := false
	for probe := uint64(0); probe < binoProbeLimit; probe++ {
		j := (base + probe) & mask
		if c.keys[j] == binoEmptyKey {
			i, fresh = j, true
			break
		}
	}
	dst := c.slot(i)
	if prev := c.prevLookup(key); prev != nil {
		copy(dst, prev)
	} else if err := stats.BinomialPMFInto(dst, a.cfg.WindowSize, pHat); err != nil {
		return nil, err
	}
	c.keys[i] = key
	if fresh {
		c.used++
	}
	return dst, nil
}

// binomial is the collusion paths' memoised B(m, p̂): those paths feed
// stats.L1HistDistance, which wants the constructed object rather than a
// bare PMF table.
func (a *Accumulator) binomial(pHat float64) (*stats.Binomial, error) {
	pBits := math.Float64bits(pHat)
	if ref, ok := a.binoObjs[pBits]; ok {
		return ref, nil
	}
	ref, err := stats.NewBinomial(a.cfg.WindowSize, pHat)
	if err != nil {
		return nil, err
	}
	if len(a.binoObjs) >= collusionMemoLimit {
		a.binoObjs = make(map[uint64]*stats.Binomial)
	}
	a.binoObjs[pBits] = ref
	return ref, nil
}

// confTab returns the threshold table of effConf's confidence bucket.
func (a *Accumulator) confTab(effConf float64) *confTable {
	cb := int(math.Round(effConf * 1e4))
	ct := a.threshTab[cb]
	if ct == nil {
		ct = &confTable{}
		a.threshTab[cb] = ct
	}
	return ct
}

// gridThreshold returns the calibrated threshold for a k-window suffix with
// estimate pHat at confidence effConf, exactly as the batch tester's
// Threshold/ThresholdAt call would. The calibrator quantises queries to a
// grid and scales the grid threshold by a factor depending only on k
// (stats.GridThreshold), so the steady-state lookup here is a direct slice
// index: kGrid resolves k to its bucket index and scale, the table slot
// holds the grid eps. Misses delegate to the calibrator and backfill.
func (a *Accumulator) gridThreshold(k int, pHat, effConf float64, ct *confTable) (float64, error) {
	cal := a.cfg.Calibrator
	if k < len(a.kGrid) {
		if kg := a.kGrid[k]; kg.scale != 0 {
			idx := int(kg.wbIdx)*a.pbStride + cal.PBucket(pHat)
			if idx < len(ct.tbl) {
				if eps := ct.tbl[idx]; eps == eps { // non-NaN: filled
					return eps * kg.scale, nil
				}
			}
			g, err := cal.ThresholdGrid(a.cfg.WindowSize, k, pHat, effConf)
			if err != nil {
				return 0, err
			}
			a.fillSlot(ct, idx, g.Eps)
			return g.Eps * g.Scale, nil
		}
	}
	// First sight of this window count: resolve its grid coordinates once.
	g, err := cal.ThresholdGrid(a.cfg.WindowSize, k, pHat, effConf)
	if err != nil {
		return 0, err
	}
	wbIdx, ok := a.wbIndex[g.WindowsBucket]
	if !ok {
		wbIdx = len(a.wbIndex)
		a.wbIndex[g.WindowsBucket] = wbIdx
	}
	if k >= len(a.kGrid) {
		a.kGrid = append(a.kGrid, make([]kGridEntry, k+1-len(a.kGrid))...)
	}
	a.kGrid[k] = kGridEntry{wbIdx: int32(wbIdx), scale: g.Scale}
	a.fillSlot(ct, wbIdx*a.pbStride+g.PBucket, g.Eps)
	return g.Eps * g.Scale, nil
}

// fillSlot stores eps at idx, growing the table with NaN fill as needed.
func (a *Accumulator) fillSlot(ct *confTable, idx int, eps float64) {
	for len(ct.tbl) <= idx {
		ct.tbl = append(ct.tbl, math.NaN())
	}
	ct.tbl[idx] = eps
}
