package behavior

// Resident-size self-reporting for the memory-budget governor. SizeBytes must
// be cheap enough to run on every accepted write (the store recomputes a
// server's accounted size under the shard lock after each append), so it
// derives the footprint from lengths and capacities in O(m) — it never walks
// checkpoint or client collections, whose element sizes are uniform.

const (
	szAccStruct     = 280 // Accumulator struct itself (headers, maps, mutex)
	szCheckpoint    = 32  // checkpoint struct: slice header + sum
	szClientSeries  = 56  // clientSeries struct + map entry overhead
	szMapEntry      = 48  // approximate per-entry overhead of a small map
	szBinomialObj   = 120 // stats.Binomial + its boxed map slot
	szConfTable     = 32  // confTable struct + map slot
	szHistScratch   = 96  // stats.Histogram scratch (counts slice accounted below)
	szKGridEntry    = 16  // kGridEntry: int32 (padded) + float64
	szIntSliceEntry = 8
)

// SizeBytes returns the approximate resident heap footprint of the
// accumulator: phase window tables and their checkpoint ladders, the binomial
// PMF arena (both generations once rotation starts), the collusion modes'
// per-client index, and the threshold memo tables. The estimate is computed
// from element counts — all variable-size members grow in uniform strides —
// so the cost is O(m) regardless of how much history the accumulator has
// consumed. It is an accounting figure, not an exact allocator measurement:
// the governor compares these figures against a byte budget, and a uniform
// small bias cancels out of that comparison.
func (a *Accumulator) SizeBytes() int {
	m := a.cfg.WindowSize
	size := szAccStruct
	size += cap(a.prefRing) * szIntSliceEntry
	// Phase families: running counts plus a checkpoint every strideWindows
	// windows, each checkpoint carrying an m+1 int32 histogram.
	cpBytes := szCheckpoint + (m+1)*4
	for i := range a.phases {
		ph := &a.phases[i]
		size += 64 + cap(ph.counts)*8
		size += cap(ph.checkpoints) * cpBytes
	}
	if a.bino != nil {
		size += len(a.bino.keys)*8 + len(a.bino.pmfs)*8
		size += len(a.bino.prevKeys)*8 + len(a.bino.prevPmfs)*8
	}
	if a.clients != nil {
		// Each record contributes one idx entry and one good entry to exactly
		// one client's series, so the series payloads sum to ~2 ints per
		// record; per-client struct overhead is uniform.
		size += len(a.clients) * (szClientSeries + szMapEntry + 2*szIntSliceEntry)
		size += a.n * 2 * szIntSliceEntry
	}
	if a.binoObjs != nil {
		size += len(a.binoObjs) * (szBinomialObj + (m+1)*8)
	}
	if a.scratch != nil {
		size += szHistScratch + (m+1)*8
	}
	size += cap(a.kGrid) * szKGridEntry
	size += len(a.wbIndex) * szMapEntry
	for _, t := range a.threshTab {
		size += szConfTable + szMapEntry + cap(t.tbl)*8
	}
	return size
}
