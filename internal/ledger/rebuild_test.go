package ledger

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"honestplayer/internal/core"
	"honestplayer/internal/store"
)

// evictAll evicts every server in the store and returns how many went.
func evictAll(t *testing.T, st *store.Store) int {
	t.Helper()
	n := 0
	for _, srv := range st.Servers() {
		if st.EvictServer(srv) {
			n++
		}
	}
	if n == 0 {
		t.Fatal("nothing evicted")
	}
	return n
}

// rebuildAll faults every evicted server back in.
func rebuildAll(t *testing.T, ps *PersistentStore) {
	t.Helper()
	for _, stub := range ps.Store().Stubs() {
		if err := ps.RebuildServer(stub.Server); err != nil {
			t.Fatalf("rebuild %q: %v", stub.Server, err)
		}
	}
}

// TestRebuildBitIdentical: evicting a server and rebuilding it on demand
// must restore exactly the state a never-evicted twin holds — records,
// versions, checksums, and (in incremental mode) accumulator assessments.
// Records deliberately span a snapshot and a post-snapshot tail so the
// rebuild has to merge both sources.
func TestRebuildBitIdentical(t *testing.T) {
	for _, mode := range []string{"trustonly", "incremental"} {
		t.Run(mode, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "led")
			var opts Options
			var tpUsed *core.TwoPhase
			if mode == "incremental" {
				opts, tpUsed = incrementalOptions(t, 4, 1<<20, 0)
			} else {
				opts = Options{Shards: 4, SegmentBytes: 1 << 20}
			}
			opts.MemBudget = 1 << 40 // lifecycle on, budget never binds

			ps, err := OpenStoreOptions(context.Background(), dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer ps.Close()
			workload(t, ps, 200, 0)
			if _, err := ps.Snapshot(); err != nil {
				t.Fatal(err)
			}
			workload(t, ps, 90, 200) // tail records past the snapshot
			want := storeFingerprint(t, ps.Store(), tpUsed)

			evictAll(t, ps.Store())
			rebuildAll(t, ps)

			got := storeFingerprint(t, ps.Store(), tpUsed)
			if !reflect.DeepEqual(want, got) {
				t.Fatal("rebuilt state diverges from never-evicted state")
			}
			if ps.Stats().Rebuilds == 0 {
				t.Fatal("rebuild counter did not move")
			}
		})
	}
}

// TestRebuildAcrossRotation: records for one server scattered over several
// snapshot generations plus a live tail must all come back. Each snapshot
// covers all prior history (forgetting-safe), so the rebuild reads the
// newest snapshot section and the in-memory tail only.
func TestRebuildAcrossRotation(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "led")
	opts, tp := incrementalOptions(t, 2, 1<<20, 0)
	opts.MemBudget = 1 << 40

	ps, err := OpenStoreOptions(context.Background(), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	for round := 0; round < 3; round++ {
		workload(t, ps, 70, round*70)
		if _, err := ps.Snapshot(); err != nil {
			t.Fatalf("snapshot round %d: %v", round, err)
		}
		// Evict between rounds too: later snapshots must rebuild stub
		// sections from their predecessors rather than drop them.
		evictAll(t, ps.Store())
	}
	workload(t, ps, 33, 210) // un-snapshotted tail
	rebuildAll(t, ps)
	want := storeFingerprint(t, ps.Store(), tp)

	evictAll(t, ps.Store())
	rebuildAll(t, ps)
	if got := storeFingerprint(t, ps.Store(), tp); !reflect.DeepEqual(want, got) {
		t.Fatal("rebuild across rotations diverges")
	}

	// A fresh boot from the stub-bearing snapshot chain must also converge.
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
	boot, err := OpenStoreOptions(context.Background(), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer boot.Close()
	if got := storeFingerprint(t, boot.Store(), tp); !reflect.DeepEqual(want, got) {
		t.Fatal("boot after evictions diverges from live state")
	}
}

// TestSnapshotWithEvictedServers: a snapshot taken while servers are evicted
// must still carry their complete history (the forgetting-safe invariant):
// delete every older snapshot and the ledger segments' replay must not be
// needed — boot from the newest snapshot alone reproduces everything.
func TestSnapshotWithEvictedServers(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "led")
	opts, tp := incrementalOptions(t, 2, 1<<20, 0)
	opts.MemBudget = 1 << 40

	ps, err := OpenStoreOptions(context.Background(), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	workload(t, ps, 150, 0)
	if _, err := ps.Snapshot(); err != nil {
		t.Fatal(err)
	}
	workload(t, ps, 60, 150)
	evictAll(t, ps.Store())
	seq, err := ps.Snapshot() // must fold evicted sections forward
	if err != nil {
		t.Fatal(err)
	}
	rebuildAll(t, ps)
	want := storeFingerprint(t, ps.Store(), tp)
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}

	// The stub sidecar of the new snapshot must enumerate what was evicted.
	raw, err := os.ReadFile(filepath.Join(dir, stubsName(seq)))
	if err != nil {
		t.Fatalf("stub sidecar: %v", err)
	}
	stubs, err := decodeStubs(raw)
	if err != nil {
		t.Fatalf("decode sidecar: %v", err)
	}
	if len(stubs) == 0 {
		t.Fatal("sidecar holds no stubs")
	}
	for _, s := range stubs {
		if s.SnapSeq >= seq || s.Count == 0 {
			t.Fatalf("implausible sidecar stub %+v for snapshot %d", s, seq)
		}
	}

	// Remove everything but the newest snapshot; boot must not miss data.
	seqs, err := listSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, old := range seqs {
		if old != seq {
			if err := os.Remove(filepath.Join(dir, snapshotName(old))); err != nil {
				t.Fatal(err)
			}
		}
	}
	boot, err := OpenStoreOptions(context.Background(), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer boot.Close()
	if boot.Stats().BootMode != "snapshot" {
		t.Fatalf("boot mode = %q, want snapshot", boot.Stats().BootMode)
	}
	if got := storeFingerprint(t, boot.Store(), tp); !reflect.DeepEqual(want, got) {
		t.Fatal("snapshot taken with evicted servers lost history")
	}
}

// TestWritePathSelfHeals: a write addressed to an evicted server must fault
// the server in transparently and land, not surface ErrEvicted.
func TestWritePathSelfHeals(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "led")
	opts := Options{Shards: 2, SegmentBytes: 1 << 20, MemBudget: 1 << 40}
	ps, err := OpenStoreOptions(context.Background(), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	workload(t, ps, 50, 0)
	if _, err := ps.Snapshot(); err != nil {
		t.Fatal(err)
	}
	victim := ps.Store().Servers()[0]
	if !ps.Store().EvictServer(victim) {
		t.Fatal("evict failed")
	}
	f := rec("x", true, 9999)
	f.Server = victim
	f.Client = "healer"
	if ok, err := ps.Add(f); err != nil || !ok {
		t.Fatalf("write to evicted server = (%v, %v), want self-healed add", ok, err)
	}
	if _, ok := ps.Store().StubOf(victim); ok {
		t.Fatal("server still evicted after self-healing write")
	}
	if n := ps.Store().ServerLen(victim); n == 0 {
		t.Fatal("rebuilt server lost its records")
	}
}

// TestRebuildUnknownServer: rebuilding a server the store has never seen
// must fail loudly instead of inventing empty state.
func TestRebuildUnknownServer(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "led")
	ps, err := OpenStoreOptions(context.Background(), dir, Options{Shards: 2, MemBudget: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	if err := ps.RebuildServer("ghost"); err == nil {
		t.Fatal("rebuild of unknown server succeeded")
	}
}
