package store

// Bulk seeding and shard iteration for the persistence layer: snapshot boot
// loads whole per-server histories (plus restored accumulators) in one shot
// instead of paying Add's per-record lookup/ordering machinery, and the
// snapshot writer walks shards under their read locks.

import (
	"fmt"
	"sort"

	"honestplayer/internal/feedback"
)

// SeedServer bulk-loads one server's complete history, as restored from a
// verified snapshot. recs must be sorted by (time, hash) and duplicate-free —
// the order and uniqueness Add would have produced — and the server must not
// already hold records; violations are reported as errors so the caller can
// fall back to a full replay.
//
// acc, when non-nil, becomes the server's incremental accumulator: its state
// must already cover exactly recs. When acc is nil and an accumulator factory
// is installed, a fresh accumulator is minted and replayed, matching what the
// equivalent Add sequence would have built.
func (s *Store) SeedServer(server feedback.EntityID, recs []feedback.Feedback, acc Accumulator) error {
	if len(recs) == 0 {
		return nil
	}
	sh := s.shardOf(server)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.byServ[server] != nil {
		return fmt.Errorf("store: seed of %q: server already has records", server)
	}
	// Build the history first: validates every record and its server without
	// touching shard state, and takes ownership of recs instead of re-copying
	// them one Append at a time.
	hist, err := feedback.NewHistoryFromRecords(server, recs)
	if err != nil {
		return fmt.Errorf("store: seed of %q: %w", server, err)
	}
	// Index in one pass, inserting each hash as it checks out (one map probe
	// per record instead of a check pass plus a commit pass). On any failure,
	// deleting exactly the hashes this call inserted — each one grew the map,
	// so none existed before — restores the index; the entry itself is only
	// committed at the end, so a failed seed leaves the store exactly as it
	// was.
	hashes := make([]Hash, len(recs))
	inserted := 0
	rollback := func() {
		for _, h := range hashes[:inserted] {
			delete(sh.seen, h)
		}
	}
	var xor uint64
	for i, f := range recs {
		if i > 0 && !lessRecord(recs[i-1], f) {
			rollback()
			return fmt.Errorf("store: seed of %q record %d: out of order", server, i)
		}
		h := HashOf(f)
		before := len(sh.seen)
		sh.seen[h] = struct{}{}
		if len(sh.seen) == before {
			// h was already present — either stored earlier or a duplicate
			// within this batch; both leave the map unchanged, so rollback
			// of the genuinely-new hashes is exact either way.
			rollback()
			return fmt.Errorf("store: seed of %q record %d: duplicate hash", server, i)
		}
		hashes[i] = h
		inserted++
		xor ^= uint64(h)
	}
	e := &entry{hist: hist}
	e.version = uint64(len(recs))
	e.xor = xor
	if acc != nil {
		e.acc = acc
		s.accTracked.Add(1)
	} else if fp := s.accFactory.Load(); fp != nil {
		if a := (*fp)(server); a != nil {
			e.acc = a
			s.accTracked.Add(1)
			replayAccumulator(e.acc, e.hist)
		}
	}
	e.touched.Store(true)
	sh.byServ[server] = e
	s.resizeLocked(e)
	s.residentCount.Add(1)
	s.total.Add(int64(len(recs)))
	s.global.Add(uint64(len(recs)))
	return nil
}

// ReserveFor pre-sizes the dedup index of server's shard for about n more
// records, so a bulk seed inserts into a right-sized map instead of paying
// incremental rehashing. Purely a capacity hint — correctness never depends
// on it being called.
func (s *Store) ReserveFor(server feedback.EntityID, n int) {
	if n <= 0 {
		return
	}
	sh := s.shardOf(server)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	grown := make(map[Hash]struct{}, len(sh.seen)+n)
	for h := range sh.seen {
		grown[h] = struct{}{}
	}
	sh.seen = grown
}

// ShardEntry is one server's state as seen by a SnapshotShard walk. Snap is
// the memoized immutable history view — nil for an evicted stub, whose
// records the walker must source from durable storage instead (Count, XOR,
// and SnapSeq then describe the stub; see lifecycle.go). Acc is the
// incremental accumulator (nil when none). Count and XOR are valid for
// resident and evicted entries alike; SizeBytes is the accounted resident
// footprint (0 for stubs); SnapSeq is non-zero only for stubs.
type ShardEntry struct {
	Server    feedback.EntityID
	Snap      *feedback.History
	Acc       Accumulator
	Version   uint64
	Count     int
	XOR       uint64
	SizeBytes int
	SnapSeq   uint64
}

// SnapshotShard walks every server of shard idx under the shard's read lock,
// in sorted server order. The usual read contracts apply: the snapshot is a
// shared immutable view, the accumulator must be treated read-only, and view
// must not call back into the store. Writes to this shard wait for the walk,
// so view should only capture (snapshot pointers, serialized accumulator
// state) and defer heavy encoding work. The walk does not set touched bits:
// a background snapshot must not make every server look recently used to
// the eviction sweep.
func (s *Store) SnapshotShard(idx int, view func(ShardEntry)) {
	sh := &s.shards[idx]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	servers := make([]feedback.EntityID, 0, len(sh.byServ))
	for srv := range sh.byServ {
		servers = append(servers, srv)
	}
	sort.Slice(servers, func(i, j int) bool { return servers[i] < servers[j] })
	for _, srv := range servers {
		e := sh.byServ[srv]
		ent := ShardEntry{
			Server:    srv,
			Acc:       e.acc,
			Version:   e.version,
			Count:     e.countLocked(),
			XOR:       e.xor,
			SizeBytes: e.sizeBytes,
		}
		if e.hist == nil {
			ent.SnapSeq = e.stubSnapSeq
		} else {
			ent.Snap = e.snapshot()
		}
		view(ent)
	}
}
