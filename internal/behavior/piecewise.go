package behavior

import (
	"fmt"

	"honestplayer/internal/feedback"
)

// Piecewise implements the "dynamic cases" extension sketched in §3.1: an
// honest player's trustworthiness p may drift slowly (seasonal load,
// infrastructure changes), in which case the whole history is not a sample
// of a single B(m, p) and a static test raises false alerts. Piecewise
// models the behaviour as piecewise-stationary: the history is cut into
// consecutive segments of SegmentLen transactions and each segment is
// tested against its own B(m, p̂_segment).
//
// A slow drift leaves every segment nearly stationary, so an honest drifting
// player passes; a periodic or bursty attacker still deviates *within*
// segments and is caught. The segment length trades drift tolerance
// against the statistical power of each segment's test.
type Piecewise struct {
	cfg    Config
	seglen int
}

var _ Tester = (*Piecewise)(nil)

// NewPiecewise returns a piecewise-stationary tester with segments of
// segmentLen transactions. segmentLen must allow at least MinWindows
// windows per segment.
func NewPiecewise(cfg Config, segmentLen int) (*Piecewise, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if segmentLen < c.MinWindows*c.WindowSize {
		return nil, fmt.Errorf("%w: segment length %d < %d windows of %d",
			ErrBadConfig, segmentLen, c.MinWindows, c.WindowSize)
	}
	return &Piecewise{cfg: c, seglen: segmentLen}, nil
}

// Name implements Tester.
func (p *Piecewise) Name() string { return fmt.Sprintf("piecewise(seg=%d)", p.seglen) }

// SegmentLen returns the segment length in transactions.
func (p *Piecewise) SegmentLen() int { return p.seglen }

// Test implements Tester: the newest ⌊n/seglen⌋ segments are each tested
// independently; the verdict carries one SuffixResult per segment (newest
// segment first) and is honest only if every segment passes. Histories
// shorter than one segment report ErrInsufficientHistory.
func (p *Piecewise) Test(h *feedback.History) (Verdict, error) {
	if h.Len() < p.seglen {
		return Verdict{}, fmt.Errorf("%w: %d transactions < segment length %d",
			ErrInsufficientHistory, h.Len(), p.seglen)
	}
	segments := h.Len() / p.seglen
	v := Verdict{Honest: true, Suffixes: make([]SuffixResult, 0, segments)}
	// Segments align to the newest record, like windows.
	for s := 0; s < segments; s++ {
		hi := h.Len() - s*p.seglen
		view := h.SuffixView(hi).SuffixView(p.seglen)
		counts, err := view.WindowCountsFromEnd(p.cfg.WindowSize)
		if err != nil {
			return Verdict{}, err
		}
		res, err := testWindowCounts(p.cfg, counts)
		if err != nil {
			return Verdict{}, err
		}
		v.Suffixes = append(v.Suffixes, res)
		if !res.Pass {
			v.Honest = false
		}
	}
	return v, nil
}
