package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"sort"
	"time"

	"honestplayer/internal/core"
	"honestplayer/internal/feedback"
	"honestplayer/internal/ledger"
	"honestplayer/internal/repserver"
	"honestplayer/internal/store"
	"honestplayer/internal/trust"
	"honestplayer/internal/wire"
)

// The memory benchmark proves the resident-state lifecycle keeps a node's
// server-state footprint bounded by -mem-budget at a server population whose
// full-resident footprint is far larger, without changing a single verdict:
//
//   - Load: N servers × R records each stream through the budgeted
//     PersistentStore, with periodic snapshots (as -snapshot-every would
//     drive); the accounted resident footprint is sampled throughout and its
//     peak must stay at or under the budget.
//   - Serve: a sample of servers — almost all evicted by then — is assessed
//     through the real serving path, so every call measures a fault-in
//     (snapshot-section read, digest-verified reinstate, assessment).
//   - Differential: each sampled verdict is compared against a from-scratch
//     reference assessment over the same records; any mismatch fails the
//     bench. Run in both serving modes (batch recompute and incremental
//     accumulators).

// memBenchMode is one serving configuration of the comparison.
type memBenchMode struct {
	Incremental       bool    `json:"incremental"`
	Servers           int     `json:"servers"`
	RecordsPerServer  int     `json:"records_per_server"`
	BudgetBytes       int64   `json:"budget_bytes"`
	FullResidentBytes int64   `json:"full_resident_bytes_est"`
	BudgetFraction    float64 `json:"budget_fraction_of_full"`
	PeakAccounted     int64   `json:"peak_accounted_bytes"`
	PeakHeapBytes     uint64  `json:"peak_heap_bytes"`
	LoadSeconds       float64 `json:"load_seconds"`
	Snapshots         uint64  `json:"snapshots"`
	Resident          int     `json:"resident_after_load"`
	Evicted           int     `json:"evicted_after_load"`
	Evictions         uint64  `json:"evictions"`
	Rebuilds          uint64  `json:"rebuilds"`
	SampledAssess     int     `json:"sampled_assessments"`
	FaultInP50Ms      float64 `json:"fault_in_p50_ms"`
	FaultInP99Ms      float64 `json:"fault_in_p99_ms"`
	VerdictsMatch     bool    `json:"verdicts_match"`
}

// memBenchReport is the JSON document the -membench mode emits.
type memBenchReport struct {
	Description string         `json:"description"`
	Command     string         `json:"command"`
	Environment map[string]any `json:"environment"`
	Config      map[string]any `json:"config"`
	Modes       []memBenchMode `json:"modes"`
	Acceptance  string         `json:"acceptance"`
}

// memRecord is record j of server s: strictly increasing timestamps keep
// every record content-unique, and the rating pattern gives servers two
// quality tiers so sampled verdicts split across accept and reject.
func memRecord(s, j, recsPer int) feedback.Feedback {
	r := feedback.Positive
	if s%7 == 0 {
		if j%2 == 1 {
			r = feedback.Negative // bad tier: good ratio 1/2
		}
	} else if j%4 == 3 {
		r = feedback.Negative // good tier: good ratio 3/4
	}
	return feedback.Feedback{
		Time:   time.Unix(int64(s)*int64(recsPer)+int64(j), 0).UTC(),
		Server: feedback.EntityID(fmt.Sprintf("m%07d", s)),
		Client: feedback.EntityID(fmt.Sprintf("c%02d", j%11)),
		Rating: r,
	}
}

// memOptions builds the budgeted PersistentStore options for one mode,
// mirroring trustd's -mem-budget wiring (trust-only incremental closures in
// incremental mode, so 1M accumulators stay cheap enough to benchmark).
func memOptions(budget int64, shards int, incremental bool) (ledger.Options, *core.TwoPhase, error) {
	tp, err := core.NewTwoPhase(nil, trust.Average{})
	if err != nil {
		return ledger.Options{}, nil, err
	}
	opts := ledger.Options{Shards: shards, SegmentBytes: 64 << 20, MemBudget: budget}
	if incremental {
		opts.AccumulatorFactory = func(server feedback.EntityID) store.Accumulator {
			acc, err := tp.NewServerAccumulator(server)
			if err != nil {
				return nil
			}
			return acc
		}
		opts.EncodeAccumulator = func(acc store.Accumulator) ([]byte, bool) {
			sa, ok := acc.(*core.ServerAccumulator)
			if !ok {
				return nil, false
			}
			return sa.AppendState(nil)
		}
		opts.RestoreAccumulator = func(server feedback.EntityID, state []byte) (store.Accumulator, int, error) {
			return tp.RestoreServerAccumulator(server, state)
		}
	}
	return opts, tp, nil
}

// fullResidentEstimate measures the accounted footprint of a small fully
// resident population under the same configuration and scales it to n
// servers. The populations are uniform by construction, so the estimate is
// the per-server cost times n.
func fullResidentEstimate(n, recsPer int, incremental bool) (int64, error) {
	const probe = 256
	st := store.NewSharded(4)
	if incremental {
		tp, err := core.NewTwoPhase(nil, trust.Average{})
		if err != nil {
			return 0, err
		}
		st.SetAccumulatorFactory(func(server feedback.EntityID) store.Accumulator {
			acc, err := tp.NewServerAccumulator(server)
			if err != nil {
				return nil
			}
			return acc
		})
	}
	for s := 0; s < probe; s++ {
		for j := 0; j < recsPer; j++ {
			if _, err := st.Add(memRecord(s, j, recsPer)); err != nil {
				return 0, err
			}
		}
	}
	return st.ResidentBytes() / probe * int64(n), nil
}

// quantileMs returns the q-quantile of latencies (sorted in place), in ms.
func quantileMs(lat []time.Duration, q float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	i := int(q * float64(len(lat)-1))
	return float64(lat[i].Nanoseconds()) / 1e6
}

// runMemMode executes one serving mode of the benchmark.
func runMemMode(dir string, servers, recsPer, samples int, budget int64, snapEvery int, incremental bool) (memBenchMode, error) {
	mode := memBenchMode{
		Incremental: incremental, Servers: servers, RecordsPerServer: recsPer, BudgetBytes: budget,
	}
	est, err := fullResidentEstimate(servers, recsPer, incremental)
	if err != nil {
		return mode, err
	}
	mode.FullResidentBytes = est
	mode.BudgetFraction = float64(budget) / float64(est)

	shards := 64
	opts, tp, err := memOptions(budget, shards, incremental)
	if err != nil {
		return mode, err
	}
	ps, err := ledger.OpenStoreOptions(context.Background(), dir, opts)
	if err != nil {
		return mode, err
	}
	defer ps.Close()
	st := ps.Store()

	srv, err := repserver.New("127.0.0.1:0", repserver.Config{
		Assessor: tp, Store: st, Recorder: ps, Rebuilder: ps, Incremental: incremental,
	})
	if err != nil {
		return mode, err
	}
	defer srv.Close()

	// Load phase: snapshots are taken synchronously every snapEvery records
	// (deterministic stand-in for -snapshot-every), which also bounds the
	// in-memory tail index. The accounted footprint is sampled per server,
	// the heap every 100k records.
	start := time.Now()
	var peak int64
	var peakHeap uint64
	total := 0
	for s := 0; s < servers; s++ {
		for j := 0; j < recsPer; j++ {
			if _, err := ps.Add(memRecord(s, j, recsPer)); err != nil {
				return mode, fmt.Errorf("load server %d: %w", s, err)
			}
			total++
			if total%snapEvery == 0 {
				if _, err := ps.Snapshot(); err != nil {
					return mode, fmt.Errorf("snapshot at %d records: %w", total, err)
				}
			}
			if total%100000 == 0 {
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peakHeap {
					peakHeap = ms.HeapAlloc
				}
			}
		}
		if rb := st.ResidentBytes(); rb > peak {
			peak = rb
		}
	}
	if _, err := ps.Snapshot(); err != nil {
		return mode, fmt.Errorf("final snapshot: %w", err)
	}
	mode.LoadSeconds = float64(int(time.Since(start).Seconds()*100)) / 100
	mode.PeakAccounted = peak
	mode.PeakHeapBytes = peakHeap

	life := st.Lifecycle()
	lst := ps.Stats()
	mode.Snapshots = lst.SnapshotsTaken
	mode.Resident = life.Resident
	mode.Evicted = life.Evicted
	mode.Evictions = life.Evictions

	// Serve phase: assess a random sample through the real serving path.
	// Nearly every sampled server is evicted by now, so each latency is a
	// fault-in (section read + digest-verified reinstate + assessment); the
	// differential check recomputes the verdict from the generator's records.
	const threshold = 0.7
	rng := rand.New(rand.NewSource(7))
	lat := make([]time.Duration, 0, samples)
	match := true
	for i := 0; i < samples; i++ {
		s := rng.Intn(servers)
		id := feedback.EntityID(fmt.Sprintf("m%07d", s))
		t0 := time.Now()
		resp, err := srv.Assess(context.Background(), wire.AssessRequest{Server: id, Threshold: threshold})
		if err != nil {
			return mode, fmt.Errorf("assess %s: %w", id, err)
		}
		lat = append(lat, time.Since(t0))

		ref := feedback.NewHistory(id)
		for j := 0; j < recsPer; j++ {
			if err := ref.Append(memRecord(s, j, recsPer)); err != nil {
				return mode, err
			}
		}
		wantAccept, wantA, err := tp.Accept(ref, threshold)
		if err != nil {
			return mode, fmt.Errorf("reference assess %s: %w", id, err)
		}
		if resp.Accept != wantAccept || !reflect.DeepEqual(resp.Assessment, wantA) {
			match = false
		}
	}
	mode.SampledAssess = samples
	mode.FaultInP50Ms = float64(int(quantileMs(lat, 0.50)*1000)) / 1000
	mode.FaultInP99Ms = float64(int(quantileMs(lat, 0.99)*1000)) / 1000
	mode.VerdictsMatch = match
	mode.Rebuilds = ps.Stats().Rebuilds
	return mode, nil
}

// runMemBench executes the bounded-memory lifecycle benchmark in both
// serving modes and writes the JSON report. Gates (always on): sampled
// verdicts must match the reference exactly, the peak accounted footprint
// must stay at or under the budget, and the budget must be under 25% of the
// estimated full-resident footprint — proving the bound is doing real work.
func runMemBench(out io.Writer, quick bool) error {
	servers, recsPer, samples := 1000000, 8, 1500
	budget := int64(64 << 20)
	snapEvery := 1000000
	if quick {
		servers, recsPer, samples = 20000, 8, 300
		budget = 2 << 20
		snapEvery = 40000
	}
	report := memBenchReport{
		Description: "Resident-state lifecycle under a node-wide memory budget: N servers stream through a budgeted PersistentStore (idle servers evicted to stubs, snapshots every snapshot_every records), then a random sample is assessed through the serving path so each call pays a fault-in (snapshot-section read, digest-verified reinstate). Differential check: every sampled verdict must equal a from-scratch assessment of the same records, in both serving modes.",
		Command:     "go run ./cmd/reprobench -membench",
		Environment: map[string]any{
			"go":   runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
			"date": time.Now().UTC().Format("2006-01-02"),
		},
		Config: map[string]any{
			"servers":            servers,
			"records_per_server": recsPer,
			"budget_bytes":       budget,
			"snapshot_every":     snapEvery,
			"shards":             64,
			"threshold":          0.7,
			"sampled_assess":     samples,
			"trust":              "average",
		},
		Acceptance: "peak_accounted_bytes <= budget_bytes, budget_fraction_of_full < 0.25, verdicts_match true in both modes",
	}
	work, err := os.MkdirTemp("", "membench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)
	for _, incremental := range []bool{false, true} {
		dir := fmt.Sprintf("%s/mode-incr%v", work, incremental)
		mode, err := runMemMode(dir, servers, recsPer, samples, budget, snapEvery, incremental)
		if err != nil {
			return fmt.Errorf("incremental=%v: %w", incremental, err)
		}
		report.Modes = append(report.Modes, mode)
		if !mode.VerdictsMatch {
			return fmt.Errorf("incremental=%v: sampled verdicts diverge from reference", incremental)
		}
		if mode.PeakAccounted > budget {
			return fmt.Errorf("incremental=%v: peak accounted %d bytes exceeds budget %d", incremental, mode.PeakAccounted, budget)
		}
		if mode.BudgetFraction >= 0.25 {
			return fmt.Errorf("incremental=%v: budget is %.0f%% of full-resident (gate: <25%%) — population too small to prove the bound", incremental, 100*mode.BudgetFraction)
		}
		os.RemoveAll(dir)
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
