// Command attacksim runs a single adversary scenario against a chosen
// defence and reports the attacker's cost and transaction timeline — the
// interactive counterpart of the batch experiments in cmd/reprobench.
//
// Usage:
//
//	attacksim -attack strategic -scheme multi -trust average -prep 400
//	attacksim -attack colluding -scheme collusion-multi -goal 20
//	attacksim -attack periodic -window 40
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"honestplayer/internal/attack"
	"honestplayer/internal/behavior"
	"honestplayer/internal/core"
	"honestplayer/internal/feedback"
	"honestplayer/internal/sim"
	"honestplayer/internal/stats"
	"honestplayer/internal/trust"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "attacksim:", err)
		os.Exit(1)
	}
}

type options struct {
	attackKind string
	scheme     string
	trustName  string
	lambda     float64
	prep       int
	prepP      float64
	goal       int
	threshold  float64
	window     int
	seed       uint64
	colluders  int
	clients    int
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("attacksim", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.attackKind, "attack", "strategic", "attack: strategic | colluding | hibernating | periodic | cheatandrun")
	fs.StringVar(&o.scheme, "scheme", "multi", "behaviour testing: none | single | multi | collusion | collusion-multi")
	fs.StringVar(&o.trustName, "trust", "average", "trust function: average | weighted | beta")
	fs.Float64Var(&o.lambda, "lambda", 0.5, "lambda for the weighted trust function")
	fs.IntVar(&o.prep, "prep", 400, "preparation-phase length (transactions)")
	fs.Float64Var(&o.prepP, "prep-p", 0.95, "preparation-phase trustworthiness")
	fs.IntVar(&o.goal, "goal", 20, "bad transactions the attacker wants")
	fs.Float64Var(&o.threshold, "threshold", 0.9, "clients' trust threshold")
	fs.IntVar(&o.window, "window", 40, "attack window for -attack periodic")
	fs.Uint64Var(&o.seed, "seed", 42, "random seed")
	fs.IntVar(&o.colluders, "colluders", 5, "colluders for -attack colluding")
	fs.IntVar(&o.clients, "clients", 100, "total client pool for -attack colluding")
	if err := fs.Parse(args); err != nil {
		return err
	}

	assessor, err := buildAssessor(o)
	if err != nil {
		return err
	}
	rng := stats.NewRNG(o.seed)
	switch o.attackKind {
	case "strategic":
		return runStrategic(o, assessor, rng, out)
	case "colluding":
		return runColluding(o, assessor, rng, out)
	case "hibernating", "periodic", "cheatandrun":
		return runGenerated(o, assessor, rng, out)
	default:
		return fmt.Errorf("unknown attack %q", o.attackKind)
	}
}

func buildAssessor(o options) (*core.TwoPhase, error) {
	var fn trust.Func
	switch o.trustName {
	case "average":
		fn = trust.Average{}
	case "weighted":
		w, err := trust.NewWeighted(o.lambda)
		if err != nil {
			return nil, err
		}
		fn = w
	case "beta":
		fn = trust.Beta{}
	default:
		return nil, fmt.Errorf("unknown trust function %q", o.trustName)
	}
	cfg := behavior.Config{Calibrator: stats.NewCalibrator(stats.CalibrationConfig{Seed: o.seed}, 0)}
	var (
		tester behavior.Tester
		err    error
	)
	switch o.scheme {
	case "none":
	case "single":
		tester, err = behavior.NewSingle(cfg)
	case "multi":
		tester, err = behavior.NewMulti(cfg)
	case "collusion":
		tester, err = behavior.NewCollusion(cfg)
	case "collusion-multi":
		tester, err = behavior.NewCollusionMulti(cfg)
	default:
		return nil, fmt.Errorf("unknown scheme %q", o.scheme)
	}
	if err != nil {
		return nil, err
	}
	return core.NewTwoPhase(tester, fn)
}

func runStrategic(o options, assessor *core.TwoPhase, rng *stats.RNG, out io.Writer) error {
	h, err := attack.PrepareHistory("attacker", o.prep, o.prepP, 50, rng)
	if err != nil {
		return err
	}
	s := &attack.Strategic{Assessor: assessor, Threshold: o.threshold, GoalBad: o.goal}
	cost, err := s.Run(h, rng)
	unreachable := errors.Is(err, attack.ErrGoalUnreachable)
	if err != nil && !unreachable {
		return err
	}
	fmt.Fprintf(out, "strategic attacker vs %s (threshold %.2f)\n", assessor.Name(), o.threshold)
	fmt.Fprintf(out, "preparation: %d transactions at %.0f%%\n", o.prep, o.prepP*100)
	printCost(out, cost, o.goal, unreachable)
	printTimeline(out, h, o.prep)
	return nil
}

func runColluding(o options, assessor *core.TwoPhase, rng *stats.RNG, out io.Writer) error {
	colluders := make([]feedback.EntityID, o.colluders)
	for i := range colluders {
		colluders[i] = feedback.EntityID("colluder-" + strconv.Itoa(i))
	}
	h, err := attack.PrepareByColluders("attacker", o.prep, o.prepP, colluders, rng)
	if err != nil {
		return err
	}
	pop, err := sim.NewPopulation("client", o.clients-o.colluders, 0, 0, 0, rng.Split())
	if err != nil {
		return err
	}
	c := &attack.Colluding{
		Assessor: assessor, Threshold: o.threshold, GoalBad: o.goal, Colluders: colluders,
	}
	cost, err := c.Run(h, pop, rng)
	unreachable := errors.Is(err, attack.ErrGoalUnreachable)
	if err != nil && !unreachable {
		return err
	}
	fmt.Fprintf(out, "colluding attacker (%d colluders of %d clients) vs %s\n",
		o.colluders, o.clients, assessor.Name())
	fmt.Fprintf(out, "preparation: %d colluder-backed transactions at %.0f%%\n", o.prep, o.prepP*100)
	printCost(out, cost, o.goal, unreachable)
	fmt.Fprintf(out, "colluder fakes used: %d\n", cost.Colluded)
	printTimeline(out, h, o.prep)
	return nil
}

func runGenerated(o options, assessor *core.TwoPhase, rng *stats.RNG, out io.Writer) error {
	var (
		h   *feedback.History
		err error
	)
	switch o.attackKind {
	case "hibernating":
		h, err = attack.GenHibernating("attacker", o.prep, o.prepP, o.goal, rng)
	case "periodic":
		h, err = attack.GenPeriodic("attacker", o.prep+o.goal*10, o.window, 0.1, rng)
	case "cheatandrun":
		h, err = attack.GenCheatAndRun("attacker", o.prep, rng)
	}
	if err != nil {
		return err
	}
	a, err := assessor.Assess(h)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s history (%d transactions, good ratio %.3f) vs %s\n",
		o.attackKind, h.Len(), h.GoodRatio(), assessor.Name())
	if a.Suspicious {
		worst := a.Verdict.Worst()
		fmt.Fprintf(out, "verdict: SUSPICIOUS (L1 %.3f > eps %.3f over last %d txns)\n",
			worst.Distance, worst.Threshold, worst.Transactions)
	} else {
		fmt.Fprintf(out, "verdict: passes behaviour testing, trust %.3f\n", a.Trust)
	}
	printTimeline(out, h, 0)
	return nil
}

func printCost(out io.Writer, cost attack.Cost, goal int, unreachable bool) {
	if unreachable {
		fmt.Fprintf(out, "RESULT: goal NOT reached within the step budget (%d/%d bad)\n", cost.Bad, goal)
	} else {
		fmt.Fprintf(out, "RESULT: %d attacks achieved\n", cost.Bad)
	}
	fmt.Fprintf(out, "cost: %d genuine good transactions over %d steps\n", cost.Good, cost.Steps)
}

// printTimeline renders the attack phase as one character per transaction
// ('.' good, 'X' bad), 80 per line.
func printTimeline(out io.Writer, h *feedback.History, from int) {
	fmt.Fprintln(out, "attack-phase timeline (. good, X bad):")
	var sb strings.Builder
	for i := from; i < h.Len(); i++ {
		if h.At(i).Good() {
			sb.WriteByte('.')
		} else {
			sb.WriteByte('X')
		}
		if (i-from+1)%80 == 0 {
			sb.WriteByte('\n')
		}
	}
	fmt.Fprintln(out, strings.TrimRight(sb.String(), "\n"))
}
