package behavior

import (
	"errors"
	"fmt"
	"sort"

	"honestplayer/internal/feedback"
)

// PartitionFunc assigns a transaction to a category (e.g. "weekday" vs.
// "weekend", or a client region).
type PartitionFunc func(feedback.Feedback) string

// Partitioned implements the category extension of §3.1/§4: when known
// factors make an honest server's quality non-uniform — time of day,
// client region, transaction type — a single binomial model raises false
// alerts. Partitioned splits the history by a caller-supplied category
// function and applies the inner tester to each category's subhistory
// separately, so each category is compared against its own B(m, p̂).
//
// Categories whose subhistory is too short to test are skipped (they are
// the short-history problem in miniature and follow the same policy
// decision at the core layer); a server is honest only if every testable
// category passes. When no category is testable, Test reports
// ErrInsufficientHistory.
type Partitioned struct {
	inner     Tester
	partition PartitionFunc
}

var _ Tester = (*Partitioned)(nil)

// NewPartitioned wraps an inner tester with a category partition.
func NewPartitioned(inner Tester, partition PartitionFunc) (*Partitioned, error) {
	if inner == nil {
		return nil, fmt.Errorf("%w: nil inner tester", ErrBadConfig)
	}
	if partition == nil {
		return nil, fmt.Errorf("%w: nil partition function", ErrBadConfig)
	}
	return &Partitioned{inner: inner, partition: partition}, nil
}

// Name implements Tester.
func (p *Partitioned) Name() string { return "partitioned(" + p.inner.Name() + ")" }

// CategoryVerdict is one category's outcome within a partitioned test.
type CategoryVerdict struct {
	// Category is the partition label.
	Category string `json:"category"`
	// Transactions in this category.
	Transactions int `json:"transactions"`
	// Tested is false when the category was too short to test.
	Tested bool `json:"tested"`
	// Verdict is the inner tester's verdict when Tested.
	Verdict Verdict `json:"verdict"`
}

// Test implements Tester, merging per-category verdicts.
func (p *Partitioned) Test(h *feedback.History) (Verdict, error) {
	cats, err := p.TestByCategory(h)
	if err != nil {
		return Verdict{}, err
	}
	merged := Verdict{Honest: true}
	for _, cv := range cats {
		if !cv.Tested {
			continue
		}
		merged.Suffixes = append(merged.Suffixes, cv.Verdict.Suffixes...)
		if !cv.Verdict.Honest {
			merged.Honest = false
		}
	}
	return merged, nil
}

// TestByCategory runs the inner tester per category and returns the
// detailed per-category verdicts, sorted by category label. It returns
// ErrInsufficientHistory when no category is long enough to test.
func (p *Partitioned) TestByCategory(h *feedback.History) ([]CategoryVerdict, error) {
	subs := make(map[string]*feedback.History)
	for i := 0; i < h.Len(); i++ {
		rec := h.At(i)
		cat := p.partition(rec)
		sub, ok := subs[cat]
		if !ok {
			sub = feedback.NewHistory(h.Server())
			subs[cat] = sub
		}
		if err := sub.Append(rec); err != nil {
			return nil, err
		}
	}
	labels := make([]string, 0, len(subs))
	for cat := range subs {
		labels = append(labels, cat)
	}
	sort.Strings(labels)

	out := make([]CategoryVerdict, 0, len(labels))
	tested := 0
	for _, cat := range labels {
		sub := subs[cat]
		cv := CategoryVerdict{Category: cat, Transactions: sub.Len()}
		v, err := p.inner.Test(sub)
		switch {
		case errors.Is(err, ErrInsufficientHistory):
			// Skipped: too short to judge on its own.
		case err != nil:
			return nil, fmt.Errorf("category %q: %w", cat, err)
		default:
			cv.Tested = true
			cv.Verdict = v
			tested++
		}
		out = append(out, cv)
	}
	if tested == 0 {
		return nil, fmt.Errorf("%w: no category spans enough windows", ErrInsufficientHistory)
	}
	return out, nil
}
