package attack

import (
	"fmt"
	"math"
	"strconv"

	"honestplayer/internal/feedback"
	"honestplayer/internal/stats"
)

// GenHibernating builds a hibernating-attack history (§3): prep honest
// transactions with trustworthiness p followed by burst consecutive bad
// transactions against fresh victims.
func GenHibernating(server feedback.EntityID, prep int, p float64, burst int, rng *stats.RNG) (*feedback.History, error) {
	if prep < 0 || burst < 0 || p < 0 || p > 1 {
		return nil, fmt.Errorf("%w: prep=%d burst=%d p=%v", ErrBadParams, prep, burst, p)
	}
	h, err := PrepareHistory(server, prep, p, 50, rng)
	if err != nil {
		return nil, err
	}
	for i := 0; i < burst; i++ {
		victim := feedback.EntityID("victim-" + strconv.Itoa(i))
		if err := h.AppendOutcome(victim, false, logicalTime(h.Len())); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// GenPeriodic builds the periodic-attack history of the Fig. 7 detection
// experiment: within every attack window of `window` transactions the
// attacker conducts ⌈window·badFrac⌉ bad transactions, the rest good, so
// its reputation stays at ≈ 1−badFrac. The bad transactions are placed
// uniformly at random inside each window — the attacker's best effort at
// mimicking Bernoulli behaviour at that granularity; as the window grows the
// pattern approaches a genuine i.i.d. stream and detection must decay.
func GenPeriodic(server feedback.EntityID, n, window int, badFrac float64, rng *stats.RNG) (*feedback.History, error) {
	if n < 0 || window < 1 || badFrac < 0 || badFrac > 1 {
		return nil, fmt.Errorf("%w: n=%d window=%d badFrac=%v", ErrBadParams, n, window, badFrac)
	}
	h := feedback.NewHistory(server)
	badPerWindow := int(math.Ceil(float64(window) * badFrac))
	for start := 0; start < n; start += window {
		size := window
		if start+size > n {
			size = n - start
		}
		bad := badPerWindow
		if bad > size {
			bad = size
		}
		badAt := make(map[int]struct{}, bad)
		for _, idx := range rng.Sample(size, bad) {
			badAt[idx] = struct{}{}
		}
		for i := 0; i < size; i++ {
			_, isBad := badAt[i]
			client := feedback.EntityID("client-" + strconv.Itoa(rng.Intn(100)))
			if err := h.AppendOutcome(client, !isBad, logicalTime(h.Len())); err != nil {
				return nil, err
			}
		}
	}
	return h, nil
}

// GenCheatAndRun builds the cheat-and-run pattern of §3.1: a handful of
// good transactions followed by a single bad one, after which the attacker
// abandons the identity. Reputation systems cannot prevent it (the paper
// assumes admission-cost mechanisms instead); the generator exists so that
// tests and examples can demonstrate exactly that limitation.
func GenCheatAndRun(server feedback.EntityID, goods int, rng *stats.RNG) (*feedback.History, error) {
	if goods < 0 {
		return nil, fmt.Errorf("%w: goods=%d", ErrBadParams, goods)
	}
	h := feedback.NewHistory(server)
	for i := 0; i < goods; i++ {
		client := feedback.EntityID("client-" + strconv.Itoa(rng.Intn(20)))
		if err := h.AppendOutcome(client, true, logicalTime(h.Len())); err != nil {
			return nil, err
		}
	}
	if err := h.AppendOutcome("victim-0", false, logicalTime(h.Len())); err != nil {
		return nil, err
	}
	return h, nil
}

// GenHonest builds a fully honest multi-client history: n transactions with
// trustworthiness p from a pool of distinct clients. It is the null
// workload of the detection-rate experiments.
func GenHonest(server feedback.EntityID, n int, p float64, clientPool int, rng *stats.RNG) (*feedback.History, error) {
	return PrepareHistory(server, n, p, clientPool, rng)
}
