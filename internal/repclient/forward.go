package repclient

import (
	"context"

	"honestplayer/internal/feedback"
	"honestplayer/internal/wire"
)

// Node-to-node forwarding calls. These are the cluster's internal RPC
// surface (wire types fwd.* and cluster.info): trustd nodes use them to
// route requests to the owner of a server's history, and trustctl uses
// ClusterStatusCtx for `cluster-status`. They share the client's normal
// transport — pipelining, poisoning, redial — so a node-to-node link gets
// the same failure semantics as a client link.

// ForwardAssessCtx asks the peer for its local assessment of server,
// together with the local state digest backing it (record count, version,
// content XOR — the merge weight and agreement check). With digestOnly the
// peer skips the assessment and answers the digest alone, an O(1) call.
func (c *Client) ForwardAssessCtx(ctx context.Context, node string, server feedback.EntityID, threshold float64, digestOnly bool) (wire.NodeAssessment, error) {
	var resp wire.NodeAssessment
	req := wire.FwdAssessRequest{Node: node, Server: server, Threshold: threshold, DigestOnly: digestOnly}
	err := roundTrip(c, ctx, wire.TypeFwdAssess, wire.TypeFwdAssessR, req, &resp)
	return resp, err
}

// ForwardSubmitCtx hands one feedback record to the peer. Replica marks a
// replication write (stored without further fan-out).
func (c *Client) ForwardSubmitCtx(ctx context.Context, node string, f feedback.Feedback, replica bool) (bool, error) {
	var resp wire.SubmitResponse
	req := wire.FwdSubmitRequest{Node: node, Feedback: f, Replica: replica}
	if err := roundTrip(c, ctx, wire.TypeFwdSubmit, wire.TypeFwdSubmitR, req, &resp); err != nil {
		return false, err
	}
	return resp.Stored, nil
}

// ForwardBatchCtx hands a slice of records to the peer in one frame, with
// the same per-record report as a client batch submit.
func (c *Client) ForwardBatchCtx(ctx context.Context, node string, recs []feedback.Feedback, replica bool) (wire.BatchResponse, error) {
	var resp wire.BatchResponse
	req := wire.FwdBatchRequest{Node: node, Records: recs, Replica: replica}
	err := roundTrip(c, ctx, wire.TypeFwdBatch, wire.TypeFwdBatchR, req, &resp)
	return resp, err
}

// ForwardAssessBatchCtx asks the peer to assess servers from its local
// state; Items[i] answers servers[i].
func (c *Client) ForwardAssessBatchCtx(ctx context.Context, node string, servers []feedback.EntityID, threshold float64) ([]wire.AssessBatchItem, error) {
	var resp wire.FwdAssessBatchResponse
	req := wire.FwdAssessBatchRequest{Node: node, Servers: servers, Threshold: threshold}
	if err := roundTrip(c, ctx, wire.TypeFwdAssessB, wire.TypeFwdAssessBR, req, &resp); err != nil {
		return nil, err
	}
	return resp.Items, nil
}

// ClusterStatusCtx fetches the peer's view of its cluster. Single-node
// servers answer Enabled=false.
func (c *Client) ClusterStatusCtx(ctx context.Context) (wire.ClusterStatusResponse, error) {
	var resp wire.ClusterStatusResponse
	err := roundTrip(c, ctx, wire.TypeClusterInfo, wire.TypeClusterInfoR, wire.ClusterStatusRequest{}, &resp)
	return resp, err
}

// ClusterStatus is ClusterStatusCtx with the client's configured timeout.
func (c *Client) ClusterStatus() (wire.ClusterStatusResponse, error) {
	return c.ClusterStatusCtx(context.Background())
}
