package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"sort"
	"time"

	"honestplayer/internal/behavior"
	"honestplayer/internal/core"
	"honestplayer/internal/feedback"
	"honestplayer/internal/repserver"
	"honestplayer/internal/stats"
	"honestplayer/internal/trust"
	"honestplayer/internal/wire"
)

// The incremental-assessment benchmark compares the two serving strategies
// for the write-then-assess workload, where every write invalidates the
// assessment cache:
//
//   - recompute: assessment cache enabled, incremental engine off — each
//     assess after a write recomputes the full multi-test over the history.
//   - incremental: per-server accumulator on, cache off — each assess reads
//     the accumulator's running statistics.
//
// Both modes share the methodology of BenchmarkAssessAfterAppend
// (internal/repserver): the calibrator's Monte-Carlo grid is prewarmed
// outside the timer (it is a shared one-off cost), a warm-up reaches the
// steady state, and each measured iteration is one feedback append plus one
// assessment. Per mode the timed run is split into three passes and the
// median pass is reported, damping GC and machine noise.

// incrBenchSize is one history size of the comparison.
type incrBenchSize struct {
	History int // seeded records before measuring
	Iters   int // measured append+assess iterations per mode
	Warmup  int // unmeasured append+assess iterations per mode
}

// incrSizeResult is the per-size outcome.
type incrSizeResult struct {
	History          int     `json:"history"`
	Iters            int     `json:"iters"`
	RecomputeNsOp    float64 `json:"recompute_ns_per_op"`
	IncrementalNsOp  float64 `json:"incremental_ns_per_op"`
	Speedup          float64 `json:"speedup"`
	AssessmentsMatch bool    `json:"assessments_match"`
}

// incrBenchReport is the JSON document the -incrbench mode emits.
type incrBenchReport struct {
	Description string           `json:"description"`
	Command     string           `json:"command"`
	Environment map[string]any   `json:"environment"`
	Config      map[string]any   `json:"config"`
	Sizes       []incrSizeResult `json:"sizes"`
	Acceptance  string           `json:"acceptance"`
}

// incrHistory builds the honest-looking workload history: 19 good
// transactions out of every 20, spread over 25 clients.
func incrHistory(server feedback.EntityID, n int) []feedback.Feedback {
	recs := make([]feedback.Feedback, n)
	for i := range recs {
		r := feedback.Positive
		if i%20 == 19 {
			r = feedback.Negative
		}
		recs[i] = feedback.Feedback{
			Time:   time.Unix(int64(i), 0).UTC(),
			Server: server,
			Client: feedback.EntityID(fmt.Sprintf("c%d", i%25)),
			Rating: r,
		}
	}
	return recs
}

// incrServer builds one serving stack for a mode.
func incrServer(seed uint64, incremental bool) (*repserver.Server, *stats.Calibrator, error) {
	cal := stats.NewCalibrator(stats.CalibrationConfig{Seed: seed, Replicates: 200}, 0)
	tester, err := behavior.NewMulti(behavior.Config{Calibrator: cal})
	if err != nil {
		return nil, nil, err
	}
	tp, err := core.NewTwoPhase(tester, trust.Average{})
	if err != nil {
		return nil, nil, err
	}
	cacheSize := 1024
	if incremental {
		cacheSize = 0
	}
	srv, err := repserver.New("127.0.0.1:0", repserver.Config{
		Assessor:        tp,
		AssessCacheSize: cacheSize,
		Incremental:     incremental,
	})
	if err != nil {
		return nil, nil, err
	}
	return srv, cal, nil
}

// incrPrewarm fills every calibration grid point the workload can reach so
// the shared Monte-Carlo cost stays out of both modes' timed windows.
func incrPrewarm(cal *stats.Calibrator, maxWindows int) error {
	if maxWindows > stats.DefaultMaxCalibrationWindows {
		maxWindows = stats.DefaultMaxCalibrationWindows
	}
	for k := 1; k <= maxWindows; k++ {
		for p := 0.90; p <= 1.0+1e-9; p += 0.01 {
			if _, err := cal.Threshold(behavior.DefaultWindowSize, k, p); err != nil {
				return err
			}
		}
	}
	return nil
}

// incrMeasure runs one mode at one size and returns the median-pass ns/op
// and the final assessment (for the cross-mode differential check).
func incrMeasure(seed uint64, incremental bool, size incrBenchSize) (float64, core.Assessment, error) {
	srv, cal, err := incrServer(seed, incremental)
	if err != nil {
		return 0, core.Assessment{}, err
	}
	defer srv.Close()
	if _, err := srv.Seed(incrHistory("srv", size.History)); err != nil {
		return 0, core.Assessment{}, err
	}
	// Suffix lengths can grow past the seeded history during the run.
	maxWindows := (size.History + size.Warmup + size.Iters) / behavior.DefaultWindowSize
	if err := incrPrewarm(cal, maxWindows); err != nil {
		return 0, core.Assessment{}, err
	}
	ctx := context.Background()
	req := wire.AssessRequest{Server: "srv", Threshold: 0.9}
	next := int64(1 << 30)
	step := func() error {
		next++
		f := feedback.Feedback{
			Time:   time.Unix(next, 0).UTC(),
			Server: "srv",
			Client: feedback.EntityID(fmt.Sprintf("c%d", int(next)%25)),
			Rating: feedback.Positive,
		}
		if _, err := srv.Store().Add(f); err != nil {
			return err
		}
		if _, err := srv.Assess(ctx, req); err != nil {
			return err
		}
		return nil
	}
	for i := 0; i < size.Warmup; i++ {
		if err := step(); err != nil {
			return 0, core.Assessment{}, err
		}
	}
	const passes = 3
	perPass := size.Iters / passes
	if perPass == 0 {
		perPass = 1
	}
	nsOp := make([]float64, 0, passes)
	for p := 0; p < passes; p++ {
		start := time.Now()
		for i := 0; i < perPass; i++ {
			if err := step(); err != nil {
				return 0, core.Assessment{}, err
			}
		}
		nsOp = append(nsOp, float64(time.Since(start).Nanoseconds())/float64(perPass))
	}
	sort.Float64s(nsOp)
	resp, err := srv.Assess(ctx, req)
	if err != nil {
		return 0, core.Assessment{}, err
	}
	return nsOp[passes/2], resp.Assessment, nil
}

// runIncrBench executes the full incremental-vs-recompute comparison and
// writes the JSON report.
func runIncrBench(out io.Writer, seed uint64, quick bool) error {
	sizes := []incrBenchSize{
		{History: 1000, Iters: 1500, Warmup: 200},
		{History: 10000, Iters: 900, Warmup: 200},
		{History: 100000, Iters: 60, Warmup: 30},
	}
	if quick {
		sizes = []incrBenchSize{{History: 1000, Iters: 30, Warmup: 10}}
	}
	report := incrBenchReport{
		Description: "Write-then-assess latency of the incremental assessment engine vs the cache-invalidated recompute path. Each iteration appends one feedback record (invalidating any cached assessment) and runs one multi-test assessment; the calibration grid is prewarmed outside the timer for both modes and the median of three timed passes is reported.",
		Command:     "go run ./cmd/reprobench -incrbench",
		Environment: map[string]any{
			"go":   runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
			"date": time.Now().UTC().Format("2006-01-02"),
		},
		Config: map[string]any{
			"window_size":            behavior.DefaultWindowSize,
			"clients":                25,
			"good_ratio":             "19/20",
			"trust":                  "average",
			"tester":                 "multi",
			"calibration_replicates": 200,
			"recompute_cache":        1024,
			"passes_per_mode":        3,
		},
		Acceptance: "speedup at history=10000 must be >= 10",
	}
	for _, size := range sizes {
		rec, recA, err := incrMeasure(seed, false, size)
		if err != nil {
			return fmt.Errorf("history=%d recompute: %w", size.History, err)
		}
		inc, incA, err := incrMeasure(seed, true, size)
		if err != nil {
			return fmt.Errorf("history=%d incremental: %w", size.History, err)
		}
		report.Sizes = append(report.Sizes, incrSizeResult{
			History:         size.History,
			Iters:           size.Iters,
			RecomputeNsOp:   rec,
			IncrementalNsOp: inc,
			Speedup:         float64(int(rec/inc*100)) / 100,
			// Differential check: both modes assessed the identical final
			// history; the incremental engine guarantees bit-identical
			// assessments, so anything but a perfect match is a bug.
			AssessmentsMatch: reflect.DeepEqual(recA, incA),
		})
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
