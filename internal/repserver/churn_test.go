package repserver

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"honestplayer/internal/feedback"
	"honestplayer/internal/ledger"
	"honestplayer/internal/wire"
)

// TestEvictionChurn hammers a server whose store runs under a budget small
// enough that servers evict constantly: concurrent writers (which self-heal
// through rebuilds), concurrent assessors (which fault evicted servers back
// in through the single-flight path), and a snapshot loop rotating the tail
// index underneath both. Meant for -race; afterwards every server's state
// must still assess identically to a from-scratch reference.
func TestEvictionChurn(t *testing.T) {
	const (
		servers   = 32
		perServer = 6
		writers   = 4
		assessors = 4
		churnOps  = 150
	)
	dir := filepath.Join(t.TempDir(), "led")
	ps, err := ledger.OpenStoreOptions(context.Background(), dir, ledger.Options{
		Shards:       4,
		SegmentBytes: 1 << 20,
		MemBudget:    12 << 10, // holds roughly half the population
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()

	srv, err := New("127.0.0.1:0", Config{
		Assessor:  testAssessor(t),
		Store:     ps.Store(),
		Recorder:  ps,
		Rebuilder: ps,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	id := func(i int) feedback.EntityID {
		return feedback.EntityID(fmt.Sprintf("churn%02d", i%servers))
	}
	// Seed every server and snapshot so rebuilds have sections to read.
	var clock atomic.Int64
	clock.Store(1)
	write := func(i int) error {
		at := clock.Add(1)
		f := rec(id(i), feedback.EntityID(fmt.Sprintf("c%d", at%9)), at%5 != 0, at)
		_, err := ps.Add(f)
		return err
	}
	for i := 0; i < servers*perServer; i++ {
		if err := write(i); err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
	}
	if _, err := ps.Snapshot(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errc := make(chan error, writers+assessors+1)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < churnOps; i++ {
				if err := write(w*churnOps + i); err != nil {
					errc <- fmt.Errorf("writer %d op %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	for a := 0; a < assessors; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < churnOps; i++ {
				req := wire.AssessRequest{Server: id(a*7 + i), Threshold: 0.7}
				if _, err := srv.Assess(ctx, req); err != nil {
					// Eviction thrash is the one legitimate refusal under a
					// deliberately tiny budget; anything else is a bug.
					if we, ok := err.(*wire.ErrorResponse); ok && we.Code == wire.CodeUnavailable {
						continue
					}
					errc <- fmt.Errorf("assessor %d op %d: %w", a, i, err)
					return
				}
			}
		}(a)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if _, err := ps.Snapshot(); err != nil {
				errc <- fmt.Errorf("snapshot %d: %w", i, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Differential: every server, faulted in if needed, must assess exactly
	// like a fresh assessor over the same records.
	ref := testAssessor(t)
	for i := 0; i < servers; i++ {
		resp, err := srv.Assess(ctx, wire.AssessRequest{Server: id(i), Threshold: 0.7})
		if err != nil {
			t.Fatalf("final assess %s: %v", id(i), err)
		}
		recs := ps.Store().Records(id(i))
		if len(recs) == 0 {
			t.Fatalf("server %s lost its records", id(i))
		}
		h, err := feedback.NewHistoryFromRecords(id(i), recs)
		if err != nil {
			t.Fatal(err)
		}
		wantAccept, wantA, err := ref.Accept(h, 0.7)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Accept != wantAccept || resp.Assessment.Trust != wantA.Trust {
			t.Fatalf("server %s: served (%v, %v) vs reference (%v, %v)",
				id(i), resp.Accept, resp.Assessment.Trust, wantAccept, wantA.Trust)
		}
	}
	st := srv.Stats()
	if st.Lifecycle.FaultIns == 0 {
		t.Fatal("churn produced no fault-ins; budget not small enough to exercise the lifecycle")
	}
	if life := ps.Store().Lifecycle(); life.Evictions == 0 {
		t.Fatal("no evictions under a 12KiB budget")
	}
}
