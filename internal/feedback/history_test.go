package feedback

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

// buildHistory appends outcomes (true = good) from distinct clients.
func buildHistory(t *testing.T, server EntityID, outcomes []bool) *History {
	t.Helper()
	h := NewHistory(server)
	for i, g := range outcomes {
		if err := h.AppendOutcome(EntityID("c"), g, time.Unix(int64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func TestHistoryAppendAndCounts(t *testing.T) {
	h := buildHistory(t, "s", []bool{true, false, true, true})
	if h.Len() != 4 {
		t.Fatalf("Len = %d", h.Len())
	}
	if h.GoodCount() != 3 {
		t.Fatalf("GoodCount = %d", h.GoodCount())
	}
	if got := h.GoodRatio(); got != 0.75 {
		t.Fatalf("GoodRatio = %v", got)
	}
	if got := h.GoodInRange(1, 3); got != 1 {
		t.Fatalf("GoodInRange(1,3) = %d, want 1", got)
	}
	if h.Server() != "s" {
		t.Fatalf("Server = %q", h.Server())
	}
}

func TestHistoryEmpty(t *testing.T) {
	h := NewHistory("s")
	if h.GoodRatio() != 0 {
		t.Error("empty GoodRatio must be 0")
	}
	if err := h.RemoveLast(); !errors.Is(err, ErrEmptyHistory) {
		t.Errorf("RemoveLast on empty = %v", err)
	}
	counts, err := h.WindowCounts(10)
	if err != nil || len(counts) != 0 {
		t.Errorf("WindowCounts on empty = %v, %v", counts, err)
	}
}

func TestHistoryAppendValidates(t *testing.T) {
	h := NewHistory("s")
	if err := h.Append(fb("other", "c", Positive, 1)); !errors.Is(err, ErrServerMismatch) {
		t.Errorf("server mismatch = %v", err)
	}
	if err := h.Append(fb("s", "", Positive, 1)); !errors.Is(err, ErrEmptyEntity) {
		t.Errorf("invalid feedback = %v", err)
	}
	if h.Len() != 0 {
		t.Error("failed appends must not modify history")
	}
}

func TestHistoryRemoveLast(t *testing.T) {
	h := buildHistory(t, "s", []bool{true, false})
	if err := h.RemoveLast(); err != nil {
		t.Fatal(err)
	}
	if h.Len() != 1 || h.GoodCount() != 1 {
		t.Fatalf("after RemoveLast: len=%d good=%d", h.Len(), h.GoodCount())
	}
	// Append-remove round trip restores counts.
	if err := h.AppendOutcome("c", false, time.Unix(9, 0)); err != nil {
		t.Fatal(err)
	}
	_ = h.RemoveLast()
	if h.Len() != 1 || h.GoodCount() != 1 {
		t.Fatal("append+remove did not round-trip")
	}
}

func TestHistoryWindowCounts(t *testing.T) {
	// 7 records, window 3 -> 2 windows, trailing record dropped.
	h := buildHistory(t, "s", []bool{true, true, false, true, false, false, true})
	counts, err := h.WindowCounts(3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 1}
	if len(counts) != 2 || counts[0] != want[0] || counts[1] != want[1] {
		t.Fatalf("WindowCounts = %v, want %v", counts, want)
	}
	// From the end: leading record dropped instead.
	countsEnd, err := h.WindowCountsFromEnd(3)
	if err != nil {
		t.Fatal(err)
	}
	wantEnd := []int{2, 1} // [t,f,t]=2, [f,f,t]=1
	if len(countsEnd) != 2 || countsEnd[0] != wantEnd[0] || countsEnd[1] != wantEnd[1] {
		t.Fatalf("WindowCountsFromEnd = %v, want %v", countsEnd, wantEnd)
	}
}

func TestHistoryWindowCountsBadWindow(t *testing.T) {
	h := buildHistory(t, "s", []bool{true})
	if _, err := h.WindowCounts(0); !errors.Is(err, ErrBadWindow) {
		t.Errorf("WindowCounts(0) = %v", err)
	}
	if _, err := h.WindowCountsFromEnd(-1); !errors.Is(err, ErrBadWindow) {
		t.Errorf("WindowCountsFromEnd(-1) = %v", err)
	}
}

func TestHistorySuffixView(t *testing.T) {
	h := buildHistory(t, "s", []bool{true, false, true, true, false})
	v := h.SuffixView(3)
	if v.Len() != 3 {
		t.Fatalf("suffix len = %d", v.Len())
	}
	if v.GoodCount() != 2 {
		t.Fatalf("suffix good = %d", v.GoodCount())
	}
	if v.At(0) != h.At(2) {
		t.Fatal("suffix view misaligned")
	}
	// Oversized n returns whole history.
	if h.SuffixView(100) != h {
		t.Fatal("oversized suffix must return the receiver")
	}
}

func TestHistoryOutcomesAndRecordsAreCopies(t *testing.T) {
	h := buildHistory(t, "s", []bool{true, false})
	recs := h.Records()
	recs[0].Rating = Negative
	if !h.At(0).Good() {
		t.Fatal("Records exposed internal state")
	}
	outs := h.Outcomes()
	if !outs[0] || outs[1] {
		t.Fatalf("Outcomes = %v", outs)
	}
}

func TestHistoryClone(t *testing.T) {
	h := buildHistory(t, "s", []bool{true, false})
	c := h.Clone()
	if err := c.AppendOutcome("x", true, time.Unix(99, 0)); err != nil {
		t.Fatal(err)
	}
	if h.Len() != 2 || c.Len() != 3 {
		t.Fatalf("clone not independent: %d vs %d", h.Len(), c.Len())
	}
}

func TestGroupByIssuer(t *testing.T) {
	h := NewHistory("s")
	seq := []struct {
		c EntityID
		g bool
	}{
		{"a", true}, {"b", true}, {"a", false}, {"c", true}, {"a", true}, {"b", false},
	}
	for i, e := range seq {
		if err := h.AppendOutcome(e.c, e.g, time.Unix(int64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	groups := h.GroupByIssuer()
	if len(groups) != 3 {
		t.Fatalf("groups = %d", len(groups))
	}
	if groups[0].Client != "a" || len(groups[0].Indices) != 3 {
		t.Fatalf("largest group = %+v", groups[0])
	}
	if groups[1].Client != "b" || groups[2].Client != "c" {
		t.Fatalf("group order: %v, %v", groups[1].Client, groups[2].Client)
	}
	// Indices within a group ascend (time order).
	for _, g := range groups {
		for i := 1; i < len(g.Indices); i++ {
			if g.Indices[i-1] >= g.Indices[i] {
				t.Fatalf("group %s indices not ascending: %v", g.Client, g.Indices)
			}
		}
	}
}

func TestGroupByIssuerTieBreak(t *testing.T) {
	h := NewHistory("s")
	_ = h.AppendOutcome("z", true, time.Unix(0, 0))
	_ = h.AppendOutcome("a", true, time.Unix(1, 0))
	groups := h.GroupByIssuer()
	if groups[0].Client != "a" || groups[1].Client != "z" {
		t.Fatalf("tie break not by client id: %v", groups)
	}
}

func TestCollusionOrder(t *testing.T) {
	h := NewHistory("s")
	// colluder issues 3 feedbacks, victims 1 each.
	_ = h.AppendOutcome("victim1", false, time.Unix(0, 0))
	_ = h.AppendOutcome("colluder", true, time.Unix(1, 0))
	_ = h.AppendOutcome("colluder", true, time.Unix(2, 0))
	_ = h.AppendOutcome("victim2", false, time.Unix(3, 0))
	_ = h.AppendOutcome("colluder", true, time.Unix(4, 0))

	ordered := h.CollusionOrder()
	if ordered.Len() != h.Len() {
		t.Fatalf("reorder changed length: %d", ordered.Len())
	}
	wantClients := []EntityID{"colluder", "colluder", "colluder", "victim1", "victim2"}
	for i, want := range wantClients {
		if got := ordered.At(i).Client; got != want {
			t.Fatalf("position %d client = %s, want %s", i, got, want)
		}
	}
	if ordered.GoodCount() != h.GoodCount() {
		t.Fatal("reorder changed good count")
	}
}

// Property: CollusionOrder is a permutation — same multiset of records.
func TestCollusionOrderIsPermutation(t *testing.T) {
	f := func(raw []uint8) bool {
		h := NewHistory("s")
		for i, r := range raw {
			client := EntityID(rune('a' + r%5))
			good := r%3 != 0
			if err := h.AppendOutcome(client, good, time.Unix(int64(i), 0)); err != nil {
				return false
			}
		}
		ordered := h.CollusionOrder()
		if ordered.Len() != h.Len() || ordered.GoodCount() != h.GoodCount() {
			return false
		}
		count := func(hh *History) map[Feedback]int {
			m := make(map[Feedback]int)
			for i := 0; i < hh.Len(); i++ {
				m[hh.At(i)]++
			}
			return m
		}
		a, b := count(h), count(ordered)
		if len(a) != len(b) {
			return false
		}
		for k, v := range a {
			if b[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: prefix sums agree with direct recount for random ranges.
func TestGoodInRangeMatchesRecount(t *testing.T) {
	f := func(raw []bool, loRaw, hiRaw uint8) bool {
		h := NewHistory("s")
		for i, g := range raw {
			if err := h.AppendOutcome("c", g, time.Unix(int64(i), 0)); err != nil {
				return false
			}
		}
		n := h.Len()
		if n == 0 {
			return true
		}
		lo := int(loRaw) % (n + 1)
		hi := int(hiRaw) % (n + 1)
		if lo > hi {
			lo, hi = hi, lo
		}
		want := 0
		for i := lo; i < hi; i++ {
			if h.At(i).Good() {
				want++
			}
		}
		return h.GoodInRange(lo, hi) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDistinctClients(t *testing.T) {
	h := NewHistory("s")
	for i, c := range []EntityID{"a", "b", "a", "c"} {
		_ = h.AppendOutcome(c, true, time.Unix(int64(i), 0))
	}
	if got := h.DistinctClients(); got != 3 {
		t.Fatalf("DistinctClients = %d", got)
	}
}

func TestHistoryString(t *testing.T) {
	h := buildHistory(t, "srv", []bool{true})
	s := h.String()
	if s == "" || h.Server() != "srv" {
		t.Fatalf("String = %q", s)
	}
}
