// Quickstart: build a transaction history, run the two-phase trust
// assessment, and see the behaviour test separate an honest seller from a
// hibernating attacker that the plain average trust function cannot tell
// apart.
package main

import (
	"fmt"
	"log"
	"time"

	"honestplayer"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := honestplayer.NewRNG(7)

	// An honest seller: 500 transactions at 95% quality.
	honest := honestplayer.NewHistory("honest-seller")
	for i := 0; i < 500; i++ {
		if err := honest.AppendOutcome("buyer", rng.Bernoulli(0.95), time.Unix(int64(i), 0)); err != nil {
			return err
		}
	}

	// A hibernating attacker: 480 honest transactions, then 20 consecutive
	// cheats. Its overall good ratio is still ≈ 0.93 — above a
	// 0.9 trust threshold.
	attacker, err := honestplayer.GenHibernating("sleeper", 480, 0.97, 20, rng)
	if err != nil {
		return err
	}

	// Phase 2 only: the conventional average trust function.
	baseline, err := honestplayer.NewTwoPhase(nil, honestplayer.Average{})
	if err != nil {
		return err
	}
	// Two-phase: multi-testing (Scheme 2) + average.
	tester, err := honestplayer.NewMultiTester(honestplayer.TesterConfig{})
	if err != nil {
		return err
	}
	twophase, err := honestplayer.NewTwoPhase(tester, honestplayer.Average{})
	if err != nil {
		return err
	}

	for _, h := range []*honestplayer.History{honest, attacker} {
		fmt.Printf("server %q (%d transactions, good ratio %.3f)\n",
			h.Server(), h.Len(), h.GoodRatio())
		for _, assessor := range []*honestplayer.TwoPhase{baseline, twophase} {
			ok, a, err := assessor.Accept(h, 0.9)
			if err != nil {
				return err
			}
			switch {
			case a.Suspicious:
				worst := a.Verdict.Worst()
				fmt.Printf("  %-22s SUSPICIOUS (L1 distance %.3f > threshold %.3f over last %d txns)\n",
					assessor.Name()+":", worst.Distance, worst.Threshold, worst.Transactions)
			case ok:
				fmt.Printf("  %-22s accept, trust %.3f\n", assessor.Name()+":", a.Trust)
			default:
				fmt.Printf("  %-22s reject, trust %.3f below threshold\n", assessor.Name()+":", a.Trust)
			}
		}
	}
	return nil
}
