package feedback

import (
	"errors"
	"fmt"
	"slices"
	"sort"
	"time"
)

// History errors.
var (
	// ErrServerMismatch reports an append whose feedback names a different
	// server than the history belongs to.
	ErrServerMismatch = errors.New("feedback: server mismatch")
	// ErrEmptyHistory reports an operation that needs at least one record.
	ErrEmptyHistory = errors.New("feedback: empty history")
	// ErrBadWindow reports an invalid window size.
	ErrBadWindow = errors.New("feedback: invalid window size")
)

// History is the append-only transaction history of a single server: the
// time-ordered sequence of feedbacks its transactions received. It maintains
// a prefix-sum index of good transactions so that range statistics — the
// foundation of both trust functions and behaviour tests — cost O(1).
//
// History is not safe for concurrent use; the store layer serialises access.
type History struct {
	server EntityID
	recs   []Feedback
	// goodPrefix[i] is the number of good transactions among the first i
	// records; len(goodPrefix) == len(recs)+1.
	goodPrefix []int
}

// NewHistory returns an empty history for the given server.
func NewHistory(server EntityID) *History {
	return &History{server: server, goodPrefix: []int{0}}
}

// Server returns the server this history belongs to.
func (h *History) Server() EntityID { return h.server }

// Len returns the number of recorded transactions.
func (h *History) Len() int { return len(h.recs) }

// At returns the i-th record (0 = oldest). It panics on out-of-range i,
// matching slice semantics.
func (h *History) At(i int) Feedback { return h.recs[i] }

// NewHistoryFromRecords builds a history over recs in one pass, validating
// every record and its server. The history takes ownership of recs — the
// caller must not modify the slice afterwards. Bulk loaders (snapshot
// seeding) use this to avoid re-copying records one Append at a time.
func NewHistoryFromRecords(server EntityID, recs []Feedback) (*History, error) {
	h := &History{server: server, recs: recs, goodPrefix: make([]int, len(recs)+1)}
	for i, f := range recs {
		if err := f.Validate(); err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
		if f.Server != server {
			return nil, fmt.Errorf("record %d: %w: history %q, feedback %q", i, ErrServerMismatch, server, f.Server)
		}
		good := 0
		if f.Good() {
			good = 1
		}
		h.goodPrefix[i+1] = h.goodPrefix[i] + good
	}
	return h, nil
}

// Grow pre-allocates capacity for n additional records, so bulk loaders
// (snapshot seeding, replay) don't pay incremental reallocation.
func (h *History) Grow(n int) {
	if n <= 0 {
		return
	}
	h.recs = slices.Grow(h.recs, n)
	h.goodPrefix = slices.Grow(h.goodPrefix, n)
}

// Append validates f and adds it as the newest record.
func (h *History) Append(f Feedback) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if f.Server != h.server {
		return fmt.Errorf("%w: history %q, feedback %q", ErrServerMismatch, h.server, f.Server)
	}
	h.recs = append(h.recs, f)
	good := 0
	if f.Good() {
		good = 1
	}
	h.goodPrefix = append(h.goodPrefix, h.goodPrefix[len(h.goodPrefix)-1]+good)
	return nil
}

// AppendOutcome adds a synthetic record with the given client and outcome,
// stamping it with a monotonically increasing logical time. It is the
// convenience path used by simulations.
func (h *History) AppendOutcome(client EntityID, good bool, at time.Time) error {
	r := Negative
	if good {
		r = Positive
	}
	return h.Append(Feedback{Time: at, Server: h.server, Client: client, Rating: r})
}

// SnapshotView returns an immutable view of h at its current length,
// sharing the underlying storage — an O(1) alternative to Clone for
// append-only producers. Appending to h afterwards leaves the view
// unchanged: appends either write past the view's length or reallocate,
// and existing elements are never rewritten. The view is invalidated only
// if h is mutated non-monotonically (RemoveLast followed by Append); the
// store layer, the intended producer, never does that.
func (h *History) SnapshotView() *History {
	return &History{server: h.server, recs: h.recs, goodPrefix: h.goodPrefix}
}

// RemoveLast removes the newest record. It supports the strategic attacker's
// hypothesis testing (append a candidate transaction, test, roll back). It
// returns ErrEmptyHistory when there is nothing to remove.
func (h *History) RemoveLast() error {
	if len(h.recs) == 0 {
		return ErrEmptyHistory
	}
	h.recs = h.recs[:len(h.recs)-1]
	h.goodPrefix = h.goodPrefix[:len(h.goodPrefix)-1]
	return nil
}

// SizeBytes returns the approximate resident heap footprint of this history:
// the struct itself plus the capacity of its record and prefix-sum arrays.
// Entity ID string bytes are not counted — client IDs are interned and shared
// across records, so charging them per record would overcount — and shared
// snapshot views alias the owner's arrays, so the store accounts each backing
// array exactly once (at its owning working history). The memory-budget
// governor uses this as the history half of a server's resident size.
func (h *History) SizeBytes() int {
	const (
		histStruct = 72 // History struct: string header + 2 slice headers
		recSize    = 64 // Feedback: Time (24) + 2 string headers + padded Rating
	)
	return histStruct + cap(h.recs)*recSize + cap(h.goodPrefix)*8
}

// GoodCount returns the number of good transactions in the whole history.
func (h *History) GoodCount() int { return h.goodPrefix[len(h.recs)] }

// GoodInRange returns the number of good transactions among records
// [lo, hi). It panics when the range is invalid, matching slice semantics.
func (h *History) GoodInRange(lo, hi int) int {
	return h.goodPrefix[hi] - h.goodPrefix[lo]
}

// GoodRatio returns the fraction of good transactions (the average trust
// value), or 0 for an empty history.
func (h *History) GoodRatio() float64 {
	if len(h.recs) == 0 {
		return 0
	}
	return float64(h.GoodCount()) / float64(len(h.recs))
}

// Outcomes returns the good/bad sequence as booleans, oldest first.
func (h *History) Outcomes() []bool {
	out := make([]bool, len(h.recs))
	for i, r := range h.recs {
		out[i] = r.Good()
	}
	return out
}

// Records returns a copy of all feedback records, oldest first.
func (h *History) Records() []Feedback {
	out := make([]Feedback, len(h.recs))
	copy(out, h.recs)
	return out
}

// Clone returns an independent deep copy.
func (h *History) Clone() *History {
	c := &History{server: h.server}
	c.recs = make([]Feedback, len(h.recs))
	copy(c.recs, h.recs)
	c.goodPrefix = make([]int, len(h.goodPrefix))
	copy(c.goodPrefix, h.goodPrefix)
	return c
}

// WindowCounts splits the history into ⌊n/m⌋ consecutive windows of m
// transactions starting from the oldest record (any trailing partial window
// is dropped, per §3.2) and returns the good-transaction count of each.
func (h *History) WindowCounts(m int) ([]int, error) {
	return h.windowCounts(m, false)
}

// WindowCountsFromEnd is WindowCounts with the windows aligned to the newest
// record instead (any partial window of the oldest records is dropped).
// End-alignment is what the multi-testing scheme uses: the window counts of
// the most-recent-l−k suffix are then literally a suffix of the full table,
// which is what makes the optimised scheme linear-time.
func (h *History) WindowCountsFromEnd(m int) ([]int, error) {
	return h.windowCounts(m, true)
}

func (h *History) windowCounts(m int, fromEnd bool) ([]int, error) {
	if m <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadWindow, m)
	}
	k := len(h.recs) / m
	counts := make([]int, 0, k)
	start := 0
	if fromEnd {
		start = len(h.recs) - k*m
	}
	for i := 0; i < k; i++ {
		lo := start + i*m
		counts = append(counts, h.GoodInRange(lo, lo+m))
	}
	return counts, nil
}

// SuffixView returns a read-only view of the most recent n records as a new
// History sharing the underlying storage. Mutating the parent after taking a
// view invalidates the view. It returns the whole history when n exceeds its
// length.
func (h *History) SuffixView(n int) *History {
	if n >= len(h.recs) {
		return h
	}
	lo := len(h.recs) - n
	return &History{
		server:     h.server,
		recs:       h.recs[lo:],
		goodPrefix: rebasePrefix(h.goodPrefix[lo:]),
	}
}

func rebasePrefix(p []int) []int {
	out := make([]int, len(p))
	base := p[0]
	for i, v := range p {
		out[i] = v - base
	}
	return out
}

// IssuerGroup is the set of feedbacks a single client issued, in time order.
type IssuerGroup struct {
	Client  EntityID
	Indices []int // positions in the original history, ascending
}

// GroupByIssuer partitions the history by feedback issuer and returns the
// groups ordered by descending size; groups of equal size are ordered by
// client ID for determinism. This is the re-ordering key of the
// collusion-resilient test (§4).
func (h *History) GroupByIssuer() []IssuerGroup {
	byClient := make(map[EntityID][]int)
	for i, r := range h.recs {
		byClient[r.Client] = append(byClient[r.Client], i)
	}
	groups := make([]IssuerGroup, 0, len(byClient))
	for c, idx := range byClient {
		groups = append(groups, IssuerGroup{Client: c, Indices: idx})
	}
	sort.Slice(groups, func(i, j int) bool {
		if len(groups[i].Indices) != len(groups[j].Indices) {
			return len(groups[i].Indices) > len(groups[j].Indices)
		}
		return groups[i].Client < groups[j].Client
	})
	return groups
}

// CollusionOrder returns a new history containing the same records
// re-ordered for collusion-resilient testing: grouped by issuer, larger
// groups first, time order within each group (records within a group keep
// their original relative order, which is time order for an append-only
// history).
func (h *History) CollusionOrder() *History {
	out := NewHistory(h.server)
	for _, g := range h.GroupByIssuer() {
		for _, i := range g.Indices {
			// Records came from this history, so re-appending cannot fail.
			_ = out.Append(h.recs[i])
		}
	}
	return out
}

// DistinctClients returns the number of distinct feedback issuers (the size
// of the supporter base plus detractors).
func (h *History) DistinctClients() int {
	seen := make(map[EntityID]struct{})
	for _, r := range h.recs {
		seen[r.Client] = struct{}{}
	}
	return len(seen)
}

// String implements fmt.Stringer.
func (h *History) String() string {
	return fmt.Sprintf("history{server=%s n=%d good=%d}", h.server, h.Len(), h.GoodCount())
}
