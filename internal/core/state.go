package core

// Snapshot serialization for per-server incremental assessment state. A
// ServerAccumulator freezes into a self-describing blob — trust-function and
// tester names plus the trust and behaviour accumulator states — and a
// TwoPhase assessor with the same configuration restores it exactly, so a
// rebooting -incremental node resumes assessments without re-feeding the
// server's history.

import (
	"encoding/binary"
	"errors"
	"fmt"

	"honestplayer/internal/feedback"
)

// ErrBadState reports a serialized accumulator blob that does not decode, or
// that was produced under a different assessor configuration.
var ErrBadState = errors.New("core: bad accumulator state")

// saStateVersion tags the blob layout; bump on incompatible change.
const saStateVersion = 1

// AppendState appends the accumulator's serialized state to buf. It reports
// false when the state cannot be serialized (a third-party trust tracker
// without state support); the caller then falls back to replaying history.
// The caller must ensure Append is not running concurrently.
func (sa *ServerAccumulator) AppendState(buf []byte) ([]byte, bool) {
	start := len(buf)
	buf = append(buf, saStateVersion)
	buf = appendString(buf, string(sa.tp.fn.Name()))
	testerName := ""
	if sa.beh != nil {
		testerName = sa.beh.Name()
	}
	buf = appendString(buf, testerName)
	buf, ok := sa.tr.AppendState(buf)
	if !ok {
		return buf[:start], false
	}
	if sa.beh != nil {
		blob := sa.beh.AppendState(nil)
		buf = binary.AppendUvarint(buf, uint64(len(blob)))
		buf = append(buf, blob...)
	}
	return buf, true
}

// RestoreServerAccumulator mints a ServerAccumulator for server and restores
// state into it. The assessor must be configured with the same trust function
// and tester (same names and parameters) that produced the blob. It returns
// the accumulator and the number of feedback records its state covers.
func (tp *TwoPhase) RestoreServerAccumulator(server feedback.EntityID, state []byte) (*ServerAccumulator, int, error) {
	if len(state) < 1 {
		return nil, 0, fmt.Errorf("%w: empty blob", ErrBadState)
	}
	if state[0] != saStateVersion {
		return nil, 0, fmt.Errorf("%w: state version %d, want %d", ErrBadState, state[0], saStateVersion)
	}
	state = state[1:]
	fnName, state, err := readString(state)
	if err != nil {
		return nil, 0, err
	}
	if fnName != tp.fn.Name() {
		return nil, 0, fmt.Errorf("%w: state for trust function %q, assessor uses %q", ErrBadState, fnName, tp.fn.Name())
	}
	testerName, state, err := readString(state)
	if err != nil {
		return nil, 0, err
	}
	wantTester := ""
	if tp.tester != nil {
		wantTester = tp.tester.Name()
	}
	if testerName != wantTester {
		return nil, 0, fmt.Errorf("%w: state for tester %q, assessor uses %q", ErrBadState, testerName, wantTester)
	}
	sa, err := tp.NewServerAccumulator(server)
	if err != nil {
		return nil, 0, err
	}
	state, err = sa.tr.RestoreState(state)
	if err != nil {
		return nil, 0, err
	}
	n, _ := sa.tr.Counts()
	if sa.beh != nil {
		blobLen, rest, err := readUvarint(state)
		if err != nil {
			return nil, 0, err
		}
		if uint64(len(rest)) < blobLen {
			return nil, 0, fmt.Errorf("%w: behaviour blob truncated", ErrBadState)
		}
		if err := sa.beh.RestoreState(rest[:blobLen]); err != nil {
			return nil, 0, fmt.Errorf("%w: %v", ErrBadState, err)
		}
		state = rest[blobLen:]
		if sa.beh.Len() != n {
			return nil, 0, fmt.Errorf("%w: behaviour state covers %d records, trust state %d", ErrBadState, sa.beh.Len(), n)
		}
	}
	if len(state) != 0 {
		return nil, 0, fmt.Errorf("%w: %d trailing bytes", ErrBadState, len(state))
	}
	return sa, n, nil
}

// SupportsIncrementalState reports whether this assessor's accumulators can
// round-trip through AppendState/RestoreServerAccumulator.
func (tp *TwoPhase) SupportsIncrementalState() bool {
	if !tp.SupportsIncremental() {
		return false
	}
	sa, err := tp.NewServerAccumulator("probe")
	if err != nil {
		return false
	}
	_, ok := sa.AppendState(nil)
	return ok
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readString(buf []byte) (string, []byte, error) {
	n, buf, err := readUvarint(buf)
	if err != nil {
		return "", nil, err
	}
	if n > 1024 || uint64(len(buf)) < n {
		return "", nil, fmt.Errorf("%w: bad string length %d", ErrBadState, n)
	}
	return string(buf[:n]), buf[n:], nil
}

func readUvarint(buf []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: short uvarint", ErrBadState)
	}
	return v, buf[n:], nil
}
