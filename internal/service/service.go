// Package service is the transport-agnostic request layer shared by the
// serving stack: a handler registry keyed by message type, wrapped in a
// composable interceptor chain (panic recovery, per-request deadline
// enforcement, per-type metrics, slow-request logging).
//
// The registry decouples "what a request does" from "how its bytes arrive":
// handlers see only a context and an envelope, so the same pipeline serves
// TCP today and can serve pooled/multiplexed transports later. Interceptors
// compose like gRPC middleware — each wraps the next handler and may
// short-circuit (the deadline interceptor abandons a stalled handler and
// returns context.DeadlineExceeded while the handler goroutine winds down
// on its own).
package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"honestplayer/internal/wire"
)

// Handler serves one request envelope. The returned envelope is written
// back to the caller; a non-nil error is converted to a TypeError frame
// (see ErrorEnvelope) carrying the request id.
type Handler func(ctx context.Context, env wire.Envelope) (wire.Envelope, error)

// Interceptor wraps a handler with cross-cutting behaviour. The first
// interceptor passed to Chain is the outermost.
type Interceptor func(next Handler) Handler

// Registry maps message types to handlers.
type Registry struct {
	handlers map[wire.MsgType]Handler
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{handlers: make(map[wire.MsgType]Handler)}
}

// Register binds a handler to a message type, replacing any previous
// binding. Registration is not synchronised: register everything before
// serving.
func (r *Registry) Register(t wire.MsgType, h Handler) {
	if h == nil {
		panic("service: nil handler for " + string(t))
	}
	r.handlers[t] = h
}

// Lookup returns the handler for a message type.
func (r *Registry) Lookup(t wire.MsgType) (Handler, bool) {
	h, ok := r.handlers[t]
	return h, ok
}

// Types returns the registered message types in sorted order.
func (r *Registry) Types() []wire.MsgType {
	out := make([]wire.MsgType, 0, len(r.handlers))
	for t := range r.handlers {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Chain wraps h in the given interceptors; the first interceptor is the
// outermost (runs first on the way in, last on the way out).
func Chain(h Handler, interceptors ...Interceptor) Handler {
	for i := len(interceptors) - 1; i >= 0; i-- {
		h = interceptors[i](h)
	}
	return h
}

// Errorf builds a protocol error with an explicit code. Handlers return it
// to produce a typed error frame instead of a generic internal error.
func Errorf(code, format string, args ...any) error {
	return &wire.ErrorResponse{Code: code, Message: fmt.Sprintf(format, args...)}
}

// codecKey carries the connection's negotiated payload codec through the
// request context.
type codecKey struct{}

// WithCodec returns a context carrying the negotiated wire codec. The
// transport sets it once per connection, before dispatching into the
// interceptor chain; the chain threads the context — and with it the codec —
// into every handler.
func WithCodec(ctx context.Context, c wire.Codec) context.Context {
	return context.WithValue(ctx, codecKey{}, c)
}

// CodecFrom returns the negotiated codec from the request context,
// defaulting to wire.JSONCodec when none was negotiated (v1 connections,
// in-process callers, tests).
func CodecFrom(ctx context.Context) wire.Codec {
	if c, ok := ctx.Value(codecKey{}).(wire.Codec); ok {
		return c
	}
	return wire.JSONCodec
}

// ErrorEnvelope converts a handler error into a JSON TypeError envelope for
// the given request id — ErrorEnvelopeCodec with the v1 codec.
func ErrorEnvelope(id uint64, err error) wire.Envelope {
	return ErrorEnvelopeCodec(wire.JSONCodec, id, err)
}

// ErrorEnvelopeCodec converts a handler error into a TypeError envelope in
// the given codec. Protocol errors (*wire.ErrorResponse) keep their code;
// context expiry maps to wire.CodeDeadlineExceeded / wire.CodeCanceled;
// everything else is wire.CodeInternal.
func ErrorEnvelopeCodec(c wire.Codec, id uint64, err error) wire.Envelope {
	resp := wire.ErrorResponse{Code: wire.CodeInternal, Message: err.Error()}
	var proto *wire.ErrorResponse
	switch {
	case errors.As(err, &proto):
		resp = *proto
	case errors.Is(err, context.DeadlineExceeded):
		resp.Code = wire.CodeDeadlineExceeded
	case errors.Is(err, context.Canceled):
		resp.Code = wire.CodeCanceled
	}
	env, encErr := c.Encode(wire.TypeError, id, resp)
	if encErr != nil {
		// An ErrorResponse always encodes; this is unreachable, but never
		// return a zero envelope from an error path.
		env, _ = c.Encode(wire.TypeError, id, wire.ErrorResponse{Code: wire.CodeInternal, Message: "encode error response"})
	}
	return env
}

// panicError carries a panic value recovered on another goroutine (the
// Deadline interceptor's handler goroutine) back to the calling chain as an
// ordinary error, so Recover can log and convert it even though a deferred
// recover() on the calling goroutine could never catch it.
type panicError struct {
	value any
}

func (p *panicError) Error() string { return fmt.Sprintf("panic: %v", p.value) }

// Recover returns an interceptor converting handler panics into internal
// errors so one bad request cannot take down the whole process. It handles
// both panics on the calling goroutine and panics recovered on the Deadline
// interceptor's handler goroutine (surfaced as a *panicError). logf
// receives a diagnostic line (nil disables logging).
func Recover(logf func(format string, args ...any)) Interceptor {
	return func(next Handler) Handler {
		return func(ctx context.Context, env wire.Envelope) (out wire.Envelope, err error) {
			defer func() {
				if r := recover(); r != nil {
					if logf != nil {
						logf("panic serving %s id=%d: %v", env.Type, env.ID, r)
					}
					out, err = wire.Envelope{}, Errorf(wire.CodeInternal, "internal error serving %s", env.Type)
				}
			}()
			out, err = next(ctx, env)
			var pe *panicError
			if errors.As(err, &pe) {
				if logf != nil {
					logf("panic serving %s id=%d: %v", env.Type, env.ID, pe.value)
				}
				out, err = wire.Envelope{}, Errorf(wire.CodeInternal, "internal error serving %s", env.Type)
			}
			return out, err
		}
	}
}

// deadlineResult is what a handler run on a deadline worker reports back.
type deadlineResult struct {
	env wire.Envelope
	err error
}

// deadlineJob is one handler invocation shipped to a deadline worker. done
// is per-job and buffered so an abandoned job's completion never blocks the
// worker (the interceptor has long since returned ctx.Err()).
type deadlineJob struct {
	ctx  context.Context
	env  wire.Envelope
	next Handler
	done chan deadlineResult
}

// deadlineWorkers pools idle handler-worker goroutines. Spawning a fresh
// goroutine per request makes every deep handler call chain regrow a cold
// 2KB stack — the runtime's stack-copy machinery then dominates cheap
// requests (it profiled at ~5µs/request on the pipelined v2 transport,
// where no round-trip latency hides it). A pooled worker keeps its grown
// stack warm across requests. The pool never blocks: a full pool lets the
// worker exit, an empty pool spawns a new one.
var deadlineWorkers = make(chan chan deadlineJob, 64)

func runDeadlineWorker(jobs chan deadlineJob) {
	for job := range jobs {
		func() {
			// recover() only catches panics on its own goroutine, so an
			// outer Recover interceptor cannot see a panic raised here.
			// Convert it to a *panicError result instead; Recover treats
			// that error exactly like a direct panic.
			defer func() {
				if r := recover(); r != nil {
					job.done <- deadlineResult{wire.Envelope{}, &panicError{value: r}}
				}
			}()
			env, err := job.next(job.ctx, job.env)
			job.done <- deadlineResult{env, err}
		}()
		select {
		case deadlineWorkers <- jobs:
		default:
			return // pool full: let this worker die
		}
	}
}

// deadlineTimers pools the per-request timeout timers. Deriving a timer
// context per request (context.WithTimeout) costs close to a microsecond in
// allocation and runtime-timer churn; a pooled bare timer enforces the same
// bound in the interceptor's select. Timers are always returned to the pool
// stopped and drained (Go 1.22 timer-channel semantics).
var deadlineTimers = sync.Pool{New: func() any {
	t := time.NewTimer(time.Hour)
	if !t.Stop() {
		<-t.C
	}
	return t
}}

// Deadline returns an interceptor that bounds each request to d (no bound
// when d <= 0) and enforces context cancellation even against a handler
// that never returns: the handler runs on a pooled worker goroutine and the
// interceptor abandons it when the bound expires first, returning
// context.DeadlineExceeded (or ctx.Err() on parent cancellation). The
// handler's context is derived cancellable — not with a deadline — so an
// abandoned handler still observes cancellation and can stop cooperatively;
// the bound itself lives in a pooled timer, off the context. The abandoned
// worker finishes in the background — its result is discarded through the
// job's buffered channel, and only then does the worker take another job —
// so an abandoned handler can never be interleaved with a later request.
func Deadline(d time.Duration) Interceptor {
	return func(next Handler) Handler {
		return func(ctx context.Context, env wire.Envelope) (wire.Envelope, error) {
			var timeoutC <-chan time.Time
			if d > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithCancel(ctx)
				defer cancel()
				t := deadlineTimers.Get().(*time.Timer)
				t.Reset(d)
				defer func() {
					if !t.Stop() {
						select {
						case <-t.C:
						default:
						}
					}
					deadlineTimers.Put(t)
				}()
				timeoutC = t.C
			}
			var jobs chan deadlineJob
			select {
			case jobs = <-deadlineWorkers:
			default:
				jobs = make(chan deadlineJob, 1)
				go runDeadlineWorker(jobs)
			}
			done := make(chan deadlineResult, 1)
			jobs <- deadlineJob{ctx: ctx, env: env, next: next, done: done}
			select {
			case r := <-done:
				return r.env, r.err
			case <-ctx.Done():
				return wire.Envelope{}, ctx.Err()
			case <-timeoutC:
				return wire.Envelope{}, context.DeadlineExceeded
			}
		}
	}
}

// WithMetrics returns an interceptor recording per-type request counts,
// error counts, and latency into m. It sits outside the deadline
// interceptor so a timed-out request is observed at its timeout (with a
// deadline_exceeded error), not whenever the abandoned handler finishes.
func WithMetrics(m *Metrics) Interceptor {
	return func(next Handler) Handler {
		return func(ctx context.Context, env wire.Envelope) (wire.Envelope, error) {
			start := time.Now()
			out, err := next(ctx, env)
			m.Observe(env.Type, time.Since(start), err != nil)
			return out, err
		}
	}
}

// SlowLog returns an interceptor logging any request slower than threshold
// (disabled when threshold <= 0 or logf is nil).
func SlowLog(logf func(format string, args ...any), threshold time.Duration) Interceptor {
	return func(next Handler) Handler {
		if threshold <= 0 || logf == nil {
			return next
		}
		return func(ctx context.Context, env wire.Envelope) (wire.Envelope, error) {
			start := time.Now()
			out, err := next(ctx, env)
			if elapsed := time.Since(start); elapsed >= threshold {
				logf("slow request: %s id=%d took %s (err=%v)", env.Type, env.ID, elapsed, err)
			}
			return out, err
		}
	}
}
