package eigentrust

import (
	"errors"
	"math"
	"testing"

	"honestplayer/internal/feedback"
	"honestplayer/internal/stats"
)

// ring builds a graph where every peer rates every other peer positively
// `mutual` times, except that colluders only rate colluders and honest
// peers rate the colluders negatively.
func splitWorld(honest, colluders int, rng *stats.RNG) *Graph {
	g := NewGraph()
	id := func(prefix string, i int) feedback.EntityID {
		return feedback.EntityID(prefix + string(rune('0'+i/10)) + string(rune('0'+i%10)))
	}
	for i := 0; i < honest; i++ {
		for j := 0; j < honest; j++ {
			if i == j {
				continue
			}
			// Honest peers mostly satisfy each other.
			g.AddInteraction(id("h", i), id("h", j), rng.Bernoulli(0.95))
		}
		for j := 0; j < colluders; j++ {
			// Honest peers get cheated by colluders.
			g.AddInteraction(id("h", i), id("c", j), false)
		}
	}
	for i := 0; i < colluders; i++ {
		for j := 0; j < colluders; j++ {
			if i == j {
				continue
			}
			// The ring inflates itself.
			for k := 0; k < 5; k++ {
				g.AddInteraction(id("c", i), id("c", j), true)
			}
		}
	}
	return g
}

func TestComputeValidation(t *testing.T) {
	if _, err := Compute(NewGraph(), Config{}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("empty graph: %v", err)
	}
	g := NewGraph()
	g.AddInteraction("a", "b", true)
	for _, cfg := range []Config{
		{Alpha: 1.5}, {Alpha: -0.1}, {Epsilon: -1}, {MaxIter: -1},
	} {
		if _, err := Compute(g, cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("cfg %+v: %v", cfg, err)
		}
	}
	if _, err := Compute(g, Config{Pretrusted: []feedback.EntityID{"ghost"}}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("unknown pretrusted: %v", err)
	}
}

func TestComputeSumsToOneAndConverges(t *testing.T) {
	g := splitWorld(10, 3, stats.NewRNG(1))
	res, err := Compute(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("no convergence after %d iterations", res.Iterations)
	}
	sum := 0.0
	for _, v := range res.Trust {
		if v < 0 {
			t.Fatalf("negative trust %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("trust sums to %v", sum)
	}
}

func TestPretrustedAnchorsDemoteColluders(t *testing.T) {
	// With honest pre-trusted peers, the colluders' self-inflation is cut
	// off: every colluder ranks below every honest peer.
	rng := stats.NewRNG(2)
	g := splitWorld(10, 3, rng)
	res, err := Compute(g, Config{Pretrusted: []feedback.EntityID{"h00", "h01"}})
	if err != nil {
		t.Fatal(err)
	}
	minHonest, maxColluder := math.Inf(1), math.Inf(-1)
	for p, v := range res.Trust {
		switch p[0] {
		case 'h':
			if v < minHonest {
				minHonest = v
			}
		case 'c':
			if v > maxColluder {
				maxColluder = v
			}
		}
	}
	if maxColluder >= minHonest {
		t.Fatalf("colluder trust %v >= honest trust %v", maxColluder, minHonest)
	}
	// And the ranking agrees.
	ranked := res.Ranked()
	for i := 0; i < 10; i++ {
		if ranked[i][0] != 'h' {
			t.Fatalf("rank %d is %s, want honest peers first: %v", i, ranked[i], ranked)
		}
	}
}

func TestWithoutPretrustColludersCanWin(t *testing.T) {
	// The classic failure mode EigenTrust's pre-trust exists to fix: with
	// uniform teleport, a tight self-rating ring accumulates mass.
	rng := stats.NewRNG(3)
	g := splitWorld(10, 3, rng)
	uniform, err := Compute(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	anchored, err := Compute(g, Config{Pretrusted: []feedback.EntityID{"h00"}})
	if err != nil {
		t.Fatal(err)
	}
	colluderMass := func(r *Result) float64 {
		var m float64
		for p, v := range r.Trust {
			if p[0] == 'c' {
				m += v
			}
		}
		return m
	}
	if colluderMass(anchored) >= colluderMass(uniform) {
		t.Fatalf("pre-trust did not reduce colluder mass: %v >= %v",
			colluderMass(anchored), colluderMass(uniform))
	}
}

func TestNegativeExperiencesClampToZero(t *testing.T) {
	g := NewGraph()
	// a is repeatedly cheated by b but has one good partner c.
	for i := 0; i < 5; i++ {
		g.AddInteraction("a", "b", false)
	}
	g.AddInteraction("a", "c", true)
	res, err := Compute(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// b receives no local trust from a (clamped), so all of a's vote goes
	// to c.
	if res.Trust["b"] >= res.Trust["c"] {
		t.Fatalf("b=%v >= c=%v", res.Trust["b"], res.Trust["c"])
	}
}

func TestAddFeedbackAndPeers(t *testing.T) {
	g := NewGraph()
	g.AddFeedback(feedback.Feedback{Server: "srv", Client: "cli", Rating: feedback.Positive})
	peers := g.Peers()
	if len(peers) != 2 || peers[0] != "cli" || peers[1] != "srv" {
		t.Fatalf("peers = %v", peers)
	}
}

func TestDanglingOnlyGraph(t *testing.T) {
	// A graph where the only rater's experiences are all negative: every
	// row is dangling, mass falls to the teleport distribution.
	g := NewGraph()
	g.AddInteraction("a", "b", false)
	res, err := Compute(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("no convergence")
	}
	if math.Abs(res.Trust["a"]-0.5) > 1e-6 || math.Abs(res.Trust["b"]-0.5) > 1e-6 {
		t.Fatalf("trust = %v", res.Trust)
	}
}
