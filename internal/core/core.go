// Package core implements the paper's primary contribution: the two-phase
// approach to trust assessment (Fig. 1). Phase 1 checks the server's
// transaction history against the statistical model of honest players
// (package behavior); only when the history is consistent with the model is
// a conventional trust function (package trust) applied in phase 2.
//
// Servers that fail phase 1 are reported as suspicious and receive no trust
// value — an adversary therefore cannot benefit from manipulating the trust
// function unless its whole transaction pattern stays statistically
// indistinguishable from an honest player's, which is precisely what raises
// the cost of hibernating, periodic and collusion attacks.
package core

import (
	"errors"
	"fmt"

	"honestplayer/internal/behavior"
	"honestplayer/internal/feedback"
	"honestplayer/internal/stats"
	"honestplayer/internal/trust"
)

// ShortHistoryPolicy decides what to do with servers whose history is too
// short for behaviour testing. The paper treats them as a high-risk group
// (§7): rejecting them is the safe default, but low-risk transactions may
// relax testing so new servers can build reputation.
type ShortHistoryPolicy int

const (
	// RejectShort treats untestable servers as suspicious (default).
	RejectShort ShortHistoryPolicy = iota + 1
	// AllowShort skips phase 1 for untestable servers and applies the trust
	// function directly.
	AllowShort
)

// String implements fmt.Stringer.
func (p ShortHistoryPolicy) String() string {
	switch p {
	case RejectShort:
		return "reject-short"
	case AllowShort:
		return "allow-short"
	default:
		return fmt.Sprintf("ShortHistoryPolicy(%d)", int(p))
	}
}

// Assessment is the outcome of a two-phase trust assessment.
type Assessment struct {
	// Server is the assessed service provider.
	Server feedback.EntityID `json:"server"`
	// Suspicious reports that phase 1 flagged the server; Trust is
	// meaningless (zero) in that case.
	Suspicious bool `json:"suspicious,omitempty"`
	// ShortHistory reports that the history was too short to behaviour-test
	// and the configured policy decided the outcome.
	ShortHistory bool `json:"shortHistory,omitempty"`
	// Trust is the phase-2 trust value; valid only when !Suspicious.
	Trust float64 `json:"trust"`
	// TrustLow and TrustHigh bound the underlying good-transaction ratio
	// with a 95% Wilson score interval — a trust value over 10
	// transactions is far less certain than the same value over 10 000.
	TrustLow  float64 `json:"trustLow"`
	TrustHigh float64 `json:"trustHigh"`
	// Verdict carries the per-suffix behaviour-test details when phase 1
	// ran; it is omitted from the wire encoding when phase 1 never ran
	// (no tester, or a short history), keeping trust-only responses lean.
	Verdict behavior.Verdict `json:"verdict,omitzero"`
	// Tester and TrustFunc name the components that produced this
	// assessment.
	Tester    string `json:"tester,omitempty"`
	TrustFunc string `json:"trustFunc"`
}

// TwoPhase combines a behaviour tester with a trust function.
type TwoPhase struct {
	tester behavior.Tester
	fn     trust.Func
	policy ShortHistoryPolicy
}

// Option configures a TwoPhase assessor.
type Option func(*TwoPhase)

// WithShortHistoryPolicy overrides the default RejectShort policy.
func WithShortHistoryPolicy(p ShortHistoryPolicy) Option {
	return func(tp *TwoPhase) { tp.policy = p }
}

// NewTwoPhase returns an assessor running tester as phase 1 and fn as phase
// 2. A nil tester disables phase 1 entirely (the conventional single-trust-
// function baseline the paper compares against); fn must be non-nil.
func NewTwoPhase(tester behavior.Tester, fn trust.Func, opts ...Option) (*TwoPhase, error) {
	if fn == nil {
		return nil, errors.New("core: nil trust function")
	}
	tp := &TwoPhase{tester: tester, fn: fn, policy: RejectShort}
	for _, o := range opts {
		o(tp)
	}
	if tp.policy != RejectShort && tp.policy != AllowShort {
		return nil, fmt.Errorf("core: invalid short-history policy %d", int(tp.policy))
	}
	return tp, nil
}

// Name describes the assessor as "tester+trustfunc".
func (tp *TwoPhase) Name() string {
	if tp.tester == nil {
		return tp.fn.Name()
	}
	return tp.tester.Name() + "+" + tp.fn.Name()
}

// Tester returns the phase-1 tester (nil when phase 1 is disabled).
func (tp *TwoPhase) Tester() behavior.Tester { return tp.tester }

// TrustFunc returns the phase-2 trust function.
func (tp *TwoPhase) TrustFunc() trust.Func { return tp.fn }

// Assess runs the two-phase assessment on the server's history.
func (tp *TwoPhase) Assess(h *feedback.History) (Assessment, error) {
	a := Assessment{Server: h.Server(), TrustFunc: tp.fn.Name()}
	if tp.tester != nil {
		a.Tester = tp.tester.Name()
		v, err := tp.tester.Test(h)
		switch {
		case errors.Is(err, behavior.ErrInsufficientHistory):
			a.ShortHistory = true
			if tp.policy == RejectShort {
				a.Suspicious = true
				return a, nil
			}
		case err != nil:
			return a, fmt.Errorf("behaviour test: %w", err)
		default:
			a.Verdict = v
			if !v.Honest {
				a.Suspicious = true
				return a, nil
			}
		}
	}
	value, err := tp.fn.Evaluate(h)
	if err != nil {
		return a, fmt.Errorf("trust function: %w", err)
	}
	a.Trust = value
	if h.Len() > 0 {
		lo, hi, err := stats.WilsonInterval(h.GoodCount(), h.Len(), 1.96)
		if err != nil {
			return a, fmt.Errorf("trust interval: %w", err)
		}
		a.TrustLow, a.TrustHigh = lo, hi
	}
	return a, nil
}

// Accept runs Assess and applies a client's trust threshold: the client
// proceeds with the transaction only when the server is not suspicious and
// its trust value meets the threshold.
func (tp *TwoPhase) Accept(h *feedback.History, threshold float64) (bool, Assessment, error) {
	a, err := tp.Assess(h)
	if err != nil {
		return false, a, err
	}
	return !a.Suspicious && a.Trust >= threshold, a, nil
}
