package service

import (
	"context"
	"sync"
	"testing"
	"time"

	"honestplayer/internal/wire"
)

func TestMetricsCounters(t *testing.T) {
	m := NewMetrics()
	m.Observe(wire.TypeAssess, 2*time.Millisecond, false)
	m.Observe(wire.TypeAssess, 4*time.Millisecond, true)
	m.Observe(wire.TypePing, 10*time.Microsecond, false)

	snap := m.Snapshot()
	a, ok := snap[string(wire.TypeAssess)]
	if !ok {
		t.Fatalf("no assess entry: %v", snap)
	}
	if a.Requests != 2 || a.Errors != 1 {
		t.Fatalf("assess = %+v", a)
	}
	if a.MeanMs < 2 || a.MeanMs > 5 {
		t.Fatalf("assess mean = %v ms", a.MeanMs)
	}
	p, ok := snap[string(wire.TypePing)]
	if !ok || p.Requests != 1 || p.Errors != 0 {
		t.Fatalf("ping = %+v ok=%v", p, ok)
	}
}

func TestMetricsQuantiles(t *testing.T) {
	m := NewMetrics()
	// 90 fast requests and 10 slow ones: p50 must sit in the fast band,
	// p99 in the slow band.
	for i := 0; i < 90; i++ {
		m.Observe(wire.TypeHistory, 200*time.Microsecond, false)
	}
	for i := 0; i < 10; i++ {
		m.Observe(wire.TypeHistory, 80*time.Millisecond, false)
	}
	snap := m.Snapshot()[string(wire.TypeHistory)]
	if snap.P50Ms <= 0.05 || snap.P50Ms > 0.5 {
		t.Fatalf("p50 = %v ms, want within the fast bucket", snap.P50Ms)
	}
	if snap.P99Ms < 25 || snap.P99Ms > 100 {
		t.Fatalf("p99 = %v ms, want within the slow bucket", snap.P99Ms)
	}
	if snap.P50Ms > snap.P90Ms || snap.P90Ms > snap.P99Ms {
		t.Fatalf("quantiles not monotone: %+v", snap)
	}
}

func TestMetricsOverflowBucket(t *testing.T) {
	m := NewMetrics()
	m.Observe(wire.TypeAssess, time.Minute, false)
	snap := m.Snapshot()[string(wire.TypeAssess)]
	// The overflow bucket reports the largest finite bound (10s).
	if snap.P50Ms != 10000 {
		t.Fatalf("overflow p50 = %v ms", snap.P50Ms)
	}
}

func TestMetricsConcurrentObserve(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	types := []wire.MsgType{wire.TypePing, wire.TypeSubmit, wire.TypeAssess}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.Observe(types[(g+i)%len(types)], time.Duration(i)*time.Microsecond, i%7 == 0)
			}
		}(g)
	}
	wg.Wait()
	var total uint64
	for _, s := range m.Snapshot() {
		total += s.Requests
	}
	if total != 8*500 {
		t.Fatalf("total = %d, want %d", total, 8*500)
	}
}

func TestWithMetricsInterceptor(t *testing.T) {
	m := NewMetrics()
	h := Chain(func(ctx context.Context, env wire.Envelope) (wire.Envelope, error) {
		if env.ID == 1 {
			return wire.Envelope{}, Errorf(wire.CodeBadRequest, "nope")
		}
		return wire.Encode(wire.TypePong, env.ID, nil)
	}, WithMetrics(m))
	if _, err := h(context.Background(), wire.Envelope{Type: wire.TypePing, ID: 1}); err == nil {
		t.Fatal("expected error")
	}
	if _, err := h(context.Background(), wire.Envelope{Type: wire.TypePing, ID: 2}); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()[string(wire.TypePing)]
	if snap.Requests != 2 || snap.Errors != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
}
