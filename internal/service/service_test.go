package service

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"honestplayer/internal/wire"
)

func okHandler(t wire.MsgType) Handler {
	return func(ctx context.Context, env wire.Envelope) (wire.Envelope, error) {
		return wire.Encode(t, env.ID, nil)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.Lookup(wire.TypePing); ok {
		t.Fatal("empty registry resolved a handler")
	}
	r.Register(wire.TypePing, okHandler(wire.TypePong))
	r.Register(wire.TypeAssess, okHandler(wire.TypeAssessR))
	h, ok := r.Lookup(wire.TypePing)
	if !ok {
		t.Fatal("registered handler not found")
	}
	resp, err := h(context.Background(), wire.Envelope{Type: wire.TypePing, ID: 7})
	if err != nil || resp.Type != wire.TypePong || resp.ID != 7 {
		t.Fatalf("resp = %+v, %v", resp, err)
	}
	types := r.Types()
	if len(types) != 2 || types[0] != wire.TypeAssess || types[1] != wire.TypePing {
		t.Fatalf("types = %v", types)
	}
	if got := func() (s string) {
		defer func() { s, _ = recover().(string) }()
		r.Register(wire.TypePong, nil)
		return ""
	}(); !strings.Contains(got, "nil handler") {
		t.Fatalf("nil handler registration panic = %q", got)
	}
}

func TestChainOrder(t *testing.T) {
	var order []string
	mk := func(name string) Interceptor {
		return func(next Handler) Handler {
			return func(ctx context.Context, env wire.Envelope) (wire.Envelope, error) {
				order = append(order, name+"-in")
				out, err := next(ctx, env)
				order = append(order, name+"-out")
				return out, err
			}
		}
	}
	h := Chain(okHandler(wire.TypePong), mk("a"), mk("b"))
	if _, err := h(context.Background(), wire.Envelope{Type: wire.TypePing}); err != nil {
		t.Fatal(err)
	}
	want := []string{"a-in", "b-in", "b-out", "a-out"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRecoverInterceptor(t *testing.T) {
	var logged string
	h := Chain(func(ctx context.Context, env wire.Envelope) (wire.Envelope, error) {
		panic("boom")
	}, Recover(func(format string, args ...any) { logged = format }))
	_, err := h(context.Background(), wire.Envelope{Type: wire.TypePing, ID: 3})
	var proto *wire.ErrorResponse
	if !errors.As(err, &proto) || proto.Code != wire.CodeInternal {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(logged, "panic") {
		t.Fatalf("panic not logged: %q", logged)
	}
}

// TestRecoverCatchesPanicAcrossDeadlineGoroutine is the regression test for
// the full server pipeline shape: Deadline runs the handler on its own
// goroutine, where a deferred recover() in Recover (on the calling
// goroutine) can never catch a panic. The Deadline goroutine must convert
// the panic into an error that Recover logs and maps to an internal error —
// without it, a panicking handler kills the whole process.
func TestRecoverCatchesPanicAcrossDeadlineGoroutine(t *testing.T) {
	panicking := func(ctx context.Context, env wire.Envelope) (wire.Envelope, error) {
		panic("boom across goroutines")
	}
	for _, d := range []time.Duration{time.Second, 0} { // deadline set and unset
		var logged string
		h := Chain(panicking, Recover(func(format string, args ...any) {
			logged = format
		}), Deadline(d))
		_, err := h(context.Background(), wire.Envelope{Type: wire.TypePing, ID: 3})
		var proto *wire.ErrorResponse
		if !errors.As(err, &proto) || proto.Code != wire.CodeInternal {
			t.Fatalf("Deadline(%v): err = %v", d, err)
		}
		if !strings.Contains(logged, "panic") {
			t.Fatalf("Deadline(%v): panic not logged: %q", d, logged)
		}
	}
}

// TestDeadlineAloneSurvivesPanic: even without Recover above it, a panic on
// the Deadline goroutine must surface as an error, not crash the process.
func TestDeadlineAloneSurvivesPanic(t *testing.T) {
	h := Chain(func(ctx context.Context, env wire.Envelope) (wire.Envelope, error) {
		panic("boom")
	}, Deadline(time.Second))
	_, err := h(context.Background(), wire.Envelope{Type: wire.TypePing})
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("err = %v", err)
	}
}

func TestDeadlineInterceptorStallsReturnDeadlineExceeded(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	h := Chain(func(ctx context.Context, env wire.Envelope) (wire.Envelope, error) {
		<-release
		return wire.Encode(wire.TypePong, env.ID, nil)
	}, Deadline(30*time.Millisecond))
	start := time.Now()
	_, err := h(context.Background(), wire.Envelope{Type: wire.TypePing})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("deadline interceptor did not abandon the stalled handler promptly")
	}
}

func TestDeadlineInterceptorFastHandlerPasses(t *testing.T) {
	h := Chain(okHandler(wire.TypePong), Deadline(time.Second))
	resp, err := h(context.Background(), wire.Envelope{Type: wire.TypePing, ID: 9})
	if err != nil || resp.Type != wire.TypePong || resp.ID != 9 {
		t.Fatalf("resp = %+v, %v", resp, err)
	}
}

func TestDeadlineInterceptorHonoursParentCancellation(t *testing.T) {
	// Even with no per-request timeout the interceptor must release the
	// caller when the base context is cancelled (forced shutdown).
	release := make(chan struct{})
	defer close(release)
	h := Chain(func(ctx context.Context, env wire.Envelope) (wire.Envelope, error) {
		<-release
		return wire.Envelope{}, nil
	}, Deadline(0))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err := h(ctx, wire.Envelope{Type: wire.TypePing})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestErrorEnvelopeMapping(t *testing.T) {
	cases := []struct {
		err  error
		code string
	}{
		{Errorf(wire.CodeBadRequest, "missing %s", "server"), wire.CodeBadRequest},
		{context.DeadlineExceeded, wire.CodeDeadlineExceeded},
		{context.Canceled, wire.CodeCanceled},
		{errors.New("disk on fire"), wire.CodeInternal},
	}
	for _, tc := range cases {
		env := ErrorEnvelope(42, tc.err)
		if env.Type != wire.TypeError || env.ID != 42 {
			t.Fatalf("envelope = %+v", env)
		}
		var resp wire.ErrorResponse
		if err := wire.DecodePayload(env, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Code != tc.code {
			t.Fatalf("err %v mapped to code %q, want %q", tc.err, resp.Code, tc.code)
		}
	}
}

func TestSlowLog(t *testing.T) {
	var logged string
	logf := func(format string, args ...any) { logged = format }
	slow := Chain(func(ctx context.Context, env wire.Envelope) (wire.Envelope, error) {
		time.Sleep(20 * time.Millisecond)
		return wire.Encode(wire.TypePong, env.ID, nil)
	}, SlowLog(logf, time.Millisecond))
	if _, err := slow(context.Background(), wire.Envelope{Type: wire.TypePing}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(logged, "slow request") {
		t.Fatalf("slow request not logged: %q", logged)
	}

	logged = ""
	fast := Chain(okHandler(wire.TypePong), SlowLog(logf, time.Second))
	if _, err := fast(context.Background(), wire.Envelope{Type: wire.TypePing}); err != nil {
		t.Fatal(err)
	}
	if logged != "" {
		t.Fatalf("fast request logged as slow: %q", logged)
	}
}
