package behavior

import (
	"errors"
	"strings"
	"testing"
	"time"

	"honestplayer/internal/feedback"
	"honestplayer/internal/stats"
)

// regionPartition categorises by the client-ID prefix before '-'.
func regionPartition(f feedback.Feedback) string {
	c := string(f.Client)
	if i := strings.IndexByte(c, '-'); i > 0 {
		return c[:i]
	}
	return c
}

// regionalHistory builds a history where clients from region "na" get
// quality pNA and clients from "af" get quality pAF. Arrivals come in
// bursts of 20 per region (time-zone waves), so pooled windows are mostly
// homogeneous per region and their count distribution is bimodal — not
// binomial — even though the server is honest within each region.
func regionalHistory(t *testing.T, rng *stats.RNG, n int, pNA, pAF float64) *feedback.History {
	t.Helper()
	h := feedback.NewHistory("s")
	for i := 0; i < n; i++ {
		region, p := "na", pNA
		if (i/20)%2 == 1 {
			region, p = "af", pAF
		}
		c := feedback.EntityID(region + "-client")
		if err := h.AppendOutcome(c, rng.Bernoulli(p), time.Unix(int64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func TestNewPartitionedValidation(t *testing.T) {
	single, err := NewSingle(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPartitioned(nil, regionPartition); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil inner: %v", err)
	}
	if _, err := NewPartitioned(single, nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil partition: %v", err)
	}
	p, err := NewPartitioned(single, regionPartition)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "partitioned(single)" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestPartitionedAcceptsMixedQualityHonest(t *testing.T) {
	// The paper's movie-server example: 0.95 quality for North America,
	// 0.6 for Africa — honest in both categories, but the pooled stream
	// is a mixture that is NOT binomial, so the plain single test flags
	// it while the partitioned test accepts it.
	single, err := NewSingle(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	part, err := NewPartitioned(single, regionPartition)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(71)
	pooledFlagged, partitionedPassed := 0, 0
	const trials = 25
	for trial := 0; trial < trials; trial++ {
		h := regionalHistory(t, rng, 800, 0.95, 0.6)
		pooled, err := single.Test(h)
		if err != nil {
			t.Fatal(err)
		}
		if !pooled.Honest {
			pooledFlagged++
		}
		split, err := part.Test(h)
		if err != nil {
			t.Fatal(err)
		}
		if split.Honest {
			partitionedPassed++
		}
	}
	if pooledFlagged < trials/2 {
		t.Fatalf("pooled mixture flagged only %d/%d times; expected the plain test to raise false alerts", pooledFlagged, trials)
	}
	if partitionedPassed < trials*7/10 {
		t.Fatalf("partitioned test passed only %d/%d honest mixed-quality servers", partitionedPassed, trials)
	}
}

func TestPartitionedDetectsAttackInOneCategory(t *testing.T) {
	single, err := NewSingle(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	part, err := NewPartitioned(single, regionPartition)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(73)
	// Honest to "na", deterministic periodic attack against "af".
	h := feedback.NewHistory("s")
	afCount := 0
	for i := 0; i < 800; i++ {
		if i%2 == 0 {
			_ = h.AppendOutcome("na-client", rng.Bernoulli(0.95), time.Unix(int64(i), 0))
		} else {
			afCount++
			_ = h.AppendOutcome("af-client", afCount%10 != 0, time.Unix(int64(i), 0))
		}
	}
	v, err := part.Test(h)
	if err != nil {
		t.Fatal(err)
	}
	if v.Honest {
		t.Fatal("per-category attack not detected")
	}
	cats, err := part.TestByCategory(h)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]CategoryVerdict{}
	for _, cv := range cats {
		byLabel[cv.Category] = cv
	}
	if !byLabel["na"].Tested || !byLabel["na"].Verdict.Honest {
		t.Fatalf("na category: %+v", byLabel["na"])
	}
	if !byLabel["af"].Tested || byLabel["af"].Verdict.Honest {
		t.Fatalf("af category: %+v", byLabel["af"])
	}
}

func TestPartitionedSkipsShortCategories(t *testing.T) {
	single, err := NewSingle(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	part, err := NewPartitioned(single, regionPartition)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(79)
	h := feedback.NewHistory("s")
	for i := 0; i < 400; i++ {
		_ = h.AppendOutcome("na-client", rng.Bernoulli(0.95), time.Unix(int64(i), 0))
	}
	// A handful of records in a second category: too short to test.
	for i := 400; i < 405; i++ {
		_ = h.AppendOutcome("af-client", true, time.Unix(int64(i), 0))
	}
	cats, err := part.TestByCategory(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(cats) != 2 {
		t.Fatalf("categories = %d", len(cats))
	}
	for _, cv := range cats {
		switch cv.Category {
		case "na":
			if !cv.Tested {
				t.Error("na should be tested")
			}
		case "af":
			if cv.Tested {
				t.Error("af should be skipped")
			}
			if cv.Transactions != 5 {
				t.Errorf("af transactions = %d", cv.Transactions)
			}
		}
	}
	// Merged verdict still works.
	v, err := part.Test(h)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Honest {
		t.Fatal("honest server flagged")
	}
}

func TestPartitionedAllCategoriesShort(t *testing.T) {
	single, err := NewSingle(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	part, err := NewPartitioned(single, regionPartition)
	if err != nil {
		t.Fatal(err)
	}
	h := feedback.NewHistory("s")
	for i := 0; i < 10; i++ {
		_ = h.AppendOutcome("na-client", true, time.Unix(int64(i), 0))
	}
	if _, err := part.Test(h); !errors.Is(err, ErrInsufficientHistory) {
		t.Fatalf("all-short: %v", err)
	}
}
