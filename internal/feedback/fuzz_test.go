package feedback

import (
	"bytes"
	"testing"
	"time"
)

// FuzzDecodeBinary ensures the binary decoder never panics and that
// anything it accepts round-trips back to identical bytes.
func FuzzDecodeBinary(f *testing.F) {
	seed, _ := AppendBinary(nil, Feedback{
		Time: time.Unix(1, 0).UTC(), Server: "srv", Client: "cli", Rating: Positive,
	})
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, rest, err := DecodeBinary(data)
		if err != nil {
			return
		}
		consumed := data[:len(data)-len(rest)]
		re, err := AppendBinary(nil, rec)
		if err != nil {
			t.Fatalf("accepted record failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, consumed) {
			t.Fatalf("round trip mismatch:\n in: %x\nout: %x", consumed, re)
		}
	})
}

// FuzzReadJSONLines ensures the JSON-lines reader never panics on arbitrary
// input.
func FuzzReadJSONLines(f *testing.F) {
	f.Add(`{"time":"2020-01-01T00:00:00Z","server":"s","client":"c","rating":2}` + "\n")
	f.Add("")
	f.Add("{}\n{}")
	f.Fuzz(func(t *testing.T, data string) {
		recs, err := ReadJSONLines(bytes.NewReader([]byte(data)))
		if err != nil {
			return
		}
		for _, r := range recs {
			if err := r.Validate(); err != nil {
				t.Fatalf("reader returned invalid record: %v", err)
			}
		}
	})
}
