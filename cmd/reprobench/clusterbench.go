package main

import (
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"sort"
	"time"

	"honestplayer/internal/behavior"
	"honestplayer/internal/cluster"
	"honestplayer/internal/core"
	"honestplayer/internal/feedback"
	"honestplayer/internal/repclient"
	"honestplayer/internal/repserver"
	"honestplayer/internal/stats"
	"honestplayer/internal/trust"
	"honestplayer/internal/wire"
)

// The cluster benchmark measures what partitioned ownership costs on the
// read path: the same assess, answered two ways on one 3-node cluster
// (replica factor 2) over real TCP:
//
//   - local: the request enters through a node in the server's replica set
//     and is served from local state, exactly like a single-node assess.
//   - forwarded: the request enters through the one node NOT holding the
//     server; it asks the owner for its full assessment and the other
//     replica for an O(1) state digest concurrently, verifies the digests
//     agree, and answers with the digest-verified merged view (a real
//     weight-merge of full per-node views only happens on divergence).
//
// Every node runs the full two-phase assessor (multi tester, recompute path,
// assessment cache off) over 10k-record histories, so a request costs what a
// production assess costs — the regime the ≤2x forwarding-overhead
// acceptance is stated for. Histories are seeded through one node's client,
// which exercises write routing and synchronous replication; the store is
// then frozen so both paths assess identical state. Medians of three passes
// are reported, and the differential check requires the forwarded verdict
// (routing markers stripped) to equal the local one for every server.

// clusterBenchSize is one workload scale of the comparison.
type clusterBenchSize struct {
	Servers int // distinct servers assessed per pass
	History int // seeded records per server
	Rounds  int // assessments of every server per pass, per path
	Warmup  int // unmeasured sweeps per path
}

// clusterSizeResult is the per-size outcome. The ns figures are per assess
// round trip.
type clusterSizeResult struct {
	Servers          int     `json:"servers"`
	History          int     `json:"history"`
	Requests         int     `json:"requests_per_pass"`
	LocalNsPerReq    float64 `json:"local_ns_per_req"`
	ForwardNsPerReq  float64 `json:"forwarded_ns_per_req"`
	Overhead         float64 `json:"forwarding_overhead"`
	AssessmentsMatch bool    `json:"assessments_match"`
}

// clusterBenchReport is the JSON document the -clusterbench mode emits.
type clusterBenchReport struct {
	Description string              `json:"description"`
	Command     string              `json:"command"`
	Environment map[string]any      `json:"environment"`
	Config      map[string]any      `json:"config"`
	Sizes       []clusterSizeResult `json:"sizes"`
	Acceptance  string              `json:"acceptance"`
}

// clusterNodes is the benchmark topology: the smallest cluster where some
// node is outside every 2-replica set, so the forwarded path always crosses
// the wire.
const clusterNodes = 3

// clusterAssessor builds one node's assessor; every node uses the same seed
// so replicas assess identical histories identically.
func clusterAssessor(seed uint64) (*core.TwoPhase, *stats.Calibrator, error) {
	cal := stats.NewCalibrator(stats.CalibrationConfig{Seed: seed, Replicates: 200}, 0)
	tester, err := behavior.NewMulti(behavior.Config{Calibrator: cal})
	if err != nil {
		return nil, nil, err
	}
	tp, err := core.NewTwoPhase(tester, trust.Average{})
	return tp, cal, err
}

// stripClusterMarkers clears the fields that legitimately differ between a
// locally served response and a forwarded/merged one, leaving the verdict.
func stripClusterMarkers(r wire.AssessResponse) wire.AssessResponse {
	r.Merged = false
	r.MergedFrom = nil
	r.Cached = false
	r.Incremental = false
	return r
}

// clusterMeasure runs both paths at one scale on a fresh 3-node cluster.
func clusterMeasure(size clusterBenchSize) (clusterSizeResult, error) {
	res := clusterSizeResult{
		Servers:  size.Servers,
		History:  size.History,
		Requests: size.Servers * size.Rounds,
	}

	// Boot the cluster: 3 servers, each with its own identically seeded
	// assessor, wired over a shared membership.
	servers := make([]*repserver.Server, clusterNodes)
	members := make([]cluster.Node, clusterNodes)
	cals := make([]*stats.Calibrator, clusterNodes)
	for i := range servers {
		tp, cal, err := clusterAssessor(1)
		if err != nil {
			return res, err
		}
		cals[i] = cal
		srv, err := repserver.New("127.0.0.1:0", repserver.Config{Assessor: tp})
		if err != nil {
			return res, err
		}
		defer srv.Close()
		servers[i] = srv
		members[i] = cluster.Node{ID: fmt.Sprintf("n%d", i+1), Addr: srv.Addr()}
	}
	views := make([]*cluster.Cluster, clusterNodes)
	for i, srv := range servers {
		cl, err := cluster.New(cluster.Config{
			Self: members[i].ID, Nodes: members, Replicas: 2, DialTimeout: 30 * time.Second,
		})
		if err != nil {
			return res, err
		}
		defer cl.Close()
		views[i] = cl
		srv.SetCluster(cl)
		srv.Start()
	}
	clients := make([]*repclient.Client, clusterNodes)
	for i, srv := range servers {
		c, err := repclient.Dial(srv.Addr(), repclient.WithTimeout(30*time.Second))
		if err != nil {
			return res, err
		}
		defer func() { _ = c.Close() }()
		clients[i] = c
	}

	// Seed through node 1's client so the records route to their owners and
	// replicate — the cluster write path, not a local backdoor.
	ids := make([]feedback.EntityID, size.Servers)
	for i := range ids {
		ids[i] = feedback.EntityID(fmt.Sprintf("cbench-srv-%03d", i))
		recs := incrHistory(ids[i], size.History)
		for start := 0; start < len(recs); start += 5000 {
			end := min(start+5000, len(recs))
			report, err := clients[0].SubmitBatchReport(recs[start:end])
			if err != nil {
				return res, err
			}
			if len(report.Rejected) > 0 {
				return res, fmt.Errorf("seeding %s: %d records rejected (first: %s)",
					ids[i], len(report.Rejected), report.Rejected[0].Reason)
			}
		}
	}

	// Pair each server with its serving doors: a replica-set member (local
	// path) and the one node outside the set (forwarded path).
	nodeIdx := map[string]int{"n1": 0, "n2": 1, "n3": 2}
	localClient := make([]*repclient.Client, size.Servers)
	remoteClient := make([]*repclient.Client, size.Servers)
	for i, id := range ids {
		set := views[0].ReplicaSet(id)
		inSet := map[string]bool{}
		for _, n := range set {
			inSet[n] = true
		}
		localClient[i] = clients[nodeIdx[set[0]]]
		for n, idx := range nodeIdx {
			if !inSet[n] {
				remoteClient[i] = clients[idx]
			}
		}
	}

	// Prewarm every node's calibration grid so the shared Monte-Carlo cost
	// stays out of both timed paths.
	maxWindows := size.History / behavior.DefaultWindowSize
	for _, cal := range cals {
		if err := incrPrewarm(cal, maxWindows); err != nil {
			return res, err
		}
	}

	sweep := func(pick []*repclient.Client) (time.Duration, error) {
		start := time.Now()
		for r := 0; r < size.Rounds; r++ {
			for i, id := range ids {
				if _, err := pick[i].Assess(id, 0.9); err != nil {
					return 0, fmt.Errorf("assess %s: %w", id, err)
				}
			}
		}
		return time.Since(start), nil
	}
	for w := 0; w < size.Warmup; w++ {
		if _, err := sweep(localClient); err != nil {
			return res, err
		}
		if _, err := sweep(remoteClient); err != nil {
			return res, err
		}
	}
	const passes = 3
	reqs := float64(size.Servers * size.Rounds)
	localNs := make([]float64, 0, passes)
	fwdNs := make([]float64, 0, passes)
	for p := 0; p < passes; p++ {
		l, err := sweep(localClient)
		if err != nil {
			return res, err
		}
		f, err := sweep(remoteClient)
		if err != nil {
			return res, err
		}
		localNs = append(localNs, float64(l.Nanoseconds())/reqs)
		fwdNs = append(fwdNs, float64(f.Nanoseconds())/reqs)
	}
	sort.Float64s(localNs)
	sort.Float64s(fwdNs)
	res.LocalNsPerReq = localNs[passes/2]
	res.ForwardNsPerReq = fwdNs[passes/2]
	res.Overhead = float64(int(res.ForwardNsPerReq/res.LocalNsPerReq*100)) / 100

	// Differential: the forwarded verdict equals the local one, server by
	// server, on the frozen stores.
	res.AssessmentsMatch = true
	for i, id := range ids {
		lr, err := localClient[i].Assess(id, 0.9)
		if err != nil {
			return res, err
		}
		fr, err := remoteClient[i].Assess(id, 0.9)
		if err != nil {
			return res, err
		}
		if !fr.Merged {
			return res, fmt.Errorf("assess %s via non-member produced no merge marker", id)
		}
		if !reflect.DeepEqual(stripClusterMarkers(lr), stripClusterMarkers(fr)) {
			res.AssessmentsMatch = false
		}
	}
	return res, nil
}

// runClusterBench executes the local-vs-forwarded comparison, writes the
// JSON report, and enforces the gates: a verdict mismatch always fails, and
// (when maxOverhead > 0) so does a forwarding overhead above it.
func runClusterBench(out io.Writer, quick bool, maxOverhead float64) error {
	sizes := []clusterBenchSize{
		{Servers: 6, History: 1000, Rounds: 10, Warmup: 1},
		{Servers: 6, History: 10000, Rounds: 5, Warmup: 1},
	}
	if quick {
		sizes = []clusterBenchSize{{Servers: 4, History: 400, Rounds: 3, Warmup: 1}}
	}
	report := clusterBenchReport{
		Description: "Per-request latency of the same assess on a 3-node cluster (replica factor 2) served two ways: through a replica-set member (local state) vs through the one node outside the set (a full assessment from the owner plus O(1) state digests from the rest of the replica set, digest-verified and merged). Every node runs the full two-phase assessor (multi tester, recompute path, cache off) over real TCP; histories are seeded through one node's client so writes route and replicate through the cluster, then frozen. Medians of three passes; the differential check requires the forwarded verdict (routing markers stripped) to equal the local one for every server.",
		Command:     "go run ./cmd/reprobench -clusterbench > BENCH_cluster.json",
		Environment: map[string]any{
			"go":   runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
			"date": time.Now().UTC().Format("2006-01-02"),
		},
		Config: map[string]any{
			"nodes":           clusterNodes,
			"replicas":        2,
			"trust":           "average",
			"tester":          "multi",
			"incremental":     false,
			"assess_cache":    0,
			"passes":          3,
			"clients_per_srv": 25,
		},
		Acceptance: "forwarded assess verdicts must match local ones at every size, with forwarding overhead <= 2x local at 10k history (full workload)",
	}
	for _, size := range sizes {
		r, err := clusterMeasure(size)
		if err != nil {
			return fmt.Errorf("servers=%d history=%d: %w", size.Servers, size.History, err)
		}
		report.Sizes = append(report.Sizes, r)
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	for _, r := range report.Sizes {
		if !r.AssessmentsMatch {
			return fmt.Errorf("differential check failed at history=%d: forwarded verdicts diverge from local", r.History)
		}
		if maxOverhead > 0 && r.Overhead > maxOverhead {
			return fmt.Errorf("forwarding overhead %.2fx at history=%d above gate %.2fx", r.Overhead, r.History, maxOverhead)
		}
	}
	return nil
}
