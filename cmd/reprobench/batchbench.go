package main

import (
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"sort"
	"time"

	"honestplayer/internal/core"
	"honestplayer/internal/feedback"
	"honestplayer/internal/repclient"
	"honestplayer/internal/repserver"
	"honestplayer/internal/trust"
)

// The batch-assessment benchmark compares the two ways a client can assess N
// servers over the wire:
//
//   - single: N sequential assess round-trips, one per server.
//   - batch: one assess.batch round-trip; the server fans the items out over
//     its store shards with a bounded worker pool.
//
// Both run against the same server — incremental engine on, assessment cache
// off — on a warm cache-miss workload: every server receives a fresh feedback
// record (outside the timer) before each measured round, so no assessment can
// be served from a cache and every verdict reads live accumulator state. The
// assessor is the trust-only two-phase (phase 1 off): batching amortises the
// per-request costs (round-trip, envelope, dispatch), so its win is largest
// when the per-item work — here a constant-time accumulator read — does not
// drown them out. Verdict-carrying testers add per-suffix diagnostics to
// every item, shifting both strategies toward JSON encode/decode and the
// ratio toward 1. The calibration-free setup needs no prewarm; the median of
// three timed passes is reported, mirroring the -incrbench methodology.

// batchBenchSize is one batch width of the comparison.
type batchBenchSize struct {
	N       int // servers assessed per round
	History int // seeded records per server
	Rounds  int // measured rounds per pass (each: N singles + one batch)
	Warmup  int // unmeasured rounds
}

// batchSizeResult is the per-size outcome. The ns figures are per round:
// assessing all N servers once, sequentially vs batched.
type batchSizeResult struct {
	N                int     `json:"n"`
	History          int     `json:"history"`
	Rounds           int     `json:"rounds"`
	SingleNsPerBatch float64 `json:"single_ns_per_batch"`
	BatchNsPerBatch  float64 `json:"batch_ns_per_batch"`
	Speedup          float64 `json:"speedup"`
	AssessmentsMatch bool    `json:"assessments_match"`
}

// batchBenchReport is the JSON document the -batchbench mode emits.
type batchBenchReport struct {
	Description string            `json:"description"`
	Command     string            `json:"command"`
	Environment map[string]any    `json:"environment"`
	Config      map[string]any    `json:"config"`
	Sizes       []batchSizeResult `json:"sizes"`
	Acceptance  string            `json:"acceptance"`
}

// batchMeasure runs both strategies at one batch width over a real TCP
// connection and returns the median-pass timings plus the differential check.
func batchMeasure(size batchBenchSize) (batchSizeResult, error) {
	res := batchSizeResult{N: size.N, History: size.History, Rounds: size.Rounds}
	assessor, err := core.NewTwoPhase(nil, trust.Average{})
	if err != nil {
		return res, err
	}
	srv, err := repserver.New("127.0.0.1:0", repserver.Config{
		Assessor:    assessor,
		Incremental: true,
	})
	if err != nil {
		return res, err
	}
	defer srv.Close()
	servers := make([]feedback.EntityID, size.N)
	for i := range servers {
		servers[i] = feedback.EntityID(fmt.Sprintf("srv-%03d", i))
		if _, err := srv.Seed(incrHistory(servers[i], size.History)); err != nil {
			return res, err
		}
	}
	srv.Start()
	client, err := repclient.Dial(srv.Addr(), repclient.WithTimeout(30*time.Second))
	if err != nil {
		return res, err
	}
	defer func() { _ = client.Close() }()

	// touch appends one fresh record to every server so the next assessment
	// of any of them is a cache miss on live state.
	next := int64(1 << 30)
	touch := func() error {
		next++
		f := feedback.Feedback{
			Time:   time.Unix(next, 0).UTC(),
			Client: feedback.EntityID(fmt.Sprintf("c%d", int(next)%25)),
			Rating: feedback.Positive,
		}
		for _, sv := range servers {
			f.Server = sv
			if _, err := srv.Store().Add(f); err != nil {
				return err
			}
		}
		return nil
	}
	singles := func() (time.Duration, error) {
		start := time.Now()
		for _, sv := range servers {
			if _, err := client.Assess(sv, 0.9); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	batch := func() (time.Duration, error) {
		start := time.Now()
		items, err := client.AssessBatch(servers, 0.9)
		if err != nil {
			return 0, err
		}
		if len(items) != size.N {
			return 0, fmt.Errorf("batch returned %d items, want %d", len(items), size.N)
		}
		return time.Since(start), nil
	}
	round := func() (time.Duration, time.Duration, error) {
		if err := touch(); err != nil {
			return 0, 0, err
		}
		s, err := singles()
		if err != nil {
			return 0, 0, err
		}
		if err := touch(); err != nil {
			return 0, 0, err
		}
		b, err := batch()
		if err != nil {
			return 0, 0, err
		}
		return s, b, nil
	}

	for i := 0; i < size.Warmup; i++ {
		if _, _, err := round(); err != nil {
			return res, err
		}
	}
	const passes = 3
	singleNs := make([]float64, 0, passes)
	batchNs := make([]float64, 0, passes)
	for p := 0; p < passes; p++ {
		var sTotal, bTotal time.Duration
		for r := 0; r < size.Rounds; r++ {
			s, b, err := round()
			if err != nil {
				return res, err
			}
			sTotal += s
			bTotal += b
		}
		singleNs = append(singleNs, float64(sTotal.Nanoseconds())/float64(size.Rounds))
		batchNs = append(batchNs, float64(bTotal.Nanoseconds())/float64(size.Rounds))
	}
	sort.Float64s(singleNs)
	sort.Float64s(batchNs)
	res.SingleNsPerBatch = singleNs[passes/2]
	res.BatchNsPerBatch = batchNs[passes/2]
	res.Speedup = float64(int(res.SingleNsPerBatch/res.BatchNsPerBatch*100)) / 100

	// Differential check on frozen state: with no writes in between, the
	// batched items must decode byte-identical to N sequential assessments
	// (the concurrent-write variant runs under -race in internal/repserver).
	if err := touch(); err != nil {
		return res, err
	}
	items, err := client.AssessBatch(servers, 0.9)
	if err != nil {
		return res, err
	}
	res.AssessmentsMatch = len(items) == size.N
	for i, sv := range servers {
		single, err := client.Assess(sv, 0.9)
		if err != nil {
			return res, err
		}
		if items[i].Error != nil || !reflect.DeepEqual(items[i].AssessResponse, single) {
			res.AssessmentsMatch = false
		}
	}
	return res, nil
}

// runBatchBench executes the batched-vs-sequential comparison and writes the
// JSON report. With minSpeedup > 0 it fails unless every size reaches that
// speedup with matching assessments — the CI smoke gate.
func runBatchBench(out io.Writer, quick bool, minSpeedup float64) error {
	sizes := []batchBenchSize{
		{N: 10, History: 160, Rounds: 20, Warmup: 3},
		{N: 100, History: 160, Rounds: 8, Warmup: 2},
		{N: 256, History: 160, Rounds: 5, Warmup: 2},
	}
	if quick {
		sizes = []batchBenchSize{{N: 16, History: 120, Rounds: 5, Warmup: 1}}
	}
	report := batchBenchReport{
		Description: "Wire latency of one assess.batch round-trip vs N sequential assess round-trips against the same server (trust-only two-phase assessor, incremental engine on, assessment cache off). Every server receives a fresh feedback record outside the timer before each measured round, so every assessment is a cache miss served from live accumulator state; the median of three timed passes is reported per strategy. Batching amortises per-request costs (round-trip, envelope, dispatch) and additionally parallelises shard groups when GOMAXPROCS > 1; verdict-carrying testers enlarge every item's payload and pull the ratio toward the JSON encode/decode floor shared by both strategies.",
		Command:     "go run ./cmd/reprobench -batchbench",
		Environment: map[string]any{
			"go":         runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"date":       time.Now().UTC().Format("2006-01-02"),
		},
		Config: map[string]any{
			"clients":             25,
			"good_ratio":          "19/20",
			"trust":               "average",
			"tester":              "none (trust-only)",
			"incremental":         true,
			"assess_cache":        0,
			"batch_workers":       "GOMAXPROCS",
			"threshold":           0.9,
			"passes_per_strategy": 3,
		},
		Acceptance: "speedup at n=100 must be >= 5 with assessments_match true",
	}
	for _, size := range sizes {
		res, err := batchMeasure(size)
		if err != nil {
			return fmt.Errorf("n=%d: %w", size.N, err)
		}
		report.Sizes = append(report.Sizes, res)
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	if minSpeedup > 0 {
		for _, res := range report.Sizes {
			if !res.AssessmentsMatch {
				return fmt.Errorf("n=%d: batched assessments diverge from sequential", res.N)
			}
			if res.Speedup < minSpeedup {
				return fmt.Errorf("n=%d: speedup %.2f below required %.2f", res.N, res.Speedup, minSpeedup)
			}
		}
	}
	return nil
}
