package ledger

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"honestplayer/internal/feedback"
)

// FuzzOpenReplay ensures replay never panics or errors on arbitrary file
// contents — corruption must degrade to a shorter replayed prefix.
func FuzzOpenReplay(f *testing.F) {
	f.Add([]byte(`{"time":"2020-01-01T00:00:00Z","server":"s","client":"c","rating":2}` + "\n"))
	f.Add([]byte("garbage\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, recs, err := Open(path)
		if err != nil {
			t.Fatalf("replay errored on arbitrary contents: %v", err)
		}
		for _, r := range recs {
			if err := r.Validate(); err != nil {
				t.Fatalf("replayed invalid record: %v", err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzSegmentReplay feeds arbitrary bytes through the binary segment
// scanner, both directly and as a segment file booted through Open. The
// contract: corruption degrades to a shorter intact record prefix — it
// never panics, never errors, and never yields an invalid record.
func FuzzSegmentReplay(f *testing.F) {
	// Seed with a well-formed two-record segment, its sealed variant, and
	// torn/garbled mutants.
	seed := append([]byte(nil), segMagic[:]...)
	var chain uint32
	var err error
	for i := 0; i < 2; i++ {
		seed, chain, err = appendRecord(seed, feedback.Feedback{
			Server: "s", Client: "c", Rating: feedback.Positive,
			Time: time.Unix(int64(i+1), 0).UTC(),
		}, chain)
		if err != nil {
			f.Fatal(err)
		}
	}
	f.Add(seed)
	f.Add(appendFooter(append([]byte(nil), seed...), 2, uint64(len(seed)-len(segMagic)), chain))
	f.Add(seed[:len(seed)-3])
	f.Add([]byte{})
	f.Add(segMagic[:])
	f.Fuzz(func(t *testing.T, data []byte) {
		var emitted uint64
		sc, err := scanSegment(data, func(r feedback.Feedback) error {
			if verr := r.Validate(); verr != nil {
				t.Fatalf("scan emitted invalid record: %v", verr)
			}
			emitted++
			return nil
		})
		if err != nil {
			t.Fatalf("scan errored without an emit error: %v", err)
		}
		if emitted != sc.records {
			t.Fatalf("emitted %d but scan reports %d", emitted, sc.records)
		}
		if sc.intact+sc.truncated != sc.size {
			t.Fatalf("intact %d + truncated %d != size %d", sc.intact, sc.truncated, sc.size)
		}
		// The same bytes as a segment file must boot, replaying exactly the
		// intact prefix.
		dir := filepath.Join(t.TempDir(), "led")
		if err := os.Mkdir(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, recs, err := Open(dir)
		if err != nil {
			t.Fatalf("Open on arbitrary segment: %v", err)
		}
		if uint64(len(recs)) != sc.records {
			t.Fatalf("Open replayed %d, scan found %d", len(recs), sc.records)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzSnapshotLoad feeds arbitrary bytes through the snapshot decoder: any
// corruption must be rejected with an error — never a panic, never a
// half-decoded result with invalid records.
func FuzzSnapshotLoad(f *testing.F) {
	// A minimal valid snapshot as a seed.
	dir := f.TempDir()
	sw, err := beginSnapshot(dir, 1, 1, 2)
	if err != nil {
		f.Fatal(err)
	}
	hist := feedback.NewHistory("s")
	_ = hist.Append(feedback.Feedback{Server: "s", Client: "c", Rating: feedback.Positive, Time: time.Unix(1, 0).UTC()})
	_ = hist.Append(feedback.Feedback{Server: "s", Client: "d", Rating: feedback.Negative, Time: time.Unix(2, 0).UTC()})
	if err := sw.server("s", hist, []byte{1, 2, 3}); err != nil {
		f.Fatal(err)
	}
	if err := sw.finish(1); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(filepath.Join(dir, snapshotName(1)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add([]byte{})
	f.Add(snapMagic[:])
	f.Fuzz(func(t *testing.T, data []byte) {
		sd, err := decodeSnapshot(data)
		if err != nil {
			return // rejected, as corruption should be
		}
		for _, srv := range sd.servers {
			for _, r := range srv.recs {
				if verr := r.Validate(); verr != nil {
					t.Fatalf("accepted snapshot holds invalid record: %v", verr)
				}
				if r.Server != srv.id {
					t.Fatalf("record server %q under section %q", r.Server, srv.id)
				}
			}
		}
	})
}
