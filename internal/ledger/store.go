package ledger

// PersistentStore glues the in-memory feedback store to the segmented
// ledger and the snapshot writer. Writes go store-first, then ledger — so
// by the time a record is on disk it is queryable, and the snapshot
// consistency argument in Snapshot holds. Boot prefers the newest verified
// snapshot (seed the store, replay only the ledger tail) and falls back,
// snapshot by snapshot, to a full replay; a damaged snapshot can never cost
// correctness, only boot time.

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"

	"honestplayer/internal/feedback"
	"honestplayer/internal/store"
)

// Options configures OpenStoreOptions. The zero value is valid: default
// shard count and segment size, no automatic snapshots, no accumulators.
type Options struct {
	// Shards is the in-memory store's shard count (0 = store.DefaultShards).
	Shards int
	// SegmentBytes is the ledger roll-over threshold (0 = DefaultSegmentBytes).
	SegmentBytes int64
	// SnapshotEvery triggers a background snapshot after this many durable
	// appends since the last one (0 disables automatic snapshots; Snapshot
	// can still be called directly).
	SnapshotEvery uint64
	// AccumulatorFactory, when set, is installed on the store so servers get
	// incremental accumulators (see store.SetAccumulatorFactory).
	AccumulatorFactory store.AccumulatorFactory
	// EncodeAccumulator serializes a server's accumulator state into a
	// snapshot. Returning false means the accumulator doesn't support
	// serialization; the snapshot then stores history only and boot
	// re-derives the accumulator by replay.
	EncodeAccumulator func(acc store.Accumulator) ([]byte, bool)
	// RestoreAccumulator rebuilds an accumulator from its serialized state,
	// returning the number of records the state covers. Boot cross-checks
	// that count against the server's snapshot history and falls back to
	// replay-derivation on any mismatch or error.
	RestoreAccumulator func(server feedback.EntityID, state []byte) (store.Accumulator, int, error)
	// Logf, when set, receives boot and snapshot diagnostics (corrupt
	// snapshots skipped, truncation repairs, background snapshot failures).
	Logf func(format string, args ...any)
	// MemBudget, when positive, enables the resident-state lifecycle: the
	// store's accounted footprint (histories + accumulators, see
	// store.SetBudget) is kept at or under this many bytes by evicting idle
	// servers to stubs, and evicted servers are rebuilt on demand from the
	// newest snapshot plus the in-memory tail index (RebuildServer). Boot
	// seeds fully resident, snapshots once if it had to full-replay (so the
	// tail index starts empty), then trims to the budget.
	MemBudget int64
}

// PersistentStore is a feedback store backed by the ledger: every newly
// stored record is appended to the ledger, periodic snapshots bound the
// replay a future boot pays, and opening restores snapshot + tail.
type PersistentStore struct {
	store  *store.Store
	ledger *Ledger
	opts   Options
	logf   func(format string, args ...any)

	snapMu      sync.Mutex // serializes snapshot writes
	snapping    atomic.Bool
	lastSnapSeq atomic.Uint64
	snapsTaken  atomic.Uint64
	snapsFailed atomic.Uint64
	sinceSnap   atomic.Uint64
	wg          sync.WaitGroup

	// Lifecycle machinery, active when opts.MemBudget > 0 (see rebuild.go):
	// the tail index maps each server to its records appended since the
	// newest snapshot's covered segment (pendingTail is the generation an
	// in-flight snapshot is covering), snapIdx locates server sections in
	// the newest published snapshot, and pinned guards servers whose newest
	// write is not yet durable against eviction.
	tailMu        sync.Mutex
	tailIdx       map[string][]feedback.Feedback
	pendingTail   map[string][]feedback.Feedback
	snapIdx       *snapIndex
	pinMu         sync.Mutex
	pinned        map[string]int
	rebuilds      atomic.Uint64
	rebuildErrors atomic.Uint64

	bootMode     string
	bootSnapshot uint64
}

// OpenStore opens the ledger at path and builds the in-memory store from
// it.
func OpenStore(path string) (*PersistentStore, error) {
	return OpenStoreSharded(path, store.DefaultShards)
}

// OpenStoreSharded is OpenStore with an explicit shard count for the
// in-memory store.
func OpenStoreSharded(path string, shards int) (*PersistentStore, error) {
	return OpenStoreShardedContext(context.Background(), path, shards)
}

// OpenStoreShardedContext is OpenStoreSharded with a cancellable replay.
func OpenStoreShardedContext(ctx context.Context, path string, shards int) (*PersistentStore, error) {
	return OpenStoreOptions(ctx, path, Options{Shards: shards})
}

// OpenStoreOptions opens the ledger at path and boots the store: it seeds
// from the newest snapshot that verifies and seeds cleanly, then streams
// the ledger tail into the store; with no usable snapshot it replays the
// whole ledger. Replay is streamed in batches, so boot memory is bounded by
// the store itself plus one segment.
func OpenStoreOptions(ctx context.Context, path string, opts Options) (*PersistentStore, error) {
	shards := opts.Shards
	if shards <= 0 {
		shards = store.DefaultShards
	}
	l, err := openLedger(path, opts.SegmentBytes)
	if err != nil {
		return nil, err
	}
	ps := &PersistentStore{ledger: l, opts: opts, logf: opts.Logf}
	if ps.logf == nil {
		ps.logf = func(string, ...any) {}
	}

	seqs, err := listSnapshots(l.dir)
	if err != nil {
		cerr := l.Close()
		return nil, errors.Join(err, cerr)
	}
	if len(seqs) > 0 {
		ps.lastSnapSeq.Store(seqs[len(seqs)-1])
	}
	var st *store.Store
	from := uint64(0)
	for i := len(seqs) - 1; i >= 0 && st == nil; i-- {
		seq := seqs[i]
		path := filepath.Join(l.dir, snapshotName(seq))
		sd, err := loadSnapshot(path)
		if err != nil {
			ps.logf("ledger: snapshot %d unusable, trying older: %v", seq, err)
			continue
		}
		if cand, ok := ps.seedFromSnapshot(sd, shards); ok {
			st = cand
			from = sd.covered
			ps.bootMode = "snapshot"
			ps.bootSnapshot = seq
			if opts.MemBudget > 0 {
				ps.snapIdx = &snapIndex{path: path, sections: sd.sections}
			}
		}
	}
	if st == nil {
		st = store.NewSharded(shards)
		if opts.AccumulatorFactory != nil {
			st.SetAccumulatorFactory(opts.AccumulatorFactory)
		}
		ps.bootMode = "replay"
	}

	// With the lifecycle on, tail-replayed records double as the tail index
	// (records past the snapshot horizon must be rebuildable from memory,
	// since the snapshot file doesn't hold them). A store-level duplicate —
	// the seal/scan overlap a snapshot boot replays through — is filtered by
	// Add returning false, keeping the index duplicate-free.
	if err := l.replayFrom(ctx, from, func(batch []feedback.Feedback) error {
		for _, f := range batch {
			added, err := st.Add(f)
			if err != nil {
				return fmt.Errorf("ledger: replay into store: %w", err)
			}
			if added && opts.MemBudget > 0 {
				ps.tailAdd(f)
			}
		}
		return nil
	}); err != nil {
		cerr := l.Close()
		return nil, errors.Join(err, cerr)
	}
	ps.store = st
	if opts.MemBudget > 0 {
		st.SetEvictGuard(ps.isPinned)
		st.SetSnapshotSeq(ps.lastSnapSeq.Load())
		if ps.bootMode == "replay" && st.Len() > 0 {
			// A full replay leaves the whole history in the tail index; one
			// snapshot moves it into a section-indexed file so the budget
			// can actually be honored.
			if _, err := ps.Snapshot(); err != nil {
				cerr := l.Close()
				return nil, errors.Join(fmt.Errorf("ledger: boot snapshot for mem budget: %w", err), cerr)
			}
		}
		st.SetBudget(opts.MemBudget)
	}
	return ps, nil
}

// seedFromSnapshot builds a candidate store from a decoded snapshot,
// restoring accumulator state where possible. Any seeding failure discards
// the candidate so boot can fall back to an older snapshot or full replay.
func (ps *PersistentStore) seedFromSnapshot(sd *snapshotData, shards int) (*store.Store, bool) {
	cand := store.NewSharded(shards)
	if ps.opts.AccumulatorFactory != nil {
		cand.SetAccumulatorFactory(ps.opts.AccumulatorFactory)
	}
	// Pre-size each shard's dedup index for the records about to land in it;
	// one reservation per shard, via any server that shard holds.
	shardTotal := make(map[int]int)
	shardRep := make(map[int]feedback.EntityID)
	for _, srv := range sd.servers {
		idx := cand.ShardIndex(srv.id)
		shardTotal[idx] += len(srv.recs)
		shardRep[idx] = srv.id
	}
	for idx, n := range shardTotal {
		cand.ReserveFor(shardRep[idx], n)
	}
	for _, srv := range sd.servers {
		var acc store.Accumulator
		if len(srv.accState) > 0 && ps.opts.RestoreAccumulator != nil {
			a, n, err := ps.opts.RestoreAccumulator(srv.id, srv.accState)
			switch {
			case err != nil:
				ps.logf("ledger: snapshot %d: accumulator for %q not restored (re-deriving): %v", sd.seq, srv.id, err)
			case n != len(srv.recs):
				ps.logf("ledger: snapshot %d: accumulator for %q covers %d of %d records (re-deriving)", sd.seq, srv.id, n, len(srv.recs))
			default:
				acc = a
			}
		}
		if err := cand.SeedServer(srv.id, srv.recs, acc); err != nil {
			ps.logf("ledger: snapshot %d rejected: %v", sd.seq, err)
			return nil, false
		}
	}
	return cand, true
}

// Store returns the in-memory store (for read paths and for wiring into
// repserver; writes that should be durable must go through Add).
func (ps *PersistentStore) Store() *store.Store { return ps.store }

// Add stores the record and, when it is new, appends it to the ledger,
// kicking off a background snapshot when the configured interval is due.
// With the lifecycle enabled, the record's server is pinned against
// eviction from before the store accepts the write until the record is both
// in the ledger and in the tail index — evicting inside that window would
// mint a stub whose records cannot all be rebuilt yet.
func (ps *PersistentStore) Add(rec feedback.Feedback) (bool, error) {
	lifecycle := ps.opts.MemBudget > 0
	if lifecycle {
		ps.pin(rec.Server)
		defer ps.unpin(rec.Server)
	}
	stored, err := ps.store.Add(rec)
	if lifecycle && errors.Is(err, store.ErrEvicted) {
		// Write to an evicted server: fault it in and retry. The pin taken
		// above keeps the rebuilt state resident until the retry lands.
		if rerr := ps.RebuildServer(rec.Server); rerr != nil {
			return false, fmt.Errorf("fault-in for write to %q: %w", rec.Server, rerr)
		}
		stored, err = ps.store.Add(rec)
	}
	if err != nil || !stored {
		return stored, err
	}
	if err := ps.ledger.Append(rec); err != nil {
		return true, fmt.Errorf("stored in memory but not persisted: %w", err)
	}
	if lifecycle {
		ps.tailAdd(rec)
	}
	if every := ps.opts.SnapshotEvery; every > 0 && ps.sinceSnap.Add(1) >= every {
		ps.snapshotAsync()
	}
	return true, nil
}

// AddBatch is the batch form of Add: records are inserted into the store
// shard-grouped (one shard-lock acquisition per shard, fanned over at most
// workers goroutines), and everything newly stored is appended to the
// ledger as one group commit — one encode pass, one Write+Flush — instead
// of one flush per record. Results[i] reports recs[i]'s outcome with Add's
// exact semantics, including the "stored in memory but not persisted" error
// shape when the ledger append fails after the store accepted the records.
// With the lifecycle enabled, every distinct server in the batch is pinned
// for the duration, and a write that hits an evicted server triggers one
// fault-in per server for the whole batch before its records are retried.
func (ps *PersistentStore) AddBatch(recs []feedback.Feedback, workers int) []store.AddResult {
	if len(recs) == 0 {
		return nil
	}
	lifecycle := ps.opts.MemBudget > 0
	if lifecycle {
		pinned := make(map[feedback.EntityID]struct{}, len(recs))
		for _, rec := range recs {
			if _, ok := pinned[rec.Server]; !ok {
				pinned[rec.Server] = struct{}{}
				ps.pin(rec.Server)
			}
		}
		defer func() {
			for srv := range pinned {
				ps.unpin(srv)
			}
		}()
	}
	results := ps.store.AddBatch(recs, workers)
	if lifecycle {
		// Writes that hit evicted servers: fault each distinct server in
		// once (RebuildServer is idempotent), then retry its records. The
		// pins taken above keep the rebuilt state resident for the retry.
		rebuilt := make(map[feedback.EntityID]error)
		var retry []int
		for i, r := range results {
			if !errors.Is(r.Err, store.ErrEvicted) {
				continue
			}
			srv := recs[i].Server
			if _, done := rebuilt[srv]; !done {
				rebuilt[srv] = ps.RebuildServer(srv)
			}
			if rerr := rebuilt[srv]; rerr != nil {
				results[i] = store.AddResult{Err: fmt.Errorf("fault-in for write to %q: %w", srv, rerr)}
			} else {
				retry = append(retry, i)
			}
		}
		for _, i := range retry {
			results[i].Stored, results[i].Err = ps.store.Add(recs[i])
		}
	}
	var (
		newRecs []feedback.Feedback
		newIdx  []int
	)
	for i, r := range results {
		if r.Stored && r.Err == nil {
			newRecs = append(newRecs, recs[i])
			newIdx = append(newIdx, i)
		}
	}
	if len(newRecs) == 0 {
		return results
	}
	if err := ps.ledger.AppendBatch(newRecs); err != nil {
		for _, i := range newIdx {
			results[i].Err = fmt.Errorf("stored in memory but not persisted: %w", err)
		}
		return results
	}
	if lifecycle {
		for _, rec := range newRecs {
			ps.tailAdd(rec)
		}
	}
	if every := ps.opts.SnapshotEvery; every > 0 && ps.sinceSnap.Add(uint64(len(newRecs))) >= every {
		ps.snapshotAsync()
	}
	return results
}

// snapshotAsync starts at most one background snapshot at a time.
func (ps *PersistentStore) snapshotAsync() {
	if !ps.snapping.CompareAndSwap(false, true) {
		return
	}
	ps.wg.Add(1)
	go func() {
		defer ps.wg.Done()
		defer ps.snapping.Store(false)
		if seq, err := ps.Snapshot(); err != nil {
			ps.logf("ledger: background snapshot failed: %v", err)
		} else {
			ps.logf("ledger: snapshot %d written", seq)
		}
	}()
}

// Snapshot writes a snapshot of the current store state and returns its
// sequence number.
//
// Consistency: the ledger seals its active segment and reports the fresh
// (empty) active index first (flushed, under the ledger lock), then shards
// are scanned. Add goes store-then-ledger, so every record the captured
// position covers is already visible to the shard scan; records accepted
// during the scan land in segments >= the covered segment, which tail
// replay revisits, and the store's content-hash dedup makes the overlap
// harmless. Sealing aligns the snapshot to a segment boundary, so a
// snapshot boot replays only post-snapshot segments instead of re-decoding
// the covered segment's prefix. Accumulator state is serialized under the
// shard read lock, so it matches the history captured alongside it exactly.
// Evicted servers are forgetting-safe: the walk hands the writer a stub
// instead of a history, and the writer materializes the stub's full section
// from the previous snapshot plus the pending tail generation (rotated out
// of the live tail index at seal time), verified against the stub's record
// count. Every published snapshot therefore carries every server's complete
// covered history, resident or not — the invariant rebuild-on-demand and
// snapshot boot both lean on.
func (ps *PersistentStore) Snapshot() (uint64, error) {
	ps.snapMu.Lock()
	defer ps.snapMu.Unlock()
	covered, records, err := ps.ledger.sealForSnapshot()
	if err != nil {
		return 0, err
	}
	lifecycle := ps.opts.MemBudget > 0
	if lifecycle {
		ps.rotateTail()
	}
	ps.sinceSnap.Store(0)
	seq := ps.lastSnapSeq.Load() + 1
	sw, err := beginSnapshot(ps.ledger.dir, seq, covered, records)
	if err != nil {
		ps.snapsFailed.Add(1)
		return 0, err
	}
	fail := func(err error) (uint64, error) {
		sw.abort()
		ps.snapsFailed.Add(1)
		return 0, err
	}
	type section struct {
		id       feedback.EntityID
		snap     *feedback.History
		accState []byte
		stub     *store.Stub
	}
	var stubs []store.Stub
	sections := make(map[string]secRange)
	var secFiles sectionFiles
	defer secFiles.close()
	for idx := 0; idx < ps.store.NumShards(); idx++ {
		var secs []section
		ps.store.SnapshotShard(idx, func(ent store.ShardEntry) {
			if ent.Snap == nil {
				stub := store.Stub{Server: ent.Server, Count: ent.Count, XOR: ent.XOR, Version: ent.Version, SnapSeq: ent.SnapSeq}
				stubs = append(stubs, stub)
				secs = append(secs, section{id: ent.Server, stub: &stub})
				return
			}
			sec := section{id: ent.Server, snap: ent.Snap}
			if ent.Acc != nil && ps.opts.EncodeAccumulator != nil {
				if b, ok := ps.opts.EncodeAccumulator(ent.Acc); ok {
					sec.accState = b
				}
			}
			secs = append(secs, sec)
		})
		// Stream record encoding outside the shard lock: the snapshot views
		// are immutable (and stub sections come from the previous snapshot
		// file plus durable tail records), so writers aren't blocked on
		// file IO.
		for _, sec := range secs {
			hist := sec.snap
			if sec.stub != nil {
				// The live tail is included: a server evicted after this
				// snapshot sealed may count post-seal records in its stub,
				// and those live only in the tail index. Extra records
				// beyond the stub's count are harmless (boot dedups), but
				// fewer means the section would forget history — abort.
				recs, _, _, err := ps.gatherServer(sec.id, true, &secFiles)
				if err != nil {
					return fail(fmt.Errorf("ledger: snapshot: evicted section %q: %w", sec.id, err))
				}
				if len(recs) < sec.stub.Count {
					return fail(fmt.Errorf("ledger: snapshot: evicted section %q: rebuilt %d of %d records", sec.id, len(recs), sec.stub.Count))
				}
				if len(recs) == sec.stub.Count {
					var xor uint64
					for _, f := range recs {
						xor ^= uint64(store.HashOf(f))
					}
					if xor != sec.stub.XOR {
						return fail(fmt.Errorf("ledger: snapshot: evicted section %q: digest mismatch (rebuilt %x, stub %x)", sec.id, xor, sec.stub.XOR))
					}
				}
				if hist, err = feedback.NewHistoryFromRecords(sec.id, recs); err != nil {
					return fail(fmt.Errorf("ledger: snapshot: evicted section %q: %w", sec.id, err))
				}
			}
			start := sw.pos
			if err := sw.server(sec.id, hist, sec.accState); err != nil {
				return fail(err)
			}
			sections[string(sec.id)] = secRange{off: start, end: sw.pos}
		}
	}
	if err := sw.finish(seq); err != nil {
		ps.snapsFailed.Add(1)
		return 0, err
	}
	ps.lastSnapSeq.Store(seq)
	ps.snapsTaken.Add(1)
	if lifecycle {
		ps.dropPendingTail(seq, sections)
		ps.store.SetSnapshotSeq(seq)
		if err := writeStubs(ps.ledger.dir, seq, stubs); err != nil {
			ps.logf("ledger: stub sidecar for snapshot %d not written: %v", seq, err)
		}
	}
	pruneSnapshots(ps.ledger.dir)
	return seq, nil
}

// Close waits for any in-flight background snapshot, then closes the
// ledger.
func (ps *PersistentStore) Close() error {
	ps.wg.Wait()
	return ps.ledger.Close()
}

// Stats reports ledger and snapshot counters for metrics endpoints. For a
// snapshot boot of a migrated ledger, Records may undercount: legacy JSON
// segments skipped by the snapshot carry no footer to read a count from.
type Stats struct {
	Segments         int    `json:"segments"`
	ActiveSegment    uint64 `json:"active_segment"`
	ActiveBytes      int64  `json:"active_bytes"`
	SealedBytes      int64  `json:"sealed_bytes"`
	Records          uint64 `json:"records"`
	RollOvers        uint64 `json:"roll_overs"`
	Truncations      int    `json:"ledger_truncations"`
	TruncatedBytes   int64  `json:"truncated_bytes"`
	SnapshotSeq      uint64 `json:"snapshot_seq"`
	SnapshotsTaken   uint64 `json:"snapshots_taken"`
	SnapshotsFailed  uint64 `json:"snapshots_failed"`
	BootMode         string `json:"boot_mode"`
	BootSnapshot     uint64 `json:"boot_snapshot,omitempty"`
	RecordsSinceSnap uint64 `json:"records_since_snapshot"`
	Rebuilds         uint64 `json:"rebuilds,omitempty"`
	RebuildErrors    uint64 `json:"rebuild_errors,omitempty"`
	// Group-commit write-path counters (see Ledger.GroupCommit).
	GroupCommit GroupCommitStats `json:"group_commit"`
}

// Stats returns a point-in-time snapshot of the persistence counters.
func (ps *PersistentStore) Stats() Stats {
	l := ps.ledger
	l.mu.Lock()
	s := Stats{
		Segments:       l.sealedSegs + 1,
		ActiveSegment:  l.segIndex,
		ActiveBytes:    l.segSize,
		SealedBytes:    l.sealedBytes,
		Records:        l.records,
		RollOvers:      l.rolls,
		Truncations:    l.truncatedSegments,
		TruncatedBytes: l.truncatedBytes,
		GroupCommit: GroupCommitStats{
			Flushes:   l.groupFlushes,
			Coalesced: l.coalescedFlushes,
			Records:   l.groupRecords,
			SizeP50:   groupQuantile(&l.groupSizes, l.groupFlushes, 50),
			SizeP99:   groupQuantile(&l.groupSizes, l.groupFlushes, 99),
		},
	}
	l.mu.Unlock()
	s.SnapshotSeq = ps.lastSnapSeq.Load()
	s.SnapshotsTaken = ps.snapsTaken.Load()
	s.SnapshotsFailed = ps.snapsFailed.Load()
	s.BootMode = ps.bootMode
	s.BootSnapshot = ps.bootSnapshot
	s.RecordsSinceSnap = ps.sinceSnap.Load()
	s.Rebuilds = ps.rebuilds.Load()
	s.RebuildErrors = ps.rebuildErrors.Load()
	return s
}
