package behavior

import (
	"fmt"
	"testing"
	"time"

	"honestplayer/internal/feedback"
	"honestplayer/internal/stats"
)

var benchCal = stats.NewCalibrator(stats.CalibrationConfig{Seed: 1, Replicates: 300}, 0)

func benchHistory(b *testing.B, n int) *feedback.History {
	b.Helper()
	rng := stats.NewRNG(1)
	h := feedback.NewHistory("s")
	for i := 0; i < n; i++ {
		if err := h.AppendOutcome("c", rng.Bernoulli(0.9), time.Unix(int64(i), 0)); err != nil {
			b.Fatal(err)
		}
	}
	return h
}

func warm(b *testing.B, t Tester, h *feedback.History) {
	b.Helper()
	if _, err := t.Test(h); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSingleTest is the Fig. 9 "single testing" micro-benchmark: O(n).
func BenchmarkSingleTest(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			tester, err := NewSingle(Config{Calibrator: benchCal})
			if err != nil {
				b.Fatal(err)
			}
			h := benchHistory(b, n)
			warm(b, tester, h)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tester.Test(h); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMultiTest is the Fig. 9 "multi testing (optimised)"
// micro-benchmark: O(n) thanks to incremental statistics.
func BenchmarkMultiTest(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			tester, err := NewMulti(Config{Calibrator: benchCal})
			if err != nil {
				b.Fatal(err)
			}
			h := benchHistory(b, n)
			warm(b, tester, h)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tester.Test(h); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMultiNaiveTest is the O(n²) ablation; compare its growth with
// BenchmarkMultiTest to see the optimisation of §5.5.
func BenchmarkMultiNaiveTest(b *testing.B) {
	for _, n := range []int{1000, 4000, 16000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			tester, err := NewMultiNaive(Config{Calibrator: benchCal})
			if err != nil {
				b.Fatal(err)
			}
			h := benchHistory(b, n)
			warm(b, tester, h)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tester.Test(h); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWindowSizeAblation explores the window-size design choice the
// paper fixes at m=10: larger windows reduce the suffix count but coarsen
// the distribution.
func BenchmarkWindowSizeAblation(b *testing.B) {
	for _, m := range []int{5, 10, 20, 50} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			tester, err := NewMulti(Config{WindowSize: m, Calibrator: benchCal})
			if err != nil {
				b.Fatal(err)
			}
			h := benchHistory(b, 20000)
			warm(b, tester, h)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tester.Test(h); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStrideAblation explores the multi-testing stride k: larger
// strides test fewer suffixes.
func BenchmarkStrideAblation(b *testing.B) {
	for _, stride := range []int{10, 50, 100} {
		b.Run(fmt.Sprintf("k=%d", stride), func(b *testing.B) {
			tester, err := NewMulti(Config{WindowSize: 10, Stride: stride, Calibrator: benchCal})
			if err != nil {
				b.Fatal(err)
			}
			h := benchHistory(b, 20000)
			warm(b, tester, h)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tester.Test(h); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCollusionTest measures the issuer-reordering overhead of the
// collusion-resilient single test.
func BenchmarkCollusionTest(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			tester, err := NewCollusion(Config{Calibrator: benchCal})
			if err != nil {
				b.Fatal(err)
			}
			rng := stats.NewRNG(2)
			h := feedback.NewHistory("s")
			for i := 0; i < n; i++ {
				c := feedback.EntityID(fmt.Sprintf("c%d", rng.Intn(100)))
				if err := h.AppendOutcome(c, rng.Bernoulli(0.9), time.Unix(int64(i), 0)); err != nil {
					b.Fatal(err)
				}
			}
			warm(b, tester, h)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tester.Test(h); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
