package repserver

import (
	"context"
	"fmt"
	"testing"
	"time"

	"honestplayer/internal/behavior"
	"honestplayer/internal/core"
	"honestplayer/internal/feedback"
	"honestplayer/internal/stats"
	"honestplayer/internal/trust"
	"honestplayer/internal/wire"
)

func benchCalibrator() *stats.Calibrator {
	return stats.NewCalibrator(stats.CalibrationConfig{Seed: 1, Replicates: 200}, 0)
}

func benchAssessorWith(b *testing.B, cal *stats.Calibrator) *core.TwoPhase {
	b.Helper()
	tester, err := behavior.NewMulti(behavior.Config{Calibrator: cal})
	if err != nil {
		b.Fatal(err)
	}
	tp, err := core.NewTwoPhase(tester, trust.Average{})
	if err != nil {
		b.Fatal(err)
	}
	return tp
}

func benchAssessor(b *testing.B) *core.TwoPhase {
	b.Helper()
	return benchAssessorWith(b, benchCalibrator())
}

// prewarmCalibration fills every threshold-grid point the benchmark workload
// can reach — all window-count buckets up to maxWindows, p̂ buckets in
// [pLo, pHi] at the calibrator's configured confidence — so the one-off
// Monte-Carlo grid calibration, which both serving modes share, stays out of
// the measured window instead of landing as multi-millisecond spikes on
// whichever iteration first crosses a bucket boundary.
func prewarmCalibration(b *testing.B, cal *stats.Calibrator, m, maxWindows int, pLo, pHi float64) {
	b.Helper()
	for k := 1; k <= maxWindows; k++ {
		for p := pLo; p <= pHi+1e-9; p += 0.01 {
			if _, err := cal.Threshold(m, k, p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchRecs builds an honest-looking history: 19 good transactions out of
// every 20, spread over 25 clients.
func benchHistoryRecs(server feedback.EntityID, n int) []feedback.Feedback {
	recs := make([]feedback.Feedback, n)
	for i := range recs {
		r := feedback.Positive
		if i%20 == 19 {
			r = feedback.Negative
		}
		recs[i] = feedback.Feedback{
			Time:   time.Unix(int64(i), 0).UTC(),
			Server: server,
			Client: feedback.EntityID(fmt.Sprintf("c%d", i%25)),
			Rating: r,
		}
	}
	return recs
}

func benchServer(b *testing.B, cacheSize int) *Server {
	b.Helper()
	srv, err := New("127.0.0.1:0", Config{Assessor: benchAssessor(b), AssessCacheSize: cacheSize})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = srv.Close() })
	return srv
}

// benchAssess measures the server-side assess path (request decode and
// socket I/O excluded) against a 10k-record history.
func benchAssess(b *testing.B, cacheSize int) {
	srv := benchServer(b, cacheSize)
	if _, err := srv.Seed(benchHistoryRecs("srv", 10000)); err != nil {
		b.Fatal(err)
	}
	req := wire.AssessRequest{Server: "srv", Threshold: 0.9}
	ctx := context.Background()
	// Warm up calibration (and the cache, when enabled) outside the timer.
	if _, err := srv.assess(ctx, req); err != nil {
		b.Fatalf("assess: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.assess(ctx, req); err != nil {
			b.Fatalf("assess: %v", err)
		}
	}
}

// BenchmarkAssessUncached is the seed serving path: every request re-runs
// the full two-phase test over the whole history.
func BenchmarkAssessUncached(b *testing.B) { benchAssess(b, 0) }

// BenchmarkAssessCached serves repeated assessments of an unchanged
// history from the assessment cache.
func BenchmarkAssessCached(b *testing.B) { benchAssess(b, 1024) }

// BenchmarkAssessMixed interleaves writes with assessments (1 submit per 9
// assessments, round-robin over 8 servers), so the cache is repeatedly
// invalidated and refilled — the realistic steady-state mix.
func BenchmarkAssessMixed(b *testing.B) {
	for _, cacheSize := range []int{0, 1024} {
		b.Run(fmt.Sprintf("cache=%d", cacheSize), func(b *testing.B) {
			ctx := context.Background()
			const servers = 8
			srv := benchServer(b, cacheSize)
			for s := 0; s < servers; s++ {
				name := feedback.EntityID(fmt.Sprintf("srv%d", s))
				if _, err := srv.Seed(benchHistoryRecs(name, 2000)); err != nil {
					b.Fatal(err)
				}
				if _, err := srv.assess(ctx, wire.AssessRequest{Server: name, Threshold: 0.9}); err != nil {
					b.Fatalf("assess: %v", err)
				}
			}
			next := int64(100000)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				name := feedback.EntityID(fmt.Sprintf("srv%d", i%servers))
				if i%10 == 0 {
					next++
					f := feedback.Feedback{
						Time:   time.Unix(next, 0).UTC(),
						Server: name,
						Client: feedback.EntityID(fmt.Sprintf("c%d", i%25)),
						Rating: feedback.Positive,
					}
					if _, err := srv.cfg.Recorder.Add(f); err != nil {
						b.Fatal(err)
					}
					continue
				}
				if _, err := srv.assess(ctx, wire.AssessRequest{Server: name, Threshold: 0.9}); err != nil {
					b.Fatalf("assess: %v", err)
				}
			}
		})
	}
}

// BenchmarkAssessAfterAppend measures the write-then-assess pattern — the
// workload where every write invalidates the assessment cache — with and
// without the incremental engine, against a 10k-record history.
func BenchmarkAssessAfterAppend(b *testing.B) {
	for _, mode := range []struct {
		name        string
		incremental bool
		cacheSize   int
	}{
		{"recompute", false, 1024},
		{"incremental", true, 0},
	} {
		b.Run(mode.name, func(b *testing.B) {
			cal := benchCalibrator()
			srv, err := New("127.0.0.1:0", Config{
				Assessor:        benchAssessorWith(b, cal),
				AssessCacheSize: mode.cacheSize,
				Incremental:     mode.incremental,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { _ = srv.Close() })
			if _, err := srv.Seed(benchHistoryRecs("srv", 10000)); err != nil {
				b.Fatal(err)
			}
			// Suffix p̂ over this workload spans ≈0.945 (whole history) to 1.0
			// (suffixes of appended-only windows); cover the surrounding p̂
			// buckets and every window bucket the history can grow into.
			prewarmCalibration(b, cal, 10, 2048, 0.93, 1.0)
			ctx := context.Background()
			req := wire.AssessRequest{Server: "srv", Threshold: 0.9}
			next := int64(1 << 30)
			// Steady-state warm-up: run the append+assess workload outside
			// the timer so per-server caches reach their steady hit rates.
			for i := 0; i < 200; i++ {
				next++
				f := feedback.Feedback{
					Time:   time.Unix(next, 0).UTC(),
					Server: "srv",
					Client: feedback.EntityID(fmt.Sprintf("c%d", i%25)),
					Rating: feedback.Positive,
				}
				if _, err := srv.cfg.Recorder.Add(f); err != nil {
					b.Fatal(err)
				}
				if _, err := srv.assess(ctx, req); err != nil {
					b.Fatalf("assess: %v", err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				next++
				f := feedback.Feedback{
					Time:   time.Unix(next, 0).UTC(),
					Server: "srv",
					Client: feedback.EntityID(fmt.Sprintf("c%d", i%25)),
					Rating: feedback.Positive,
				}
				if _, err := srv.cfg.Recorder.Add(f); err != nil {
					b.Fatal(err)
				}
				if _, err := srv.assess(ctx, req); err != nil {
					b.Fatalf("assess: %v", err)
				}
			}
		})
	}
}
