package behavior

import (
	"fmt"

	"honestplayer/internal/stats"
)

// MultiValue implements the multi-value feedback extension of §3.1: when
// ratings take L > 2 values, the binomial window model generalises to a
// multinomial — the count vector of each window of m transactions follows
// Multinomial(m, p⃗). MultiValue tests each level's marginal, which is
// binomial B(m, p_l), against its own calibrated threshold, applying a
// Bonferroni correction across levels so an honest player still passes with
// the calibrator's configured confidence overall.
//
// A history is consistent with the honest-player model only when every
// level's marginal distribution is.
type MultiValue struct {
	cfg    Config
	levels int
}

// NewMultiValue returns a multi-value tester for ratings in [0, levels).
func NewMultiValue(cfg Config, levels int) (*MultiValue, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if levels < 2 {
		return nil, fmt.Errorf("%w: levels=%d", ErrBadConfig, levels)
	}
	return &MultiValue{cfg: c, levels: levels}, nil
}

// Levels returns the number of rating levels.
func (mv *MultiValue) Levels() int { return mv.levels }

// Name identifies the tester.
func (mv *MultiValue) Name() string { return fmt.Sprintf("multivalue(L=%d)", mv.levels) }

// TestLevels tests a sequence of rating levels (each in [0, levels)),
// oldest first. Windows are aligned to the newest outcome, as in the
// binary testers. The verdict carries one SuffixResult per level, in level
// order; Verdict.Honest requires every level's marginal to pass.
func (mv *MultiValue) TestLevels(seq []int) (Verdict, error) {
	m := mv.cfg.WindowSize
	k := len(seq) / m
	if k < mv.cfg.MinWindows {
		return Verdict{}, fmt.Errorf("%w: %d windows < %d", ErrInsufficientHistory, k, mv.cfg.MinWindows)
	}
	start := len(seq) - k*m
	// Per-level, per-window counts.
	counts := make([][]int, mv.levels)
	for l := range counts {
		counts[l] = make([]int, k)
	}
	totals := make([]int, mv.levels)
	for w := 0; w < k; w++ {
		for i := 0; i < m; i++ {
			v := seq[start+w*m+i]
			if v < 0 || v >= mv.levels {
				return Verdict{}, fmt.Errorf("%w: level %d outside [0,%d)", ErrBadConfig, v, mv.levels)
			}
			counts[v][w]++
			totals[v]++
		}
	}
	// Bonferroni across levels.
	base := mv.cfg.Calibrator.Config().Confidence
	confidence := 1 - (1-base)/float64(mv.levels)

	v := Verdict{Honest: true, Suffixes: make([]SuffixResult, 0, mv.levels)}
	for l := 0; l < mv.levels; l++ {
		hist := stats.MustHistogram(m)
		if err := hist.AddAll(counts[l]); err != nil {
			return Verdict{}, err
		}
		res, err := testHistogram(mv.cfg, hist, confidence)
		if err != nil {
			return Verdict{}, err
		}
		v.Suffixes = append(v.Suffixes, res)
		if !res.Pass {
			v.Honest = false
		}
	}
	return v, nil
}
