// Package sim provides the simulation substrate of the paper's evaluation:
// the probabilistic client-arrival model of §5.2, honest service providers,
// and a scenario engine that runs a marketplace of honest and adversarial
// servers under a configurable trust-assessment policy.
//
// All randomness flows through explicit stats.RNG instances, so every
// simulation is reproducible from its seed.
package sim

import (
	"fmt"
	"strconv"

	"honestplayer/internal/attack"
	"honestplayer/internal/feedback"
	"honestplayer/internal/stats"
)

// Default arrival parameters of the collusion experiments (§5.2).
const (
	DefaultA1 = 0.5 // weight of a server's reputation for first-time clients
	DefaultA2 = 0.9 // arrival probability after a recent good service
	DefaultA3 = 0.2 // arrival probability after a recent bad service
)

// clientState tracks a client's most recent experience with the server.
type clientState int

const (
	stateNew clientState = iota
	stateRecentGood
	stateRecentBad
)

// Population models the pool of potential clients of one server with the
// paper's arrival probabilities: a client that never transacted with the
// server requests service with probability a₁·p (p = the server's current
// reputation), one that recently received a good service with probability
// a₂, and one that recently received a bad service with probability a₃.
//
// Population implements attack.ClientSource, so it plugs directly into the
// colluding attacker of §5.2.
type Population struct {
	rng        *stats.RNG
	a1, a2, a3 float64
	clients    []feedback.EntityID
	state      map[feedback.EntityID]clientState
}

var _ attack.ClientSource = (*Population)(nil)

// NewPopulation creates n clients named prefix-0 … prefix-(n−1) with the
// given arrival parameters (zero values select the paper's defaults) and a
// dedicated random stream.
func NewPopulation(prefix string, n int, a1, a2, a3 float64, rng *stats.RNG) (*Population, error) {
	if n < 1 {
		return nil, fmt.Errorf("sim: population size %d", n)
	}
	if rng == nil {
		return nil, fmt.Errorf("sim: nil rng")
	}
	if a1 == 0 {
		a1 = DefaultA1
	}
	if a2 == 0 {
		a2 = DefaultA2
	}
	if a3 == 0 {
		a3 = DefaultA3
	}
	for _, a := range []float64{a1, a2, a3} {
		if a < 0 || a > 1 {
			return nil, fmt.Errorf("sim: arrival parameter %v outside [0,1]", a)
		}
	}
	p := &Population{
		rng: rng,
		a1:  a1, a2: a2, a3: a3,
		clients: make([]feedback.EntityID, n),
		state:   make(map[feedback.EntityID]clientState, n),
	}
	for i := range p.clients {
		p.clients[i] = feedback.EntityID(prefix + "-" + strconv.Itoa(i))
	}
	return p, nil
}

// Size returns the number of clients in the population.
func (p *Population) Size() int { return len(p.clients) }

// arrivalProb returns the probability that client c requests service from a
// server with the given reputation.
func (p *Population) arrivalProb(c feedback.EntityID, reputation float64) float64 {
	switch p.state[c] {
	case stateRecentGood:
		return p.a2
	case stateRecentBad:
		return p.a3
	default:
		return p.a1 * reputation
	}
}

// Next implements attack.ClientSource: it draws the interested clients for
// this step and returns one of them uniformly. When no client is interested
// it keeps sampling new steps; as a liveness guard it falls back to a
// uniform pick after 10 000 empty rounds (possible only with pathological
// parameters such as a₁·p = a₂ = a₃ = 0).
func (p *Population) Next(reputation float64) feedback.EntityID {
	interested := make([]feedback.EntityID, 0, len(p.clients))
	for round := 0; round < 10000; round++ {
		interested = interested[:0]
		for _, c := range p.clients {
			if p.rng.Bernoulli(p.arrivalProb(c, reputation)) {
				interested = append(interested, c)
			}
		}
		if len(interested) > 0 {
			return interested[p.rng.Intn(len(interested))]
		}
	}
	return p.clients[p.rng.Intn(len(p.clients))]
}

// Observe implements attack.ClientSource.
func (p *Population) Observe(c feedback.EntityID, good bool) {
	if good {
		p.state[c] = stateRecentGood
	} else {
		p.state[c] = stateRecentBad
	}
}

// StateCounts reports how many clients are new / recently-satisfied /
// recently-disappointed; useful for supporter-base metrics.
func (p *Population) StateCounts() (fresh, recentGood, recentBad int) {
	for _, c := range p.clients {
		switch p.state[c] {
		case stateRecentGood:
			recentGood++
		case stateRecentBad:
			recentBad++
		default:
			fresh++
		}
	}
	return fresh, recentGood, recentBad
}
