// Marketplace: an online-auction community where clients pick providers by
// trust. Two honest sellers compete with a hibernating attacker and a
// periodic attacker; the simulation runs once under the bare average trust
// function and once under the two-phase assessor, and reports how many bad
// transactions clients suffered under each policy.
package main

import (
	"fmt"
	"log"

	"honestplayer"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := honestplayer.ScenarioConfig{
		Seed:      2026,
		Steps:     1500,
		Clients:   100,
		Threshold: 0.9,
		Warmup:    200,
		Servers: []honestplayer.ServerSpec{
			{ID: "alice", Kind: honestplayer.HonestServer, P: 0.94},
			{ID: "bob", Kind: honestplayer.HonestServer, P: 0.92},
			// The sleeper looks like the best provider in town until it has
			// banked 300 transactions, then turns fully malicious.
			{ID: "sleeper", Kind: honestplayer.HibernatingServer, P: 0.98, PrepLen: 300},
			{ID: "pulse", Kind: honestplayer.PeriodicServer, P: 1.0, AttackWindow: 10, BadFrac: 0.1},
		},
	}

	baseline, err := honestplayer.NewTwoPhase(nil, honestplayer.Average{})
	if err != nil {
		return err
	}
	// FamilywiseCorrection keeps the false-positive rate on continuously
	// re-assessed honest sellers near 5% overall instead of compounding 5%
	// per tested suffix.
	tester, err := honestplayer.NewMultiTester(honestplayer.TesterConfig{FamilywiseCorrection: true})
	if err != nil {
		return err
	}
	twophase, err := honestplayer.NewTwoPhase(tester, honestplayer.Average{})
	if err != nil {
		return err
	}

	for _, assessor := range []*honestplayer.TwoPhase{baseline, twophase} {
		m, err := honestplayer.RunScenario(cfg, assessor)
		if err != nil {
			return err
		}
		fmt.Printf("policy %s:\n", assessor.Name())
		fmt.Printf("  %d assessed transactions, %d bad outcomes suffered, %d steps with no acceptable provider\n",
			m.Transactions, m.BadServed, m.NoProvider)
		for _, id := range []honestplayer.EntityID{"alice", "bob", "sleeper", "pulse"} {
			sm := m.PerServer[id]
			fmt.Printf("  %-8s (%-11s) served %4d, bad %3d, flagged %4d times\n",
				id, sm.Kind, sm.Transactions, sm.BadServed, sm.Flagged)
		}
		fmt.Println()
	}
	fmt.Println("The two-phase policy flags the attackers once they deviate, cutting the")
	fmt.Println("bad transactions clients suffer while honest sellers keep their traffic.")
	return nil
}
