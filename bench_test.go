package honestplayer_test

// Benchmark harness: one benchmark per figure of the paper's evaluation
// (Figs. 3-9), regenerating the figure's series at reduced (Quick) workload
// per iteration, plus end-to-end benchmarks of the public API hot paths.
// Run everything with:
//
//	go test -bench=. -benchmem ./...
//
// The full-workload figures are produced by cmd/reprobench; these
// benchmarks exist so that CI tracks the cost of regenerating each figure
// and catches complexity regressions (Fig. 9's O(n) multi-testing in
// particular).

import (
	"fmt"
	"testing"
	"time"

	"honestplayer"
	"honestplayer/internal/experiment"
)

func benchFigure(b *testing.B, id string) {
	b.Helper()
	opts := experiment.Options{Seed: 42, Quick: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiment.Run(id, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Series) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFig3AttackerCostAverage(b *testing.B)    { benchFigure(b, "fig3") }
func BenchmarkFig4AttackerCostWeighted(b *testing.B)   { benchFigure(b, "fig4") }
func BenchmarkFig5CollusionCostAverage(b *testing.B)   { benchFigure(b, "fig5") }
func BenchmarkFig6CollusionCostWeighted(b *testing.B)  { benchFigure(b, "fig6") }
func BenchmarkFig7DetectionRate(b *testing.B)          { benchFigure(b, "fig7") }
func BenchmarkFig8DistanceThreshold(b *testing.B)      { benchFigure(b, "fig8") }
func BenchmarkFig9BehaviorTestingRuntime(b *testing.B) { benchFigure(b, "fig9") }

// benchHistory builds an honest history once per size.
func benchHistory(b *testing.B, n int) *honestplayer.History {
	b.Helper()
	rng := honestplayer.NewRNG(1)
	h, err := honestplayer.GenHonest("bench-server", n, 0.9, 100, rng)
	if err != nil {
		b.Fatal(err)
	}
	return h
}

var benchCalibrator = honestplayer.NewCalibrator(
	honestplayer.CalibrationConfig{Seed: 1, Replicates: 300}, 0)

// BenchmarkTwoPhaseAssess measures the full public-API assessment path at
// several history sizes (the per-request cost of a reputation server).
func BenchmarkTwoPhaseAssess(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		for _, scheme := range []string{"single", "multi"} {
			b.Run(fmt.Sprintf("%s/n=%d", scheme, n), func(b *testing.B) {
				var (
					tester honestplayer.Tester
					err    error
				)
				cfg := honestplayer.TesterConfig{Calibrator: benchCalibrator}
				if scheme == "single" {
					tester, err = honestplayer.NewSingleTester(cfg)
				} else {
					tester, err = honestplayer.NewMultiTester(cfg)
				}
				if err != nil {
					b.Fatal(err)
				}
				assessor, err := honestplayer.NewTwoPhase(tester, honestplayer.Average{})
				if err != nil {
					b.Fatal(err)
				}
				h := benchHistory(b, n)
				// Warm the threshold cache outside the timed loop.
				if _, err := assessor.Assess(h); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					a, err := assessor.Assess(h)
					if err != nil {
						b.Fatal(err)
					}
					_ = a
				}
			})
		}
	}
}

// BenchmarkHistoryAppend measures the ledger's append path.
func BenchmarkHistoryAppend(b *testing.B) {
	h := honestplayer.NewHistory("s")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := h.AppendOutcome("c", i%10 != 0, time.Unix(int64(i), 0)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerRoundTrip measures a submit+assess cycle over loopback TCP.
func BenchmarkServerRoundTrip(b *testing.B) {
	tester, err := honestplayer.NewMultiTester(honestplayer.TesterConfig{Calibrator: benchCalibrator})
	if err != nil {
		b.Fatal(err)
	}
	assessor, err := honestplayer.NewTwoPhase(tester, honestplayer.Average{})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := honestplayer.NewServer("127.0.0.1:0", honestplayer.ServerConfig{Assessor: assessor})
	if err != nil {
		b.Fatal(err)
	}
	srv.Start()
	defer func() {
		if err := srv.Close(); err != nil {
			b.Error(err)
		}
	}()
	client, err := honestplayer.DialServer(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = client.Close() }()
	rng := honestplayer.NewRNG(2)
	for i := 0; i < 200; i++ {
		rating := honestplayer.Negative
		if rng.Bernoulli(0.95) {
			rating = honestplayer.Positive
		}
		if _, err := client.Submit(honestplayer.Feedback{
			Time: time.Unix(int64(i), 0).UTC(), Server: "s", Client: "c", Rating: rating,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Assess("s", 0.9); err != nil {
			b.Fatal(err)
		}
	}
}
