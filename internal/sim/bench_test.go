package sim

import (
	"testing"

	"honestplayer/internal/behavior"
	"honestplayer/internal/core"
	"honestplayer/internal/stats"
	"honestplayer/internal/trust"
)

// BenchmarkScenario measures the marketplace engine end to end under the
// two-phase policy.
func BenchmarkScenario(b *testing.B) {
	tester, err := behavior.NewMulti(behavior.Config{
		Calibrator:           stats.NewCalibrator(stats.CalibrationConfig{Seed: 1, Replicates: 200}, 0),
		FamilywiseCorrection: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	assessor, err := core.NewTwoPhase(tester, trust.Average{})
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{
		Seed: 1, Steps: 300, Clients: 50, Threshold: 0.9, Warmup: 120,
		Servers: []ServerSpec{
			{ID: "honest", Kind: Honest, P: 0.95},
			{ID: "hib", Kind: Hibernating, P: 0.97, PrepLen: 200},
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, assessor); err != nil {
			b.Fatal(err)
		}
	}
}
