// Package attack implements the adversary models of the paper's evaluation:
// the generic hibernating and periodic attacks (§3), the strategic attacker
// of §5.1 that consults the deployed trust assessment before every
// transaction, the colluding strategic attacker of §5.2, and the
// cheat-and-run attacker of §3.1.
//
// The attackers here are "white-box" adversaries: they know the trust
// function and the behaviour-testing algorithm in use and adapt optimally
// against them, which is the strongest threat model the paper considers.
package attack

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"honestplayer/internal/core"
	"honestplayer/internal/feedback"
	"honestplayer/internal/stats"
)

// Action is the attacker's choice for its next transaction.
type Action int

const (
	// ServeGood provides a genuinely good service to a real client.
	ServeGood Action = iota + 1
	// Cheat conducts a bad transaction against a real client.
	Cheat
	// ColludeFake obtains a fake positive feedback from a colluder without
	// providing any real service.
	ColludeFake
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case ServeGood:
		return "serve-good"
	case Cheat:
		return "cheat"
	case ColludeFake:
		return "collude-fake"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Errors returned by attack runners.
var (
	// ErrGoalUnreachable reports that the attacker hit the step budget
	// before completing its attack goal — the defence forced an unbounded
	// (within budget) cost.
	ErrGoalUnreachable = errors.New("attack: goal not reached within step budget")
	// ErrBadParams reports invalid attacker parameters.
	ErrBadParams = errors.New("attack: invalid parameters")
)

// Cost accounts the price an attacker paid to reach its goal. The paper's
// strength metric for a defence scheme is the number of good transactions
// the attacker is forced to conduct to land M bad ones (§5).
type Cost struct {
	// Good is the number of genuinely good services provided to real
	// (non-colluder) clients during the attack phase.
	Good int `json:"good"`
	// Colluded is the number of fake positive feedbacks obtained from
	// colluders during the attack phase.
	Colluded int `json:"colluded"`
	// Bad is the number of successful bad transactions (== the goal when
	// the run completes).
	Bad int `json:"bad"`
	// Steps is the total number of attack-phase transactions.
	Steps int `json:"steps"`
}

// PrepareHistory builds the attacker's preparation phase: n transactions
// behaving as an honest player with trustworthiness p (§5.1 uses p = 0.95).
// Feedback issuers are drawn uniformly from clientPool distinct client IDs
// so the prepared history also looks plausible to issuer-based tests.
func PrepareHistory(server feedback.EntityID, n int, p float64, clientPool int, rng *stats.RNG) (*feedback.History, error) {
	if n < 0 || p < 0 || p > 1 || clientPool < 1 {
		return nil, fmt.Errorf("%w: n=%d p=%v pool=%d", ErrBadParams, n, p, clientPool)
	}
	h := feedback.NewHistory(server)
	for i := 0; i < n; i++ {
		c := feedback.EntityID("prep-" + strconv.Itoa(rng.Intn(clientPool)))
		if err := h.AppendOutcome(c, rng.Bernoulli(p), logicalTime(i)); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// PrepareByColluders builds the §5.2 preparation phase: the attacker builds
// its reputation entirely through colluders' fake positive feedback, with a
// 1−p fraction of fillers rated negative so the resulting reputation is p.
func PrepareByColluders(server feedback.EntityID, n int, p float64, colluders []feedback.EntityID, rng *stats.RNG) (*feedback.History, error) {
	if n < 0 || p < 0 || p > 1 || len(colluders) == 0 {
		return nil, fmt.Errorf("%w: n=%d p=%v colluders=%d", ErrBadParams, n, p, len(colluders))
	}
	h := feedback.NewHistory(server)
	for i := 0; i < n; i++ {
		c := colluders[rng.Intn(len(colluders))]
		if err := h.AppendOutcome(c, rng.Bernoulli(p), logicalTime(i)); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// logicalTime maps a transaction index to a strictly increasing timestamp;
// simulations care about order, not wall-clock values.
func logicalTime(i int) time.Time {
	return time.Unix(int64(i), 0).UTC()
}

// Strategic is the adaptive attacker of §5.1. Before each transaction it
// hypothesises conducting a bad one. It cheats only when both hold:
//
//   - its *current* trust value meets the clients' threshold (that is when
//     the victim agrees to transact — the weighted function drops below the
//     threshold immediately after any bad transaction, so a post-cheat trust
//     requirement would make every attack impossible, contradicting the
//     paper's Fig. 4 where the attacker pays 2–3 good transactions per bad);
//   - the post-cheat history H′ stays consistent with the honest-player
//     model, so the attacker remains unsuspicious to future clients.
//
// Otherwise it provides a good service.
type Strategic struct {
	// Assessor is the exact two-phase assessor the defenders run.
	Assessor *core.TwoPhase
	// Threshold is the clients' trust threshold (paper: 0.9).
	Threshold float64
	// GoalBad is the number of bad transactions the attacker wants (M,
	// paper: 20).
	GoalBad int
	// MaxSteps bounds the attack phase; 0 means 1000 × GoalBad.
	MaxSteps int
}

func (s *Strategic) maxSteps() int {
	if s.MaxSteps > 0 {
		return s.MaxSteps
	}
	return 1000 * s.GoalBad
}

func (s *Strategic) validate() error {
	if s.Assessor == nil {
		return fmt.Errorf("%w: nil assessor", ErrBadParams)
	}
	if s.Threshold < 0 || s.Threshold > 1 || s.GoalBad < 1 {
		return fmt.Errorf("%w: threshold=%v goal=%d", ErrBadParams, s.Threshold, s.GoalBad)
	}
	return nil
}

// wouldAccept hypothetically appends an outcome for client c and reports
// whether the assessor would still accept the server afterwards. The
// history is restored before returning.
func wouldAccept(tp *core.TwoPhase, h *feedback.History, c feedback.EntityID, good bool, threshold float64) (bool, error) {
	if err := h.AppendOutcome(c, good, logicalTime(h.Len())); err != nil {
		return false, err
	}
	ok, _, err := tp.Accept(h, threshold)
	if rerr := h.RemoveLast(); rerr != nil {
		return false, rerr
	}
	if err != nil {
		return false, err
	}
	return ok, nil
}

// wouldStaySilent hypothetically appends an outcome and reports whether the
// assessor's phase-1 behaviour test would still consider the server honest
// (trust value ignored). The history is restored before returning.
func wouldStaySilent(tp *core.TwoPhase, h *feedback.History, c feedback.EntityID, good bool) (bool, error) {
	if err := h.AppendOutcome(c, good, logicalTime(h.Len())); err != nil {
		return false, err
	}
	a, err := tp.Assess(h)
	if rerr := h.RemoveLast(); rerr != nil {
		return false, rerr
	}
	if err != nil {
		return false, err
	}
	return !a.Suspicious, nil
}

// cheatAllowed evaluates the strategic cheating rule: the victim accepts
// (current trust meets the threshold and the current history is not
// suspicious) and the post-cheat history H′ stays consistent with the
// honest-player model.
func cheatAllowed(tp *core.TwoPhase, h *feedback.History, victim feedback.EntityID, threshold float64) (bool, error) {
	acceptedNow, _, err := tp.Accept(h, threshold)
	if err != nil {
		return false, err
	}
	if !acceptedNow {
		return false, nil
	}
	return wouldStaySilent(tp, h, victim, false)
}

// Run mutates h through the attack phase until GoalBad bad transactions
// succeed, and returns the attacker's cost. Victims get fresh client IDs so
// issuer-based defences see genuine supporter-base growth only when the
// attacker actually serves distinct clients well.
func (s *Strategic) Run(h *feedback.History, rng *stats.RNG) (Cost, error) {
	if err := s.validate(); err != nil {
		return Cost{}, err
	}
	var cost Cost
	for cost.Bad < s.GoalBad {
		if cost.Steps >= s.maxSteps() {
			return cost, fmt.Errorf("%w after %d steps (%d/%d bad)", ErrGoalUnreachable, cost.Steps, cost.Bad, s.GoalBad)
		}
		victim := feedback.EntityID("victim-" + strconv.Itoa(cost.Steps))
		cheatOK, err := cheatAllowed(s.Assessor, h, victim, s.Threshold)
		if err != nil {
			return cost, err
		}
		// Cheat when the hypothetical bad transaction stays under the radar;
		// otherwise invest a good service.
		if err := h.AppendOutcome(victim, !cheatOK, logicalTime(h.Len())); err != nil {
			return cost, err
		}
		if cheatOK {
			cost.Bad++
		} else {
			cost.Good++
		}
		cost.Steps++
		_ = rng // reserved for randomised victim-selection policies
	}
	return cost, nil
}
