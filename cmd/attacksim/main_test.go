package main

import (
	"strings"
	"testing"
)

func TestRunStrategicBaseline(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-attack", "strategic", "-scheme", "none", "-prep", "500", "-goal", "5", "-seed", "7"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"strategic attacker", "RESULT:", "timeline", "X"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunStrategicWithMulti(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-attack", "strategic", "-scheme", "multi", "-prep", "200", "-goal", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "multi+average") {
		t.Errorf("output: %s", out.String())
	}
}

func TestRunColluding(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-attack", "colluding", "-scheme", "none", "-prep", "300", "-goal", "5"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "colluder fakes used") {
		t.Errorf("output: %s", out.String())
	}
}

func TestRunGenerated(t *testing.T) {
	for _, kind := range []string{"hibernating", "periodic", "cheatandrun"} {
		var out strings.Builder
		err := run([]string{"-attack", kind, "-scheme", "single", "-prep", "300"}, &out)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !strings.Contains(out.String(), "verdict:") {
			t.Errorf("%s output: %s", kind, out.String())
		}
	}
}

func TestRunPeriodicFlagged(t *testing.T) {
	var out strings.Builder
	// Deterministic-ish small window periodic attack must be flagged.
	err := run([]string{"-attack", "periodic", "-scheme", "multi", "-prep", "500", "-window", "10"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "SUSPICIOUS") {
		t.Errorf("periodic window 10 not flagged:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-attack", "nonsense"},
		{"-scheme", "nonsense"},
		{"-trust", "nonsense"},
		{"-trust", "weighted", "-lambda", "7"},
	} {
		if err := run(args, &strings.Builder{}); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}
