package repserver

import (
	"context"
	"fmt"
	"testing"
	"time"

	"honestplayer/internal/behavior"
	"honestplayer/internal/core"
	"honestplayer/internal/feedback"
	"honestplayer/internal/stats"
	"honestplayer/internal/trust"
	"honestplayer/internal/wire"
)

func benchAssessor(b *testing.B) *core.TwoPhase {
	b.Helper()
	tester, err := behavior.NewMulti(behavior.Config{
		Calibrator: stats.NewCalibrator(stats.CalibrationConfig{Seed: 1, Replicates: 200}, 0),
	})
	if err != nil {
		b.Fatal(err)
	}
	tp, err := core.NewTwoPhase(tester, trust.Average{})
	if err != nil {
		b.Fatal(err)
	}
	return tp
}

// benchRecs builds an honest-looking history: 19 good transactions out of
// every 20, spread over 25 clients.
func benchHistoryRecs(server feedback.EntityID, n int) []feedback.Feedback {
	recs := make([]feedback.Feedback, n)
	for i := range recs {
		r := feedback.Positive
		if i%20 == 19 {
			r = feedback.Negative
		}
		recs[i] = feedback.Feedback{
			Time:   time.Unix(int64(i), 0).UTC(),
			Server: server,
			Client: feedback.EntityID(fmt.Sprintf("c%d", i%25)),
			Rating: r,
		}
	}
	return recs
}

func benchServer(b *testing.B, cacheSize int) *Server {
	b.Helper()
	srv, err := New("127.0.0.1:0", Config{Assessor: benchAssessor(b), AssessCacheSize: cacheSize})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = srv.Close() })
	return srv
}

// benchAssess measures the server-side assess path (request decode and
// socket I/O excluded) against a 10k-record history.
func benchAssess(b *testing.B, cacheSize int) {
	srv := benchServer(b, cacheSize)
	if _, err := srv.Seed(benchHistoryRecs("srv", 10000)); err != nil {
		b.Fatal(err)
	}
	req := wire.AssessRequest{Server: "srv", Threshold: 0.9}
	ctx := context.Background()
	// Warm up calibration (and the cache, when enabled) outside the timer.
	if _, err := srv.assess(ctx, req); err != nil {
		b.Fatalf("assess: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.assess(ctx, req); err != nil {
			b.Fatalf("assess: %v", err)
		}
	}
}

// BenchmarkAssessUncached is the seed serving path: every request re-runs
// the full two-phase test over the whole history.
func BenchmarkAssessUncached(b *testing.B) { benchAssess(b, 0) }

// BenchmarkAssessCached serves repeated assessments of an unchanged
// history from the assessment cache.
func BenchmarkAssessCached(b *testing.B) { benchAssess(b, 1024) }

// BenchmarkAssessMixed interleaves writes with assessments (1 submit per 9
// assessments, round-robin over 8 servers), so the cache is repeatedly
// invalidated and refilled — the realistic steady-state mix.
func BenchmarkAssessMixed(b *testing.B) {
	for _, cacheSize := range []int{0, 1024} {
		b.Run(fmt.Sprintf("cache=%d", cacheSize), func(b *testing.B) {
			ctx := context.Background()
			const servers = 8
			srv := benchServer(b, cacheSize)
			for s := 0; s < servers; s++ {
				name := feedback.EntityID(fmt.Sprintf("srv%d", s))
				if _, err := srv.Seed(benchHistoryRecs(name, 2000)); err != nil {
					b.Fatal(err)
				}
				if _, err := srv.assess(ctx, wire.AssessRequest{Server: name, Threshold: 0.9}); err != nil {
					b.Fatalf("assess: %v", err)
				}
			}
			next := int64(100000)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				name := feedback.EntityID(fmt.Sprintf("srv%d", i%servers))
				if i%10 == 0 {
					next++
					f := feedback.Feedback{
						Time:   time.Unix(next, 0).UTC(),
						Server: name,
						Client: feedback.EntityID(fmt.Sprintf("c%d", i%25)),
						Rating: feedback.Positive,
					}
					if _, err := srv.cfg.Recorder.Add(f); err != nil {
						b.Fatal(err)
					}
					continue
				}
				if _, err := srv.assess(ctx, wire.AssessRequest{Server: name, Threshold: 0.9}); err != nil {
					b.Fatalf("assess: %v", err)
				}
			}
		})
	}
}
