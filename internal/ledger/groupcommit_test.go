package ledger

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"

	"honestplayer/internal/feedback"
)

func TestAppendBatchReplay(t *testing.T) {
	path := t.TempDir() + "/ledger"
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []feedback.Feedback{rec("a", true, 1), rec("b", false, 2), rec("c", true, 3)}
	if err := l.AppendBatch(want); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	// A batch with any invalid record fails whole before anything is queued.
	if err := l.AppendBatch([]feedback.Feedback{rec("d", true, 4), {}}); err == nil {
		t.Fatal("batch with invalid record must fail")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Client != want[i].Client || !got[i].Time.Equal(want[i].Time) {
			t.Fatalf("record %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestGroupCommitCounters(t *testing.T) {
	path := t.TempDir() + "/ledger"
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()

	batch := make([]feedback.Feedback, 6)
	for i := range batch {
		batch[i] = rec(feedback.EntityID(fmt.Sprintf("c%d", i)), true, int64(i+1))
	}
	if err := l.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec("solo", true, 100)); err != nil {
		t.Fatal(err)
	}

	gc := l.GroupCommit()
	if gc.Flushes != 2 {
		t.Fatalf("flushes = %d, want 2", gc.Flushes)
	}
	if gc.Coalesced != 1 {
		t.Fatalf("coalesced = %d, want 1 (only the 6-record group)", gc.Coalesced)
	}
	if gc.Records != 7 {
		t.Fatalf("records = %d, want 7", gc.Records)
	}
	// Bucketed quantiles: sizes {6, 1} → P50 is the 1-record bucket's upper
	// bound, P99 the 6-record group's bucket (2^3 = 8).
	if gc.SizeP50 != 1 {
		t.Fatalf("size_p50 = %d, want 1", gc.SizeP50)
	}
	if gc.SizeP99 != 8 {
		t.Fatalf("size_p99 = %d, want 8", gc.SizeP99)
	}
}

func TestGroupBucketAndQuantile(t *testing.T) {
	for _, tc := range []struct {
		n    uint64
		want int
	}{{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10}, {5000, 10}} {
		if got := groupBucket(tc.n); got != tc.want {
			t.Fatalf("groupBucket(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
	var buckets [groupBuckets]uint64
	if got := groupQuantile(&buckets, 0, 50); got != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", got)
	}
	buckets[0] = 99 // 99 single-record flushes
	buckets[4] = 1  // one 9–16-record flush
	if got := groupQuantile(&buckets, 100, 50); got != 1 {
		t.Fatalf("p50 = %d, want 1", got)
	}
	if got := groupQuantile(&buckets, 100, 99); got != 1 {
		t.Fatalf("p99 = %d, want 1 (99 of 100 flushes are singles)", got)
	}
	if got := groupQuantile(&buckets, 100, 100); got != 16 {
		t.Fatalf("p100 = %d, want 16", got)
	}
}

// appendConcurrently runs appenders goroutines, each committing total records
// through a mix of single Appends and 5-record AppendBatches, and returns the
// overall record count. Every record is content-unique (disjoint time ranges
// per goroutine).
func appendConcurrently(t *testing.T, l *Ledger, appenders, total int) int {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, appenders)
	for g := 0; g < appenders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := feedback.EntityID(fmt.Sprintf("g%02d", g))
			base := int64(1_000_000 * (g + 1))
			for i := 0; i < total; {
				if i%2 == 0 && i+5 <= total {
					batch := make([]feedback.Feedback, 5)
					for j := range batch {
						batch[j] = rec(client, j%2 == 0, base+int64(i+j))
					}
					if err := l.AppendBatch(batch); err != nil {
						errs[g] = err
						return
					}
					i += 5
				} else {
					if err := l.Append(rec(client, true, base+int64(i))); err != nil {
						errs[g] = err
						return
					}
					i++
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("appender %d: %v", g, err)
		}
	}
	return appenders * total
}

// TestGroupCommitCrashConsistency simulates a kill mid-group: after a
// concurrent workload, the active segment loses its tail mid-record, and the
// reopened ledger must replay exactly the longest verified prefix of what was
// on disk — no reordering, no holes — and accept new appends cleanly.
func TestGroupCommitCrashConsistency(t *testing.T) {
	path := t.TempDir() + "/ledger"
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	total := appendConcurrently(t, l, 8, 40)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Capture the committed on-disk order, then cut the active segment
	// mid-record: 7 bytes off the end lands inside the final record's
	// payload+checksum, and stray garbage follows as a torn half-append.
	_, full, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != total {
		t.Fatalf("replayed %d records before crash, want %d", len(full), total)
	}
	seg := activeSegPath(t, path)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-7); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x19, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	l2, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) >= total || len(got) == 0 {
		t.Fatalf("replayed %d records after crash, want a proper prefix of %d", len(got), total)
	}
	for i := range got {
		if got[i].Client != full[i].Client || !got[i].Time.Equal(full[i].Time) ||
			got[i].Rating != full[i].Rating {
			t.Fatalf("record %d diverges after crash: %+v != %+v", i, got[i], full[i])
		}
	}
	// The truncated tail is gone for good; fresh appends land cleanly.
	if err := l2.Append(rec("after", true, 9_000_000)); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, again, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(got)+1 {
		t.Fatalf("after recovery+append: %d records, want %d", len(again), len(got)+1)
	}
}

// TestPoisonedAfterWriteFailure pins the satellite fix: a failed Write/Flush
// must not leave the in-memory chain ahead of the durable bytes. The ledger
// turns sticky-poisoned instead, failing every later append and Sync fast,
// and a reopen recovers exactly the records flushed before the failure.
func TestPoisonedAfterWriteFailure(t *testing.T) {
	path := t.TempDir() + "/ledger"
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec("ok", true, 1)); err != nil {
		t.Fatal(err)
	}
	// Simulate the device failing under the ledger: close the segment file
	// out from under the bufio writer, so the next Flush errors.
	if err := l.f.Close(); err != nil {
		t.Fatal(err)
	}
	first := l.Append(rec("fail", true, 2))
	if first == nil {
		t.Fatal("append over closed file must fail")
	}
	// Every later operation fails fast with the sticky poison error.
	second := l.Append(rec("fail2", true, 3))
	if second == nil {
		t.Fatal("poisoned ledger accepted an append")
	}
	if !errors.Is(second, os.ErrClosed) {
		t.Fatalf("poison error lost its cause: %v", second)
	}
	if err := l.AppendBatch([]feedback.Feedback{rec("fail3", true, 4)}); err == nil {
		t.Fatal("poisoned ledger accepted a batch")
	}
	if err := l.Sync(); err == nil {
		t.Fatal("poisoned ledger accepted a Sync")
	}
	gc := l.GroupCommit()
	if gc.Records != 1 {
		t.Fatalf("counters advanced past the failure: %+v", gc)
	}
	_ = l.Close()

	_, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Client != "ok" {
		t.Fatalf("reopen after poison: got %d records %+v, want the 1 pre-failure record", len(got), got)
	}
}

// TestConcurrentAppendSyncRace interleaves Append, AppendBatch, Sync, and
// stats reads from many goroutines — the -race job's target — then proves no
// record was lost or duplicated by replaying the log.
func TestConcurrentAppendSyncRace(t *testing.T) {
	path := t.TempDir() + "/ledger"
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(2)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := l.Sync(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = l.GroupCommit()
			}
		}
	}()
	total := appendConcurrently(t, l, 6, 30)
	close(stop)
	aux.Wait()
	gc := l.GroupCommit()
	if gc.Records != uint64(total) {
		t.Fatalf("group-commit carried %d records, want %d", gc.Records, total)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != total {
		t.Fatalf("replayed %d records, want %d", len(got), total)
	}
}
