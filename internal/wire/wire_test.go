package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"honestplayer/internal/feedback"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := feedback.Feedback{
		Time: time.Unix(100, 0).UTC(), Server: "s", Client: "c", Rating: feedback.Positive,
	}
	env, err := Encode(TypeSubmit, 7, SubmitRequest{Feedback: f})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, env); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypeSubmit || got.ID != 7 || got.V != Version {
		t.Fatalf("envelope = %+v", got)
	}
	var req SubmitRequest
	if err := DecodePayload(got, &req); err != nil {
		t.Fatal(err)
	}
	if req.Feedback.Server != "s" || !req.Feedback.Time.Equal(f.Time) {
		t.Fatalf("payload = %+v", req)
	}
}

func TestWriteMultipleFrames(t *testing.T) {
	var buf bytes.Buffer
	for i := uint64(1); i <= 3; i++ {
		env, err := Encode(TypePing, i, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := Write(&buf, env); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(&buf)
	for i := uint64(1); i <= 3; i++ {
		env, err := Read(r)
		if err != nil {
			t.Fatal(err)
		}
		if env.ID != i {
			t.Fatalf("frame %d id = %d", i, env.ID)
		}
	}
	if _, err := Read(r); !errors.Is(err, io.EOF) {
		t.Fatalf("after last frame: %v", err)
	}
}

func TestReadMalformed(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want error
	}{
		{"not json", "{nope\n", ErrBadMessage},
		{"wrong version", `{"v":99,"type":"ping","id":1}` + "\n", ErrBadVersion},
		{"missing type", `{"v":1,"id":1}` + "\n", ErrBadMessage},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Read(bufio.NewReader(strings.NewReader(tt.in)))
			if !errors.Is(err, tt.want) {
				t.Fatalf("err = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestReadFrameTooLarge(t *testing.T) {
	big := strings.Repeat("x", MaxFrame+10)
	_, err := Read(bufio.NewReader(strings.NewReader(big)))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteFrameTooLarge(t *testing.T) {
	recs := make([]feedback.Feedback, 0, 100000)
	long := feedback.EntityID(strings.Repeat("e", 200))
	for i := 0; i < 100000; i++ {
		recs = append(recs, feedback.Feedback{
			Time: time.Unix(int64(i), 0), Server: long, Client: long, Rating: feedback.Positive,
		})
	}
	env, err := Encode(TypeHistoryR, 1, HistoryResponse{Records: recs, Total: len(recs)})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, env); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestErrorResponseIsError(t *testing.T) {
	e := &ErrorResponse{Code: "bad_request", Message: "nope"}
	msg := e.Error()
	if !strings.Contains(msg, "bad_request") || !strings.Contains(msg, "nope") {
		t.Fatalf("Error() = %q", msg)
	}
}

func TestDecodePayloadError(t *testing.T) {
	env := Envelope{V: Version, Type: TypeSubmit, Payload: []byte(`{"feedback":`)}
	var req SubmitRequest
	if err := DecodePayload(env, &req); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadAcrossBufferBoundary(t *testing.T) {
	// A frame longer than the bufio buffer must still be read whole.
	env, err := Encode(TypeDelta, 1, DeltaMsg{Records: manyRecords(t, 500)})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, env); err != nil {
		t.Fatal(err)
	}
	small := bufio.NewReaderSize(&buf, 16)
	got, err := Read(small)
	if err != nil {
		t.Fatal(err)
	}
	var delta DeltaMsg
	if err := DecodePayload(got, &delta); err != nil {
		t.Fatal(err)
	}
	if len(delta.Records) != 500 {
		t.Fatalf("records = %d", len(delta.Records))
	}
}

func manyRecords(t *testing.T, n int) []feedback.Feedback {
	t.Helper()
	recs := make([]feedback.Feedback, n)
	for i := range recs {
		recs[i] = feedback.Feedback{
			Time: time.Unix(int64(i), 0).UTC(), Server: "srv", Client: "c", Rating: feedback.Positive,
		}
	}
	return recs
}
