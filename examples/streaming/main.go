// Streaming: the incremental assessment engine under a live write stream.
// A reputation server runs with Incremental enabled, so every stored
// feedback record is folded into a per-server accumulator as it arrives and
// each assess request is answered in O(windows) from the accumulator —
// bit-identical to recomputing over the whole history, but without touching
// it. Two providers are streamed side by side: an honest seller and a
// hibernating attacker that builds reputation and then spends it. The
// client re-assesses both every 200 transactions; the attacker's burst is
// flagged while its trust ratio still looks healthy. The final stats dump
// shows the engine's counters: every assessment was served incrementally.
package main

import (
	"fmt"
	"log"
	"time"

	"honestplayer"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tester, err := honestplayer.NewMultiTester(honestplayer.TesterConfig{
		// Continuous re-assessment over a growing history multi-tests many
		// suffixes per call; the familywise correction keeps the honest
		// seller's false-positive rate at the calibrated 5%.
		FamilywiseCorrection: true,
	})
	if err != nil {
		return err
	}
	assessor, err := honestplayer.NewTwoPhase(tester, honestplayer.Average{})
	if err != nil {
		return err
	}
	srv, err := honestplayer.NewServer("127.0.0.1:0", honestplayer.ServerConfig{
		Assessor:    assessor,
		Store:       honestplayer.NewShardedStore(4),
		Incremental: true,
	})
	if err != nil {
		return err
	}
	srv.Start()
	defer func() {
		if err := srv.Close(); err != nil {
			log.Printf("close server: %v", err)
		}
	}()

	cli, err := honestplayer.DialServer(srv.Addr())
	if err != nil {
		return err
	}
	defer func() {
		if err := cli.Close(); err != nil {
			log.Printf("close client: %v", err)
		}
	}()

	honestRNG := honestplayer.NewRNG(7)
	attackRNG := honestplayer.NewRNG(11)
	honest := func(i int) bool { return honestRNG.Bernoulli(0.95) }
	// Hibernating attack: 800 honest transactions to build a reputation,
	// then a cheating burst.
	attacker := func(i int) bool {
		if i >= 800 && i < 860 {
			return false
		}
		return attackRNG.Bernoulli(0.95)
	}
	providers := []struct {
		name    honestplayer.EntityID
		outcome func(int) bool
	}{
		{"honest-seller", honest},
		{"sleeper-agent", attacker},
	}

	fmt.Println("  txn | honest-seller              | sleeper-agent")
	fmt.Println("------+----------------------------+----------------------------")
	for i := 0; i < 1200; i++ {
		for _, p := range providers {
			rating := honestplayer.Negative
			if p.outcome(i) {
				rating = honestplayer.Positive
			}
			if _, err := cli.Submit(honestplayer.Feedback{
				Time:   time.Unix(int64(i), 0),
				Server: p.name,
				Client: honestplayer.EntityID(fmt.Sprintf("client-%d", i%17)),
				Rating: rating,
			}); err != nil {
				return err
			}
		}
		if (i+1)%200 != 0 {
			continue
		}
		fmt.Printf(" %4d |", i+1)
		for _, name := range []honestplayer.EntityID{"honest-seller", "sleeper-agent"} {
			resp, err := cli.Assess(name, 0.9)
			if err != nil {
				return err
			}
			status := "ok        "
			if resp.Assessment.Suspicious {
				status = "SUSPICIOUS"
			}
			fmt.Printf(" %s trust=%.3f incr=%-5v |", status, resp.Assessment.Trust, resp.Incremental)
		}
		fmt.Println()
	}

	st := srv.Stats()
	fmt.Printf("\nengine stats: tracked=%d served=%d fallbacks=%d\n",
		st.Incremental.ServersTracked, st.Incremental.Served, st.Incremental.Fallbacks)
	fmt.Println()
	fmt.Println("Every assess was answered from the per-server accumulator (incr=true,")
	fmt.Println("fallbacks=0): appends cost amortised O(1) and assessments O(windows),")
	fmt.Println("independent of how long the history has grown. The sleeper agent's")
	fmt.Println("burst at transaction 800 is caught by the behaviour test while its")
	fmt.Println("overall good ratio still looks healthy.")
	return nil
}
