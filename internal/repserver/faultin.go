package repserver

// Fault-in: transparently rebuilding evicted server state on the read path.
// Under a memory budget the store evicts idle servers to compact stubs; a
// request touching one (nil snapshot, non-zero version) triggers a rebuild
// through Config.Rebuilder and retries. Rebuilds are single-flighted per
// server — one leader calls RebuildServer, concurrent requests for the same
// server wait for it — so an eviction storm costs one snapshot-section read
// per server, not one per request.

import (
	"context"
	"errors"

	"honestplayer/internal/feedback"
	"honestplayer/internal/service"
	"honestplayer/internal/wire"
)

// Rebuilder reconstructs one evicted server's resident state from durable
// storage. ledger.PersistentStore implements it; deployments without a
// memory budget leave Config.Rebuilder nil and never hit this path.
type Rebuilder interface {
	RebuildServer(feedback.EntityID) error
}

// maxFaultAttempts bounds the evict/rebuild retry loop of one request. A
// server re-evicted this many times within a single request means the budget
// is far too small for the working set (eviction thrash); failing the
// request is more honest than spinning.
const maxFaultAttempts = 4

// faultIn makes one attempt to reinstate server, single-flighted: the first
// caller becomes the leader and runs the rebuild, concurrent callers wait
// for its completion (or their own context). A nil return means a rebuild
// finished — the caller must re-check residency, since the leader may have
// failed or the server may have been evicted again.
func (s *Server) faultIn(ctx context.Context, server feedback.EntityID) error {
	rb := s.cfg.Rebuilder
	if rb == nil {
		// Evicted state with no way to rebuild it: only possible when the
		// store got a budget without the persistence layer attached — a
		// wiring bug, reported as such rather than "unknown server".
		return service.Errorf(wire.CodeUnavailable,
			"server %q is evicted and no rebuilder is configured", server)
	}
	s.faultMu.Lock()
	if ch, ok := s.faultWait[string(server)]; ok {
		s.faultMu.Unlock()
		s.nFaultWaits.Add(1)
		select {
		case <-ch:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	ch := make(chan struct{})
	if s.faultWait == nil {
		s.faultWait = make(map[string]chan struct{})
	}
	s.faultWait[string(server)] = ch
	s.faultMu.Unlock()

	err := rb.RebuildServer(server)

	s.faultMu.Lock()
	delete(s.faultWait, string(server))
	s.faultMu.Unlock()
	close(ch)
	if err != nil {
		s.nFaultErrors.Add(1)
		return service.Errorf(wire.CodeUnavailable, "fault-in of %q: %v", server, err)
	}
	s.nFaultIns.Add(1)
	return nil
}

// residentSnapshot is Store.Snapshot with fault-in: evicted servers are
// rebuilt and the read retried, up to maxFaultAttempts. The returned history
// is non-nil — empty (version 0) for unknown servers, resident otherwise.
func (s *Server) residentSnapshot(ctx context.Context, server feedback.EntityID) (*feedback.History, uint64, error) {
	for attempt := 0; ; attempt++ {
		h, version := s.cfg.Store.Snapshot(server)
		if h != nil {
			return h, version, nil
		}
		if attempt == maxFaultAttempts {
			return nil, 0, service.Errorf(wire.CodeUnavailable,
				"server %q: evicted again after %d rebuilds (memory budget too small for working set)",
				server, attempt)
		}
		if err := s.faultIn(ctx, server); err != nil {
			return nil, 0, err
		}
	}
}

// errorResponseFrom converts a handler error into the per-item error form of
// a batch response, mirroring ErrorEnvelopeCodec's code mapping.
func errorResponseFrom(err error) *wire.ErrorResponse {
	var proto *wire.ErrorResponse
	switch {
	case errors.As(err, &proto):
		return proto
	case errors.Is(err, context.DeadlineExceeded):
		return &wire.ErrorResponse{Code: wire.CodeDeadlineExceeded, Message: err.Error()}
	case errors.Is(err, context.Canceled):
		return &wire.ErrorResponse{Code: wire.CodeCanceled, Message: err.Error()}
	default:
		return &wire.ErrorResponse{Code: wire.CodeInternal, Message: err.Error()}
	}
}
