// Package repserver implements the central reputation server the paper
// assumes for online-auction-style communities (§2): it collects feedback,
// serves transaction histories, and runs two-phase trust assessment on
// behalf of clients.
//
// The server speaks the wire protocol over TCP, one goroutine per
// connection. Requests are dispatched through the transport-agnostic
// service layer (internal/service): per-type registered handlers wrapped in
// an interceptor chain — panic recovery, per-type metrics, slow-request
// logging, and per-request deadline enforcement — with a context threaded
// from the accept loop into every handler.
//
// Shutdown is graceful: Close (or Shutdown with a caller context) stops the
// listener, closes idle connections, lets in-flight requests finish within
// a drain grace period, then cancels their contexts and force-closes
// whatever remains.
package repserver

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"honestplayer/internal/assesscache"
	"honestplayer/internal/cluster"
	"honestplayer/internal/core"
	"honestplayer/internal/feedback"
	"honestplayer/internal/service"
	"honestplayer/internal/store"
	"honestplayer/internal/wire"
)

// DefaultDrainTimeout bounds how long Close waits for in-flight requests
// before force-closing their connections.
const DefaultDrainTimeout = 5 * time.Second

// Recorder is the write path for incoming feedback. The default writes to
// the in-memory store; deployments wanting durability pass a
// ledger.PersistentStore (whose Store() must also back Config.Store so
// reads see the writes).
type Recorder interface {
	// Add stores one record, reporting whether it was new.
	Add(feedback.Feedback) (bool, error)
}

// BatchRecorder is the optional batch write path: recorders implementing it
// get submit.batch requests as one call — shard-grouped store insertion and
// one ledger group commit instead of a per-record store+append+flush cycle.
// Both *store.Store and *ledger.PersistentStore implement it; recorders that
// don't are served record by record through Add with identical results.
type BatchRecorder interface {
	// AddBatch stores records with at most workers concurrent shard groups
	// (workers <= 0 means GOMAXPROCS); result i reports record i's outcome
	// with Add's exact semantics.
	AddBatch(recs []feedback.Feedback, workers int) []store.AddResult
}

// Config parameterises a Server.
type Config struct {
	// Assessor runs two-phase assessment for TypeAssess requests.
	Assessor *core.TwoPhase
	// Store holds the feedback records; nil means a fresh empty store.
	Store *store.Store
	// Recorder handles feedback writes; nil means writing to Store.
	Recorder Recorder
	// Logger receives connection-level errors; nil disables logging.
	Logger *log.Logger
	// MaxHistoryChunk caps records per history response; zero means 10000.
	MaxHistoryChunk int
	// AssessCacheSize bounds the assessment cache in entries; zero disables
	// caching (every TypeAssess recomputes, the seed behaviour).
	AssessCacheSize int
	// Incremental enables the incremental assessment engine: the server
	// installs a per-server accumulator factory on the Store and answers
	// TypeAssess from the accumulators in O(windows) instead of re-running
	// the two-phase assessment over the whole history. The batch path (and
	// the assesscache) remains as fallback. Requires an assessor whose
	// tester and trust function have incremental forms (all built-ins do);
	// New fails otherwise.
	Incremental bool
	// BatchWorkers bounds the worker pool one TypeAssessB request fans its
	// shard groups out over; zero means runtime.GOMAXPROCS(0). One worker
	// serialises the batch (useful for deterministic profiling); the items
	// of a single shard are always served by one worker under one shard
	// read-lock acquisition regardless of the pool size.
	BatchWorkers int
	// RequestTimeout bounds each request's handler; a request exceeding it
	// gets a deadline_exceeded error frame and the connection stays open.
	// Zero means no per-request deadline.
	RequestTimeout time.Duration
	// DrainTimeout is the grace period Close gives in-flight requests
	// before cancelling their contexts and force-closing connections; zero
	// means DefaultDrainTimeout.
	DrainTimeout time.Duration
	// SlowLogThreshold logs any request slower than it via Logger; zero
	// disables slow-request logging.
	SlowLogThreshold time.Duration
	// DisableV2 turns off binary protocol v2 negotiation, making the server
	// JSON-only — byte-for-byte the pre-v2 behaviour, including treating a
	// v2 hello as a malformed JSON frame (id-0 error, close). Used by the
	// CI compat matrix to stand in for an old server.
	DisableV2 bool
	// Rebuilder reconstructs evicted server state on demand when the Store
	// runs under a memory budget (see store.SetBudget); requests touching an
	// evicted server fault it back in through this instead of failing. Nil
	// disables fault-in — correct whenever no budget is set.
	Rebuilder Rebuilder
}

// Stats exposes server counters.
type Stats struct {
	Connections uint64 `json:"connections"`
	Requests    uint64 `json:"requests"`
	Errors      uint64 `json:"errors"`
	// Cache carries the assessment-cache counters; all-zero when caching
	// is disabled.
	Cache assesscache.Stats `json:"cache"`
	// PerType carries per-request-type counts, error counts, and latency
	// quantiles from the service-layer metrics.
	PerType service.Snapshot `json:"per_type,omitempty"`
	// Incremental carries the incremental assessment engine's counters;
	// Enabled is false and the rest zero when the engine is off.
	Incremental IncrementalStats `json:"incremental"`
	// BatchItems counts the individual servers assessed via assess.batch
	// requests (per-request counts live in PerType). Items served from an
	// accumulator or the cache also count towards the Incremental / Cache
	// stats, same as single assess requests.
	BatchItems uint64 `json:"batch_items"`
	// SubmitBatches counts submit.batch requests served locally,
	// SubmitBatchItems the records they carried, and SubmitBatchRejects the
	// items that failed their slot (invalid records above all). The ledger's
	// group-commit counters (coalesced flushes, group-size quantiles) live
	// in the persistence stats, not here.
	SubmitBatches      uint64 `json:"submit_batches"`
	SubmitBatchItems   uint64 `json:"submit_batch_items"`
	SubmitBatchRejects uint64 `json:"submit_batch_rejects"`
	// V2Connections counts connections that negotiated binary protocol v2
	// (Connections counts every accepted connection, either framing).
	V2Connections uint64 `json:"v2_connections"`
	// Cluster carries the cluster-routing counters (forwarded calls, merge
	// counts, per-peer RTTs); Enabled is false and the rest zero on a
	// non-clustered node.
	Cluster service.ClusterStats `json:"cluster"`
	// Lifecycle carries the resident/evicted state lifecycle counters;
	// Enabled is false and the rest zero without a memory budget.
	Lifecycle LifecycleStats `json:"lifecycle"`
}

// LifecycleStats exposes the memory-budget lifecycle counters: the store's
// resident/evicted accounting plus the serving layer's fault-in activity.
type LifecycleStats struct {
	// Enabled reports whether fault-in is wired (Config.Rebuilder set).
	Enabled bool `json:"enabled"`
	store.LifecycleStats
	// FaultIns counts rebuilds this server led to completion.
	FaultIns uint64 `json:"fault_ins"`
	// FaultWaits counts requests that waited on another request's rebuild
	// of the same server instead of running their own.
	FaultWaits uint64 `json:"fault_waits"`
	// FaultErrors counts rebuilds that failed.
	FaultErrors uint64 `json:"fault_errors"`
}

// IncrementalStats exposes the incremental assessment engine's counters.
type IncrementalStats struct {
	// Enabled reports whether the engine is on.
	Enabled bool `json:"enabled"`
	// ServersTracked counts servers currently carrying a live accumulator.
	ServersTracked int `json:"servers_tracked"`
	// Served counts assess requests answered from an accumulator.
	Served uint64 `json:"served"`
	// Fallbacks counts assess requests for known servers that the engine
	// could not answer and the batch path (cache or recompute) served
	// instead while the engine was enabled.
	Fallbacks uint64 `json:"fallbacks"`
}

// conn wraps one accepted connection with its drain state: Close shuts an
// idle connection immediately but lets a busy one finish its in-flight
// request first (the handle loop notices closing on the next idle
// transition and exits).
type conn struct {
	nc net.Conn

	mu      sync.Mutex
	busy    bool
	closing bool
}

// setBusy flips the busy flag and reports whether the server has started
// draining this connection.
func (c *conn) setBusy(b bool) (closing bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.busy = b
	return c.closing
}

// Server is a TCP reputation server.
type Server struct {
	cfg      Config
	listener net.Listener
	cache    *assesscache.Cache // nil when AssessCacheSize is zero

	pipeline service.Handler // registry dispatch wrapped in interceptors
	metrics  *service.Metrics

	baseCtx context.Context // cancelled to abort in-flight handlers
	cancel  context.CancelFunc

	mu       sync.Mutex
	conns    map[*conn]struct{}
	closed   bool
	closeErr error // listener-close error from the first Shutdown

	wg     sync.WaitGroup // Serve/Start goroutines
	connWg sync.WaitGroup // per-connection handle loops

	// clusterRef is the node's cluster view, attached after construction via
	// SetCluster (the membership is known before listeners bind, but tests
	// with ephemeral ports learn peer addresses only after every node is
	// up). Nil means single-node: every routing branch collapses to the
	// local path.
	clusterRef atomic.Pointer[cluster.Cluster]

	// Single-flight fault-in state (see faultin.go): at most one rebuild
	// per server runs at a time, with concurrent requests waiting on its
	// channel.
	faultMu   sync.Mutex
	faultWait map[string]chan struct{}

	nConns       atomic.Uint64
	nV2Conns     atomic.Uint64
	nRequests    atomic.Uint64
	nErrors      atomic.Uint64
	nIncremental atomic.Uint64
	nFallback    atomic.Uint64
	nBatchItems  atomic.Uint64
	nSubBatches  atomic.Uint64
	nSubItems    atomic.Uint64
	nSubRejects  atomic.Uint64
	nFaultIns    atomic.Uint64
	nFaultWaits  atomic.Uint64
	nFaultErrors atomic.Uint64
}

// New creates a server listening on addr (e.g. "127.0.0.1:0").
func New(addr string, cfg Config) (*Server, error) {
	if cfg.Assessor == nil {
		return nil, errors.New("repserver: nil assessor")
	}
	if cfg.Incremental && !cfg.Assessor.SupportsIncremental() {
		return nil, fmt.Errorf("repserver: assessor %s does not support incremental assessment",
			cfg.Assessor.Name())
	}
	if cfg.Store == nil {
		cfg.Store = store.New()
	}
	if cfg.Recorder == nil {
		cfg.Recorder = cfg.Store
	}
	if cfg.MaxHistoryChunk == 0 {
		cfg.MaxHistoryChunk = 10000
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("repserver: listen %s: %w", addr, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv := &Server{
		cfg:      cfg,
		listener: ln,
		conns:    make(map[*conn]struct{}),
		metrics:  service.NewMetrics(),
		baseCtx:  ctx,
		cancel:   cancel,
	}
	if cfg.AssessCacheSize > 0 {
		srv.cache = assesscache.New(cfg.AssessCacheSize)
	}
	if cfg.Incremental {
		assessor := cfg.Assessor
		cfg.Store.SetAccumulatorFactory(func(server feedback.EntityID) store.Accumulator {
			// On a clustered node, accumulators only materialize for servers
			// in the local replica set — assessment state for servers this
			// node would forward anyway is wasted memory.
			if cl := srv.clusterRef.Load(); cl != nil && !cl.Owns(server) {
				return nil
			}
			sa, err := assessor.NewServerAccumulator(server)
			if err != nil {
				// SupportsIncremental was verified above; per-server minting
				// cannot fail after that.
				panic(err)
			}
			return sa
		})
	}
	srv.pipeline = srv.buildPipeline()
	return srv, nil
}

// SetCluster attaches (or, with nil, detaches) the node's cluster view.
// Call it before serving traffic: requests observe the attachment
// atomically, but ownership of records accepted before it cannot be
// re-routed retroactively. Attaching drops accumulators for servers outside
// the local replica set.
func (s *Server) SetCluster(cl *cluster.Cluster) {
	s.clusterRef.Store(cl)
	if s.cfg.Incremental && cl != nil {
		s.cfg.Store.RetainAccumulators(func(server feedback.EntityID) bool {
			return cl.Owns(server)
		})
	}
	// Under a memory budget, spend residency on the replica set: servers
	// this node merely forwards for are evicted first.
	if cl != nil {
		s.cfg.Store.SetEvictPreference(func(server feedback.EntityID) bool {
			return !cl.Owns(server)
		})
	} else {
		s.cfg.Store.SetEvictPreference(nil)
	}
}

// Cluster returns the attached cluster view, or nil on a single-node
// server.
func (s *Server) Cluster() *cluster.Cluster { return s.clusterRef.Load() }

// buildPipeline registers the per-type handlers and wraps dispatch in the
// interceptor chain. Order, outermost first: panic recovery (nothing above
// it may be skipped), metrics and slow-log (outside the deadline so a
// timed-out request is observed at its timeout with a deadline error, not
// whenever the abandoned handler finishes), then deadline enforcement. The
// deadline interceptor always runs — even with RequestTimeout zero — so
// that cancelling the server's base context during a forced shutdown
// releases handle loops stuck on a stalled handler.
func (s *Server) buildPipeline() service.Handler {
	reg := service.NewRegistry()
	reg.Register(wire.TypePing, s.handlePing)
	reg.Register(wire.TypeSubmit, s.handleSubmit)
	reg.Register(wire.TypeSubmitB, s.handleBatch)
	reg.Register(wire.TypeHistory, s.handleHistory)
	reg.Register(wire.TypeAssess, s.handleAssess)
	reg.Register(wire.TypeAssessB, s.handleAssessBatch)
	reg.Register(wire.TypeFwdAssess, s.handleFwdAssess)
	reg.Register(wire.TypeFwdSubmit, s.handleFwdSubmit)
	reg.Register(wire.TypeFwdBatch, s.handleFwdBatch)
	reg.Register(wire.TypeFwdAssessB, s.handleFwdAssessBatch)
	reg.Register(wire.TypeClusterInfo, s.handleClusterInfo)

	dispatch := func(ctx context.Context, env wire.Envelope) (wire.Envelope, error) {
		h, ok := reg.Lookup(env.Type)
		if !ok {
			return wire.Envelope{}, service.Errorf(wire.CodeUnknownType, "%s", env.Type)
		}
		return h(ctx, env)
	}
	return service.Chain(dispatch,
		service.Recover(s.logf),
		service.WithMetrics(s.metrics),
		service.SlowLog(s.logf, s.cfg.SlowLogThreshold),
		service.Deadline(s.cfg.RequestTimeout),
	)
}

// Addr returns the bound listener address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Store returns the backing feedback store.
func (s *Server) Store() *store.Store { return s.cfg.Store }

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Connections:   s.nConns.Load(),
		Requests:      s.nRequests.Load(),
		Errors:        s.nErrors.Load(),
		PerType:       s.metrics.Snapshot(),
		BatchItems:    s.nBatchItems.Load(),
		V2Connections: s.nV2Conns.Load(),

		SubmitBatches:      s.nSubBatches.Load(),
		SubmitBatchItems:   s.nSubItems.Load(),
		SubmitBatchRejects: s.nSubRejects.Load(),
	}
	if s.cache != nil {
		st.Cache = s.cache.Stats()
	}
	st.Incremental = IncrementalStats{
		Enabled:        s.cfg.Incremental,
		ServersTracked: s.cfg.Store.AccumulatorsTracked(),
		Served:         s.nIncremental.Load(),
		Fallbacks:      s.nFallback.Load(),
	}
	if cl := s.clusterRef.Load(); cl != nil {
		st.Cluster = cl.Stats()
	}
	st.Lifecycle = LifecycleStats{
		Enabled:        s.cfg.Rebuilder != nil,
		LifecycleStats: s.cfg.Store.Lifecycle(),
		FaultIns:       s.nFaultIns.Load(),
		FaultWaits:     s.nFaultWaits.Load(),
		FaultErrors:    s.nFaultErrors.Load(),
	}
	return st
}

// Serve accepts connections until Close is called. It returns nil after a
// clean shutdown.
func (s *Server) Serve() error {
	for {
		nc, err := s.listener.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("repserver: accept: %w", err)
		}
		c := &conn{nc: nc}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = nc.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.nConns.Add(1)
		s.connWg.Add(1)
		go func() {
			defer s.connWg.Done()
			s.handle(c)
		}()
	}
}

// Start runs Serve on a background goroutine and returns immediately.
func (s *Server) Start() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		if err := s.Serve(); err != nil {
			s.logf("serve: %v", err)
		}
	}()
}

// Close gracefully shuts the server down with the configured DrainTimeout:
// it stops accepting, closes idle connections, waits for in-flight
// requests to complete, then force-closes whatever remains. It is
// idempotent.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	return s.Shutdown(ctx)
}

// Shutdown is Close with a caller-supplied drain context: in-flight
// requests may complete until ctx is done, after which their contexts are
// cancelled and the connections force-closed. The first call owns the drain
// and always waits for every handler goroutine to exit before returning;
// concurrent calls wait for that drain only until their own ctx expires
// (returning ctx.Err()), and otherwise report the first call's
// listener-close error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		closeErr := s.closeErr
		s.mu.Unlock()
		drained := make(chan struct{})
		go func() {
			s.connWg.Wait()
			s.wg.Wait()
			close(drained)
		}()
		select {
		case <-drained:
			return closeErr
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	s.closed = true
	err := s.listener.Close()
	s.closeErr = err
	// Mark every connection draining; close the idle ones now (their handle
	// loops are blocked in wire.Read and wake on the close). Busy ones get
	// to finish their current request.
	for c := range s.conns {
		c.mu.Lock()
		c.closing = true
		if !c.busy {
			_ = c.nc.Close()
		}
		c.mu.Unlock()
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.connWg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		// Grace period over: abort in-flight handlers and cut the wires.
		s.cancel()
		s.mu.Lock()
		for c := range s.conns {
			_ = c.nc.Close()
		}
		s.mu.Unlock()
		<-drained
	}
	s.cancel()
	s.wg.Wait()
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}

// v2BufSize sizes the per-connection bufio reader and writer on v2
// connections: large enough that a pipelined burst of frames is absorbed in
// one syscall each way.
const v2BufSize = 256 << 10

// handle serves one connection. The first byte selects the framing: 0xB2
// opens the v2 hello handshake, anything else (a '{' in practice) is the
// newline-delimited JSON protocol, served exactly as before v2 existed.
// With Config.DisableV2 the peek is skipped entirely and a v2 hello meets
// the JSON line reader — the pre-v2 behaviour old servers exhibit.
func (s *Server) handle(c *conn) {
	defer func() {
		_ = c.nc.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()
	reader := bufio.NewReader(c.nc)
	if !s.cfg.DisableV2 {
		first, err := reader.Peek(1)
		if err != nil {
			return // closed before a byte arrived
		}
		if first[0] == wire.HelloMagic {
			s.handleV2(c, reader)
			return
		}
	}
	s.handleJSON(c, reader)
}

// handleJSON serves one JSON-framed connection's request loop. Each request
// runs through the service pipeline with the server's base context; handler
// errors become error frames (the connection survives them), write failures
// end the connection.
func (s *Server) handleJSON(c *conn, reader *bufio.Reader) {
	for {
		if c.setBusy(false) {
			return // draining and idle: stop before reading another request
		}
		env, err := wire.Read(reader)
		if err != nil {
			// EOF and closed connections are normal terminations; protocol
			// violations get a best-effort error frame. The frame is forced
			// to wire.UnattributableID — even when the offending request's
			// own id parsed (bad version, missing type) — because the server
			// closes the connection right after, and id 0 is the documented
			// connection-fatal signal that makes clients poison it
			// immediately instead of on their next call.
			if errors.Is(err, wire.ErrBadMessage) || errors.Is(err, wire.ErrBadVersion) ||
				errors.Is(err, wire.ErrFrameTooLarge) {
				s.nErrors.Add(1)
				_ = wire.Write(c.nc, service.ErrorEnvelope(wire.UnattributableID,
					service.Errorf(wire.CodeBadRequest, "%v", err)))
			}
			return
		}
		// Claim the request under the conn lock: either we mark ourselves
		// busy before the drain pass inspects this connection (so it stays
		// open until the response is written), or the drain pass already
		// closed it as idle and the frame cannot be answered.
		c.mu.Lock()
		if c.closing {
			c.mu.Unlock()
			return
		}
		c.busy = true
		c.mu.Unlock()
		s.nRequests.Add(1)
		resp, herr := s.pipeline(s.baseCtx, env)
		if herr != nil {
			s.nErrors.Add(1)
			resp = service.ErrorEnvelope(env.ID, herr)
		}
		if err := wire.Write(c.nc, resp); err != nil {
			s.nErrors.Add(1)
			s.logf("conn %s: write %s response: %v", c.nc.RemoteAddr(), env.Type, err)
			return
		}
	}
}

// handleV2 completes the hello handshake and serves one binary-framed
// connection. Requests run through the same pipeline as JSON connections,
// with the v2 codec threaded through the request context so handlers (and
// the error-frame path) answer in binary. Responses are written through a
// large buffered writer that is flushed only when no further request is
// already buffered — a pipelined burst of N requests costs ~one write
// syscall, not N.
//
// Unlike the JSON loop, the read buffer is reused across frames
// (wire.ReadV2Into): the envelope's payload aliases it and every handler
// fully decodes the payload before returning. The one exception is a
// handler abandoned by the deadline interceptor, which may still be reading
// the payload on its own goroutine — the loop surrenders the buffer to it
// and starts a fresh one (see the deadline-error branch below).
func (s *Server) handleV2(c *conn, reader *bufio.Reader) {
	if _, err := wire.ReadHello(reader); err != nil {
		// The magic byte matched but the hello didn't. Answer with the JSON
		// id-0 error frame — the peer has not completed the v2 handshake, so
		// JSON is the only framing it can be assumed to parse — and close.
		s.nErrors.Add(1)
		_ = wire.Write(c.nc, service.ErrorEnvelope(wire.UnattributableID,
			service.Errorf(wire.CodeBadRequest, "%v", err)))
		return
	}
	if err := wire.WriteHelloAck(c.nc); err != nil {
		return
	}
	s.nV2Conns.Add(1)
	connCtx := service.WithCodec(s.baseCtx, wire.V2Codec)
	bw := bufio.NewWriterSize(c.nc, v2BufSize)
	var frameBuf []byte
	for {
		if c.setBusy(false) {
			_ = bw.Flush()
			return // draining and idle: stop before reading another request
		}
		// Flush buffered responses before a read that may block: the
		// client's pipeline stays full only while responses keep flowing.
		if reader.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				s.nErrors.Add(1)
				return
			}
		}
		env, buf, err := wire.ReadV2Into(reader, frameBuf)
		frameBuf = buf
		if err != nil {
			// EOF and closed connections are normal terminations; protocol
			// violations get a best-effort id-0 error frame (connection-fatal
			// for the client, matching the JSON loop's semantics).
			if errors.Is(err, wire.ErrBadMessage) || errors.Is(err, wire.ErrBadVersion) ||
				errors.Is(err, wire.ErrFrameTooLarge) {
				s.nErrors.Add(1)
				_ = wire.WriteV2(bw, service.ErrorEnvelopeCodec(wire.V2Codec, wire.UnattributableID,
					service.Errorf(wire.CodeBadRequest, "%v", err)))
				_ = bw.Flush()
			}
			return
		}
		c.mu.Lock()
		if c.closing {
			c.mu.Unlock()
			return
		}
		c.busy = true
		c.mu.Unlock()
		s.nRequests.Add(1)
		resp, herr := s.pipeline(connCtx, env)
		if herr != nil {
			s.nErrors.Add(1)
			resp = service.ErrorEnvelopeCodec(wire.V2Codec, env.ID, herr)
			if errors.Is(herr, context.DeadlineExceeded) || errors.Is(herr, context.Canceled) {
				// The deadline interceptor abandoned the handler mid-flight;
				// it may still read env.Payload on its own goroutine. Give
				// the buffer up instead of overwriting it with the next
				// frame (the aliasing regression in repserver tests pins
				// this under -race).
				frameBuf = nil
			}
		}
		if err := wire.WriteV2(bw, resp); err != nil {
			s.nErrors.Add(1)
			s.logf("conn %s: write %s response: %v", c.nc.RemoteAddr(), env.Type, err)
			return
		}
	}
}

// Per-type handlers. Each takes the request context threaded from the
// accept loop (bounded by the deadline interceptor) and returns either a
// response envelope or an error the transport converts to an error frame.

func (s *Server) handlePing(ctx context.Context, env wire.Envelope) (wire.Envelope, error) {
	return service.CodecFrom(ctx).Encode(wire.TypePong, env.ID, nil)
}

func (s *Server) handleSubmit(ctx context.Context, env wire.Envelope) (wire.Envelope, error) {
	var req wire.SubmitRequest
	if err := wire.DecodePayload(env, &req); err != nil {
		return wire.Envelope{}, service.Errorf(wire.CodeBadRequest, "%v", err)
	}
	if err := ctx.Err(); err != nil {
		return wire.Envelope{}, err
	}
	if cl := s.clusterRef.Load(); cl != nil && !cl.IsOwner(req.Feedback.Server) {
		// Not the owner: the owner applies the write (and replicates it); we
		// relay its answer. Validation happens there too, so a bad record
		// comes back as the same typed invalid_feedback error.
		stored, err := cl.ForwardSubmit(ctx, cl.Owner(req.Feedback.Server), req.Feedback, false)
		if err != nil {
			return wire.Envelope{}, forwardedErr(err)
		}
		return service.CodecFrom(ctx).Encode(wire.TypeSubmitR, env.ID, wire.SubmitResponse{Stored: stored})
	}
	stored, err := s.cfg.Recorder.Add(req.Feedback)
	if err != nil {
		return wire.Envelope{}, service.Errorf(wire.CodeInvalidFeedback, "%v", err)
	}
	if stored {
		s.replicate(ctx, []feedback.Feedback{req.Feedback})
	}
	return service.CodecFrom(ctx).Encode(wire.TypeSubmitR, env.ID, wire.SubmitResponse{Stored: stored})
}

func (s *Server) handleBatch(ctx context.Context, env wire.Envelope) (wire.Envelope, error) {
	var req wire.BatchRequest
	if err := wire.DecodePayload(env, &req); err != nil {
		return wire.Envelope{}, service.Errorf(wire.CodeBadRequest, "%v", err)
	}
	if len(req.Records) > wire.MaxSubmitBatch {
		return wire.Envelope{}, service.Errorf(wire.CodeBadRequest,
			"batch of %d records exceeds max %d", len(req.Records), wire.MaxSubmitBatch)
	}
	if cl := s.clusterRef.Load(); cl != nil && cl.Size() > 1 {
		resp, err := s.clusterBatch(ctx, cl, req)
		if err != nil {
			return wire.Envelope{}, err
		}
		return service.CodecFrom(ctx).Encode(wire.TypeSubmitBR, env.ID, resp)
	}
	resp, err := s.applyBatch(ctx, req.Records)
	if err != nil {
		return wire.Envelope{}, err
	}
	return service.CodecFrom(ctx).Encode(wire.TypeSubmitBR, env.ID, resp)
}

// applyBatch stores records locally with the per-record report semantics of
// a batch submit: bad records fail their own item slot, never the batch.
// Recorders implementing BatchRecorder get the whole batch as one call —
// shard-grouped insertion over the bounded worker pool plus one ledger group
// commit; anything else is served record by record with identical results.
// Items[i] always answers Records[i]; len(Items) == len(Records).
func (s *Server) applyBatch(ctx context.Context, recs []feedback.Feedback) (wire.BatchResponse, error) {
	resp := wire.BatchResponse{Items: make([]wire.SubmitBatchItem, len(recs))}
	if err := ctx.Err(); err != nil {
		return wire.BatchResponse{}, err
	}
	var results []store.AddResult
	if br, ok := s.cfg.Recorder.(BatchRecorder); ok {
		results = br.AddBatch(recs, s.cfg.BatchWorkers)
	} else {
		results = make([]store.AddResult, len(recs))
		for i, rec := range recs {
			// A cancelled request must stop writing, but records already
			// stored stay stored — the client learns how far it got from
			// the error.
			if err := ctx.Err(); err != nil {
				return wire.BatchResponse{}, err
			}
			results[i].Stored, results[i].Err = s.cfg.Recorder.Add(rec)
		}
	}

	// Items that hit evicted state: fault each distinct server in once —
	// single-flighted server-wide via faultIn, so concurrent batches (and
	// reads) share one rebuild — then retry those records. Recorders with
	// their own fault-in (ledger.PersistentStore) never surface ErrEvicted
	// here; this covers a store-only recorder running under a budget.
	for i := range results {
		if !errors.Is(results[i].Err, store.ErrEvicted) {
			continue
		}
		if err := s.faultIn(ctx, recs[i].Server); err != nil {
			results[i] = store.AddResult{Err: err}
			continue
		}
		results[i].Stored, results[i].Err = s.cfg.Recorder.Add(recs[i])
	}

	for i, r := range results {
		if r.Err != nil {
			// Typed errors (fault-in failures above all) keep their code;
			// plain validation errors report as invalid_feedback, matching
			// the single-submit path.
			er := errorResponseFrom(r.Err)
			if er.Code == wire.CodeInternal {
				er = &wire.ErrorResponse{Code: wire.CodeInvalidFeedback, Message: r.Err.Error()}
			}
			resp.Items[i].Error = er
			resp.Rejected = append(resp.Rejected, wire.BatchReject{Index: i, Reason: r.Err.Error()})
			continue
		}
		resp.Items[i].Stored = r.Stored
		if r.Stored {
			resp.Stored++
		} else {
			resp.Duplicates++
		}
	}
	s.nSubBatches.Add(1)
	s.nSubItems.Add(uint64(len(recs)))
	s.nSubRejects.Add(uint64(len(resp.Rejected)))
	return resp, nil
}

func (s *Server) handleHistory(ctx context.Context, env wire.Envelope) (wire.Envelope, error) {
	var req wire.HistoryRequest
	if err := wire.DecodePayload(env, &req); err != nil {
		return wire.Envelope{}, service.Errorf(wire.CodeBadRequest, "%v", err)
	}
	if req.Server == "" {
		return wire.Envelope{}, service.Errorf(wire.CodeBadRequest, "missing server")
	}
	if err := ctx.Err(); err != nil {
		return wire.Envelope{}, err
	}
	// Read through the fault-in path: an evicted server is rebuilt rather
	// than reported empty (Records alone cannot tell evicted from unknown).
	h, _, err := s.residentSnapshot(ctx, req.Server)
	if err != nil {
		return wire.Envelope{}, err
	}
	recs := h.Records()
	total := len(recs)
	limit := req.Limit
	if limit <= 0 || limit > s.cfg.MaxHistoryChunk {
		limit = s.cfg.MaxHistoryChunk
	}
	if len(recs) > limit {
		recs = recs[len(recs)-limit:]
	}
	return service.CodecFrom(ctx).Encode(wire.TypeHistoryR, env.ID, wire.HistoryResponse{Records: recs, Total: total})
}

func (s *Server) handleAssess(ctx context.Context, env wire.Envelope) (wire.Envelope, error) {
	var req wire.AssessRequest
	if err := wire.DecodePayload(env, &req); err != nil {
		return wire.Envelope{}, service.Errorf(wire.CodeBadRequest, "%v", err)
	}
	if cl := s.clusterRef.Load(); cl != nil && req.Server != "" && !cl.Owns(req.Server) {
		// The local node holds no state for this server: fan out to its
		// replica set and weight-merge the per-node views.
		resp, err := s.clusterAssess(ctx, cl, req)
		if err != nil {
			return wire.Envelope{}, err
		}
		return service.CodecFrom(ctx).Encode(wire.TypeAssessR, env.ID, resp)
	}
	resp, err := s.assess(ctx, req)
	if err != nil {
		return wire.Envelope{}, err
	}
	return service.CodecFrom(ctx).Encode(wire.TypeAssessR, env.ID, resp)
}

// Assess runs one assessment in process, exactly as a TypeAssess request
// would be served minus the wire decode and socket I/O. It is the entry
// point for embedders and benchmark harnesses (cmd/reprobench) that need
// the serving semantics — incremental accumulator, cache, version checks —
// without a network round trip.
func (s *Server) Assess(ctx context.Context, req wire.AssessRequest) (wire.AssessResponse, error) {
	return s.assess(ctx, req)
}

// assess serves one TypeAssess request: incremental accumulator first when
// the engine is on, otherwise history snapshot, cache probe, and two-phase
// assessment on miss.
//
// The incremental path reads the per-server accumulator under the shard
// read lock and costs O(windows) regardless of history length; its result
// is bit-identical to the batch recompute (the accumulator's differential
// guarantee), so the two paths are interchangeable per request.
//
// On the fallback path the cache key carries the store's per-server
// version, read atomically with the history snapshot. Any accepted write
// bumps the version, so a stale cached assessment can never be served: its
// version no longer matches and the lookup falls through to recomputation.
func (s *Server) assess(ctx context.Context, req wire.AssessRequest) (wire.AssessResponse, error) {
	var resp wire.AssessResponse
	if req.Server == "" {
		return resp, service.Errorf(wire.CodeBadRequest, "missing server")
	}
	if s.cfg.Incremental {
		if err := ctx.Err(); err != nil {
			return resp, err
		}
		var (
			served bool
			ierr   error
		)
		s.cfg.Store.ViewAccumulator(req.Server, func(acc store.Accumulator, _ uint64) {
			sa, ok := acc.(*core.ServerAccumulator)
			if !ok {
				return // foreign accumulator installed on the store; fall back
			}
			served = true
			accept, a, err := sa.Accept(req.Threshold)
			if err != nil {
				ierr = service.Errorf(wire.CodeAssessmentFailed, "%v", err)
				return
			}
			resp = wire.AssessResponse{Assessment: a, Accept: accept, Incremental: true}
		})
		if served {
			if ierr != nil {
				return wire.AssessResponse{}, ierr
			}
			s.nIncremental.Add(1)
			return resp, nil
		}
	}
	h, version, err := s.residentSnapshot(ctx, req.Server)
	if err != nil {
		return resp, err
	}
	if h.Len() == 0 {
		return resp, service.Errorf(wire.CodeUnknownServer, "no records for %q", req.Server)
	}
	if s.cfg.Incremental {
		s.nFallback.Add(1)
	}
	if s.cache != nil {
		if res, ok := s.cache.Get(req.Server, version, req.Threshold); ok {
			return wire.AssessResponse{Assessment: res.Assessment, Accept: res.Accept, Cached: true}, nil
		}
	}
	// The two-phase computation is the expensive part; don't start it for a
	// request whose deadline already expired.
	if err := ctx.Err(); err != nil {
		return resp, err
	}
	accept, a, err := s.cfg.Assessor.Accept(h, req.Threshold)
	if err != nil {
		return resp, service.Errorf(wire.CodeAssessmentFailed, "%v", err)
	}
	if s.cache != nil {
		s.cache.Put(req.Server, version, req.Threshold, assesscache.Result{Assessment: a, Accept: accept})
	}
	return wire.AssessResponse{Assessment: a, Accept: accept}, nil
}

// Seed loads records into the store directly (bypassing the network), for
// bootstrapping servers from a ledger file.
func (s *Server) Seed(recs []feedback.Feedback) (int, error) {
	return s.cfg.Store.AddAll(recs)
}
