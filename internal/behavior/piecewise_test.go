package behavior

import (
	"errors"
	"strings"
	"testing"
	"time"

	"honestplayer/internal/feedback"
	"honestplayer/internal/stats"
)

// driftingHistory builds an honest history whose quality drifts linearly
// from pStart to pEnd over n transactions.
func driftingHistory(t *testing.T, rng *stats.RNG, n int, pStart, pEnd float64) *feedback.History {
	t.Helper()
	h := feedback.NewHistory("s")
	for i := 0; i < n; i++ {
		p := pStart + (pEnd-pStart)*float64(i)/float64(n-1)
		if err := h.AppendOutcome("c", rng.Bernoulli(p), time.Unix(int64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func TestNewPiecewiseValidation(t *testing.T) {
	if _, err := NewPiecewise(testConfig(), 30); !errors.Is(err, ErrBadConfig) {
		t.Errorf("segment below MinWindows*m: %v", err)
	}
	if _, err := NewPiecewise(Config{WindowSize: 10, Stride: 7}, 100); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad base config: %v", err)
	}
	p, err := NewPiecewise(testConfig(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if p.SegmentLen() != 100 {
		t.Errorf("SegmentLen = %d", p.SegmentLen())
	}
	if !strings.Contains(p.Name(), "100") {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestPiecewiseInsufficient(t *testing.T) {
	p, err := NewPiecewise(testConfig(), 100)
	if err != nil {
		t.Fatal(err)
	}
	h := honestHistory(t, stats.NewRNG(1), 80, 0.9)
	if _, err := p.Test(h); !errors.Is(err, ErrInsufficientHistory) {
		t.Errorf("short history: %v", err)
	}
}

func TestPiecewiseAcceptsDriftingHonest(t *testing.T) {
	// Quality drifts 0.98 -> 0.50 over 1200 transactions. The static
	// single test sees a mixture (often flagged); the piecewise test sees
	// nearly-stationary 120-transaction segments and passes.
	single, err := NewSingle(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	piecewise, err := NewPiecewise(testConfig(), 120)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(83)
	staticFlagged, piecewisePassed := 0, 0
	const trials = 25
	for trial := 0; trial < trials; trial++ {
		h := driftingHistory(t, rng, 1200, 0.98, 0.50)
		vs, err := single.Test(h)
		if err != nil {
			t.Fatal(err)
		}
		if !vs.Honest {
			staticFlagged++
		}
		vp, err := piecewise.Test(h)
		if err != nil {
			t.Fatal(err)
		}
		if vp.Honest {
			piecewisePassed++
		}
	}
	if staticFlagged < trials/2 {
		t.Fatalf("static test flagged only %d/%d drifting players; drift too mild for the scenario", staticFlagged, trials)
	}
	if piecewisePassed < trials*6/10 {
		t.Fatalf("piecewise passed only %d/%d drifting honest players", piecewisePassed, trials)
	}
}

func TestPiecewiseStillDetectsPeriodicAttack(t *testing.T) {
	piecewise, err := NewPiecewise(testConfig(), 120)
	if err != nil {
		t.Fatal(err)
	}
	h := periodicHistory(t, 1200, 10, 1)
	v, err := piecewise.Test(h)
	if err != nil {
		t.Fatal(err)
	}
	if v.Honest {
		t.Fatal("deterministic periodic attacker passed the piecewise test")
	}
}

func TestPiecewiseSegmentCountAndOrder(t *testing.T) {
	piecewise, err := NewPiecewise(testConfig(), 100)
	if err != nil {
		t.Fatal(err)
	}
	h := honestHistory(t, stats.NewRNG(89), 350, 0.9)
	v, err := piecewise.Test(h)
	if err != nil {
		t.Fatal(err)
	}
	// 350/100 = 3 segments; the oldest 50 transactions are not covered.
	if len(v.Suffixes) != 3 {
		t.Fatalf("segments = %d, want 3", len(v.Suffixes))
	}
	for i, s := range v.Suffixes {
		if s.Transactions != 100 {
			t.Fatalf("segment %d transactions = %d", i, s.Transactions)
		}
		if s.Windows != 10 {
			t.Fatalf("segment %d windows = %d", i, s.Windows)
		}
	}
}
