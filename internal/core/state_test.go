package core

import (
	"strings"
	"testing"

	"honestplayer/internal/behavior"
	"honestplayer/internal/stats"
	"honestplayer/internal/trust"
)

// TestServerAccumulatorStateRoundTrip freezes the incremental state at
// several prefix lengths, restores through a fresh assessor with the same
// configuration, and checks the restored accumulator assesses bit-identically
// now and after both consume the rest of the history.
func TestServerAccumulatorStateRoundTrip(t *testing.T) {
	cal := stats.NewCalibrator(stats.CalibrationConfig{Replicates: 120, Seed: 7}, 0)
	cfg := behavior.Config{WindowSize: 5, MinWindows: 2, Stride: 10, Calibrator: cal}
	multi, err := behavior.NewMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	coll, err := behavior.NewCollusionMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := trust.NewWeighted(0.4)
	if err != nil {
		t.Fatal(err)
	}
	testers := map[string]behavior.Tester{"multi": multi, "collusion-multi": coll, "none": nil}
	funcs := map[string]trust.Func{"average": trust.Average{}, "weighted": weighted}
	full := genHistory(t, "srv-state", 70, 0.85, 4, stats.NewRNG(41))

	for testerName, tester := range testers {
		for fnName, fn := range funcs {
			label := testerName + "+" + fnName
			tp, err := NewTwoPhase(tester, fn)
			if err != nil {
				t.Fatal(err)
			}
			if !tp.SupportsIncrementalState() {
				t.Fatalf("%s: SupportsIncrementalState = false", label)
			}
			for cut := 0; cut <= full.Len(); cut += 17 {
				sa, err := tp.NewServerAccumulator(full.Server())
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < cut; i++ {
					sa.Append(full.At(i))
				}
				blob, ok := sa.AppendState(nil)
				if !ok {
					t.Fatalf("%s: AppendState not supported", label)
				}
				// Restore through a separately-built assessor, as a rebooting
				// node would.
				tp2, err := NewTwoPhase(tester, fn)
				if err != nil {
					t.Fatal(err)
				}
				restored, n, err := tp2.RestoreServerAccumulator(full.Server(), blob)
				if err != nil {
					t.Fatalf("%s cut %d: restore: %v", label, cut, err)
				}
				if n != cut {
					t.Fatalf("%s cut %d: restored n = %d", label, cut, n)
				}
				gotA, gotErr := restored.Assess()
				wantA, wantErr := sa.Assess()
				requireSameAssessment(t, label+"/restored", cut, gotA, gotErr, wantA, wantErr)
				for i := cut; i < full.Len(); i++ {
					sa.Append(full.At(i))
					restored.Append(full.At(i))
				}
				gotA, gotErr = restored.Assess()
				wantA, wantErr = sa.Assess()
				requireSameAssessment(t, label+"/caught-up", full.Len(), gotA, gotErr, wantA, wantErr)
			}
		}
	}
}

// TestRestoreServerAccumulatorRejectsMismatch checks that blobs restore only
// into assessors with matching component names.
func TestRestoreServerAccumulatorRejectsMismatch(t *testing.T) {
	cal := stats.NewCalibrator(stats.CalibrationConfig{Replicates: 120, Seed: 8}, 0)
	multi, err := behavior.NewMulti(behavior.Config{WindowSize: 5, MinWindows: 2, Stride: 10, Calibrator: cal})
	if err != nil {
		t.Fatal(err)
	}
	tp, err := NewTwoPhase(multi, trust.Average{})
	if err != nil {
		t.Fatal(err)
	}
	sa, err := tp.NewServerAccumulator("srv")
	if err != nil {
		t.Fatal(err)
	}
	full := genHistory(t, "srv", 40, 0.8, 3, stats.NewRNG(42))
	for i := 0; i < full.Len(); i++ {
		sa.Append(full.At(i))
	}
	blob, _ := sa.AppendState(nil)

	weighted, err := trust.NewWeighted(0.4)
	if err != nil {
		t.Fatal(err)
	}
	wrongFn, err := NewTwoPhase(multi, weighted)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := wrongFn.RestoreServerAccumulator("srv", blob); err == nil ||
		!strings.Contains(err.Error(), "trust function") {
		t.Fatalf("trust-function mismatch not rejected: %v", err)
	}
	noTester, err := NewTwoPhase(nil, trust.Average{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := noTester.RestoreServerAccumulator("srv", blob); err == nil ||
		!strings.Contains(err.Error(), "tester") {
		t.Fatalf("tester mismatch not rejected: %v", err)
	}
	// Truncations never panic and never restore silently.
	for cut := 0; cut < len(blob); cut++ {
		if _, _, err := tp.RestoreServerAccumulator("srv", blob[:cut]); err == nil {
			t.Fatalf("truncated blob (%d of %d bytes) accepted", cut, len(blob))
		}
	}
}
