// Package repclient is the client library for the reputation server: it
// submits feedback, fetches histories, and requests two-phase trust
// assessments over the wire protocol.
package repclient

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"honestplayer/internal/feedback"
	"honestplayer/internal/wire"
)

// DefaultTimeout bounds each request round trip.
const DefaultTimeout = 5 * time.Second

// ErrClosed reports use of a closed client.
var ErrClosed = errors.New("repclient: client closed")

// Client is a synchronous reputation-server client. It is safe for
// concurrent use; requests are serialised over one connection.
type Client struct {
	addr    string
	timeout time.Duration

	mu     sync.Mutex
	conn   net.Conn
	reader *bufio.Reader
	nextID uint64
	closed bool
}

// Option configures a Client.
type Option func(*Client)

// WithTimeout overrides the per-request timeout.
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.timeout = d }
}

// Dial connects to a reputation server.
func Dial(addr string, opts ...Option) (*Client, error) {
	c := &Client{addr: addr, timeout: DefaultTimeout}
	for _, o := range opts {
		o(c)
	}
	conn, err := net.DialTimeout("tcp", addr, c.timeout)
	if err != nil {
		return nil, fmt.Errorf("repclient: dial %s: %w", addr, err)
	}
	c.conn = conn
	c.reader = bufio.NewReader(conn)
	return c, nil
}

// Close releases the connection. It is idempotent.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}

// roundTrip sends one request and decodes the matching response into out
// (skipped when out is nil). A TypeError response is returned as a
// *wire.ErrorResponse error.
func (c *Client) roundTrip(reqType, respType wire.MsgType, payload, out any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.nextID++
	id := c.nextID
	env, err := wire.Encode(reqType, id, payload)
	if err != nil {
		return err
	}
	deadline := time.Now().Add(c.timeout)
	if err := c.conn.SetDeadline(deadline); err != nil {
		return fmt.Errorf("repclient: set deadline: %w", err)
	}
	if err := wire.Write(c.conn, env); err != nil {
		return err
	}
	resp, err := wire.Read(c.reader)
	if err != nil {
		return fmt.Errorf("repclient: read response: %w", err)
	}
	if resp.ID != id {
		return fmt.Errorf("repclient: response id %d for request %d", resp.ID, id)
	}
	if resp.Type == wire.TypeError {
		var e wire.ErrorResponse
		if err := wire.DecodePayload(resp, &e); err != nil {
			return err
		}
		return &e
	}
	if resp.Type != respType {
		return fmt.Errorf("repclient: unexpected response type %s", resp.Type)
	}
	if out == nil {
		return nil
	}
	return wire.DecodePayload(resp, out)
}

// Ping checks connectivity.
func (c *Client) Ping() error {
	return c.roundTrip(wire.TypePing, wire.TypePong, nil, nil)
}

// Submit stores one feedback record; it reports whether the record was new.
func (c *Client) Submit(f feedback.Feedback) (bool, error) {
	var resp wire.SubmitResponse
	if err := c.roundTrip(wire.TypeSubmit, wire.TypeSubmitR, wire.SubmitRequest{Feedback: f}, &resp); err != nil {
		return false, err
	}
	return resp.Stored, nil
}

// SubmitBatchReport stores many records in one round trip and returns the
// server's per-record report. Invalid records do not abort the batch: every
// valid record is stored and each rejected one is listed with its request
// index and reason.
func (c *Client) SubmitBatchReport(recs []feedback.Feedback) (wire.BatchResponse, error) {
	var resp wire.BatchResponse
	err := c.roundTrip(wire.TypeBatch, wire.TypeBatchR, wire.BatchRequest{Records: recs}, &resp)
	return resp, err
}

// SubmitBatch stores many records in one round trip, reporting how many
// were new and how many duplicates. When the server rejected records, the
// counts are returned together with an error naming the first rejection.
func (c *Client) SubmitBatch(recs []feedback.Feedback) (stored, duplicates int, err error) {
	resp, err := c.SubmitBatchReport(recs)
	if err != nil {
		return 0, 0, err
	}
	if len(resp.Rejected) > 0 {
		r := resp.Rejected[0]
		return resp.Stored, resp.Duplicates, fmt.Errorf(
			"repclient: batch rejected %d of %d records (first: record %d: %s)",
			len(resp.Rejected), len(recs), r.Index, r.Reason)
	}
	return resp.Stored, resp.Duplicates, nil
}

// History fetches up to limit most recent records of a server (0 = server
// default), along with the full history length.
func (c *Client) History(server feedback.EntityID, limit int) ([]feedback.Feedback, int, error) {
	var resp wire.HistoryResponse
	req := wire.HistoryRequest{Server: server, Limit: limit}
	if err := c.roundTrip(wire.TypeHistory, wire.TypeHistoryR, req, &resp); err != nil {
		return nil, 0, err
	}
	return resp.Records, resp.Total, nil
}

// Assess runs a server-side two-phase assessment and accept decision.
func (c *Client) Assess(server feedback.EntityID, threshold float64) (wire.AssessResponse, error) {
	var resp wire.AssessResponse
	req := wire.AssessRequest{Server: server, Threshold: threshold}
	err := c.roundTrip(wire.TypeAssess, wire.TypeAssessR, req, &resp)
	return resp, err
}
