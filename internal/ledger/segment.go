package ledger

// Binary segment codec. A segment file is either a legacy JSON-lines file
// (one wire-compatible record per line, no header — the PR-7 single-file
// format, recognised by its first byte) or a binary segment:
//
//	header:  8 bytes  {0xB5, 'H','P','S','E','G','1', 0x00}
//	record:  uvarint payload length
//	         payload        — feedback.AppendBinary encoding
//	         crc32c         — 4 bytes little-endian, over the payload
//	footer:  0x00            — cannot start a record (payloads are never empty)
//	         "HPSEGFTR"      — 8 bytes
//	         record count    — 8 bytes little-endian
//	         body length     — 8 bytes little-endian (header end → footer start)
//	         crc chain       — 4 bytes little-endian (running crc32c over all
//	                           payloads, seeded 0, chained record to record)
//	         footer crc      — 4 bytes little-endian crc32c of the 29 footer
//	                           bytes above
//	         "HPSEGEND"      — 8 bytes
//
// Only sealed segments carry a footer; the active (highest-numbered) segment
// ends after its last record. Any corruption — a bad per-record checksum, a
// broken chain, a torn tail — degrades to the longest intact record prefix,
// which scanSegment reports without ever failing on malformed input.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"

	"honestplayer/internal/feedback"
)

var (
	segMagic     = [8]byte{0xB5, 'H', 'P', 'S', 'E', 'G', '1', 0x00}
	footerMark   = "HPSEGFTR"
	footerEnd    = "HPSEGEND"
	castagnoli   = crc32.MakeTable(crc32.Castagnoli)
	maxRecordLen = uint64(8 + 1 + 2 + 1024 + 2 + 1024) // feedback binary ceiling
)

// footerSize is the byte length of a sealed segment's footer.
const footerSize = 1 + 8 + 8 + 8 + 4 + 4 + 8

// segKind classifies a segment file's encoding.
type segKind int

const (
	segBinary segKind = iota
	segJSON
)

// sniffKind classifies a segment by its first byte: binary segments always
// start with the magic byte 0xB5, which no JSON-lines file can (JSON is
// ASCII). Empty files are binary (a fresh segment before its header lands).
func sniffKind(first []byte) segKind {
	if len(first) == 0 || first[0] == segMagic[0] {
		return segBinary
	}
	return segJSON
}

// appendRecord appends one binary record (length, payload, crc) to buf and
// returns the extended buffer plus the new chain value.
func appendRecord(buf []byte, f feedback.Feedback, chain uint32) ([]byte, uint32, error) {
	payload, err := feedback.AppendBinary(nil, f)
	if err != nil {
		return buf, chain, err
	}
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	crc := crc32.Checksum(payload, castagnoli)
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	return buf, crc32.Update(chain, castagnoli, payload), nil
}

// appendFooter appends a sealed-segment footer to buf.
func appendFooter(buf []byte, count uint64, bodyLen uint64, chain uint32) []byte {
	start := len(buf)
	buf = append(buf, 0x00)
	buf = append(buf, footerMark...)
	buf = binary.LittleEndian.AppendUint64(buf, count)
	buf = binary.LittleEndian.AppendUint64(buf, bodyLen)
	buf = binary.LittleEndian.AppendUint32(buf, chain)
	crc := crc32.Checksum(buf[start:], castagnoli)
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	return append(buf, footerEnd...)
}

// segScan is the result of scanning one segment file.
type segScan struct {
	kind    segKind
	records uint64 // intact records
	intact  int64  // byte offset of the end of the last intact record
	size    int64  // file size as scanned
	sealed  bool   // a valid footer covers exactly the intact prefix
	chain   uint32 // crc chain over the intact prefix (binary segments)
	// truncated reports bytes past the intact prefix (0 for sealed segments).
	truncated int64
}

// scanSegment decodes a segment file's full contents, invoking emit for every
// intact record in order, and reports how far the file is intact. It never
// returns an error for malformed content — corruption only shortens the
// intact prefix — but does propagate emit's error, aborting the scan.
func scanSegment(data []byte, emit func(feedback.Feedback) error) (segScan, error) {
	if sniffKind(data) == segJSON {
		return scanJSONSegment(data, emit)
	}
	sc := segScan{kind: segBinary, size: int64(len(data))}
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != string(segMagic[:]) {
		// Missing or torn header: nothing intact.
		sc.truncated = sc.size
		return sc, nil
	}
	off := int64(len(segMagic))
	sc.intact = off
	rest := data[off:]
	for len(rest) > 0 {
		if rest[0] == 0x00 {
			// Footer candidate.
			if fc, ok := parseFooter(rest); ok &&
				fc.count == sc.records && fc.chain == sc.chain &&
				fc.bodyLen == uint64(sc.intact)-uint64(len(segMagic)) &&
				int64(len(rest)) == footerSize {
				sc.sealed = true
				sc.intact += footerSize
				return sc, nil
			}
			break
		}
		plen, n := binary.Uvarint(rest)
		if n <= 0 || plen == 0 || plen > maxRecordLen {
			break
		}
		if uint64(len(rest)) < uint64(n)+plen+4 {
			break // torn tail
		}
		payload := rest[n : uint64(n)+plen]
		crc := binary.LittleEndian.Uint32(rest[uint64(n)+plen:])
		if crc32.Checksum(payload, castagnoli) != crc {
			break
		}
		f, leftover, err := feedback.DecodeBinary(payload)
		if err != nil || len(leftover) != 0 {
			break
		}
		if emit != nil {
			if err := emit(f); err != nil {
				return sc, err
			}
		}
		sc.records++
		sc.chain = crc32.Update(sc.chain, castagnoli, payload)
		step := int64(n) + int64(plen) + 4
		sc.intact += step
		rest = rest[step:]
	}
	sc.truncated = sc.size - sc.intact
	return sc, nil
}

// footerContent is a parsed footer's payload.
type footerContent struct {
	count   uint64
	bodyLen uint64
	chain   uint32
}

// parseFooter checks whether buf starts with a checksum-valid footer.
func parseFooter(buf []byte) (footerContent, bool) {
	var fc footerContent
	if len(buf) < footerSize {
		return fc, false
	}
	if string(buf[1:9]) != footerMark || string(buf[footerSize-8:footerSize]) != footerEnd {
		return fc, false
	}
	want := binary.LittleEndian.Uint32(buf[29:33])
	if crc32.Checksum(buf[:29], castagnoli) != want {
		return fc, false
	}
	fc.count = binary.LittleEndian.Uint64(buf[9:17])
	fc.bodyLen = binary.LittleEndian.Uint64(buf[17:25])
	fc.chain = binary.LittleEndian.Uint32(buf[25:29])
	return fc, true
}

// scanJSONSegment replays a legacy JSON-lines segment: records until the
// first torn or corrupt line, blank lines skipped. Mirrors the PR-7 replay
// semantics exactly.
func scanJSONSegment(data []byte, emit func(feedback.Feedback) error) (segScan, error) {
	sc := segScan{kind: segJSON, size: int64(len(data))}
	for int64(len(data)) > sc.intact {
		rest := data[sc.intact:]
		nl := int64(-1)
		for i, b := range rest {
			if b == '\n' {
				nl = int64(i)
				break
			}
		}
		if nl < 0 {
			break // torn final line
		}
		line := trimSpaceBytes(rest[:nl])
		if len(line) != 0 {
			f, ok := decodeJSONRecord(line)
			if !ok {
				break
			}
			if emit != nil {
				if err := emit(f); err != nil {
					return sc, err
				}
			}
			sc.records++
		}
		sc.intact += nl + 1
	}
	sc.truncated = sc.size - sc.intact
	return sc, nil
}

// encodeJSONRecord marshals one record in the legacy JSON-lines encoding.
func encodeJSONRecord(rec feedback.Feedback) ([]byte, error) {
	return json.Marshal(rec)
}

// decodeJSONRecord unmarshals and validates one JSON line.
func decodeJSONRecord(line []byte) (feedback.Feedback, bool) {
	var f feedback.Feedback
	if err := json.Unmarshal(line, &f); err != nil {
		return f, false
	}
	if err := f.Validate(); err != nil {
		return f, false
	}
	return f, true
}

func trimSpaceBytes(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\r') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	return b
}

// segmentName formats the file name of segment index i.
func segmentName(i uint64) string { return fmt.Sprintf("ledger.%06d", i) }

// parseSegmentName extracts the index from a segment file name.
func parseSegmentName(name string) (uint64, bool) {
	var i uint64
	if _, err := fmt.Sscanf(name, "ledger.%d", &i); err != nil || i == 0 {
		return 0, false
	}
	if name != segmentName(i) {
		return 0, false
	}
	return i, true
}

// readSegmentFile loads a whole segment into memory. Segments are bounded by
// the roll-over threshold, so this is at most segment-bytes plus one record.
func readSegmentFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ledger: read segment %s: %w", path, err)
	}
	return data, nil
}
