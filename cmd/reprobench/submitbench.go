package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"time"

	"honestplayer/internal/feedback"
	"honestplayer/internal/ledger"
	"honestplayer/internal/repclient"
	"honestplayer/internal/repserver"
	"honestplayer/internal/wire"
)

// The submit benchmark compares the two ways clients can feed feedback into a
// ledger-backed node:
//
//   - single: one client, one connection, one submit round-trip per record —
//     every record pays a full round-trip, an envelope, and its own ledger
//     append with its own Flush.
//   - batch: eight concurrent clients, each shipping its stripe of the same
//     workload as submit.batch frames of 256 records. The server applies each
//     frame shard-grouped under one lock acquisition per shard, and the
//     ledger's group commit coalesces concurrent frames into single
//     encode+write+flush cycles.
//
// Both strategies run against their own fresh server on a temp-dir ledger
// (the same PersistentStore wiring trustd -ledger uses), so the comparison
// exercises the full wire → server → store → ledger write path. The
// differential check reloads nothing and trusts no counter: after each pass
// the batch server's resulting store state (every server's record history)
// must reflect.DeepEqual the sequential server's. Run in both engines —
// trust-only (no accumulators) and incremental (per-server accumulators fed
// record-by-record) — because the incremental path is where out-of-order or
// double-applied records would surface as diverging state. The coalesced
// flush counter of the batch server must be non-zero, proving the group
// commit path (not N degenerate single-record groups) carried the load.

// submitEngineResult is the outcome for one engine configuration. The ns
// figures are per record; throughput is records per second, and speedup is
// the throughput ratio batch/single.
type submitEngineResult struct {
	Engine            string  `json:"engine"`
	Records           int     `json:"records"`
	Servers           int     `json:"servers"`
	Clients           int     `json:"clients"`
	BatchSize         int     `json:"batch_size"`
	SingleNsPerRecord float64 `json:"single_ns_per_record"`
	BatchNsPerRecord  float64 `json:"batch_ns_per_record"`
	SingleRecsPerSec  float64 `json:"single_recs_per_sec"`
	BatchRecsPerSec   float64 `json:"batch_recs_per_sec"`
	Speedup           float64 `json:"speedup"`
	StateMatch        bool    `json:"state_match"`
	GroupFlushes      uint64  `json:"group_flushes"`
	CoalescedFlushes  uint64  `json:"coalesced_flushes"`
	GroupSizeP50      uint64  `json:"group_size_p50"`
	GroupSizeP99      uint64  `json:"group_size_p99"`
}

// submitBenchReport is the JSON document the -submitbench mode emits.
type submitBenchReport struct {
	Description string               `json:"description"`
	Command     string               `json:"command"`
	Environment map[string]any       `json:"environment"`
	Config      map[string]any       `json:"config"`
	Engines     []submitEngineResult `json:"engines"`
	Acceptance  string               `json:"acceptance"`
}

// submitRecord is record i of a pass: strictly increasing timestamps keep
// every record content-unique, servers are assigned round-robin, and the
// rating pattern mixes positives and negatives so incremental accumulators
// carry non-trivial state.
func submitRecord(i, servers int, base int64) feedback.Feedback {
	r := feedback.Positive
	if i%5 == 4 {
		r = feedback.Negative
	}
	return feedback.Feedback{
		Time:   time.Unix(base+int64(i), 0).UTC(),
		Server: feedback.EntityID(fmt.Sprintf("s%04d", i%servers)),
		Client: feedback.EntityID(fmt.Sprintf("c%02d", i%23)),
		Rating: r,
	}
}

// submitNode is one server under test: a repserver on a fresh temp-dir
// ledger-backed store.
type submitNode struct {
	dir string
	ps  *ledger.PersistentStore
	srv *repserver.Server
}

func startSubmitNode(incremental bool) (*submitNode, error) {
	dir, err := os.MkdirTemp("", "submitbench-*")
	if err != nil {
		return nil, err
	}
	opts, tp, err := memOptions(0, 64, incremental)
	if err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	ps, err := ledger.OpenStoreOptions(context.Background(), dir, opts)
	if err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	srv, err := repserver.New("127.0.0.1:0", repserver.Config{
		Assessor: tp, Store: ps.Store(), Recorder: ps, Incremental: incremental,
	})
	if err != nil {
		ps.Close()
		os.RemoveAll(dir)
		return nil, err
	}
	srv.Start()
	return &submitNode{dir: dir, ps: ps, srv: srv}, nil
}

func (n *submitNode) close() {
	n.srv.Close()
	n.ps.Close()
	os.RemoveAll(n.dir)
}

// storeFingerprint captures the full per-server record state of a store:
// every known server mapped to its complete (time-ordered) history.
func storeFingerprint(n *submitNode) map[feedback.EntityID][]feedback.Feedback {
	st := n.ps.Store()
	fp := make(map[feedback.EntityID][]feedback.Feedback)
	for _, sv := range st.Servers() {
		fp[sv] = st.Records(sv)
	}
	return fp
}

// submitSequential submits every record one round-trip at a time over a
// single connection and returns the elapsed wall time.
func submitSequential(n *submitNode, recs []feedback.Feedback) (time.Duration, error) {
	client, err := repclient.Dial(n.srv.Addr(), repclient.WithTimeout(30*time.Second))
	if err != nil {
		return 0, err
	}
	defer func() { _ = client.Close() }()
	start := time.Now()
	for i := range recs {
		stored, err := client.Submit(recs[i])
		if err != nil {
			return 0, fmt.Errorf("record %d: %w", i, err)
		}
		if !stored {
			return 0, fmt.Errorf("record %d: unexpected duplicate", i)
		}
	}
	return time.Since(start), nil
}

// submitStripes partitions the workload by server ownership: stripe c holds,
// in time order, every record whose server hashes to client c. Each client is
// the sole writer for its servers — the natural shape of per-source ingesters
// — so per-server arrival order stays time-ordered in both strategies and the
// comparison measures the write path, not out-of-order insertion penalties.
func submitStripes(recs []feedback.Feedback, servers, clients int) [][]feedback.Feedback {
	stripes := make([][]feedback.Feedback, clients)
	for i := range recs {
		c := (i % servers) % clients
		stripes[c] = append(stripes[c], recs[i])
	}
	return stripes
}

// submitConcurrentBatches submits the per-client stripes concurrently, each
// client shipping submit.batch frames of batchSize records over its own
// connection. Returns elapsed wall time.
func submitConcurrentBatches(n *submitNode, stripes [][]feedback.Feedback, batchSize int) (time.Duration, error) {
	conns := make([]*repclient.Client, len(stripes))
	for i := range conns {
		c, err := repclient.Dial(n.srv.Addr(), repclient.WithTimeout(30*time.Second))
		if err != nil {
			return 0, err
		}
		conns[i] = c
		defer func() { _ = c.Close() }()
	}
	errs := make([]error, len(stripes))
	var wg sync.WaitGroup
	start := time.Now()
	for i, stripe := range stripes {
		if len(stripe) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, stripe []feedback.Feedback) {
			defer wg.Done()
			for off := 0; off < len(stripe); off += batchSize {
				chunk := stripe[off:min(off+batchSize, len(stripe))]
				resp, err := conns[i].SubmitBatchReport(chunk)
				if err != nil {
					errs[i] = fmt.Errorf("client %d: %w", i, err)
					return
				}
				if resp.Stored != len(chunk) {
					errs[i] = fmt.Errorf("client %d: stored %d of %d (duplicates=%d rejected=%d)",
						i, resp.Stored, len(chunk), resp.Duplicates, len(resp.Rejected))
					return
				}
			}
		}(i, stripe)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return elapsed, nil
}

// submitMeasure runs both strategies for one engine over fresh servers per
// pass and returns the median-pass timings plus the differential check and
// the batch server's group-commit counters from the final pass.
func submitMeasure(engine string, incremental bool, records, servers, clients, batchSize, passes int) (submitEngineResult, error) {
	res := submitEngineResult{
		Engine: engine, Records: records, Servers: servers,
		Clients: clients, BatchSize: batchSize, StateMatch: true,
	}
	singleNs := make([]float64, 0, passes)
	batchNs := make([]float64, 0, passes)
	for p := 0; p < passes; p++ {
		// Fresh servers and a disjoint record range per pass: submits are
		// writes, so a repeat over the same state would dedup to nothing.
		recs := make([]feedback.Feedback, records)
		base := int64(1<<32) + int64(p)*int64(records)
		for i := range recs {
			recs[i] = submitRecord(i, servers, base)
		}
		seqNode, err := startSubmitNode(incremental)
		if err != nil {
			return res, err
		}
		batchNode, err := startSubmitNode(incremental)
		if err != nil {
			seqNode.close()
			return res, err
		}
		sElapsed, err := submitSequential(seqNode, recs)
		if err == nil {
			var bElapsed time.Duration
			bElapsed, err = submitConcurrentBatches(batchNode, submitStripes(recs, servers, clients), batchSize)
			if err == nil {
				singleNs = append(singleNs, float64(sElapsed.Nanoseconds())/float64(records))
				batchNs = append(batchNs, float64(bElapsed.Nanoseconds())/float64(records))
				if !reflect.DeepEqual(storeFingerprint(seqNode), storeFingerprint(batchNode)) {
					res.StateMatch = false
				}
				gc := batchNode.ps.Stats().GroupCommit
				res.GroupFlushes = gc.Flushes
				res.CoalescedFlushes = gc.Coalesced
				res.GroupSizeP50 = gc.SizeP50
				res.GroupSizeP99 = gc.SizeP99
			}
		}
		seqNode.close()
		batchNode.close()
		if err != nil {
			return res, fmt.Errorf("pass %d: %w", p, err)
		}
	}
	sort.Float64s(singleNs)
	sort.Float64s(batchNs)
	res.SingleNsPerRecord = singleNs[len(singleNs)/2]
	res.BatchNsPerRecord = batchNs[len(batchNs)/2]
	res.SingleRecsPerSec = trunc2(1e9 / res.SingleNsPerRecord)
	res.BatchRecsPerSec = trunc2(1e9 / res.BatchNsPerRecord)
	res.Speedup = trunc2(res.SingleNsPerRecord / res.BatchNsPerRecord)
	return res, nil
}

func trunc2(v float64) float64 { return float64(int(v*100)) / 100 }

// runSubmitBench executes the group-commit write-path comparison in both
// engines and writes the JSON report. A diverging store state or a zero
// coalesced-flush counter always fails; with minSpeedup > 0 every engine must
// additionally reach that throughput speedup — the CI smoke gate.
func runSubmitBench(out io.Writer, quick bool, minSpeedup float64) error {
	const (
		clients   = 8
		batchSize = wire.MaxSubmitBatch
		servers   = 64
	)
	records, passes := 8192, 3
	if quick {
		records, passes = 2048, 1
	}
	report := submitBenchReport{
		Description: "Sustained submit throughput of the group-commit write path: 8 concurrent clients — each the sole writer for a disjoint slice of the server population, submission per server time-ordered in both strategies — shipping submit.batch frames of 256 records vs one client submitting the same workload one record per round-trip, both against a fresh ledger-backed server (temp-dir segmented log, the trustd -ledger wiring). The batched path amortises round-trips, applies each frame shard-grouped under one lock acquisition per shard, and coalesces concurrent frames in the ledger's group commit — one encode+write+flush per group instead of one per record. After every pass the batch server's full per-server record state must deep-equal the sequential server's (both engines), and the batch server's coalesced-flush counter must be non-zero; the median of the timed passes is reported per strategy.",
		Command:     "go run ./cmd/reprobench -submitbench",
		Environment: map[string]any{
			"go":         runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"date":       time.Now().UTC().Format("2006-01-02"),
		},
		Config: map[string]any{
			"records":             records,
			"servers":             servers,
			"clients":             clients,
			"batch_size":          batchSize,
			"ledger":              "segmented, temp dir, snapshots off",
			"trust":               "average",
			"tester":              "none (trust-only two-phase)",
			"passes_per_strategy": passes,
		},
		Acceptance: "speedup must be >= 3 in both engines with state_match true and coalesced_flushes > 0",
	}
	for _, eng := range []struct {
		name        string
		incremental bool
	}{
		{"trust-only", false},
		{"incremental", true},
	} {
		res, err := submitMeasure(eng.name, eng.incremental, records, servers, clients, batchSize, passes)
		if err != nil {
			return fmt.Errorf("%s: %w", eng.name, err)
		}
		report.Engines = append(report.Engines, res)
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	for _, res := range report.Engines {
		if !res.StateMatch {
			return fmt.Errorf("%s: batched store state diverges from sequential", res.Engine)
		}
		if res.CoalescedFlushes == 0 {
			return fmt.Errorf("%s: no coalesced flushes — group commit path not exercised", res.Engine)
		}
		if minSpeedup > 0 && res.Speedup < minSpeedup {
			return fmt.Errorf("%s: speedup %.2f below required %.2f", res.Engine, res.Speedup, minSpeedup)
		}
	}
	return nil
}
