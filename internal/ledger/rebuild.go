package ledger

// Rebuild-on-demand: reconstructing one evicted server's resident state
// without replaying the whole ledger. The sources are (a) the newest
// published snapshot, read by per-server byte range through the section
// index kept since boot or the last snapshot write, and (b) the tail index —
// an in-memory per-server map of every record appended since the segment the
// snapshot covers. Records from both sources are deduplicated by content
// hash (the snapshot scan and the tail overlap by design, exactly like boot)
// and sorted into store order; store.ReinstateServer then verifies the
// result against the evicted stub's count and XOR digest before swapping it
// in, so a corrupt section read or a lost record can never silently resurface
// as wrong state — it surfaces as a rebuild error.
//
// The tail index rotates with snapshots: sealForSnapshot moves it to the
// pending generation (the records the in-flight snapshot will cover), a
// successful publish drops pending, and a failed one leaves pending in place
// to be merged into the next attempt. A rebuild always reads snapshot ∪
// pending ∪ tail, so it is correct in every phase of that cycle.
//
// The pin guard closes the store-first/ledger-second write race: a server is
// pinned from before its record enters the store until the record is both in
// the ledger and in the tail index, and the store's eviction sweep skips
// pinned servers — so a stub's records are always fully reconstructable.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"honestplayer/internal/feedback"
	"honestplayer/internal/store"
)

// ErrNoRebuild reports a RebuildServer call on a deployment without the
// lifecycle machinery (Options.MemBudget unset).
var ErrNoRebuild = errors.New("ledger: rebuild-on-demand not enabled")

// secRange is one server's byte range inside a snapshot file, starting at
// its id-length uvarint and ending after its accumulator state.
type secRange struct{ off, end int64 }

// snapIndex locates every server section of the newest published snapshot.
type snapIndex struct {
	path     string
	sections map[string]secRange
}

// pin marks a server's write as in flight: the eviction sweep must not evict
// it until the record is durable and tail-indexed.
func (ps *PersistentStore) pin(id feedback.EntityID) {
	ps.pinMu.Lock()
	if ps.pinned == nil {
		ps.pinned = make(map[string]int)
	}
	ps.pinned[string(id)]++
	ps.pinMu.Unlock()
}

func (ps *PersistentStore) unpin(id feedback.EntityID) {
	ps.pinMu.Lock()
	if n := ps.pinned[string(id)]; n <= 1 {
		delete(ps.pinned, string(id))
	} else {
		ps.pinned[string(id)] = n - 1
	}
	ps.pinMu.Unlock()
}

// isPinned is the store.EvictGuard installed when the lifecycle is enabled.
func (ps *PersistentStore) isPinned(id feedback.EntityID) bool {
	ps.pinMu.Lock()
	_, ok := ps.pinned[string(id)]
	ps.pinMu.Unlock()
	return ok
}

// tailAdd records a post-snapshot append in the tail index.
func (ps *PersistentStore) tailAdd(f feedback.Feedback) {
	ps.tailMu.Lock()
	if ps.tailIdx == nil {
		ps.tailIdx = make(map[string][]feedback.Feedback)
	}
	ps.tailIdx[string(f.Server)] = append(ps.tailIdx[string(f.Server)], f)
	ps.tailMu.Unlock()
}

// rotateTail moves the tail index into the pending generation at snapshot
// seal time. Pending survives a failed snapshot, so rotation merges rather
// than replaces: pending records are older than tail records by
// construction, and the rebuild sort does not depend on it anyway.
func (ps *PersistentStore) rotateTail() {
	ps.tailMu.Lock()
	if ps.pendingTail == nil {
		ps.pendingTail = ps.tailIdx
	} else {
		for id, recs := range ps.tailIdx {
			ps.pendingTail[id] = append(ps.pendingTail[id], recs...)
		}
	}
	ps.tailIdx = nil
	ps.tailMu.Unlock()
}

// dropPendingTail discards the pending generation after its records are
// covered by a published snapshot, and points the section index at it.
func (ps *PersistentStore) dropPendingTail(seq uint64, sections map[string]secRange) {
	ps.tailMu.Lock()
	ps.pendingTail = nil
	ps.snapIdx = &snapIndex{path: filepath.Join(ps.ledger.dir, snapshotName(seq)), sections: sections}
	ps.tailMu.Unlock()
}

// sectionFiles caches open snapshot files across a bulk gather — the
// snapshot writer reads one section per evicted server, and opening the
// previous snapshot once instead of once per stub is the difference between
// O(stubs) preads and O(stubs) opens. A nil *sectionFiles opens per read
// (the single-server rebuild path).
type sectionFiles struct{ files map[string]*os.File }

func (c *sectionFiles) get(path string) (*os.File, error) {
	if f, ok := c.files[path]; ok {
		return f, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if c.files == nil {
		c.files = make(map[string]*os.File)
	}
	c.files[path] = f
	return f, nil
}

func (c *sectionFiles) close() {
	for _, f := range c.files {
		_ = f.Close()
	}
	c.files = nil
}

// gatherServer collects every known record of one server — newest snapshot
// section plus both tail generations — deduplicated by content hash and
// sorted into store order. includeTail is false for the snapshot writer,
// whose sections must cover exactly the pre-seal state; cache, when non-nil,
// reuses open snapshot files across calls.
//
// When the snapshot section's records survive as an untouched prefix of the
// merged result (nothing deduplicated, no tail record sorted into the
// prefix), the section's serialized accumulator state is returned alongside
// the count of records it covers; restoring it and appending recs[accCount:]
// then reproduces a never-evicted accumulator exactly. Otherwise accState is
// nil and the caller re-derives by replay.
func (ps *PersistentStore) gatherServer(id feedback.EntityID, includeTail bool, cache *sectionFiles) (recs []feedback.Feedback, accState []byte, accCount int, err error) {
	ps.tailMu.Lock()
	idx := ps.snapIdx
	var raw []feedback.Feedback
	raw = append(raw, ps.pendingTail[string(id)]...)
	if includeTail {
		raw = append(raw, ps.tailIdx[string(id)]...)
	}
	ps.tailMu.Unlock()

	snapCount := 0
	if idx != nil {
		if r, ok := idx.sections[string(id)]; ok {
			sec, err := readSnapshotSection(idx.path, r, id, cache)
			if err != nil {
				return nil, nil, 0, err
			}
			snapCount = len(sec.recs)
			accState = sec.accState
			raw = append(sec.recs, raw...)
		}
	}
	if len(raw) == 0 {
		return nil, nil, 0, nil
	}
	seen := make(map[store.Hash]struct{}, len(raw))
	recs = raw[:0]
	dropped := false
	for i, f := range raw {
		h := store.HashOf(f)
		if _, dup := seen[h]; dup {
			if i < snapCount {
				return nil, nil, 0, fmt.Errorf("duplicate record inside snapshot section")
			}
			dropped = true
			continue
		}
		seen[h] = struct{}{}
		recs = append(recs, f)
	}
	sorted := sort.SliceIsSorted(recs, func(i, j int) bool { return lessFeedback(recs[i], recs[j]) })
	if !sorted {
		sort.Slice(recs, func(i, j int) bool { return lessFeedback(recs[i], recs[j]) })
	}
	if dropped || !sorted {
		return recs, nil, 0, nil
	}
	return recs, accState, snapCount, nil
}

// lessFeedback is the store's record order: time, then content hash.
func lessFeedback(a, b feedback.Feedback) bool {
	if !a.Time.Equal(b.Time) {
		return a.Time.Before(b.Time)
	}
	return store.HashOf(a) < store.HashOf(b)
}

// RebuildServer reconstructs one evicted server's history and accumulator
// from the newest snapshot plus the tail index and reinstates it in the
// store, bit-identical to a server that was never evicted. It is a no-op for
// resident servers and an error for unknown ones. Safe for concurrent calls
// on the same server (the reinstate is idempotent); the serving layer
// single-flights per server to avoid duplicate work, not for correctness.
func (ps *PersistentStore) RebuildServer(id feedback.EntityID) error {
	if ps.opts.MemBudget <= 0 {
		return ErrNoRebuild
	}
	if _, evicted := ps.store.StubOf(id); !evicted {
		// Resident already (a concurrent rebuild won the race), or unknown —
		// ReinstateServer would reject the latter, so check here for the
		// cleaner error.
		if _, v := ps.store.Snapshot(id); v == 0 {
			return fmt.Errorf("ledger: rebuild: unknown server %q", id)
		}
		return nil
	}
	recs, accState, accCount, err := ps.gatherServer(id, true, nil)
	if err != nil {
		ps.rebuildErrors.Add(1)
		return fmt.Errorf("ledger: rebuild %q: %w", id, err)
	}
	var acc store.Accumulator
	if len(accState) > 0 && ps.opts.RestoreAccumulator != nil {
		if a, n, err := ps.opts.RestoreAccumulator(id, accState); err == nil && n == accCount && n <= len(recs) {
			// The serialized state covers the snapshot-section prefix
			// (gatherServer guarantees it survived the merge untouched);
			// feeding it the suffix yields exactly the accumulator a
			// never-evicted server would hold.
			for _, f := range recs[n:] {
				a.Append(f)
			}
			acc = a
		}
	}
	if err := ps.store.ReinstateServer(id, recs, acc); err != nil {
		ps.rebuildErrors.Add(1)
		return err
	}
	ps.rebuilds.Add(1)
	return nil
}

// readSnapshotSection reads and decodes one server's section from a
// snapshot file by byte range (via cache when non-nil). Integrity is
// verified end-to-end by the store's reinstate digest check rather than
// per-section checksums.
func readSnapshotSection(path string, r secRange, id feedback.EntityID, cache *sectionFiles) (snapServer, error) {
	var f *os.File
	var err error
	if cache != nil {
		if f, err = cache.get(path); err != nil {
			return snapServer{}, fmt.Errorf("ledger: open snapshot for rebuild: %w", err)
		}
	} else {
		if f, err = os.Open(path); err != nil {
			return snapServer{}, fmt.Errorf("ledger: open snapshot for rebuild: %w", err)
		}
		defer func() { _ = f.Close() }()
	}
	if r.end <= r.off {
		return snapServer{}, fmt.Errorf("ledger: bad section range for %q", id)
	}
	buf := make([]byte, r.end-r.off)
	if _, err := f.ReadAt(buf, r.off); err != nil {
		return snapServer{}, fmt.Errorf("ledger: read section of %q: %w", id, err)
	}
	sec, rest, err := decodeServerSection(buf, make(map[string]feedback.EntityID))
	if err != nil {
		return snapServer{}, fmt.Errorf("ledger: decode section of %q: %w", id, err)
	}
	if len(rest) != 0 {
		return snapServer{}, fmt.Errorf("ledger: section of %q: %d trailing bytes", id, len(rest))
	}
	if string(sec.id) != string(id) {
		return snapServer{}, fmt.Errorf("ledger: section range for %q holds %q", id, sec.id)
	}
	return sec, nil
}

// Stub sidecar: next to every snapshot, the evicted servers' compact stubs
// are written to snapshot.<seq>.stubs so offline tooling (trustctl
// ledger-info) can enumerate state that is durable but was not resident at
// capture. The sidecar is informational — boot and rebuild never read it —
// so a missing or corrupt sidecar costs visibility, not correctness.

var stubMagic = [8]byte{0xB7, 'H', 'P', 'S', 'T', 'U', 'B', '1'}

// stubsName formats the sidecar file name for snapshot sequence seq.
func stubsName(seq uint64) string { return snapshotName(seq) + ".stubs" }

// encodeStubs serializes the sidecar image: magic, uvarint count, the stubs
// in store encoding, and a trailing CRC32-C over everything before it.
func encodeStubs(stubs []store.Stub) []byte {
	buf := append([]byte(nil), stubMagic[:]...)
	buf = binary.AppendUvarint(buf, uint64(len(stubs)))
	for _, s := range stubs {
		buf = store.AppendStub(buf, s)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
}

// decodeStubs verifies and decodes a sidecar image.
func decodeStubs(data []byte) ([]store.Stub, error) {
	if len(data) < len(stubMagic)+4 {
		return nil, errors.New("ledger: stub sidecar: short file")
	}
	if string(data[:len(stubMagic)]) != string(stubMagic[:]) {
		return nil, errors.New("ledger: stub sidecar: bad magic")
	}
	body := data[:len(data)-4]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(data[len(data)-4:]) {
		return nil, errors.New("ledger: stub sidecar: checksum mismatch")
	}
	rest := body[len(stubMagic):]
	count, used := binary.Uvarint(rest)
	if used <= 0 || count > uint64(len(rest)) {
		return nil, errors.New("ledger: stub sidecar: bad count")
	}
	rest = rest[used:]
	out := make([]store.Stub, 0, count)
	for i := uint64(0); i < count; i++ {
		s, n, err := store.DecodeStub(rest)
		if err != nil {
			return nil, fmt.Errorf("ledger: stub sidecar: entry %d: %w", i, err)
		}
		rest = rest[n:]
		out = append(out, s)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("ledger: stub sidecar: %d trailing bytes", len(rest))
	}
	return out, nil
}

// writeStubs writes the sidecar for snapshot seq. Best effort: failures are
// logged by the caller, never failed through to the snapshot.
func writeStubs(dir string, seq uint64, stubs []store.Stub) error {
	if len(stubs) == 0 {
		return nil
	}
	return os.WriteFile(filepath.Join(dir, stubsName(seq)), encodeStubs(stubs), 0o644)
}
