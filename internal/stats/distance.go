package stats

import (
	"fmt"
	"math"
)

// L1Distance returns the L¹ norm distance between two discrete probability
// vectors over the same support: Σ_j |p[j] − q[j]|. It is the distribution
// distance of the paper's behaviour test (§3.2). The result lies in [0, 2]
// when both arguments are probability vectors.
func L1Distance(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("%w: support mismatch %d vs %d", ErrInvalidDistribution, len(p), len(q))
	}
	d := 0.0
	for i := range p {
		d += math.Abs(p[i] - q[i])
	}
	return d, nil
}

// L2Distance returns the Euclidean distance between two discrete probability
// vectors over the same support.
func L2Distance(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("%w: support mismatch %d vs %d", ErrInvalidDistribution, len(p), len(q))
	}
	d := 0.0
	for i := range p {
		diff := p[i] - q[i]
		d += diff * diff
	}
	return math.Sqrt(d), nil
}

// ChiSquareStat returns the Pearson χ² statistic of observed counts against
// an expected distribution, merging tail cells whose expected count is below
// minExpected (the usual validity rule for the χ² approximation; pass 0 to
// disable merging). total is inferred from the observed counts.
func ChiSquareStat(observed []int64, expected []float64, minExpected float64) (float64, error) {
	if len(observed) != len(expected) {
		return 0, fmt.Errorf("%w: support mismatch %d vs %d", ErrInvalidDistribution, len(observed), len(expected))
	}
	var total int64
	for _, o := range observed {
		total += o
	}
	if total == 0 {
		return 0, fmt.Errorf("%w: empty sample", ErrInvalidDistribution)
	}
	stat := 0.0
	var accO int64
	accE := 0.0
	flush := func() {
		if accE > 0 {
			diff := float64(accO) - accE
			stat += diff * diff / accE
		}
		accO, accE = 0, 0
	}
	for i := range observed {
		accO += observed[i]
		accE += expected[i] * float64(total)
		if accE >= minExpected {
			flush()
		}
	}
	flush()
	return stat, nil
}

// KSStat returns the Kolmogorov–Smirnov statistic between the empirical CDF
// implied by a discrete probability vector p and a reference vector q over
// the same support: max_j |P(j) − Q(j)|.
func KSStat(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("%w: support mismatch %d vs %d", ErrInvalidDistribution, len(p), len(q))
	}
	maxD, cp, cq := 0.0, 0.0, 0.0
	for i := range p {
		cp += p[i]
		cq += q[i]
		if d := math.Abs(cp - cq); d > maxD {
			maxD = d
		}
	}
	return maxD, nil
}

// L1HistDistance returns the L¹ distance between the empirical frequency
// distribution of h and the PMF of b. The two supports must match. This is
// the hot path of behaviour testing, so it avoids the intermediate slices of
// Freqs/PMFTable.
func L1HistDistance(h *Histogram, b *Binomial) (float64, error) {
	if h.Max() != b.N() {
		return 0, fmt.Errorf("%w: histogram support [0,%d] vs B(%d,·)", ErrInvalidDistribution, h.Max(), b.N())
	}
	if h.Total() == 0 {
		return 0, fmt.Errorf("%w: empty sample", ErrInvalidDistribution)
	}
	total := float64(h.Total())
	d := 0.0
	for k := 0; k <= b.N(); k++ {
		d += math.Abs(float64(h.Count(k))/total - b.pmf[k])
	}
	return d, nil
}

// L1DiffDistance returns the L¹ distance between a binomial PMF table (as
// filled by BinomialPMFInto) and the empirical frequency distribution of the
// per-bucket window counts cum[k] − sub[k] (a running histogram minus a
// checkpoint; sub may be nil to use cum alone), totalling total windows. It
// is the fused form of L1HistDistance used by the incremental behaviour
// accumulator: no Histogram is materialised, and the floating-point
// evaluation order matches L1HistDistance term for term, so equal inputs
// yield bit-identical distances. Empty buckets take a division-free
// shortcut: 0/t is exactly +0, so |0/t − pmf| is pmf itself bit for bit
// (PMF entries are never negative).
func L1DiffDistance(cum []int64, sub []int32, total int64, pmf []float64) (float64, error) {
	if len(cum) != len(pmf) || (sub != nil && len(sub) != len(pmf)) {
		return 0, fmt.Errorf("%w: histogram support [0,%d] vs B(%d,·)", ErrInvalidDistribution, len(cum)-1, len(pmf)-1)
	}
	if total == 0 {
		return 0, fmt.Errorf("%w: empty sample", ErrInvalidDistribution)
	}
	tf := float64(total)
	d := 0.0
	pmf = pmf[:len(cum)] // bounds-check elimination in the loops below
	if sub == nil {
		for k, c := range cum {
			if c == 0 {
				d += pmf[k]
			} else {
				d += math.Abs(float64(c)/tf - pmf[k])
			}
		}
		return d, nil
	}
	sub = sub[:len(cum)]
	for k, c := range cum {
		if c -= int64(sub[k]); c == 0 {
			d += pmf[k]
		} else {
			d += math.Abs(float64(c)/tf - pmf[k])
		}
	}
	return d, nil
}

// L1SampleDistance builds a histogram from per-window counts and returns its
// L¹ distance to B(m, p̂) where p̂ is the MLE estimated from the same counts.
// This is exactly the single behaviour test statistic of §3.2. It returns the
// distance, the estimate p̂, and an error for invalid input.
func L1SampleDistance(m int, counts []int) (dist, pHat float64, err error) {
	pHat, err = BinomialMLE(m, counts)
	if err != nil {
		return 0, 0, err
	}
	h := MustHistogram(m)
	if err := h.AddAll(counts); err != nil {
		return 0, 0, err
	}
	b, err := NewBinomial(m, pHat)
	if err != nil {
		return 0, 0, err
	}
	dist, err = L1HistDistance(h, b)
	return dist, pHat, err
}
