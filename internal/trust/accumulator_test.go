package trust

import (
	"errors"
	"testing"
	"time"

	"honestplayer/internal/feedback"
	"honestplayer/internal/stats"
)

// accumulatorFuncs returns every built-in trust function; all implement
// TrackerFunc and therefore support incremental accumulation.
func accumulatorFuncs(t *testing.T) []Func {
	t.Helper()
	w, err := NewWeighted(0.5)
	if err != nil {
		t.Fatalf("NewWeighted: %v", err)
	}
	d, err := NewTimeDecay(0.9)
	if err != nil {
		t.Fatalf("NewTimeDecay: %v", err)
	}
	sw, err := NewSlidingWindow(25)
	if err != nil {
		t.Fatalf("NewSlidingWindow: %v", err)
	}
	return []Func{Average{}, w, Beta{}, d, sw}
}

// TestAccumulatorMatchesEvaluate checks Value against Evaluate at every
// prefix of a random history, for every built-in function. The equality is
// exact: the tracker consumes the same outcomes in the same order, so the
// floating-point results must be bit-identical.
func TestAccumulatorMatchesEvaluate(t *testing.T) {
	rng := stats.NewRNG(99)
	h := feedback.NewHistory("srv")
	outcomes := make([]bool, 400)
	for i := range outcomes {
		outcomes[i] = rng.Float64() < 0.8
	}
	for _, fn := range accumulatorFuncs(t) {
		acc, ok := NewAccumulator(fn)
		if !ok {
			t.Fatalf("%s: no accumulator", fn.Name())
		}
		if acc.Name() != fn.Name() {
			t.Fatalf("accumulator name %q != func name %q", acc.Name(), fn.Name())
		}
		if _, err := acc.Value(); !errors.Is(err, ErrEmptyHistory) {
			t.Fatalf("%s: empty accumulator error = %v, want ErrEmptyHistory", fn.Name(), err)
		}
		h := feedback.NewHistory(h.Server())
		for i, good := range outcomes {
			if err := h.AppendOutcome("client", good, time.Unix(int64(i)+1, 0)); err != nil {
				t.Fatalf("append: %v", err)
			}
			acc.Update(good)
			got, err := acc.Value()
			if err != nil {
				t.Fatalf("%s: Value at n=%d: %v", fn.Name(), i+1, err)
			}
			want, err := fn.Evaluate(h)
			if err != nil {
				t.Fatalf("%s: Evaluate at n=%d: %v", fn.Name(), i+1, err)
			}
			if got != want {
				t.Fatalf("%s at n=%d: incremental %v != batch %v", fn.Name(), i+1, got, want)
			}
			n, goodN := acc.Counts()
			if n != h.Len() || goodN != h.GoodCount() {
				t.Fatalf("%s at n=%d: counts (%d, %d) != history (%d, %d)",
					fn.Name(), i+1, n, goodN, h.Len(), h.GoodCount())
			}
		}
		acc.Reset()
		if n, good := acc.Counts(); n != 0 || good != 0 {
			t.Fatalf("%s: counts after Reset = (%d, %d)", fn.Name(), n, good)
		}
		if _, err := acc.Value(); !errors.Is(err, ErrEmptyHistory) {
			t.Fatalf("%s: Value after Reset should report ErrEmptyHistory", fn.Name())
		}
	}
}

// nonTrackerFunc is a Func without a tracker, for the unsupported path.
type nonTrackerFunc struct{}

func (nonTrackerFunc) Name() string { return "non-tracker" }
func (nonTrackerFunc) Evaluate(h *feedback.History) (float64, error) {
	return 0.5, nil
}

func TestAccumulatorUnsupportedFunc(t *testing.T) {
	if acc, ok := NewAccumulator(nonTrackerFunc{}); ok || acc != nil {
		t.Fatalf("NewAccumulator on a non-TrackerFunc should report false")
	}
}
