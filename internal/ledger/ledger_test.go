package ledger

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"honestplayer/internal/feedback"
)

func rec(c feedback.EntityID, good bool, at int64) feedback.Feedback {
	r := feedback.Negative
	if good {
		r = feedback.Positive
	}
	return feedback.Feedback{Time: time.Unix(at, 0).UTC(), Server: "srv", Client: c, Rating: r}
}

func TestOpenEmptyAndAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh ledger replayed %d records", len(recs))
	}
	want := []feedback.Feedback{rec("a", true, 1), rec("b", false, 2), rec("c", true, 3)}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l2.Close() }()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Client != want[i].Client || got[i].Rating != want[i].Rating ||
			!got[i].Time.Equal(want[i].Time) {
			t.Fatalf("record %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestAppendValidates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	if err := l.Append(feedback.Feedback{}); err == nil {
		t.Fatal("invalid record must fail")
	}
}

func TestTornTrailingLineRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	_ = l.Append(rec("a", true, 1))
	_ = l.Append(rec("b", true, 2))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: write a partial record with no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"time":"2020-01-01T0`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	l2, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("replayed %d records, want 2", len(got))
	}
	// The torn bytes were truncated; a new append lands cleanly.
	if err := l2.Append(rec("c", true, 3)); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, got, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("after recovery+append: %d records, want 3", len(got))
	}
}

func TestCorruptInteriorLineStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	_ = l.Append(rec("a", true, 1))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = f.WriteString("GARBAGE LINE\n")
	_ = f.Close()

	_, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("replayed %d records, want 1 (stop at corruption)", len(got))
	}
}

func TestClosedLedgerErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec("a", true, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync after close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	if err := l.Append(rec("a", true, 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := l.Append(rec(feedback.EntityID(rune('a'+g)), true, int64(g*1000+i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 400 {
		t.Fatalf("replayed %d records, want 400", len(got))
	}
}

func TestPersistentStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	ps, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	stored, err := ps.Add(rec("a", true, 1))
	if err != nil || !stored {
		t.Fatalf("add: %v %v", stored, err)
	}
	// Duplicates are not re-persisted.
	stored, err = ps.Add(rec("a", true, 1))
	if err != nil || stored {
		t.Fatalf("dup add: %v %v", stored, err)
	}
	_, _ = ps.Add(rec("b", false, 2))
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}

	ps2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ps2.Close() }()
	if ps2.Store().Len() != 2 {
		t.Fatalf("restored store has %d records, want 2", ps2.Store().Len())
	}
	h, err := ps2.Store().History("srv")
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 2 || h.GoodCount() != 1 {
		t.Fatalf("restored history: %v", h)
	}
}

func TestOpenStoreOnCorruptDir(t *testing.T) {
	if _, err := OpenStore(filepath.Join(t.TempDir(), "missing", "x.jsonl")); err == nil {
		t.Fatal("open in missing directory must fail")
	}
}

func TestOpenOnDirectoryFails(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := Open(dir); err == nil {
		t.Fatal("opening a directory as ledger must fail")
	}
}

func TestPersistentStoreAddAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "l.jsonl")
	ps, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
	// The in-memory store still accepts the record, but persistence fails
	// loudly rather than silently dropping it.
	_, err = ps.Add(rec("a", true, 1))
	if err == nil {
		t.Fatal("Add after Close must report the persistence failure")
	}
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed in chain", err)
	}
}

func TestPersistentStoreInvalidRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "l.jsonl")
	ps, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ps.Close() }()
	if _, err := ps.Add(feedback.Feedback{}); err == nil {
		t.Fatal("invalid record must fail")
	}
}

func TestLedgerEmptyLinesSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "l.jsonl")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	_ = l.Append(rec("a", true, 1))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = f.WriteString("\n\n")
	_ = f.Close()
	l2, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("replayed %d", len(recs))
	}
	// Appending after blank lines still replays cleanly.
	_ = l2.Append(rec("b", true, 2))
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("after blank lines + append: %d", len(recs))
	}
}
