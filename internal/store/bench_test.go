package store

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"honestplayer/internal/feedback"
)

func benchRecs(n int) []feedback.Feedback {
	recs := make([]feedback.Feedback, n)
	for i := range recs {
		recs[i] = feedback.Feedback{
			Time:   time.Unix(int64(i), 0).UTC(),
			Server: "server",
			Client: feedback.EntityID(fmt.Sprintf("c%d", i%100)),
			Rating: feedback.Positive,
		}
	}
	return recs
}

// benchRecsMulti spreads n records over k servers, time-ordered per server.
func benchRecsMulti(n, k int) []feedback.Feedback {
	recs := make([]feedback.Feedback, n)
	for i := range recs {
		recs[i] = feedback.Feedback{
			Time:   time.Unix(int64(i), 0).UTC(),
			Server: feedback.EntityID(fmt.Sprintf("srv%d", i%k)),
			Client: feedback.EntityID(fmt.Sprintf("c%d", i%100)),
			Rating: feedback.Positive,
		}
	}
	return recs
}

func BenchmarkStoreAddAppendOrder(b *testing.B) {
	recs := benchRecs(b.N)
	s := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Add(recs[i]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreAddParallel measures concurrent writes to distinct servers
// under different shard counts: with one shard every goroutine contends on
// the same lock, with many shards writes proceed independently.
func BenchmarkStoreAddParallel(b *testing.B) {
	for _, shards := range []int{1, DefaultShards} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := NewSharded(shards)
			var worker atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := worker.Add(1)
				srv := feedback.EntityID(fmt.Sprintf("srv%d", w))
				i := int64(0)
				for pb.Next() {
					i++
					f := feedback.Feedback{
						Time:   time.Unix(i, 0).UTC(),
						Server: srv,
						Client: feedback.EntityID(fmt.Sprintf("c%d", i%100)),
						Rating: feedback.Positive,
					}
					if _, err := s.Add(f); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

func BenchmarkStoreMissingFrom(b *testing.B) {
	s := New()
	if _, err := s.AddAll(benchRecs(5000)); err != nil {
		b.Fatal(err)
	}
	digest := s.Hashes()[:2500]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.MissingFrom(digest)
	}
}

// BenchmarkStoreHistory exercises the read hot path: since histories are
// maintained incrementally and returned as shared snapshots, this is O(1)
// regardless of history length.
func BenchmarkStoreHistory(b *testing.B) {
	s := New()
	if _, err := s.AddAll(benchRecs(5000)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.History("server"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreChecksums measures the gossip summary path; checksums are
// maintained incrementally, so this scales with servers, not records.
func BenchmarkStoreChecksums(b *testing.B) {
	s := New()
	if _, err := s.AddAll(benchRecsMulti(10000, 50)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Checksums()
	}
}
