package behavior

import (
	"fmt"
	"math"
)

// CUSUM is an online change-point detector for transaction streams — a
// streaming complement to multi-testing. Multi-testing detects a
// hibernating attack by re-testing suffixes after the fact; CUSUM detects
// the change the moment it accumulates enough evidence, in O(1) per
// transaction and O(1) memory.
//
// It runs a one-sided cumulative-sum test for a drop in success
// probability from P0 to at most P1: each outcome contributes its
// log-likelihood ratio log(P(x|P1)/P(x|P0)) to a running score that is
// clamped at zero; the score crossing the threshold H signals a change.
// Between the paper's schemes and this detector there is a natural
// division of labour: CUSUM reacts fastest to sharp quality drops, the
// distribution tests catch shape manipulation (periodic patterns,
// collusion structure) that leaves the mean untouched.
//
// CUSUM is not safe for concurrent use.
type CUSUM struct {
	llrGood float64 // log-likelihood ratio contribution of a good outcome
	llrBad  float64 // and of a bad outcome
	h       float64

	score    float64
	maxScore float64
	n        int
	alarmAt  int
}

// NewCUSUM returns a detector for a drop from success probability p0 (the
// in-control quality) to p1 < p0 (the smallest drop worth detecting),
// alarming when the cumulative log-likelihood ratio exceeds h. Larger h
// trades detection delay for fewer false alarms. Scale h to the
// per-outcome evidence: one bad outcome contributes log((1−p1)/(1−p0)) —
// about 2.3 for (0.95, 0.5) — so h ≈ 5 alarms after ~3 closely spaced bad
// outcomes (fast but false-alarm-prone over long streams) while h ≈ 12
// requires ~6 and sustains long honest streams without alarms.
func NewCUSUM(p0, p1, h float64) (*CUSUM, error) {
	if math.IsNaN(p0) || math.IsNaN(p1) || p0 <= 0 || p0 >= 1 || p1 <= 0 || p1 >= 1 {
		return nil, fmt.Errorf("%w: p0=%v p1=%v", ErrBadConfig, p0, p1)
	}
	if p1 >= p0 {
		return nil, fmt.Errorf("%w: p1=%v must be below p0=%v", ErrBadConfig, p1, p0)
	}
	if h <= 0 || math.IsNaN(h) {
		return nil, fmt.Errorf("%w: h=%v", ErrBadConfig, h)
	}
	return &CUSUM{
		llrGood: math.Log(p1 / p0),
		llrBad:  math.Log((1 - p1) / (1 - p0)),
		h:       h,
		alarmAt: -1,
	}, nil
}

// Observe consumes one transaction outcome and reports whether the
// detector is (now or already) in the alarmed state.
func (c *CUSUM) Observe(good bool) bool {
	c.n++
	if c.alarmAt >= 0 {
		return true
	}
	if good {
		c.score += c.llrGood
	} else {
		c.score += c.llrBad
	}
	if c.score < 0 {
		c.score = 0
	}
	if c.score > c.maxScore {
		c.maxScore = c.score
	}
	if c.score >= c.h {
		c.alarmAt = c.n
	}
	return c.alarmAt >= 0
}

// Alarmed reports whether the change threshold has been crossed.
func (c *CUSUM) Alarmed() bool { return c.alarmAt >= 0 }

// AlarmAt returns the 1-based transaction index at which the alarm fired,
// or -1 if it has not.
func (c *CUSUM) AlarmAt() int { return c.alarmAt }

// Score returns the current cumulative statistic (frozen after an alarm).
func (c *CUSUM) Score() float64 { return c.score }

// Observed returns the number of outcomes consumed.
func (c *CUSUM) Observed() int { return c.n }

// Reset returns the detector to its initial state.
func (c *CUSUM) Reset() {
	c.score, c.maxScore, c.n, c.alarmAt = 0, 0, 0, -1
}
