package ledger

// Store snapshots. A snapshot file freezes the replayed state of the store —
// every server's history plus, when the deployment runs incremental
// assessment, each server's serialized accumulator state — so a node boots
// by seeding the store from the snapshot and replaying only the ledger tail
// (segments >= the snapshot's covered segment) instead of the whole log.
//
// File layout (all integers uvarint unless noted):
//
//	magic        8 bytes {0xB6, 'H','P','S','N','A','P','1'}
//	version      uvarint (currently 1)
//	seq          uvarint — snapshot sequence number
//	covered      uvarint — tail replay starts at this segment index
//	records      uvarint — ledger record count at capture (informational)
//	servers:     repeated until a zero-length id
//	  id         uvarint length, bytes
//	  count      uvarint — records for this server
//	  records    count × (8 bytes big-endian unixnano, 1 byte rating,
//	             uvarint client length, client bytes); server is implied
//	  acc        uvarint length, bytes — serialized accumulator state
//	             (zero length = none; boot re-derives from history)
//	terminator   uvarint 0
//	crc32c       4 bytes little-endian, over everything above
//	"HPSNPEND"   8 bytes
//
// Snapshots are written to snapshot.tmp and renamed into place
// (snapshot.<seq>, zero-padded), so a crash mid-write leaves at worst a
// stale temp file and never a half-valid snapshot under the real name. Any
// verification or decode failure makes boot fall back to the next older
// snapshot, and past those to a full replay — a bad snapshot can cost boot
// time, never correctness.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"time"

	"honestplayer/internal/feedback"
)

// ErrBadSnapshot reports a snapshot file that failed verification.
var ErrBadSnapshot = errors.New("ledger: bad snapshot")

var snapMagic = [8]byte{0xB6, 'H', 'P', 'S', 'N', 'A', 'P', '1'}

const (
	snapEnd     = "HPSNPEND"
	snapVersion = 1
	snapTmpName = "snapshot.tmp"
	// snapKeep is how many verified snapshots are retained; older ones are
	// pruned after each successful write.
	snapKeep = 2
)

// snapshotName formats the file name of snapshot sequence seq.
func snapshotName(seq uint64) string { return fmt.Sprintf("snapshot.%010d", seq) }

// parseSnapshotName extracts the sequence from a snapshot file name.
func parseSnapshotName(name string) (uint64, bool) {
	var seq uint64
	if _, err := fmt.Sscanf(name, "snapshot.%d", &seq); err != nil || seq == 0 {
		return 0, false
	}
	if name != snapshotName(seq) {
		return 0, false
	}
	return seq, true
}

// listSnapshots returns the snapshot sequence numbers present in dir,
// ascending.
func listSnapshots(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ledger: list %s: %w", dir, err)
	}
	var out []uint64
	for _, e := range ents {
		if seq, ok := parseSnapshotName(e.Name()); ok && !e.IsDir() {
			out = append(out, seq)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// snapWriter streams a snapshot to its temp file, maintaining the running
// checksum and byte position (so the caller can index server sections by
// byte range for rebuild-on-demand), and atomically publishes it on finish.
type snapWriter struct {
	dir     string
	f       *os.File
	w       *bufio.Writer
	crc     uint32
	pos     int64
	scratch []byte
}

// beginSnapshot starts writing a snapshot into dir's temp file.
func beginSnapshot(dir string, seq, covered, records uint64) (*snapWriter, error) {
	f, err := os.OpenFile(filepath.Join(dir, snapTmpName), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ledger: snapshot temp: %w", err)
	}
	sw := &snapWriter{dir: dir, f: f, w: bufio.NewWriterSize(f, 1<<20)}
	buf := sw.scratch[:0]
	buf = append(buf, snapMagic[:]...)
	buf = binary.AppendUvarint(buf, snapVersion)
	buf = binary.AppendUvarint(buf, seq)
	buf = binary.AppendUvarint(buf, covered)
	buf = binary.AppendUvarint(buf, records)
	if err := sw.write(buf); err != nil {
		sw.abort()
		return nil, err
	}
	return sw, nil
}

// write appends raw bytes, folding them into the checksum and position.
func (sw *snapWriter) write(b []byte) error {
	if _, err := sw.w.Write(b); err != nil {
		return fmt.Errorf("ledger: snapshot write: %w", err)
	}
	sw.crc = crc32.Update(sw.crc, castagnoli, b)
	sw.pos += int64(len(b))
	sw.scratch = b[:0]
	return nil
}

// server streams one server's section from an immutable history view,
// record by record — no intermediate slice.
func (sw *snapWriter) server(id feedback.EntityID, hist *feedback.History, accState []byte) error {
	if len(id) == 0 {
		return fmt.Errorf("%w: empty server id", ErrBadSnapshot)
	}
	n := hist.Len()
	buf := sw.scratch[:0]
	buf = binary.AppendUvarint(buf, uint64(len(id)))
	buf = append(buf, id...)
	buf = binary.AppendUvarint(buf, uint64(n))
	if err := sw.write(buf); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		f := hist.At(i)
		buf = sw.scratch[:0]
		buf = binary.BigEndian.AppendUint64(buf, uint64(f.Time.UnixNano()))
		buf = append(buf, byte(f.Rating))
		buf = binary.AppendUvarint(buf, uint64(len(f.Client)))
		buf = append(buf, f.Client...)
		if err := sw.write(buf); err != nil {
			return err
		}
	}
	buf = sw.scratch[:0]
	buf = binary.AppendUvarint(buf, uint64(len(accState)))
	buf = append(buf, accState...)
	return sw.write(buf)
}

// finish writes the terminator and trailer, fsyncs, and renames the temp
// file to snapshot.<seq>. The rename is the commit point.
func (sw *snapWriter) finish(seq uint64) error {
	buf := binary.AppendUvarint(sw.scratch[:0], 0)
	if err := sw.write(buf); err != nil {
		sw.abort()
		return err
	}
	trailer := binary.LittleEndian.AppendUint32(nil, sw.crc)
	trailer = append(trailer, snapEnd...)
	if _, err := sw.w.Write(trailer); err != nil {
		sw.abort()
		return fmt.Errorf("ledger: snapshot trailer: %w", err)
	}
	if err := sw.w.Flush(); err != nil {
		sw.abort()
		return fmt.Errorf("ledger: snapshot flush: %w", err)
	}
	if err := sw.f.Sync(); err != nil {
		sw.abort()
		return fmt.Errorf("ledger: snapshot sync: %w", err)
	}
	if err := sw.f.Close(); err != nil {
		return fmt.Errorf("ledger: snapshot close: %w", err)
	}
	tmp := filepath.Join(sw.dir, snapTmpName)
	if err := os.Rename(tmp, filepath.Join(sw.dir, snapshotName(seq))); err != nil {
		return fmt.Errorf("ledger: snapshot publish: %w", err)
	}
	syncDir(sw.dir)
	return nil
}

// abort closes and removes the temp file.
func (sw *snapWriter) abort() {
	_ = sw.f.Close()
	_ = os.Remove(filepath.Join(sw.dir, snapTmpName))
}

// pruneSnapshots removes all but the snapKeep newest snapshot files, along
// with the pruned snapshots' stub sidecars.
func pruneSnapshots(dir string) {
	seqs, err := listSnapshots(dir)
	if err != nil || len(seqs) <= snapKeep {
		return
	}
	for _, seq := range seqs[:len(seqs)-snapKeep] {
		_ = os.Remove(filepath.Join(dir, snapshotName(seq)))
		_ = os.Remove(filepath.Join(dir, stubsName(seq)))
	}
}

// snapServer is one server's decoded snapshot section.
type snapServer struct {
	id       feedback.EntityID
	recs     []feedback.Feedback
	accState []byte
}

// snapshotData is a fully decoded, checksum-verified snapshot. sections
// indexes each server's byte range within the file, for rebuild-on-demand.
type snapshotData struct {
	seq      uint64
	covered  uint64
	records  uint64
	servers  []snapServer
	sections map[string]secRange
}

// loadSnapshot reads and verifies the snapshot at path. Any structural or
// checksum problem returns an error wrapping ErrBadSnapshot; it never
// panics on malformed input.
func loadSnapshot(path string) (*snapshotData, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ledger: read snapshot %s: %w", path, err)
	}
	return decodeSnapshot(data)
}

// decodeSnapshot verifies and decodes a snapshot image.
func decodeSnapshot(data []byte) (*snapshotData, error) {
	trailer := 4 + len(snapEnd)
	if len(data) < len(snapMagic)+trailer {
		return nil, fmt.Errorf("%w: short file", ErrBadSnapshot)
	}
	if string(data[:len(snapMagic)]) != string(snapMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	if string(data[len(data)-len(snapEnd):]) != snapEnd {
		return nil, fmt.Errorf("%w: missing end marker", ErrBadSnapshot)
	}
	body := data[:len(data)-trailer]
	wantCRC := binary.LittleEndian.Uint32(data[len(data)-trailer:])
	if crc32.Checksum(body, castagnoli) != wantCRC {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadSnapshot)
	}
	rest := body[len(snapMagic):]
	version, rest, err := snapUvarint(rest)
	if err != nil {
		return nil, err
	}
	if version != snapVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadSnapshot, version)
	}
	sd := &snapshotData{}
	if sd.seq, rest, err = snapUvarint(rest); err != nil {
		return nil, err
	}
	if sd.covered, rest, err = snapUvarint(rest); err != nil {
		return nil, err
	}
	if sd.records, rest, err = snapUvarint(rest); err != nil {
		return nil, err
	}
	seen := make(map[string]struct{})
	sd.sections = make(map[string]secRange)
	// Client IDs repeat heavily across a server's records; interning them
	// makes decode allocate each distinct ID once instead of per record.
	clients := make(map[string]feedback.EntityID)
	for {
		peek, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("%w: bad varint", ErrBadSnapshot)
		}
		if peek == 0 {
			rest = rest[n:]
			break
		}
		// Section offsets are relative to the file start; body starts at 0.
		start := int64(len(body) - len(rest))
		srv, remainder, err := decodeServerSection(rest, clients)
		if err != nil {
			return nil, err
		}
		rest = remainder
		if _, dup := seen[string(srv.id)]; dup {
			return nil, fmt.Errorf("%w: duplicate server %q", ErrBadSnapshot, srv.id)
		}
		seen[string(srv.id)] = struct{}{}
		sd.sections[string(srv.id)] = secRange{off: start, end: int64(len(body) - len(rest))}
		sd.servers = append(sd.servers, srv)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadSnapshot, len(rest))
	}
	return sd, nil
}

// decodeServerSection decodes one server section — from its id-length
// uvarint through its accumulator state — returning the remainder. It is
// shared between whole-file decode (boot) and by-range section reads
// (rebuild-on-demand).
func decodeServerSection(rest []byte, clients map[string]feedback.EntityID) (snapServer, []byte, error) {
	var srv snapServer
	idLen, rest, err := snapUvarint(rest)
	if err != nil {
		return srv, rest, err
	}
	if idLen == 0 || idLen > maxRecordLen || uint64(len(rest)) < idLen {
		return srv, rest, fmt.Errorf("%w: server id overruns file", ErrBadSnapshot)
	}
	srv.id = feedback.EntityID(rest[:idLen])
	rest = rest[idLen:]
	var count uint64
	if count, rest, err = snapUvarint(rest); err != nil {
		return srv, rest, err
	}
	// Each record costs at least 10 bytes; cap the preallocation by what
	// the remaining bytes could actually hold.
	if count > uint64(len(rest))/10+1 {
		return srv, rest, fmt.Errorf("%w: record count overruns file", ErrBadSnapshot)
	}
	srv.recs = make([]feedback.Feedback, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(rest) < 9 {
			return srv, rest, fmt.Errorf("%w: truncated record", ErrBadSnapshot)
		}
		nano := int64(binary.BigEndian.Uint64(rest))
		rating := feedback.Rating(rest[8])
		rest = rest[9:]
		var cLen uint64
		if cLen, rest, err = snapUvarint(rest); err != nil {
			return srv, rest, err
		}
		if cLen > maxRecordLen || uint64(len(rest)) < cLen {
			return srv, rest, fmt.Errorf("%w: client id overruns file", ErrBadSnapshot)
		}
		client, ok := clients[string(rest[:cLen])]
		if !ok {
			client = feedback.EntityID(rest[:cLen])
			clients[string(client)] = client
		}
		f := feedback.Feedback{
			Server: srv.id,
			Client: client,
			Rating: rating,
			Time:   time.Unix(0, nano).UTC(), // matches feedback.DecodeBinary
		}
		rest = rest[cLen:]
		if err := f.Validate(); err != nil {
			return srv, rest, fmt.Errorf("%w: invalid record: %v", ErrBadSnapshot, err)
		}
		srv.recs = append(srv.recs, f)
	}
	var accLen uint64
	if accLen, rest, err = snapUvarint(rest); err != nil {
		return srv, rest, err
	}
	if uint64(len(rest)) < accLen {
		return srv, rest, fmt.Errorf("%w: accumulator state overruns file", ErrBadSnapshot)
	}
	if accLen > 0 {
		srv.accState = append([]byte(nil), rest[:accLen]...)
		rest = rest[accLen:]
	}
	return srv, rest, nil
}

// snapUvarint decodes one uvarint, returning the remainder.
func snapUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, b, fmt.Errorf("%w: bad varint", ErrBadSnapshot)
	}
	return v, b[n:], nil
}
