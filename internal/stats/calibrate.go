package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Default calibration parameters. The paper selects ε as the 95 % confidence
// threshold estimated from a "reasonably large" number of randomly generated
// sample sets; 1000 replicates keeps the quantile estimate stable to ~0.01.
const (
	DefaultConfidence = 0.95
	DefaultReplicates = 1000
)

// CalibrationConfig controls the Monte-Carlo estimation of the L¹ distance
// threshold ε.
type CalibrationConfig struct {
	// Confidence is the quantile of the null distance distribution used as
	// the threshold (paper: 0.95). Zero means DefaultConfidence.
	Confidence float64
	// Replicates is the number of sample sets generated (paper: "reasonably
	// large"). Zero means DefaultReplicates.
	Replicates int
	// ReestimateP, when true, re-estimates p̂ from each generated sample set
	// before measuring its distance, mirroring how the tester estimates p̂
	// from the history under test. The paper's description measures distance
	// to the fixed B(m, p̂); false (the default) matches the paper.
	ReestimateP bool
	// Seed feeds the deterministic generator. The replicate stream is a pure
	// function of (Seed, m, numWindows, pHat), so results are reproducible
	// and cache hits are indistinguishable from recomputation.
	Seed uint64
}

func (c CalibrationConfig) withDefaults() CalibrationConfig {
	if c.Confidence == 0 {
		c.Confidence = DefaultConfidence
	}
	if c.Replicates == 0 {
		c.Replicates = DefaultReplicates
	}
	return c
}

// CalibrateL1 estimates the distance threshold ε for a behaviour test over
// numWindows windows of m transactions by a server with estimated
// trustworthiness pHat: it generates cfg.Replicates sample sets from
// B(m, pHat), measures each set's L¹ distance, and returns the
// cfg.Confidence quantile. An honest player therefore fails the test with
// probability ≈ 1 − cfg.Confidence.
func CalibrateL1(m, numWindows int, pHat float64, cfg CalibrationConfig) (float64, error) {
	cfg = cfg.withDefaults()
	if m <= 0 || numWindows <= 0 {
		return 0, fmt.Errorf("%w: m=%d windows=%d", ErrInvalidDistribution, m, numWindows)
	}
	if math.IsNaN(pHat) || pHat < 0 || pHat > 1 {
		return 0, fmt.Errorf("%w: pHat=%v", ErrInvalidDistribution, pHat)
	}
	ref, err := NewBinomial(m, pHat)
	if err != nil {
		return 0, err
	}
	rng := NewRNG(calibSeed(cfg.Seed, m, numWindows, pHat))
	dists := make([]float64, cfg.Replicates)
	h := MustHistogram(m)
	counts := make([]int, numWindows)
	for r := 0; r < cfg.Replicates; r++ {
		h.Reset()
		for i := 0; i < numWindows; i++ {
			counts[i] = ref.Sample(rng)
			// Support is [0, m] by construction; Add cannot fail.
			_ = h.Add(counts[i])
		}
		cmp := ref
		if cfg.ReestimateP {
			pr := float64(h.Sum()) / float64(m*numWindows)
			cmp, err = NewBinomial(m, pr)
			if err != nil {
				return 0, err
			}
		}
		d, err := L1HistDistance(h, cmp)
		if err != nil {
			return 0, err
		}
		dists[r] = d
	}
	sort.Float64s(dists)
	return Quantile(dists, cfg.Confidence), nil
}

// calibSeed mixes the calibration key into a single deterministic seed.
func calibSeed(seed uint64, m, numWindows int, pHat float64) uint64 {
	h := seed ^ 0x8f1bbcdcbfa53e0b
	mix := func(v uint64) {
		h ^= v
		h *= 0x9e3779b97f4a7c15
		h ^= h >> 29
	}
	mix(uint64(m))
	mix(uint64(numWindows))
	mix(math.Float64bits(pHat))
	return h
}

// Calibrator computes and caches ε thresholds on a discretised
// (m, numWindows, pHat) grid. Multi-testing over an 800 000-transaction
// history evaluates tens of thousands of suffixes; Monte-Carlo calibration
// per suffix would dominate the runtime, so the cache buckets numWindows
// geometrically and pHat to a fixed resolution, trading a small threshold
// discretisation for amortised O(1) lookups.
//
// Calibrator is safe for concurrent use.
type Calibrator struct {
	cfg         CalibrationConfig
	pResolution float64
	maxWindows  int

	mu    sync.Mutex
	cache map[calibKey]float64
}

// DefaultMaxCalibrationWindows bounds the window count that is calibrated by
// direct Monte-Carlo. Beyond it the threshold is extrapolated by the 1/√w
// concentration law of the null L¹ distance (each bin's empirical frequency
// deviates from its PMF by O(√(pmf·(1−pmf)/w)), so the summed distance
// shrinks like 1/√w). Direct calibration at 100 000+ windows would cost
// minutes per grid point for a threshold change within estimation noise.
const DefaultMaxCalibrationWindows = 4096

type calibKey struct {
	m          int
	windows    int
	pBucket    int
	confBucket int
}

// NewCalibrator returns a Calibrator with the given Monte-Carlo
// configuration. pResolution is the p̂ bucket width; zero means 0.01.
func NewCalibrator(cfg CalibrationConfig, pResolution float64) *Calibrator {
	if pResolution <= 0 {
		pResolution = 0.01
	}
	return &Calibrator{
		cfg:         cfg.withDefaults(),
		pResolution: pResolution,
		maxWindows:  DefaultMaxCalibrationWindows,
		cache:       make(map[calibKey]float64),
	}
}

// Config returns the calibration configuration in use.
func (c *Calibrator) Config() CalibrationConfig { return c.cfg }

// Threshold returns the cached or freshly computed ε for a test over
// numWindows windows of m transactions with estimated trustworthiness pHat,
// at the calibrator's configured confidence.
func (c *Calibrator) Threshold(m, numWindows int, pHat float64) (float64, error) {
	return c.ThresholdAt(m, numWindows, pHat, c.cfg.Confidence)
}

// ThresholdAt is Threshold at an explicit confidence level, used by
// multi-testers applying a familywise correction across suffixes. The
// achievable quantile resolution is limited by the replicate count;
// confidences beyond it degrade to the sample maximum.
func (c *Calibrator) ThresholdAt(m, numWindows int, pHat, confidence float64) (float64, error) {
	g, err := c.ThresholdGrid(m, numWindows, pHat, confidence)
	if err != nil {
		return 0, err
	}
	return g.Eps * g.Scale, nil
}

// GridThreshold is a threshold query resolved onto the calibrator's
// discretisation grid. ThresholdAt returns exactly Eps·Scale: Eps is the
// cached Monte-Carlo threshold at the grid point (WindowsBucket, PBucket,
// ConfBucket) and Scale is the 1/√w extrapolation factor, which depends only
// on the queried window count. Two queries resolving to the same grid point
// share Eps bit for bit, which hot read paths exploit to memoise thresholds
// on the small grid coordinates instead of exact float inputs.
type GridThreshold struct {
	Eps           float64
	Scale         float64
	WindowsBucket int
	PBucket       int
	ConfBucket    int
}

// ThresholdGrid resolves a threshold query to its grid point, computing and
// caching the grid threshold if it is not yet calibrated. It is the
// decomposed form of ThresholdAt; see GridThreshold.
func (c *Calibrator) ThresholdGrid(m, numWindows int, pHat, confidence float64) (GridThreshold, error) {
	if numWindows <= 0 {
		return GridThreshold{}, fmt.Errorf("%w: windows=%d", ErrInvalidDistribution, numWindows)
	}
	if math.IsNaN(confidence) || confidence <= 0 || confidence >= 1 {
		return GridThreshold{}, fmt.Errorf("%w: confidence=%v", ErrInvalidDistribution, confidence)
	}
	// Beyond the Monte-Carlo budget, calibrate at maxWindows and apply the
	// 1/√w extrapolation.
	scale := 1.0
	effective := numWindows
	if effective > c.maxWindows {
		scale = math.Sqrt(float64(c.maxWindows) / float64(effective))
		effective = c.maxWindows
	}
	key := calibKey{
		m:          m,
		windows:    bucketWindows(effective),
		pBucket:    c.bucketP(pHat),
		confBucket: int(math.Round(confidence * 1e4)),
	}
	g := GridThreshold{
		Scale:         scale,
		WindowsBucket: key.windows,
		PBucket:       key.pBucket,
		ConfBucket:    key.confBucket,
	}
	c.mu.Lock()
	eps, ok := c.cache[key]
	c.mu.Unlock()
	if ok {
		g.Eps = eps
		return g, nil
	}
	p := float64(key.pBucket) * c.pResolution
	if p > 1 {
		p = 1
	}
	cfg := c.cfg
	cfg.Confidence = confidence
	eps, err := CalibrateL1(key.m, key.windows, p, cfg)
	if err != nil {
		return GridThreshold{}, err
	}
	c.mu.Lock()
	c.cache[key] = eps
	c.mu.Unlock()
	g.Eps = eps
	return g, nil
}

// CacheSize returns the number of grid points calibrated so far.
func (c *Calibrator) CacheSize() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cache)
}

// PBucket returns the grid bucket pHat falls in — the PBucket coordinate
// ThresholdGrid would report for it. It lets hot read paths index local
// threshold tables without taking the calibrator lock.
func (c *Calibrator) PBucket(pHat float64) int { return c.bucketP(pHat) }

func (c *Calibrator) bucketP(pHat float64) int {
	if pHat < 0 {
		pHat = 0
	}
	if pHat > 1 {
		pHat = 1
	}
	return int(math.Round(pHat / c.pResolution))
}

// bucketWindows rounds the window count to a geometric grid (ratio ≈ 1.25)
// so that the null distribution, whose spread shrinks like 1/√windows, is
// approximated within a few percent by the bucket representative.
func bucketWindows(w int) int {
	if w <= 4 {
		return w
	}
	bucket := 4.0
	for bucket*1.25 <= float64(w) {
		bucket *= 1.25
	}
	lo := int(math.Round(bucket))
	hi := int(math.Round(bucket * 1.25))
	if w-lo <= hi-w {
		return lo
	}
	return hi
}
