package trust

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"honestplayer/internal/feedback"
)

func historyOf(t *testing.T, outcomes []bool) *feedback.History {
	t.Helper()
	h := feedback.NewHistory("s")
	for i, g := range outcomes {
		if err := h.AppendOutcome("c", g, time.Unix(int64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func TestAverageEvaluate(t *testing.T) {
	tests := []struct {
		name     string
		outcomes []bool
		want     float64
	}{
		{"all good", []bool{true, true}, 1},
		{"all bad", []bool{false, false}, 0},
		{"mixed", []bool{true, false, true, true}, 0.75},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Average{}.Evaluate(historyOf(t, tt.outcomes))
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Fatalf("Evaluate = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestEmptyHistoryErrors(t *testing.T) {
	empty := feedback.NewHistory("s")
	w, _ := NewWeighted(0.5)
	d, _ := NewTimeDecay(0.9)
	sw, _ := NewSlidingWindow(10)
	for _, f := range []Func{Average{}, w, Beta{}, d, sw} {
		if _, err := f.Evaluate(empty); !errors.Is(err, ErrEmptyHistory) {
			t.Errorf("%s on empty history: %v", f.Name(), err)
		}
	}
}

func TestNewWeightedValidation(t *testing.T) {
	for _, bad := range []float64{0, -1, 1.5, math.NaN()} {
		if _, err := NewWeighted(bad); !errors.Is(err, ErrInvalidParam) {
			t.Errorf("NewWeighted(%v) = %v", bad, err)
		}
	}
	if _, err := NewWeighted(1); err != nil {
		t.Errorf("NewWeighted(1) = %v", err)
	}
}

func TestWeightedEvaluateKnown(t *testing.T) {
	w, err := NewWeighted(0.5)
	if err != nil {
		t.Fatal(err)
	}
	// R0=0.5; good: 0.5*1+0.5*0.5=0.75; bad: 0.5*0+0.5*0.75=0.375.
	got, err := w.Evaluate(historyOf(t, []bool{true, false}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.375) > 1e-12 {
		t.Fatalf("weighted = %v, want 0.375", got)
	}
}

func TestWeightedRecencyBias(t *testing.T) {
	w, _ := NewWeighted(0.5)
	// Same counts, different order: recent-bad must score lower.
	recentBad, err := w.Evaluate(historyOf(t, []bool{true, true, false}))
	if err != nil {
		t.Fatal(err)
	}
	recentGood, err := w.Evaluate(historyOf(t, []bool{false, true, true}))
	if err != nil {
		t.Fatal(err)
	}
	if recentBad >= recentGood {
		t.Fatalf("recency bias violated: %v >= %v", recentBad, recentGood)
	}
}

func TestBetaEvaluate(t *testing.T) {
	got, err := Beta{}.Evaluate(historyOf(t, []bool{true, true, false}))
	if err != nil {
		t.Fatal(err)
	}
	if want := 3.0 / 5.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("beta = %v, want %v", got, want)
	}
}

func TestTimeDecayDegeneratesToAverage(t *testing.T) {
	d, err := NewTimeDecay(1)
	if err != nil {
		t.Fatal(err)
	}
	h := historyOf(t, []bool{true, false, true, true, false})
	got, err := d.Evaluate(h)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Average{}.Evaluate(h)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("decay(1) = %v, average = %v", got, want)
	}
}

func TestTimeDecayValidation(t *testing.T) {
	for _, bad := range []float64{0, -0.5, 1.1, math.NaN()} {
		if _, err := NewTimeDecay(bad); !errors.Is(err, ErrInvalidParam) {
			t.Errorf("NewTimeDecay(%v) = %v", bad, err)
		}
	}
}

func TestSlidingWindowEvaluate(t *testing.T) {
	sw, err := NewSlidingWindow(2)
	if err != nil {
		t.Fatal(err)
	}
	// Only last 2 outcomes count: {false, true} -> 0.5.
	got, err := sw.Evaluate(historyOf(t, []bool{true, true, false, true}))
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.5 {
		t.Fatalf("window = %v, want 0.5", got)
	}
	// Short history: uses what exists.
	got, err = sw.Evaluate(historyOf(t, []bool{true}))
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("window short = %v, want 1", got)
	}
}

func TestSlidingWindowValidation(t *testing.T) {
	if _, err := NewSlidingWindow(0); !errors.Is(err, ErrInvalidParam) {
		t.Errorf("NewSlidingWindow(0) = %v", err)
	}
}

func TestNames(t *testing.T) {
	w, _ := NewWeighted(0.5)
	d, _ := NewTimeDecay(0.9)
	sw, _ := NewSlidingWindow(5)
	for _, tc := range []struct {
		f    Func
		want string
	}{
		{Average{}, "average"},
		{w, "weighted(λ=0.5)"},
		{Beta{}, "beta"},
		{d, "timedecay(γ=0.9)"},
		{sw, "window(W=5)"},
	} {
		if got := tc.f.Name(); got != tc.want {
			t.Errorf("Name = %q, want %q", got, tc.want)
		}
	}
}

// allTrackerFuncs enumerates every TrackerFunc for shared property tests.
func allTrackerFuncs(t *testing.T) []TrackerFunc {
	t.Helper()
	w, err := NewWeighted(0.5)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewTimeDecay(0.8)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewSlidingWindow(7)
	if err != nil {
		t.Fatal(err)
	}
	return []TrackerFunc{Average{}, w, Beta{}, d, sw}
}

// Property: every tracker agrees with its Func's Evaluate on random
// histories, stays within [0,1], and Reset restores the initial state.
func TestTrackersMatchEvaluate(t *testing.T) {
	for _, tf := range allTrackerFuncs(t) {
		tf := tf
		t.Run(tf.Name(), func(t *testing.T) {
			f := func(raw []bool) bool {
				if len(raw) == 0 {
					return true
				}
				h := feedback.NewHistory("s")
				tr := tf.NewTracker()
				for i, g := range raw {
					if err := h.AppendOutcome("c", g, time.Unix(int64(i), 0)); err != nil {
						return false
					}
					tr.Update(g)
					v := tr.Value()
					if math.IsNaN(v) || v < 0 || v > 1 {
						return false
					}
				}
				want, err := tf.Evaluate(h)
				if err != nil {
					return false
				}
				if math.Abs(tr.Value()-want) > 1e-9 {
					return false
				}
				// Reset then replay must reproduce the same value.
				tr.Reset()
				if !math.IsNaN(tr.Value()) {
					return false
				}
				for _, g := range raw {
					tr.Update(g)
				}
				return math.Abs(tr.Value()-want) < 1e-9
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestTrackerValueNaNBeforeUpdate(t *testing.T) {
	for _, tf := range allTrackerFuncs(t) {
		if !math.IsNaN(tf.NewTracker().Value()) {
			t.Errorf("%s: fresh tracker Value not NaN", tf.Name())
		}
	}
}

// Paper check: with the weighted function at λ=0.5, a trust value above 0.9
// drops below 0.9 after a single bad transaction, so an attacker can never
// cheat twice in a row (§5.1).
func TestWeightedNoTwoConsecutiveAttacks(t *testing.T) {
	w, _ := NewWeighted(0.5)
	tr := w.NewTracker()
	for i := 0; i < 100; i++ {
		tr.Update(true)
	}
	if tr.Value() < 0.9 {
		t.Fatalf("long good streak value %v < 0.9", tr.Value())
	}
	tr.Update(false)
	if tr.Value() >= 0.9 {
		t.Fatalf("one bad transaction left trust at %v, expected < 0.9", tr.Value())
	}
}
