package repserver

import (
	"bufio"
	"context"
	"errors"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"honestplayer/internal/behavior"
	"honestplayer/internal/core"
	"honestplayer/internal/feedback"
	"honestplayer/internal/ledger"
	"honestplayer/internal/repclient"
	"honestplayer/internal/stats"
	"honestplayer/internal/trust"
	"honestplayer/internal/wire"
)

// blockingTester stalls every behaviour test until released, so tests can
// hold an assess request in flight deterministically. started is signalled
// once per Test call.
type blockingTester struct {
	started chan struct{}
	release chan struct{}
}

func (bt *blockingTester) Name() string { return "blocking" }

func (bt *blockingTester) Test(h *feedback.History) (behavior.Verdict, error) {
	select {
	case bt.started <- struct{}{}:
	default:
	}
	<-bt.release
	return behavior.Verdict{Honest: true}, nil
}

// blockingServer starts a server whose assess path stalls until the
// returned tester is released.
func blockingServer(t *testing.T, cfg Config) (*Server, *blockingTester) {
	t.Helper()
	bt := &blockingTester{started: make(chan struct{}, 1), release: make(chan struct{})}
	tp, err := core.NewTwoPhase(bt, trust.Average{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Assessor = tp
	srv, err := New("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	return srv, bt
}

func testAssessor(t *testing.T) *core.TwoPhase {
	t.Helper()
	tester, err := behavior.NewMulti(behavior.Config{
		Calibrator: stats.NewCalibrator(stats.CalibrationConfig{Seed: 1, Replicates: 200}, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	tp, err := core.NewTwoPhase(tester, trust.Average{})
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// startServer starts a server on an ephemeral port and registers cleanup.
func startServer(t *testing.T) *Server {
	t.Helper()
	srv, err := New("127.0.0.1:0", Config{Assessor: testAssessor(t)})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return srv
}

func dial(t *testing.T, srv *Server) *repclient.Client {
	t.Helper()
	c, err := repclient.Dial(srv.Addr(), repclient.WithTimeout(3*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func rec(s, c feedback.EntityID, good bool, at int64) feedback.Feedback {
	r := feedback.Negative
	if good {
		r = feedback.Positive
	}
	return feedback.Feedback{Time: time.Unix(at, 0).UTC(), Server: s, Client: c, Rating: r}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("127.0.0.1:0", Config{}); err == nil {
		t.Fatal("nil assessor must fail")
	}
}

func TestPing(t *testing.T) {
	srv := startServer(t)
	c := dial(t, srv)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if srv.Stats().Requests == 0 {
		t.Fatal("request not counted")
	}
}

func TestSubmitAndHistory(t *testing.T) {
	srv := startServer(t)
	c := dial(t, srv)
	stored, err := c.Submit(rec("srv", "alice", true, 1))
	if err != nil || !stored {
		t.Fatalf("submit: %v %v", stored, err)
	}
	// Duplicate.
	stored, err = c.Submit(rec("srv", "alice", true, 1))
	if err != nil || stored {
		t.Fatalf("duplicate submit: %v %v", stored, err)
	}
	_, err = c.Submit(rec("srv", "bob", false, 2))
	if err != nil {
		t.Fatal(err)
	}
	recs, total, err := c.History("srv", 0)
	if err != nil {
		t.Fatal(err)
	}
	if total != 2 || len(recs) != 2 {
		t.Fatalf("history = %d/%d", len(recs), total)
	}
	if !recs[0].Time.Before(recs[1].Time) {
		t.Fatal("history out of order")
	}
	// Limit keeps the most recent records.
	recs, total, err = c.History("srv", 1)
	if err != nil {
		t.Fatal(err)
	}
	if total != 2 || len(recs) != 1 || recs[0].Client != "bob" {
		t.Fatalf("limited history = %+v total=%d", recs, total)
	}
}

func TestSubmitInvalid(t *testing.T) {
	srv := startServer(t)
	c := dial(t, srv)
	_, err := c.Submit(feedback.Feedback{})
	var remote *wire.ErrorResponse
	if !errors.As(err, &remote) || remote.Code != "invalid_feedback" {
		t.Fatalf("err = %v", err)
	}
	// The connection survives the error.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after error: %v", err)
	}
}

func TestAssessEndToEnd(t *testing.T) {
	srv := startServer(t)
	c := dial(t, srv)

	// Feed an honest history via the network.
	rng := stats.NewRNG(42)
	for i := 0; i < 300; i++ {
		if _, err := c.Submit(rec("honest", feedback.EntityID(rune('a'+rng.Intn(20))), rng.Bernoulli(0.95), int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := c.Assess("honest", 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Accept || resp.Assessment.Suspicious {
		t.Fatalf("honest server rejected: %+v", resp.Assessment)
	}
	if resp.Assessment.Trust < 0.9 {
		t.Fatalf("trust = %v", resp.Assessment.Trust)
	}

	// A deterministic periodic attacker must be flagged.
	for i := 0; i < 300; i++ {
		if _, err := c.Submit(rec("attacker", "c", i%10 != 9, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	resp, err = c.Assess("attacker", 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accept || !resp.Assessment.Suspicious {
		t.Fatalf("periodic attacker accepted: %+v", resp.Assessment)
	}
}

func TestAssessUnknownServer(t *testing.T) {
	srv := startServer(t)
	c := dial(t, srv)
	_, err := c.Assess("ghost", 0.9)
	var remote *wire.ErrorResponse
	if !errors.As(err, &remote) || remote.Code != "unknown_server" {
		t.Fatalf("err = %v", err)
	}
}

func TestHistoryMissingServerField(t *testing.T) {
	srv := startServer(t)
	c := dial(t, srv)
	_, _, err := c.History("", 0)
	var remote *wire.ErrorResponse
	if !errors.As(err, &remote) || remote.Code != "bad_request" {
		t.Fatalf("err = %v", err)
	}
}

func TestMalformedFrameGetsErrorAndClose(t *testing.T) {
	srv := startServer(t)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if _, err := conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	env, err := wire.Read(bufio.NewReader(conn))
	if err != nil {
		t.Fatalf("expected error frame, got %v", err)
	}
	if env.Type != wire.TypeError {
		t.Fatalf("type = %s", env.Type)
	}
	if env.ID != wire.UnattributableID {
		t.Fatalf("error frame id = %d, want %d", env.ID, wire.UnattributableID)
	}
}

// TestBadVersionFrameErrorIsUnattributable: a frame whose envelope parses
// (so its id is known) but carries a bad protocol version still gets an
// id-0 error frame — the server closes the connection afterwards, and id 0
// is the documented connection-fatal signal. Echoing the request id here
// would make the client treat it as an ordinary per-request error and only
// notice the dead connection on its next call.
func TestBadVersionFrameErrorIsUnattributable(t *testing.T) {
	srv := startServer(t)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if _, err := conn.Write([]byte(`{"v":99,"type":"ping","id":9}` + "\n")); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	reader := bufio.NewReader(conn)
	env, err := wire.Read(reader)
	if err != nil {
		t.Fatalf("expected error frame, got %v", err)
	}
	if env.Type != wire.TypeError || env.ID != wire.UnattributableID {
		t.Fatalf("env = %+v, want %s with id %d", env, wire.TypeError, wire.UnattributableID)
	}
	var e wire.ErrorResponse
	if err := wire.DecodePayload(env, &e); err != nil {
		t.Fatal(err)
	}
	if e.Code != wire.CodeBadRequest {
		t.Fatalf("code = %q", e.Code)
	}
	// The connection is closed right after the error frame.
	if _, err := wire.Read(reader); err == nil {
		t.Fatal("connection still open after bad-version frame")
	}
}

func TestUnknownMessageType(t *testing.T) {
	srv := startServer(t)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	env, err := wire.Encode(wire.MsgType("nonsense"), 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.Write(conn, env); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	resp, err := wire.Read(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != wire.TypeError || resp.ID != 5 {
		t.Fatalf("resp = %+v", resp)
	}
	var e wire.ErrorResponse
	if err := wire.DecodePayload(resp, &e); err != nil {
		t.Fatal(err)
	}
	if e.Code != "unknown_type" || !strings.Contains(e.Message, "nonsense") {
		t.Fatalf("error = %+v", e)
	}
}

func TestCloseIsIdempotentAndStopsServe(t *testing.T) {
	srv, err := New("127.0.0.1:0", Config{Assessor: testAssessor(t)})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	// Give Serve a moment to start accepting.
	time.Sleep(20 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after Close", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestServerClosesActiveConnections(t *testing.T) {
	srv, err := New("127.0.0.1:0", Config{Assessor: testAssessor(t)})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	c, err := repclient.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Requests on the closed connection now fail.
	if err := c.Ping(); err == nil {
		t.Fatal("ping succeeded after server close")
	}
}

func TestClientClosed(t *testing.T) {
	srv := startServer(t)
	c := dial(t, srv)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); !errors.Is(err, repclient.ErrClosed) {
		t.Fatalf("err = %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestSeed(t *testing.T) {
	srv := startServer(t)
	n, err := srv.Seed([]feedback.Feedback{rec("s", "c", true, 1), rec("s", "c", false, 2)})
	if err != nil || n != 2 {
		t.Fatalf("seed: %d %v", n, err)
	}
	if srv.Store().ServerLen("s") != 2 {
		t.Fatal("seeded records missing")
	}
}

func TestConcurrentClients(t *testing.T) {
	srv := startServer(t)
	const clients = 5
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		go func(g int) {
			c, err := repclient.Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer func() { _ = c.Close() }()
			for i := 0; i < 50; i++ {
				if _, err := c.Submit(rec("shared", feedback.EntityID(rune('a'+g)), true, int64(g*1000+i))); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < clients; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.Store().ServerLen("shared"); got != clients*50 {
		t.Fatalf("stored = %d, want %d", got, clients*50)
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	srv := startServer(t)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	// Stream a frame beyond wire.MaxFrame without a newline; the server
	// must cut the connection rather than buffer without bound.
	junk := make([]byte, 1<<20)
	for i := range junk {
		junk[i] = 'x'
	}
	for written := 0; written <= wire.MaxFrame+len(junk); written += len(junk) {
		if _, err := conn.Write(junk); err != nil {
			return // server already hung up: success
		}
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	for {
		if _, err := conn.Read(buf); err != nil {
			return // EOF/reset: connection terminated as required
		}
	}
}

func TestStatsCounters(t *testing.T) {
	srv := startServer(t)
	c := dial(t, srv)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	_, _ = c.Submit(feedback.Feedback{}) // invalid -> error counter
	st := srv.Stats()
	if st.Connections == 0 || st.Requests < 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPersistentRecorderSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	openServer := func() (*Server, *ledger.PersistentStore) {
		ps, err := ledger.OpenStore(path)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := New("127.0.0.1:0", Config{
			Assessor: testAssessor(t),
			Store:    ps.Store(),
			Recorder: ps,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		return srv, ps
	}

	srv, ps := openServer()
	c, err := repclient.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := c.Submit(rec("durable", "alice", i%10 != 0, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	_ = c.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: the history is still there.
	srv2, ps2 := openServer()
	defer func() {
		if err := srv2.Close(); err != nil {
			t.Error(err)
		}
		if err := ps2.Close(); err != nil {
			t.Error(err)
		}
	}()
	c2, err := repclient.Dial(srv2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c2.Close() }()
	recs, total, err := c2.History("durable", 0)
	if err != nil {
		t.Fatal(err)
	}
	if total != 50 || len(recs) != 50 {
		t.Fatalf("after restart: %d/%d records", len(recs), total)
	}
	// And new submits keep flowing.
	if _, err := c2.Submit(rec("durable", "bob", true, 1000)); err != nil {
		t.Fatal(err)
	}
	if srv2.Store().ServerLen("durable") != 51 {
		t.Fatal("post-restart submit not stored")
	}
}

func TestSubmitBatch(t *testing.T) {
	srv := startServer(t)
	c := dial(t, srv)
	recs := []feedback.Feedback{
		rec("batched", "a", true, 1),
		rec("batched", "b", false, 2),
		rec("batched", "a", true, 1), // duplicate of the first
	}
	stored, dups, err := c.SubmitBatch(recs)
	if err != nil {
		t.Fatal(err)
	}
	if stored != 2 || dups != 1 {
		t.Fatalf("batch: stored=%d dups=%d", stored, dups)
	}
	if srv.Store().ServerLen("batched") != 2 {
		t.Fatalf("store has %d", srv.Store().ServerLen("batched"))
	}
	// Invalid record mid-batch: it is reported per record with its request
	// index, and every valid record — before AND after it — is stored.
	resp, err := c.SubmitBatchReport([]feedback.Feedback{
		rec("batched", "c", true, 3),
		{},
		rec("batched", "d", false, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stored != 2 || resp.Duplicates != 0 {
		t.Fatalf("batch report: %+v", resp)
	}
	if len(resp.Rejected) != 1 || resp.Rejected[0].Index != 1 {
		t.Fatalf("rejected = %+v", resp.Rejected)
	}
	if !strings.Contains(resp.Rejected[0].Reason, "invalid rating") {
		t.Fatalf("reason = %q", resp.Rejected[0].Reason)
	}
	if srv.Store().ServerLen("batched") != 4 {
		t.Fatalf("valid records not stored: %d", srv.Store().ServerLen("batched"))
	}
	// The convenience wrapper surfaces rejects as an error alongside counts.
	stored, _, err = c.SubmitBatch([]feedback.Feedback{rec("batched", "e", true, 5), {}})
	if err == nil || !strings.Contains(err.Error(), "record 1") {
		t.Fatalf("SubmitBatch err = %v", err)
	}
	if stored != 1 {
		t.Fatalf("SubmitBatch stored = %d", stored)
	}
}

// TestSubmitBatchItemsCapAndChunking pins the per-item contract of the
// group-commit write path: Items[i] answers Records[i] exactly, an over-cap
// frame is rejected whole, and the client splits any larger submission into
// max-sized frames transparently.
func TestSubmitBatchItemsCapAndChunking(t *testing.T) {
	srv := startServer(t)
	c := dial(t, srv)

	resp, err := c.SubmitBatchReport([]feedback.Feedback{
		rec("items", "a", true, 1),
		rec("items", "a", true, 1), // duplicate of the first
		{},                         // invalid
		rec("items", "b", false, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != 4 {
		t.Fatalf("items = %d, want one per record", len(resp.Items))
	}
	if !resp.Items[0].Stored || resp.Items[0].Error != nil {
		t.Fatalf("item 0 = %+v, want stored", resp.Items[0])
	}
	if resp.Items[1].Stored || resp.Items[1].Error != nil {
		t.Fatalf("item 1 = %+v, want duplicate (not stored, no error)", resp.Items[1])
	}
	if resp.Items[2].Error == nil || resp.Items[2].Error.Code != wire.CodeInvalidFeedback {
		t.Fatalf("item 2 = %+v, want invalid_feedback error", resp.Items[2])
	}
	if !resp.Items[3].Stored {
		t.Fatalf("item 3 = %+v, want stored", resp.Items[3])
	}

	// A frame above the cap is rejected whole, before any record is applied.
	over := make([]feedback.Feedback, wire.MaxSubmitBatch+1)
	for i := range over {
		over[i] = rec("over", "c", true, int64(100+i))
	}
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	env, err := wire.Encode(wire.TypeSubmitB, 1, wire.BatchRequest{Records: over})
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.Write(conn, env); err != nil {
		t.Fatal(err)
	}
	got, err := wire.Read(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != wire.TypeError {
		t.Fatalf("over-cap frame got %s, want error", got.Type)
	}
	var werr wire.ErrorResponse
	if err := wire.DecodePayload(got, &werr); err != nil {
		t.Fatal(err)
	}
	if werr.Code != wire.CodeBadRequest {
		t.Fatalf("over-cap code = %s, want bad_request", werr.Code)
	}
	if srv.Store().ServerLen("over") != 0 {
		t.Fatal("over-cap frame partially applied")
	}

	// The client chunks a larger workload into cap-sized frames; indexes in
	// the merged report stay request-relative across chunk boundaries.
	many := make([]feedback.Feedback, 400)
	for i := range many {
		many[i] = rec("many", "c", true, int64(1000+i))
	}
	many[300] = feedback.Feedback{} // poison one record in the second chunk
	report, err := c.SubmitBatchReport(many)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Items) != len(many) {
		t.Fatalf("chunked items = %d, want %d", len(report.Items), len(many))
	}
	if report.Stored != len(many)-1 {
		t.Fatalf("chunked stored = %d, want %d", report.Stored, len(many)-1)
	}
	if len(report.Rejected) != 1 || report.Rejected[0].Index != 300 {
		t.Fatalf("chunked rejected = %+v, want index 300", report.Rejected)
	}
	if report.Items[300].Error == nil {
		t.Fatal("item 300 lost its error across the chunk boundary")
	}
	if srv.Store().ServerLen("many") != len(many)-1 {
		t.Fatalf("store has %d, want %d", srv.Store().ServerLen("many"), len(many)-1)
	}
}

// TestAssessCacheEndToEnd drives the caching hot path over the wire: a
// repeated assessment is served from the cache, and a write to the assessed
// server invalidates it (a stale entry must not survive a write).
func TestAssessCacheEndToEnd(t *testing.T) {
	srv, err := New("127.0.0.1:0", Config{Assessor: testAssessor(t), AssessCacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	c := dial(t, srv)
	for i := 0; i < 60; i++ {
		if _, err := c.Submit(rec("cached", feedback.EntityID(rune('a'+i%20)), true, int64(i))); err != nil {
			t.Fatal(err)
		}
	}

	first, err := c.Assess("cached", 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first assessment cannot be cached")
	}
	second, err := c.Assess("cached", 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("repeat assessment not served from cache")
	}
	if second.Assessment.Trust != first.Assessment.Trust ||
		second.Assessment.Suspicious != first.Assessment.Suspicious ||
		second.Accept != first.Accept {
		t.Fatalf("cached answer differs: %+v vs %+v", second, first)
	}
	// A different threshold is a different decision — never reuse blindly.
	if resp, err := c.Assess("cached", 0.1); err != nil || resp.Cached {
		t.Fatalf("different threshold served from cache: %+v %v", resp, err)
	}

	// A write to the server invalidates its cached assessments.
	if _, err := c.Submit(rec("cached", "zz", true, 1000)); err != nil {
		t.Fatal(err)
	}
	third, err := c.Assess("cached", 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if third.Cached {
		t.Fatal("stale assessment served after write")
	}
	if srv.Store().ServerLen("cached") != 61 {
		t.Fatalf("store not updated before reassessment")
	}

	st := srv.Stats()
	if st.Cache.Hits != 1 || st.Cache.Misses != 3 || st.Cache.Invalidations != 1 {
		t.Fatalf("cache stats = %+v", st.Cache)
	}
}

// TestRequestDeadlineExceeded drives the acceptance criterion end to end: a
// TypeAssess request whose handler stalls past RequestTimeout must yield a
// deadline_exceeded error frame — not a hung connection — and the
// connection must stay usable afterwards.
func TestRequestDeadlineExceeded(t *testing.T) {
	srv, bt := blockingServer(t, Config{RequestTimeout: 80 * time.Millisecond})
	t.Cleanup(func() {
		close(bt.release) // let the abandoned handler goroutine finish
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	c := dial(t, srv)
	if _, err := c.Submit(rec("slow", "alice", true, 1)); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	_, err := c.Assess("slow", 0.9)
	var remote *wire.ErrorResponse
	if !errors.As(err, &remote) || remote.Code != wire.CodeDeadlineExceeded {
		t.Fatalf("err = %v, want %s error frame", err, wire.CodeDeadlineExceeded)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline reply took %s", elapsed)
	}
	// The connection survives a deadline error: the error frame carried the
	// request id, so the stream is still synchronised.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after deadline error: %v", err)
	}

	st := srv.Stats()
	assess := st.PerType[string(wire.TypeAssess)]
	if assess.Requests == 0 || assess.Errors == 0 {
		t.Fatalf("assess metrics = %+v", assess)
	}
	if ping := st.PerType[string(wire.TypePing)]; ping.Requests == 0 || ping.Errors != 0 {
		t.Fatalf("ping metrics = %+v", ping)
	}
}

// TestGracefulShutdownDrainsInFlight verifies the drain path: a request in
// flight when Close starts completes and its response is delivered, while
// the listener refuses new connections.
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	srv, bt := blockingServer(t, Config{DrainTimeout: 5 * time.Second})
	c := dial(t, srv)
	if _, err := c.Submit(rec("srv", "alice", true, 1)); err != nil {
		t.Fatal(err)
	}

	type assessResult struct {
		resp wire.AssessResponse
		err  error
	}
	got := make(chan assessResult, 1)
	go func() {
		resp, err := c.Assess("srv", 0.9)
		got <- assessResult{resp, err}
	}()
	<-bt.started // the assess request is now in flight

	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()

	// New connections are refused while draining (listener already closed).
	refusedBy := time.Now().Add(2 * time.Second)
	for {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			break
		}
		// A connection accepted in the closing race is cut without service.
		_ = conn.SetReadDeadline(time.Now().Add(time.Second))
		if _, rerr := wire.Read(bufio.NewReader(conn)); rerr != nil {
			_ = conn.Close()
			break
		}
		_ = conn.Close()
		if time.Now().After(refusedBy) {
			t.Fatal("server still accepting connections while draining")
		}
	}

	// Release the handler: the drained request must complete successfully.
	close(bt.release)
	select {
	case r := <-got:
		if r.err != nil {
			t.Fatalf("in-flight assess failed during drain: %v", r.err)
		}
		if !r.resp.Accept {
			t.Fatalf("assess resp = %+v", r.resp)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight assess never completed")
	}
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after drain")
	}
}

// TestCloseForceTerminatesStalledRequest: a handler that never returns (and
// a client that never hangs up) must not hold Close past the drain grace
// period — the base context is cancelled and the connection force-closed.
func TestCloseForceTerminatesStalledRequest(t *testing.T) {
	srv, bt := blockingServer(t, Config{DrainTimeout: 150 * time.Millisecond})
	t.Cleanup(func() { close(bt.release) })
	c := dial(t, srv)
	if _, err := c.Submit(rec("srv", "alice", true, 1)); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		_, err := c.Assess("srv", 0.9)
		got <- err
	}()
	<-bt.started

	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("Close took %s with a stalled request", elapsed)
	}
	// The stalled client observes a dead connection, not a hang.
	select {
	case err := <-got:
		if err == nil {
			t.Fatal("stalled assess succeeded after force-close")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("client still blocked after force-close")
	}
}

// TestShutdownHonoursCallerContext: Shutdown with an already-expired
// context still waits for handlers but force-closes immediately.
func TestShutdownHonoursCallerContext(t *testing.T) {
	srv, bt := blockingServer(t, Config{})
	t.Cleanup(func() { close(bt.release) })
	c := dial(t, srv)
	if _, err := c.Submit(rec("srv", "alice", true, 1)); err != nil {
		t.Fatal(err)
	}
	go func() { _, _ = c.Assess("srv", 0.9) }()
	<-bt.started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("Shutdown took %s with a cancelled context", elapsed)
	}
}

// TestConcurrentShutdownHonoursOwnContext: while the first Shutdown owns
// the drain (held open by a stalled handler), a second Shutdown whose
// context has already expired must return ctx.Err() promptly instead of
// blocking unboundedly on the drain.
func TestConcurrentShutdownHonoursOwnContext(t *testing.T) {
	srv, bt := blockingServer(t, Config{DrainTimeout: 10 * time.Second})
	c := dial(t, srv)
	if _, err := c.Submit(rec("srv", "alice", true, 1)); err != nil {
		t.Fatal(err)
	}
	go func() { _, _ = c.Assess("srv", 0.9) }()
	<-bt.started

	firstDone := make(chan error, 1)
	go func() { firstDone <- srv.Close() }() // owns the drain
	// Wait until the first call has marked the server closed.
	for {
		srv.mu.Lock()
		closed := srv.closed
		srv.mu.Unlock()
		if closed {
			break
		}
		time.Sleep(time.Millisecond)
	}

	expired, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := srv.Shutdown(expired); !errors.Is(err, context.Canceled) {
		t.Fatalf("concurrent shutdown err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("concurrent Shutdown blocked %s past its context", elapsed)
	}

	// Release the handler so the first call's drain completes; a later
	// Shutdown with a live context reports the first call's close error.
	close(bt.release)
	select {
	case err := <-firstDone:
		if err != nil {
			t.Fatalf("first close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("first Close never returned after release")
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("post-drain shutdown: %v", err)
	}
}
