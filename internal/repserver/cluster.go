// Cluster routing: the server-side half of partitioned ownership.
//
// Client-facing handlers route by the consistent-hash ring (attach via
// SetCluster): writes go to the server's owner and replicate to its replica
// set, reads are served from local state when the node holds it and
// fanned out + weight-merged when it does not. The fwd.* handlers below are
// the node-to-node surface those routes land on — each one answers strictly
// from local state, so a forwarded call can never be forwarded again and
// routing loops are structurally impossible.
package repserver

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"honestplayer/internal/cluster"
	"honestplayer/internal/feedback"
	"honestplayer/internal/service"
	"honestplayer/internal/wire"
)

// forwardedErr converts a forwarded call's failure into the error the
// client should see: a typed error relayed from the peer keeps its code
// (unknown_server stays unknown_server), a transport failure becomes
// unavailable.
func forwardedErr(err error) error {
	var typed *wire.ErrorResponse
	if errors.As(err, &typed) {
		return typed
	}
	return service.Errorf(wire.CodeUnavailable, "%v", err)
}

// nodeID names the local node in forwarded responses; empty on a
// non-clustered server.
func (s *Server) nodeID() string {
	if cl := s.clusterRef.Load(); cl != nil {
		return cl.Self()
	}
	return ""
}

// replicate pushes freshly stored records to the other members of each
// record's replica set, grouped so each peer gets one frame. It is called
// on the owner's write path only (the Replica flag stops the receivers from
// fanning out again) and is synchronous — when a submit returns, the
// replica set has converged — but best-effort: an unreachable replica is
// logged and counted, not surfaced, because the owner's copy is already
// durable and anti-entropy gossip repairs the replica later.
func (s *Server) replicate(ctx context.Context, recs []feedback.Feedback) {
	cl := s.clusterRef.Load()
	if cl == nil || cl.Size() <= 1 || cl.Replicas() <= 1 || len(recs) == 0 {
		return
	}
	byPeer := make(map[string][]feedback.Feedback)
	for _, rec := range recs {
		// Replica sets are per record, not per owner: two servers with the
		// same owner can have different successor nodes on the ring.
		for _, id := range cl.ReplicaSet(rec.Server) {
			if id != cl.Self() {
				byPeer[id] = append(byPeer[id], rec)
			}
		}
	}
	var wg sync.WaitGroup
	for id, group := range byPeer {
		wg.Add(1)
		go func(id string, group []feedback.Feedback) {
			defer wg.Done()
			if _, err := cl.ForwardBatch(ctx, id, group, true); err != nil {
				s.logf("cluster: replicate %d records to %s: %v", len(group), id, err)
			}
		}(id, group)
	}
	wg.Wait()
}

// acceptedRecords filters out the records a batch apply rejected, so
// replication only carries records the owner actually holds.
func acceptedRecords(recs []feedback.Feedback, rejected []wire.BatchReject) []feedback.Feedback {
	if len(rejected) == 0 {
		return recs
	}
	drop := make(map[int]struct{}, len(rejected))
	for _, r := range rejected {
		drop[r.Index] = struct{}{}
	}
	out := make([]feedback.Feedback, 0, len(recs)-len(rejected))
	for i, rec := range recs {
		if _, bad := drop[i]; !bad {
			out = append(out, rec)
		}
	}
	return out
}

// batchGroup is one owner's slice of a batch request, with the original
// request positions for remapping the per-record report.
type batchGroup struct {
	recs []feedback.Feedback
	idx  []int
}

// clusterBatch serves a submit.batch on a clustered node: records are split
// by owner, the local group applied (and replicated) in place, the remote
// groups forwarded to their owners concurrently. Per-record rejections are
// remapped to request positions; an unreachable owner rejects its whole
// group with an unavailable reason, preserving the batch invariant
// Stored + Duplicates + len(Rejected) == len(Records).
func (s *Server) clusterBatch(ctx context.Context, cl *cluster.Cluster, req wire.BatchRequest) (wire.BatchResponse, error) {
	if err := ctx.Err(); err != nil {
		return wire.BatchResponse{}, err
	}
	var local batchGroup
	remote := make(map[string]*batchGroup)
	for i, rec := range req.Records {
		owner := cl.Owner(rec.Server)
		if owner == cl.Self() {
			local.recs = append(local.recs, rec)
			local.idx = append(local.idx, i)
			continue
		}
		g := remote[owner]
		if g == nil {
			g = &batchGroup{}
			remote[owner] = g
		}
		g.recs = append(g.recs, rec)
		g.idx = append(g.idx, i)
	}

	type result struct {
		g    *batchGroup
		resp wire.BatchResponse
		err  error
	}
	results := make([]result, 0, len(remote)+1)
	resCh := make(chan result, len(remote))
	for owner, g := range remote {
		go func(owner string, g *batchGroup) {
			resp, err := cl.ForwardBatch(ctx, owner, g.recs, false)
			resCh <- result{g: g, resp: resp, err: err}
		}(owner, g)
	}
	if len(local.recs) > 0 {
		resp, err := s.applyBatch(ctx, local.recs)
		if err != nil {
			// Only context expiry aborts applyBatch; drain the fan-out before
			// reporting it.
			for range remote {
				<-resCh
			}
			return wire.BatchResponse{}, err
		}
		s.replicate(ctx, acceptedRecords(local.recs, resp.Rejected))
		results = append(results, result{g: &local, resp: resp})
	}
	for range remote {
		results = append(results, <-resCh)
	}

	out := wire.BatchResponse{Items: make([]wire.SubmitBatchItem, len(req.Records))}
	for _, r := range results {
		if r.err != nil {
			// The whole group failed to reach its owner: report every record
			// as rejected so the response still accounts for each one.
			reason := fmt.Sprintf("%s: %v", wire.CodeUnavailable, r.err)
			var typed *wire.ErrorResponse
			if errors.As(r.err, &typed) {
				reason = typed.Error()
			}
			for _, pos := range r.g.idx {
				out.Rejected = append(out.Rejected, wire.BatchReject{Index: pos, Reason: reason})
				out.Items[pos].Error = &wire.ErrorResponse{Code: wire.CodeUnavailable, Message: reason}
			}
			continue
		}
		out.Stored += r.resp.Stored
		out.Duplicates += r.resp.Duplicates
		for _, rej := range r.resp.Rejected {
			out.Rejected = append(out.Rejected, wire.BatchReject{Index: r.g.idx[rej.Index], Reason: rej.Reason})
		}
		if len(r.resp.Items) == len(r.g.recs) {
			for i, item := range r.resp.Items {
				out.Items[r.g.idx[i]] = item
			}
			continue
		}
		// A peer that answered without a per-item report (it should not —
		// every node of a cluster runs the same build): synthesize the items
		// from the aggregate counters. Rejected slots are exact; the rest can
		// only be told apart when the group had no duplicates at all.
		rejected := make(map[int]string, len(r.resp.Rejected))
		for _, rej := range r.resp.Rejected {
			rejected[rej.Index] = rej.Reason
		}
		for i, pos := range r.g.idx {
			if reason, bad := rejected[i]; bad {
				out.Items[pos].Error = &wire.ErrorResponse{Code: wire.CodeInvalidFeedback, Message: reason}
				continue
			}
			out.Items[pos].Stored = r.resp.Duplicates == 0
		}
	}
	sortRejected(out.Rejected)
	return out, nil
}

// sortRejected restores request order in a merged rejection report.
func sortRejected(rejected []wire.BatchReject) {
	for i := 1; i < len(rejected); i++ {
		for j := i; j > 0 && rejected[j-1].Index > rejected[j].Index; j-- {
			rejected[j-1], rejected[j] = rejected[j], rejected[j-1]
		}
	}
}

// clusterAssess answers an assess for a server whose state lives elsewhere.
// The owner is asked for its full assessment while every other member of
// the replica set is asked for an O(1) state digest (record count + content
// XOR), all concurrently. Replication is synchronous, so the digests almost
// always match the owner's view and the owner's assessment — verified
// against the whole set — is the merged answer without paying a full
// recomputation per replica. A disagreeing digest (a replica that missed a
// write) escalates: the diverged replicas are asked for full assessments
// and the views weight-merged (cluster.Merge), which is the only case where
// merging can change the answer. When the owner is unreachable or declines,
// the remaining replicas are asked for full assessments instead; any
// reachable replica suffices, and only when the whole set is down does the
// request fail with unavailable.
func (s *Server) clusterAssess(ctx context.Context, cl *cluster.Cluster, req wire.AssessRequest) (wire.AssessResponse, error) {
	set := cl.ReplicaSet(req.Server)
	parts := make([]wire.NodeAssessment, len(set))
	errs := make([]error, len(set))
	var wg sync.WaitGroup
	for i, id := range set {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			parts[i], errs[i] = cl.ForwardAssess(ctx, id, req.Server, req.Threshold, i > 0)
		}(i, id)
	}
	wg.Wait()

	if errs[0] == nil {
		owner := parts[0]
		agreed := []string{owner.Node}
		var diverged []int
		for i := 1; i < len(set); i++ {
			if errs[i] != nil {
				// Unreachable replica: the owner's view stands for it. Gossip
				// anti-entropy repairs the replica; reads do not wait for it.
				continue
			}
			if parts[i].Records == owner.Records && parts[i].XOR == owner.XOR {
				agreed = append(agreed, parts[i].Node)
				continue
			}
			diverged = append(diverged, i)
		}
		if len(diverged) == 0 {
			resp := owner.AssessResponse
			resp.Merged = true
			resp.MergedFrom = agreed
			return resp, nil
		}
		cl.CountDigestMismatch()
		full := fetchFull(ctx, cl, req, set, diverged)
		merged, err := cluster.Merge(req.Threshold, append([]wire.NodeAssessment{owner}, full...))
		if err != nil {
			return wire.AssessResponse{}, service.Errorf(wire.CodeInternal, "%v", err)
		}
		if len(full) > 0 {
			cl.CountMerge()
		}
		return merged, nil
	}

	// The owner is down or declined. Re-ask the rest of the set for full
	// assessments (the first round only fetched their digests) and merge
	// the survivors.
	rest := make([]int, 0, len(set)-1)
	for i := 1; i < len(set); i++ {
		rest = append(rest, i)
	}
	live := fetchFull(ctx, cl, req, set, rest)
	if len(live) == 0 {
		var typed *wire.ErrorResponse
		if errors.As(errs[0], &typed) {
			// Every replica failed the same way the owner did — relay its
			// typed error (unknown_server for a server nobody has seen).
			return wire.AssessResponse{}, typed
		}
		return wire.AssessResponse{}, service.Errorf(wire.CodeUnavailable,
			"all %d replicas of %q unreachable: %v", len(set), req.Server, errs[0])
	}
	merged, err := cluster.Merge(req.Threshold, live)
	if err != nil {
		return wire.AssessResponse{}, service.Errorf(wire.CodeInternal, "%v", err)
	}
	if len(live) > 1 {
		cl.CountMerge()
	}
	return merged, nil
}

// fetchFull asks the set members at the given indices for full assessments
// concurrently and returns the successful parts.
func fetchFull(ctx context.Context, cl *cluster.Cluster, req wire.AssessRequest, set []string, idx []int) []wire.NodeAssessment {
	if len(idx) == 0 {
		return nil
	}
	parts := make([]wire.NodeAssessment, len(idx))
	errs := make([]error, len(idx))
	var wg sync.WaitGroup
	for j, i := range idx {
		wg.Add(1)
		go func(j, i int) {
			defer wg.Done()
			parts[j], errs[j] = cl.ForwardAssess(ctx, set[i], req.Server, req.Threshold, false)
		}(j, i)
	}
	wg.Wait()
	live := parts[:0]
	for j := range parts {
		if errs[j] == nil {
			live = append(live, parts[j])
		}
	}
	return live
}

// clusterAssessBatch serves an assess.batch on a clustered node: servers
// split by routing — locally held ones through the normal shard-grouped
// pool, the rest forwarded to their owners concurrently — and the items
// remapped to request order. An unreachable owner fails only its own items
// (unavailable), matching the batch's per-item error contract.
func (s *Server) clusterAssessBatch(ctx context.Context, cl *cluster.Cluster, req wire.AssessBatchRequest) (wire.AssessBatchResponse, error) {
	n := len(req.Servers)
	if n == 0 {
		return wire.AssessBatchResponse{}, service.Errorf(wire.CodeBadRequest, "empty batch")
	}
	if n > wire.MaxAssessBatch {
		return wire.AssessBatchResponse{}, service.Errorf(wire.CodeBadRequest,
			"batch of %d servers exceeds max %d", n, wire.MaxAssessBatch)
	}
	if err := ctx.Err(); err != nil {
		return wire.AssessBatchResponse{}, err
	}

	type assessGroup struct {
		servers []feedback.EntityID
		idx     []int
	}
	var local assessGroup
	remote := make(map[string]*assessGroup)
	for i, srv := range req.Servers {
		// Local state wins (owner or replica); empty IDs go through the
		// local path for its standard missing-server item error.
		if srv == "" || cl.Owns(srv) {
			local.servers = append(local.servers, srv)
			local.idx = append(local.idx, i)
			continue
		}
		owner := cl.Owner(srv)
		g := remote[owner]
		if g == nil {
			g = &assessGroup{}
			remote[owner] = g
		}
		g.servers = append(g.servers, srv)
		g.idx = append(g.idx, i)
	}

	items := make([]wire.AssessBatchItem, n)
	type result struct {
		g     *assessGroup
		items []wire.AssessBatchItem
		err   error
	}
	resCh := make(chan result, len(remote))
	for owner, g := range remote {
		go func(owner string, g *assessGroup) {
			got, err := cl.ForwardAssessBatch(ctx, owner, g.servers, req.Threshold)
			if err == nil && len(got) != len(g.servers) {
				err = fmt.Errorf("owner %s returned %d items for %d servers", owner, len(got), len(g.servers))
			}
			resCh <- result{g: g, items: got, err: err}
		}(owner, g)
	}
	if len(local.servers) > 0 {
		resp, err := s.assessBatch(ctx, wire.AssessBatchRequest{Servers: local.servers, Threshold: req.Threshold})
		if err != nil {
			for range remote {
				<-resCh
			}
			return wire.AssessBatchResponse{}, err
		}
		for i, item := range resp.Items {
			items[local.idx[i]] = item
		}
	}
	for range remote {
		r := <-resCh
		if r.err != nil {
			e := &wire.ErrorResponse{Code: wire.CodeUnavailable, Message: r.err.Error()}
			var typed *wire.ErrorResponse
			if errors.As(r.err, &typed) {
				e = typed
			}
			for i, pos := range r.g.idx {
				items[pos] = wire.AssessBatchItem{Server: r.g.servers[i], Error: e}
			}
			continue
		}
		for i, item := range r.items {
			items[r.g.idx[i]] = item
		}
	}
	s.nBatchItems.Add(uint64(len(remote)))
	return wire.AssessBatchResponse{Items: items}, nil
}

// Node-to-node handlers. Every fwd.* request is answered from local state
// only.

func (s *Server) handleFwdAssess(ctx context.Context, env wire.Envelope) (wire.Envelope, error) {
	var req wire.FwdAssessRequest
	if err := wire.DecodePayload(env, &req); err != nil {
		return wire.Envelope{}, service.Errorf(wire.CodeBadRequest, "%v", err)
	}
	_, version := s.cfg.Store.Snapshot(req.Server)
	sum := s.cfg.Store.ServerChecksum(req.Server)
	na := wire.NodeAssessment{Node: s.nodeID(), Records: sum.Count, Version: version, XOR: sum.XOR}
	if !req.DigestOnly {
		resp, err := s.assess(ctx, wire.AssessRequest{Server: req.Server, Threshold: req.Threshold})
		if err != nil {
			return wire.Envelope{}, err
		}
		na.AssessResponse = resp
	}
	return service.CodecFrom(ctx).Encode(wire.TypeFwdAssessR, env.ID, na)
}

func (s *Server) handleFwdSubmit(ctx context.Context, env wire.Envelope) (wire.Envelope, error) {
	var req wire.FwdSubmitRequest
	if err := wire.DecodePayload(env, &req); err != nil {
		return wire.Envelope{}, service.Errorf(wire.CodeBadRequest, "%v", err)
	}
	if err := ctx.Err(); err != nil {
		return wire.Envelope{}, err
	}
	stored, err := s.cfg.Recorder.Add(req.Feedback)
	if err != nil {
		return wire.Envelope{}, service.Errorf(wire.CodeInvalidFeedback, "%v", err)
	}
	if stored && !req.Replica {
		// We are the owner of a forwarded write: fan it out to the replica
		// set. Replica writes stop here by construction.
		s.replicate(ctx, []feedback.Feedback{req.Feedback})
	}
	return service.CodecFrom(ctx).Encode(wire.TypeFwdSubmitR, env.ID, wire.SubmitResponse{Stored: stored})
}

func (s *Server) handleFwdBatch(ctx context.Context, env wire.Envelope) (wire.Envelope, error) {
	var req wire.FwdBatchRequest
	if err := wire.DecodePayload(env, &req); err != nil {
		return wire.Envelope{}, service.Errorf(wire.CodeBadRequest, "%v", err)
	}
	resp, err := s.applyBatch(ctx, req.Records)
	if err != nil {
		return wire.Envelope{}, err
	}
	if !req.Replica {
		s.replicate(ctx, acceptedRecords(req.Records, resp.Rejected))
	}
	return service.CodecFrom(ctx).Encode(wire.TypeFwdBatchR, env.ID, resp)
}

func (s *Server) handleFwdAssessBatch(ctx context.Context, env wire.Envelope) (wire.Envelope, error) {
	var req wire.FwdAssessBatchRequest
	if err := wire.DecodePayload(env, &req); err != nil {
		return wire.Envelope{}, service.Errorf(wire.CodeBadRequest, "%v", err)
	}
	resp, err := s.assessBatch(ctx, wire.AssessBatchRequest{Servers: req.Servers, Threshold: req.Threshold})
	if err != nil {
		return wire.Envelope{}, err
	}
	out := wire.FwdAssessBatchResponse{Node: s.nodeID(), Items: resp.Items}
	return service.CodecFrom(ctx).Encode(wire.TypeFwdAssessBR, env.ID, out)
}

func (s *Server) handleClusterInfo(ctx context.Context, env wire.Envelope) (wire.Envelope, error) {
	owned := len(s.cfg.Store.Servers())
	resp := wire.ClusterStatusResponse{Owned: owned}
	if cl := s.clusterRef.Load(); cl != nil {
		resp = cl.Status(owned)
	}
	return service.CodecFrom(ctx).Encode(wire.TypeClusterInfoR, env.ID, resp)
}
