// Package compat holds the cross-version wire-compatibility matrix: every
// client protocol selection (json, auto, v2) exercised against every server
// wire configuration (v2-enabled, JSON-only), each cell running the full
// request surface end to end over real TCP and checking verdict fidelity
// against an in-process reference assessment.
//
// The matrix is what lets the protocol evolve: the json×v2 cell proves a
// pre-v2 JSON client interoperates with a v2 server unmodified, and the
// auto×json cell proves a v2-capable client degrades cleanly against a
// server that predates the binary framing. CI runs every cell on every
// change (the compat job shards the matrix through the COMPAT_CLIENT and
// COMPAT_SERVER environment variables); `go test ./internal/compat` runs
// the whole matrix locally.
package compat
