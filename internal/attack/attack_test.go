package attack

import (
	"errors"
	"strings"
	"testing"

	"honestplayer/internal/behavior"
	"honestplayer/internal/core"
	"honestplayer/internal/feedback"
	"honestplayer/internal/stats"
	"honestplayer/internal/trust"
)

// sharedCalibrator keeps Monte-Carlo work across tests down.
var sharedCalibrator = stats.NewCalibrator(stats.CalibrationConfig{Seed: 1, Replicates: 300}, 0)

func testerConfig() behavior.Config {
	return behavior.Config{Calibrator: sharedCalibrator}
}

func assessor(t *testing.T, tester behavior.Tester, fn trust.Func) *core.TwoPhase {
	t.Helper()
	tp, err := core.NewTwoPhase(tester, fn)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func singleTester(t *testing.T) behavior.Tester {
	t.Helper()
	s, err := behavior.NewSingle(testerConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func multiTester(t *testing.T) behavior.Tester {
	t.Helper()
	m, err := behavior.NewMulti(testerConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestActionString(t *testing.T) {
	if ServeGood.String() != "serve-good" || Cheat.String() != "cheat" || ColludeFake.String() != "collude-fake" {
		t.Error("Action String wrong")
	}
	if !strings.Contains(Action(9).String(), "9") {
		t.Error("unknown action String must include value")
	}
}

func TestPrepareHistory(t *testing.T) {
	rng := stats.NewRNG(1)
	h, err := PrepareHistory("attacker", 1000, 0.95, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 1000 {
		t.Fatalf("len = %d", h.Len())
	}
	ratio := h.GoodRatio()
	if ratio < 0.92 || ratio > 0.98 {
		t.Fatalf("prep ratio = %v, want ~0.95", ratio)
	}
	if h.DistinctClients() < 20 {
		t.Fatalf("distinct clients = %d", h.DistinctClients())
	}
}

func TestPrepareHistoryValidation(t *testing.T) {
	rng := stats.NewRNG(1)
	for _, tc := range []struct {
		n    int
		p    float64
		pool int
	}{{-1, 0.5, 10}, {10, -0.1, 10}, {10, 1.5, 10}, {10, 0.5, 0}} {
		if _, err := PrepareHistory("a", tc.n, tc.p, tc.pool, rng); !errors.Is(err, ErrBadParams) {
			t.Errorf("PrepareHistory(%+v) = %v", tc, err)
		}
	}
}

func TestPrepareByColluders(t *testing.T) {
	rng := stats.NewRNG(2)
	colluders := []feedback.EntityID{"c1", "c2", "c3", "c4", "c5"}
	h, err := PrepareByColluders("attacker", 400, 0.95, colluders, rng)
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 400 {
		t.Fatalf("len = %d", h.Len())
	}
	if got := h.DistinctClients(); got > len(colluders) {
		t.Fatalf("distinct clients = %d, want <= %d", got, len(colluders))
	}
	if _, err := PrepareByColluders("a", 10, 0.9, nil, rng); !errors.Is(err, ErrBadParams) {
		t.Errorf("no colluders = %v", err)
	}
}

func TestStrategicValidation(t *testing.T) {
	rng := stats.NewRNG(3)
	h, _ := PrepareHistory("a", 100, 0.95, 10, rng)
	tests := []Strategic{
		{Assessor: nil, Threshold: 0.9, GoalBad: 1},
		{Assessor: assessor(t, nil, trust.Average{}), Threshold: -1, GoalBad: 1},
		{Assessor: assessor(t, nil, trust.Average{}), Threshold: 0.9, GoalBad: 0},
	}
	for i, s := range tests {
		if _, err := s.Run(h, rng); !errors.Is(err, ErrBadParams) {
			t.Errorf("case %d: %v", i, err)
		}
	}
}

func TestStrategicAverageBaselineLargePrep(t *testing.T) {
	// Paper §5.1: with >= 400 prepared transactions at 95% and the plain
	// average function, the attacker launches 20 consecutive attacks at
	// zero (or near-zero) cost — the hibernating attack.
	rng := stats.NewRNG(4)
	h, err := PrepareHistory("a", 600, 0.95, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	s := &Strategic{Assessor: assessor(t, nil, trust.Average{}), Threshold: 0.9, GoalBad: 20}
	cost, err := s.Run(h, rng)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Bad != 20 {
		t.Fatalf("bad = %d", cost.Bad)
	}
	if cost.Good > 5 {
		t.Fatalf("baseline cost with 600 prep = %d good, want ~0", cost.Good)
	}
}

func TestStrategicAverageBaselineSmallPrepCostlier(t *testing.T) {
	rng := stats.NewRNG(5)
	costAt := func(prep int) int {
		h, err := PrepareHistory("a", prep, 0.95, 50, rng.Split())
		if err != nil {
			t.Fatal(err)
		}
		s := &Strategic{Assessor: assessor(t, nil, trust.Average{}), Threshold: 0.9, GoalBad: 20}
		cost, err := s.Run(h, rng)
		if err != nil {
			t.Fatal(err)
		}
		return cost.Good
	}
	small, large := costAt(100), costAt(500)
	if small <= large {
		t.Fatalf("cost did not decrease with prep size: prep100=%d prep500=%d", small, large)
	}
}

func TestStrategicWeightedBaselineNoConsecutiveBad(t *testing.T) {
	// With the weighted function at lambda=0.5, one bad transaction drops
	// trust below 0.9, so the attacker can never cheat twice in a row and
	// pays 2-3 good transactions per attack (§5.1).
	rng := stats.NewRNG(6)
	h, err := PrepareHistory("a", 200, 0.95, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	w, err := trust.NewWeighted(0.5)
	if err != nil {
		t.Fatal(err)
	}
	s := &Strategic{Assessor: assessor(t, nil, w), Threshold: 0.9, GoalBad: 20}
	cost, err := s.Run(h, rng)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Bad != 20 {
		t.Fatalf("bad = %d", cost.Bad)
	}
	// 2 goods per bad minimum: cost in [40, 70] typically.
	if cost.Good < 20 || cost.Good > 100 {
		t.Fatalf("weighted baseline cost = %d, want ~40-60", cost.Good)
	}
	// Verify no two consecutive bad transactions in the attack phase.
	outs := h.Outcomes()
	for i := 201; i < len(outs); i++ {
		if !outs[i] && !outs[i-1] {
			t.Fatal("two consecutive bad transactions slipped past the weighted function")
		}
	}
}

func TestStrategicBehaviorTestingRaisesCost(t *testing.T) {
	// The central claim: adding phase-1 testing forces more good
	// transactions than the bare average function for the same goal.
	rng := stats.NewRNG(7)
	run := func(tp *core.TwoPhase) int {
		h, err := PrepareHistory("a", 400, 0.95, 50, stats.NewRNG(77))
		if err != nil {
			t.Fatal(err)
		}
		s := &Strategic{Assessor: tp, Threshold: 0.9, GoalBad: 10}
		cost, err := s.Run(h, rng)
		if err != nil {
			t.Fatal(err)
		}
		return cost.Good
	}
	bare := run(assessor(t, nil, trust.Average{}))
	tested := run(assessor(t, singleTester(t), trust.Average{}))
	multi := run(assessor(t, multiTester(t), trust.Average{}))
	if tested < bare {
		t.Fatalf("single testing lowered cost: bare=%d tested=%d", bare, tested)
	}
	if multi < tested {
		t.Fatalf("multi testing below single testing: single=%d multi=%d", tested, multi)
	}
	if multi == 0 {
		t.Fatal("multi testing imposed no cost")
	}
}

func TestStrategicMultiCostStableAcrossPrep(t *testing.T) {
	// Fig. 3's key shape: under multi-testing the attacker's cost does not
	// collapse as the preparation history grows.
	rng := stats.NewRNG(8)
	costAt := func(prep int) int {
		h, err := PrepareHistory("a", prep, 0.95, 50, stats.NewRNG(uint64(prep)))
		if err != nil {
			t.Fatal(err)
		}
		s := &Strategic{Assessor: assessor(t, multiTester(t), trust.Average{}), Threshold: 0.9, GoalBad: 10}
		cost, err := s.Run(h, rng)
		if err != nil {
			t.Fatal(err)
		}
		return cost.Good
	}
	small, large := costAt(200), costAt(800)
	if small == 0 || large == 0 {
		t.Fatalf("multi-testing imposed no cost: prep200=%d prep800=%d", small, large)
	}
	// Large prep must not make the attack dramatically cheaper (allow 2.5x
	// stochastic slack; the baseline collapses to 0).
	if float64(large) < float64(small)/2.5 {
		t.Fatalf("cost collapsed with prep size: prep200=%d prep800=%d", small, large)
	}
}

func TestStrategicGoalUnreachable(t *testing.T) {
	rng := stats.NewRNG(9)
	h, err := PrepareHistory("a", 100, 0.95, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	s := &Strategic{
		Assessor:  assessor(t, nil, trust.Average{}),
		Threshold: 1.0, // impossible: any bad transaction breaks it
		GoalBad:   1,
		MaxSteps:  50,
	}
	cost, err := s.Run(h, rng)
	if !errors.Is(err, ErrGoalUnreachable) {
		t.Fatalf("err = %v", err)
	}
	if cost.Steps != 50 {
		t.Fatalf("steps = %d", cost.Steps)
	}
}
