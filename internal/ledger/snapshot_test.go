package ledger

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"honestplayer/internal/core"
	"honestplayer/internal/feedback"
	"honestplayer/internal/store"
	"honestplayer/internal/trust"
)

// incrementalOptions wires a real TwoPhase assessor (average trust, no
// behaviour tester) into Options, exercising the same accumulator
// encode/restore plumbing trustd -incremental uses.
func incrementalOptions(t testing.TB, shards int, segBytes int64, every uint64) (Options, *core.TwoPhase) {
	t.Helper()
	tp, err := core.NewTwoPhase(nil, trust.Average{})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Shards:        shards,
		SegmentBytes:  segBytes,
		SnapshotEvery: every,
		AccumulatorFactory: func(server feedback.EntityID) store.Accumulator {
			acc, err := tp.NewServerAccumulator(server)
			if err != nil {
				return nil
			}
			return acc
		},
		EncodeAccumulator: func(acc store.Accumulator) ([]byte, bool) {
			sa, ok := acc.(*core.ServerAccumulator)
			if !ok {
				return nil, false
			}
			return sa.AppendState(nil)
		},
		RestoreAccumulator: func(server feedback.EntityID, state []byte) (store.Accumulator, int, error) {
			sa, n, err := tp.RestoreServerAccumulator(server, state)
			if err != nil {
				return nil, 0, err
			}
			return sa, n, nil
		},
	}
	return opts, tp
}

// workload appends n records across several servers and clients.
func workload(t *testing.T, ps *PersistentStore, n, offset int) {
	t.Helper()
	for i := offset; i < offset+n; i++ {
		f := feedback.Feedback{
			Server: feedback.EntityID([]byte{'s', byte('a' + i%7)}),
			Client: feedback.EntityID([]byte{'c', byte('a' + i%11)}),
			Rating: feedback.Positive,
			Time:   rec("x", true, int64(i+1)).Time,
		}
		if i%3 == 0 {
			f.Rating = feedback.Negative
		}
		if ok, err := ps.Add(f); !ok || err != nil {
			t.Fatalf("Add %d: %v %v", i, ok, err)
		}
	}
}

// storeFingerprint captures everything that defines a store's logical state:
// per-server records, versions, checksums, and (when an assessor is given)
// the assessment each server's accumulator produces.
func storeFingerprint(t *testing.T, st *store.Store, tp *core.TwoPhase) map[string]any {
	t.Helper()
	fp := map[string]any{}
	servers := st.Servers()
	sort.Slice(servers, func(i, j int) bool { return servers[i] < servers[j] })
	for _, srv := range servers {
		key := string(srv)
		fp[key+"/records"] = st.Records(srv)
		fp[key+"/version"] = st.Version(srv)
		fp[key+"/checksum"] = st.ServerChecksum(srv)
		if tp != nil {
			ok := st.ViewAccumulator(srv, func(acc store.Accumulator, version uint64) {
				sa := acc.(*core.ServerAccumulator)
				a, err := sa.Assess()
				if err != nil {
					t.Fatalf("assess %q: %v", srv, err)
				}
				fp[key+"/assessment"] = a
				fp[key+"/accversion"] = version
			})
			if !ok {
				t.Fatalf("server %q has no accumulator", srv)
			}
		}
	}
	fp["len"] = st.Len()
	return fp
}

// TestSnapshotBootMatchesFullReplay: a node booted from snapshot + tail must
// hold bit-identical store state (records, checksums, versions, incremental
// assessments) to one that replays the whole ledger.
func TestSnapshotBootMatchesFullReplay(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "led")
	opts, tp := incrementalOptions(t, 4, 2048, 0)

	ps, err := OpenStoreOptions(context.Background(), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	workload(t, ps, 300, 0)
	if _, err := ps.Snapshot(); err != nil {
		t.Fatal(err)
	}
	workload(t, ps, 77, 300) // tail past the snapshot
	want := storeFingerprint(t, ps.Store(), tp)
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}

	// Boot 1: snapshot + tail.
	snapBoot, err := OpenStoreOptions(context.Background(), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if snapBoot.Stats().BootMode != "snapshot" {
		t.Fatalf("boot mode = %q, want snapshot", snapBoot.Stats().BootMode)
	}
	got := storeFingerprint(t, snapBoot.Store(), tp)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("snapshot+tail boot diverges from pre-restart state")
	}
	if err := snapBoot.Close(); err != nil {
		t.Fatal(err)
	}

	// Boot 2: full replay (snapshots removed).
	seqs, err := listSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, seq := range seqs {
		if err := os.Remove(filepath.Join(dir, snapshotName(seq))); err != nil {
			t.Fatal(err)
		}
	}
	fullBoot, err := OpenStoreOptions(context.Background(), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fullBoot.Stats().BootMode != "replay" {
		t.Fatalf("boot mode = %q, want replay", fullBoot.Stats().BootMode)
	}
	got = storeFingerprint(t, fullBoot.Store(), tp)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("full replay diverges from snapshot+tail state")
	}
	if err := fullBoot.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestKillDuringSnapshotFallsBack: a crash mid-snapshot leaves either a temp
// file or a corrupt snapshot under the real name; boot must fall back (to an
// older snapshot, then full replay) and still converge to the full-replay
// state.
func TestKillDuringSnapshotFallsBack(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "led")
	opts, tp := incrementalOptions(t, 2, 4096, 0)
	ps, err := OpenStoreOptions(context.Background(), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	workload(t, ps, 120, 0)
	if _, err := ps.Snapshot(); err != nil {
		t.Fatal(err)
	}
	workload(t, ps, 60, 120)
	want := storeFingerprint(t, ps.Store(), tp)
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash scenario 1: a half-written temp file. Must be ignored entirely.
	if err := os.WriteFile(filepath.Join(dir, snapTmpName), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Crash scenario 2: a newer snapshot file that is torn (truncated half
	// way). Verification must reject it and use the older good snapshot.
	seqs, err := listSnapshots(dir)
	if err != nil || len(seqs) == 0 {
		t.Fatalf("no snapshot: %v %v", seqs, err)
	}
	good, err := os.ReadFile(filepath.Join(dir, snapshotName(seqs[0])))
	if err != nil {
		t.Fatal(err)
	}
	torn := good[:len(good)/2]
	if err := os.WriteFile(filepath.Join(dir, snapshotName(seqs[0]+1)), torn, 0o644); err != nil {
		t.Fatal(err)
	}

	boot, err := OpenStoreOptions(context.Background(), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	st := boot.Stats()
	if st.BootMode != "snapshot" || st.BootSnapshot != seqs[0] {
		t.Fatalf("boot = %q snapshot %d, want older snapshot %d", st.BootMode, st.BootSnapshot, seqs[0])
	}
	if got := storeFingerprint(t, boot.Store(), tp); !reflect.DeepEqual(want, got) {
		t.Fatal("fallback boot diverges from true state")
	}
	if err := boot.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the older snapshot too: boot must fall all the way back to a
	// full replay and still match.
	if err := os.WriteFile(filepath.Join(dir, snapshotName(seqs[0])), torn, 0o644); err != nil {
		t.Fatal(err)
	}
	boot2, err := OpenStoreOptions(context.Background(), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if boot2.Stats().BootMode != "replay" {
		t.Fatalf("boot mode = %q, want replay", boot2.Stats().BootMode)
	}
	if got := storeFingerprint(t, boot2.Store(), tp); !reflect.DeepEqual(want, got) {
		t.Fatal("full-replay fallback diverges from true state")
	}
	if err := boot2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestKillDuringRollOverStoreState: crash between sealing a segment and
// creating its successor, at the store level: boot replays everything and
// matches a pre-crash fingerprint.
func TestKillDuringRollOverStoreState(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "led")
	opts, tp := incrementalOptions(t, 2, 1024, 0)
	ps, err := OpenStoreOptions(context.Background(), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	workload(t, ps, 150, 0)
	want := storeFingerprint(t, ps.Store(), tp)
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the roll-over crash window: delete the (empty) active segment
	// so the highest-numbered remaining segment is sealed.
	l := &Ledger{dir: dir}
	segs, err := l.listSegments()
	if err != nil || len(segs) < 2 {
		t.Fatalf("need >=2 segments: %v %v", segs, err)
	}
	last := segs[len(segs)-1]
	data, err := os.ReadFile(l.segPath(last))
	if err != nil {
		t.Fatal(err)
	}
	if sc, _ := scanSegment(data, nil); sc.records > 0 {
		t.Skip("active segment not empty; crash window needs an empty successor")
	}
	if err := os.Remove(l.segPath(last)); err != nil {
		t.Fatal(err)
	}

	boot, err := OpenStoreOptions(context.Background(), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := storeFingerprint(t, boot.Store(), tp); !reflect.DeepEqual(want, got) {
		t.Fatal("post-roll-over-crash boot diverges")
	}
	if err := boot.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAutomaticSnapshots: SnapshotEvery triggers background snapshots and
// retention keeps only the newest files.
func TestAutomaticSnapshots(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "led")
	opts, _ := incrementalOptions(t, 2, 1<<20, 50)
	ps, err := OpenStoreOptions(context.Background(), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	workload(t, ps, 400, 0)
	if err := ps.Close(); err != nil { // waits for in-flight snapshots
		t.Fatal(err)
	}
	if ps.snapsTaken.Load() == 0 {
		t.Fatal("no automatic snapshot was taken")
	}
	seqs, err := listSnapshots(dir)
	if err != nil || len(seqs) == 0 {
		t.Fatalf("no snapshot files: %v %v", seqs, err)
	}
	if len(seqs) > snapKeep {
		t.Fatalf("retention kept %d snapshots, want <= %d", len(seqs), snapKeep)
	}
}

// TestSnapshotWithoutAccumulators: stores without incremental accumulators
// snapshot history only and still boot correctly.
func TestSnapshotWithoutAccumulators(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "led")
	ps, err := OpenStoreOptions(context.Background(), dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	workload(t, ps, 80, 0)
	if _, err := ps.Snapshot(); err != nil {
		t.Fatal(err)
	}
	want := storeFingerprint(t, ps.Store(), nil)
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
	boot, err := OpenStoreOptions(context.Background(), dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if boot.Stats().BootMode != "snapshot" {
		t.Fatalf("boot mode = %q", boot.Stats().BootMode)
	}
	if got := storeFingerprint(t, boot.Store(), nil); !reflect.DeepEqual(want, got) {
		t.Fatal("plain snapshot boot diverges")
	}
	if err := boot.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLedgerInfo: Inspect reports segments, snapshots, and verification
// results without disturbing the ledger.
func TestLedgerInfo(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "led")
	opts, _ := incrementalOptions(t, 2, 1024, 0)
	ps, err := OpenStoreOptions(context.Background(), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	workload(t, ps, 120, 0)
	if _, err := ps.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Segments) < 2 {
		t.Fatalf("info reports %d segments", len(info.Segments))
	}
	if info.Records != 120 {
		t.Fatalf("info.Records = %d, want 120", info.Records)
	}
	if len(info.Snapshots) != 1 || !info.Snapshots[0].Valid {
		t.Fatalf("snapshot info: %+v", info.Snapshots)
	}
	if info.Snapshots[0].Accumulators == 0 {
		t.Fatal("snapshot carries no accumulator state")
	}
	// Legacy single file.
	legacy := filepath.Join(t.TempDir(), "legacy.jsonl")
	raw := append(legacyLine(t, rec("a", true, 1)), legacyLine(t, rec("b", true, 2))...)
	if err := os.WriteFile(legacy, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	linfo, err := Inspect(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if !linfo.Legacy || linfo.Records != 2 {
		t.Fatalf("legacy info: %+v", linfo)
	}
}
