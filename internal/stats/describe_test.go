package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestDescribe(t *testing.T) {
	s, err := Describe([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("Describe = %+v", s)
	}
	if math.Abs(s.Variance-2.5) > 1e-12 {
		t.Fatalf("Variance = %v, want 2.5", s.Variance)
	}
}

func TestDescribeEmpty(t *testing.T) {
	if _, err := Describe(nil); err == nil {
		t.Fatal("empty sample must fail")
	}
}

func TestDescribeSingle(t *testing.T) {
	s, err := Describe([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if s.Variance != 0 || s.Median != 7 || s.P05 != 7 || s.P95 != 7 {
		t.Fatalf("Describe single = %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {-1, 1}, {2, 4},
		{1.0 / 3.0, 2},
	}
	for _, tt := range tests {
		if got := Quantile(sorted, tt.q); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty must be NaN")
	}
	if Quantile([]float64{42}, 0.3) != 42 {
		t.Error("Quantile of singleton must be the value")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		a := math.Mod(math.Abs(q1), 1)
		b := math.Mod(math.Abs(q2), 1)
		if a > b {
			a, b = b, a
		}
		return Quantile(xs, a) <= Quantile(xs, b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) must be 0")
	}
	if got := Mean([]float64{2, 4}); got != 3 {
		t.Errorf("Mean = %v, want 3", got)
	}
}

func TestMeanInt(t *testing.T) {
	if MeanInt(nil) != 0 {
		t.Error("MeanInt(nil) must be 0")
	}
	if got := MeanInt([]int{1, 2}); got != 1.5 {
		t.Errorf("MeanInt = %v, want 1.5", got)
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi, err := WilsonInterval(90, 100, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	// Known reference: 90/100 at 95% -> approx [0.825, 0.944].
	if math.Abs(lo-0.825) > 0.01 || math.Abs(hi-0.944) > 0.01 {
		t.Fatalf("interval = [%v, %v]", lo, hi)
	}
	if lo >= 0.9 || hi <= 0.9 {
		t.Fatalf("interval [%v, %v] must contain the point estimate", lo, hi)
	}
	// Extremes stay in [0, 1] and are non-degenerate.
	lo, hi, err = WilsonInterval(10, 10, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if hi != 1 || lo >= 1 || lo < 0.6 {
		t.Fatalf("all-good interval = [%v, %v]", lo, hi)
	}
	lo, hi, err = WilsonInterval(0, 10, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0 || hi <= 0 {
		t.Fatalf("all-bad interval = [%v, %v]", lo, hi)
	}
}

func TestWilsonIntervalValidation(t *testing.T) {
	for _, tc := range []struct {
		good, n int
		z       float64
	}{{-1, 10, 1.96}, {11, 10, 1.96}, {5, 0, 1.96}, {5, 10, 0}, {5, 10, -1}} {
		if _, _, err := WilsonInterval(tc.good, tc.n, tc.z); err == nil {
			t.Errorf("WilsonInterval(%d,%d,%v) must fail", tc.good, tc.n, tc.z)
		}
	}
}

func TestWilsonIntervalShrinksWithN(t *testing.T) {
	lo1, hi1, _ := WilsonInterval(9, 10, 1.96)
	lo2, hi2, _ := WilsonInterval(900, 1000, 1.96)
	if (hi2 - lo2) >= (hi1 - lo1) {
		t.Fatalf("interval did not shrink: %v vs %v", hi2-lo2, hi1-lo1)
	}
}
