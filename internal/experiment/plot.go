package experiment

import (
	"fmt"
	"math"
	"strings"
)

// plot dimensions: sized for a standard terminal.
const (
	plotWidth  = 72
	plotHeight = 20
)

// seriesGlyphs mark the points of up to this many series.
var seriesGlyphs = []byte{'*', 'o', '+', 'x', '#', '@'}

// Plot renders the result as a crude ASCII scatter plot — enough to
// eyeball a figure's shape in a terminal without leaving the CLI. Series
// are distinguished by glyph; a legend follows the axes.
func (r *Result) Plot() string {
	xs := r.xValues()
	if len(xs) == 0 {
		return "(no data)\n"
	}
	minX, maxX := xs[0], xs[len(xs)-1]
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range r.Series {
		for _, p := range s.Points {
			if p.Y < minY {
				minY = p.Y
			}
			if p.Y > maxY {
				maxY = p.Y
			}
		}
	}
	if math.IsInf(minY, 1) {
		return "(no data)\n"
	}
	if minY > 0 && minY < maxY/2 {
		// Anchor at zero when it keeps the plot readable.
		minY = 0
	}
	if maxY == minY {
		maxY = minY + 1
	}
	if maxX == minX {
		maxX = minX + 1
	}

	grid := make([][]byte, plotHeight)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", plotWidth))
	}
	col := func(x float64) int {
		c := int(math.Round((x - minX) / (maxX - minX) * float64(plotWidth-1)))
		if c < 0 {
			c = 0
		}
		if c >= plotWidth {
			c = plotWidth - 1
		}
		return c
	}
	row := func(y float64) int {
		rr := int(math.Round((maxY - y) / (maxY - minY) * float64(plotHeight-1)))
		if rr < 0 {
			rr = 0
		}
		if rr >= plotHeight {
			rr = plotHeight - 1
		}
		return rr
	}
	for si, s := range r.Series {
		glyph := seriesGlyphs[si%len(seriesGlyphs)]
		for _, p := range s.Points {
			rr, cc := row(p.Y), col(p.X)
			if grid[rr][cc] != ' ' && grid[rr][cc] != glyph {
				grid[rr][cc] = '&' // overlapping series
			} else {
				grid[rr][cc] = glyph
			}
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", strings.ToUpper(r.ID), r.Title)
	topLabel := formatFloat(maxY)
	botLabel := formatFloat(minY)
	labelWidth := len(topLabel)
	if len(botLabel) > labelWidth {
		labelWidth = len(botLabel)
	}
	for i, line := range grid {
		label := strings.Repeat(" ", labelWidth)
		switch i {
		case 0:
			label = fmt.Sprintf("%*s", labelWidth, topLabel)
		case plotHeight - 1:
			label = fmt.Sprintf("%*s", labelWidth, botLabel)
		}
		fmt.Fprintf(&sb, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(&sb, "%s +%s\n", strings.Repeat(" ", labelWidth), strings.Repeat("-", plotWidth))
	fmt.Fprintf(&sb, "%s  %-*s%s\n", strings.Repeat(" ", labelWidth),
		plotWidth-len(formatFloat(maxX)), formatFloat(minX), formatFloat(maxX))
	fmt.Fprintf(&sb, "x: %s, y: %s\n", r.XLabel, r.YLabel)
	for si, s := range r.Series {
		fmt.Fprintf(&sb, "  %c %s\n", seriesGlyphs[si%len(seriesGlyphs)], s.Name)
	}
	return sb.String()
}
