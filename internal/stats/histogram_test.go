package stats

import (
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := MustHistogram(10)
	if h.Max() != 10 {
		t.Fatalf("Max = %d", h.Max())
	}
	for _, v := range []int{3, 3, 7, 10, 0} {
		if err := h.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	if h.Total() != 5 {
		t.Errorf("Total = %d, want 5", h.Total())
	}
	if h.Count(3) != 2 {
		t.Errorf("Count(3) = %d, want 2", h.Count(3))
	}
	if h.Sum() != 23 {
		t.Errorf("Sum = %d, want 23", h.Sum())
	}
	if got, want := h.Mean(), 23.0/5; got != want {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if got, want := h.Freq(3), 0.4; got != want {
		t.Errorf("Freq(3) = %v, want %v", got, want)
	}
}

func TestHistogramAddOutOfSupport(t *testing.T) {
	h := MustHistogram(5)
	if err := h.Add(6); err == nil {
		t.Error("Add(6) on support [0,5] must fail")
	}
	if err := h.Add(-1); err == nil {
		t.Error("Add(-1) must fail")
	}
}

func TestHistogramRemove(t *testing.T) {
	h := MustHistogram(5)
	if err := h.Add(2); err != nil {
		t.Fatal(err)
	}
	if err := h.Remove(2); err != nil {
		t.Fatal(err)
	}
	if h.Total() != 0 || h.Sum() != 0 || h.Count(2) != 0 {
		t.Errorf("after add+remove: total=%d sum=%d count=%d", h.Total(), h.Sum(), h.Count(2))
	}
	if err := h.Remove(2); err == nil {
		t.Error("Remove on zero-count bin must fail")
	}
	if err := h.Remove(9); err == nil {
		t.Error("Remove out of support must fail")
	}
}

func TestHistogramFreqsEmptyAndFilled(t *testing.T) {
	h := MustHistogram(2)
	for _, f := range h.Freqs() {
		if f != 0 {
			t.Fatal("empty histogram must have zero freqs")
		}
	}
	if h.Freq(1) != 0 {
		t.Fatal("empty histogram Freq must be 0")
	}
	if h.Mean() != 0 {
		t.Fatal("empty histogram Mean must be 0")
	}
	_ = h.Add(0)
	_ = h.Add(1)
	_ = h.Add(1)
	_ = h.Add(2)
	fs := h.Freqs()
	want := []float64{0.25, 0.5, 0.25}
	for i := range want {
		if fs[i] != want[i] {
			t.Errorf("Freqs[%d] = %v, want %v", i, fs[i], want[i])
		}
	}
}

func TestHistogramResetAndClone(t *testing.T) {
	h := MustHistogram(4)
	_ = h.AddAll([]int{1, 2, 3})
	c := h.Clone()
	h.Reset()
	if h.Total() != 0 {
		t.Error("Reset did not clear")
	}
	if c.Total() != 3 || c.Count(2) != 1 {
		t.Error("Clone affected by Reset")
	}
	_ = c.Add(4)
	if h.Count(4) != 0 {
		t.Error("Clone shares storage with original")
	}
}

func TestHistogramAddAllError(t *testing.T) {
	h := MustHistogram(3)
	if err := h.AddAll([]int{1, 2, 9}); err == nil {
		t.Fatal("AddAll with out-of-support value must fail")
	}
	// The valid prefix was recorded.
	if h.Total() != 2 {
		t.Fatalf("Total = %d after partial AddAll, want 2", h.Total())
	}
}

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(-1); err == nil {
		t.Fatal("NewHistogram(-1) must fail")
	}
	if _, err := NewHistogram(0); err != nil {
		t.Fatalf("NewHistogram(0) failed: %v", err)
	}
}

func TestMustHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustHistogram(-1) did not panic")
		}
	}()
	MustHistogram(-1)
}

func TestHistogramString(t *testing.T) {
	h := MustHistogram(5)
	_ = h.AddAll([]int{1, 1, 4})
	if got := h.String(); got != "hist{1:2 4:1}" {
		t.Errorf("String = %q", got)
	}
}

// Property: incremental add/remove keeps totals consistent with a batch
// rebuild, regardless of operation order.
func TestHistogramIncrementalMatchesBatch(t *testing.T) {
	f := func(raw []uint8) bool {
		const max = 12
		h := MustHistogram(max)
		var kept []int
		for _, r := range raw {
			v := int(r % (max + 1))
			if r%2 == 0 || len(kept) == 0 {
				_ = h.Add(v)
				kept = append(kept, v)
			} else {
				// Remove the most recent kept value.
				last := kept[len(kept)-1]
				kept = kept[:len(kept)-1]
				if err := h.Remove(last); err != nil {
					return false
				}
			}
		}
		batch := MustHistogram(max)
		_ = batch.AddAll(kept)
		if h.Total() != batch.Total() || h.Sum() != batch.Sum() {
			return false
		}
		for v := 0; v <= max; v++ {
			if h.Count(v) != batch.Count(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
