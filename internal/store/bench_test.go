package store

import (
	"fmt"
	"testing"
	"time"

	"honestplayer/internal/feedback"
)

func benchRecs(n int) []feedback.Feedback {
	recs := make([]feedback.Feedback, n)
	for i := range recs {
		recs[i] = feedback.Feedback{
			Time:   time.Unix(int64(i), 0).UTC(),
			Server: "server",
			Client: feedback.EntityID(fmt.Sprintf("c%d", i%100)),
			Rating: feedback.Positive,
		}
	}
	return recs
}

func BenchmarkStoreAddAppendOrder(b *testing.B) {
	recs := benchRecs(b.N)
	s := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Add(recs[i]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreMissingFrom(b *testing.B) {
	s := New()
	if _, err := s.AddAll(benchRecs(5000)); err != nil {
		b.Fatal(err)
	}
	digest := s.Hashes()[:2500]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.MissingFrom(digest)
	}
}

func BenchmarkStoreHistory(b *testing.B) {
	s := New()
	if _, err := s.AddAll(benchRecs(5000)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.History("server"); err != nil {
			b.Fatal(err)
		}
	}
}
