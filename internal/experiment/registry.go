package experiment

import (
	"fmt"
	"sort"
)

// Options tunes a registry run without figure-specific configuration:
// experiments scale their workloads down in Quick mode so the whole suite
// finishes in seconds instead of minutes.
type Options struct {
	// Seed drives all randomness.
	Seed uint64
	// Quick shrinks trial counts and history sizes for smoke runs.
	Quick bool
}

// Runner regenerates one figure.
type Runner func(Options) (*Result, error)

// Registry maps figure IDs to their runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"fig3": func(o Options) (*Result, error) { return RunFig3(costConfig(o)) },
		"fig4": func(o Options) (*Result, error) { return RunFig4(costConfig(o)) },
		"fig5": func(o Options) (*Result, error) { return RunFig5(collusionConfig(o)) },
		"fig6": func(o Options) (*Result, error) { return RunFig6(collusionConfig(o)) },
		"fig7": func(o Options) (*Result, error) { return RunFig7(detectionConfig(o)) },
		"fig8": func(o Options) (*Result, error) { return RunFig8(thresholdConfig(o)) },
		"fig9": func(o Options) (*Result, error) { return RunFig9(perfConfig(o)) },
		"ablation-window": func(o Options) (*Result, error) {
			cfg := AblationWindowConfig{Seed: o.Seed}
			if o.Quick {
				cfg.Trials = 40
				cfg.CalibrationReplicates = 200
			}
			return RunAblationWindow(cfg)
		},
		"ablation-correction": func(o Options) (*Result, error) {
			cfg := AblationCorrectionConfig{Seed: o.Seed}
			if o.Quick {
				cfg.Trials = 30
				cfg.HistorySizes = []int{200, 800}
				cfg.CalibrationReplicates = 1000
			}
			return RunAblationCorrection(cfg)
		},
		"ablation-cusum": func(o Options) (*Result, error) {
			cfg := AblationCUSUMConfig{Seed: o.Seed}
			if o.Quick {
				cfg.Trials = 20
				cfg.PostQualities = []float64{0, 0.4}
				cfg.CalibrationReplicates = 200
			}
			return RunAblationCUSUM(cfg)
		},
		"ablation-lambda": func(o Options) (*Result, error) {
			cfg := AblationLambdaConfig{Seed: o.Seed}
			if o.Quick {
				cfg.Trials = 1
				cfg.Lambdas = []float64{0.1, 0.5, 0.9}
				cfg.GoalBad = 10
				cfg.CalibrationReplicates = 200
			}
			return RunAblationLambda(cfg)
		},
		"ablation-replicates": func(o Options) (*Result, error) {
			cfg := AblationReplicatesConfig{Seed: o.Seed}
			if o.Quick {
				cfg.ReplicateCounts = []int{50, 200, 1000}
				cfg.Resamples = 8
			}
			return RunAblationReplicates(cfg)
		},
	}
}

// IDs returns every registered experiment ID, sorted: the paper figures
// first, then the ablations.
func IDs() []string {
	reg := Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// FigureIDs returns the paper-figure experiments (fig3 … fig9) in order.
func FigureIDs() []string {
	return []string{"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9"}
}

// AblationIDs returns the ablation experiments in order.
func AblationIDs() []string {
	return []string{
		"ablation-correction", "ablation-cusum", "ablation-lambda",
		"ablation-replicates", "ablation-window",
	}
}

// Run regenerates one figure by ID.
func Run(id string, opts Options) (*Result, error) {
	r, ok := Registry()[id]
	if !ok {
		return nil, fmt.Errorf("experiment: unknown figure %q (have %v)", id, IDs())
	}
	return r(opts)
}

func costConfig(o Options) CostConfig {
	cfg := CostConfig{Seed: o.Seed}
	if o.Quick {
		cfg.PrepSizes = []int{100, 300, 500, 800}
		cfg.Trials = 1
		cfg.GoalBad = 10
		cfg.CalibrationReplicates = 200
	}
	return cfg
}

func collusionConfig(o Options) CollusionConfig {
	cfg := CollusionConfig{Seed: o.Seed}
	if o.Quick {
		cfg.PrepSizes = []int{100, 300, 500, 800}
		cfg.Trials = 1
		cfg.GoalBad = 10
		cfg.CalibrationReplicates = 200
	}
	return cfg
}

func detectionConfig(o Options) DetectionConfig {
	cfg := DetectionConfig{Seed: o.Seed}
	if o.Quick {
		cfg.Trials = 40
		cfg.CalibrationReplicates = 200
	}
	return cfg
}

func thresholdConfig(o Options) ThresholdConfig {
	cfg := ThresholdConfig{Seed: o.Seed}
	if o.Quick {
		cfg.HistorySizes = []int{100, 200, 400, 800, 1600}
		cfg.Replicates = 300
	}
	return cfg
}

func perfConfig(o Options) PerfConfig {
	cfg := PerfConfig{Seed: o.Seed}
	if o.Quick {
		cfg.HistorySizes = []int{50000, 100000, 200000}
		cfg.NaiveSizes = []int{5000, 10000}
		cfg.Repeats = 1
	}
	return cfg
}
