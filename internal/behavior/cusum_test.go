package behavior

import (
	"errors"
	"testing"

	"honestplayer/internal/stats"
)

func TestNewCUSUMValidation(t *testing.T) {
	tests := []struct{ p0, p1, h float64 }{
		{0, 0.5, 4}, {1, 0.5, 4}, {0.9, 0, 4}, {0.9, 1, 4},
		{0.5, 0.9, 4}, // p1 above p0
		{0.9, 0.5, 0}, {0.9, 0.5, -1},
	}
	for _, tt := range tests {
		if _, err := NewCUSUM(tt.p0, tt.p1, tt.h); !errors.Is(err, ErrBadConfig) {
			t.Errorf("NewCUSUM(%v, %v, %v) = %v", tt.p0, tt.p1, tt.h, err)
		}
	}
	if _, err := NewCUSUM(0.95, 0.5, 5); err != nil {
		t.Fatalf("valid params: %v", err)
	}
}

func TestCUSUMDetectsSharpDrop(t *testing.T) {
	c, err := NewCUSUM(0.95, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(1)
	// In-control phase.
	for i := 0; i < 500; i++ {
		if c.Observe(rng.Bernoulli(0.95)) {
			t.Fatalf("false alarm during in-control phase at %d (score %v)", i, c.Score())
		}
	}
	// The hibernating turn: all bad.
	for i := 0; i < 50; i++ {
		c.Observe(false)
	}
	if !c.Alarmed() {
		t.Fatalf("no alarm after 50 bad transactions (score %v)", c.Score())
	}
	delay := c.AlarmAt() - 500
	// llrBad = log(0.5/0.05) ≈ 2.3 per bad outcome; h=5 needs ~3 bad.
	if delay < 1 || delay > 10 {
		t.Fatalf("detection delay = %d, want a handful of transactions", delay)
	}
	// Alarm state is sticky.
	c.Observe(true)
	if !c.Alarmed() {
		t.Fatal("alarm cleared by a good outcome")
	}
}

func TestCUSUMFalseAlarmRateLow(t *testing.T) {
	rng := stats.NewRNG(2)
	alarms := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		c, err := NewCUSUM(0.95, 0.5, 12)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			if c.Observe(rng.Bernoulli(0.95)) {
				alarms++
				break
			}
		}
	}
	if alarms > trials/10 {
		t.Fatalf("false alarms in %d/%d honest 1000-transaction streams", alarms, trials)
	}
}

func TestCUSUMFasterThanWindowedTestOnBurst(t *testing.T) {
	// The division of labour: for a sharp quality drop, CUSUM fires within
	// a few transactions, while the windowed multi-test needs at least a
	// window boundary.
	c, err := NewCUSUM(0.95, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(3)
	for i := 0; i < 300; i++ {
		c.Observe(rng.Bernoulli(0.95))
	}
	bad := 0
	for !c.Alarmed() {
		c.Observe(false)
		bad++
		if bad > 100 {
			t.Fatal("no alarm")
		}
	}
	if bad > DefaultWindowSize {
		t.Fatalf("CUSUM needed %d bad transactions, more than one window", bad)
	}
}

func TestCUSUMResetAndAccessors(t *testing.T) {
	c, err := NewCUSUM(0.9, 0.4, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		c.Observe(false)
	}
	if !c.Alarmed() || c.AlarmAt() < 1 || c.Observed() != 10 {
		t.Fatalf("state: alarmed=%v at=%d n=%d", c.Alarmed(), c.AlarmAt(), c.Observed())
	}
	c.Reset()
	if c.Alarmed() || c.AlarmAt() != -1 || c.Observed() != 0 || c.Score() != 0 {
		t.Fatalf("after reset: %+v", c)
	}
}

func TestCUSUMIgnoresMeanPreservingPattern(t *testing.T) {
	// A deterministic periodic pattern at the in-control mean does not
	// trip CUSUM — that is the distribution tests' job (and exactly why
	// both are needed).
	c, err := NewCUSUM(0.9, 0.5, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if c.Observe(i%10 != 0) {
			t.Fatalf("CUSUM alarmed on mean-preserving pattern at %d", i)
		}
	}
}
