// Binary payload codecs for protocol v2 frames.
//
// The hot request/response payloads — submit, submit.batch, history, assess,
// assess.batch, and error frames — have hand-rolled binary encodings seeded
// from the internal/feedback compact record codec (big-endian fixed-width
// scalars, uvarint counts, length-prefixed strings). Message types without a
// binary codec ride v2 frames with JSON payload bytes and the
// flagJSONPayload bit set, so every type can cross a v2 connection.
//
// Encodings are strict on decode: trailing bytes, oversized counts, and
// truncated fields all fail with ErrBadMessage — the decoder never trusts a
// count further than the bytes backing it.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"honestplayer/internal/behavior"
	"honestplayer/internal/core"
	"honestplayer/internal/feedback"
)

// appendBinaryPayload appends t's binary encoding of payload to buf. The
// second return reports whether the (type, payload) pair has a binary codec;
// callers fall back to JSON payload bytes when it does not.
func appendBinaryPayload(buf []byte, payload any) ([]byte, bool, error) {
	switch p := payload.(type) {
	case SubmitRequest:
		b, err := feedback.AppendBinary(buf, p.Feedback)
		return b, true, err
	case *SubmitRequest:
		b, err := feedback.AppendBinary(buf, p.Feedback)
		return b, true, err
	case SubmitResponse:
		return appendBool(buf, p.Stored), true, nil
	case *SubmitResponse:
		return appendBool(buf, p.Stored), true, nil
	case BatchRequest:
		b, err := appendRecords(buf, p.Records)
		return b, true, err
	case *BatchRequest:
		b, err := appendRecords(buf, p.Records)
		return b, true, err
	case BatchResponse:
		return appendBatchResponse(buf, p), true, nil
	case *BatchResponse:
		return appendBatchResponse(buf, *p), true, nil
	case HistoryRequest:
		return appendHistoryRequest(buf, p), true, nil
	case *HistoryRequest:
		return appendHistoryRequest(buf, *p), true, nil
	case HistoryResponse:
		b, err := appendHistoryResponse(buf, p)
		return b, true, err
	case *HistoryResponse:
		b, err := appendHistoryResponse(buf, *p)
		return b, true, err
	case AssessRequest:
		return appendAssessRequest(buf, p), true, nil
	case *AssessRequest:
		return appendAssessRequest(buf, *p), true, nil
	case AssessResponse:
		return appendAssessResponse(buf, p), true, nil
	case *AssessResponse:
		return appendAssessResponse(buf, *p), true, nil
	case AssessBatchRequest:
		return appendAssessBatchRequest(buf, p), true, nil
	case *AssessBatchRequest:
		return appendAssessBatchRequest(buf, *p), true, nil
	case AssessBatchResponse:
		return appendAssessBatchResponse(buf, p), true, nil
	case *AssessBatchResponse:
		return appendAssessBatchResponse(buf, *p), true, nil
	case ErrorResponse:
		return appendErrorResponse(buf, p), true, nil
	case *ErrorResponse:
		return appendErrorResponse(buf, *p), true, nil
	case FwdAssessRequest:
		return appendFwdAssessRequest(buf, p), true, nil
	case *FwdAssessRequest:
		return appendFwdAssessRequest(buf, *p), true, nil
	case NodeAssessment:
		return appendNodeAssessment(buf, p), true, nil
	case *NodeAssessment:
		return appendNodeAssessment(buf, *p), true, nil
	case FwdSubmitRequest:
		b, err := appendFwdSubmitRequest(buf, p)
		return b, true, err
	case *FwdSubmitRequest:
		b, err := appendFwdSubmitRequest(buf, *p)
		return b, true, err
	case FwdBatchRequest:
		b, err := appendFwdBatchRequest(buf, p)
		return b, true, err
	case *FwdBatchRequest:
		b, err := appendFwdBatchRequest(buf, *p)
		return b, true, err
	case FwdAssessBatchRequest:
		return appendFwdAssessBatchRequest(buf, p), true, nil
	case *FwdAssessBatchRequest:
		return appendFwdAssessBatchRequest(buf, *p), true, nil
	case FwdAssessBatchResponse:
		return appendFwdAssessBatchResponse(buf, p), true, nil
	case *FwdAssessBatchResponse:
		return appendFwdAssessBatchResponse(buf, *p), true, nil
	}
	return buf, false, nil
}

// decodeBinaryPayload decodes a binary payload into out, which must be a
// pointer to the payload struct matching the frame type. The whole buffer
// must be consumed; anything else is a protocol violation.
func decodeBinaryPayload(t MsgType, buf []byte, out any) error {
	r := &breader{buf: buf}
	var err error
	switch o := out.(type) {
	case *SubmitRequest:
		o.Feedback, err = r.record()
	case *SubmitResponse:
		o.Stored, err = r.bool()
	case *BatchRequest:
		o.Records, err = r.records()
	case *BatchResponse:
		err = r.batchResponse(o)
	case *HistoryRequest:
		err = r.historyRequest(o)
	case *HistoryResponse:
		err = r.historyResponse(o)
	case *AssessRequest:
		err = r.assessRequest(o)
	case *AssessResponse:
		err = r.assessResponse(o)
	case *AssessBatchRequest:
		err = r.assessBatchRequest(o)
	case *AssessBatchResponse:
		err = r.assessBatchResponse(o)
	case *ErrorResponse:
		err = r.errorResponse(o)
	case *FwdAssessRequest:
		err = r.fwdAssessRequest(o)
	case *NodeAssessment:
		err = r.nodeAssessment(o)
	case *FwdSubmitRequest:
		err = r.fwdSubmitRequest(o)
	case *FwdBatchRequest:
		err = r.fwdBatchRequest(o)
	case *FwdAssessBatchRequest:
		err = r.fwdAssessBatchRequest(o)
	case *FwdAssessBatchResponse:
		err = r.fwdAssessBatchResponse(o)
	default:
		return fmt.Errorf("%w: no binary codec for %T (%s payload)", ErrBadMessage, out, t)
	}
	if err != nil {
		return fmt.Errorf("%w: %s payload: %v", ErrBadMessage, t, err)
	}
	if len(r.buf) != 0 {
		return fmt.Errorf("%w: %s payload: %d trailing bytes", ErrBadMessage, t, len(r.buf))
	}
	return nil
}

// Append helpers.

func appendBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendFloat(buf []byte, f float64) []byte {
	return binary.BigEndian.AppendUint64(buf, math.Float64bits(f))
}

func appendRecords(buf []byte, recs []feedback.Feedback) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(len(recs)))
	var err error
	for i, rec := range recs {
		if buf, err = feedback.AppendBinary(buf, rec); err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
	}
	return buf, nil
}

// Submit-batch item kind bytes: a stored record and a duplicate need no
// body at all, so the common all-stored response encodes one byte per item.
const (
	submitItemStored    byte = 0
	submitItemDuplicate byte = 1
	submitItemError     byte = 2
)

func appendBatchResponse(buf []byte, p BatchResponse) []byte {
	buf = binary.AppendUvarint(buf, uint64(p.Stored))
	buf = binary.AppendUvarint(buf, uint64(p.Duplicates))
	buf = binary.AppendUvarint(buf, uint64(len(p.Rejected)))
	for _, rej := range p.Rejected {
		buf = binary.AppendUvarint(buf, uint64(rej.Index))
		buf = appendString(buf, rej.Reason)
	}
	buf = binary.AppendUvarint(buf, uint64(len(p.Items)))
	for _, item := range p.Items {
		switch {
		case item.Error != nil:
			buf = append(buf, submitItemError)
			buf = appendErrorResponse(buf, *item.Error)
		case item.Stored:
			buf = append(buf, submitItemStored)
		default:
			buf = append(buf, submitItemDuplicate)
		}
	}
	return buf
}

func appendHistoryRequest(buf []byte, p HistoryRequest) []byte {
	buf = appendString(buf, string(p.Server))
	limit := p.Limit
	if limit < 0 {
		limit = 0
	}
	return binary.AppendUvarint(buf, uint64(limit))
}

func appendHistoryResponse(buf []byte, p HistoryResponse) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(p.Total))
	return appendRecords(buf, p.Records)
}

func appendAssessRequest(buf []byte, p AssessRequest) []byte {
	buf = appendString(buf, string(p.Server))
	return appendFloat(buf, p.Threshold)
}

// Assessment / AssessResponse flag bits.
const (
	assessFlagAccept      byte = 1 << 0
	assessFlagCached      byte = 1 << 1
	assessFlagIncremental byte = 1 << 2
	assessFlagMerged      byte = 1 << 3

	asmtFlagSuspicious   byte = 1 << 0
	asmtFlagShortHistory byte = 1 << 1
	asmtFlagVerdict      byte = 1 << 2
	asmtFlagHonest       byte = 1 << 3
)

func appendAssessment(buf []byte, a core.Assessment) []byte {
	var flags byte
	if a.Suspicious {
		flags |= asmtFlagSuspicious
	}
	if a.ShortHistory {
		flags |= asmtFlagShortHistory
	}
	hasVerdict := a.Verdict.Honest || len(a.Verdict.Suffixes) > 0
	if hasVerdict {
		flags |= asmtFlagVerdict
		if a.Verdict.Honest {
			flags |= asmtFlagHonest
		}
	}
	buf = append(buf, flags)
	buf = appendString(buf, string(a.Server))
	buf = appendFloat(buf, a.Trust)
	buf = appendFloat(buf, a.TrustLow)
	buf = appendFloat(buf, a.TrustHigh)
	buf = appendString(buf, a.Tester)
	buf = appendString(buf, a.TrustFunc)
	if hasVerdict {
		buf = binary.AppendUvarint(buf, uint64(len(a.Verdict.Suffixes)))
		for _, s := range a.Verdict.Suffixes {
			buf = binary.AppendUvarint(buf, uint64(s.Transactions))
			buf = binary.AppendUvarint(buf, uint64(s.Windows))
			buf = appendFloat(buf, s.PHat)
			buf = appendFloat(buf, s.Distance)
			buf = appendFloat(buf, s.Threshold)
			buf = appendBool(buf, s.Pass)
		}
	}
	return buf
}

func appendAssessResponse(buf []byte, p AssessResponse) []byte {
	var flags byte
	if p.Accept {
		flags |= assessFlagAccept
	}
	if p.Cached {
		flags |= assessFlagCached
	}
	if p.Incremental {
		flags |= assessFlagIncremental
	}
	if p.Merged {
		flags |= assessFlagMerged
	}
	buf = append(buf, flags)
	buf = appendAssessment(buf, p.Assessment)
	if p.Merged {
		buf = binary.AppendUvarint(buf, uint64(len(p.MergedFrom)))
		for _, n := range p.MergedFrom {
			buf = appendString(buf, n)
		}
	}
	return buf
}

func appendAssessBatchRequest(buf []byte, p AssessBatchRequest) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(p.Servers)))
	for _, s := range p.Servers {
		buf = appendString(buf, string(s))
	}
	return appendFloat(buf, p.Threshold)
}

func appendAssessBatchResponse(buf []byte, p AssessBatchResponse) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(p.Items)))
	for _, item := range p.Items {
		buf = appendString(buf, string(item.Server))
		if item.Error != nil {
			buf = append(buf, 1)
			buf = appendErrorResponse(buf, *item.Error)
		} else {
			buf = append(buf, 0)
			buf = appendAssessResponse(buf, item.AssessResponse)
		}
	}
	return buf
}

func appendErrorResponse(buf []byte, p ErrorResponse) []byte {
	buf = appendString(buf, p.Code)
	return appendString(buf, p.Message)
}

// Forwarded-call payloads (cluster node-to-node frames). The assess pair
// matters most: a NodeAssessment carries the full per-suffix verdict table —
// thousands of entries at long histories — and forwarding it as JSON would
// put an encode+decode of that table on every cross-node read.

func appendFwdAssessRequest(buf []byte, p FwdAssessRequest) []byte {
	buf = appendString(buf, p.Node)
	buf = appendString(buf, string(p.Server))
	buf = appendFloat(buf, p.Threshold)
	return appendBool(buf, p.DigestOnly)
}

func appendNodeAssessment(buf []byte, p NodeAssessment) []byte {
	buf = appendString(buf, p.Node)
	records := p.Records
	if records < 0 {
		records = 0
	}
	buf = binary.AppendUvarint(buf, uint64(records))
	buf = binary.AppendUvarint(buf, p.Version)
	buf = binary.AppendUvarint(buf, p.XOR)
	return appendAssessResponse(buf, p.AssessResponse)
}

func appendFwdSubmitRequest(buf []byte, p FwdSubmitRequest) ([]byte, error) {
	buf = appendString(buf, p.Node)
	buf, err := feedback.AppendBinary(buf, p.Feedback)
	if err != nil {
		return nil, err
	}
	return appendBool(buf, p.Replica), nil
}

func appendFwdBatchRequest(buf []byte, p FwdBatchRequest) ([]byte, error) {
	buf = appendString(buf, p.Node)
	buf, err := appendRecords(buf, p.Records)
	if err != nil {
		return nil, err
	}
	return appendBool(buf, p.Replica), nil
}

func appendFwdAssessBatchRequest(buf []byte, p FwdAssessBatchRequest) []byte {
	buf = appendString(buf, p.Node)
	return appendAssessBatchRequest(buf, AssessBatchRequest{Servers: p.Servers, Threshold: p.Threshold})
}

func appendFwdAssessBatchResponse(buf []byte, p FwdAssessBatchResponse) []byte {
	buf = appendString(buf, p.Node)
	return appendAssessBatchResponse(buf, AssessBatchResponse{Items: p.Items})
}

// breader is a strict cursor over a binary payload: every read checks the
// remaining length, and uvarint-borne counts are sanity-checked against the
// bytes left so a corrupt frame can never force a large allocation.
type breader struct {
	buf []byte
}

func (r *breader) bool() (bool, error) {
	if len(r.buf) < 1 {
		return false, fmt.Errorf("short bool")
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	if b > 1 {
		return false, fmt.Errorf("bool byte %d", b)
	}
	return b == 1, nil
}

func (r *breader) byte() (byte, error) {
	if len(r.buf) < 1 {
		return 0, fmt.Errorf("short byte")
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b, nil
}

func (r *breader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		return 0, fmt.Errorf("bad uvarint")
	}
	r.buf = r.buf[n:]
	return v, nil
}

// count reads a collection count and rejects any value that could not be
// backed by the remaining bytes (each element occupies at least one byte).
func (r *breader) count() (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(r.buf)) {
		return 0, fmt.Errorf("count %d exceeds %d remaining bytes", v, len(r.buf))
	}
	return int(v), nil
}

func (r *breader) int() (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt32 {
		return 0, fmt.Errorf("int %d out of range", v)
	}
	return int(v), nil
}

func (r *breader) float() (float64, error) {
	if len(r.buf) < 8 {
		return 0, fmt.Errorf("short float")
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(r.buf))
	r.buf = r.buf[8:]
	return v, nil
}

func (r *breader) string() (string, error) {
	n, err := r.count()
	if err != nil {
		return "", err
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s, nil
}

func (r *breader) record() (feedback.Feedback, error) {
	f, rest, err := feedback.DecodeBinary(r.buf)
	if err != nil {
		return f, err
	}
	r.buf = rest
	return f, nil
}

func (r *breader) records() ([]feedback.Feedback, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	recs := make([]feedback.Feedback, n)
	for i := range recs {
		if recs[i], err = r.record(); err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
	}
	return recs, nil
}

func (r *breader) batchResponse(o *BatchResponse) error {
	var err error
	if o.Stored, err = r.int(); err != nil {
		return err
	}
	if o.Duplicates, err = r.int(); err != nil {
		return err
	}
	n, err := r.count()
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		var rej BatchReject
		if rej.Index, err = r.int(); err != nil {
			return err
		}
		if rej.Reason, err = r.string(); err != nil {
			return err
		}
		o.Rejected = append(o.Rejected, rej)
	}
	ni, err := r.count()
	if err != nil {
		return err
	}
	if ni == 0 {
		return nil
	}
	o.Items = make([]SubmitBatchItem, ni)
	for i := range o.Items {
		kind, err := r.byte()
		if err != nil {
			return err
		}
		switch kind {
		case submitItemStored:
			o.Items[i].Stored = true
		case submitItemDuplicate:
		case submitItemError:
			o.Items[i].Error = new(ErrorResponse)
			if err := r.errorResponse(o.Items[i].Error); err != nil {
				return err
			}
		default:
			return fmt.Errorf("item %d: kind byte %d", i, kind)
		}
	}
	return nil
}

func (r *breader) historyRequest(o *HistoryRequest) error {
	s, err := r.string()
	if err != nil {
		return err
	}
	o.Server = feedback.EntityID(s)
	o.Limit, err = r.int()
	return err
}

func (r *breader) historyResponse(o *HistoryResponse) error {
	var err error
	if o.Total, err = r.int(); err != nil {
		return err
	}
	o.Records, err = r.records()
	return err
}

func (r *breader) assessRequest(o *AssessRequest) error {
	s, err := r.string()
	if err != nil {
		return err
	}
	o.Server = feedback.EntityID(s)
	o.Threshold, err = r.float()
	return err
}

func (r *breader) assessment(o *core.Assessment) error {
	flags, err := r.byte()
	if err != nil {
		return err
	}
	o.Suspicious = flags&asmtFlagSuspicious != 0
	o.ShortHistory = flags&asmtFlagShortHistory != 0
	s, err := r.string()
	if err != nil {
		return err
	}
	o.Server = feedback.EntityID(s)
	if o.Trust, err = r.float(); err != nil {
		return err
	}
	if o.TrustLow, err = r.float(); err != nil {
		return err
	}
	if o.TrustHigh, err = r.float(); err != nil {
		return err
	}
	if o.Tester, err = r.string(); err != nil {
		return err
	}
	if o.TrustFunc, err = r.string(); err != nil {
		return err
	}
	if flags&asmtFlagVerdict == 0 {
		o.Verdict = behavior.Verdict{}
		return nil
	}
	o.Verdict.Honest = flags&asmtFlagHonest != 0
	n, err := r.count()
	if err != nil {
		return err
	}
	o.Verdict.Suffixes = nil
	for i := 0; i < n; i++ {
		var sr behavior.SuffixResult
		if sr.Transactions, err = r.int(); err != nil {
			return err
		}
		if sr.Windows, err = r.int(); err != nil {
			return err
		}
		if sr.PHat, err = r.float(); err != nil {
			return err
		}
		if sr.Distance, err = r.float(); err != nil {
			return err
		}
		if sr.Threshold, err = r.float(); err != nil {
			return err
		}
		if sr.Pass, err = r.bool(); err != nil {
			return err
		}
		o.Verdict.Suffixes = append(o.Verdict.Suffixes, sr)
	}
	return nil
}

func (r *breader) assessResponse(o *AssessResponse) error {
	flags, err := r.byte()
	if err != nil {
		return err
	}
	o.Accept = flags&assessFlagAccept != 0
	o.Cached = flags&assessFlagCached != 0
	o.Incremental = flags&assessFlagIncremental != 0
	o.Merged = flags&assessFlagMerged != 0
	if err := r.assessment(&o.Assessment); err != nil {
		return err
	}
	if !o.Merged {
		return nil
	}
	n, err := r.count()
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		s, err := r.string()
		if err != nil {
			return err
		}
		o.MergedFrom = append(o.MergedFrom, s)
	}
	return nil
}

func (r *breader) assessBatchRequest(o *AssessBatchRequest) error {
	n, err := r.count()
	if err != nil {
		return err
	}
	o.Servers = make([]feedback.EntityID, n)
	for i := range o.Servers {
		s, err := r.string()
		if err != nil {
			return err
		}
		o.Servers[i] = feedback.EntityID(s)
	}
	o.Threshold, err = r.float()
	return err
}

func (r *breader) assessBatchResponse(o *AssessBatchResponse) error {
	n, err := r.count()
	if err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	o.Items = make([]AssessBatchItem, n)
	for i := range o.Items {
		item := &o.Items[i]
		s, err := r.string()
		if err != nil {
			return err
		}
		item.Server = feedback.EntityID(s)
		kind, err := r.byte()
		if err != nil {
			return err
		}
		switch kind {
		case 0:
			if err := r.assessResponse(&item.AssessResponse); err != nil {
				return err
			}
		case 1:
			item.Error = new(ErrorResponse)
			if err := r.errorResponse(item.Error); err != nil {
				return err
			}
		default:
			return fmt.Errorf("item %d: kind byte %d", i, kind)
		}
	}
	return nil
}

func (r *breader) errorResponse(o *ErrorResponse) error {
	var err error
	if o.Code, err = r.string(); err != nil {
		return err
	}
	o.Message, err = r.string()
	return err
}

func (r *breader) fwdAssessRequest(o *FwdAssessRequest) error {
	var err error
	if o.Node, err = r.string(); err != nil {
		return err
	}
	s, err := r.string()
	if err != nil {
		return err
	}
	o.Server = feedback.EntityID(s)
	if o.Threshold, err = r.float(); err != nil {
		return err
	}
	o.DigestOnly, err = r.bool()
	return err
}

func (r *breader) nodeAssessment(o *NodeAssessment) error {
	var err error
	if o.Node, err = r.string(); err != nil {
		return err
	}
	if o.Records, err = r.int(); err != nil {
		return err
	}
	if o.Version, err = r.uvarint(); err != nil {
		return err
	}
	if o.XOR, err = r.uvarint(); err != nil {
		return err
	}
	return r.assessResponse(&o.AssessResponse)
}

func (r *breader) fwdSubmitRequest(o *FwdSubmitRequest) error {
	var err error
	if o.Node, err = r.string(); err != nil {
		return err
	}
	if o.Feedback, err = r.record(); err != nil {
		return err
	}
	o.Replica, err = r.bool()
	return err
}

func (r *breader) fwdBatchRequest(o *FwdBatchRequest) error {
	var err error
	if o.Node, err = r.string(); err != nil {
		return err
	}
	if o.Records, err = r.records(); err != nil {
		return err
	}
	o.Replica, err = r.bool()
	return err
}

func (r *breader) fwdAssessBatchRequest(o *FwdAssessBatchRequest) error {
	var err error
	if o.Node, err = r.string(); err != nil {
		return err
	}
	var inner AssessBatchRequest
	if err := r.assessBatchRequest(&inner); err != nil {
		return err
	}
	o.Servers, o.Threshold = inner.Servers, inner.Threshold
	return nil
}

func (r *breader) fwdAssessBatchResponse(o *FwdAssessBatchResponse) error {
	var err error
	if o.Node, err = r.string(); err != nil {
		return err
	}
	var inner AssessBatchResponse
	if err := r.assessBatchResponse(&inner); err != nil {
		return err
	}
	o.Items = inner.Items
	return nil
}
