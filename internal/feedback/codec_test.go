package feedback

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleRecords() []Feedback {
	return []Feedback{
		fb("server-1", "alice", Positive, 100),
		fb("server-1", "bob", Negative, 200),
		fb("server-1", "carol", Positive, 300),
	}
}

func TestJSONLinesRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	if err := WriteJSONLines(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONLines(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !got[i].Time.Equal(recs[i].Time) || got[i].Server != recs[i].Server ||
			got[i].Client != recs[i].Client || got[i].Rating != recs[i].Rating {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestReadJSONLinesEmpty(t *testing.T) {
	got, err := ReadJSONLines(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty input: %v, %v", got, err)
	}
}

func TestReadJSONLinesMalformed(t *testing.T) {
	if _, err := ReadJSONLines(strings.NewReader("{not json")); err == nil {
		t.Fatal("malformed JSON must fail")
	}
}

func TestReadJSONLinesInvalidRecord(t *testing.T) {
	// Valid JSON but invalid feedback (rating 0).
	in := `{"time":"2020-01-01T00:00:00Z","server":"s","client":"c","rating":0}`
	if _, err := ReadJSONLines(strings.NewReader(in)); err == nil {
		t.Fatal("invalid record must fail validation")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	recs := sampleRecords()
	buf, err := EncodeBinaryAll(recs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinaryAll(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !got[i].Time.Equal(recs[i].Time) || got[i] != (Feedback{
			Time: got[i].Time, Server: recs[i].Server, Client: recs[i].Client, Rating: recs[i].Rating,
		}) {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(sRaw, cRaw string, good bool, at int64) bool {
		s := EntityID("s" + sanitize(sRaw))
		c := EntityID("c" + sanitize(cRaw))
		r := Negative
		if good {
			r = Positive
		}
		in := Feedback{Time: time.Unix(0, at%1e15).UTC(), Server: s, Client: c, Rating: r}
		buf, err := AppendBinary(nil, in)
		if err != nil {
			return false
		}
		out, rest, err := DecodeBinary(buf)
		if err != nil || len(rest) != 0 {
			return false
		}
		return out.Time.Equal(in.Time) && out.Server == in.Server &&
			out.Client == in.Client && out.Rating == in.Rating
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// sanitize truncates arbitrary strings to the entity-length limit.
func sanitize(s string) string {
	if len(s) > 500 {
		s = s[:500]
	}
	return s
}

func TestAppendBinaryRejectsInvalid(t *testing.T) {
	if _, err := AppendBinary(nil, fb("", "c", Positive, 1)); err == nil {
		t.Fatal("invalid record must fail")
	}
	long := EntityID(strings.Repeat("x", maxEntityLen+1))
	if _, err := AppendBinary(nil, fb(long, "c", Positive, 1)); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("oversized entity = %v", err)
	}
}

func TestDecodeBinaryCorrupt(t *testing.T) {
	tests := []struct {
		name string
		buf  []byte
	}{
		{"empty", nil},
		{"short header", []byte{1, 2, 3}},
		{"truncated entity", func() []byte {
			buf, _ := AppendBinary(nil, fb("server", "client", Positive, 1))
			return buf[:len(buf)-3]
		}()},
		{"bad rating", func() []byte {
			buf, _ := AppendBinary(nil, fb("server", "client", Positive, 1))
			buf[8] = 99
			return buf
		}()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, _, err := DecodeBinary(tt.buf); err == nil {
				t.Fatal("corrupt input must fail")
			}
		})
	}
}

func TestDecodeBinaryAllPartial(t *testing.T) {
	buf, err := EncodeBinaryAll(sampleRecords())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBinaryAll(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated stream must fail")
	}
}

func TestDecodeBinaryOversizedLength(t *testing.T) {
	// Header claims a giant entity length: must fail with ErrRecordTooLarge,
	// not attempt a huge allocation.
	buf, _ := AppendBinary(nil, fb("s", "c", Positive, 1))
	buf[9] = 0xFF
	buf[10] = 0xFF
	if _, _, err := DecodeBinary(buf); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("oversized length = %v", err)
	}
}
