package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestL1DistanceBasic(t *testing.T) {
	tests := []struct {
		name string
		p, q []float64
		want float64
	}{
		{"identical", []float64{0.5, 0.5}, []float64{0.5, 0.5}, 0},
		{"disjoint", []float64{1, 0}, []float64{0, 1}, 2},
		{"half", []float64{0.75, 0.25}, []float64{0.25, 0.75}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := L1Distance(tt.p, tt.q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tt.want) > 1e-12 {
				t.Fatalf("L1 = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestL1DistanceMismatch(t *testing.T) {
	if _, err := L1Distance([]float64{1}, []float64{0.5, 0.5}); err == nil {
		t.Fatal("support mismatch must fail")
	}
}

// normalize turns arbitrary non-negative bytes into a probability vector of
// fixed length for property tests.
func normalize(raw [8]uint8) []float64 {
	out := make([]float64, len(raw))
	sum := 0.0
	for i, r := range raw {
		out[i] = float64(r) + 1 // avoid all-zero
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

func TestL1DistanceAxioms(t *testing.T) {
	f := func(a, b, c [8]uint8) bool {
		p, q, r := normalize(a), normalize(b), normalize(c)
		dpq, _ := L1Distance(p, q)
		dqp, _ := L1Distance(q, p)
		dpr, _ := L1Distance(p, r)
		drq, _ := L1Distance(r, q)
		dpp, _ := L1Distance(p, p)
		// Range, identity, symmetry, triangle inequality.
		return dpq >= 0 && dpq <= 2+1e-12 &&
			dpp == 0 &&
			math.Abs(dpq-dqp) < 1e-12 &&
			dpq <= dpr+drq+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestL2Distance(t *testing.T) {
	got, err := L2Distance([]float64{1, 0}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Fatalf("L2 = %v, want sqrt(2)", got)
	}
	if _, err := L2Distance([]float64{1}, []float64{1, 0}); err == nil {
		t.Fatal("support mismatch must fail")
	}
}

func TestKSStat(t *testing.T) {
	got, err := KSStat([]float64{1, 0}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("KS = %v, want 1", got)
	}
	same, _ := KSStat([]float64{0.3, 0.7}, []float64{0.3, 0.7})
	if same != 0 {
		t.Fatalf("KS of identical = %v", same)
	}
	if _, err := KSStat([]float64{1}, []float64{1, 0}); err == nil {
		t.Fatal("support mismatch must fail")
	}
}

func TestChiSquareStat(t *testing.T) {
	// Perfect agreement gives statistic 0.
	obs := []int64{50, 50}
	exp := []float64{0.5, 0.5}
	got, err := ChiSquareStat(obs, exp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("χ² of exact match = %v", got)
	}
	// Known value: obs 60/40 vs 50/50 expected: (10²/50)*2 = 4.
	got, err = ChiSquareStat([]int64{60, 40}, exp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4) > 1e-12 {
		t.Fatalf("χ² = %v, want 4", got)
	}
}

func TestChiSquareStatErrors(t *testing.T) {
	if _, err := ChiSquareStat([]int64{1}, []float64{0.5, 0.5}, 0); err == nil {
		t.Fatal("support mismatch must fail")
	}
	if _, err := ChiSquareStat([]int64{0, 0}, []float64{0.5, 0.5}, 0); err == nil {
		t.Fatal("empty sample must fail")
	}
}

func TestChiSquareStatMergesCells(t *testing.T) {
	// With minExpected=5 the tiny tail cells merge; the statistic must be
	// finite and non-negative.
	b := MustBinomial(10, 0.95)
	obs := make([]int64, 11)
	obs[10] = 70
	obs[9] = 25
	obs[8] = 5
	got, err := ChiSquareStat(obs, b.PMFTable(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0 || math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("χ² = %v", got)
	}
}

func TestL1HistDistance(t *testing.T) {
	b := MustBinomial(10, 0.9)
	h := MustHistogram(10)
	// A point mass at 9 vs B(10, 0.9).
	for i := 0; i < 100; i++ {
		_ = h.Add(9)
	}
	got, err := L1HistDistance(h, b)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for k := 0; k <= 10; k++ {
		emp := 0.0
		if k == 9 {
			emp = 1
		}
		want += math.Abs(emp - b.PMF(k))
	}
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("L1 = %v, want %v", got, want)
	}
}

func TestL1HistDistanceErrors(t *testing.T) {
	b := MustBinomial(10, 0.9)
	if _, err := L1HistDistance(MustHistogram(5), b); err == nil {
		t.Fatal("support mismatch must fail")
	}
	if _, err := L1HistDistance(MustHistogram(10), b); err == nil {
		t.Fatal("empty histogram must fail")
	}
}

func TestL1SampleDistance(t *testing.T) {
	counts := []int{9, 10, 8, 9, 10, 9}
	dist, pHat, err := L1SampleDistance(10, counts)
	if err != nil {
		t.Fatal(err)
	}
	wantP := 55.0 / 60.0
	if math.Abs(pHat-wantP) > 1e-12 {
		t.Fatalf("pHat = %v, want %v", pHat, wantP)
	}
	if dist < 0 || dist > 2 {
		t.Fatalf("dist = %v out of [0,2]", dist)
	}
}

func TestL1SampleDistanceErrors(t *testing.T) {
	if _, _, err := L1SampleDistance(10, nil); err == nil {
		t.Fatal("empty counts must fail")
	}
	if _, _, err := L1SampleDistance(10, []int{11}); err == nil {
		t.Fatal("count above m must fail")
	}
}

// Property: a large honest sample has small L1 distance; a point mass far
// from the mean has large distance.
func TestL1SampleDistanceDiscriminates(t *testing.T) {
	rng := NewRNG(77)
	b := MustBinomial(10, 0.9)
	honest := b.SampleN(rng, 500)
	dHonest, _, err := L1SampleDistance(10, honest)
	if err != nil {
		t.Fatal(err)
	}
	attack := make([]int, 500)
	for i := range attack {
		attack[i] = 9 // deterministic periodic attacker: exactly one bad per window
	}
	dAttack, _, err := L1SampleDistance(10, attack)
	if err != nil {
		t.Fatal(err)
	}
	if dAttack <= dHonest {
		t.Fatalf("attack distance %v not above honest distance %v", dAttack, dHonest)
	}
	if dHonest > 0.5 {
		t.Fatalf("honest distance %v implausibly large", dHonest)
	}
}

// Property: the KS statistic never exceeds half the L1 distance... in fact
// KS <= L1, since each partial sum of (p-q) is bounded by the total
// absolute sum.
func TestKSBoundedByL1(t *testing.T) {
	f := func(a, b [8]uint8) bool {
		p, q := normalize(a), normalize(b)
		l1, err1 := L1Distance(p, q)
		ks, err2 := KSStat(p, q)
		if err1 != nil || err2 != nil {
			return false
		}
		return ks <= l1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: chi-square statistic is non-negative for any observed counts.
func TestChiSquareNonNegative(t *testing.T) {
	f := func(raw [6]uint8) bool {
		obs := make([]int64, 6)
		var total int64
		for i, r := range raw {
			obs[i] = int64(r)
			total += int64(r)
		}
		if total == 0 {
			return true
		}
		exp := []float64{0.1, 0.2, 0.3, 0.2, 0.1, 0.1}
		stat, err := ChiSquareStat(obs, exp, 0)
		return err == nil && stat >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
