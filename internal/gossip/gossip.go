// Package gossip implements the decentralised feedback-dissemination
// option the paper mentions for P2P systems (§2, citing P-Grid-style data
// organisation and gossip aggregation): nodes periodically reconcile their
// feedback stores with random peers via anti-entropy, so every node
// eventually holds every record and can run two-phase trust assessment
// locally.
//
// Reconciliation is a two-phase pull over the wire protocol. The initiator
// first sends per-server checksums (TypeSummary); the peer answers with the
// servers whose record sets differ (TypeSummaryR). Only for those does the
// initiator send the full hash digest (TypeDigest, scoped), receiving the
// records it is missing (TypeDelta). After convergence a round costs one
// summary round trip. The initiator learns, the responder doesn't —
// convergence comes from every node initiating rounds. Records are
// content-addressed, so the exchange is idempotent and commutative:
// histories converge to the same time-ordered sequence on every node
// regardless of delivery order.
package gossip

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"honestplayer/internal/feedback"
	"honestplayer/internal/stats"
	"honestplayer/internal/store"
	"honestplayer/internal/wire"
)

// Config parameterises a Node.
type Config struct {
	// Name identifies the node in digests and logs.
	Name string
	// Store is the node's feedback store; nil means a fresh one.
	Store *store.Store
	// Peers are the addresses of other nodes to gossip with.
	Peers []string
	// Interval between gossip rounds; zero means 200ms.
	Interval time.Duration
	// Seed drives peer selection.
	Seed uint64
	// Logger receives round errors; nil disables logging.
	Logger *log.Logger
	// DialTimeout bounds connecting to a peer; zero means 2s.
	DialTimeout time.Duration
	// Owned optionally scopes anti-entropy to the servers the local node is
	// responsible for (a clustered node passes its replica-set predicate).
	// The node then only advertises owned servers in its summaries and only
	// pulls records for owned servers, so partitioned ownership is preserved
	// under gossip repair. Nil means unscoped: every record converges to
	// every node (the pre-cluster behaviour).
	Owned func(feedback.EntityID) bool
}

// Node is a gossiping feedback store. Create with New, start the
// anti-entropy loop with Start, and stop everything with Close.
type Node struct {
	cfg      Config
	listener net.Listener
	rng      *stats.RNG

	// baseCtx is cancelled by Close so an in-flight anti-entropy round
	// aborts instead of riding out its dial/IO deadlines.
	baseCtx context.Context
	cancel  context.CancelFunc

	mu     sync.Mutex
	peers  []string
	closed bool

	stop chan struct{}
	wg   sync.WaitGroup

	// Cached wire-form summary of the store, keyed by the store's global
	// version: after convergence every round reuses it instead of walking
	// the store.
	sumMu      sync.Mutex
	sumVersion uint64
	sumCache   map[string]wire.ServerSum
	sumValid   bool

	rounds   atomic.Uint64
	received atomic.Uint64
	inSync   atomic.Uint64
}

// New creates a node listening on addr.
func New(addr string, cfg Config) (*Node, error) {
	if cfg.Name == "" {
		return nil, errors.New("gossip: node needs a name")
	}
	if cfg.Store == nil {
		cfg.Store = store.New()
	}
	if cfg.Interval == 0 {
		cfg.Interval = 200 * time.Millisecond
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("gossip: listen %s: %w", addr, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	n := &Node{
		cfg:      cfg,
		listener: ln,
		rng:      stats.NewRNG(cfg.Seed),
		baseCtx:  ctx,
		cancel:   cancel,
		peers:    append([]string(nil), cfg.Peers...),
		stop:     make(chan struct{}),
	}
	return n, nil
}

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.listener.Addr().String() }

// Store returns the node's feedback store.
func (n *Node) Store() *store.Store { return n.cfg.Store }

// Rounds returns the number of completed gossip rounds.
func (n *Node) Rounds() uint64 { return n.rounds.Load() }

// Received returns the number of records learned from peers.
func (n *Node) Received() uint64 { return n.received.Load() }

// InSyncRounds returns the number of rounds that ended after the summary
// exchange because nothing differed — the cheap steady-state case.
func (n *Node) InSyncRounds() uint64 { return n.inSync.Load() }

// AddPeer registers another peer address.
func (n *Node) AddPeer(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers = append(n.peers, addr)
}

// Start launches the accept loop and the periodic anti-entropy loop.
func (n *Node) Start() {
	n.wg.Add(2)
	go func() {
		defer n.wg.Done()
		n.acceptLoop()
	}()
	go func() {
		defer n.wg.Done()
		n.gossipLoop()
	}()
}

// Close stops the loops and the listener, then waits for them to exit. It
// is idempotent.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		n.wg.Wait()
		return nil
	}
	n.closed = true
	n.cancel()
	close(n.stop)
	err := n.listener.Close()
	n.mu.Unlock()
	n.wg.Wait()
	return err
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logger != nil {
		n.cfg.Logger.Printf(format, args...)
	}
}

// summary returns the store's per-server checksums in wire form. The store
// bumps its global version on every accepted write, so an unchanged version
// means the previous summary is still exact and is returned as-is — the
// steady-state (converged) case. The returned map is shared; treat it as
// read-only.
func (n *Node) summary() map[string]wire.ServerSum {
	v := n.cfg.Store.GlobalVersion()
	n.sumMu.Lock()
	defer n.sumMu.Unlock()
	if n.sumValid && n.sumVersion == v {
		return n.sumCache
	}
	sums := n.cfg.Store.Checksums()
	m := make(map[string]wire.ServerSum, len(sums))
	for srv, cs := range sums {
		if n.cfg.Owned != nil && !n.cfg.Owned(srv) {
			continue
		}
		m[string(srv)] = wire.ServerSum{Count: cs.Count, XOR: cs.XOR}
	}
	// Writes that landed while we walked the store make the summary fresher
	// than v; stamping v just means the next call recomputes. Conservative
	// and correct.
	n.sumVersion, n.sumCache, n.sumValid = v, m, true
	return m
}

func (n *Node) isClosed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.closed
}

func (n *Node) acceptLoop() {
	for {
		conn, err := n.listener.Accept()
		if err != nil {
			if n.isClosed() {
				return
			}
			n.logf("%s: accept: %v", n.cfg.Name, err)
			return
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.serveConn(conn)
		}()
	}
}

// serveConn answers an anti-entropy exchange. A round is up to two
// request/response pairs on one connection: a summary (per-server
// checksums → list of out-of-sync servers), then a digest scoped to those
// servers (hashes → missing records). A bare unscoped digest is also
// answered, as the fallback protocol.
func (n *Node) serveConn(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	_ = conn.SetDeadline(time.Now().Add(n.cfg.DialTimeout * 2))
	reader := bufio.NewReader(conn)
	for {
		env, err := wire.Read(reader)
		if err != nil {
			return
		}
		switch env.Type {
		case wire.TypeSummary:
			var summary wire.SummaryMsg
			if err := wire.DecodePayload(env, &summary); err != nil {
				return
			}
			local := n.summary()
			var stale []string
			for srv, sum := range local {
				if remote, ok := summary.Servers[srv]; !ok || remote != sum {
					stale = append(stale, srv)
				}
			}
			sort.Strings(stale)
			resp, err := wire.Encode(wire.TypeSummaryR, env.ID, wire.SummaryResp{Stale: stale})
			if err != nil {
				n.logf("%s: encode summary resp: %v", n.cfg.Name, err)
				return
			}
			if err := wire.Write(conn, resp); err != nil {
				n.logf("%s: write summary resp to %s: %v", n.cfg.Name, summary.Node, err)
				return
			}
		case wire.TypeDigest:
			var digest wire.DigestMsg
			if err := wire.DecodePayload(env, &digest); err != nil {
				return
			}
			hashes := make([]store.Hash, len(digest.Hashes))
			for i, h := range digest.Hashes {
				hashes[i] = store.Hash(h)
			}
			var missing []feedback.Feedback
			if len(digest.Servers) == 0 {
				missing = n.cfg.Store.MissingFrom(hashes)
			} else {
				for _, srv := range digest.Servers {
					missing = append(missing,
						n.cfg.Store.ServerMissingFrom(feedback.EntityID(srv), hashes)...)
				}
			}
			resp, err := wire.Encode(wire.TypeDelta, env.ID, wire.DeltaMsg{Records: missing})
			if err != nil {
				n.logf("%s: encode delta: %v", n.cfg.Name, err)
				return
			}
			if err := wire.Write(conn, resp); err != nil {
				n.logf("%s: write delta to %s: %v", n.cfg.Name, digest.Node, err)
				return
			}
		default:
			return
		}
	}
}

func (n *Node) gossipLoop() {
	ticker := time.NewTicker(n.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-ticker.C:
			if err := n.RoundOnceCtx(n.baseCtx); err != nil && n.baseCtx.Err() == nil {
				n.logf("%s: gossip round: %v", n.cfg.Name, err)
			}
		}
	}
}

// RoundOnce performs one anti-entropy exchange with a random peer. It
// first exchanges per-server checksum summaries; only for servers whose
// record sets differ does it send the (much larger) hash digest and pull
// the missing records. After convergence a round therefore costs one
// summary round trip. It is exported so tests and tools can drive
// convergence deterministically.
func (n *Node) RoundOnce() error { return n.RoundOnceCtx(n.baseCtx) }

// RoundOnceCtx is RoundOnce bounded by ctx: the dial respects ctx, the
// exchange deadline is the earlier of ctx's deadline and the node's IO
// deadline, and cancellation (e.g. Close) aborts a round mid-exchange.
func (n *Node) RoundOnceCtx(ctx context.Context) error {
	n.mu.Lock()
	if len(n.peers) == 0 {
		n.mu.Unlock()
		return nil
	}
	peer := n.peers[n.rng.Intn(len(n.peers))]
	n.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}

	dialer := net.Dialer{Timeout: n.cfg.DialTimeout}
	conn, err := dialer.DialContext(ctx, "tcp", peer)
	if err != nil {
		return fmt.Errorf("dial %s: %w", peer, err)
	}
	defer func() { _ = conn.Close() }()
	deadline := time.Now().Add(n.cfg.DialTimeout * 2)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	_ = conn.SetDeadline(deadline)
	// Cancellation must interrupt a blocked read: close the conn when ctx
	// fires mid-round.
	stopWatch := context.AfterFunc(ctx, func() { _ = conn.Close() })
	defer stopWatch()
	reader := bufio.NewReader(conn)

	// Phase 1: summary exchange.
	servers := n.summary()
	req, err := wire.Encode(wire.TypeSummary, 1, wire.SummaryMsg{Node: n.cfg.Name, Servers: servers})
	if err != nil {
		return err
	}
	if err := wire.Write(conn, req); err != nil {
		return fmt.Errorf("send summary to %s: %w", peer, err)
	}
	resp, err := wire.Read(reader)
	if err != nil {
		return fmt.Errorf("read summary resp from %s: %w", peer, err)
	}
	if resp.Type != wire.TypeSummaryR {
		return fmt.Errorf("%w: expected summary resp, got %s", wire.ErrBadMessage, resp.Type)
	}
	var sr wire.SummaryResp
	if err := wire.DecodePayload(resp, &sr); err != nil {
		return err
	}
	if n.cfg.Owned != nil {
		// The peer reports every server whose record set differs from our
		// (owned-only) summary — including servers we are not responsible
		// for. Pull only our own.
		kept := sr.Stale[:0]
		for _, srv := range sr.Stale {
			if n.cfg.Owned(feedback.EntityID(srv)) {
				kept = append(kept, srv)
			}
		}
		sr.Stale = kept
	}
	if len(sr.Stale) == 0 {
		n.inSync.Add(1)
		n.rounds.Add(1)
		return nil
	}

	// Phase 2: scoped digest for the out-of-sync servers.
	var hashes []uint64
	for _, srv := range sr.Stale {
		for _, h := range n.cfg.Store.ServerHashes(feedback.EntityID(srv)) {
			hashes = append(hashes, uint64(h))
		}
	}
	req, err = wire.Encode(wire.TypeDigest, 2, wire.DigestMsg{
		Node: n.cfg.Name, Servers: sr.Stale, Hashes: hashes,
	})
	if err != nil {
		return err
	}
	if err := wire.Write(conn, req); err != nil {
		return fmt.Errorf("send digest to %s: %w", peer, err)
	}
	resp, err = wire.Read(reader)
	if err != nil {
		return fmt.Errorf("read delta from %s: %w", peer, err)
	}
	if resp.Type != wire.TypeDelta {
		return fmt.Errorf("%w: expected delta, got %s", wire.ErrBadMessage, resp.Type)
	}
	var delta wire.DeltaMsg
	if err := wire.DecodePayload(resp, &delta); err != nil {
		return err
	}
	// Apply per record so one bad record doesn't discard the rest. Records
	// for servers evicted under a memory budget are skipped, not fatal:
	// they are already durable on the peer and will be pulled again once
	// the server is resident here.
	added := 0
	for _, rec := range delta.Records {
		ok, err := n.cfg.Store.Add(rec)
		if err != nil {
			if errors.Is(err, store.ErrEvicted) {
				continue
			}
			return fmt.Errorf("store delta from %s: %w", peer, err)
		}
		if ok {
			added++
		}
	}
	n.received.Add(uint64(added))
	n.rounds.Add(1)
	return nil
}
