package store

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"honestplayer/internal/behavior"
	"honestplayer/internal/core"
	"honestplayer/internal/feedback"
	"honestplayer/internal/stats"
	"honestplayer/internal/trust"
)

// recordingAcc captures the records fed to it, for plumbing assertions.
type recordingAcc struct {
	server feedback.EntityID
	recs   []feedback.Feedback
}

func (r *recordingAcc) Append(f feedback.Feedback) { r.recs = append(r.recs, f) }

func accFeedback(server, client feedback.EntityID, i int, good bool) feedback.Feedback {
	rating := feedback.Negative
	if good {
		rating = feedback.Positive
	}
	return feedback.Feedback{Time: time.Unix(int64(i)+1, 0), Server: server, Client: client, Rating: rating}
}

// TestAccumulatorFactoryFeedsInOrder installs the factory before writing and
// checks the accumulator sees exactly the accepted records, duplicates
// excluded, in history order.
func TestAccumulatorFactoryFeedsInOrder(t *testing.T) {
	s := New()
	minted := 0
	s.SetAccumulatorFactory(func(server feedback.EntityID) Accumulator {
		minted++
		return &recordingAcc{server: server}
	})
	recs := []feedback.Feedback{
		accFeedback("srv", "a", 0, true),
		accFeedback("srv", "b", 1, false),
		accFeedback("srv", "c", 2, true),
	}
	for _, f := range recs {
		if ok, err := s.Add(f); err != nil || !ok {
			t.Fatalf("Add: ok=%v err=%v", ok, err)
		}
	}
	// A duplicate must not reach the accumulator.
	if ok, err := s.Add(recs[1]); err != nil || ok {
		t.Fatalf("duplicate Add: ok=%v err=%v", ok, err)
	}
	if minted != 1 {
		t.Fatalf("factory minted %d accumulators, want 1", minted)
	}
	if got := s.AccumulatorsTracked(); got != 1 {
		t.Fatalf("AccumulatorsTracked = %d, want 1", got)
	}
	seen := false
	ok := s.ViewAccumulator("srv", func(acc Accumulator, version uint64) {
		seen = true
		if version != 3 {
			t.Errorf("version = %d, want 3", version)
		}
		if got := acc.(*recordingAcc).recs; !reflect.DeepEqual(got, recs) {
			t.Errorf("accumulator saw %v, want %v", got, recs)
		}
	})
	if !ok || !seen {
		t.Fatalf("ViewAccumulator: ok=%v seen=%v", ok, seen)
	}
	if s.ViewAccumulator("unknown", func(Accumulator, uint64) { t.Error("view called for unknown server") }) {
		t.Fatal("ViewAccumulator should report false for unknown servers")
	}
}

// TestAccumulatorFactoryReplaysExisting seeds the store first and checks the
// installation sweep replays existing histories.
func TestAccumulatorFactoryReplaysExisting(t *testing.T) {
	s := New()
	var want []feedback.Feedback
	for i := 0; i < 5; i++ {
		f := accFeedback("srv", "a", i, i%2 == 0)
		want = append(want, f)
		if _, err := s.Add(f); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	s.SetAccumulatorFactory(func(server feedback.EntityID) Accumulator {
		return &recordingAcc{server: server}
	})
	if got := s.AccumulatorsTracked(); got != 1 {
		t.Fatalf("AccumulatorsTracked = %d, want 1", got)
	}
	s.ViewAccumulator("srv", func(acc Accumulator, _ uint64) {
		if got := acc.(*recordingAcc).recs; !reflect.DeepEqual(got, want) {
			t.Errorf("replayed %v, want %v", got, want)
		}
	})
	// Removing the factory drops the accumulators.
	s.SetAccumulatorFactory(nil)
	if got := s.AccumulatorsTracked(); got != 0 {
		t.Fatalf("AccumulatorsTracked after removal = %d, want 0", got)
	}
	if s.ViewAccumulator("srv", func(Accumulator, uint64) {}) {
		t.Fatal("ViewAccumulator should report false after factory removal")
	}
}

// TestAccumulatorRebuiltOnOutOfOrderInsert writes records out of time order
// and checks the accumulator ends up reflecting the re-sorted history.
func TestAccumulatorRebuiltOnOutOfOrderInsert(t *testing.T) {
	s := New()
	s.SetAccumulatorFactory(func(server feedback.EntityID) Accumulator {
		return &recordingAcc{server: server}
	})
	f0 := accFeedback("srv", "a", 0, true)
	f1 := accFeedback("srv", "b", 1, false)
	f2 := accFeedback("srv", "c", 2, true)
	for _, f := range []feedback.Feedback{f0, f2, f1} { // f1 arrives late
		if _, err := s.Add(f); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	want := []feedback.Feedback{f0, f1, f2}
	s.ViewAccumulator("srv", func(acc Accumulator, _ uint64) {
		if got := acc.(*recordingAcc).recs; !reflect.DeepEqual(got, want) {
			t.Errorf("after out-of-order insert accumulator saw %v, want %v", got, want)
		}
	})
}

// newIncrementalAssessor builds the assessor pair used by the end-to-end and
// race tests: a multi tester over a fast calibrator plus the average trust
// function.
func newIncrementalAssessor(t testing.TB) *core.TwoPhase {
	t.Helper()
	cal := stats.NewCalibrator(stats.CalibrationConfig{Replicates: 120, Seed: 9}, 0)
	tester, err := behavior.NewMulti(behavior.Config{Calibrator: cal})
	if err != nil {
		t.Fatalf("NewMulti: %v", err)
	}
	tp, err := core.NewTwoPhase(tester, trust.Average{})
	if err != nil {
		t.Fatalf("NewTwoPhase: %v", err)
	}
	return tp
}

func coreFactory(t testing.TB, tp *core.TwoPhase) AccumulatorFactory {
	t.Helper()
	return func(server feedback.EntityID) Accumulator {
		sa, err := tp.NewServerAccumulator(server)
		if err != nil {
			t.Errorf("NewServerAccumulator: %v", err)
			return &recordingAcc{server: server}
		}
		return sa
	}
}

// TestStoreIncrementalMatchesBatch drives the full stack store-side: every
// few writes, the accumulator-served assessment must equal the batch
// assessment over the store's snapshot.
func TestStoreIncrementalMatchesBatch(t *testing.T) {
	tp := newIncrementalAssessor(t)
	s := New()
	s.SetAccumulatorFactory(coreFactory(t, tp))
	rng := stats.NewRNG(77)
	for i := 0; i < 220; i++ {
		client := feedback.EntityID(rune('a' + rng.Intn(6)))
		if _, err := s.Add(accFeedback("srv", client, i, rng.Float64() < 0.9)); err != nil {
			t.Fatalf("Add: %v", err)
		}
		if i%7 != 0 {
			continue
		}
		var gotA core.Assessment
		var gotErr error
		ok := s.ViewAccumulator("srv", func(acc Accumulator, _ uint64) {
			gotA, gotErr = acc.(*core.ServerAccumulator).Assess()
		})
		if !ok {
			t.Fatal("ViewAccumulator: no accumulator")
		}
		h, _ := s.Snapshot("srv")
		wantA, wantErr := tp.Assess(h)
		if (gotErr == nil) != (wantErr == nil) || (gotErr != nil && gotErr.Error() != wantErr.Error()) {
			t.Fatalf("n=%d: error mismatch: incremental=%v batch=%v", i+1, gotErr, wantErr)
		}
		if !reflect.DeepEqual(gotA, wantA) {
			t.Fatalf("n=%d: assessment mismatch:\nincremental: %+v\nbatch:       %+v", i+1, gotA, wantA)
		}
	}
}

// TestConcurrentAddAndAssess exercises the accumulator under the race
// detector: writers appending under the shard write lock while readers
// assess under the read lock.
func TestConcurrentAddAndAssess(t *testing.T) {
	tp := newIncrementalAssessor(t)
	s := New()
	s.SetAccumulatorFactory(coreFactory(t, tp))
	servers := []feedback.EntityID{"srv-a", "srv-b", "srv-c"}
	const perWriter = 150
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := stats.NewRNG(uint64(1000 + w))
			for i := 0; i < perWriter; i++ {
				srv := servers[w]
				client := feedback.EntityID(rune('a' + rng.Intn(5)))
				if _, err := s.Add(accFeedback(srv, client, w*perWriter+i, rng.Float64() < 0.9)); err != nil {
					t.Errorf("Add: %v", err)
					return
				}
			}
		}()
	}
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				srv := servers[(r+i)%len(servers)]
				s.ViewAccumulator(srv, func(acc Accumulator, _ uint64) {
					if _, _, err := acc.(*core.ServerAccumulator).Accept(0.5); err != nil {
						t.Errorf("Accept: %v", err)
					}
				})
			}
		}()
	}
	// Writers finish, then stop the readers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	go func() {
		// Readers loop until stop; wait for the three writers by polling the
		// record count.
		for s.Len() < 3*perWriter {
			time.Sleep(time.Millisecond)
		}
		close(stop)
	}()
	<-done
	// Final consistency check per server.
	for _, srv := range servers {
		var got core.Assessment
		s.ViewAccumulator(srv, func(acc Accumulator, _ uint64) {
			got, _ = acc.(*core.ServerAccumulator).Assess()
		})
		h, _ := s.Snapshot(srv)
		want, _ := tp.Assess(h)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: final assessment mismatch:\nincremental: %+v\nbatch:       %+v", srv, got, want)
		}
	}
}
