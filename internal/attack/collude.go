package attack

import (
	"fmt"
	"strconv"

	"honestplayer/internal/core"
	"honestplayer/internal/feedback"
	"honestplayer/internal/stats"
)

// ClientSource supplies the non-colluder clients arriving at the attacker's
// service, and receives the outcome each served client experienced. The
// simulation package implements it with the paper's probabilistic arrival
// model (a₁·p for new clients, a₂ after a good service, a₃ after a bad one).
type ClientSource interface {
	// Next returns the next arriving non-colluder client given the server's
	// current reputation.
	Next(reputation float64) feedback.EntityID
	// Observe records the outcome the client experienced, which drives its
	// future arrival probability.
	Observe(c feedback.EntityID, good bool)
}

// Colluding is the strategic attacker of §5.2. For each transaction it
// chooses between cheating on a real client, providing a good service to a
// real client, or obtaining a fake positive feedback from one of its
// colluders, consulting the deployed assessor before acting:
//
//  1. Cheat if the victim would accept now and the post-cheat history stays
//     unsuspicious.
//  2. Otherwise compare, by bounded lookahead, how many colluder fakes vs.
//     how many genuine good services it would take to unlock the next
//     cheat. Fakes are free, so they win ties: against issuer-blind
//     defences (trust functions, plain behaviour testing) fakes repair
//     trust and distribution equally well and the attack costs nothing
//     real; against the issuer-reordering collusion test fakes never
//     unlock a cheat, and the attacker is forced to genuinely serve
//     clients outside its ring.
type Colluding struct {
	// Assessor is the deployed two-phase assessor.
	Assessor *core.TwoPhase
	// Threshold is the clients' trust threshold (paper: 0.9).
	Threshold float64
	// GoalBad is the number of bad transactions the attacker wants.
	GoalBad int
	// Colluders are the attacker's accomplices (paper: 5 of 100 clients).
	Colluders []feedback.EntityID
	// MaxSteps bounds the attack phase; 0 means 1000 × GoalBad.
	MaxSteps int
}

func (c *Colluding) maxSteps() int {
	if c.MaxSteps > 0 {
		return c.MaxSteps
	}
	return 1000 * c.GoalBad
}

func (c *Colluding) validate() error {
	if c.Assessor == nil {
		return fmt.Errorf("%w: nil assessor", ErrBadParams)
	}
	if c.Threshold < 0 || c.Threshold > 1 || c.GoalBad < 1 || len(c.Colluders) == 0 {
		return fmt.Errorf("%w: threshold=%v goal=%d colluders=%d",
			ErrBadParams, c.Threshold, c.GoalBad, len(c.Colluders))
	}
	return nil
}

// lookaheadDepth bounds the unlock search. The weighted function needs at
// most ~4 positives to recover above a 0.9 threshold and the average
// function's deficits after a cheat are similarly shallow, so a depth of 12
// comfortably covers the repair horizons that occur in practice.
const lookaheadDepth = 12

// decide picks the attacker's next action against the arriving victim.
func (c *Colluding) decide(h *feedback.History, victim, colluder feedback.EntityID) (Action, error) {
	// 1. Direct cheat: victim accepts now and H′ stays unsuspicious.
	ok, err := cheatAllowed(c.Assessor, h, victim, c.Threshold)
	if err != nil {
		return 0, err
	}
	if ok {
		return Cheat, nil
	}
	// 2. Unlock race: fakes vs. genuine services.
	byFakes, err := c.stepsToUnlock(h, victim, func(i int) feedback.EntityID {
		return c.Colluders[i%len(c.Colluders)]
	})
	if err != nil {
		return 0, err
	}
	if byFakes <= lookaheadDepth {
		byGoods, err := c.stepsToUnlock(h, victim, func(i int) feedback.EntityID {
			return feedback.EntityID("probe-" + strconv.Itoa(i))
		})
		if err != nil {
			return 0, err
		}
		if byFakes <= byGoods {
			return ColludeFake, nil
		}
		return ServeGood, nil
	}
	// Fakes cannot unlock a cheat within the horizon: only genuine service
	// to clients outside the ring repairs the issuer-ordered distribution
	// (and grows the supporter base).
	return ServeGood, nil
}

// stepsToUnlock returns the smallest number of positive feedbacks from the
// issuer sequence client(0), client(1), … after which a cheat on victim
// becomes allowed, or lookaheadDepth+1 when the horizon is exhausted. The
// history is restored before returning.
func (c *Colluding) stepsToUnlock(h *feedback.History, victim feedback.EntityID, client func(int) feedback.EntityID) (int, error) {
	appended := 0
	restore := func() error {
		for ; appended > 0; appended-- {
			if err := h.RemoveLast(); err != nil {
				return err
			}
		}
		return nil
	}
	for i := 1; i <= lookaheadDepth; i++ {
		if err := h.AppendOutcome(client(i-1), true, logicalTime(h.Len())); err != nil {
			restoreErr := restore()
			if restoreErr != nil {
				return 0, restoreErr
			}
			return 0, err
		}
		appended++
		ok, err := cheatAllowed(c.Assessor, h, victim, c.Threshold)
		if err != nil {
			restoreErr := restore()
			if restoreErr != nil {
				return 0, restoreErr
			}
			return 0, err
		}
		if ok {
			if err := restore(); err != nil {
				return 0, err
			}
			return i, nil
		}
	}
	if err := restore(); err != nil {
		return 0, err
	}
	return lookaheadDepth + 1, nil
}

// Run mutates h through the attack phase until GoalBad bad transactions
// succeed, drawing victims from clients, and returns the attacker's cost.
// Cost.Good counts only genuine services to non-colluders — the paper's
// "true cost" metric of Figs. 5 and 6.
func (c *Colluding) Run(h *feedback.History, clients ClientSource, rng *stats.RNG) (Cost, error) {
	if err := c.validate(); err != nil {
		return Cost{}, err
	}
	if clients == nil {
		return Cost{}, fmt.Errorf("%w: nil client source", ErrBadParams)
	}
	var cost Cost
	colluderIdx := 0
	for cost.Bad < c.GoalBad {
		if cost.Steps >= c.maxSteps() {
			return cost, fmt.Errorf("%w after %d steps (%d/%d bad)",
				ErrGoalUnreachable, cost.Steps, cost.Bad, c.GoalBad)
		}
		victim := clients.Next(h.GoodRatio())
		colluder := c.Colluders[colluderIdx%len(c.Colluders)]
		action, err := c.decide(h, victim, colluder)
		if err != nil {
			return cost, err
		}
		switch action {
		case Cheat:
			if err := h.AppendOutcome(victim, false, logicalTime(h.Len())); err != nil {
				return cost, err
			}
			clients.Observe(victim, false)
			cost.Bad++
		case ColludeFake:
			if err := h.AppendOutcome(colluder, true, logicalTime(h.Len())); err != nil {
				return cost, err
			}
			colluderIdx++
			cost.Colluded++
		case ServeGood:
			if err := h.AppendOutcome(victim, true, logicalTime(h.Len())); err != nil {
				return cost, err
			}
			clients.Observe(victim, true)
			cost.Good++
		}
		cost.Steps++
		_ = rng // reserved for randomised colluder selection
	}
	return cost, nil
}

// UniformClients is a minimal ClientSource drawing victims uniformly from a
// fixed pool, ignoring reputation. It serves tests and examples; the full
// arrival model lives in the sim package.
type UniformClients struct {
	// Pool is the number of distinct clients.
	Pool int
	// RNG drives the selection.
	RNG *stats.RNG
}

var _ ClientSource = (*UniformClients)(nil)

// Next implements ClientSource.
func (u *UniformClients) Next(float64) feedback.EntityID {
	return feedback.EntityID("client-" + strconv.Itoa(u.RNG.Intn(u.Pool)))
}

// Observe implements ClientSource.
func (u *UniformClients) Observe(feedback.EntityID, bool) {}
