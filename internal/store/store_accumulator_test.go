package store

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"honestplayer/internal/behavior"
	"honestplayer/internal/core"
	"honestplayer/internal/feedback"
	"honestplayer/internal/stats"
	"honestplayer/internal/trust"
)

// recordingAcc captures the records fed to it, for plumbing assertions.
type recordingAcc struct {
	server feedback.EntityID
	recs   []feedback.Feedback
}

func (r *recordingAcc) Append(f feedback.Feedback) { r.recs = append(r.recs, f) }

func (r *recordingAcc) SizeBytes() int { return 64 + len(r.recs)*64 }

func accFeedback(server, client feedback.EntityID, i int, good bool) feedback.Feedback {
	rating := feedback.Negative
	if good {
		rating = feedback.Positive
	}
	return feedback.Feedback{Time: time.Unix(int64(i)+1, 0), Server: server, Client: client, Rating: rating}
}

// TestAccumulatorFactoryFeedsInOrder installs the factory before writing and
// checks the accumulator sees exactly the accepted records, duplicates
// excluded, in history order.
func TestAccumulatorFactoryFeedsInOrder(t *testing.T) {
	s := New()
	minted := 0
	s.SetAccumulatorFactory(func(server feedback.EntityID) Accumulator {
		minted++
		return &recordingAcc{server: server}
	})
	recs := []feedback.Feedback{
		accFeedback("srv", "a", 0, true),
		accFeedback("srv", "b", 1, false),
		accFeedback("srv", "c", 2, true),
	}
	for _, f := range recs {
		if ok, err := s.Add(f); err != nil || !ok {
			t.Fatalf("Add: ok=%v err=%v", ok, err)
		}
	}
	// A duplicate must not reach the accumulator.
	if ok, err := s.Add(recs[1]); err != nil || ok {
		t.Fatalf("duplicate Add: ok=%v err=%v", ok, err)
	}
	if minted != 1 {
		t.Fatalf("factory minted %d accumulators, want 1", minted)
	}
	if got := s.AccumulatorsTracked(); got != 1 {
		t.Fatalf("AccumulatorsTracked = %d, want 1", got)
	}
	seen := false
	ok := s.ViewAccumulator("srv", func(acc Accumulator, version uint64) {
		seen = true
		if version != 3 {
			t.Errorf("version = %d, want 3", version)
		}
		if got := acc.(*recordingAcc).recs; !reflect.DeepEqual(got, recs) {
			t.Errorf("accumulator saw %v, want %v", got, recs)
		}
	})
	if !ok || !seen {
		t.Fatalf("ViewAccumulator: ok=%v seen=%v", ok, seen)
	}
	if s.ViewAccumulator("unknown", func(Accumulator, uint64) { t.Error("view called for unknown server") }) {
		t.Fatal("ViewAccumulator should report false for unknown servers")
	}
}

// TestAccumulatorFactoryReplaysExisting seeds the store first and checks the
// installation sweep replays existing histories.
func TestAccumulatorFactoryReplaysExisting(t *testing.T) {
	s := New()
	var want []feedback.Feedback
	for i := 0; i < 5; i++ {
		f := accFeedback("srv", "a", i, i%2 == 0)
		want = append(want, f)
		if _, err := s.Add(f); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	s.SetAccumulatorFactory(func(server feedback.EntityID) Accumulator {
		return &recordingAcc{server: server}
	})
	if got := s.AccumulatorsTracked(); got != 1 {
		t.Fatalf("AccumulatorsTracked = %d, want 1", got)
	}
	s.ViewAccumulator("srv", func(acc Accumulator, _ uint64) {
		if got := acc.(*recordingAcc).recs; !reflect.DeepEqual(got, want) {
			t.Errorf("replayed %v, want %v", got, want)
		}
	})
	// Removing the factory drops the accumulators.
	s.SetAccumulatorFactory(nil)
	if got := s.AccumulatorsTracked(); got != 0 {
		t.Fatalf("AccumulatorsTracked after removal = %d, want 0", got)
	}
	if s.ViewAccumulator("srv", func(Accumulator, uint64) {}) {
		t.Fatal("ViewAccumulator should report false after factory removal")
	}
}

// TestAccumulatorRebuiltOnOutOfOrderInsert writes records out of time order
// and checks the accumulator ends up reflecting the re-sorted history.
func TestAccumulatorRebuiltOnOutOfOrderInsert(t *testing.T) {
	s := New()
	s.SetAccumulatorFactory(func(server feedback.EntityID) Accumulator {
		return &recordingAcc{server: server}
	})
	f0 := accFeedback("srv", "a", 0, true)
	f1 := accFeedback("srv", "b", 1, false)
	f2 := accFeedback("srv", "c", 2, true)
	for _, f := range []feedback.Feedback{f0, f2, f1} { // f1 arrives late
		if _, err := s.Add(f); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	want := []feedback.Feedback{f0, f1, f2}
	s.ViewAccumulator("srv", func(acc Accumulator, _ uint64) {
		if got := acc.(*recordingAcc).recs; !reflect.DeepEqual(got, want) {
			t.Errorf("after out-of-order insert accumulator saw %v, want %v", got, want)
		}
	})
}

// newIncrementalAssessor builds the assessor pair used by the end-to-end and
// race tests: a multi tester over a fast calibrator plus the average trust
// function.
func newIncrementalAssessor(t testing.TB) *core.TwoPhase {
	t.Helper()
	cal := stats.NewCalibrator(stats.CalibrationConfig{Replicates: 120, Seed: 9}, 0)
	tester, err := behavior.NewMulti(behavior.Config{Calibrator: cal})
	if err != nil {
		t.Fatalf("NewMulti: %v", err)
	}
	tp, err := core.NewTwoPhase(tester, trust.Average{})
	if err != nil {
		t.Fatalf("NewTwoPhase: %v", err)
	}
	return tp
}

func coreFactory(t testing.TB, tp *core.TwoPhase) AccumulatorFactory {
	t.Helper()
	return func(server feedback.EntityID) Accumulator {
		sa, err := tp.NewServerAccumulator(server)
		if err != nil {
			t.Errorf("NewServerAccumulator: %v", err)
			return &recordingAcc{server: server}
		}
		return sa
	}
}

// TestStoreIncrementalMatchesBatch drives the full stack store-side: every
// few writes, the accumulator-served assessment must equal the batch
// assessment over the store's snapshot.
func TestStoreIncrementalMatchesBatch(t *testing.T) {
	tp := newIncrementalAssessor(t)
	s := New()
	s.SetAccumulatorFactory(coreFactory(t, tp))
	rng := stats.NewRNG(77)
	for i := 0; i < 220; i++ {
		client := feedback.EntityID(rune('a' + rng.Intn(6)))
		if _, err := s.Add(accFeedback("srv", client, i, rng.Float64() < 0.9)); err != nil {
			t.Fatalf("Add: %v", err)
		}
		if i%7 != 0 {
			continue
		}
		var gotA core.Assessment
		var gotErr error
		ok := s.ViewAccumulator("srv", func(acc Accumulator, _ uint64) {
			gotA, gotErr = acc.(*core.ServerAccumulator).Assess()
		})
		if !ok {
			t.Fatal("ViewAccumulator: no accumulator")
		}
		h, _ := s.Snapshot("srv")
		wantA, wantErr := tp.Assess(h)
		if (gotErr == nil) != (wantErr == nil) || (gotErr != nil && gotErr.Error() != wantErr.Error()) {
			t.Fatalf("n=%d: error mismatch: incremental=%v batch=%v", i+1, gotErr, wantErr)
		}
		if !reflect.DeepEqual(gotA, wantA) {
			t.Fatalf("n=%d: assessment mismatch:\nincremental: %+v\nbatch:       %+v", i+1, gotA, wantA)
		}
	}
}

// TestConcurrentAddAndAssess exercises the accumulator under the race
// detector: writers appending under the shard write lock while readers
// assess under the read lock.
func TestConcurrentAddAndAssess(t *testing.T) {
	tp := newIncrementalAssessor(t)
	s := New()
	s.SetAccumulatorFactory(coreFactory(t, tp))
	servers := []feedback.EntityID{"srv-a", "srv-b", "srv-c"}
	const perWriter = 150
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := stats.NewRNG(uint64(1000 + w))
			for i := 0; i < perWriter; i++ {
				srv := servers[w]
				client := feedback.EntityID(rune('a' + rng.Intn(5)))
				if _, err := s.Add(accFeedback(srv, client, w*perWriter+i, rng.Float64() < 0.9)); err != nil {
					t.Errorf("Add: %v", err)
					return
				}
			}
		}()
	}
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				srv := servers[(r+i)%len(servers)]
				s.ViewAccumulator(srv, func(acc Accumulator, _ uint64) {
					if _, _, err := acc.(*core.ServerAccumulator).Accept(0.5); err != nil {
						t.Errorf("Accept: %v", err)
					}
				})
			}
		}()
	}
	// Writers finish, then stop the readers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	go func() {
		// Readers loop until stop; wait for the three writers by polling the
		// record count.
		for s.Len() < 3*perWriter {
			time.Sleep(time.Millisecond)
		}
		close(stop)
	}()
	<-done
	// Final consistency check per server.
	for _, srv := range servers {
		var got core.Assessment
		s.ViewAccumulator(srv, func(acc Accumulator, _ uint64) {
			got, _ = acc.(*core.ServerAccumulator).Assess()
		})
		h, _ := s.Snapshot(srv)
		want, _ := tp.Assess(h)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: final assessment mismatch:\nincremental: %+v\nbatch:       %+v", srv, got, want)
		}
	}
}

// shardMates returns distinct server IDs that all hash to one shard of s,
// plus the shard index — the grouping a batch assessor relies on.
func shardMates(s *Store, n int) (ids []feedback.EntityID, idx int) {
	idx = s.ShardIndex("srv-0")
	for i := 0; len(ids) < n; i++ {
		id := feedback.EntityID(fmt.Sprintf("srv-%d", i))
		if s.ShardIndex(id) == idx {
			ids = append(ids, id)
		}
	}
	return ids, idx
}

// TestShardIndexMatchesPlacement checks ShardIndex agrees with where Add
// actually puts records: a group view over the computed shard must see every
// server written to it.
func TestShardIndexMatchesPlacement(t *testing.T) {
	s := NewSharded(8)
	for i := 0; i < 50; i++ {
		id := feedback.EntityID(fmt.Sprintf("server-%d", i))
		if idx := s.ShardIndex(id); idx < 0 || idx >= s.NumShards() {
			t.Fatalf("ShardIndex(%q) = %d out of range", id, idx)
		}
		if _, err := s.Add(accFeedback(id, "c", i, true)); err != nil {
			t.Fatal(err)
		}
		seen := false
		s.ViewShard(s.ShardIndex(id), []feedback.EntityID{id}, func(_ int, _ Accumulator, snap *feedback.History, version uint64) {
			seen = snap != nil && snap.Len() == 1 && version == 1
		})
		if !seen {
			t.Fatalf("ViewShard(%d) did not observe %q", s.ShardIndex(id), id)
		}
	}
}

// TestViewShardGroup drives the batch read path: several servers of one
// shard viewed under a single lock acquisition must report exactly what the
// per-server Snapshot/ViewAccumulator reads report, with unknown servers as
// (nil, nil, 0) in their own slots.
func TestViewShardGroup(t *testing.T) {
	s := New()
	s.SetAccumulatorFactory(func(server feedback.EntityID) Accumulator {
		return &recordingAcc{server: server}
	})
	mates, idx := shardMates(s, 3)
	known := mates[:2]
	for i, id := range known {
		for j := 0; j <= i; j++ { // distinct history lengths per server
			if _, err := s.Add(accFeedback(id, "c", 10*i+j, true)); err != nil {
				t.Fatal(err)
			}
		}
	}
	group := []feedback.EntityID{known[0], mates[2], known[1]} // middle one unknown
	calls := 0
	s.ViewShard(idx, group, func(i int, acc Accumulator, snap *feedback.History, version uint64) {
		calls++
		id := group[i]
		if id == mates[2] {
			if acc != nil || snap != nil || version != 0 {
				t.Fatalf("unknown server slot = (%v, %v, %d)", acc, snap, version)
			}
			return
		}
		wantSnap, wantVersion := s.Snapshot(id)
		if version != wantVersion || snap.Len() != wantSnap.Len() {
			t.Fatalf("%s: got (len %d, v%d), want (len %d, v%d)",
				id, snap.Len(), version, wantSnap.Len(), wantVersion)
		}
		ra, ok := acc.(*recordingAcc)
		if !ok || ra.server != id || len(ra.recs) != snap.Len() {
			t.Fatalf("%s: accumulator = %+v", id, acc)
		}
	})
	if calls != len(group) {
		t.Fatalf("view called %d times, want %d", calls, len(group))
	}
}

// TestViewShardWrongShardPanics: misrouting a server to the wrong shard
// group must fail loudly, not silently report it unknown.
func TestViewShardWrongShardPanics(t *testing.T) {
	s := NewSharded(4)
	var stray feedback.EntityID
	for i := 0; ; i++ {
		stray = feedback.EntityID(fmt.Sprintf("srv-%d", i))
		if s.ShardIndex(stray) != 0 {
			break
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ViewShard must panic on a misrouted server")
		}
	}()
	s.ViewShard(0, []feedback.EntityID{stray}, func(int, Accumulator, *feedback.History, uint64) {})
}
