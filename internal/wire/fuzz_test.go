package wire

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzRead ensures the frame reader never panics and respects the frame
// limit on arbitrary input.
func FuzzRead(f *testing.F) {
	env, _ := Encode(TypePing, 1, nil)
	var buf bytes.Buffer
	_ = Write(&buf, env)
	f.Add(buf.Bytes())
	f.Add([]byte("{}\n"))
	f.Add([]byte("garbage with no newline"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		if got.V != Version || got.Type == "" {
			t.Fatalf("accepted invalid envelope: %+v", got)
		}
	})
}
