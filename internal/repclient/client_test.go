package repclient

import (
	"bufio"
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"honestplayer/internal/feedback"
	"honestplayer/internal/wire"
)

func TestDialFailure(t *testing.T) {
	// Reserve a port, close it, then dial: connection refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Dial(addr, WithProtocol(ProtoJSON), WithTimeout(time.Second)); err == nil {
		t.Fatal("dial to closed port must fail")
	}
}

// fakeServer accepts one connection and runs handler on it.
func fakeServer(t *testing.T, handler func(net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer func() { _ = conn.Close() }()
		handler(conn)
	}()
	return ln.Addr().String()
}

func TestTimeout(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		// Read the request but never answer.
		_, _ = wire.Read(bufio.NewReader(conn))
		time.Sleep(2 * time.Second)
	})
	c, err := Dial(addr, WithProtocol(ProtoJSON), WithTimeout(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	start := time.Now()
	if err := c.Ping(); err == nil {
		t.Fatal("ping against silent server must time out")
	}
	if time.Since(start) > time.Second {
		t.Fatal("timeout took too long")
	}
}

func TestMismatchedResponseID(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		if _, err := wire.Read(bufio.NewReader(conn)); err != nil {
			return
		}
		env, _ := wire.Encode(wire.TypePong, 999, nil)
		_ = wire.Write(conn, env)
	})
	c, err := Dial(addr, WithProtocol(ProtoJSON), WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if err := c.Ping(); err == nil {
		t.Fatal("mismatched id must fail")
	}
}

func TestUnexpectedResponseType(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		env, err := wire.Read(bufio.NewReader(conn))
		if err != nil {
			return
		}
		resp, _ := wire.Encode(wire.TypeHistoryR, env.ID, wire.HistoryResponse{})
		_ = wire.Write(conn, resp)
	})
	c, err := Dial(addr, WithProtocol(ProtoJSON), WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if err := c.Ping(); err == nil {
		t.Fatal("unexpected response type must fail")
	}
}

func TestRemoteErrorSurfaces(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		env, err := wire.Read(bufio.NewReader(conn))
		if err != nil {
			return
		}
		resp, _ := wire.Encode(wire.TypeError, env.ID, wire.ErrorResponse{Code: "boom", Message: "x"})
		_ = wire.Write(conn, resp)
	})
	c, err := Dial(addr, WithProtocol(ProtoJSON), WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	err = c.Ping()
	var remote *wire.ErrorResponse
	if !errors.As(err, &remote) || remote.Code != "boom" {
		t.Fatalf("err = %v", err)
	}
}

func TestClosedClient(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {})
	c, err := Dial(addr, WithProtocol(ProtoJSON))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
}

// multiServer accepts connections until the test ends and runs handler on
// each, passing the 1-based accept index.
func multiServer(t *testing.T, handler func(n int, conn net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for n := 1; ; n++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(n int, conn net.Conn) {
				defer func() { _ = conn.Close() }()
				handler(n, conn)
			}(n, conn)
		}
	}()
	return ln.Addr().String()
}

// TestPoisonedConnectionRedials is the regression test for the
// late-response bug: the first request times out while the server is still
// composing its answer; the late pong must never be read as the reply to
// the second request. The client redials and the retry succeeds.
func TestPoisonedConnectionRedials(t *testing.T) {
	addr := multiServer(t, func(n int, conn net.Conn) {
		r := bufio.NewReader(conn)
		for {
			env, err := wire.Read(r)
			if err != nil {
				return
			}
			if n == 1 {
				// Answer the first connection's request well past the
				// client timeout — a late pong poised to poison the stream.
				time.Sleep(400 * time.Millisecond)
			}
			resp, _ := wire.Encode(wire.TypePong, env.ID, nil)
			if err := wire.Write(conn, resp); err != nil {
				return
			}
		}
	})
	c, err := Dial(addr, WithProtocol(ProtoJSON), WithTimeout(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	if err := c.Ping(); err == nil {
		t.Fatal("first ping must time out")
	}
	// Without poisoning, this request would be sent on the old connection
	// and read connection 1's late pong — whose id (1) would not match and
	// previously desynchronised every later request. With poisoning the
	// client redials and connection 2 answers promptly.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after redial: %v", err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("third ping: %v", err)
	}
}

// TestRedialFailureIsErrConnBroken: when the connection is poisoned and the
// server is gone, the next call fails fast with ErrConnBroken.
func TestRedialFailureIsErrConnBroken(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Swallow the request, never answer.
		_, _ = wire.Read(bufio.NewReader(conn))
		time.Sleep(2 * time.Second)
		_ = conn.Close()
	}()
	c, err := Dial(ln.Addr().String(), WithProtocol(ProtoJSON), WithTimeout(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if err := c.Ping(); err == nil {
		t.Fatal("ping against silent server must time out")
	}
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); !errors.Is(err, ErrConnBroken) {
		t.Fatalf("err = %v, want ErrConnBroken", err)
	}
}

// TestMismatchedResponseIDBreaksConn: a response for the wrong request id
// poisons the connection; the next call redials.
func TestMismatchedResponseIDBreaksConn(t *testing.T) {
	addr := multiServer(t, func(n int, conn net.Conn) {
		r := bufio.NewReader(conn)
		for {
			env, err := wire.Read(r)
			if err != nil {
				return
			}
			id := env.ID
			if n == 1 {
				id = 999
			}
			resp, _ := wire.Encode(wire.TypePong, id, nil)
			if err := wire.Write(conn, resp); err != nil {
				return
			}
		}
	})
	c, err := Dial(addr, WithProtocol(ProtoJSON), WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if err := c.Ping(); !errors.Is(err, ErrConnBroken) {
		t.Fatalf("err = %v, want ErrConnBroken", err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after redial: %v", err)
	}
}

// TestUnattributableErrorIsConnectionFatal: an error frame with id 0 means
// the server could not tell which request failed (mid-frame read error), so
// the stream is desynchronised and the client must redial.
func TestUnattributableErrorIsConnectionFatal(t *testing.T) {
	addr := multiServer(t, func(n int, conn net.Conn) {
		r := bufio.NewReader(conn)
		for {
			env, err := wire.Read(r)
			if err != nil {
				return
			}
			if n == 1 {
				resp, _ := wire.Encode(wire.TypeError, wire.UnattributableID,
					wire.ErrorResponse{Code: wire.CodeBadRequest, Message: "bad frame"})
				_ = wire.Write(conn, resp)
				return
			}
			resp, _ := wire.Encode(wire.TypePong, env.ID, nil)
			if err := wire.Write(conn, resp); err != nil {
				return
			}
		}
	})
	c, err := Dial(addr, WithProtocol(ProtoJSON), WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if err := c.Ping(); !errors.Is(err, ErrConnBroken) {
		t.Fatalf("err = %v, want ErrConnBroken", err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after redial: %v", err)
	}
}

// TestCtxCancellationInterruptsBlockedRead: cancelling the context releases
// a round trip blocked on a silent server, well before the client timeout.
func TestCtxCancellationInterruptsBlockedRead(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		_, _ = wire.Read(bufio.NewReader(conn))
		time.Sleep(2 * time.Second)
	})
	c, err := Dial(addr, WithProtocol(ProtoJSON), WithTimeout(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err = c.PingCtx(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancellation did not interrupt the blocked read promptly")
	}
}

// batchEchoServer answers assess.batch requests with one synthetic item per
// requested server (ghosts get a per-item error), recording each chunk size.
func batchEchoServer(t *testing.T, chunkSizes *[]int) string {
	t.Helper()
	return fakeServer(t, func(conn net.Conn) {
		r := bufio.NewReader(conn)
		for {
			env, err := wire.Read(r)
			if err != nil {
				return
			}
			var req wire.AssessBatchRequest
			if err := wire.DecodePayload(env, &req); err != nil {
				return
			}
			*chunkSizes = append(*chunkSizes, len(req.Servers))
			resp := wire.AssessBatchResponse{Items: make([]wire.AssessBatchItem, len(req.Servers))}
			for i, s := range req.Servers {
				resp.Items[i].Server = s
				if s == "ghost" {
					resp.Items[i].Error = &wire.ErrorResponse{Code: wire.CodeUnknownServer, Message: "no records"}
					continue
				}
				resp.Items[i].Accept = true
			}
			out, err := wire.Encode(wire.TypeAssessBR, env.ID, resp)
			if err != nil {
				return
			}
			if err := wire.Write(conn, out); err != nil {
				return
			}
		}
	})
}

func TestAssessBatchChunking(t *testing.T) {
	var chunks []int
	addr := batchEchoServer(t, &chunks)
	c, err := Dial(addr, WithProtocol(ProtoJSON), WithTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	// 600 servers must split into 256 + 256 + 88 and reassemble in request
	// order, with the per-item error of the one ghost intact.
	servers := make([]feedback.EntityID, 600)
	for i := range servers {
		servers[i] = feedback.EntityID("s" + string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune('A'+i/60)))
	}
	servers[300] = "ghost"
	items, err := c.AssessBatch(servers, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != len(servers) {
		t.Fatalf("items = %d, want %d", len(items), len(servers))
	}
	for i, item := range items {
		if item.Server != servers[i] {
			t.Fatalf("item %d answers %q, want %q", i, item.Server, servers[i])
		}
	}
	if items[300].Error == nil || items[300].Error.Code != wire.CodeUnknownServer {
		t.Fatalf("ghost item = %+v", items[300])
	}
	if items[299].Error != nil || !items[299].Accept {
		t.Fatalf("neighbour of ghost = %+v", items[299])
	}
	want := []int{wire.MaxAssessBatch, wire.MaxAssessBatch, 600 - 2*wire.MaxAssessBatch}
	if len(chunks) != len(want) {
		t.Fatalf("chunks = %v, want %v", chunks, want)
	}
	for i := range want {
		if chunks[i] != want[i] {
			t.Fatalf("chunks = %v, want %v", chunks, want)
		}
	}
}

func TestAssessBatchEmpty(t *testing.T) {
	var chunks []int
	addr := batchEchoServer(t, &chunks)
	cl, err := Dial(addr, WithProtocol(ProtoJSON), WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()
	if _, err := cl.AssessBatch(nil, 0.5); err == nil {
		t.Fatal("empty batch must fail client-side")
	}
	if len(chunks) != 0 {
		t.Fatalf("empty batch reached the server: %v", chunks)
	}
}

func TestAssessBatchItemCountMismatch(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		r := bufio.NewReader(conn)
		env, err := wire.Read(r)
		if err != nil {
			return
		}
		// One item short: the client must refuse to misalign the rest.
		resp := wire.AssessBatchResponse{Items: []wire.AssessBatchItem{{Server: "a"}}}
		out, _ := wire.Encode(wire.TypeAssessBR, env.ID, resp)
		_ = wire.Write(conn, out)
	})
	c, err := Dial(addr, WithProtocol(ProtoJSON), WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	_, err = c.AssessBatch([]feedback.EntityID{"a", "b"}, 0.5)
	if err == nil || !strings.Contains(err.Error(), "items") {
		t.Fatalf("mismatched item count error = %v", err)
	}
}
