package gossip

import (
	"fmt"
	"testing"
	"time"

	"honestplayer/internal/feedback"
)

// BenchmarkRoundInSync measures the steady-state cost of a gossip round:
// one summary round trip, no record transfer.
func BenchmarkRoundInSync(b *testing.B) {
	mk := func(name string) *Node {
		n, err := New("127.0.0.1:0", Config{Name: name, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		return n
	}
	a, peer := mk("a"), mk("b")
	defer func() { _ = a.Close() }()
	defer func() { _ = peer.Close() }()
	a.AddPeer(peer.Addr())
	peer.Start()
	a.Start()
	for i := 0; i < 1000; i++ {
		r := feedback.Feedback{
			Time: time.Unix(int64(i), 0).UTC(), Server: "srv",
			Client: feedback.EntityID(fmt.Sprintf("c%d", i%50)), Rating: feedback.Positive,
		}
		if _, err := a.Store().Add(r); err != nil {
			b.Fatal(err)
		}
		if _, err := peer.Store().Add(r); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.RoundOnce(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if a.InSyncRounds() == 0 {
		b.Fatal("rounds were not in-sync")
	}
}
