package core

import (
	"errors"
	"fmt"

	"honestplayer/internal/behavior"
	"honestplayer/internal/feedback"
	"honestplayer/internal/stats"
	"honestplayer/internal/trust"
)

// ServerAccumulator is the incremental counterpart of TwoPhase for a single
// server: it consumes the server's feedback stream in amortised O(1) per
// record and can produce at any point the Assessment that TwoPhase.Assess
// would compute over the history consumed so far — the same Honest flag,
// p̂ values, distances, trust value, Wilson bounds, and errors, bit for bit.
//
// The store layer owns one accumulator per server and feeds it under the
// shard write lock; assessments run under the shard read lock. Outside that
// arrangement the caller must guarantee that Append never runs concurrently
// with anything else (concurrent Assess/Accept calls are safe with each
// other).
type ServerAccumulator struct {
	tp     *TwoPhase
	server feedback.EntityID
	beh    *behavior.Accumulator // nil when phase 1 is disabled
	tr     *trust.Accumulator
}

// SupportsIncremental reports whether NewServerAccumulator can mirror this
// assessor: the trust function must provide a tracker and the tester (when
// set) an incremental accumulator. All built-in combinations qualify.
func (tp *TwoPhase) SupportsIncremental() bool {
	if _, ok := tp.fn.(trust.TrackerFunc); !ok {
		return false
	}
	return tp.tester == nil || behavior.SupportsAccumulator(tp.tester)
}

// NewServerAccumulator mints an empty incremental assessment state for one
// server. It fails when the assessor's components have no incremental form;
// use SupportsIncremental to check up front.
func (tp *TwoPhase) NewServerAccumulator(server feedback.EntityID) (*ServerAccumulator, error) {
	tr, ok := trust.NewAccumulator(tp.fn)
	if !ok {
		return nil, fmt.Errorf("core: trust function %s has no incremental tracker", tp.fn.Name())
	}
	sa := &ServerAccumulator{tp: tp, server: server, tr: tr}
	if tp.tester != nil {
		beh, ok := behavior.NewAccumulatorFor(tp.tester)
		if !ok {
			return nil, fmt.Errorf("core: tester %s has no incremental accumulator", tp.tester.Name())
		}
		sa.beh = beh
	}
	return sa, nil
}

// Server returns the server this accumulator assesses.
func (sa *ServerAccumulator) Server() feedback.EntityID { return sa.server }

// Len returns the number of feedback records consumed.
func (sa *ServerAccumulator) Len() int {
	n, _ := sa.tr.Counts()
	return n
}

// SizeBytes returns the approximate resident heap footprint of the
// accumulator's state: the wrapper plus its trust tracker and (when phase 1
// is enabled) the behaviour accumulator, whose PMF arena dominates. The
// memory-budget governor charges this against the node-wide budget as the
// accumulator half of a server's resident size.
func (sa *ServerAccumulator) SizeBytes() int {
	const saStruct = 48 // ServerAccumulator struct: 3 pointers + string header
	size := saStruct + sa.tr.SizeBytes()
	if sa.beh != nil {
		size += sa.beh.SizeBytes()
	}
	return size
}

// Append consumes the server's next feedback record in amortised O(1).
// Records must arrive in history (time) order.
func (sa *ServerAccumulator) Append(f feedback.Feedback) {
	if sa.beh != nil {
		sa.beh.Append(f)
	}
	sa.tr.Update(f.Good())
}

// Assess produces the two-phase assessment over the records consumed so
// far. It mirrors TwoPhase.Assess on the equivalent history exactly,
// including the short-history policy and error wrapping.
func (sa *ServerAccumulator) Assess() (Assessment, error) {
	a := Assessment{Server: sa.server, TrustFunc: sa.tp.fn.Name()}
	if sa.beh != nil {
		a.Tester = sa.tp.tester.Name()
		v, err := sa.beh.Test()
		switch {
		case errors.Is(err, behavior.ErrInsufficientHistory):
			a.ShortHistory = true
			if sa.tp.policy == RejectShort {
				a.Suspicious = true
				return a, nil
			}
		case err != nil:
			return a, fmt.Errorf("behaviour test: %w", err)
		default:
			a.Verdict = v
			if !v.Honest {
				a.Suspicious = true
				return a, nil
			}
		}
	}
	value, err := sa.tr.Value()
	if err != nil {
		return a, fmt.Errorf("trust function: %w", err)
	}
	a.Trust = value
	if n, good := sa.tr.Counts(); n > 0 {
		lo, hi, err := stats.WilsonInterval(good, n, 1.96)
		if err != nil {
			return a, fmt.Errorf("trust interval: %w", err)
		}
		a.TrustLow, a.TrustHigh = lo, hi
	}
	return a, nil
}

// Accept is the incremental counterpart of TwoPhase.Accept: Assess plus the
// client's trust-threshold decision.
func (sa *ServerAccumulator) Accept(threshold float64) (bool, Assessment, error) {
	a, err := sa.Assess()
	if err != nil {
		return false, a, err
	}
	return !a.Suspicious && a.Trust >= threshold, a, nil
}
