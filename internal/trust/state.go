package trust

// Incremental-state serialization: every built-in tracker can freeze its
// internal state into a compact binary blob and restore it exactly, so a
// node snapshot can persist per-server trust accumulators and a rebooting
// node can resume them without re-feeding the whole transaction history.
//
// The encoding is exact — integers as uvarints, floats as their IEEE-754
// bit patterns — so a restored tracker's Value() is bit-identical to the
// original's. Function parameters (λ, decay, window length) are NOT part of
// the state: they come from configuration, and the restoring side must mint
// the tracker from the same Func. Only the history-dependent counters are
// serialized.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrBadState reports a state blob that does not decode against the tracker
// it is being restored into.
var ErrBadState = errors.New("trust: bad tracker state")

// StateTracker is a Tracker whose internal state can be serialized and
// restored exactly. All built-in trackers implement it.
type StateTracker interface {
	Tracker
	// AppendState appends the tracker's serialized state to buf.
	AppendState(buf []byte) []byte
	// RestoreState replaces the tracker's state with the decoded prefix of
	// buf, returning the remaining bytes. The tracker must have been minted
	// by the same Func (with equal parameters) that produced the state.
	RestoreState(buf []byte) ([]byte, error)
}

var (
	_ StateTracker = (*averageTracker)(nil)
	_ StateTracker = (*ewmaTracker)(nil)
	_ StateTracker = (*betaTracker)(nil)
	_ StateTracker = (*decayTracker)(nil)
	_ StateTracker = (*windowTracker)(nil)
)

// uvarint decoding helper shared by the tracker restores.
func readUvarint(buf []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: short uvarint", ErrBadState)
	}
	return v, buf[n:], nil
}

func readFloat(buf []byte) (float64, []byte, error) {
	if len(buf) < 8 {
		return 0, nil, fmt.Errorf("%w: short float", ErrBadState)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf)), buf[8:], nil
}

func appendFloat(buf []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
}

func (t *averageTracker) AppendState(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(t.n))
	return binary.AppendUvarint(buf, uint64(t.good))
}

func (t *averageTracker) RestoreState(buf []byte) ([]byte, error) {
	n, buf, err := readUvarint(buf)
	if err != nil {
		return nil, err
	}
	good, buf, err := readUvarint(buf)
	if err != nil {
		return nil, err
	}
	if good > n {
		return nil, fmt.Errorf("%w: good %d > n %d", ErrBadState, good, n)
	}
	t.n, t.good = int(n), int(good)
	return buf, nil
}

func (t *betaTracker) AppendState(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(t.n))
	return binary.AppendUvarint(buf, uint64(t.good))
}

func (t *betaTracker) RestoreState(buf []byte) ([]byte, error) {
	n, buf, err := readUvarint(buf)
	if err != nil {
		return nil, err
	}
	good, buf, err := readUvarint(buf)
	if err != nil {
		return nil, err
	}
	if good > n {
		return nil, fmt.Errorf("%w: good %d > n %d", ErrBadState, good, n)
	}
	t.n, t.good = int(n), int(good)
	return buf, nil
}

func (t *ewmaTracker) AppendState(buf []byte) []byte {
	updated := byte(0)
	if t.updated {
		updated = 1
	}
	buf = append(buf, updated)
	return appendFloat(buf, t.value)
}

func (t *ewmaTracker) RestoreState(buf []byte) ([]byte, error) {
	if len(buf) < 1 {
		return nil, fmt.Errorf("%w: short ewma state", ErrBadState)
	}
	updated := buf[0]
	if updated > 1 {
		return nil, fmt.Errorf("%w: ewma updated flag %d", ErrBadState, updated)
	}
	value, rest, err := readFloat(buf[1:])
	if err != nil {
		return nil, err
	}
	t.updated = updated == 1
	t.value = value
	if !t.updated {
		t.value = t.initial
	}
	return rest, nil
}

func (t *decayTracker) AppendState(buf []byte) []byte {
	buf = appendFloat(buf, t.num)
	return appendFloat(buf, t.den)
}

func (t *decayTracker) RestoreState(buf []byte) ([]byte, error) {
	num, buf, err := readFloat(buf)
	if err != nil {
		return nil, err
	}
	den, buf, err := readFloat(buf)
	if err != nil {
		return nil, err
	}
	t.num, t.den = num, den
	return buf, nil
}

func (t *windowTracker) AppendState(buf []byte) []byte {
	// Canonical form: the retained outcomes oldest-to-newest as a bitset.
	// The ring phase (head) is not state — a restored tracker lays the same
	// outcomes out from head 0 and behaves identically from then on.
	buf = binary.AppendUvarint(buf, uint64(t.n))
	var cur byte
	for i := 0; i < t.n; i++ {
		pos := i
		if t.n == t.w {
			pos = (t.head + i) % t.w
		}
		if t.buf[pos] {
			cur |= 1 << (i % 8)
		}
		if i%8 == 7 {
			buf = append(buf, cur)
			cur = 0
		}
	}
	if t.n%8 != 0 {
		buf = append(buf, cur)
	}
	return buf
}

func (t *windowTracker) RestoreState(buf []byte) ([]byte, error) {
	n, buf, err := readUvarint(buf)
	if err != nil {
		return nil, err
	}
	if n > uint64(t.w) {
		return nil, fmt.Errorf("%w: window state holds %d outcomes, window is %d", ErrBadState, n, t.w)
	}
	nBytes := (int(n) + 7) / 8
	if len(buf) < nBytes {
		return nil, fmt.Errorf("%w: short window bitset", ErrBadState)
	}
	t.buf = t.buf[:0]
	t.head, t.n, t.good = 0, 0, 0
	for i := 0; i < int(n); i++ {
		good := buf[i/8]&(1<<(i%8)) != 0
		t.buf = append(t.buf, good)
		t.n++
		if good {
			t.good++
		}
	}
	return buf[nBytes:], nil
}

// AppendState appends the accumulator's serialized state — the outcome
// counts plus the wrapped tracker's state — to buf. It reports false when
// the tracker cannot be serialized (a third-party Tracker that is not a
// StateTracker); the caller then falls back to replaying history.
func (a *Accumulator) AppendState(buf []byte) ([]byte, bool) {
	st, ok := a.tracker.(StateTracker)
	if !ok {
		return buf, false
	}
	buf = binary.AppendUvarint(buf, uint64(a.n))
	buf = binary.AppendUvarint(buf, uint64(a.good))
	return st.AppendState(buf), true
}

// RestoreState restores the accumulator from the decoded prefix of buf,
// returning the remaining bytes. The accumulator must have been minted by
// NewAccumulator from the same trust function that produced the state.
func (a *Accumulator) RestoreState(buf []byte) ([]byte, error) {
	st, ok := a.tracker.(StateTracker)
	if !ok {
		return nil, fmt.Errorf("%w: tracker for %s is not serializable", ErrBadState, a.fn.Name())
	}
	n, buf, err := readUvarint(buf)
	if err != nil {
		return nil, err
	}
	good, buf, err := readUvarint(buf)
	if err != nil {
		return nil, err
	}
	if good > n {
		return nil, fmt.Errorf("%w: good %d > n %d", ErrBadState, good, n)
	}
	buf, err = st.RestoreState(buf)
	if err != nil {
		return nil, err
	}
	a.n, a.good = int(n), int(good)
	return buf, nil
}
