package core

import (
	"errors"
	"fmt"
	"time"

	"honestplayer/internal/feedback"
)

// Alert records a change in a monitored server's assessment status.
type Alert struct {
	// Transaction is the 1-based index of the transaction that triggered
	// the re-assessment.
	Transaction int `json:"transaction"`
	// Suspicious is the new status.
	Suspicious bool `json:"suspicious"`
	// Assessment is the full assessment that raised the alert.
	Assessment Assessment `json:"assessment"`
}

// Monitor watches one server's transaction stream, re-running the
// two-phase assessment every Interval transactions and recording an Alert
// whenever the suspicious status flips. It is the continuous-deployment
// shape of the paper's mechanism: an online marketplace does not assess
// once, it re-assesses as feedback arrives.
//
// Use a tester with FamilywiseCorrection enabled for monitoring — the
// uncorrected multi test's per-suffix false positives compound over
// repeated assessment (see the ablation-correction experiment).
//
// Monitor is not safe for concurrent use.
type Monitor struct {
	assessor  *TwoPhase
	history   *feedback.History
	interval  int
	threshold float64

	sinceAssess int
	suspicious  bool
	assessed    bool
	alerts      []Alert
}

// NewMonitor creates a monitor for one server. interval is how many
// transactions pass between re-assessments (1 = every transaction);
// threshold is the acceptance threshold recorded in alerts.
func NewMonitor(assessor *TwoPhase, server feedback.EntityID, interval int, threshold float64) (*Monitor, error) {
	if assessor == nil {
		return nil, errors.New("core: nil assessor")
	}
	if interval < 1 {
		return nil, fmt.Errorf("core: monitor interval %d", interval)
	}
	if threshold < 0 || threshold > 1 {
		return nil, fmt.Errorf("core: monitor threshold %v", threshold)
	}
	return &Monitor{
		assessor:  assessor,
		history:   feedback.NewHistory(server),
		interval:  interval,
		threshold: threshold,
	}, nil
}

// History exposes the accumulated history (read-only use).
func (m *Monitor) History() *feedback.History { return m.history }

// Suspicious reports the latest assessment status (false before the first
// assessment).
func (m *Monitor) Suspicious() bool { return m.suspicious }

// Alerts returns a copy of all status-change alerts so far.
func (m *Monitor) Alerts() []Alert {
	out := make([]Alert, len(m.alerts))
	copy(out, m.alerts)
	return out
}

// Record appends one transaction outcome. When the re-assessment interval
// elapses it runs the assessor and returns the assessment (nil otherwise).
// Histories too short to behaviour-test do not raise alerts — a brand-new
// server is handled by the short-history policy at transaction time, not by
// the monitor.
func (m *Monitor) Record(client feedback.EntityID, good bool, at time.Time) (*Assessment, error) {
	if err := m.history.AppendOutcome(client, good, at); err != nil {
		return nil, err
	}
	m.sinceAssess++
	if m.sinceAssess < m.interval {
		return nil, nil
	}
	m.sinceAssess = 0
	a, err := m.assessor.Assess(m.history)
	if err != nil {
		return nil, err
	}
	if a.ShortHistory {
		return &a, nil
	}
	if !m.assessed || a.Suspicious != m.suspicious {
		m.alerts = append(m.alerts, Alert{
			Transaction: m.history.Len(),
			Suspicious:  a.Suspicious,
			Assessment:  a,
		})
	}
	m.assessed = true
	m.suspicious = a.Suspicious
	return &a, nil
}
