package trust

import (
	"math"
	"testing"
)

// stateFuncs mints every built-in trust function with non-trivial parameters.
func stateFuncs(t *testing.T) map[string]Func {
	t.Helper()
	weighted, err := NewWeighted(0.3)
	if err != nil {
		t.Fatalf("NewWeighted: %v", err)
	}
	decay, err := NewTimeDecay(0.85)
	if err != nil {
		t.Fatalf("NewTimeDecay: %v", err)
	}
	window, err := NewSlidingWindow(7)
	if err != nil {
		t.Fatalf("NewSlidingWindow: %v", err)
	}
	return map[string]Func{
		"average":  Average{},
		"weighted": weighted,
		"beta":     Beta{},
		"decay":    decay,
		"window":   window,
	}
}

// outcomes is a deterministic mixed good/bad stream long enough to wrap the
// sliding window several times.
func stateOutcomes(n int) []bool {
	out := make([]bool, n)
	x := uint64(0x9e3779b97f4a7c15)
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = x%10 < 7
	}
	return out
}

// TestAccumulatorStateRoundTrip freezes each accumulator at every prefix
// length, restores into a fresh one, and checks the restored accumulator is
// bit-identical now and stays identical as both keep consuming outcomes.
func TestAccumulatorStateRoundTrip(t *testing.T) {
	outcomes := stateOutcomes(40)
	for name, fn := range stateFuncs(t) {
		t.Run(name, func(t *testing.T) {
			orig, ok := NewAccumulator(fn)
			if !ok {
				t.Fatalf("NewAccumulator(%s): no tracker", name)
			}
			for cut := 0; cut <= len(outcomes); cut++ {
				orig.Reset()
				for _, g := range outcomes[:cut] {
					orig.Update(g)
				}
				blob, ok := orig.AppendState([]byte{0xAA}) // prefix survives
				if !ok {
					t.Fatalf("AppendState: not serializable")
				}
				restored, _ := NewAccumulator(fn)
				rest, err := restored.RestoreState(blob[1:])
				if err != nil {
					t.Fatalf("cut %d: RestoreState: %v", cut, err)
				}
				if len(rest) != 0 {
					t.Fatalf("cut %d: %d bytes left over", cut, len(rest))
				}
				compareAccumulators(t, cut, orig, restored)
				// Keep feeding both: restored state must evolve identically,
				// which exercises window ring phase and EWMA continuation.
				for i, g := range outcomes[cut:] {
					orig.Update(g)
					restored.Update(g)
					compareAccumulators(t, cut+i+1, orig, restored)
				}
			}
		})
	}
}

func compareAccumulators(t *testing.T, step int, a, b *Accumulator) {
	t.Helper()
	an, ag := a.Counts()
	bn, bg := b.Counts()
	if an != bn || ag != bg {
		t.Fatalf("step %d: counts (%d,%d) != (%d,%d)", step, an, ag, bn, bg)
	}
	av, aerr := a.Value()
	bv, berr := b.Value()
	if (aerr == nil) != (berr == nil) {
		t.Fatalf("step %d: value errors differ: %v vs %v", step, aerr, berr)
	}
	if aerr == nil && math.Float64bits(av) != math.Float64bits(bv) {
		t.Fatalf("step %d: values differ: %v vs %v", step, av, bv)
	}
}

// TestAccumulatorStateRejectsCorruption checks that truncated or inconsistent
// blobs are rejected rather than silently restored.
func TestAccumulatorStateRejectsCorruption(t *testing.T) {
	for name, fn := range stateFuncs(t) {
		t.Run(name, func(t *testing.T) {
			orig, _ := NewAccumulator(fn)
			for _, g := range stateOutcomes(20) {
				orig.Update(g)
			}
			blob, ok := orig.AppendState(nil)
			if !ok {
				t.Fatal("AppendState: not serializable")
			}
			// The empty blob must fail.
			fresh0, _ := NewAccumulator(fn)
			if _, err := fresh0.RestoreState(nil); err == nil {
				t.Fatal("empty blob accepted")
			}
			// A truncated blob must never panic; it may only succeed when the
			// truncation happens to form a complete shorter encoding.
			for cut := 0; cut < len(blob); cut++ {
				fresh, _ := NewAccumulator(fn)
				fresh.RestoreState(blob[:cut])
			}
			// good > n must be rejected.
			bad := []byte{5, 200}
			fresh, _ := NewAccumulator(fn)
			if _, err := fresh.RestoreState(bad); err == nil {
				t.Fatal("good > n accepted")
			}
		})
	}
}

// TestWindowTrackerStateCanonical pins the windowTracker's canonical form:
// a wrapped ring and its restored head-0 layout must keep producing the same
// values — the ring phase is not observable state.
func TestWindowTrackerStateCanonical(t *testing.T) {
	fn, err := NewSlidingWindow(4)
	if err != nil {
		t.Fatal(err)
	}
	tr := fn.NewTracker().(*windowTracker)
	for _, g := range []bool{true, false, true, true, false, true, false} {
		tr.Update(g)
	}
	if tr.head == 0 {
		t.Fatal("test needs a wrapped ring")
	}
	blob := tr.AppendState(nil)
	restored := fn.NewTracker().(*windowTracker)
	if _, err := restored.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	if restored.head != 0 {
		t.Fatalf("restored head %d, want canonical 0", restored.head)
	}
	for i := 0; i < 10; i++ {
		g := i%3 == 0
		tr.Update(g)
		restored.Update(g)
		if math.Float64bits(tr.Value()) != math.Float64bits(restored.Value()) {
			t.Fatalf("step %d: %v != %v", i, tr.Value(), restored.Value())
		}
	}
}
