package behavior_test

// Differential tests for the incremental assessment engine: for every
// history and every supported tester, the accumulator must agree with the
// batch tester bit for bit — Honest, per-suffix p̂, distances, thresholds,
// and the ErrInsufficientHistory message — at every prefix length.

import (
	"reflect"
	"testing"
	"time"

	"honestplayer/internal/attack"
	"honestplayer/internal/behavior"
	"honestplayer/internal/feedback"
	"honestplayer/internal/stats"
)

// fastCalibrator keeps Monte-Carlo cost low; determinism, not accuracy, is
// what the differential tests need.
func fastCalibrator(seed uint64) *stats.Calibrator {
	return stats.NewCalibrator(stats.CalibrationConfig{Replicates: 120, Seed: seed}, 0)
}

// diffTesters builds every tester the accumulator supports, for one config.
func diffTesters(t *testing.T, cfg behavior.Config) map[string]behavior.Tester {
	t.Helper()
	single, err := behavior.NewSingle(cfg)
	if err != nil {
		t.Fatalf("NewSingle: %v", err)
	}
	multi, err := behavior.NewMulti(cfg)
	if err != nil {
		t.Fatalf("NewMulti: %v", err)
	}
	naive, err := behavior.NewMultiNaive(cfg)
	if err != nil {
		t.Fatalf("NewMultiNaive: %v", err)
	}
	coll, err := behavior.NewCollusion(cfg)
	if err != nil {
		t.Fatalf("NewCollusion: %v", err)
	}
	collMulti, err := behavior.NewCollusionMulti(cfg)
	if err != nil {
		t.Fatalf("NewCollusionMulti: %v", err)
	}
	return map[string]behavior.Tester{
		"single":          single,
		"multi":           multi,
		"multi-naive":     naive,
		"collusion":       coll,
		"collusion-multi": collMulti,
	}
}

// requireSameOutcome asserts the incremental and batch outcomes are
// identical, including error messages.
func requireSameOutcome(t *testing.T, label string, n int, gotV behavior.Verdict, gotErr error, wantV behavior.Verdict, wantErr error) {
	t.Helper()
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("%s at n=%d: error mismatch: incremental=%v batch=%v", label, n, gotErr, wantErr)
	}
	if gotErr != nil {
		if gotErr.Error() != wantErr.Error() {
			t.Fatalf("%s at n=%d: error text mismatch:\nincremental: %v\nbatch:       %v", label, n, gotErr, wantErr)
		}
		return
	}
	if !reflect.DeepEqual(gotV, wantV) {
		t.Fatalf("%s at n=%d: verdict mismatch:\nincremental: %+v\nbatch:       %+v", label, n, gotV, wantV)
	}
}

// diffHistories generates the adversarial and honest feedback patterns the
// differential suite sweeps.
func diffHistories(t *testing.T) map[string]*feedback.History {
	t.Helper()
	out := make(map[string]*feedback.History)
	add := func(name string, h *feedback.History, err error) {
		if err != nil {
			t.Fatalf("generating %s: %v", name, err)
		}
		out[name] = h
	}
	h, err := attack.GenHonest("srv-honest", 150, 0.9, 7, stats.NewRNG(11))
	add("honest-p0.9", h, err)
	h, err = attack.GenHonest("srv-coin", 140, 0.5, 3, stats.NewRNG(12))
	add("honest-p0.5", h, err)
	h, err = attack.GenPeriodic("srv-periodic", 160, 20, 0.5, stats.NewRNG(13))
	add("periodic", h, err)
	h, err = attack.GenHibernating("srv-hibernate", 110, 0.95, 30, stats.NewRNG(14))
	add("hibernating", h, err)
	h, err = attack.GenCheatAndRun("srv-cheat", 90, stats.NewRNG(15))
	add("cheat-and-run", h, err)
	h, err = attack.PrepareByColluders("srv-colluded", 120, 0.9,
		[]feedback.EntityID{"colluder-a", "colluder-b", "colluder-c"}, stats.NewRNG(16))
	add("colluders", h, err)
	return out
}

// TestAccumulatorMatchesBatchEveryPrefix feeds each history record by record
// and checks the accumulator against every batch tester at every prefix
// length, across configurations that exercise non-default window sizes,
// strides spanning multiple windows, and the familywise correction.
func TestAccumulatorMatchesBatchEveryPrefix(t *testing.T) {
	configs := map[string]behavior.Config{
		"defaults":    {Calibrator: fastCalibrator(1)},
		"small":       {WindowSize: 5, MinWindows: 2, Stride: 5, Calibrator: fastCalibrator(2)},
		"wide-stride": {WindowSize: 4, MinWindows: 3, Stride: 12, Calibrator: fastCalibrator(3), FamilywiseCorrection: true},
	}
	histories := diffHistories(t)
	for cfgName, cfg := range configs {
		cfg := cfg
		t.Run(cfgName, func(t *testing.T) {
			t.Parallel()
			testers := diffTesters(t, cfg)
			for histName, full := range histories {
				for testerName, tester := range testers {
					acc, ok := behavior.NewAccumulatorFor(tester)
					if !ok {
						t.Fatalf("%s: no accumulator", testerName)
					}
					if acc.Name() != tester.Name() {
						t.Fatalf("accumulator name %q != tester name %q", acc.Name(), tester.Name())
					}
					label := histName + "/" + testerName
					prefix := feedback.NewHistory(full.Server())
					for i := 0; i < full.Len(); i++ {
						rec := full.At(i)
						acc.Append(rec)
						if err := prefix.Append(rec); err != nil {
							t.Fatalf("%s: append: %v", label, err)
						}
						gotV, gotErr := acc.Test()
						wantV, wantErr := tester.Test(prefix)
						requireSameOutcome(t, label, i+1, gotV, gotErr, wantV, wantErr)
					}
					if acc.Len() != full.Len() || acc.GoodCount() != full.GoodCount() {
						t.Fatalf("%s: accumulator counts (%d, %d) != history (%d, %d)",
							label, acc.Len(), acc.GoodCount(), full.Len(), full.GoodCount())
					}
				}
			}
		})
	}
}

// TestAccumulatorMatchesBatchLongHistory spot-checks a longer stream so the
// checkpoint table grows past a handful of stride anchors.
func TestAccumulatorMatchesBatchLongHistory(t *testing.T) {
	if testing.Short() {
		t.Skip("long differential sweep")
	}
	cfg := behavior.Config{Calibrator: fastCalibrator(7), FamilywiseCorrection: true}
	full, err := attack.GenHonest("srv-long", 1200, 0.85, 12, stats.NewRNG(21))
	if err != nil {
		t.Fatalf("GenHonest: %v", err)
	}
	for testerName, tester := range diffTesters(t, cfg) {
		acc, _ := behavior.NewAccumulatorFor(tester)
		prefix := feedback.NewHistory(full.Server())
		for i := 0; i < full.Len(); i++ {
			rec := full.At(i)
			acc.Append(rec)
			if err := prefix.Append(rec); err != nil {
				t.Fatalf("append: %v", err)
			}
			if (i+1)%97 != 0 && i+1 != full.Len() {
				continue
			}
			gotV, gotErr := acc.Test()
			wantV, wantErr := tester.Test(prefix)
			requireSameOutcome(t, "long/"+testerName, i+1, gotV, gotErr, wantV, wantErr)
		}
	}
}

// FuzzIncrementalDifferential fuzzes outcome bit-streams, issuer choices and
// tester geometry, asserting the accumulator is identical to the batch Multi
// and CollusionMulti testers at a mid point and at the end of the stream.
func FuzzIncrementalDifferential(f *testing.F) {
	f.Add([]byte{0xff, 0x0f, 0xa5, 0x00, 0x3c}, uint8(10), uint8(1), uint8(4), false)
	f.Add([]byte{0x00, 0x00, 0xff, 0xff, 0x81, 0x42}, uint8(5), uint8(2), uint8(2), true)
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef}, uint8(3), uint8(3), uint8(1), false)
	cal := fastCalibrator(42)
	f.Fuzz(func(t *testing.T, data []byte, mSel, strideSel, minSel uint8, fam bool) {
		if len(data) == 0 {
			return
		}
		if len(data) > 64 {
			data = data[:64]
		}
		m := 1 + int(mSel)%12
		cfg := behavior.Config{
			WindowSize:           m,
			MinWindows:           1 + int(minSel)%5,
			Stride:               m * (1 + int(strideSel)%4),
			Calibrator:           cal,
			FamilywiseCorrection: fam,
		}
		multi, err := behavior.NewMulti(cfg)
		if err != nil {
			t.Fatalf("NewMulti: %v", err)
		}
		collMulti, err := behavior.NewCollusionMulti(cfg)
		if err != nil {
			t.Fatalf("NewCollusionMulti: %v", err)
		}
		testers := []behavior.Tester{multi, collMulti}
		accs := make([]*behavior.Accumulator, len(testers))
		for i, tester := range testers {
			acc, ok := behavior.NewAccumulatorFor(tester)
			if !ok {
				t.Fatalf("no accumulator for %s", tester.Name())
			}
			accs[i] = acc
		}
		clients := []feedback.EntityID{"c0", "c1", "c2", "c3", "c4"}
		h := feedback.NewHistory("srv-fuzz")
		n := len(data) * 8
		for i := 0; i < n; i++ {
			good := data[i/8]&(1<<(i%8)) != 0
			// Issuer selection reuses the byte so collusion grouping varies
			// with the fuzzed input, not just the outcome bits.
			client := clients[(int(data[i/8])+i)%len(clients)]
			rec := feedback.Feedback{
				Time:   time.Unix(int64(i)+1, 0),
				Server: h.Server(),
				Client: client,
				Rating: feedback.Negative,
			}
			if good {
				rec.Rating = feedback.Positive
			}
			if err := h.Append(rec); err != nil {
				t.Fatalf("append: %v", err)
			}
			for _, acc := range accs {
				acc.Append(rec)
			}
			if i+1 != n/2 && i+1 != n {
				continue
			}
			for j, tester := range testers {
				gotV, gotErr := accs[j].Test()
				wantV, wantErr := tester.Test(h)
				requireSameOutcome(t, tester.Name(), i+1, gotV, gotErr, wantV, wantErr)
			}
		}
	})
}

// TestAccumulatorTinyArenaCap runs the differential sweep with the PMF arena
// capped near its floor, so the table saturates and rotates generations many
// times within one history. Rotation is result-neutral by construction (the
// PMF is a pure function of its key); this pins that down against the batch
// tester bit for bit, and checks the cap validation and defaulting on the
// way.
func TestAccumulatorTinyArenaCap(t *testing.T) {
	if _, err := behavior.NewMulti(behavior.Config{ArenaCap: -1, Calibrator: fastCalibrator(30)}); err == nil {
		t.Fatal("negative ArenaCap must be rejected")
	}
	def, err := behavior.NewMulti(behavior.Config{Calibrator: fastCalibrator(30)})
	if err != nil {
		t.Fatal(err)
	}
	if got := def.Config().ArenaCap; got != behavior.DefaultArenaCap {
		t.Fatalf("defaulted ArenaCap = %d, want %d", got, behavior.DefaultArenaCap)
	}

	cfg := behavior.Config{ArenaCap: 16, Calibrator: fastCalibrator(31), FamilywiseCorrection: true}
	full, err := attack.GenHonest("srv-tiny-arena", 400, 0.82, 9, stats.NewRNG(32))
	if err != nil {
		t.Fatalf("GenHonest: %v", err)
	}
	for _, testerName := range []string{"single", "multi", "multi-naive"} {
		tester := diffTesters(t, cfg)[testerName]
		acc, ok := behavior.NewAccumulatorFor(tester)
		if !ok {
			t.Fatalf("%s: no accumulator", testerName)
		}
		prefix := feedback.NewHistory(full.Server())
		for i := 0; i < full.Len(); i++ {
			rec := full.At(i)
			acc.Append(rec)
			if err := prefix.Append(rec); err != nil {
				t.Fatalf("append: %v", err)
			}
			if (i+1)%13 != 0 && i+1 != full.Len() {
				continue
			}
			gotV, gotErr := acc.Test()
			wantV, wantErr := tester.Test(prefix)
			requireSameOutcome(t, "tiny-arena/"+testerName, i+1, gotV, gotErr, wantV, wantErr)
		}
	}
}
