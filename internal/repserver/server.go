// Package repserver implements the central reputation server the paper
// assumes for online-auction-style communities (§2): it collects feedback,
// serves transaction histories, and runs two-phase trust assessment on
// behalf of clients.
//
// The server speaks the wire protocol over TCP, one goroutine per
// connection, with a managed lifecycle: Serve runs until Close, which stops
// the listener, closes active connections, and waits for all handlers to
// exit.
package repserver

import (
	"bufio"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"

	"honestplayer/internal/assesscache"
	"honestplayer/internal/core"
	"honestplayer/internal/feedback"
	"honestplayer/internal/store"
	"honestplayer/internal/wire"
)

// Recorder is the write path for incoming feedback. The default writes to
// the in-memory store; deployments wanting durability pass a
// ledger.PersistentStore (whose Store() must also back Config.Store so
// reads see the writes).
type Recorder interface {
	// Add stores one record, reporting whether it was new.
	Add(feedback.Feedback) (bool, error)
}

// Config parameterises a Server.
type Config struct {
	// Assessor runs two-phase assessment for TypeAssess requests.
	Assessor *core.TwoPhase
	// Store holds the feedback records; nil means a fresh empty store.
	Store *store.Store
	// Recorder handles feedback writes; nil means writing to Store.
	Recorder Recorder
	// Logger receives connection-level errors; nil disables logging.
	Logger *log.Logger
	// MaxHistoryChunk caps records per history response; zero means 10000.
	MaxHistoryChunk int
	// AssessCacheSize bounds the assessment cache in entries; zero disables
	// caching (every TypeAssess recomputes, the seed behaviour).
	AssessCacheSize int
}

// Stats exposes server counters.
type Stats struct {
	Connections uint64 `json:"connections"`
	Requests    uint64 `json:"requests"`
	Errors      uint64 `json:"errors"`
	// Cache carries the assessment-cache counters; all-zero when caching
	// is disabled.
	Cache assesscache.Stats `json:"cache"`
}

// Server is a TCP reputation server.
type Server struct {
	cfg      Config
	listener net.Listener
	cache    *assesscache.Cache // nil when AssessCacheSize is zero

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup

	nConns    atomic.Uint64
	nRequests atomic.Uint64
	nErrors   atomic.Uint64
}

// New creates a server listening on addr (e.g. "127.0.0.1:0").
func New(addr string, cfg Config) (*Server, error) {
	if cfg.Assessor == nil {
		return nil, errors.New("repserver: nil assessor")
	}
	if cfg.Store == nil {
		cfg.Store = store.New()
	}
	if cfg.Recorder == nil {
		cfg.Recorder = cfg.Store
	}
	if cfg.MaxHistoryChunk == 0 {
		cfg.MaxHistoryChunk = 10000
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("repserver: listen %s: %w", addr, err)
	}
	srv := &Server{
		cfg:      cfg,
		listener: ln,
		conns:    make(map[net.Conn]struct{}),
	}
	if cfg.AssessCacheSize > 0 {
		srv.cache = assesscache.New(cfg.AssessCacheSize)
	}
	return srv, nil
}

// Addr returns the bound listener address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Store returns the backing feedback store.
func (s *Server) Store() *store.Store { return s.cfg.Store }

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Connections: s.nConns.Load(),
		Requests:    s.nRequests.Load(),
		Errors:      s.nErrors.Load(),
	}
	if s.cache != nil {
		st.Cache = s.cache.Stats()
	}
	return st
}

// Serve accepts connections until Close is called. It returns nil after a
// clean shutdown.
func (s *Server) Serve() error {
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("repserver: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.nConns.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Start runs Serve on a background goroutine and returns immediately.
func (s *Server) Start() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		if err := s.Serve(); err != nil {
			s.logf("serve: %v", err)
		}
	}()
}

// Close stops the listener, closes every active connection, and waits for
// all handlers to finish. It is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	err := s.listener.Close()
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	reader := bufio.NewReader(conn)
	for {
		env, err := wire.Read(reader)
		if err != nil {
			// EOF and closed connections are normal terminations; protocol
			// violations get a best-effort error frame.
			if errors.Is(err, wire.ErrBadMessage) || errors.Is(err, wire.ErrBadVersion) ||
				errors.Is(err, wire.ErrFrameTooLarge) {
				s.nErrors.Add(1)
				_ = s.writeError(conn, env.ID, "bad_request", err.Error())
			}
			return
		}
		s.nRequests.Add(1)
		if err := s.dispatch(conn, env); err != nil {
			s.nErrors.Add(1)
			s.logf("conn %s: %v", conn.RemoteAddr(), err)
			return
		}
	}
}

func (s *Server) dispatch(conn net.Conn, env wire.Envelope) error {
	switch env.Type {
	case wire.TypePing:
		return s.reply(conn, wire.TypePong, env.ID, nil)
	case wire.TypeSubmit:
		var req wire.SubmitRequest
		if err := wire.DecodePayload(env, &req); err != nil {
			return s.writeError(conn, env.ID, "bad_request", err.Error())
		}
		stored, err := s.cfg.Recorder.Add(req.Feedback)
		if err != nil {
			return s.writeError(conn, env.ID, "invalid_feedback", err.Error())
		}
		return s.reply(conn, wire.TypeSubmitR, env.ID, wire.SubmitResponse{Stored: stored})
	case wire.TypeBatch:
		var req wire.BatchRequest
		if err := wire.DecodePayload(env, &req); err != nil {
			return s.writeError(conn, env.ID, "bad_request", err.Error())
		}
		var resp wire.BatchResponse
		for i, rec := range req.Records {
			stored, err := s.cfg.Recorder.Add(rec)
			if err != nil {
				// A bad record must not abort the batch: earlier records are
				// already stored, so report it per record and keep going.
				resp.Rejected = append(resp.Rejected, wire.BatchReject{Index: i, Reason: err.Error()})
				continue
			}
			if stored {
				resp.Stored++
			} else {
				resp.Duplicates++
			}
		}
		return s.reply(conn, wire.TypeBatchR, env.ID, resp)
	case wire.TypeHistory:
		var req wire.HistoryRequest
		if err := wire.DecodePayload(env, &req); err != nil {
			return s.writeError(conn, env.ID, "bad_request", err.Error())
		}
		if req.Server == "" {
			return s.writeError(conn, env.ID, "bad_request", "missing server")
		}
		recs := s.cfg.Store.Records(req.Server)
		total := len(recs)
		limit := req.Limit
		if limit <= 0 || limit > s.cfg.MaxHistoryChunk {
			limit = s.cfg.MaxHistoryChunk
		}
		if len(recs) > limit {
			recs = recs[len(recs)-limit:]
		}
		return s.reply(conn, wire.TypeHistoryR, env.ID, wire.HistoryResponse{Records: recs, Total: total})
	case wire.TypeAssess:
		var req wire.AssessRequest
		if err := wire.DecodePayload(env, &req); err != nil {
			return s.writeError(conn, env.ID, "bad_request", err.Error())
		}
		resp, code, msg := s.assess(req)
		if code != "" {
			return s.writeError(conn, env.ID, code, msg)
		}
		return s.reply(conn, wire.TypeAssessR, env.ID, resp)
	default:
		return s.writeError(conn, env.ID, "unknown_type", string(env.Type))
	}
}

// assess serves one TypeAssess request: history snapshot, cache probe,
// two-phase assessment on miss. A non-empty code reports a request error.
//
// The cache key carries the store's per-server version, read atomically
// with the history snapshot. Any accepted write bumps the version, so a
// stale cached assessment can never be served: its version no longer
// matches and the lookup falls through to recomputation.
func (s *Server) assess(req wire.AssessRequest) (resp wire.AssessResponse, code, msg string) {
	if req.Server == "" {
		return resp, "bad_request", "missing server"
	}
	h, version := s.cfg.Store.Snapshot(req.Server)
	if h.Len() == 0 {
		return resp, "unknown_server", fmt.Sprintf("no records for %q", req.Server)
	}
	if s.cache != nil {
		if res, ok := s.cache.Get(req.Server, version, req.Threshold); ok {
			return wire.AssessResponse{Assessment: res.Assessment, Accept: res.Accept, Cached: true}, "", ""
		}
	}
	accept, a, err := s.cfg.Assessor.Accept(h, req.Threshold)
	if err != nil {
		return resp, "assessment_failed", err.Error()
	}
	if s.cache != nil {
		s.cache.Put(req.Server, version, req.Threshold, assesscache.Result{Assessment: a, Accept: accept})
	}
	return wire.AssessResponse{Assessment: a, Accept: accept}, "", ""
}

func (s *Server) reply(conn net.Conn, t wire.MsgType, id uint64, payload any) error {
	env, err := wire.Encode(t, id, payload)
	if err != nil {
		return err
	}
	return wire.Write(conn, env)
}

func (s *Server) writeError(conn net.Conn, id uint64, code, msg string) error {
	env, err := wire.Encode(wire.TypeError, id, wire.ErrorResponse{Code: code, Message: msg})
	if err != nil {
		return err
	}
	return wire.Write(conn, env)
}

// Seed loads records into the store directly (bypassing the network), for
// bootstrapping servers from a ledger file.
func (s *Server) Seed(recs []feedback.Feedback) (int, error) {
	return s.cfg.Store.AddAll(recs)
}
