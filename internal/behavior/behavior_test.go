package behavior

import (
	"errors"
	"testing"
	"time"

	"honestplayer/internal/feedback"
	"honestplayer/internal/stats"
)

// testConfig returns a Config with a fast shared calibrator.
func testConfig() Config {
	return Config{
		Calibrator: stats.NewCalibrator(stats.CalibrationConfig{Seed: 1, Replicates: 300}, 0),
	}
}

// honestHistory builds a history of n transactions from an honest player
// with trustworthiness p.
func honestHistory(t *testing.T, rng *stats.RNG, n int, p float64) *feedback.History {
	t.Helper()
	h := feedback.NewHistory("s")
	for i := 0; i < n; i++ {
		if err := h.AppendOutcome("c", rng.Bernoulli(p), time.Unix(int64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

// periodicHistory builds a history where every block of blockLen
// transactions ends with exactly badPerBlock consecutive bad transactions.
func periodicHistory(t *testing.T, n, blockLen, badPerBlock int) *feedback.History {
	t.Helper()
	h := feedback.NewHistory("s")
	for i := 0; i < n; i++ {
		good := i%blockLen < blockLen-badPerBlock
		if err := h.AppendOutcome("c", good, time.Unix(int64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func TestConfigDefaults(t *testing.T) {
	cfg, err := Config{}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.WindowSize != DefaultWindowSize || cfg.MinWindows != DefaultMinWindows {
		t.Fatalf("defaults = %+v", cfg)
	}
	if cfg.Stride != cfg.WindowSize {
		t.Fatalf("default stride = %d", cfg.Stride)
	}
	if cfg.Calibrator == nil {
		t.Fatal("default calibrator nil")
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{"negative window", Config{WindowSize: -1}},
		{"negative minwindows", Config{MinWindows: -2}},
		{"stride not multiple", Config{WindowSize: 10, Stride: 15}},
		{"negative stride", Config{WindowSize: 10, Stride: -10}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewSingle(tt.cfg); !errors.Is(err, ErrBadConfig) {
				t.Errorf("NewSingle(%+v) = %v", tt.cfg, err)
			}
			if _, err := NewMulti(tt.cfg); !errors.Is(err, ErrBadConfig) {
				t.Errorf("NewMulti(%+v) = %v", tt.cfg, err)
			}
		})
	}
}

func TestSingleInsufficientHistory(t *testing.T) {
	s, err := NewSingle(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := honestHistory(t, stats.NewRNG(1), 30, 0.9) // 3 windows < MinWindows 4
	if _, err := s.Test(h); !errors.Is(err, ErrInsufficientHistory) {
		t.Fatalf("Test on 30 txns = %v", err)
	}
}

func TestSingleHonestPasses(t *testing.T) {
	s, err := NewSingle(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(42)
	pass := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		h := honestHistory(t, rng, 500, 0.9)
		v, err := s.Test(h)
		if err != nil {
			t.Fatal(err)
		}
		if v.Honest {
			pass++
		}
	}
	// Calibrated at 95% confidence: expect ~95 passes, allow slack.
	if pass < 85 {
		t.Fatalf("honest players passed only %d/%d single tests", pass, trials)
	}
}

func TestSingleDetectsPeriodicAttacker(t *testing.T) {
	s, err := NewSingle(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Every window of 10 has exactly one bad transaction: a point mass at
	// 9 good, far from B(10, 0.9).
	h := periodicHistory(t, 500, 10, 1)
	v, err := s.Test(h)
	if err != nil {
		t.Fatal(err)
	}
	if v.Honest {
		t.Fatalf("deterministic periodic attacker passed: %+v", v.Worst())
	}
}

func TestSingleVerdictFields(t *testing.T) {
	s, err := NewSingle(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := honestHistory(t, stats.NewRNG(7), 205, 0.9)
	v, err := s.Test(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Suffixes) != 1 {
		t.Fatalf("single test suffixes = %d", len(v.Suffixes))
	}
	r := v.Suffixes[0]
	if r.Windows != 20 || r.Transactions != 200 {
		t.Fatalf("windows=%d transactions=%d", r.Windows, r.Transactions)
	}
	if r.PHat <= 0.5 || r.PHat > 1 {
		t.Fatalf("pHat = %v", r.PHat)
	}
	if r.Threshold <= 0 {
		t.Fatalf("threshold = %v", r.Threshold)
	}
	if v.Honest != r.Pass {
		t.Fatal("verdict disagrees with its only suffix")
	}
}

func TestSingleAllGoodHistory(t *testing.T) {
	// pHat = 1: degenerate binomial, distance 0, must pass.
	s, err := NewSingle(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := feedback.NewHistory("s")
	for i := 0; i < 100; i++ {
		if err := h.AppendOutcome("c", true, time.Unix(int64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	v, err := s.Test(h)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Honest {
		t.Fatalf("all-good history flagged: %+v", v.Worst())
	}
}

func TestMultiMatchesNaive(t *testing.T) {
	cfg := testConfig()
	opt, err := NewMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NewMultiNaive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(17)
	for trial := 0; trial < 25; trial++ {
		n := 40 + rng.Intn(400)
		p := 0.5 + rng.Float64()/2
		h := honestHistory(t, rng, n, p)
		// Mix in attack bursts half the time so both outcomes occur.
		if trial%2 == 0 {
			for i := 0; i < 15; i++ {
				_ = h.AppendOutcome("c", false, time.Unix(int64(n+i), 0))
			}
		}
		vo, err := opt.Test(h)
		if err != nil {
			t.Fatal(err)
		}
		vn, err := naive.Test(h)
		if err != nil {
			t.Fatal(err)
		}
		if vo.Honest != vn.Honest {
			t.Fatalf("trial %d: optimised=%v naive=%v", trial, vo.Honest, vn.Honest)
		}
		if len(vo.Suffixes) != len(vn.Suffixes) {
			t.Fatalf("trial %d: suffix counts %d vs %d", trial, len(vo.Suffixes), len(vn.Suffixes))
		}
		for i := range vo.Suffixes {
			a, b := vo.Suffixes[i], vn.Suffixes[i]
			if a.Windows != b.Windows || a.PHat != b.PHat ||
				a.Distance != b.Distance || a.Threshold != b.Threshold || a.Pass != b.Pass {
				t.Fatalf("trial %d suffix %d: %+v vs %+v", trial, i, a, b)
			}
		}
	}
}

func TestMultiDetectsHibernatingAttack(t *testing.T) {
	// Long clean prep followed by a burst of bad transactions: the short
	// suffixes see a high bad fraction even though the full history looks
	// fine.
	cfg := testConfig()
	multi, err := NewMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	single, err := NewSingle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(23)
	h := honestHistory(t, rng, 2000, 0.95)
	for i := 0; i < 12; i++ {
		_ = h.AppendOutcome("c", false, time.Unix(int64(2000+i), 0))
	}
	vm, err := multi.Test(h)
	if err != nil {
		t.Fatal(err)
	}
	if vm.Honest {
		t.Fatal("multi-testing missed the hibernating burst")
	}
	// Context: the single test over the whole 2012-transaction history is
	// much less sensitive to the burst; it may or may not fail, but the
	// multi tester must fail via a short suffix. Check the failing suffix
	// is indeed short.
	worst := vm.Worst()
	if worst.Pass {
		t.Fatal("worst suffix passed despite dishonest verdict")
	}
	if worst.Transactions > 500 {
		t.Errorf("failure detected only at suffix length %d; expected a short suffix", worst.Transactions)
	}
	_ = single // single-test behaviour is covered separately
}

func TestMultiHonestPasses(t *testing.T) {
	multi, err := NewMulti(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(29)
	pass := 0
	const trials = 40
	for i := 0; i < trials; i++ {
		h := honestHistory(t, rng, 400, 0.9)
		v, err := multi.Test(h)
		if err != nil {
			t.Fatal(err)
		}
		if v.Honest {
			pass++
		}
	}
	// Multi-testing applies many tests, so the per-server false-positive
	// rate is above 5%; with ~37 suffixes a majority must still pass.
	if pass < trials/2 {
		t.Fatalf("honest players passed only %d/%d multi tests", pass, trials)
	}
}

func TestMultiSuffixOrdering(t *testing.T) {
	multi, err := NewMulti(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := honestHistory(t, stats.NewRNG(31), 100, 0.9)
	v, err := multi.Test(h)
	if err != nil {
		t.Fatal(err)
	}
	// 10 windows, MinWindows 4, stride 1 window: suffixes 10,9,...,4 = 7.
	if len(v.Suffixes) != 7 {
		t.Fatalf("suffixes = %d, want 7", len(v.Suffixes))
	}
	for i := 1; i < len(v.Suffixes); i++ {
		if v.Suffixes[i-1].Windows <= v.Suffixes[i].Windows {
			t.Fatalf("suffixes not longest-first: %v then %v",
				v.Suffixes[i-1].Windows, v.Suffixes[i].Windows)
		}
	}
}

func TestMultiInsufficientHistory(t *testing.T) {
	multi, err := NewMulti(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NewMultiNaive(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := honestHistory(t, stats.NewRNG(1), 35, 0.9)
	if _, err := multi.Test(h); !errors.Is(err, ErrInsufficientHistory) {
		t.Errorf("multi = %v", err)
	}
	if _, err := naive.Test(h); !errors.Is(err, ErrInsufficientHistory) {
		t.Errorf("naive = %v", err)
	}
}

func TestVerdictWorst(t *testing.T) {
	v := Verdict{Suffixes: []SuffixResult{
		{Windows: 10, Distance: 0.3, Threshold: 0.4},
		{Windows: 5, Distance: 0.9, Threshold: 0.4},
		{Windows: 4, Distance: 0.5, Threshold: 0.4},
	}}
	if got := v.Worst(); got.Windows != 5 {
		t.Fatalf("Worst = %+v", got)
	}
	if got := (Verdict{}).Worst(); got.Windows != 0 {
		t.Fatalf("Worst of empty = %+v", got)
	}
}

func TestTesterNames(t *testing.T) {
	cfg := testConfig()
	s, _ := NewSingle(cfg)
	m, _ := NewMulti(cfg)
	n, _ := NewMultiNaive(cfg)
	c, _ := NewCollusion(cfg)
	cm, _ := NewCollusionMulti(cfg)
	for _, tc := range []struct {
		tester Tester
		want   string
	}{
		{s, "single"}, {m, "multi"}, {n, "multi-naive"},
		{c, "collusion"}, {cm, "collusion-multi"},
	} {
		if got := tc.tester.Name(); got != tc.want {
			t.Errorf("Name = %q, want %q", got, tc.want)
		}
	}
}

func TestMultiStrideMultipleWindows(t *testing.T) {
	cfg := testConfig()
	cfg.Stride = 20 // 2 windows per stride
	multi, err := NewMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NewMultiNaive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := honestHistory(t, stats.NewRNG(37), 200, 0.9)
	vo, err := multi.Test(h)
	if err != nil {
		t.Fatal(err)
	}
	vn, err := naive.Test(h)
	if err != nil {
		t.Fatal(err)
	}
	// 20 windows, stride 2: suffixes 20,18,...,4 = 9.
	if len(vo.Suffixes) != 9 {
		t.Fatalf("suffixes = %d, want 9", len(vo.Suffixes))
	}
	if len(vn.Suffixes) != len(vo.Suffixes) {
		t.Fatalf("naive suffixes = %d", len(vn.Suffixes))
	}
	for i := range vo.Suffixes {
		if vo.Suffixes[i] != vn.Suffixes[i] {
			t.Fatalf("suffix %d: %+v vs %+v", i, vo.Suffixes[i], vn.Suffixes[i])
		}
	}
}
