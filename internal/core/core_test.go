package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"honestplayer/internal/behavior"
	"honestplayer/internal/feedback"
	"honestplayer/internal/stats"
	"honestplayer/internal/trust"
)

func testTester(t *testing.T) behavior.Tester {
	t.Helper()
	s, err := behavior.NewSingle(behavior.Config{
		Calibrator: stats.NewCalibrator(stats.CalibrationConfig{Seed: 1, Replicates: 300}, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func honest(t *testing.T, n int, p float64, seed uint64) *feedback.History {
	t.Helper()
	rng := stats.NewRNG(seed)
	h := feedback.NewHistory("s")
	for i := 0; i < n; i++ {
		if err := h.AppendOutcome("c", rng.Bernoulli(p), time.Unix(int64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func periodic(t *testing.T, n int) *feedback.History {
	t.Helper()
	h := feedback.NewHistory("s")
	for i := 0; i < n; i++ {
		if err := h.AppendOutcome("c", i%10 != 9, time.Unix(int64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func TestNewTwoPhaseValidation(t *testing.T) {
	if _, err := NewTwoPhase(nil, nil); err == nil {
		t.Fatal("nil trust function must fail")
	}
	if _, err := NewTwoPhase(nil, trust.Average{}, WithShortHistoryPolicy(99)); err == nil {
		t.Fatal("invalid policy must fail")
	}
}

func TestTwoPhaseHonestServer(t *testing.T) {
	tp, err := NewTwoPhase(testTester(t), trust.Average{})
	if err != nil {
		t.Fatal(err)
	}
	h := honest(t, 500, 0.9, 7)
	a, err := tp.Assess(h)
	if err != nil {
		t.Fatal(err)
	}
	if a.Suspicious {
		t.Fatalf("honest server flagged: %+v", a.Verdict.Worst())
	}
	if a.Trust != h.GoodRatio() {
		t.Fatalf("trust = %v, want %v", a.Trust, h.GoodRatio())
	}
	if a.Server != "s" || a.Tester != "single" || a.TrustFunc != "average" {
		t.Fatalf("metadata: %+v", a)
	}
}

func TestTwoPhaseFlagsAttacker(t *testing.T) {
	tp, err := NewTwoPhase(testTester(t), trust.Average{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := tp.Assess(periodic(t, 500))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Suspicious {
		t.Fatal("deterministic periodic attacker not flagged")
	}
	if a.Trust != 0 {
		t.Fatalf("suspicious server got trust %v", a.Trust)
	}
	// Phase 2 never ran, but the baseline would have accepted it: the
	// attacker's ratio 0.9 meets the usual threshold.
	baseline, err := NewTwoPhase(nil, trust.Average{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := baseline.Assess(periodic(t, 500))
	if err != nil {
		t.Fatal(err)
	}
	if b.Suspicious || b.Trust < 0.9 {
		t.Fatalf("baseline assessment = %+v", b)
	}
}

func TestTwoPhaseShortHistoryReject(t *testing.T) {
	tp, err := NewTwoPhase(testTester(t), trust.Average{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := tp.Assess(honest(t, 20, 0.9, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !a.ShortHistory || !a.Suspicious {
		t.Fatalf("short history under RejectShort: %+v", a)
	}
}

func TestTwoPhaseShortHistoryAllow(t *testing.T) {
	tp, err := NewTwoPhase(testTester(t), trust.Average{}, WithShortHistoryPolicy(AllowShort))
	if err != nil {
		t.Fatal(err)
	}
	h := honest(t, 20, 0.9, 1)
	a, err := tp.Assess(h)
	if err != nil {
		t.Fatal(err)
	}
	if !a.ShortHistory || a.Suspicious {
		t.Fatalf("short history under AllowShort: %+v", a)
	}
	if a.Trust != h.GoodRatio() {
		t.Fatalf("trust = %v", a.Trust)
	}
}

func TestTwoPhaseEmptyHistoryError(t *testing.T) {
	tp, err := NewTwoPhase(nil, trust.Average{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tp.Assess(feedback.NewHistory("s")); !errors.Is(err, trust.ErrEmptyHistory) {
		t.Fatalf("empty history = %v", err)
	}
}

func TestTwoPhaseAccept(t *testing.T) {
	tp, err := NewTwoPhase(testTester(t), trust.Average{})
	if err != nil {
		t.Fatal(err)
	}
	h := honest(t, 500, 0.95, 11)
	ok, a, err := tp.Accept(h, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("honest 95%% server rejected at threshold 0.9: %+v", a)
	}
	ok, _, err = tp.Accept(h, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("accepted above its own trust value")
	}
	ok, _, err = tp.Accept(periodic(t, 500), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("suspicious server accepted despite low threshold")
	}
}

func TestTwoPhaseName(t *testing.T) {
	tp, _ := NewTwoPhase(testTester(t), trust.Average{})
	if got := tp.Name(); got != "single+average" {
		t.Errorf("Name = %q", got)
	}
	base, _ := NewTwoPhase(nil, trust.Average{})
	if got := base.Name(); got != "average" {
		t.Errorf("baseline Name = %q", got)
	}
	if tp.Tester() == nil || tp.TrustFunc() == nil {
		t.Error("accessors returned nil")
	}
}

func TestShortHistoryPolicyString(t *testing.T) {
	if RejectShort.String() != "reject-short" || AllowShort.String() != "allow-short" {
		t.Error("policy String wrong")
	}
	if !strings.Contains(ShortHistoryPolicy(9).String(), "9") {
		t.Error("unknown policy String must include value")
	}
}

func TestAssessmentTrustInterval(t *testing.T) {
	tp, err := NewTwoPhase(nil, trust.Average{})
	if err != nil {
		t.Fatal(err)
	}
	small := honest(t, 20, 0.9, 5)
	big := honest(t, 2000, 0.9, 5)
	as, err := tp.Assess(small)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := tp.Assess(big)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []Assessment{as, ab} {
		if a.TrustLow > a.Trust || a.TrustHigh < a.Trust {
			t.Fatalf("interval [%v,%v] excludes trust %v", a.TrustLow, a.TrustHigh, a.Trust)
		}
	}
	if (ab.TrustHigh - ab.TrustLow) >= (as.TrustHigh - as.TrustLow) {
		t.Fatalf("interval did not shrink with history size: %v vs %v",
			ab.TrustHigh-ab.TrustLow, as.TrustHigh-as.TrustLow)
	}
}
