package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"honestplayer/internal/behavior"
	"honestplayer/internal/core"
	"honestplayer/internal/feedback"
	"honestplayer/internal/ledger"
	"honestplayer/internal/repserver"
	"honestplayer/internal/stats"
	"honestplayer/internal/trust"
)

func startTestServer(t *testing.T) string {
	t.Helper()
	tester, err := behavior.NewMulti(behavior.Config{
		Calibrator: stats.NewCalibrator(stats.CalibrationConfig{Seed: 1, Replicates: 200}, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	assessor, err := core.NewTwoPhase(tester, trust.Average{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := repserver.New("127.0.0.1:0", repserver.Config{Assessor: assessor})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return srv.Addr()
}

func TestPingSubmitHistoryAssess(t *testing.T) {
	addr := startTestServer(t)

	var out strings.Builder
	if err := run([]string{"-addr", addr, "ping"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "pong") {
		t.Fatalf("ping output = %q", out.String())
	}

	// Submit 100 positive records at distinct times.
	for i := 0; i < 100; i++ {
		out.Reset()
		ts := "2026-01-01T00:00:" + twoDigits(i%60) + "Z"
		if i >= 60 {
			ts = "2026-01-01T00:01:" + twoDigits(i%60) + "Z"
		}
		err := run([]string{"-addr", addr, "submit",
			"-server", "s1", "-client", "alice", "-rating", "positive", "-time", ts}, &out)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !strings.Contains(out.String(), "stored") {
		t.Fatalf("submit output = %q", out.String())
	}

	// Duplicate submission is reported.
	out.Reset()
	err := run([]string{"-addr", addr, "submit",
		"-server", "s1", "-client", "alice", "-rating", "positive",
		"-time", "2026-01-01T00:00:00Z"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "duplicate") {
		t.Fatalf("duplicate output = %q", out.String())
	}

	out.Reset()
	if err := run([]string{"-addr", addr, "history", "-server", "s1", "-limit", "5"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "5 records (of 100 total)") {
		t.Fatalf("history output = %q", out.String())
	}

	out.Reset()
	if err := run([]string{"-addr", addr, "assess", "-server", "s1", "-threshold", "0.9"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"accept": true`) {
		t.Fatalf("assess output = %q", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	addr := startTestServer(t)
	if err := run([]string{"-addr", addr}, &strings.Builder{}); err == nil {
		t.Error("missing command must fail")
	}
	if err := run([]string{"-addr", addr, "frobnicate"}, &strings.Builder{}); err == nil {
		t.Error("unknown command must fail")
	}
	if err := run([]string{"-addr", addr, "submit", "-server", "s", "-client", "c",
		"-rating", "meh"}, &strings.Builder{}); err == nil {
		t.Error("invalid rating must fail")
	}
	if err := run([]string{"-addr", addr, "submit", "-server", "s", "-client", "c",
		"-time", "not-a-time"}, &strings.Builder{}); err == nil {
		t.Error("invalid time must fail")
	}
	if err := run([]string{"-addr", addr, "assess", "-server", "ghost"}, &strings.Builder{}); err == nil {
		t.Error("unknown server must surface the remote error")
	}
}

func twoDigits(v int) string {
	if v < 10 {
		return "0" + string(rune('0'+v))
	}
	return string(rune('0'+v/10)) + string(rune('0'+v%10))
}

func TestLocalAssess(t *testing.T) {
	// Build a JSONL history file: a deterministic periodic attacker.
	recs := make([]feedback.Feedback, 0, 300)
	for i := 0; i < 300; i++ {
		r := feedback.Positive
		if i%10 == 9 {
			r = feedback.Negative
		}
		recs = append(recs, feedback.Feedback{
			Time: time.Unix(int64(i), 0).UTC(), Server: "attacker", Client: "c", Rating: r,
		})
	}
	path := filepath.Join(t.TempDir(), "history.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := feedback.WriteJSONLines(f, recs); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := run([]string{"local-assess", "-file", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"suspicious": true`) {
		t.Fatalf("periodic attacker not flagged offline:\n%s", out.String())
	}
	// Explicit server and scheme=none path.
	out.Reset()
	if err := run([]string{"local-assess", "-file", path, "-server", "attacker", "-scheme", "none"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"accept": true`) {
		t.Fatalf("bare average should accept the 90%% attacker:\n%s", out.String())
	}
}

func TestLocalAssessErrors(t *testing.T) {
	if err := run([]string{"local-assess"}, &strings.Builder{}); err == nil {
		t.Error("missing -file must fail")
	}
	if err := run([]string{"local-assess", "-file", "/nonexistent"}, &strings.Builder{}); err == nil {
		t.Error("missing file must fail")
	}
}

func TestAssessBatch(t *testing.T) {
	addr := startTestServer(t)
	// Seed two servers through the CLI submit path.
	for _, srv := range []string{"b1", "b2"} {
		for i := 0; i < 90; i++ {
			ts := "2026-01-01T00:" + twoDigits(i/60) + ":" + twoDigits(i%60) + "Z"
			err := run([]string{"-addr", addr, "submit",
				"-server", srv, "-client", "alice", "-rating", "positive", "-time", ts}, &strings.Builder{})
			if err != nil {
				t.Fatal(err)
			}
		}
	}

	// Server IDs as positional arguments, one of them unknown.
	var out strings.Builder
	if err := run([]string{"-addr", addr, "assess-batch", "-threshold", "0.9", "b1", "ghost", "b2"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if strings.Count(got, `"accept": true`) != 2 {
		t.Fatalf("assess-batch output:\n%s", got)
	}
	if !strings.Contains(got, `"unknown_server"`) || !strings.Contains(got, `no records for \"ghost\"`) {
		t.Fatalf("missing per-item error:\n%s", got)
	}

	// Server IDs from stdin, one per line.
	oldStdin := stdin
	stdin = strings.NewReader("b1\n\n  b2  \n")
	t.Cleanup(func() { stdin = oldStdin })
	out.Reset()
	if err := run([]string{"-addr", addr, "assess-batch"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Count(out.String(), `"accept": true`) != 2 || strings.Contains(out.String(), `"error"`) {
		t.Fatalf("stdin assess-batch output:\n%s", out.String())
	}

	// Empty stdin and no arguments must fail.
	stdin = strings.NewReader("")
	if err := run([]string{"-addr", addr, "assess-batch"}, &strings.Builder{}); err == nil {
		t.Error("assess-batch with no servers must fail")
	}
}

func TestSubmitBatchCommand(t *testing.T) {
	addr := startTestServer(t)

	// Records as positional JSON arguments, one a duplicate of the other.
	var out strings.Builder
	recJSON := `{"time":"2026-01-01T00:00:01Z","server":"sb1","client":"alice","rating":2}`
	err := run([]string{"-addr", addr, "submit-batch", recJSON,
		`{"time":"2026-01-01T00:00:02Z","server":"sb1","client":"bob","rating":1}`,
		recJSON}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, `"stored": 2`) || !strings.Contains(got, `"duplicates": 1`) {
		t.Fatalf("submit-batch output:\n%s", got)
	}
	if strings.Count(got, `"stored": true`) != 2 {
		t.Fatalf("per-item slots missing:\n%s", got)
	}

	// An invalid record mid-batch (rating 0 passes json.Unmarshal, fails
	// server-side): the rest of the batch is stored and the rejection
	// carries its request index.
	out.Reset()
	err = run([]string{"-addr", addr, "submit-batch",
		`{"time":"2026-01-01T00:00:03Z","server":"sb1","client":"carol","rating":2}`,
		`{"time":"2026-01-01T00:00:04Z","server":"sb1","client":"dave","rating":0}`,
		`{"time":"2026-01-01T00:00:05Z","server":"sb1","client":"erin","rating":2}`}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got = out.String()
	if !strings.Contains(got, `"stored": 2`) || !strings.Contains(got, `"index": 1`) ||
		!strings.Contains(got, `"invalid_feedback"`) {
		t.Fatalf("invalid-record submit-batch output:\n%s", got)
	}

	// Records as JSON lines on stdin (validated client-side before the
	// round trip).
	oldStdin := stdin
	stdin = strings.NewReader(
		`{"time":"2026-01-01T00:00:06Z","server":"sb1","client":"frank","rating":2}` + "\n" +
			`{"time":"2026-01-01T00:00:07Z","server":"sb1","client":"grace","rating":1}` + "\n")
	t.Cleanup(func() { stdin = oldStdin })
	out.Reset()
	if err := run([]string{"-addr", addr, "submit-batch"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"stored": 2`) {
		t.Fatalf("stdin submit-batch output:\n%s", out.String())
	}

	// The stored records really landed.
	out.Reset()
	if err := run([]string{"-addr", addr, "history", "-server", "sb1", "-limit", "10"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "(of 6 total)") {
		t.Fatalf("history after submit-batch:\n%s", out.String())
	}

	// Empty stdin and no arguments must fail; so must malformed JSON.
	stdin = strings.NewReader("")
	if err := run([]string{"-addr", addr, "submit-batch"}, &strings.Builder{}); err == nil {
		t.Error("submit-batch with no records must fail")
	}
	if err := run([]string{"-addr", addr, "submit-batch", "{not json"}, &strings.Builder{}); err == nil {
		t.Error("submit-batch with malformed JSON must fail")
	}
}

func TestLedgerInfo(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "led")
	ps, err := ledger.OpenStoreOptions(context.Background(), dir, ledger.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1700000000, 0).UTC()
	for i := 0; i < 20; i++ {
		f := feedback.Feedback{
			Server: "s1", Client: feedback.EntityID([]byte{'c', byte('a' + i%3)}),
			Rating: feedback.Positive, Time: base.Add(time.Duration(i) * time.Second),
		}
		if ok, err := ps.Add(f); !ok || err != nil {
			t.Fatalf("add: %v %v", ok, err)
		}
	}
	if _, err := ps.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := run([]string{"ledger-info", "-path", dir, "-v"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"segmented ledger", "records: 20 verified", "all segments verify", "snapshots: 1"} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}

	out.Reset()
	if err := run([]string{"ledger-info", "-path", dir, "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var info ledger.Info
	if err := json.Unmarshal([]byte(out.String()), &info); err != nil {
		t.Fatalf("json output: %v", err)
	}
	if info.Records != 20 || len(info.Snapshots) != 1 || !info.Snapshots[0].Valid {
		t.Fatalf("json info: %+v", info)
	}

	if err := run([]string{"ledger-info"}, &out); err == nil {
		t.Fatal("missing -path must fail")
	}
}
