package experiment

import (
	"errors"
	"fmt"

	"honestplayer/internal/attack"
	"honestplayer/internal/behavior"
	"honestplayer/internal/stats"
)

// DetectionConfig parameterises the Fig. 7 detection-rate experiment: a
// periodic attacker keeps its reputation at ≈ 0.9 by launching N·0.1 attacks
// within every attack window of N transactions; the figure plots the
// fraction of such attackers the behaviour test flags, as the window size N
// grows (and the pattern approaches genuine Bernoulli behaviour).
type DetectionConfig struct {
	// WindowSizes is the x axis; nil means {10, 20, …, 80}.
	WindowSizes []int
	// BadFrac is the attack fraction per window; zero means 0.1.
	BadFrac float64
	// HistoryLen is the attacker's total history length; zero means 600.
	HistoryLen int
	// Trials is the number of attacker histories per point; zero means 200.
	Trials int
	// Seed drives all randomness.
	Seed uint64
	// CalibrationReplicates tunes the Monte-Carlo ε estimation; zero means
	// 500.
	CalibrationReplicates int
}

func (c DetectionConfig) withDefaults() DetectionConfig {
	if c.WindowSizes == nil {
		c.WindowSizes = []int{10, 20, 30, 40, 50, 60, 70, 80}
	}
	if c.BadFrac == 0 {
		c.BadFrac = 0.1
	}
	if c.HistoryLen == 0 {
		c.HistoryLen = 600
	}
	if c.Trials == 0 {
		c.Trials = 200
	}
	return c
}

// RunFig7 regenerates Fig. 7: detection rate vs. attack window size.
func RunFig7(cfg DetectionConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	cal := newCalibrator(cfg.Seed+3000, cfg.CalibrationReplicates)
	bcfg := behavior.Config{WindowSize: DefaultWindowSize, Calibrator: cal}
	single, err := behavior.NewSingle(bcfg)
	if err != nil {
		return nil, err
	}
	multi, err := behavior.NewMulti(bcfg)
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:     "fig7",
		Title:  "Detection rate vs. attack window size",
		XLabel: "attack window size",
		YLabel: "detection rate",
	}
	testers := []behavior.Tester{single, multi}
	rng := stats.NewRNG(cfg.Seed)
	for _, tester := range testers {
		series := Series{Name: tester.Name()}
		for _, window := range cfg.WindowSizes {
			detected := 0
			for trial := 0; trial < cfg.Trials; trial++ {
				h, err := attack.GenPeriodic("attacker", cfg.HistoryLen, window, cfg.BadFrac, rng)
				if err != nil {
					return nil, err
				}
				v, err := tester.Test(h)
				if err != nil {
					if errors.Is(err, behavior.ErrInsufficientHistory) {
						return nil, fmt.Errorf("history length %d too short: %w", cfg.HistoryLen, err)
					}
					return nil, err
				}
				if !v.Honest {
					detected++
				}
			}
			series.Points = append(series.Points, Point{
				X: float64(window),
				Y: float64(detected) / float64(cfg.Trials),
			})
		}
		res.Series = append(res.Series, series)
	}
	res.Notes = append(res.Notes,
		"false-positive context: an honest player passes with ~95% probability per single test")
	return res, nil
}
