// Package wire defines the newline-delimited JSON protocol spoken between
// reputation clients, the reputation server, and gossiping peers.
//
// Every message is a single JSON envelope terminated by '\n':
//
//	{"v":1,"type":"assess","id":7,"payload":{...}}
//
// Responses echo the request id. Oversized or malformed frames are
// rejected; the protocol is strictly request/response, one in flight per
// connection from the client's perspective, which keeps both ends simple
// and makes failure injection in tests deterministic.
package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"honestplayer/internal/core"
	"honestplayer/internal/feedback"
)

// Version is the protocol version carried in every envelope.
const Version = 1

// MaxFrame bounds the size of one encoded message. History responses chunk
// themselves to stay under it.
const MaxFrame = 4 << 20

// MaxAssessBatch caps the servers in one assess.batch request. The server
// rejects larger requests with bad_request; clients chunk transparently
// (repclient.AssessBatch splits and reassembles in order). The cap bounds
// the response frame — each item carries a full assessment — and the work
// one request can pin on the batch worker pool.
const MaxAssessBatch = 256

// MaxSubmitBatch caps the records in one submit.batch request. The server
// rejects larger requests with bad_request; clients chunk transparently
// (repclient.SubmitBatch splits and reassembles in order). The cap bounds
// the request frame and the work one batch can pin on the worker pool and
// the ledger's group-commit queue.
const MaxSubmitBatch = 256

// MsgType discriminates envelope payloads.
type MsgType string

// Message types.
const (
	TypePing     MsgType = "ping"
	TypePong     MsgType = "pong"
	TypeSubmit   MsgType = "submit"
	TypeSubmitR  MsgType = "submit.resp"
	TypeSubmitB  MsgType = "submit.batch"
	TypeSubmitBR MsgType = "submit.batch.resp"
	TypeHistory  MsgType = "history"
	TypeHistoryR MsgType = "history.resp"
	TypeAssess   MsgType = "assess"
	TypeAssessR  MsgType = "assess.resp"
	TypeAssessB  MsgType = "assess.batch"
	TypeAssessBR MsgType = "assess.batch.resp"
	TypeDigest   MsgType = "gossip.digest"
	TypeDelta    MsgType = "gossip.delta"
	TypeSummary  MsgType = "gossip.summary"
	TypeSummaryR MsgType = "gossip.summary.resp"
	TypeError    MsgType = "error"
)

// Node-to-node message types for cluster forwarding. A forwarded call is
// always answered from the receiving node's local state — never forwarded
// again — which makes routing loops structurally impossible even under a
// membership misconfiguration. See docs/CLUSTER.md.
const (
	TypeFwdAssess    MsgType = "fwd.assess"
	TypeFwdAssessR   MsgType = "fwd.assess.resp"
	TypeFwdSubmit    MsgType = "fwd.submit"
	TypeFwdSubmitR   MsgType = "fwd.submit.resp"
	TypeFwdBatch     MsgType = "fwd.submit.batch"
	TypeFwdBatchR    MsgType = "fwd.submit.batch.resp"
	TypeFwdAssessB   MsgType = "fwd.assess.batch"
	TypeFwdAssessBR  MsgType = "fwd.assess.batch.resp"
	TypeClusterInfo  MsgType = "cluster.info"
	TypeClusterInfoR MsgType = "cluster.info.resp"
)

// Error codes carried by ErrorResponse frames. Servers use these; clients
// match on them (string-compare or errors.As on *ErrorResponse).
const (
	// CodeBadRequest reports a malformed or incomplete request payload.
	CodeBadRequest = "bad_request"
	// CodeInvalidFeedback reports a feedback record failing validation.
	CodeInvalidFeedback = "invalid_feedback"
	// CodeUnknownServer reports an assessment of a server with no records.
	CodeUnknownServer = "unknown_server"
	// CodeAssessmentFailed reports a two-phase assessment error.
	CodeAssessmentFailed = "assessment_failed"
	// CodeUnknownType reports an unregistered request type.
	CodeUnknownType = "unknown_type"
	// CodeDeadlineExceeded reports a request that exceeded the server's
	// per-request deadline; the connection stays usable.
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeCanceled reports a request abandoned because the server is
	// shutting down past its drain grace period.
	CodeCanceled = "canceled"
	// CodeInternal reports an unexpected server-side failure.
	CodeInternal = "internal"
	// CodeUnavailable reports that a cluster peer needed to answer the
	// request could not be reached. The request may succeed on retry once
	// the peer recovers; the connection that reported it stays usable.
	CodeUnavailable = "unavailable"
)

// UnattributableID is the envelope id used in error frames that cannot be
// correlated to a request — typically a frame the server failed to parse.
// Clients never issue request id 0 (ids start at 1), so an error frame with
// id 0 is connection-fatal: the stream may be desynchronised and the client
// must redial.
const UnattributableID uint64 = 0

// Protocol errors.
var (
	// ErrFrameTooLarge reports a frame above MaxFrame.
	ErrFrameTooLarge = errors.New("wire: frame too large")
	// ErrBadVersion reports an envelope with an unsupported version.
	ErrBadVersion = errors.New("wire: unsupported protocol version")
	// ErrBadMessage reports a malformed envelope or payload.
	ErrBadMessage = errors.New("wire: malformed message")
)

// Envelope frames every message.
type Envelope struct {
	V       int             `json:"v"`
	Type    MsgType         `json:"type"`
	ID      uint64          `json:"id"`
	Payload json.RawMessage `json:"payload,omitempty"`
	// Binary marks Payload as the v2 binary payload encoding rather than
	// JSON. It is a framing attribute, not part of the JSON envelope: only
	// v2 connections produce or accept binary payloads, and a binary
	// envelope must never be written with the JSON framing.
	Binary bool `json:"-"`
}

// Codec is one payload encoding of the wire protocol: it builds envelopes
// whose payloads the matching framing can carry. The negotiated codec is
// threaded through the service layer's context so handlers answer in the
// encoding the connection speaks (service.WithCodec / service.CodecFrom).
type Codec interface {
	// Encode marshals a payload into an envelope in this codec's encoding.
	Encode(t MsgType, id uint64, payload any) (Envelope, error)
	// Name identifies the codec ("json", "v2").
	Name() string
}

// JSONCodec encodes payloads as JSON — the protocol v1 encoding, and the
// default when no codec was negotiated.
var JSONCodec Codec = jsonCodec{}

// V2Codec encodes payloads with the per-type binary codecs, falling back to
// JSON payload bytes (flagged in the v2 frame header) for types without one.
var V2Codec Codec = v2Codec{}

type jsonCodec struct{}

func (jsonCodec) Encode(t MsgType, id uint64, payload any) (Envelope, error) {
	return Encode(t, id, payload)
}

func (jsonCodec) Name() string { return "json" }

type v2Codec struct{}

func (v2Codec) Encode(t MsgType, id uint64, payload any) (Envelope, error) {
	env := Envelope{V: VersionV2, Type: t, ID: id}
	if payload == nil {
		return env, nil
	}
	// A binary-encode failure is not fatal: the binary form refuses values
	// the protocol must still carry (e.g. invalid feedback, which the server
	// — not the client codec — rejects with a typed error). Such payloads
	// ride as JSON, exactly as on a v1 connection.
	if buf, ok, err := appendBinaryPayload(nil, payload); ok && err == nil {
		env.Payload, env.Binary = buf, true
		return env, nil
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return env, fmt.Errorf("encode %s: %w", t, err)
	}
	env.Payload = raw
	return env, nil
}

func (v2Codec) Name() string { return "v2" }

// SubmitRequest submits one feedback record.
type SubmitRequest struct {
	Feedback feedback.Feedback `json:"feedback"`
}

// SubmitResponse acknowledges a submission.
type SubmitResponse struct {
	// Stored is false when the record was a duplicate.
	Stored bool `json:"stored"`
}

// BatchRequest submits many feedback records in one frame — at most
// MaxSubmitBatch per request. Records are processed in order; invalid
// records fail their own item slot and are reported per record in the
// response, while every valid record is stored.
type BatchRequest struct {
	Records []feedback.Feedback `json:"records"`
}

// BatchReject reports one record of a batch that was not stored.
type BatchReject struct {
	// Index is the record's position in the request.
	Index int `json:"index"`
	// Reason is the validation error.
	Reason string `json:"reason"`
}

// SubmitBatchItem is one record's outcome within a batch response. On
// success Error is nil and Stored reports whether the record was new
// (false with a nil Error means it was a duplicate, exactly as a single
// submit response would report); on failure Error holds the per-item error
// — an invalid record fails its own slot, never the batch.
type SubmitBatchItem struct {
	Stored bool           `json:"stored"`
	Error  *ErrorResponse `json:"error,omitempty"`
}

// BatchResponse acknowledges a batch submission with a per-record report.
// Items align with the request: Items[i] is the outcome for Records[i],
// always with len(Items) == len(Records). The aggregate counters are
// derived from the items and kept for at-a-glance callers:
// Stored + Duplicates + len(Rejected) always equals the request size.
type BatchResponse struct {
	// Stored is the number of new records.
	Stored int `json:"stored"`
	// Duplicates is the number of records already present.
	Duplicates int `json:"duplicates"`
	// Rejected lists the records that failed, in request order.
	Rejected []BatchReject `json:"rejected,omitempty"`
	// Items is the per-record report, aligned with the request records.
	Items []SubmitBatchItem `json:"items,omitempty"`
}

// HistoryRequest fetches a server's records.
type HistoryRequest struct {
	Server feedback.EntityID `json:"server"`
	// Limit caps the number of most recent records returned; 0 means all.
	Limit int `json:"limit,omitempty"`
}

// HistoryResponse carries a server's records in time order.
type HistoryResponse struct {
	Records []feedback.Feedback `json:"records"`
	// Total is the full history length, which may exceed len(Records) when
	// Limit truncated the response.
	Total int `json:"total"`
}

// AssessRequest asks the server to run two-phase trust assessment.
type AssessRequest struct {
	Server feedback.EntityID `json:"server"`
	// Threshold is the client's trust threshold for the accept decision.
	Threshold float64 `json:"threshold"`
}

// AssessResponse carries the assessment outcome.
type AssessResponse struct {
	Assessment core.Assessment `json:"assessment"`
	Accept     bool            `json:"accept"`
	// Cached reports that the server answered from its assessment cache
	// (the history was unchanged since the assessment was computed).
	Cached bool `json:"cached,omitempty"`
	// Incremental reports that the server answered from its incremental
	// per-server assessment engine instead of a batch recompute. The result
	// is identical either way; the flag exists for observability.
	Incremental bool `json:"incremental,omitempty"`
	// Merged reports that the assessment was weight-merged from more than
	// one cluster node's local view (the replica set disagreed, or the
	// answering node fanned the request out). Single-node deployments and
	// owner-local answers never set it.
	Merged bool `json:"merged,omitempty"`
	// MergedFrom lists the node IDs whose views contributed to a merged
	// assessment, in merge order (most complete view first). Empty unless
	// Merged is set.
	MergedFrom []string `json:"merged_from,omitempty"`
}

// AssessBatchRequest asks the server to assess many candidate servers in
// one frame — the EigenTrust-style "rank my candidates" read path. At most
// MaxAssessBatch servers per request; one threshold applies to every item.
type AssessBatchRequest struct {
	Servers   []feedback.EntityID `json:"servers"`
	Threshold float64             `json:"threshold"`
}

// AssessBatchItem is one server's outcome within a batch response. Exactly
// one of the two shapes is populated: on success Error is nil and the
// embedded AssessResponse carries the assessment (with the same Cached /
// Incremental semantics as a single assess response); on failure Error
// holds the per-item error — an unknown server fails its own slot, never
// the batch.
type AssessBatchItem struct {
	Server feedback.EntityID `json:"server"`
	AssessResponse
	Error *ErrorResponse `json:"error,omitempty"`
}

// AssessBatchResponse answers an assess.batch request. Items align with the
// request: Items[i] is the outcome for Servers[i], always with
// len(Items) == len(Servers).
type AssessBatchResponse struct {
	Items []AssessBatchItem `json:"items"`
}

// ServerSum is the per-server record-set checksum exchanged in gossip
// summaries.
type ServerSum struct {
	Count int    `json:"count"`
	XOR   uint64 `json:"xor"`
}

// SummaryMsg opens an anti-entropy exchange: the per-server checksums of
// everything the initiator holds. The peer answers with the servers whose
// record sets differ, so the (much larger) hash digests are exchanged only
// for those.
type SummaryMsg struct {
	Node    string               `json:"node"`
	Servers map[string]ServerSum `json:"servers"`
}

// SummaryResp lists the servers for which the responder holds a different
// record set than the summary sender (including servers the sender has
// never seen).
type SummaryResp struct {
	Stale []string `json:"stale"`
}

// DigestMsg carries a gossip digest: the content hashes of the records the
// sender holds. When Servers is non-empty the digest (and the resulting
// delta) is scoped to those servers only; empty means the whole store —
// the unscoped protocol used as a fallback.
type DigestMsg struct {
	Node    string   `json:"node"`
	Servers []string `json:"servers,omitempty"`
	Hashes  []uint64 `json:"hashes"`
}

// DeltaMsg carries the records the digest sender was missing.
type DeltaMsg struct {
	Records []feedback.Feedback `json:"records"`
}

// ErrorResponse reports a request failure.
type ErrorResponse struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error implements the error interface so clients can return it directly.
func (e *ErrorResponse) Error() string {
	return fmt.Sprintf("wire: remote error %s: %s", e.Code, e.Message)
}

// Encode marshals a payload into an envelope.
func Encode(t MsgType, id uint64, payload any) (Envelope, error) {
	env := Envelope{V: Version, Type: t, ID: id}
	if payload != nil {
		raw, err := json.Marshal(payload)
		if err != nil {
			return env, fmt.Errorf("encode %s: %w", t, err)
		}
		env.Payload = raw
	}
	return env, nil
}

// DecodePayload unmarshals an envelope's payload into out, dispatching on
// the payload encoding: JSON for v1 envelopes and JSON-flagged v2 frames,
// the per-type binary codec for binary v2 payloads.
func DecodePayload(env Envelope, out any) error {
	if env.Binary {
		return decodeBinaryPayload(env.Type, env.Payload, out)
	}
	if err := json.Unmarshal(env.Payload, out); err != nil {
		return fmt.Errorf("%w: %s payload: %v", ErrBadMessage, env.Type, err)
	}
	return nil
}

// envelopeHead is an Envelope without its payload; Write marshals it
// separately so the payload bytes can be spliced in without a second
// serialisation pass.
type envelopeHead struct {
	V    int     `json:"v"`
	Type MsgType `json:"type"`
	ID   uint64  `json:"id"`
}

// Write frames and writes one envelope. The payload is spliced into the
// frame verbatim rather than re-serialised — on large responses the second
// json.Marshal pass used to dominate the write path. Payload must therefore
// be valid JSON without raw newlines, which both Encode (json.Marshal
// output) and Read (newline-delimited frames) guarantee.
func Write(w io.Writer, env Envelope) error {
	if env.Binary {
		// A binary payload spliced into a JSON frame would produce garbage;
		// this is always a codec/framing mix-up in the caller.
		return fmt.Errorf("%w: binary payload on JSON framing", ErrBadMessage)
	}
	head, err := json.Marshal(envelopeHead{V: env.V, Type: env.Type, ID: env.ID})
	if err != nil {
		return fmt.Errorf("marshal envelope: %w", err)
	}
	size := len(head) + 1
	if len(env.Payload) > 0 {
		size += len(`,"payload":`) + len(env.Payload)
	}
	if size > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, size-1)
	}
	buf := make([]byte, 0, size)
	if len(env.Payload) > 0 {
		buf = append(buf, head[:len(head)-1]...)
		buf = append(buf, `,"payload":`...)
		buf = append(buf, env.Payload...)
		buf = append(buf, '}')
	} else {
		buf = append(buf, head...)
	}
	buf = append(buf, '\n')
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("write frame: %w", err)
	}
	return nil
}

// Read reads one envelope from a buffered reader, enforcing the frame
// limit and protocol version.
func Read(r *bufio.Reader) (Envelope, error) {
	line, err := readLine(r)
	if err != nil {
		return Envelope{}, err
	}
	return Parse(line)
}

// ReadRaw reads one raw frame (without its '\n' terminator), enforcing only
// the frame limit. Callers that know the expected payload type can decode
// the frame in a single pass and fall back to Parse for anything unusual,
// skipping the intermediate RawMessage copy that Read performs.
func ReadRaw(r *bufio.Reader) ([]byte, error) {
	return readLine(r)
}

// Parse decodes one raw frame into an envelope, enforcing the protocol
// version.
func Parse(line []byte) (Envelope, error) {
	var env Envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return env, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	if env.V != Version {
		return env, fmt.Errorf("%w: %d", ErrBadVersion, env.V)
	}
	if env.Type == "" {
		return env, fmt.Errorf("%w: missing type", ErrBadMessage)
	}
	return env, nil
}

// readLine reads one '\n'-terminated frame, failing fast when the frame
// exceeds MaxFrame rather than buffering without bound.
func readLine(r *bufio.Reader) ([]byte, error) {
	var buf []byte
	for {
		chunk, err := r.ReadSlice('\n')
		buf = append(buf, chunk...)
		if len(buf) > MaxFrame {
			return nil, ErrFrameTooLarge
		}
		switch {
		case err == nil:
			return buf[:len(buf)-1], nil
		case errors.Is(err, bufio.ErrBufferFull):
			continue
		default:
			if len(buf) > 0 && !errors.Is(err, io.EOF) {
				return nil, fmt.Errorf("read frame: %w", err)
			}
			return nil, err
		}
	}
}
