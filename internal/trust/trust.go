// Package trust implements the phase-2 trust functions of the paper's
// two-phase framework: given a server's transaction history, each function
// maps it to a trust value in [0, 1] interpreted as the predicted
// probability that the next transaction will be satisfactory.
//
// The two functions evaluated in the paper — the average trust function and
// the weighted (EWMA) trust function of Fan et al. — are implemented
// together with the Beta reputation system, a time-decay function, and a
// sliding-window average, which serve as additional baselines and ablation
// points.
package trust

import (
	"errors"
	"fmt"
	"math"

	"honestplayer/internal/feedback"
)

// Errors returned by trust functions.
var (
	// ErrEmptyHistory reports evaluation over a history with no records.
	ErrEmptyHistory = errors.New("trust: empty history")
	// ErrInvalidParam reports an out-of-range function parameter.
	ErrInvalidParam = errors.New("trust: invalid parameter")
)

// Func is a trust function: a mapping from a server's feedback history to a
// trust value in [0, 1] (§2). Implementations must be stateless with respect
// to the history: two calls with equal histories return equal values.
type Func interface {
	// Name identifies the function in reports and experiment output.
	Name() string
	// Evaluate returns the trust value for the given history. It returns
	// ErrEmptyHistory when no transactions are recorded.
	Evaluate(h *feedback.History) (float64, error)
}

// Tracker is the incremental counterpart of a Func: it consumes outcomes
// one at a time in O(1) and reports the running trust value. Strategic
// attackers and long simulations use trackers to avoid re-evaluating a
// full history per transaction.
type Tracker interface {
	// Update consumes the outcome of the next transaction.
	Update(good bool)
	// Value returns the current trust value; NaN before any update for
	// functions undefined on empty histories.
	Value() float64
	// Reset returns the tracker to its initial state.
	Reset()
}

// TrackerFunc is a Func that can also mint an incremental Tracker whose
// Value after consuming a history's outcomes equals Evaluate on it.
type TrackerFunc interface {
	Func
	NewTracker() Tracker
}

// Average is the average trust function: the ratio of good transactions
// over all transactions. As argued in the paper (after [13]), it is the
// most cost-effective function in complex systems and the first baseline of
// the evaluation.
type Average struct{}

var _ TrackerFunc = Average{}

// Name implements Func.
func (Average) Name() string { return "average" }

// Evaluate implements Func.
func (Average) Evaluate(h *feedback.History) (float64, error) {
	if h.Len() == 0 {
		return 0, ErrEmptyHistory
	}
	return h.GoodRatio(), nil
}

// NewTracker implements TrackerFunc.
func (Average) NewTracker() Tracker { return &averageTracker{} }

type averageTracker struct {
	n, good int
}

func (t *averageTracker) Update(good bool) {
	t.n++
	if good {
		t.good++
	}
}

func (t *averageTracker) Value() float64 {
	if t.n == 0 {
		return math.NaN()
	}
	return float64(t.good) / float64(t.n)
}

func (t *averageTracker) Reset() { t.n, t.good = 0, 0 }

// Weighted is the weighted trust function of Fan et al. [15]:
// R_t = λ·f_t + (1−λ)·R_{t−1}, an exponentially weighted moving average
// that reacts to recent behaviour. The paper's experiments use λ = 0.5.
type Weighted struct {
	// Lambda is the weight of the most recent feedback, in (0, 1].
	Lambda float64
	// Initial is the trust value before any transaction; the neutral prior
	// 0.5 is conventional.
	Initial float64
}

var _ TrackerFunc = Weighted{}

// NewWeighted returns a Weighted function with the given λ and a neutral
// initial value of 0.5. It returns ErrInvalidParam for λ outside (0, 1].
func NewWeighted(lambda float64) (Weighted, error) {
	if math.IsNaN(lambda) || lambda <= 0 || lambda > 1 {
		return Weighted{}, fmt.Errorf("%w: lambda=%v", ErrInvalidParam, lambda)
	}
	return Weighted{Lambda: lambda, Initial: 0.5}, nil
}

// Name implements Func.
func (w Weighted) Name() string { return fmt.Sprintf("weighted(λ=%g)", w.Lambda) }

// Evaluate implements Func.
func (w Weighted) Evaluate(h *feedback.History) (float64, error) {
	if h.Len() == 0 {
		return 0, ErrEmptyHistory
	}
	t := w.NewTracker()
	for i := 0; i < h.Len(); i++ {
		t.Update(h.At(i).Good())
	}
	return t.Value(), nil
}

// NewTracker implements TrackerFunc.
func (w Weighted) NewTracker() Tracker {
	return &ewmaTracker{lambda: w.Lambda, initial: w.Initial, value: w.Initial}
}

type ewmaTracker struct {
	lambda, initial, value float64
	updated                bool
}

func (t *ewmaTracker) Update(good bool) {
	f := 0.0
	if good {
		f = 1
	}
	t.value = t.lambda*f + (1-t.lambda)*t.value
	t.updated = true
}

func (t *ewmaTracker) Value() float64 {
	if !t.updated {
		return math.NaN()
	}
	return t.value
}

func (t *ewmaTracker) Reset() { t.value, t.updated = t.initial, false }

// Beta is the Beta reputation system of Ismail & Jøsang [16]: the posterior
// mean (good+1)/(n+2) of a Beta(1,1)-prior Bernoulli model. Unlike Average
// it is defined on the empty history (value 0.5) but for interface
// uniformity it still reports ErrEmptyHistory there.
type Beta struct{}

var _ TrackerFunc = Beta{}

// Name implements Func.
func (Beta) Name() string { return "beta" }

// Evaluate implements Func.
func (Beta) Evaluate(h *feedback.History) (float64, error) {
	if h.Len() == 0 {
		return 0, ErrEmptyHistory
	}
	return (float64(h.GoodCount()) + 1) / (float64(h.Len()) + 2), nil
}

// NewTracker implements TrackerFunc.
func (Beta) NewTracker() Tracker { return &betaTracker{} }

type betaTracker struct {
	n, good int
}

func (t *betaTracker) Update(good bool) {
	t.n++
	if good {
		t.good++
	}
}

func (t *betaTracker) Value() float64 {
	if t.n == 0 {
		return math.NaN()
	}
	return (float64(t.good) + 1) / (float64(t.n) + 2)
}

func (t *betaTracker) Reset() { t.n, t.good = 0, 0 }

// TimeDecay assigns geometrically decaying weights to feedbacks by age:
// the i-th most recent feedback has weight Decay^i, normalised to sum to 1
// (the Σw_i = 1 family of §6). Decay = 1 degenerates to Average.
type TimeDecay struct {
	// Decay in (0, 1] is the per-step weight ratio.
	Decay float64
}

var _ TrackerFunc = TimeDecay{}

// NewTimeDecay validates the decay factor.
func NewTimeDecay(decay float64) (TimeDecay, error) {
	if math.IsNaN(decay) || decay <= 0 || decay > 1 {
		return TimeDecay{}, fmt.Errorf("%w: decay=%v", ErrInvalidParam, decay)
	}
	return TimeDecay{Decay: decay}, nil
}

// Name implements Func.
func (d TimeDecay) Name() string { return fmt.Sprintf("timedecay(γ=%g)", d.Decay) }

// Evaluate implements Func.
func (d TimeDecay) Evaluate(h *feedback.History) (float64, error) {
	if h.Len() == 0 {
		return 0, ErrEmptyHistory
	}
	t := d.NewTracker()
	for i := 0; i < h.Len(); i++ {
		t.Update(h.At(i).Good())
	}
	return t.Value(), nil
}

// NewTracker implements TrackerFunc.
func (d TimeDecay) NewTracker() Tracker { return &decayTracker{decay: d.Decay} }

// decayTracker maintains numerator Σ γ^age(i)·f_i and denominator Σ γ^age(i)
// incrementally: on each update both are multiplied by γ and the newest
// feedback enters with weight 1.
type decayTracker struct {
	decay    float64
	num, den float64
}

func (t *decayTracker) Update(good bool) {
	t.num *= t.decay
	t.den *= t.decay
	if good {
		t.num++
	}
	t.den++
}

func (t *decayTracker) Value() float64 {
	if t.den == 0 {
		return math.NaN()
	}
	return t.num / t.den
}

func (t *decayTracker) Reset() { t.num, t.den = 0, 0 }

// SlidingWindow is the most-recent-W average: feedbacks older than the
// window are discarded entirely. The paper notes this opens the door to
// periodic attacks; it is included as an ablation baseline.
type SlidingWindow struct {
	// W is the window length in transactions.
	W int
}

var _ TrackerFunc = SlidingWindow{}

// NewSlidingWindow validates the window length.
func NewSlidingWindow(w int) (SlidingWindow, error) {
	if w <= 0 {
		return SlidingWindow{}, fmt.Errorf("%w: window=%d", ErrInvalidParam, w)
	}
	return SlidingWindow{W: w}, nil
}

// Name implements Func.
func (s SlidingWindow) Name() string { return fmt.Sprintf("window(W=%d)", s.W) }

// Evaluate implements Func.
func (s SlidingWindow) Evaluate(h *feedback.History) (float64, error) {
	if h.Len() == 0 {
		return 0, ErrEmptyHistory
	}
	lo := h.Len() - s.W
	if lo < 0 {
		lo = 0
	}
	n := h.Len() - lo
	return float64(h.GoodInRange(lo, h.Len())) / float64(n), nil
}

// NewTracker implements TrackerFunc.
func (s SlidingWindow) NewTracker() Tracker {
	return &windowTracker{w: s.W, buf: make([]bool, 0, s.W)}
}

type windowTracker struct {
	w    int
	buf  []bool // ring buffer of the last w outcomes
	head int
	n    int
	good int
}

func (t *windowTracker) Update(good bool) {
	if t.n < t.w {
		t.buf = append(t.buf, good)
		t.n++
	} else {
		if t.buf[t.head] {
			t.good--
		}
		t.buf[t.head] = good
		t.head = (t.head + 1) % t.w
	}
	if good {
		t.good++
	}
}

func (t *windowTracker) Value() float64 {
	if t.n == 0 {
		return math.NaN()
	}
	return float64(t.good) / float64(t.n)
}

func (t *windowTracker) Reset() {
	t.buf = t.buf[:0]
	t.head, t.n, t.good = 0, 0, 0
}
