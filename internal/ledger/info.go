package ledger

// Offline ledger inspection for trustctl ledger-info: reads a ledger
// directory (or a not-yet-migrated legacy file) without opening it for
// appends, verifying every segment's checksums and every snapshot end to
// end. Safe to run against a live node's data directory — everything is
// read-only.

import (
	"fmt"
	"os"
	"path/filepath"
)

// SegmentInfo describes one scanned segment file.
type SegmentInfo struct {
	Index   uint64 `json:"index"`
	Size    int64  `json:"size"`
	Records uint64 `json:"records"`
	Kind    string `json:"kind"`   // "binary" or "json"
	Sealed  bool   `json:"sealed"` // valid footer covering the whole file
	// Truncated is how many trailing bytes fail verification (0 = fully
	// intact). Non-zero on the active segment means a torn tail the next
	// open will trim; on a sealed position it means detected corruption.
	Truncated int64 `json:"truncated,omitempty"`
}

// SnapshotFileInfo describes one snapshot file and its verification result.
type SnapshotFileInfo struct {
	Seq            uint64 `json:"seq"`
	Size           int64  `json:"size"`
	Valid          bool   `json:"valid"`
	Error          string `json:"error,omitempty"`
	Servers        int    `json:"servers,omitempty"`
	Records        uint64 `json:"records,omitempty"`
	CoveredSegment uint64 `json:"covered_segment,omitempty"`
	Accumulators   int    `json:"accumulators,omitempty"`
}

// Info is the result of inspecting a ledger directory.
type Info struct {
	Path      string             `json:"path"`
	Legacy    bool               `json:"legacy,omitempty"` // single-file ledger, not yet migrated
	Segments  []SegmentInfo      `json:"segments"`
	Snapshots []SnapshotFileInfo `json:"snapshots,omitempty"`
	// Records is the total intact record count across all segments (every
	// segment is fully scanned and checksum-verified).
	Records uint64 `json:"records"`
	// TruncatedBytes totals the unverifiable trailing bytes across segments.
	TruncatedBytes int64 `json:"truncated_bytes,omitempty"`
}

// Inspect scans the ledger at path read-only: every segment is decoded and
// checksum-verified, every snapshot loaded and verified. A legacy
// single-file ledger (the pre-segmentation format) is reported as one JSON
// pseudo-segment without migrating it.
func Inspect(path string) (*Info, error) {
	info := &Info{Path: path}
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("ledger: inspect %s: %w", path, err)
	}
	if !fi.IsDir() {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("ledger: inspect %s: %w", path, err)
		}
		sc, _ := scanSegment(data, nil)
		info.Legacy = true
		info.Segments = []SegmentInfo{segmentInfo(1, sc)}
		info.Records = sc.records
		info.TruncatedBytes = sc.truncated
		return info, nil
	}

	l := &Ledger{dir: path}
	segs, err := l.listSegments()
	if err != nil {
		return nil, err
	}
	for _, idx := range segs {
		data, err := readSegmentFile(l.segPath(idx))
		if err != nil {
			return nil, err
		}
		sc, _ := scanSegment(data, nil)
		info.Segments = append(info.Segments, segmentInfo(idx, sc))
		info.Records += sc.records
		info.TruncatedBytes += sc.truncated
	}

	seqs, err := listSnapshots(path)
	if err != nil {
		return nil, err
	}
	for _, seq := range seqs {
		sp := filepath.Join(path, snapshotName(seq))
		si := SnapshotFileInfo{Seq: seq}
		if fi, err := os.Stat(sp); err == nil {
			si.Size = fi.Size()
		}
		sd, err := loadSnapshot(sp)
		if err != nil {
			si.Error = err.Error()
		} else {
			si.Valid = true
			si.Servers = len(sd.servers)
			si.CoveredSegment = sd.covered
			for _, srv := range sd.servers {
				si.Records += uint64(len(srv.recs))
				if len(srv.accState) > 0 {
					si.Accumulators++
				}
			}
		}
		info.Snapshots = append(info.Snapshots, si)
	}
	return info, nil
}

func segmentInfo(idx uint64, sc segScan) SegmentInfo {
	kind := "binary"
	if sc.kind == segJSON {
		kind = "json"
	}
	return SegmentInfo{
		Index:     idx,
		Size:      sc.size,
		Records:   sc.records,
		Kind:      kind,
		Sealed:    sc.sealed,
		Truncated: sc.truncated,
	}
}
