package ledger

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzOpenReplay ensures replay never panics or errors on arbitrary file
// contents — corruption must degrade to a shorter replayed prefix.
func FuzzOpenReplay(f *testing.F) {
	f.Add([]byte(`{"time":"2020-01-01T00:00:00Z","server":"s","client":"c","rating":2}` + "\n"))
	f.Add([]byte("garbage\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, recs, err := Open(path)
		if err != nil {
			t.Fatalf("replay errored on arbitrary contents: %v", err)
		}
		for _, r := range recs {
			if err := r.Validate(); err != nil {
				t.Fatalf("replayed invalid record: %v", err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	})
}
