package attack

import (
	"errors"
	"math"
	"testing"

	"honestplayer/internal/stats"
)

func TestGenHibernating(t *testing.T) {
	rng := stats.NewRNG(1)
	h, err := GenHibernating("a", 300, 0.95, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 320 {
		t.Fatalf("len = %d", h.Len())
	}
	// The last 20 are all bad.
	for i := 300; i < 320; i++ {
		if h.At(i).Good() {
			t.Fatalf("burst transaction %d is good", i)
		}
	}
	if h.GoodInRange(0, 300) < 270 {
		t.Fatalf("prep good count = %d", h.GoodInRange(0, 300))
	}
}

func TestGenHibernatingValidation(t *testing.T) {
	rng := stats.NewRNG(1)
	if _, err := GenHibernating("a", -1, 0.9, 5, rng); !errors.Is(err, ErrBadParams) {
		t.Errorf("negative prep = %v", err)
	}
	if _, err := GenHibernating("a", 10, 1.5, 5, rng); !errors.Is(err, ErrBadParams) {
		t.Errorf("bad p = %v", err)
	}
}

func TestGenPeriodic(t *testing.T) {
	rng := stats.NewRNG(2)
	const n, window = 800, 40
	h, err := GenPeriodic("a", n, window, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != n {
		t.Fatalf("len = %d", h.Len())
	}
	// Every full attack window holds exactly ceil(40*0.1) = 4 bad.
	for start := 0; start+window <= n; start += window {
		bad := window - h.GoodInRange(start, start+window)
		if bad != 4 {
			t.Fatalf("window at %d has %d bad, want 4", start, bad)
		}
	}
	// Overall reputation ~0.9.
	if math.Abs(h.GoodRatio()-0.9) > 1e-9 {
		t.Fatalf("ratio = %v", h.GoodRatio())
	}
}

func TestGenPeriodicPartialWindow(t *testing.T) {
	rng := stats.NewRNG(3)
	h, err := GenPeriodic("a", 45, 40, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 45 {
		t.Fatalf("len = %d", h.Len())
	}
}

func TestGenPeriodicValidation(t *testing.T) {
	rng := stats.NewRNG(1)
	for _, tc := range []struct {
		n, w int
		f    float64
	}{{-1, 10, 0.1}, {10, 0, 0.1}, {10, 10, -0.1}, {10, 10, 1.5}} {
		if _, err := GenPeriodic("a", tc.n, tc.w, tc.f, rng); !errors.Is(err, ErrBadParams) {
			t.Errorf("GenPeriodic(%+v) = %v", tc, err)
		}
	}
}

func TestGenPeriodicRandomPlacement(t *testing.T) {
	// Two different windows should not have identical bad positions every
	// time (the placement is random, not fixed).
	rng := stats.NewRNG(4)
	h, err := GenPeriodic("a", 1000, 50, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	patterns := make(map[string]bool)
	for start := 0; start+50 <= 1000; start += 50 {
		key := ""
		for i := start; i < start+50; i++ {
			if h.At(i).Good() {
				key += "g"
			} else {
				key += "b"
			}
		}
		patterns[key] = true
	}
	if len(patterns) < 5 {
		t.Fatalf("only %d distinct window patterns in 20 windows", len(patterns))
	}
}

func TestGenCheatAndRun(t *testing.T) {
	rng := stats.NewRNG(5)
	h, err := GenCheatAndRun("a", 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 6 {
		t.Fatalf("len = %d", h.Len())
	}
	if h.At(5).Good() {
		t.Fatal("final transaction must be bad")
	}
	if h.GoodCount() != 5 {
		t.Fatalf("good = %d", h.GoodCount())
	}
	if _, err := GenCheatAndRun("a", -1, rng); !errors.Is(err, ErrBadParams) {
		t.Errorf("negative goods = %v", err)
	}
}

func TestGenHonest(t *testing.T) {
	rng := stats.NewRNG(6)
	h, err := GenHonest("a", 500, 0.9, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 500 {
		t.Fatalf("len = %d", h.Len())
	}
	if math.Abs(h.GoodRatio()-0.9) > 0.05 {
		t.Fatalf("ratio = %v", h.GoodRatio())
	}
}
