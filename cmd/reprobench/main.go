// Command reprobench regenerates the figures of the paper's evaluation
// (Figs. 3–9) and prints them as ASCII tables, optionally writing CSV files.
//
// Usage:
//
//	reprobench -fig all            # every figure, full workloads
//	reprobench -fig 3 -quick      # one figure, reduced workload
//	reprobench -fig all -csv out/  # also write out/fig3.csv …
//	reprobench -incrbench          # incremental engine vs recompute (JSON)
//	reprobench -batchbench         # assess.batch vs N single assess (JSON)
//	reprobench -clusterbench       # forwarded+merged vs local assess (JSON)
//	reprobench -bootbench          # snapshot+tail boot vs full JSON replay (JSON)
//	reprobench -membench           # bounded-memory lifecycle + fault-in (JSON)
//	reprobench -submitbench        # group-commit write path vs single submits (JSON)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"honestplayer/internal/experiment"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "reprobench:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("reprobench", flag.ContinueOnError)
	var (
		fig    = fs.String("fig", "all", `experiment: 3..9, "fig3".."fig9", an ablation id, "all" (figures), "ablations", or "everything"`)
		quick  = fs.Bool("quick", false, "shrink workloads for a fast smoke run")
		seed   = fs.Uint64("seed", 42, "random seed")
		csvDir = fs.String("csv", "", "directory to write <fig>.csv files into (optional)")
		plot   = fs.Bool("plot", false, "also render an ASCII plot of each figure")
		asJSON = fs.Bool("json", false, "emit JSON instead of tables")
		incr   = fs.Bool("incrbench", false, "benchmark the incremental assessment engine against the cache-invalidated recompute path and emit a JSON report")
		batch  = fs.Bool("batchbench", false, "benchmark one assess.batch round-trip against N sequential assess round-trips and emit a JSON report")
		minSp  = fs.Float64("batch-min-speedup", 0, "with -batchbench: fail unless every size reaches this speedup with matching assessments (0 disables the gate)")
		wireb  = fs.Bool("wirebench", false, "benchmark the pipelined binary v2 transport against the JSON lock-step transport on the same assess workload and emit a JSON report")
		wireSp = fs.Float64("wire-min-speedup", 0, "with -wirebench: fail unless every size reaches this speedup with matching assessments (0 disables the gate)")
		clb    = fs.Bool("clusterbench", false, "benchmark a forwarded+merged assess against a local one on a 3-node cluster and emit a JSON report; mismatching verdicts always fail")
		clOv   = fs.Float64("cluster-max-overhead", 0, "with -clusterbench: fail if the forwarding overhead ratio exceeds this at any size (0 disables the gate)")
		bootb  = fs.Bool("bootbench", false, "benchmark a snapshot+tail-replay boot against a full JSON replay of the same history and emit a JSON report; diverging store state always fails")
		bootSp = fs.Float64("boot-min-speedup", 0, "with -bootbench: fail unless every size boots from a real snapshot at this speedup or better (0 disables the gate)")
		memb   = fs.Bool("membench", false, "benchmark the resident-state lifecycle: load servers through a memory-budgeted store, fault evicted ones back in through the serving path, and emit a JSON report; exceeding the budget or a diverging verdict always fails")
		subb   = fs.Bool("submitbench", false, "benchmark 8 concurrent submit.batch clients against sequential single-record submits on a ledger-backed server and emit a JSON report; diverging store state or an idle group-commit path always fails")
		subSp  = fs.Float64("submit-min-speedup", 0, "with -submitbench: fail unless both engines reach this throughput speedup (0 disables the gate)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *incr {
		return runIncrBench(out, *seed, *quick)
	}
	if *batch {
		return runBatchBench(out, *quick, *minSp)
	}
	if *wireb {
		return runWireBench(out, *quick, *wireSp)
	}
	if *clb {
		return runClusterBench(out, *quick, *clOv)
	}
	if *bootb {
		return runBootBench(out, *quick, *bootSp)
	}
	if *memb {
		return runMemBench(out, *quick)
	}
	if *subb {
		return runSubmitBench(out, *quick, *subSp)
	}

	ids, err := selectFigures(*fig)
	if err != nil {
		return err
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return fmt.Errorf("create csv dir: %w", err)
		}
	}
	opts := experiment.Options{Seed: *seed, Quick: *quick}
	for _, id := range ids {
		start := time.Now()
		res, err := experiment.Run(id, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if *asJSON {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			if err := enc.Encode(res); err != nil {
				return fmt.Errorf("%s: encode: %w", id, err)
			}
		} else {
			fmt.Fprintln(out, res.Table())
			if *plot {
				fmt.Fprintln(out, res.Plot())
			}
		}
		fmt.Fprintf(out, "(%s regenerated in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			path := filepath.Join(*csvDir, id+".csv")
			if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
				return fmt.Errorf("write %s: %w", path, err)
			}
			fmt.Fprintf(out, "wrote %s\n\n", path)
		}
	}
	return nil
}

func selectFigures(arg string) ([]string, error) {
	switch arg {
	case "all":
		return experiment.FigureIDs(), nil
	case "ablations":
		return experiment.AblationIDs(), nil
	case "everything":
		return experiment.IDs(), nil
	}
	id := arg
	if !strings.HasPrefix(id, "fig") && !strings.HasPrefix(id, "ablation") {
		id = "fig" + id
	}
	for _, known := range experiment.IDs() {
		if known == id {
			return []string{id}, nil
		}
	}
	return nil, fmt.Errorf("unknown figure %q (have %v)", arg, experiment.IDs())
}
