package main

import (
	"context"
	"testing"
	"time"

	"honestplayer/internal/behavior"
)

func TestTrustFunc(t *testing.T) {
	for _, name := range []string{"average", "weighted", "beta"} {
		fn, err := trustFunc(name, 0.5)
		if err != nil || fn == nil {
			t.Errorf("trustFunc(%q) = %v, %v", name, fn, err)
		}
	}
	if _, err := trustFunc("nope", 0.5); err == nil {
		t.Error("unknown trust function must fail")
	}
	if _, err := trustFunc("weighted", 2); err == nil {
		t.Error("invalid lambda must fail")
	}
}

func TestTesterSelection(t *testing.T) {
	for _, scheme := range []string{"single", "multi", "collusion", "collusion-multi"} {
		ts, err := tester(scheme, 10, 1, 0)
		if err != nil || ts == nil {
			t.Errorf("tester(%q) = %v, %v", scheme, ts, err)
		}
	}
	ts, err := tester("none", 10, 1, 0)
	if err != nil || ts != nil {
		t.Errorf("tester(none) = %v, %v", ts, err)
	}
	if _, err := tester("bogus", 10, 1, 0); err == nil {
		t.Error("unknown scheme must fail")
	}
	if _, err := tester("single", -1, 1, 0); err == nil {
		t.Error("invalid window must fail")
	}
}

// TestRunIncremental drives a full startup/shutdown cycle with the
// incremental engine enabled; run must come up (installing the per-server
// accumulator factory) and exit cleanly when the context ends.
func TestRunIncremental(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	if err := run(ctx, []string{"-addr", "127.0.0.1:0", "-scheme", "multi", "-incremental"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestTesterArenaCap(t *testing.T) {
	if _, err := tester("multi", 10, 1, -1); err == nil {
		t.Error("negative arena cap must fail")
	}
	ts, err := tester("multi", 10, 1, 64)
	if err != nil {
		t.Fatalf("tester with arena cap: %v", err)
	}
	if got := ts.(*behavior.Multi).Config().ArenaCap; got != 64 {
		t.Errorf("ArenaCap = %d, want 64", got)
	}
}
