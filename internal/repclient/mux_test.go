package repclient

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"honestplayer/internal/wire"
)

// fakeV2Server accepts one connection, completes the server side of the v2
// handshake, and hands the framed connection to handler.
func fakeV2Server(t *testing.T, handler func(net.Conn, *bufio.Reader)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer func() { _ = conn.Close() }()
		reader := bufio.NewReader(conn)
		if _, err := wire.ReadHello(reader); err != nil {
			return
		}
		if err := wire.WriteHelloAck(conn); err != nil {
			return
		}
		handler(conn, reader)
	}()
	return ln.Addr().String()
}

// TestMuxOutOfOrderCompletion: the server answers two pipelined requests in
// reverse order; each caller still receives its own response, paired by id.
func TestMuxOutOfOrderCompletion(t *testing.T) {
	addr := fakeV2Server(t, func(conn net.Conn, reader *bufio.Reader) {
		var envs []wire.Envelope
		for len(envs) < 2 {
			env, err := wire.ReadV2(reader)
			if err != nil {
				return
			}
			envs = append(envs, env)
		}
		for i := len(envs) - 1; i >= 0; i-- {
			var resp wire.Envelope
			var err error
			switch envs[i].Type {
			case wire.TypePing:
				resp, err = wire.V2Codec.Encode(wire.TypePong, envs[i].ID, nil)
			case wire.TypeHistory:
				resp, err = wire.V2Codec.Encode(wire.TypeHistoryR, envs[i].ID, wire.HistoryResponse{Total: 7})
			}
			if err != nil {
				return
			}
			if err := wire.WriteV2(conn, resp); err != nil {
				return
			}
		}
	})
	c, err := Dial(addr, WithProtocol(ProtoV2), WithTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	var wg sync.WaitGroup
	var pingErr, histErr error
	var total int
	wg.Add(2)
	go func() { defer wg.Done(); pingErr = c.Ping() }()
	go func() { defer wg.Done(); _, total, histErr = c.History("srv", 0) }()
	wg.Wait()
	if pingErr != nil || histErr != nil {
		t.Fatalf("ping err = %v, history err = %v", pingErr, histErr)
	}
	if total != 7 {
		t.Fatalf("history total = %d, want 7 (response misrouted)", total)
	}
}

// TestMuxPipelinesConcurrentRequests: the server refuses to answer anything
// until it has read all n requests — only a client that truly keeps n
// requests in flight on one connection can finish.
func TestMuxPipelinesConcurrentRequests(t *testing.T) {
	const n = 8
	addr := fakeV2Server(t, func(conn net.Conn, reader *bufio.Reader) {
		var ids []uint64
		for len(ids) < n {
			env, err := wire.ReadV2(reader)
			if err != nil {
				return
			}
			ids = append(ids, env.ID)
		}
		for _, id := range ids {
			resp, err := wire.V2Codec.Encode(wire.TypePong, id, nil)
			if err != nil {
				return
			}
			if err := wire.WriteV2(conn, resp); err != nil {
				return
			}
		}
	})
	c, err := Dial(addr, WithProtocol(ProtoV2), WithWindow(n), WithTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() { errs <- c.Ping() }()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("pipelined ping %d: %v", i, err)
		}
	}
}

// TestMuxCancelLeavesOthersInFlight: cancelling one request must neither
// disturb a concurrent request on the same connection nor poison it — its
// late response is dropped by id and the connection keeps serving.
func TestMuxCancelLeavesOthersInFlight(t *testing.T) {
	release := make(chan struct{})
	addr := fakeV2Server(t, func(conn net.Conn, reader *bufio.Reader) {
		for {
			env, err := wire.ReadV2(reader)
			if err != nil {
				return
			}
			if env.Type == wire.TypeHistory {
				// The request that will be cancelled: answer only when
				// released, long after the caller gave up.
				go func(id uint64) {
					<-release
					resp, _ := wire.V2Codec.Encode(wire.TypeHistoryR, id, wire.HistoryResponse{})
					_ = wire.WriteV2(conn, resp)
				}(env.ID)
				continue
			}
			resp, err := wire.V2Codec.Encode(wire.TypePong, env.ID, nil)
			if err != nil {
				return
			}
			if err := wire.WriteV2(conn, resp); err != nil {
				return
			}
		}
	})
	c, err := Dial(addr, WithProtocol(ProtoV2), WithTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	ctx, cancel := context.WithCancel(context.Background())
	histDone := make(chan error, 1)
	go func() { _, _, err := c.HistoryCtx(ctx, "srv", 0); histDone <- err }()
	// Let the history request reach the wire, then abandon it.
	time.Sleep(50 * time.Millisecond)
	cancel()
	if err := <-histDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled history err = %v, want context.Canceled", err)
	}
	// The connection must still serve other requests...
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after cancel: %v", err)
	}
	// ...including after the abandoned request's late response arrives.
	close(release)
	time.Sleep(50 * time.Millisecond)
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after late response: %v", err)
	}
	if got := c.Protocol(); got != "v2" {
		t.Fatalf("protocol = %q after late response, want v2 (connection was poisoned)", got)
	}
}

// TestMuxUnattributableErrorPoisonsAllInFlight: a server error frame with
// id 0 is connection-fatal — every pending request fails with ErrConnBroken
// and the client redials on the next call.
func TestMuxUnattributableErrorPoisonsAllInFlight(t *testing.T) {
	const n = 4
	dials := make(chan struct{}, 8)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		first := true
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			dials <- struct{}{}
			go func(conn net.Conn, poison bool) {
				defer func() { _ = conn.Close() }()
				reader := bufio.NewReader(conn)
				if _, err := wire.ReadHello(reader); err != nil {
					return
				}
				if err := wire.WriteHelloAck(conn); err != nil {
					return
				}
				seen := 0
				for {
					env, err := wire.ReadV2(reader)
					if err != nil {
						return
					}
					seen++
					if poison && seen == n {
						// All n requests are in flight: answer with the
						// unattributable error and hang up.
						resp, _ := wire.V2Codec.Encode(wire.TypeError, wire.UnattributableID,
							wire.ErrorResponse{Code: wire.CodeBadRequest, Message: "desync"})
						_ = wire.WriteV2(conn, resp)
						return
					}
					if !poison {
						resp, _ := wire.V2Codec.Encode(wire.TypePong, env.ID, nil)
						if err := wire.WriteV2(conn, resp); err != nil {
							return
						}
					}
				}
			}(conn, first)
			first = false
		}
	}()

	c, err := Dial(ln.Addr().String(), WithProtocol(ProtoV2), WithTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	<-dials

	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() { errs <- c.Ping() }()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; !errors.Is(err, ErrConnBroken) {
			t.Fatalf("in-flight ping %d err = %v, want ErrConnBroken", i, err)
		}
	}
	// The next call redials (second accept) and succeeds.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after redial: %v", err)
	}
	select {
	case <-dials:
	default:
		t.Fatal("client did not redial after poisoning")
	}
}

// TestMuxRedialWithQueuedRequests: when the connection dies under
// concurrent load, in-flight requests fail but the client recovers — a
// following burst renegotiates v2 and completes on a fresh connection.
func TestMuxRedialWithQueuedRequests(t *testing.T) {
	const n = 6
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		first := true
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn, dropEarly bool) {
				defer func() { _ = conn.Close() }()
				reader := bufio.NewReader(conn)
				if _, err := wire.ReadHello(reader); err != nil {
					return
				}
				if err := wire.WriteHelloAck(conn); err != nil {
					return
				}
				seen := 0
				for {
					env, err := wire.ReadV2(reader)
					if err != nil {
						return
					}
					seen++
					if dropEarly && seen >= 2 {
						return // hang up mid-burst with requests queued
					}
					resp, _ := wire.V2Codec.Encode(wire.TypePong, env.ID, nil)
					if err := wire.WriteV2(conn, resp); err != nil {
						return
					}
				}
			}(conn, first)
			first = false
		}
	}()

	c, err := Dial(ln.Addr().String(), WithProtocol(ProtoV2), WithTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	// First burst: the server hangs up with requests queued; every caller
	// must get an error, none may hang.
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); _ = c.Ping() }()
	}
	wg.Wait()
	// Second burst: the client redials and renegotiates; all succeed.
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() { errs <- c.Ping() }()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("post-redial ping %d: %v", i, err)
		}
	}
	if got := c.Protocol(); got != "v2" {
		t.Fatalf("protocol after redial = %q, want v2", got)
	}
}

// TestMuxWindowBoundsInFlight: with a window of 1 the client degrades to
// lock-step over v2 — each request waits for a slot, and a concurrent burst
// still completes without deadlocking on the window semaphore.
func TestMuxWindowBoundsInFlight(t *testing.T) {
	addr := fakeV2Server(t, func(conn net.Conn, reader *bufio.Reader) {
		for {
			env, err := wire.ReadV2(reader)
			if err != nil {
				return
			}
			resp, _ := wire.V2Codec.Encode(wire.TypePong, env.ID, nil)
			if err := wire.WriteV2(conn, resp); err != nil {
				return
			}
		}
	})
	c, err := Dial(addr, WithProtocol(ProtoV2), WithWindow(1), WithTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.Ping(); err != nil {
				t.Errorf("ping: %v", err)
			}
		}()
	}
	wg.Wait()
}

// TestProtoV2RequiredFailsAgainstJSONServer: with the protocol pinned to v2
// a JSON-only server is a dial error, not a silent downgrade.
func TestProtoV2RequiredFailsAgainstJSONServer(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		// A pre-v2 server reads the hello as a garbage JSON line, answers
		// with the unattributable error frame, and closes.
		r := bufio.NewReader(conn)
		if _, err := wire.Read(r); err != nil {
			env, _ := wire.Encode(wire.TypeError, wire.UnattributableID,
				wire.ErrorResponse{Code: wire.CodeBadRequest, Message: "bad frame"})
			_ = wire.Write(conn, env)
		}
	})
	if _, err := Dial(addr, WithProtocol(ProtoV2), WithTimeout(time.Second)); !errors.Is(err, wire.ErrNotV2) {
		t.Fatalf("dial err = %v, want wire.ErrNotV2", err)
	}
}

// TestProtoAutoFallsBackToJSON: against the same pre-v2 server, ProtoAuto
// discards the failed handshake, redials, and completes requests over JSON.
func TestProtoAutoFallsBackToJSON(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer func() { _ = conn.Close() }()
				r := bufio.NewReader(conn)
				for {
					env, err := wire.Read(r)
					if err != nil {
						resp, _ := wire.Encode(wire.TypeError, wire.UnattributableID,
							wire.ErrorResponse{Code: wire.CodeBadRequest, Message: "bad frame"})
						_ = wire.Write(conn, resp)
						return
					}
					resp, _ := wire.Encode(wire.TypePong, env.ID, nil)
					if err := wire.Write(conn, resp); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	c, err := Dial(ln.Addr().String(), WithTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if got := c.Protocol(); got != "json" {
		t.Fatalf("protocol = %q, want json", got)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("ping over fallback connection: %v", err)
	}
}
