package stats

import (
	"math"
	"testing"
)

func TestCalibrateL1Deterministic(t *testing.T) {
	cfg := CalibrationConfig{Seed: 1, Replicates: 200}
	a, err := CalibrateL1(10, 20, 0.9, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CalibrateL1(10, 20, 0.9, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("calibration not deterministic: %v vs %v", a, b)
	}
	if a <= 0 || a >= 2 {
		t.Fatalf("epsilon = %v out of (0,2)", a)
	}
}

func TestCalibrateL1ShrinksWithWindows(t *testing.T) {
	// The null L1 distance concentrates as the number of windows grows, so
	// the 95% threshold must shrink (this is exactly Fig. 8's shape).
	cfg := CalibrationConfig{Seed: 2, Replicates: 400}
	small, err := CalibrateL1(10, 10, 0.9, cfg)
	if err != nil {
		t.Fatal(err)
	}
	large, err := CalibrateL1(10, 200, 0.9, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if large >= small {
		t.Fatalf("epsilon did not shrink: windows=10 -> %v, windows=200 -> %v", small, large)
	}
}

func TestCalibrateL1Validation(t *testing.T) {
	cfg := CalibrationConfig{Replicates: 10}
	if _, err := CalibrateL1(0, 10, 0.9, cfg); err == nil {
		t.Error("m=0 must fail")
	}
	if _, err := CalibrateL1(10, 0, 0.9, cfg); err == nil {
		t.Error("windows=0 must fail")
	}
	if _, err := CalibrateL1(10, 10, -1, cfg); err == nil {
		t.Error("pHat<0 must fail")
	}
	if _, err := CalibrateL1(10, 10, 2, cfg); err == nil {
		t.Error("pHat>1 must fail")
	}
}

func TestCalibrateL1HonestPassRate(t *testing.T) {
	// The defining property: ~confidence fraction of honest sample sets fall
	// under epsilon. Use an independent stream for the check.
	const (
		m       = 10
		windows = 50
		p       = 0.9
	)
	cfg := CalibrationConfig{Seed: 3, Replicates: 1000, Confidence: 0.95}
	eps, err := CalibrateL1(m, windows, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRNG(1234)
	b := MustBinomial(m, p)
	const trials = 2000
	pass := 0
	h := MustHistogram(m)
	for trial := 0; trial < trials; trial++ {
		h.Reset()
		for i := 0; i < windows; i++ {
			_ = h.Add(b.Sample(rng))
		}
		d, err := L1HistDistance(h, b)
		if err != nil {
			t.Fatal(err)
		}
		if d <= eps {
			pass++
		}
	}
	rate := float64(pass) / trials
	if rate < 0.92 || rate > 0.98 {
		t.Fatalf("honest pass rate = %v, want ~0.95", rate)
	}
}

func TestCalibratorCaching(t *testing.T) {
	c := NewCalibrator(CalibrationConfig{Seed: 4, Replicates: 100}, 0)
	e1, err := c.Threshold(10, 50, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if c.CacheSize() != 1 {
		t.Fatalf("cache size = %d, want 1", c.CacheSize())
	}
	// Same bucket (p within resolution, windows within geometric bucket).
	e2, err := c.Threshold(10, 51, 0.902)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Fatalf("bucketed thresholds differ: %v vs %v", e1, e2)
	}
	if c.CacheSize() != 1 {
		t.Fatalf("cache grew to %d for same bucket", c.CacheSize())
	}
	// Distant p lands in a different bucket.
	if _, err := c.Threshold(10, 50, 0.5); err != nil {
		t.Fatal(err)
	}
	if c.CacheSize() != 2 {
		t.Fatalf("cache size = %d, want 2", c.CacheSize())
	}
}

func TestCalibratorConcurrent(t *testing.T) {
	c := NewCalibrator(CalibrationConfig{Seed: 5, Replicates: 50}, 0)
	done := make(chan error)
	for g := 0; g < 8; g++ {
		go func(g int) {
			_, err := c.Threshold(10, 20+g, 0.9)
			done <- err
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestCalibratorInvalidWindows(t *testing.T) {
	c := NewCalibrator(CalibrationConfig{Replicates: 10}, 0)
	if _, err := c.Threshold(10, 0, 0.9); err == nil {
		t.Fatal("windows=0 must fail")
	}
}

func TestBucketWindows(t *testing.T) {
	tests := []struct {
		in int
	}{{1}, {2}, {4}, {5}, {10}, {100}, {1000}, {50000}}
	for _, tt := range tests {
		got := bucketWindows(tt.in)
		if got <= 0 {
			t.Errorf("bucketWindows(%d) = %d", tt.in, got)
		}
		// Bucket within 25% of the input (including grid rounding slack).
		ratio := float64(got) / float64(tt.in)
		if ratio < 0.75 || ratio > 1.35 {
			t.Errorf("bucketWindows(%d) = %d, ratio %v out of tolerance", tt.in, got, ratio)
		}
	}
	// Small values map to themselves.
	for w := 1; w <= 4; w++ {
		if bucketWindows(w) != w {
			t.Errorf("bucketWindows(%d) = %d, want identity", w, bucketWindows(w))
		}
	}
}

func TestCalibrateReestimateP(t *testing.T) {
	// Re-estimation mode must also produce a sane threshold, typically no
	// larger than the fixed-p mode (re-estimation absorbs mean error).
	fixed, err := CalibrateL1(10, 50, 0.9, CalibrationConfig{Seed: 6, Replicates: 400})
	if err != nil {
		t.Fatal(err)
	}
	re, err := CalibrateL1(10, 50, 0.9, CalibrationConfig{Seed: 6, Replicates: 400, ReestimateP: true})
	if err != nil {
		t.Fatal(err)
	}
	if re <= 0 || re >= 2 {
		t.Fatalf("reestimated epsilon = %v", re)
	}
	if re > fixed*1.25 {
		t.Fatalf("reestimated epsilon %v far above fixed %v", re, fixed)
	}
}

func TestCalibratorLargeWindowExtrapolation(t *testing.T) {
	c := NewCalibrator(CalibrationConfig{Seed: 7, Replicates: 100}, 0)
	c.maxWindows = 64
	base, err := c.Threshold(10, 64, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	big, err := c.Threshold(10, 64*4, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// 4x the windows -> threshold halves under the 1/sqrt(w) law.
	if math.Abs(big-base/2) > 1e-12 {
		t.Fatalf("extrapolated threshold = %v, want %v", big, base/2)
	}
	// Both served from one cached grid point.
	if c.CacheSize() != 1 {
		t.Fatalf("cache size = %d, want 1", c.CacheSize())
	}
}
