package wire

import (
	"bufio"
	"bytes"
	"testing"
	"time"

	"honestplayer/internal/feedback"
)

func BenchmarkEnvelopeRoundTrip(b *testing.B) {
	f := feedback.Feedback{
		Time: time.Unix(1, 0).UTC(), Server: "s", Client: "c", Rating: feedback.Positive,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env, err := Encode(TypeSubmit, uint64(i), SubmitRequest{Feedback: f})
		if err != nil {
			b.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, env); err != nil {
			b.Fatal(err)
		}
		got, err := Read(bufio.NewReader(&buf))
		if err != nil {
			b.Fatal(err)
		}
		var out SubmitRequest
		if err := DecodePayload(got, &out); err != nil {
			b.Fatal(err)
		}
	}
}
