package wire

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"honestplayer/internal/feedback"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := feedback.Feedback{
		Time: time.Unix(100, 0).UTC(), Server: "s", Client: "c", Rating: feedback.Positive,
	}
	env, err := Encode(TypeSubmit, 7, SubmitRequest{Feedback: f})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, env); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypeSubmit || got.ID != 7 || got.V != Version {
		t.Fatalf("envelope = %+v", got)
	}
	var req SubmitRequest
	if err := DecodePayload(got, &req); err != nil {
		t.Fatal(err)
	}
	if req.Feedback.Server != "s" || !req.Feedback.Time.Equal(f.Time) {
		t.Fatalf("payload = %+v", req)
	}
}

func TestWriteMultipleFrames(t *testing.T) {
	var buf bytes.Buffer
	for i := uint64(1); i <= 3; i++ {
		env, err := Encode(TypePing, i, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := Write(&buf, env); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(&buf)
	for i := uint64(1); i <= 3; i++ {
		env, err := Read(r)
		if err != nil {
			t.Fatal(err)
		}
		if env.ID != i {
			t.Fatalf("frame %d id = %d", i, env.ID)
		}
	}
	if _, err := Read(r); !errors.Is(err, io.EOF) {
		t.Fatalf("after last frame: %v", err)
	}
}

func TestReadMalformed(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want error
	}{
		{"not json", "{nope\n", ErrBadMessage},
		{"wrong version", `{"v":99,"type":"ping","id":1}` + "\n", ErrBadVersion},
		{"missing type", `{"v":1,"id":1}` + "\n", ErrBadMessage},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Read(bufio.NewReader(strings.NewReader(tt.in)))
			if !errors.Is(err, tt.want) {
				t.Fatalf("err = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestReadFrameTooLarge(t *testing.T) {
	big := strings.Repeat("x", MaxFrame+10)
	_, err := Read(bufio.NewReader(strings.NewReader(big)))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteFrameTooLarge(t *testing.T) {
	recs := make([]feedback.Feedback, 0, 100000)
	long := feedback.EntityID(strings.Repeat("e", 200))
	for i := 0; i < 100000; i++ {
		recs = append(recs, feedback.Feedback{
			Time: time.Unix(int64(i), 0), Server: long, Client: long, Rating: feedback.Positive,
		})
	}
	env, err := Encode(TypeHistoryR, 1, HistoryResponse{Records: recs, Total: len(recs)})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, env); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestErrorResponseIsError(t *testing.T) {
	e := &ErrorResponse{Code: "bad_request", Message: "nope"}
	msg := e.Error()
	if !strings.Contains(msg, "bad_request") || !strings.Contains(msg, "nope") {
		t.Fatalf("Error() = %q", msg)
	}
}

func TestDecodePayloadError(t *testing.T) {
	env := Envelope{V: Version, Type: TypeSubmit, Payload: []byte(`{"feedback":`)}
	var req SubmitRequest
	if err := DecodePayload(env, &req); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadAcrossBufferBoundary(t *testing.T) {
	// A frame longer than the bufio buffer must still be read whole.
	env, err := Encode(TypeDelta, 1, DeltaMsg{Records: manyRecords(t, 500)})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, env); err != nil {
		t.Fatal(err)
	}
	small := bufio.NewReaderSize(&buf, 16)
	got, err := Read(small)
	if err != nil {
		t.Fatal(err)
	}
	var delta DeltaMsg
	if err := DecodePayload(got, &delta); err != nil {
		t.Fatal(err)
	}
	if len(delta.Records) != 500 {
		t.Fatalf("records = %d", len(delta.Records))
	}
}

func TestAssessBatchRoundTrip(t *testing.T) {
	req := AssessBatchRequest{
		Servers:   []feedback.EntityID{"s1", "s2", "ghost"},
		Threshold: 0.85,
	}
	env, err := Encode(TypeAssessB, 9, req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, env); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypeAssessB || got.ID != 9 {
		t.Fatalf("envelope = %+v", got)
	}
	var decoded AssessBatchRequest
	if err := DecodePayload(got, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Servers) != 3 || decoded.Servers[2] != "ghost" || decoded.Threshold != 0.85 {
		t.Fatalf("payload = %+v", decoded)
	}
}

func TestAssessBatchResponsePerItemError(t *testing.T) {
	// A mixed response: one served item (with flags), one failed slot. The
	// per-item error must survive the round trip without disturbing its
	// siblings, and a successful item must not grow an error field.
	resp := AssessBatchResponse{Items: []AssessBatchItem{
		{Server: "s1", AssessResponse: AssessResponse{Accept: true, Incremental: true}},
		{Server: "ghost", Error: &ErrorResponse{Code: CodeUnknownServer, Message: `no records for "ghost"`}},
	}}
	env, err := Encode(TypeAssessBR, 4, resp)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, env); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	var decoded AssessBatchResponse
	if err := DecodePayload(got, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Items) != 2 {
		t.Fatalf("items = %d", len(decoded.Items))
	}
	ok, bad := decoded.Items[0], decoded.Items[1]
	if ok.Error != nil || !ok.Accept || !ok.Incremental || ok.Cached {
		t.Fatalf("served item = %+v", ok)
	}
	if bad.Error == nil || bad.Error.Code != CodeUnknownServer || bad.Accept {
		t.Fatalf("failed item = %+v", bad)
	}
	if !strings.Contains(string(env.Payload), `"error"`) {
		t.Fatal("error slot missing from encoded payload")
	}
	if strings.Count(string(env.Payload), `"error"`) != 1 {
		t.Fatalf("error field must be omitted on served items: %s", env.Payload)
	}
}

func TestMaxAssessBatchFitsFrame(t *testing.T) {
	// A max-size request with plausible IDs must stay far under MaxFrame —
	// the chunking client relies on the cap keeping frames legal.
	servers := make([]feedback.EntityID, MaxAssessBatch)
	for i := range servers {
		servers[i] = feedback.EntityID(strings.Repeat("s", 60) + string(rune('a'+i%26)))
	}
	env, err := Encode(TypeAssessB, 1, AssessBatchRequest{Servers: servers, Threshold: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, env); err != nil {
		t.Fatal(err)
	}
	if buf.Len() >= MaxFrame/4 {
		t.Fatalf("max batch request is %d bytes, uncomfortably close to MaxFrame", buf.Len())
	}
}

func manyRecords(t *testing.T, n int) []feedback.Feedback {
	t.Helper()
	recs := make([]feedback.Feedback, n)
	for i := range recs {
		recs[i] = feedback.Feedback{
			Time: time.Unix(int64(i), 0).UTC(), Server: "srv", Client: "c", Rating: feedback.Positive,
		}
	}
	return recs
}

// TestWriteMatchesEnvelopeMarshal pins the hand-spliced frame layout to the
// plain json.Marshal encoding of Envelope: Write avoids the second marshal
// pass but must stay byte-identical on the wire.
func TestWriteMatchesEnvelopeMarshal(t *testing.T) {
	envs := []Envelope{
		{V: Version, Type: TypePong, ID: 3},
		{V: Version, Type: TypeAssessR, ID: 9, Payload: []byte(`{"accept":true,"assessment":{"trust":0.97}}`)},
	}
	withPayload, err := Encode(TypeHistory, 12, HistoryRequest{Server: "s<&>", Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	envs = append(envs, withPayload)
	for _, env := range envs {
		want, err := json.Marshal(env)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, env); err != nil {
			t.Fatal(err)
		}
		if got := buf.String(); got != string(want)+"\n" {
			t.Errorf("frame mismatch:\n spliced: %q\n marshal: %q", got, string(want)+"\n")
		}
	}
}

// TestReadRawParse covers the split read path used by typed single-pass
// decoders: ReadRaw hands out the frame, Parse validates the envelope.
func TestReadRawParse(t *testing.T) {
	env, err := Encode(TypePing, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, env); err != nil {
		t.Fatal(err)
	}
	line, err := ReadRaw(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(line)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypePing || got.ID != 4 {
		t.Fatalf("parsed envelope = %+v", got)
	}
	if _, err := Parse([]byte(`{"v":99,"type":"ping","id":1}`)); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: %v", err)
	}
	if _, err := Parse([]byte(`not json`)); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("malformed: %v", err)
	}
}
