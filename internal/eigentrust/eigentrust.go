// Package eigentrust implements the EigenTrust / EigenRep algorithm
// (Kamvar, Schlosser, Garcia-Molina — reference [3] of the paper), the
// classic global reputation-aggregation baseline for P2P networks: each
// peer's local trust in its transaction partners is normalised into a
// stochastic matrix C, and the global trust vector t is the stationary
// distribution of tᵀ = (1−α)·tᵀC + α·pᵀ, where p is a distribution over
// pre-trusted peers and α the teleport weight that guarantees convergence
// and collusion resistance.
//
// The paper's two-phase approach is orthogonal to the choice of trust
// function; this package provides the strongest classical baseline to
// combine with (or compare against) behaviour testing.
package eigentrust

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"honestplayer/internal/feedback"
)

// Defaults mirror the EigenTrust paper's common choices.
const (
	// DefaultAlpha is the teleport (pre-trust) weight.
	DefaultAlpha = 0.15
	// DefaultEpsilon is the L1 convergence threshold.
	DefaultEpsilon = 1e-9
	// DefaultMaxIter bounds the power iteration.
	DefaultMaxIter = 200
)

// ErrBadConfig reports invalid algorithm parameters.
var ErrBadConfig = errors.New("eigentrust: invalid config")

// Graph accumulates local trust: the per-pair satisfaction statistics every
// peer holds about the peers it transacted with.
type Graph struct {
	// sat[i][j] = max(good−bad, 0) of i's transactions with j, the
	// EigenTrust local trust value s_ij.
	sat map[feedback.EntityID]map[feedback.EntityID]float64
}

// NewGraph returns an empty local-trust graph.
func NewGraph() *Graph {
	return &Graph{sat: make(map[feedback.EntityID]map[feedback.EntityID]float64)}
}

// AddInteraction records the outcome of one transaction where rater
// evaluated ratee. Good outcomes add +1 to s_ij, bad ones −1; s_ij is
// clamped at 0 when read, per the original definition.
func (g *Graph) AddInteraction(rater, ratee feedback.EntityID, good bool) {
	row, ok := g.sat[rater]
	if !ok {
		row = make(map[feedback.EntityID]float64)
		g.sat[rater] = row
	}
	if good {
		row[ratee]++
	} else {
		row[ratee]--
	}
}

// AddFeedback records a feedback tuple (the client rated the server).
func (g *Graph) AddFeedback(f feedback.Feedback) {
	g.AddInteraction(f.Client, f.Server, f.Good())
}

// Peers returns every entity that appears as rater or ratee, sorted.
func (g *Graph) Peers() []feedback.EntityID {
	seen := make(map[feedback.EntityID]struct{})
	for i, row := range g.sat {
		seen[i] = struct{}{}
		for j := range row {
			seen[j] = struct{}{}
		}
	}
	out := make([]feedback.EntityID, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// localTrust returns max(s_ij, 0).
func (g *Graph) localTrust(i, j feedback.EntityID) float64 {
	v := g.sat[i][j]
	if v < 0 {
		return 0
	}
	return v
}

// Config parameterises the computation.
type Config struct {
	// Alpha is the teleport weight in (0, 1); zero means DefaultAlpha.
	Alpha float64
	// Epsilon is the L1 convergence threshold; zero means DefaultEpsilon.
	Epsilon float64
	// MaxIter bounds the power iteration; zero means DefaultMaxIter.
	MaxIter int
	// Pretrusted are the peers receiving teleport mass; empty means all
	// peers equally (plain PageRank-style damping).
	Pretrusted []feedback.EntityID
}

func (c Config) withDefaults() (Config, error) {
	if c.Alpha == 0 {
		c.Alpha = DefaultAlpha
	}
	if c.Epsilon == 0 {
		c.Epsilon = DefaultEpsilon
	}
	if c.MaxIter == 0 {
		c.MaxIter = DefaultMaxIter
	}
	if math.IsNaN(c.Alpha) || c.Alpha <= 0 || c.Alpha >= 1 {
		return c, fmt.Errorf("%w: alpha=%v", ErrBadConfig, c.Alpha)
	}
	if c.Epsilon <= 0 || c.MaxIter < 1 {
		return c, fmt.Errorf("%w: epsilon=%v maxIter=%d", ErrBadConfig, c.Epsilon, c.MaxIter)
	}
	return c, nil
}

// Result carries the converged global trust vector.
type Result struct {
	// Trust maps each peer to its global trust value; the vector sums to 1.
	Trust map[feedback.EntityID]float64
	// Iterations the power method ran.
	Iterations int
	// Converged reports whether Epsilon was reached within MaxIter.
	Converged bool
}

// Ranked returns the peers in descending global-trust order (ties broken
// by ID for determinism).
func (r *Result) Ranked() []feedback.EntityID {
	out := make([]feedback.EntityID, 0, len(r.Trust))
	for p := range r.Trust {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		ti, tj := r.Trust[out[i]], r.Trust[out[j]]
		if ti != tj {
			return ti > tj
		}
		return out[i] < out[j]
	})
	return out
}

// Compute runs the power iteration on the graph's normalised local-trust
// matrix and returns the global trust vector. An empty graph yields an
// error.
func Compute(g *Graph, cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	peers := g.Peers()
	if len(peers) == 0 {
		return nil, fmt.Errorf("%w: empty graph", ErrBadConfig)
	}
	idx := make(map[feedback.EntityID]int, len(peers))
	for i, p := range peers {
		idx[p] = i
	}

	// Teleport distribution.
	pvec := make([]float64, len(peers))
	if len(cfg.Pretrusted) == 0 {
		for i := range pvec {
			pvec[i] = 1 / float64(len(peers))
		}
	} else {
		n := 0
		for _, p := range cfg.Pretrusted {
			if i, ok := idx[p]; ok {
				pvec[i]++
				n++
			}
		}
		if n == 0 {
			return nil, fmt.Errorf("%w: no pretrusted peer appears in the graph", ErrBadConfig)
		}
		for i := range pvec {
			pvec[i] /= float64(n)
		}
	}

	// Row-normalised local trust matrix in sparse form; rows with no
	// positive local trust (dangling raters and never-rating peers) fall
	// back to the teleport distribution.
	type edge struct {
		to int
		w  float64
	}
	rows := make([][]edge, len(peers))
	for i, p := range peers {
		var sum float64
		for j := range g.sat[p] {
			sum += g.localTrust(p, j)
		}
		if sum == 0 {
			continue // dangling: handled via pvec during iteration
		}
		for j := range g.sat[p] {
			if w := g.localTrust(p, j); w > 0 {
				rows[i] = append(rows[i], edge{to: idx[j], w: w / sum})
			}
		}
		sort.Slice(rows[i], func(a, b int) bool { return rows[i][a].to < rows[i][b].to })
	}

	t := make([]float64, len(peers))
	copy(t, pvec)
	next := make([]float64, len(peers))
	res := &Result{}
	for iter := 1; iter <= cfg.MaxIter; iter++ {
		var dangling float64
		for i := range next {
			next[i] = 0
		}
		for i := range peers {
			if len(rows[i]) == 0 {
				dangling += t[i]
				continue
			}
			for _, e := range rows[i] {
				next[e.to] += (1 - cfg.Alpha) * t[i] * e.w
			}
		}
		// Dangling mass and teleport both follow the pre-trust vector.
		for i := range next {
			next[i] += (1-cfg.Alpha)*dangling*pvec[i] + cfg.Alpha*pvec[i]
		}
		var delta float64
		for i := range next {
			delta += math.Abs(next[i] - t[i])
		}
		t, next = next, t
		res.Iterations = iter
		if delta < cfg.Epsilon {
			res.Converged = true
			break
		}
	}
	res.Trust = make(map[feedback.EntityID]float64, len(peers))
	for i, p := range peers {
		res.Trust[p] = t[i]
	}
	return res, nil
}
