// Package behavior implements phase 1 of the paper's two-phase trust
// assessment: testing whether a server's transaction history is consistent
// with the statistical model of honest players.
//
// An honest player with trustworthiness p produces i.i.d. Bernoulli(p)
// transaction outcomes, so the number of good transactions per window of m
// transactions follows B(m, p). The testers here estimate p̂ from the
// history, measure the L¹ distance between the empirical per-window
// good-count distribution and B(m, p̂), and compare it against a threshold ε
// calibrated so that honest players pass with the configured confidence
// (95 % by default).
//
// Three testers are provided, matching the paper's §3.2, §3.3 and §4:
//
//   - Single: one test over the whole history (Scheme 1).
//   - Multi: tests over the whole history and every suffix of the most
//     recent l−k, l−2k, … transactions (Scheme 2), in the optimised O(n)
//     formulation; MultiNaive is the O(n²) reference implementation.
//   - Collusion: the same tests applied to the history re-ordered by
//     feedback issuer, which forces colluders' feedback blocks next to each
//     other and exposes reputations propped up by fake feedback.
package behavior

import (
	"errors"
	"fmt"

	"honestplayer/internal/feedback"
	"honestplayer/internal/stats"
)

// Defaults used when a Config field is zero. The paper's experiments use
// transaction windows of size 10; four windows is the smallest sample the
// distribution test is applied to before a suffix is deemed statistically
// insignificant.
const (
	DefaultWindowSize = 10
	DefaultMinWindows = 4
)

// Errors returned by testers.
var (
	// ErrInsufficientHistory reports a history too short to test: fewer
	// than Config.MinWindows full windows. The paper treats servers with
	// short histories as a high-risk group needing other mechanisms (§7).
	ErrInsufficientHistory = errors.New("behavior: history too short to test")
	// ErrBadConfig reports an invalid configuration.
	ErrBadConfig = errors.New("behavior: invalid config")
)

// Config parameterises the behaviour testers.
type Config struct {
	// WindowSize is m, the number of transactions per window. Zero means
	// DefaultWindowSize.
	WindowSize int
	// MinWindows is the smallest number of windows a (suffix of a) history
	// must span to be testable. Zero means DefaultMinWindows.
	MinWindows int
	// Stride is the multi-testing step k in transactions: suffixes of
	// l, l−k, l−2k, … transactions are tested. It must be a positive
	// multiple of WindowSize so suffix windows align with full-history
	// windows. Zero means WindowSize.
	Stride int
	// Calibrator supplies the distance threshold ε. Nil means a private
	// calibrator with default settings.
	Calibrator *stats.Calibrator
	// ArenaCap caps the incremental accumulator's binomial PMF arena, in
	// entries per generation (rounded up to a power of two, minimum 16).
	// Zero means DefaultArenaCap; negative is invalid. The cap bounds
	// per-server memory: at the default cap of 32768 entries and m = 10 a
	// slot is m+1 = 11 float64s, so one generation is 32768 × 11 × 8 B ≈
	// 2.9 MiB and a server whose p̂ churn keeps both generations live tops
	// out near 6 MiB. Smaller caps trade recompute churn (generation
	// rotation) for memory; results are unaffected either way, since the
	// cached PMF is a pure function of its key. Only the Single, Multi and
	// MultiNaive accumulators carry an arena; the collusion testers use a
	// separate memo with its own fixed bound.
	ArenaCap int
	// FamilywiseCorrection applies a Bonferroni correction across the
	// suffixes of a multi-test: with k suffixes each individual test runs at
	// confidence 1 − (1−c)/k so the whole multi-test keeps an honest-player
	// pass rate of ≈ c. The paper calibrates each test at 95 % individually,
	// which compounds to a high false-positive rate on long histories —
	// dozens of suffixes, each with a 5 % miss chance. The correction is off
	// by default for fidelity to the paper; deployments that assess honest
	// servers continuously should enable it. It only affects the Multi and
	// CollusionMulti testers (MultiNaive stays uncorrected — it is the
	// paper-exact reference implementation).
	FamilywiseCorrection bool
}

func (c Config) withDefaults() (Config, error) {
	if c.WindowSize == 0 {
		c.WindowSize = DefaultWindowSize
	}
	if c.MinWindows == 0 {
		c.MinWindows = DefaultMinWindows
	}
	if c.Stride == 0 {
		c.Stride = c.WindowSize
	}
	if c.Calibrator == nil {
		c.Calibrator = stats.NewCalibrator(stats.CalibrationConfig{}, 0)
	}
	if c.WindowSize < 1 {
		return c, fmt.Errorf("%w: window size %d", ErrBadConfig, c.WindowSize)
	}
	if c.MinWindows < 1 {
		return c, fmt.Errorf("%w: min windows %d", ErrBadConfig, c.MinWindows)
	}
	if c.Stride < 1 || c.Stride%c.WindowSize != 0 {
		return c, fmt.Errorf("%w: stride %d not a positive multiple of window size %d",
			ErrBadConfig, c.Stride, c.WindowSize)
	}
	if c.ArenaCap < 0 {
		return c, fmt.Errorf("%w: arena cap %d", ErrBadConfig, c.ArenaCap)
	}
	if c.ArenaCap == 0 {
		c.ArenaCap = DefaultArenaCap
	}
	return c, nil
}

// SuffixResult records the outcome of the distribution test over one suffix
// of the history.
type SuffixResult struct {
	// Transactions is the suffix length in transactions considered.
	Transactions int `json:"transactions"`
	// Windows is the number of full windows the test spanned.
	Windows int `json:"windows"`
	// PHat is the estimated trustworthiness over the suffix.
	PHat float64 `json:"pHat"`
	// Distance is the L¹ distance between the empirical window distribution
	// and B(m, PHat).
	Distance float64 `json:"distance"`
	// Threshold is the calibrated ε the distance was compared against.
	Threshold float64 `json:"threshold"`
	// Pass reports Distance <= Threshold.
	Pass bool `json:"pass"`
}

// Verdict is the outcome of a behaviour test.
type Verdict struct {
	// Honest reports whether every tested suffix was consistent with the
	// honest-player model.
	Honest bool `json:"honest"`
	// Suffixes holds the per-suffix results, longest suffix first. A single
	// test has exactly one entry.
	Suffixes []SuffixResult `json:"suffixes"`
}

// Worst returns the suffix result with the largest Distance−Threshold
// margin (the most suspicious suffix), or a zero result if none were tested.
func (v Verdict) Worst() SuffixResult {
	var worst SuffixResult
	first := true
	for _, s := range v.Suffixes {
		if first || s.Distance-s.Threshold > worst.Distance-worst.Threshold {
			worst = s
			first = false
		}
	}
	return worst
}

// Tester decides whether a transaction history is consistent with the
// honest-player model.
type Tester interface {
	// Name identifies the tester in reports and experiment output.
	Name() string
	// Test evaluates the history. It returns ErrInsufficientHistory when
	// the history spans fewer than the configured minimum of windows.
	Test(h *feedback.History) (Verdict, error)
}

// testWindowCounts runs the core distribution test over a set of per-window
// good counts: estimate p̂, compare the empirical distribution against
// B(m, p̂), fetch ε from the calibrator.
func testWindowCounts(cfg Config, counts []int) (SuffixResult, error) {
	m := cfg.WindowSize
	res := SuffixResult{Transactions: len(counts) * m, Windows: len(counts)}
	h := stats.MustHistogram(m)
	if err := h.AddAll(counts); err != nil {
		return res, err
	}
	return testHistogram(cfg, h, 0)
}

// testHistogram is testWindowCounts on an already-built histogram; it is
// the shared hot path of the single and optimised multi testers. A zero
// confidence selects the calibrator's configured level.
func testHistogram(cfg Config, h *stats.Histogram, confidence float64) (SuffixResult, error) {
	m := cfg.WindowSize
	k := int(h.Total())
	res := SuffixResult{Transactions: k * m, Windows: k}
	res.PHat = float64(h.Sum()) / float64(m*k)
	ref, err := stats.NewBinomial(m, res.PHat)
	if err != nil {
		return res, err
	}
	res.Distance, err = stats.L1HistDistance(h, ref)
	if err != nil {
		return res, err
	}
	if confidence == 0 {
		res.Threshold, err = cfg.Calibrator.Threshold(m, k, res.PHat)
	} else {
		res.Threshold, err = cfg.Calibrator.ThresholdAt(m, k, res.PHat, confidence)
	}
	if err != nil {
		return res, err
	}
	res.Pass = res.Distance <= res.Threshold
	return res, nil
}

// suffixConfidence returns the per-suffix confidence for a multi-test over
// numSuffixes suffixes: the Bonferroni-corrected level when the correction
// is enabled, otherwise 0 (calibrator default).
func (c Config) suffixConfidence(numSuffixes int) float64 {
	if !c.FamilywiseCorrection || numSuffixes <= 1 {
		return 0
	}
	base := c.Calibrator.Config().Confidence
	return 1 - (1-base)/float64(numSuffixes)
}

// Single implements Scheme 1: one distribution test over the whole history
// (Fig. 2 of the paper).
type Single struct {
	cfg Config
}

var _ Tester = (*Single)(nil)

// NewSingle returns a Scheme-1 tester.
func NewSingle(cfg Config) (*Single, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Single{cfg: cfg}, nil
}

// Name implements Tester.
func (s *Single) Name() string { return "single" }

// Config returns the effective configuration.
func (s *Single) Config() Config { return s.cfg }

// Test implements Tester.
//
// Windows are aligned to the newest record (any partial window of the
// oldest records is dropped). The paper breaks the history sequentially
// from the front; end-alignment is a deliberate, defender-favouring
// refinement — it guarantees the most recent transactions are always
// inside a tested window — and is what makes the optimised multi-testing
// suffixes share window boundaries with the full history.
func (s *Single) Test(h *feedback.History) (Verdict, error) {
	counts, err := h.WindowCountsFromEnd(s.cfg.WindowSize)
	if err != nil {
		return Verdict{}, err
	}
	if len(counts) < s.cfg.MinWindows {
		return Verdict{}, fmt.Errorf("%w: %d windows < %d", ErrInsufficientHistory, len(counts), s.cfg.MinWindows)
	}
	res, err := testWindowCounts(s.cfg, counts)
	if err != nil {
		return Verdict{}, err
	}
	return Verdict{Honest: res.Pass, Suffixes: []SuffixResult{res}}, nil
}

// Multi implements Scheme 2 with the incremental-statistics optimisation of
// §5.5: the history and every suffix of the most recent l−k, l−2k, …
// transactions are tested, and a server is honest only if every suffix
// passes. Window counts are computed once; each suffix reuses the suffix of
// that table, so the whole run costs O(n) for constant window size.
type Multi struct {
	cfg Config
}

var _ Tester = (*Multi)(nil)

// NewMulti returns an optimised Scheme-2 tester.
func NewMulti(cfg Config) (*Multi, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Multi{cfg: cfg}, nil
}

// Name implements Tester.
func (m *Multi) Name() string { return "multi" }

// Config returns the effective configuration.
func (m *Multi) Config() Config { return m.cfg }

// Test implements Tester.
func (m *Multi) Test(h *feedback.History) (Verdict, error) {
	cfg := m.cfg
	counts, err := h.WindowCountsFromEnd(cfg.WindowSize)
	if err != nil {
		return Verdict{}, err
	}
	if len(counts) < cfg.MinWindows {
		return Verdict{}, fmt.Errorf("%w: %d windows < %d", ErrInsufficientHistory, len(counts), cfg.MinWindows)
	}
	windowsPerStride := cfg.Stride / cfg.WindowSize

	// Shortest admissible suffix first: the most recent MinWindows..
	// windows, growing toward the full history. The histogram gains
	// windows incrementally; each suffix test is O(m).
	hist := stats.MustHistogram(cfg.WindowSize)
	total := len(counts)
	// Suffix window counts are counts[total-w:]; enumerate the admissible
	// suffix sizes w: total, total-ws, total-2·ws, … >= MinWindows, where
	// ws = windowsPerStride. Build from the smallest upward.
	var sizes []int
	for w := total; w >= cfg.MinWindows; w -= windowsPerStride {
		sizes = append(sizes, w)
	}
	// Reverse iterate: smallest first.
	confidence := cfg.suffixConfidence(len(sizes))
	results := make([]SuffixResult, len(sizes))
	next := total // index one past the last window not yet in hist
	for i := len(sizes) - 1; i >= 0; i-- {
		w := sizes[i]
		for next > total-w {
			next--
			if err := hist.Add(counts[next]); err != nil {
				return Verdict{}, err
			}
		}
		res, err := testHistogram(cfg, hist, confidence)
		if err != nil {
			return Verdict{}, err
		}
		results[i] = res
	}
	v := Verdict{Honest: true, Suffixes: results}
	for _, r := range results {
		if !r.Pass {
			v.Honest = false
			break
		}
	}
	return v, nil
}

// MultiNaive is the unoptimised O(n²) formulation of Scheme 2 from §3.3: it
// re-runs the single test from scratch on every suffix. It exists as the
// reference implementation for equivalence testing and as the ablation
// baseline of the Fig. 9 performance experiment.
type MultiNaive struct {
	cfg    Config
	single *Single
}

var _ Tester = (*MultiNaive)(nil)

// NewMultiNaive returns the reference Scheme-2 tester.
func NewMultiNaive(cfg Config) (*MultiNaive, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	single, err := NewSingle(cfg)
	if err != nil {
		return nil, err
	}
	return &MultiNaive{cfg: cfg, single: single}, nil
}

// Name implements Tester.
func (m *MultiNaive) Name() string { return "multi-naive" }

// Test implements Tester.
func (m *MultiNaive) Test(h *feedback.History) (Verdict, error) {
	cfg := m.cfg
	usable := (h.Len() / cfg.WindowSize) * cfg.WindowSize
	if usable/cfg.WindowSize < cfg.MinWindows {
		return Verdict{}, fmt.Errorf("%w: %d windows < %d", ErrInsufficientHistory, usable/cfg.WindowSize, cfg.MinWindows)
	}
	v := Verdict{Honest: true}
	for n := usable; n/cfg.WindowSize >= cfg.MinWindows; n -= cfg.Stride {
		sub, err := m.single.Test(h.SuffixView(n))
		if err != nil {
			return Verdict{}, err
		}
		v.Suffixes = append(v.Suffixes, sub.Suffixes...)
		if !sub.Honest {
			v.Honest = false
		}
	}
	return v, nil
}
