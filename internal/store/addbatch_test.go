package store

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"honestplayer/internal/feedback"
)

// batchWorkload builds a mixed batch: valid records spread over many servers
// (so shard grouping fans out), in-batch duplicates, a record duplicating
// pre-existing state, and invalid records at known positions.
func batchWorkload(servers, n int) []feedback.Feedback {
	recs := make([]feedback.Feedback, 0, n+4)
	for i := 0; i < n; i++ {
		recs = append(recs, accFeedback(
			feedback.EntityID(fmt.Sprintf("s%03d", i%servers)),
			feedback.EntityID(fmt.Sprintf("c%02d", i%7)), i, i%3 != 0))
	}
	recs = append(recs, recs[3])             // in-batch duplicate
	recs = append(recs, feedback.Feedback{}) // invalid: zero record
	recs = append(recs, recs[10])            // another in-batch duplicate
	recs = append(recs, accFeedback("s000", "c00", n+1, true))
	return recs
}

// fingerprint captures the observable per-server state of a store.
func fingerprint(s *Store) map[feedback.EntityID]any {
	fp := make(map[feedback.EntityID]any)
	for _, sv := range s.Servers() {
		fp[sv] = struct {
			Recs    []feedback.Feedback
			Version uint64
		}{s.Records(sv), s.Version(sv)}
	}
	return fp
}

// TestAddBatchMatchesSequentialAdd proves AddBatch is observably identical to
// a sequential Add loop — same per-record outcomes (stored, duplicate,
// invalid), same final histories, versions, and accumulator feeds — at
// several worker counts, including the parallel shard fan-out.
func TestAddBatchMatchesSequentialAdd(t *testing.T) {
	for _, workers := range []int{0, 1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			recs := batchWorkload(13, 100)

			seq := NewSharded(8)
			seqAccs := installRecordingAccs(seq)
			var want []AddResult
			for _, f := range recs {
				ok, err := seq.Add(f)
				want = append(want, AddResult{Stored: ok, Err: err})
			}

			bat := NewSharded(8)
			batAccs := installRecordingAccs(bat)
			got := bat.AddBatch(recs, workers)

			if len(got) != len(want) {
				t.Fatalf("AddBatch returned %d results, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i].Stored != want[i].Stored || (got[i].Err == nil) != (want[i].Err == nil) {
					t.Fatalf("record %d: batch {stored=%v err=%v} vs sequential {stored=%v err=%v}",
						i, got[i].Stored, got[i].Err, want[i].Stored, want[i].Err)
				}
			}
			if !reflect.DeepEqual(fingerprint(seq), fingerprint(bat)) {
				t.Fatal("store state diverges between AddBatch and sequential Add")
			}
			if !reflect.DeepEqual(accFeeds(seqAccs), accFeeds(batAccs)) {
				t.Fatal("accumulator feeds diverge between AddBatch and sequential Add")
			}
		})
	}
}

// installRecordingAccs gives every server a recording accumulator and returns
// the shared registry (guarded by its own mutex: AddBatch mints from multiple
// worker goroutines).
func installRecordingAccs(s *Store) *sync.Map {
	var reg sync.Map
	s.SetAccumulatorFactory(func(server feedback.EntityID) Accumulator {
		acc := &recordingAcc{server: server}
		reg.Store(server, acc)
		return acc
	})
	return &reg
}

// accFeeds flattens the registry into comparable per-server feed slices.
func accFeeds(reg *sync.Map) map[feedback.EntityID][]feedback.Feedback {
	out := make(map[feedback.EntityID][]feedback.Feedback)
	reg.Range(func(k, v any) bool {
		out[k.(feedback.EntityID)] = v.(*recordingAcc).recs
		return true
	})
	return out
}

// TestAddBatchEmptyAndAllInvalid covers the degenerate shapes: an empty batch
// returns no results and mutates nothing; an all-invalid batch reports every
// error without touching the store.
func TestAddBatchEmptyAndAllInvalid(t *testing.T) {
	s := New()
	if got := s.AddBatch(nil, 4); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
	bad := []feedback.Feedback{{}, {}}
	got := s.AddBatch(bad, 4)
	if len(got) != 2 {
		t.Fatalf("got %d results, want 2", len(got))
	}
	for i, r := range got {
		if r.Stored || r.Err == nil {
			t.Fatalf("invalid record %d: stored=%v err=%v", i, r.Stored, r.Err)
		}
	}
	if len(s.Servers()) != 0 {
		t.Fatal("invalid batch mutated the store")
	}
}

// TestAddBatchConcurrentWithAdd runs AddBatch concurrently with single Adds
// and reads — the -race job's target — and checks nothing is lost: every
// unique record is stored exactly once across all callers.
func TestAddBatchConcurrentWithAdd(t *testing.T) {
	s := NewSharded(8)
	const (
		goroutines = 4
		perBatch   = 50
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := g * 10_000
			recs := make([]feedback.Feedback, perBatch)
			for i := range recs {
				recs[i] = accFeedback(
					feedback.EntityID(fmt.Sprintf("s%02d", i%5)),
					feedback.EntityID(fmt.Sprintf("g%d", g)), base+i, true)
			}
			for _, r := range s.AddBatch(recs, 2) {
				if !r.Stored || r.Err != nil {
					t.Errorf("goroutine %d: stored=%v err=%v", g, r.Stored, r.Err)
					return
				}
			}
		}(g)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := 100_000 + g*10_000
			for i := 0; i < perBatch; i++ {
				f := accFeedback("solo", feedback.EntityID(fmt.Sprintf("a%d", g)), base+i, true)
				if ok, err := s.Add(f); !ok || err != nil {
					t.Errorf("goroutine %d Add: ok=%v err=%v", g, ok, err)
					return
				}
				_ = s.Version("solo")
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, sv := range s.Servers() {
		total += len(s.Records(sv))
	}
	if want := 2 * goroutines * perBatch; total != want {
		t.Fatalf("store holds %d records, want %d", total, want)
	}
}
