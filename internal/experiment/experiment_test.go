package experiment

import (
	"strings"
	"testing"
)

func TestResultTableAndCSV(t *testing.T) {
	r := &Result{
		ID:     "figX",
		Title:  "demo",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Name: "a", Points: []Point{{X: 1, Y: 2}, {X: 2, Y: 3.5}}},
			{Name: "b", Points: []Point{{X: 1, Y: 4}}},
		},
		Notes: []string{"hello"},
	}
	table := r.Table()
	for _, want := range []string{"FIGX", "demo", "a", "b", "3.5", "note: hello"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	csv := r.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), csv)
	}
	if lines[0] != "x,a,b" {
		t.Errorf("csv header = %q", lines[0])
	}
	if lines[1] != "1,2,4" {
		t.Errorf("csv row 1 = %q", lines[1])
	}
	// Series b has no point at x=2: empty cell.
	if lines[2] != "2,3.5," {
		t.Errorf("csv row 2 = %q", lines[2])
	}
}

func TestFormatFloat(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{1, "1"}, {800, "800"}, {0.95, "0.95"}, {3.5, "3.5"},
	}
	for _, tt := range tests {
		if got := formatFloat(tt.in); got != tt.want {
			t.Errorf("formatFloat(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestRegistryIDs(t *testing.T) {
	ids := IDs()
	want := append(AblationIDs(), FigureIDs()...)
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", ids, want)
		}
	}
	// Every ID resolves to a runner.
	reg := Registry()
	for _, id := range ids {
		if reg[id] == nil {
			t.Fatalf("no runner for %s", id)
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if _, err := Run("fig99", Options{}); err == nil {
		t.Fatal("unknown figure must fail")
	}
}

func TestRunFig8Shape(t *testing.T) {
	res, err := RunFig8(ThresholdConfig{
		HistorySizes: []int{100, 400, 1600},
		PHats:        []float64{0.9},
		Replicates:   300,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 1 || len(res.Series[0].Points) != 3 {
		t.Fatalf("series shape: %+v", res.Series)
	}
	pts := res.Series[0].Points
	// Paper shape: epsilon converges (decreases) as history grows.
	if !(pts[0].Y > pts[1].Y && pts[1].Y > pts[2].Y) {
		t.Fatalf("epsilon not decreasing: %+v", pts)
	}
	if pts[2].Y <= 0 || pts[0].Y >= 2 {
		t.Fatalf("epsilon out of range: %+v", pts)
	}
}

func TestRunFig7Shape(t *testing.T) {
	res, err := RunFig7(DetectionConfig{
		WindowSizes:           []int{10, 80},
		Trials:                60,
		Seed:                  2,
		CalibrationReplicates: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series = %d", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) != 2 {
			t.Fatalf("%s points = %d", s.Name, len(s.Points))
		}
		at10, at80 := s.Points[0].Y, s.Points[1].Y
		// Paper shape: detection decays with window size; at N=10 the
		// pattern is far from binomial and detection is high.
		if at10 < 0.5 {
			t.Errorf("%s: detection at N=10 = %v, want high", s.Name, at10)
		}
		if at80 >= at10 {
			t.Errorf("%s: detection did not decay: N=10 %v vs N=80 %v", s.Name, at10, at80)
		}
	}
}

func TestRunFig3QuickShape(t *testing.T) {
	res, err := RunFig3(CostConfig{
		PrepSizes:             []int{100, 600},
		GoalBad:               10,
		Trials:                1,
		Seed:                  3,
		CalibrationReplicates: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("series = %d", len(res.Series))
	}
	get := func(name string, x float64) float64 {
		for _, s := range res.Series {
			if s.Name == name {
				y, ok := s.at(x)
				if !ok {
					t.Fatalf("%s missing x=%v", name, x)
				}
				return y
			}
		}
		t.Fatalf("missing series %s", name)
		return 0
	}
	// Bare average collapses to ~0 at large prep (hibernating attack).
	if got := get("average", 600); got > 3 {
		t.Errorf("average cost at prep 600 = %v, want ~0", got)
	}
	// Multi-testing keeps the cost strictly positive at large prep.
	if got := get("scheme2+average", 600); got <= 3 {
		t.Errorf("scheme2 cost at prep 600 = %v, want substantial", got)
	}
}

func TestRunFig5QuickShape(t *testing.T) {
	res, err := RunFig5(CollusionConfig{
		PrepSizes:             []int{300},
		GoalBad:               10,
		Trials:                1,
		Seed:                  4,
		CalibrationReplicates: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) float64 {
		for _, s := range res.Series {
			if s.Name == name {
				return s.Points[0].Y
			}
		}
		t.Fatalf("missing series %s", name)
		return 0
	}
	// Without testing, colluders make the attack free.
	if got := get("average"); got != 0 {
		t.Errorf("bare average collusion cost = %v, want 0", got)
	}
	// Collusion-resilient multi-testing forces real services.
	if got := get("scheme2+average"); got == 0 {
		t.Errorf("scheme2 collusion cost = %v, want > 0", got)
	}
}

func TestRunFig9Small(t *testing.T) {
	res, err := RunFig9(PerfConfig{
		HistorySizes:          []int{20000, 40000},
		NaiveSizes:            []int{2000, 4000},
		Repeats:               1,
		Seed:                  5,
		CalibrationReplicates: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("series = %d", len(res.Series))
	}
	for _, s := range res.Series {
		for _, p := range s.Points {
			if p.Y < 0 {
				t.Errorf("%s: negative time %v", s.Name, p.Y)
			}
		}
	}
}

func TestRunAblationCorrectionShape(t *testing.T) {
	res, err := RunAblationCorrection(AblationCorrectionConfig{
		HistorySizes:          []int{200, 1200},
		Trials:                40,
		Seed:                  9,
		CalibrationReplicates: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string, i int) float64 {
		for _, s := range res.Series {
			if s.Name == name {
				return s.Points[i].Y
			}
		}
		t.Fatalf("missing series %q", name)
		return 0
	}
	// Uncorrected pass rate collapses on long histories; corrected stays
	// reasonably high.
	uncorrLong := get("uncorrected (paper)", 1)
	corrLong := get("bonferroni-corrected", 1)
	if corrLong <= uncorrLong {
		t.Fatalf("correction did not help: corrected=%v uncorrected=%v", corrLong, uncorrLong)
	}
	if corrLong < 0.7 {
		t.Fatalf("corrected pass rate = %v, want >= 0.7", corrLong)
	}
}

func TestRunAblationReplicatesShape(t *testing.T) {
	res, err := RunAblationReplicates(AblationReplicatesConfig{
		ReplicateCounts: []int{50, 1000},
		Resamples:       10,
		Seed:            11,
	})
	if err != nil {
		t.Fatal(err)
	}
	var spread Series
	for _, s := range res.Series {
		if s.Name == "epsilon spread (P95-P05)" {
			spread = s
		}
	}
	if len(spread.Points) != 2 {
		t.Fatalf("spread points = %d", len(spread.Points))
	}
	// More replicates -> tighter estimate.
	if spread.Points[1].Y >= spread.Points[0].Y {
		t.Fatalf("spread did not shrink: %v -> %v", spread.Points[0].Y, spread.Points[1].Y)
	}
}

func TestRunAblationWindowShape(t *testing.T) {
	res, err := RunAblationWindow(AblationWindowConfig{
		WindowSizes:           []int{10, 50},
		Trials:                30,
		Seed:                  13,
		CalibrationReplicates: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series = %d", len(res.Series))
	}
	for _, s := range res.Series {
		for _, p := range s.Points {
			if p.Y < 0 || p.Y > 1 {
				t.Fatalf("%s rate %v out of [0,1]", s.Name, p.Y)
			}
		}
	}
}

func TestPlot(t *testing.T) {
	r := &Result{
		ID: "figX", Title: "demo", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "up", Points: []Point{{X: 0, Y: 0}, {X: 50, Y: 50}, {X: 100, Y: 100}}},
			{Name: "down", Points: []Point{{X: 0, Y: 100}, {X: 50, Y: 50}, {X: 100, Y: 0}}},
		},
	}
	p := r.Plot()
	for _, want := range []string{"FIGX", "up", "down", "*", "o", "x: x, y: y"} {
		if !strings.Contains(p, want) {
			t.Errorf("plot missing %q:\n%s", want, p)
		}
	}
	// Overlap at the midpoint is marked.
	if !strings.Contains(p, "&") {
		t.Errorf("plot missing overlap marker:\n%s", p)
	}
	if got := (&Result{}).Plot(); !strings.Contains(got, "no data") {
		t.Errorf("empty plot = %q", got)
	}
	// Flat series must not divide by zero.
	flat := &Result{ID: "f", Series: []Series{{Name: "c", Points: []Point{{X: 1, Y: 5}, {X: 2, Y: 5}}}}}
	if out := flat.Plot(); out == "" {
		t.Error("flat plot empty")
	}
}

func TestRunAblationCUSUMShape(t *testing.T) {
	res, err := RunAblationCUSUM(AblationCUSUMConfig{
		PostQualities:         []float64{0},
		Trials:                15,
		Seed:                  17,
		CalibrationReplicates: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series = %d", len(res.Series))
	}
	for _, s := range res.Series {
		// A turn to all-bad must be detected quickly by both detectors.
		if s.Points[0].Y > 60 {
			t.Errorf("%s: delay %v at q=0, want quick detection", s.Name, s.Points[0].Y)
		}
	}
}

func TestRunAblationLambdaShape(t *testing.T) {
	res, err := RunAblationLambda(AblationLambdaConfig{
		Lambdas:               []float64{0.5},
		GoalBad:               5,
		Trials:                1,
		Seed:                  19,
		CalibrationReplicates: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) float64 {
		for _, s := range res.Series {
			if s.Name == name {
				return s.Points[0].Y
			}
		}
		t.Fatalf("missing %q", name)
		return 0
	}
	if get("scheme2+weighted") < get("weighted") {
		t.Fatalf("testing lowered cost: %v < %v", get("scheme2+weighted"), get("weighted"))
	}
}

func TestRunFig4QuickShape(t *testing.T) {
	res, err := RunFig4(CostConfig{
		PrepSizes:             []int{200},
		GoalBad:               5,
		Trials:                1,
		Seed:                  21,
		CalibrationReplicates: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) float64 {
		for _, s := range res.Series {
			if s.Name == name {
				return s.Points[0].Y
			}
		}
		t.Fatalf("missing %q", name)
		return 0
	}
	// The weighted baseline costs ~2-3 good per bad.
	bare := get("weighted(λ=0.5)")
	if bare < 5 || bare > 25 {
		t.Errorf("weighted baseline cost = %v for 5 attacks, want ~10-15", bare)
	}
	if get("scheme2+weighted(λ=0.5)") < bare {
		t.Errorf("scheme2 below bare weighted")
	}
}

func TestRunFig6QuickShape(t *testing.T) {
	res, err := RunFig6(CollusionConfig{
		PrepSizes:             []int{200},
		GoalBad:               5,
		Trials:                1,
		Seed:                  23,
		CalibrationReplicates: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		if s.Name == "weighted(λ=0.5)" && s.Points[0].Y != 0 {
			t.Errorf("bare weighted collusion cost = %v, want 0", s.Points[0].Y)
		}
	}
}
