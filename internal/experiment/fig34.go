package experiment

import (
	"errors"
	"fmt"

	"honestplayer/internal/attack"
	"honestplayer/internal/behavior"
	"honestplayer/internal/core"
	"honestplayer/internal/stats"
	"honestplayer/internal/trust"
)

// CostConfig parameterises the attacker-cost experiments of Figs. 3 and 4:
// how many good transactions a strategic attacker must conduct to land
// GoalBad bad ones, as a function of its preparation-history size, under
// three defences: the bare trust function, Scheme 1 (single behaviour
// testing) + trust function, and Scheme 2 (multi-testing) + trust function.
type CostConfig struct {
	// PrepSizes is the x axis; nil means {100 … 800}.
	PrepSizes []int
	// GoalBad is M; zero means 20.
	GoalBad int
	// PrepP is the preparation trustworthiness; zero means 0.95.
	PrepP float64
	// Threshold is the clients' trust threshold; zero means 0.9.
	Threshold float64
	// Trials averages the attacker cost over this many seeded runs; zero
	// means 3.
	Trials int
	// Seed drives all randomness.
	Seed uint64
	// CalibrationReplicates tunes the Monte-Carlo ε estimation; zero means
	// 500.
	CalibrationReplicates int
}

func (c CostConfig) withDefaults() CostConfig {
	if c.PrepSizes == nil {
		c.PrepSizes = defaultPrepSizes()
	}
	if c.GoalBad == 0 {
		c.GoalBad = DefaultGoalBad
	}
	if c.PrepP == 0 {
		c.PrepP = DefaultPrepP
	}
	if c.Threshold == 0 {
		c.Threshold = DefaultThreshold
	}
	if c.Trials == 0 {
		c.Trials = 3
	}
	return c
}

// RunFig3 regenerates Fig. 3: attacker cost vs. initial history size under
// the average trust function.
func RunFig3(cfg CostConfig) (*Result, error) {
	return runCostFigure("fig3", "Cost of attackers when varying initial histories: average function",
		trust.Average{}, cfg)
}

// RunFig4 regenerates Fig. 4: attacker cost vs. initial history size under
// the weighted trust function (λ = 0.5).
func RunFig4(cfg CostConfig) (*Result, error) {
	w, err := trust.NewWeighted(DefaultLambda)
	if err != nil {
		return nil, err
	}
	return runCostFigure("fig4", "Cost of attackers when varying initial histories: weighted function",
		w, cfg)
}

func runCostFigure(id, title string, fn trust.Func, cfg CostConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	cal := newCalibrator(cfg.Seed+1000, cfg.CalibrationReplicates)
	bcfg := behavior.Config{WindowSize: DefaultWindowSize, Calibrator: cal}

	single, err := behavior.NewSingle(bcfg)
	if err != nil {
		return nil, err
	}
	multi, err := behavior.NewMulti(bcfg)
	if err != nil {
		return nil, err
	}
	schemes := []struct {
		name   string
		tester behavior.Tester
	}{
		{fn.Name(), nil},
		{"scheme1+" + fn.Name(), single},
		{"scheme2+" + fn.Name(), multi},
	}

	res := &Result{
		ID:     id,
		Title:  title,
		XLabel: "initial history size",
		YLabel: fmt.Sprintf("good transactions to launch %d attacks", cfg.GoalBad),
	}
	for _, sch := range schemes {
		assessor, err := core.NewTwoPhase(sch.tester, fn)
		if err != nil {
			return nil, err
		}
		series := Series{Name: sch.name}
		for _, prep := range cfg.PrepSizes {
			mean, note, err := meanStrategicCost(assessor, cfg, prep)
			if err != nil {
				return nil, fmt.Errorf("%s prep=%d: %w", sch.name, prep, err)
			}
			if note != "" {
				res.Notes = append(res.Notes, note)
			}
			series.Points = append(series.Points, Point{X: float64(prep), Y: mean})
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// meanStrategicCost runs the strategic attacker cfg.Trials times against
// one defence and returns the mean number of good transactions needed.
// Runs that exhaust the step budget contribute their (lower-bound) cost and
// a note.
func meanStrategicCost(assessor *core.TwoPhase, cfg CostConfig, prep int) (float64, string, error) {
	total := 0
	note := ""
	for trial := 0; trial < cfg.Trials; trial++ {
		seed := cfg.Seed ^ (uint64(prep)<<20 + uint64(trial))
		rng := stats.NewRNG(seed)
		h, err := attack.PrepareHistory("attacker", prep, cfg.PrepP, 50, rng)
		if err != nil {
			return 0, "", err
		}
		s := &attack.Strategic{
			Assessor:  assessor,
			Threshold: cfg.Threshold,
			GoalBad:   cfg.GoalBad,
			MaxSteps:  500 * cfg.GoalBad,
		}
		cost, err := s.Run(h, rng)
		switch {
		case errors.Is(err, attack.ErrGoalUnreachable):
			note = fmt.Sprintf("%s: goal unreachable within budget at prep=%d (cost is a lower bound)",
				assessor.Name(), prep)
		case err != nil:
			return 0, "", err
		}
		total += cost.Good
	}
	return float64(total) / float64(cfg.Trials), note, nil
}
