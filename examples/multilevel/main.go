// Multilevel: the §3.1 extension to non-binary feedback. An online store
// collects {great, okay, poor} ratings. An honest store produces an i.i.d.
// multinomial stream; a "review-smoothing" store manipulates its ratings so
// every 10-transaction window looks identical (exactly one "poor", exactly
// one "okay"). Both have the same overall rating distribution — only the
// multinomial window test tells them apart.
package main

import (
	"fmt"
	"log"

	"honestplayer"
)

const (
	great = 0
	okay  = 1
	poor  = 2
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := honestplayer.NewRNG(17)

	// Honest store: 80% great, 10% okay, 10% poor, i.i.d.
	honest := make([]int, 600)
	for i := range honest {
		switch {
		case rng.Bernoulli(0.8):
			honest[i] = great
		case rng.Bernoulli(0.5):
			honest[i] = okay
		default:
			honest[i] = poor
		}
	}

	// Smoothing store: same 80/10/10 aggregate, but deterministically
	// arranged — one okay and one poor in fixed slots of every window.
	smoothed := make([]int, 600)
	for i := range smoothed {
		switch i % 10 {
		case 3:
			smoothed[i] = okay
		case 7:
			smoothed[i] = poor
		default:
			smoothed[i] = great
		}
	}

	tester, err := honestplayer.NewMultiValueTester(honestplayer.TesterConfig{}, 3)
	if err != nil {
		return err
	}
	for _, tc := range []struct {
		name string
		seq  []int
	}{
		{"honest store", honest},
		{"review-smoothing store", smoothed},
	} {
		v, err := tester.TestLevels(tc.seq)
		if err != nil {
			return err
		}
		counts := [3]int{}
		for _, l := range tc.seq {
			counts[l]++
		}
		fmt.Printf("%-23s great/okay/poor = %d/%d/%d -> honest=%v\n",
			tc.name+":", counts[great], counts[okay], counts[poor], v.Honest)
		for level, r := range v.Suffixes {
			fmt.Printf("    level %d: L1 distance %.3f vs threshold %.3f (pass=%v)\n",
				level, r.Distance, r.Threshold, r.Pass)
		}
	}
	fmt.Println()
	fmt.Println("Identical aggregate ratings — but the smoothed store's per-window counts")
	fmt.Println("are a point mass, not multinomial, and the window test exposes it.")
	return nil
}
