package repserver

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"honestplayer/internal/cluster"
	"honestplayer/internal/feedback"
	"honestplayer/internal/wire"
)

// startCluster starts n servers on ephemeral ports and wires them into one
// cluster (IDs "n1".."nN", replica factor r). Returns the servers in ID
// order; each has its cluster view attached before it starts serving.
func startCluster(t *testing.T, n, r int, cfg func() Config) []*Server {
	t.Helper()
	servers := make([]*Server, n)
	members := make([]cluster.Node, n)
	for i := range servers {
		srv, err := New("127.0.0.1:0", cfg())
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
		members[i] = cluster.Node{ID: fmt.Sprintf("n%d", i+1), Addr: srv.Addr()}
	}
	for i, srv := range servers {
		cl, err := cluster.New(cluster.Config{
			Self: members[i].ID, Nodes: members, Replicas: r, DialTimeout: 3 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.SetCluster(cl)
		srv.Start()
		t.Cleanup(func() {
			_ = cl.Close()
			_ = srv.Close()
		})
	}
	return servers
}

// stripRouting clears the fields that legitimately differ between a local
// answer and a forwarded/merged one: the merge markers and the serving-path
// markers (cache hit, incremental accumulator). What remains — the
// assessment values and the accept verdict — must be identical no matter
// which node answered.
func stripRouting(r wire.AssessResponse) wire.AssessResponse {
	r.Merged = false
	r.MergedFrom = nil
	r.Cached = false
	r.Incremental = false
	return r
}

// TestClusterE2E: a 3-node cluster with replica factor 2. All traffic enters
// through node 1; ownership is partitioned, replicas converge synchronously,
// and a verdict obtained through ANY node equals the owner's own verdict.
// The incremental variant additionally exercises accumulator scoping: nodes
// only materialize accumulators for servers in their replica set.
func TestClusterE2E(t *testing.T) {
	t.Run("recompute", func(t *testing.T) {
		testClusterE2E(t, func() Config { return Config{Assessor: testAssessor(t)} })
	})
	t.Run("incremental", func(t *testing.T) {
		testClusterE2E(t, func() Config { return Config{Assessor: testAssessor(t), Incremental: true} })
	})
}

func testClusterE2E(t *testing.T, cfg func() Config) {
	servers := startCluster(t, 3, 2, cfg)
	entry := dial(t, servers[0])
	cl0 := servers[0].Cluster()

	// 9 servers with distinct histories, all submitted through node 1.
	var recs []feedback.Feedback
	var ids []feedback.EntityID
	for i := 0; i < 9; i++ {
		id := feedback.EntityID(fmt.Sprintf("e2e-server-%02d", i))
		ids = append(ids, id)
		for j := 0; j < 30; j++ {
			good := j%(i+2) != 0 // different good/bad mix per server
			recs = append(recs, rec(id, feedback.EntityID(fmt.Sprintf("client-%d", j)), good, int64(1000*i+j)))
		}
	}
	report, err := entry.SubmitBatchReport(recs)
	if err != nil {
		t.Fatal(err)
	}
	if report.Stored != len(recs) || len(report.Rejected) != 0 {
		t.Fatalf("batch through node 1: stored %d of %d, rejected %v", report.Stored, len(recs), report.Rejected)
	}

	// Placement: exactly the replica set holds each server's records.
	owners := make(map[string]bool)
	for _, id := range ids {
		set := cl0.ReplicaSet(id)
		owners[set[0]] = true
		if len(set) != 2 {
			t.Fatalf("replica set of %q = %v; want 2 nodes", id, set)
		}
		inSet := map[string]bool{set[0]: true, set[1]: true}
		for i, srv := range servers {
			nodeID := fmt.Sprintf("n%d", i+1)
			h, _ := srv.Store().Snapshot(id)
			if inSet[nodeID] && h.Len() != 30 {
				t.Fatalf("node %s holds %d records of %q; replica set %v expects 30", nodeID, h.Len(), id, set)
			}
			if !inSet[nodeID] && h.Len() != 0 {
				t.Fatalf("node %s holds %d records of %q but is not in replica set %v", nodeID, h.Len(), id, set)
			}
		}
	}
	if len(owners) < 2 {
		t.Fatalf("all 9 servers landed on %d owner(s); partitioning looks broken", len(owners))
	}

	// The tentpole acceptance: assess every server through every node; the
	// verdict must match the owner's, whichever door the request came in.
	for _, id := range ids {
		var want wire.AssessResponse
		for i, srv := range servers {
			c := dial(t, srv)
			got, err := c.Assess(id, 0.6)
			if err != nil {
				t.Fatalf("assess %q via node %d: %v", id, i+1, err)
			}
			got = stripRouting(got)
			if i == 0 {
				want = got
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("assess %q via node %d diverges:\n got %+v\nwant %+v", id, i+1, got, want)
			}
		}
	}

	// Batch assessment through one node answers exactly like the single
	// calls, including servers the entry node does not hold.
	items, err := entry.AssessBatch(ids, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	for i, item := range items {
		if item.Error != nil {
			t.Fatalf("batch item %q: %v", ids[i], item.Error)
		}
		single, err := entry.Assess(ids[i], 0.6)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := stripRouting(item.AssessResponse), stripRouting(single); !reflect.DeepEqual(got, want) {
			t.Fatalf("batch item %q diverges from single assess:\n got %+v\nwant %+v", ids[i], got, want)
		}
	}

	// Duplicate detection works across doors: a record submitted through
	// node 1 is a duplicate when resubmitted through node 3.
	other := dial(t, servers[2])
	stored, err := other.Submit(recs[0])
	if err != nil {
		t.Fatal(err)
	}
	if stored {
		t.Fatal("record stored twice when resubmitted through another node")
	}

	// The routing counters moved: node 1 forwarded writes and merged reads.
	st := servers[0].Stats()
	if !st.Cluster.Enabled || st.Cluster.Node != "n1" {
		t.Fatalf("cluster stats not populated: %+v", st.Cluster)
	}
	if st.Cluster.Forwarded == 0 {
		t.Fatal("node 1 forwarded nothing despite remote-owned submissions")
	}
	if st.Cluster.ForwardErrors != 0 {
		t.Fatalf("forward errors on a healthy cluster: %d", st.Cluster.ForwardErrors)
	}
}

// TestClusterUnknownServerRelayed: an assess for a server nobody has seen
// fails with the same typed unknown_server error a single node produces,
// even when the answer comes from forwarded replicas.
func TestClusterUnknownServerRelayed(t *testing.T) {
	servers := startCluster(t, 3, 2, func() Config { return Config{Assessor: testAssessor(t)} })
	for i, srv := range servers {
		c := dial(t, srv)
		_, err := c.Assess("never-seen", 0.9)
		var typed *wire.ErrorResponse
		if !errors.As(err, &typed) || typed.Code != wire.CodeUnknownServer {
			t.Fatalf("assess unknown via node %d: got %v; want typed %s", i+1, err, wire.CodeUnknownServer)
		}
	}
}

// TestClusterStatusRPC: cluster.info reports membership from a clustered
// node and enabled=false from a plain one.
func TestClusterStatusRPC(t *testing.T) {
	servers := startCluster(t, 3, 2, func() Config { return Config{Assessor: testAssessor(t)} })
	c := dial(t, servers[1])
	status, err := c.ClusterStatus()
	if err != nil {
		t.Fatal(err)
	}
	if !status.Enabled || status.Node != "n2" || status.Replicas != 2 || len(status.Peers) != 3 {
		t.Fatalf("cluster status = %+v", status)
	}

	plain := startServer(t)
	pc := dial(t, plain)
	status, err = pc.ClusterStatus()
	if err != nil {
		t.Fatal(err)
	}
	if status.Enabled {
		t.Fatalf("plain server reports enabled cluster: %+v", status)
	}
}

// TestSingleNodeClusterDifferential: a 1-node "cluster" must be
// bit-identical to a plain server — same stores, same wire responses, no
// merge markers — because every key's replica set collapses to the node
// itself and routing never leaves the local path.
func TestSingleNodeClusterDifferential(t *testing.T) {
	plain := startServer(t)
	clustered := startCluster(t, 1, 1, func() Config { return Config{Assessor: testAssessor(t)} })[0]

	var recs []feedback.Feedback
	var ids []feedback.EntityID
	for i := 0; i < 5; i++ {
		id := feedback.EntityID(fmt.Sprintf("diff-server-%d", i))
		ids = append(ids, id)
		for j := 0; j < 25; j++ {
			recs = append(recs, rec(id, feedback.EntityID(fmt.Sprintf("c%d", j)), j%3 != 0, int64(100*i+j)))
		}
	}

	pc, cc := dial(t, plain), dial(t, clustered)
	pStored, pDup, err := pc.SubmitBatch(recs)
	if err != nil {
		t.Fatal(err)
	}
	cStored, cDup, err := cc.SubmitBatch(recs)
	if err != nil {
		t.Fatal(err)
	}
	if pStored != cStored || pDup != cDup {
		t.Fatalf("batch outcome differs: plain %d/%d, clustered %d/%d", pStored, pDup, cStored, cDup)
	}

	// Assess twice per server so cache-hit responses are compared too; the
	// raw responses (flags included) must match exactly.
	for round := 0; round < 2; round++ {
		for _, id := range ids {
			pr, err := pc.Assess(id, 0.7)
			if err != nil {
				t.Fatal(err)
			}
			cr, err := cc.Assess(id, 0.7)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(pr, cr) {
				t.Fatalf("round %d: single-node cluster diverges from plain server for %q:\nplain     %+v\nclustered %+v", round, id, pr, cr)
			}
			if cr.Merged {
				t.Fatalf("single-node cluster produced a merged assessment for %q", id)
			}
		}
	}
}

// TestClusterDigestVerifiedReads: a forwarded read costs one full
// assessment (the owner's) plus O(1) state digests from the rest of the
// replica set. While the set agrees, the owner's verdict — verified against
// every digest — is the merged answer and no mismatch is counted. Once a
// replica diverges (here: a record only it holds, as if the owner's
// replication push had been lost before gossip repair), the forwarder
// detects the digest mismatch, fetches the diverged view in full, and
// weight-merges it with the owner's.
func TestClusterDigestVerifiedReads(t *testing.T) {
	servers := startCluster(t, 3, 2, func() Config { return Config{Assessor: testAssessor(t)} })
	byID := make(map[string]*Server, len(servers))
	for i, srv := range servers {
		byID[fmt.Sprintf("n%d", i+1)] = srv
	}

	id := feedback.EntityID("digest-server")
	var recs []feedback.Feedback
	for j := 0; j < 30; j++ {
		recs = append(recs, rec(id, feedback.EntityID(fmt.Sprintf("c%d", j)), j%4 != 0, int64(j)))
	}
	entry := dial(t, servers[0])
	if _, _, err := entry.SubmitBatch(recs); err != nil {
		t.Fatal(err)
	}

	set := servers[0].Cluster().ReplicaSet(id)
	var outside *Server
	for i, srv := range servers {
		if nid := fmt.Sprintf("n%d", i+1); nid != set[0] && nid != set[1] {
			outside = srv
		}
	}
	oc := dial(t, outside)

	got, err := oc.Assess(id, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Merged || len(got.MergedFrom) != 2 {
		t.Fatalf("in-sync forwarded assess: Merged=%v MergedFrom=%v; want the verified set of 2", got.Merged, got.MergedFrom)
	}
	if st := outside.Cluster().Stats(); st.DigestMismatch != 0 {
		t.Fatalf("digest mismatch counted on in-sync replicas: %+v", st)
	}

	if ok, err := byID[set[1]].Store().Add(rec(id, "straggler", false, 999)); err != nil || !ok {
		t.Fatalf("inject divergent record: ok=%v err=%v", ok, err)
	}

	got2, err := oc.Assess(id, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if !got2.Merged || len(got2.MergedFrom) != 2 {
		t.Fatalf("diverged forwarded assess: Merged=%v MergedFrom=%v; want a full merge of 2", got2.Merged, got2.MergedFrom)
	}
	st := outside.Cluster().Stats()
	if st.DigestMismatch == 0 || st.MergedAssess == 0 {
		t.Fatalf("divergence not detected: %+v", st)
	}

	// The forwarded verdict equals weight-merging the two local views by
	// hand, so the escalation path really is cluster.Merge over full parts.
	var parts []wire.NodeAssessment
	for _, nid := range set {
		srv := byID[nid]
		local, err := dial(t, srv).Assess(id, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		sum := srv.Store().ServerChecksum(id)
		parts = append(parts, wire.NodeAssessment{
			Node: nid, Records: sum.Count, XOR: sum.XOR, AssessResponse: stripRouting(local),
		})
	}
	want, err := cluster.Merge(0.6, parts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := stripRouting(got2), stripRouting(want); !reflect.DeepEqual(got, want) {
		t.Fatalf("merged verdict diverges from hand merge:\n got %+v\nwant %+v", got, want)
	}
}
