package honestplayer_test

import (
	"errors"
	"testing"
	"time"

	"honestplayer"
)

// sharedCal keeps facade tests fast.
var sharedCal = honestplayer.NewCalibrator(honestplayer.CalibrationConfig{Seed: 1, Replicates: 200}, 0)

func testerCfg() honestplayer.TesterConfig {
	return honestplayer.TesterConfig{Calibrator: sharedCal}
}

func TestFacadeQuickstartFlow(t *testing.T) {
	rng := honestplayer.NewRNG(1)
	h := honestplayer.NewHistory("seller-42")
	for i := 0; i < 300; i++ {
		if err := h.AppendOutcome("buyer", rng.Bernoulli(0.95), time.Unix(int64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	tester, err := honestplayer.NewMultiTester(testerCfg())
	if err != nil {
		t.Fatal(err)
	}
	assessor, err := honestplayer.NewTwoPhase(tester, honestplayer.Average{})
	if err != nil {
		t.Fatal(err)
	}
	ok, a, err := assessor.Accept(h, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || a.Suspicious {
		t.Fatalf("honest seller rejected: %+v", a)
	}
}

func TestFacadeDetectsHibernator(t *testing.T) {
	rng := honestplayer.NewRNG(2)
	h, err := honestplayer.GenHibernating("attacker", 400, 0.95, 15, rng)
	if err != nil {
		t.Fatal(err)
	}
	tester, err := honestplayer.NewMultiTester(testerCfg())
	if err != nil {
		t.Fatal(err)
	}
	assessor, err := honestplayer.NewTwoPhase(tester, honestplayer.Average{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := assessor.Assess(h)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Suspicious {
		t.Fatal("hibernating attacker not flagged through the facade")
	}
}

func TestFacadeShortHistoryPolicy(t *testing.T) {
	h := honestplayer.NewHistory("new-seller")
	_ = h.AppendOutcome("c", true, time.Unix(0, 0))
	tester, err := honestplayer.NewSingleTester(testerCfg())
	if err != nil {
		t.Fatal(err)
	}
	strict, err := honestplayer.NewTwoPhase(tester, honestplayer.Beta{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := strict.Assess(h)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Suspicious || !a.ShortHistory {
		t.Fatalf("RejectShort: %+v", a)
	}
	lenient, err := honestplayer.NewTwoPhase(tester, honestplayer.Beta{},
		honestplayer.WithShortHistoryPolicy(honestplayer.AllowShort))
	if err != nil {
		t.Fatal(err)
	}
	a, err = lenient.Assess(h)
	if err != nil {
		t.Fatal(err)
	}
	if a.Suspicious || a.Trust == 0 {
		t.Fatalf("AllowShort: %+v", a)
	}
}

func TestFacadeNetworkRoundTrip(t *testing.T) {
	tester, err := honestplayer.NewMultiTester(testerCfg())
	if err != nil {
		t.Fatal(err)
	}
	assessor, err := honestplayer.NewTwoPhase(tester, honestplayer.Average{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := honestplayer.NewServer("127.0.0.1:0", honestplayer.ServerConfig{Assessor: assessor})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	client, err := honestplayer.DialServer(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()

	rng := honestplayer.NewRNG(3)
	for i := 0; i < 200; i++ {
		rating := honestplayer.Negative
		if rng.Bernoulli(0.95) {
			rating = honestplayer.Positive
		}
		if _, err := client.Submit(honestplayer.Feedback{
			Time: time.Unix(int64(i), 0).UTC(), Server: "srv", Client: "c", Rating: rating,
		}); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := client.Assess("srv", 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Assessment.Suspicious {
		t.Fatalf("honest server flagged over the network: %+v", resp.Assessment)
	}
}

func TestFacadeErrInsufficientHistory(t *testing.T) {
	tester, err := honestplayer.NewSingleTester(testerCfg())
	if err != nil {
		t.Fatal(err)
	}
	h := honestplayer.NewHistory("s")
	_ = h.AppendOutcome("c", true, time.Unix(0, 0))
	if _, err := tester.Test(h); !errors.Is(err, honestplayer.ErrInsufficientHistory) {
		t.Fatalf("err = %v", err)
	}
}

func TestFacadeScenario(t *testing.T) {
	tester, err := honestplayer.NewMultiTester(testerCfg())
	if err != nil {
		t.Fatal(err)
	}
	assessor, err := honestplayer.NewTwoPhase(tester, honestplayer.Average{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := honestplayer.RunScenario(honestplayer.ScenarioConfig{
		Seed: 4, Steps: 200, Clients: 40, Threshold: 0.9, Warmup: 120,
		Servers: []honestplayer.ServerSpec{
			{ID: "good", Kind: honestplayer.HonestServer, P: 0.95},
			{ID: "bad", Kind: honestplayer.HibernatingServer, P: 0.95, PrepLen: 150},
		},
	}, assessor)
	if err != nil {
		t.Fatal(err)
	}
	if m.Transactions == 0 {
		t.Fatal("no transactions")
	}
}

func TestFacadeMultiValueTester(t *testing.T) {
	mv, err := honestplayer.NewMultiValueTester(testerCfg(), 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := honestplayer.NewRNG(5)
	seq := make([]int, 400)
	for i := range seq {
		switch {
		case rng.Bernoulli(0.8):
			seq[i] = 0
		case rng.Bernoulli(0.7):
			seq[i] = 1
		default:
			seq[i] = 2
		}
	}
	v, err := mv.TestLevels(seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Suffixes) != 3 {
		t.Fatalf("suffixes = %d", len(v.Suffixes))
	}
}

func TestFacadePartitionedTester(t *testing.T) {
	single, err := honestplayer.NewSingleTester(testerCfg())
	if err != nil {
		t.Fatal(err)
	}
	part, err := honestplayer.NewPartitionedTester(single, func(f honestplayer.Feedback) string {
		if f.Time.Unix()%2 == 0 {
			return "even"
		}
		return "odd"
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := honestplayer.NewRNG(6)
	h := honestplayer.NewHistory("s")
	for i := 0; i < 400; i++ {
		if err := h.AppendOutcome("c", rng.Bernoulli(0.9), time.Unix(int64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	cats, err := part.TestByCategory(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(cats) != 2 {
		t.Fatalf("categories = %d", len(cats))
	}
	v, err := part.Test(h)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Honest {
		t.Fatalf("honest partitioned server flagged: %+v", v.Worst())
	}
}

func TestFacadeGossipPair(t *testing.T) {
	a, err := honestplayer.NewGossipNode("127.0.0.1:0", honestplayer.GossipConfig{Name: "a", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	b, err := honestplayer.NewGossipNode("127.0.0.1:0", honestplayer.GossipConfig{Name: "b", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()
	a.AddPeer(b.Addr())
	b.Start()
	if _, err := b.Store().Add(honestplayer.Feedback{
		Time: time.Unix(1, 0).UTC(), Server: "s", Client: "c", Rating: honestplayer.Positive,
	}); err != nil {
		t.Fatal(err)
	}
	a.Start()
	if err := a.RoundOnce(); err != nil {
		t.Fatal(err)
	}
	if a.Store().Len() != 1 {
		t.Fatalf("gossip did not deliver: %d", a.Store().Len())
	}
}

func TestFacadePiecewiseAndCUSUM(t *testing.T) {
	pw, err := honestplayer.NewPiecewiseTester(testerCfg(), 100)
	if err != nil {
		t.Fatal(err)
	}
	rng := honestplayer.NewRNG(7)
	h := honestplayer.NewHistory("s")
	for i := 0; i < 300; i++ {
		if err := h.AppendOutcome("c", rng.Bernoulli(0.9), time.Unix(int64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	v, err := pw.Test(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Suffixes) != 3 {
		t.Fatalf("segments = %d", len(v.Suffixes))
	}

	c, err := honestplayer.NewCUSUM(0.95, 0.5, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		c.Observe(false)
	}
	if !c.Alarmed() {
		t.Fatal("CUSUM did not alarm on an all-bad burst")
	}
}

func TestFacadeSubmitBatch(t *testing.T) {
	assessor, err := honestplayer.NewTwoPhase(nil, honestplayer.Average{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := honestplayer.NewServer("127.0.0.1:0", honestplayer.ServerConfig{Assessor: assessor})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer func() { _ = srv.Close() }()
	client, err := honestplayer.DialServer(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()
	recs := make([]honestplayer.Feedback, 100)
	for i := range recs {
		recs[i] = honestplayer.Feedback{
			Time: time.Unix(int64(i), 0).UTC(), Server: "s", Client: "c",
			Rating: honestplayer.Positive,
		}
	}
	stored, dups, err := client.SubmitBatch(recs)
	if err != nil {
		t.Fatal(err)
	}
	if stored != 100 || dups != 0 {
		t.Fatalf("batch: %d/%d", stored, dups)
	}
}

func TestFacadePersistentStore(t *testing.T) {
	path := t.TempDir() + "/ledger.jsonl"
	ps, err := honestplayer.OpenPersistentStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Add(honestplayer.Feedback{
		Time: time.Unix(1, 0).UTC(), Server: "s", Client: "c", Rating: honestplayer.Positive,
	}); err != nil {
		t.Fatal(err)
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err := honestplayer.OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("replayed %d", len(recs))
	}
}
