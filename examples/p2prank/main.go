// P2prank: global reputation in a P2P network via EigenTrust (the paper's
// reference [3]) combined with the honest-player behaviour test. A ring of
// colluders inflates itself with fake mutual ratings while cheating
// everyone else. EigenTrust with pre-trusted anchors demotes the ring in
// the global ranking; the behaviour test independently flags the ring
// members' own transaction histories. Two orthogonal defences, one verdict.
package main

import (
	"fmt"
	"log"
	"time"

	"honestplayer"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := honestplayer.NewRNG(31)
	graph := honestplayer.NewEigenTrustGraph()
	histories := make(map[honestplayer.EntityID]*honestplayer.History)

	peerID := func(prefix string, i int) honestplayer.EntityID {
		return honestplayer.EntityID(fmt.Sprintf("%s-%02d", prefix, i))
	}
	record := func(rater, ratee honestplayer.EntityID, good bool, at int) error {
		graph.AddInteraction(rater, ratee, good)
		h, ok := histories[ratee]
		if !ok {
			h = honestplayer.NewHistory(ratee)
			histories[ratee] = h
		}
		return h.AppendOutcome(rater, good, time.Unix(int64(at), 0))
	}

	// 8 honest peers transact with each other at 95% quality.
	clock := 0
	for round := 0; round < 60; round++ {
		for i := 0; i < 8; i++ {
			j := (i + 1 + rng.Intn(7)) % 8
			if err := record(peerID("peer", i), peerID("peer", j), rng.Bernoulli(0.95), clock); err != nil {
				return err
			}
			clock++
		}
	}
	// 3 colluders rate each other positively in bulk and cheat honest peers.
	for round := 0; round < 80; round++ {
		for i := 0; i < 3; i++ {
			if err := record(peerID("ring", i), peerID("ring", (i+1)%3), true, clock); err != nil {
				return err
			}
			clock++
		}
		if round%2 == 0 {
			victim := peerID("peer", rng.Intn(8))
			if err := record(victim, peerID("ring", rng.Intn(3)), false, clock); err != nil {
				return err
			}
			clock++
		}
	}

	// Global ranking with two honest anchors.
	res, err := honestplayer.ComputeEigenTrust(graph, honestplayer.EigenTrustConfig{
		Pretrusted: []honestplayer.EntityID{peerID("peer", 0), peerID("peer", 1)},
	})
	if err != nil {
		return err
	}
	fmt.Printf("EigenTrust converged in %d iterations; global ranking:\n", res.Iterations)
	for rank, p := range res.Ranked() {
		fmt.Printf("  %2d. %-8s %.4f\n", rank+1, p, res.Trust[p])
	}

	// Behaviour testing of each peer's own history (collusion-resilient).
	tester, err := honestplayer.NewCollusionTester(honestplayer.TesterConfig{})
	if err != nil {
		return err
	}
	assessor, err := honestplayer.NewTwoPhase(tester, honestplayer.Average{})
	if err != nil {
		return err
	}
	fmt.Println("\nbehaviour testing (collusion-resilient) per peer:")
	for _, p := range res.Ranked() {
		h := histories[p]
		if h == nil || h.Len() == 0 {
			continue
		}
		a, err := assessor.Assess(h)
		if err != nil {
			return err
		}
		verdict := "ok"
		if a.Suspicious {
			verdict = "SUSPICIOUS"
		}
		fmt.Printf("  %-8s %4d txns, ratio %.3f [%.3f, %.3f] -> %s\n",
			p, h.Len(), h.GoodRatio(), a.TrustLow, a.TrustHigh, verdict)
	}
	fmt.Println()
	fmt.Println("The ring tops nothing: EigenTrust's anchored ranking puts every honest")
	fmt.Println("peer above it, and the behaviour test flags the ring histories directly.")
	return nil
}
