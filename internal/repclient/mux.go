package repclient

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"honestplayer/internal/wire"
)

// DefaultWindow bounds how many requests a v2 connection keeps in flight.
// The window caps client-side memory (one pending slot per request) and
// stops a single caller burst from queueing unbounded work on the server.
const DefaultWindow = 64

// muxBufSize sizes the per-connection buffered reader and writer on v2
// connections. Large buffers let a pipelined burst of requests (and the
// server's burst of responses) move in few syscalls.
const muxBufSize = 256 << 10

// muxTimers pools the per-request timeout timers (see muxRoundTrip). Timers
// are always returned stopped and drained (Go 1.22 timer-channel semantics).
var muxTimers = sync.Pool{New: func() any {
	t := time.NewTimer(time.Hour)
	if !t.Stop() {
		<-t.C
	}
	return t
}}

// muxResult carries one demultiplexed response — or the connection's fatal
// error — to the caller waiting on its id.
type muxResult struct {
	env wire.Envelope
	err error
}

// mux is one pipelined protocol-v2 connection. Many goroutines send
// concurrently; a single demux goroutine reads responses and completes
// callers by envelope id, so responses may resolve in any order relative to
// the callers' sends. A transport failure — read error, write error, or an
// unattributable (id 0) server error frame — fails every pending call and
// permanently poisons the mux; the owning Client redials on the next call.
type mux struct {
	nc net.Conn

	// wmu serialises frame writes into bw. Senders never flush inline:
	// they kick the flusher goroutine instead, so frames written while a
	// flush syscall is in progress — or while the flusher is merely queued
	// for CPU — leave in the next flush as one batch. Under concurrent load
	// this collapses per-request write syscalls into per-burst ones, which
	// is where most of the lock-step transport's time went.
	wmu       sync.Mutex
	bw        *bufio.Writer
	flushKick chan struct{} // cap 1: a pending kick covers any number of frames

	// slots is the in-flight window: a sender acquires a slot before
	// registering and releases it when its call completes.
	slots chan struct{}

	mu      sync.Mutex
	pending map[uint64]chan muxResult // nil after fail: registration refused
	err     error                     // first fatal error; non-nil ⇒ poisoned
	done    chan struct{}             // closed by fail: stops the flusher
}

// newMux wraps a connection that has completed the v2 handshake and starts
// its demux goroutine. reader must be the same reader the handshake used
// (it may have buffered the first response bytes already).
func newMux(nc net.Conn, reader *bufio.Reader, window int) *mux {
	if window <= 0 {
		window = DefaultWindow
	}
	m := &mux{
		nc:        nc,
		bw:        bufio.NewWriterSize(nc, muxBufSize),
		flushKick: make(chan struct{}, 1),
		done:      make(chan struct{}),
		slots:     make(chan struct{}, window),
		pending:   make(map[uint64]chan muxResult),
	}
	go m.demux(reader)
	go m.flusher()
	return m
}

// dead reports whether the mux has been poisoned by a transport failure.
func (m *mux) dead() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err != nil
}

// fail poisons the mux: records the first fatal error, completes every
// pending call with it, refuses future registrations, and closes the
// connection (which also stops the demux goroutine). Idempotent.
func (m *mux) fail(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
		close(m.done)
	} else {
		err = m.err
	}
	pending := m.pending
	m.pending = nil
	m.mu.Unlock()
	for _, ch := range pending {
		ch <- muxResult{err: err} // buffered; never blocks
	}
	_ = m.nc.Close()
}

// acquire takes an in-flight slot, giving up when the context — or the
// caller's bare timeout timer — expires first.
func (m *mux) acquire(ctx context.Context, timeoutC <-chan time.Time) error {
	select {
	case m.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-timeoutC:
		return context.DeadlineExceeded
	}
}

func (m *mux) release() { <-m.slots }

// register reserves a completion channel for a request id. It fails with
// the poisoning error once the mux is dead.
func (m *mux) register(id uint64) (chan muxResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return nil, m.err
	}
	ch := make(chan muxResult, 1)
	m.pending[id] = ch
	return ch, nil
}

// unregister abandons a pending request (cancelled caller). A response that
// arrives later finds no channel and is dropped by the demux loop — unlike
// the lock-step JSON path, a late reply cannot poison a v2 connection
// because ids, not stream order, pair responses with requests.
func (m *mux) unregister(id uint64) {
	m.mu.Lock()
	delete(m.pending, id)
	m.mu.Unlock()
}

// send buffers one frame and kicks the flusher. A write failure poisons
// the mux (the stream may hold a half-written frame).
func (m *mux) send(env wire.Envelope) error {
	m.wmu.Lock()
	err := wire.WriteV2(m.bw, env)
	m.wmu.Unlock()
	if err != nil {
		m.fail(fmt.Errorf("%w: write request: %v", ErrConnBroken, err))
		return err
	}
	select {
	case m.flushKick <- struct{}{}:
	default: // a kick is already pending; it will cover this frame too
	}
	return nil
}

// flusher drains flush kicks, pushing buffered frames to the socket. It is
// the only goroutine that flushes, so every frame buffered between two of
// its wake-ups — by any number of senders — leaves in one syscall. It exits
// when a flush fails or when the mux is poisoned by anyone else.
func (m *mux) flusher() {
	for {
		select {
		case <-m.flushKick:
		case <-m.done:
			return
		}
		// Step aside once before flushing: senders already runnable get to
		// append their frames first, so one syscall carries the whole burst
		// (a scheduler pass costs far less than the write it saves).
		runtime.Gosched()
		m.wmu.Lock()
		err := m.bw.Flush()
		m.wmu.Unlock()
		if err != nil {
			m.fail(fmt.Errorf("%w: flush request: %v", ErrConnBroken, err))
			return
		}
	}
}

// demux is the connection's read loop: it reads response frames and routes
// each to the caller registered under its id. It exits — poisoning the mux —
// on any read error or on an unattributable (id 0) error frame, which the
// protocol defines as connection-fatal.
func (m *mux) demux(reader *bufio.Reader) {
	for {
		env, err := wire.ReadV2(reader)
		if err != nil {
			m.fail(fmt.Errorf("%w: read response: %v", ErrConnBroken, err))
			return
		}
		if env.Type == wire.TypeError && env.ID == wire.UnattributableID {
			var e wire.ErrorResponse
			if derr := wire.DecodePayload(env, &e); derr != nil {
				m.fail(fmt.Errorf("%w: unattributable server error", ErrConnBroken))
			} else {
				m.fail(fmt.Errorf("%w: unattributable server error: %v", ErrConnBroken, &e))
			}
			return
		}
		m.mu.Lock()
		ch := m.pending[env.ID]
		delete(m.pending, env.ID)
		m.mu.Unlock()
		if ch != nil {
			ch <- muxResult{env: env} // buffered; never blocks
		}
		// No channel: the caller cancelled and unregistered. Drop the frame.
	}
}

// muxRoundTrip sends one request over a v2 connection and waits for its
// response, with up to window-1 other requests from concurrent callers in
// flight on the same connection. id was allocated by the Client (ids stay
// monotonic across the connection, exactly as in lock-step mode).
func muxRoundTrip[T any](c *Client, m *mux, ctx context.Context, id uint64, reqType, respType wire.MsgType, payload any, out *T) error {
	// The configured timeout backstops calls whose context carries no
	// deadline. A pooled bare timer is used instead of context.WithTimeout:
	// the derived context's wiring costs close to a microsecond per request,
	// which is real money on a transport whose round trips amortise to a
	// few microseconds.
	var timeoutC <-chan time.Time
	if _, ok := ctx.Deadline(); !ok && c.timeout > 0 {
		t := muxTimers.Get().(*time.Timer)
		t.Reset(c.timeout)
		defer func() {
			if !t.Stop() {
				select {
				case <-t.C:
				default:
				}
			}
			muxTimers.Put(t)
		}()
		timeoutC = t.C
	}
	env, err := wire.V2Codec.Encode(reqType, id, payload)
	if err != nil {
		return err
	}
	if err := m.acquire(ctx, timeoutC); err != nil {
		return fmt.Errorf("repclient: %s: %w", reqType, err)
	}
	defer m.release()
	ch, err := m.register(id)
	if err != nil {
		return c.transportErr(ctx, reqType, err)
	}
	if err := m.send(env); err != nil {
		m.unregister(id)
		return c.transportErr(ctx, reqType, err)
	}
	select {
	case r := <-ch:
		if r.err != nil {
			return c.transportErr(ctx, reqType, r.err)
		}
		return decodeMuxResponse(r.env, respType, out)
	case <-ctx.Done():
		// Abandon the request: drop the pending slot so the late response
		// (if any) is discarded by id, and leave the connection healthy for
		// the other in-flight calls.
		m.unregister(id)
		return fmt.Errorf("repclient: %s: %w", reqType, ctx.Err())
	case <-timeoutC:
		m.unregister(id)
		return fmt.Errorf("repclient: %s: %w", reqType, context.DeadlineExceeded)
	}
}

// decodeMuxResponse converts a demultiplexed response envelope into the
// caller's typed result, with the same semantics as the lock-step path: a
// TypeError frame becomes a *wire.ErrorResponse error, an unexpected type
// is an error without poisoning the connection.
func decodeMuxResponse[T any](env wire.Envelope, respType wire.MsgType, out *T) error {
	if env.Type == wire.TypeError {
		var e wire.ErrorResponse
		if err := wire.DecodePayload(env, &e); err != nil {
			return err
		}
		return &e
	}
	if env.Type != respType {
		return fmt.Errorf("repclient: unexpected response type %s", env.Type)
	}
	if out == nil {
		return nil
	}
	return wire.DecodePayload(env, out)
}

// negotiateV2 runs the client side of the v2 handshake on a fresh
// connection: send the hello, read the server's ack. On wire.ErrNotV2 the
// peer is a JSON-only server — it has answered the hello with its id-0 JSON
// error frame and will close the connection, so the caller must redial to
// speak JSON. The handshake is bounded by timeout; the deadline is cleared
// before returning so request deadlines start fresh.
func negotiateV2(nc net.Conn, timeout time.Duration) (*bufio.Reader, error) {
	if timeout > 0 {
		if err := nc.SetDeadline(time.Now().Add(timeout)); err != nil {
			return nil, err
		}
	}
	if err := wire.WriteHello(nc); err != nil {
		return nil, fmt.Errorf("write hello: %w", err)
	}
	reader := bufio.NewReaderSize(nc, muxBufSize)
	if err := wire.ReadHelloAck(reader); err != nil {
		return nil, err
	}
	if err := nc.SetDeadline(time.Time{}); err != nil {
		return nil, err
	}
	return reader, nil
}
