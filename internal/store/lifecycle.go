package store

// Resident ↔ evicted lifecycle: the memory-budget governor. Every entry
// self-reports its resident footprint (history bytes + accumulator bytes,
// see Accumulator.SizeBytes and feedback.History.SizeBytes); the store keeps
// the node-wide sum and, when a budget is set, evicts idle servers down to a
// compact stub — version counter, record count, dedup digest (XOR), and the
// newest snapshot sequence — until the sum fits. Evicted state is NOT lost:
// the persistence layer rebuilds a server from its snapshot + tail segments
// on the next access (rebuild-on-demand), and ReinstateServer verifies the
// rebuilt records against the stub's count and digest before swapping them
// back in. Eviction without a persistence layer underneath loses records;
// only enable a budget on stores whose writes are ledgered.
//
// Victim selection is a clock (second-chance) sweep: reads and writes set a
// touched bit, and the sweep walks shards in rotation with three escalating
// passes — preferred victims (e.g. servers a cluster node does not own) that
// are idle, then any idle server, then anyone unpinned. An evict guard lets
// the persistence layer pin servers whose newest write is still in flight to
// the ledger, so a rebuild can never miss an accepted record.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"honestplayer/internal/feedback"
)

// ErrEvicted reports an operation against a server whose resident state was
// evicted to a stub. The caller must fault the server back in (rebuild +
// ReinstateServer) and retry; the serving layer does this transparently.
var ErrEvicted = errors.New("store: server state evicted")

// entryOverhead is the accounted fixed cost of one resident entry: the entry
// struct, its map slot, and the dedup-index hashes of its records are all
// charged per server via this constant plus the self-reported sizes.
const entryOverhead = 128

// EvictGuard reports whether a server is temporarily unevictable. The
// persistence layer pins servers between accepting a write into the store
// and making it durable in the ledger; evicting inside that window would
// build a stub whose records cannot all be rebuilt yet.
type EvictGuard func(server feedback.EntityID) bool

// EvictPreference reports whether a server is a preferred eviction victim.
// A cluster node prefers evicting servers outside its replica sets, so owned
// servers stay resident as long as the budget allows.
type EvictPreference func(server feedback.EntityID) bool

// Stub is the exported form of an evicted server's compact state, enough to
// verify a rebuild against: the record count and XOR digest pin the exact
// record set, the version keeps assessment-cache keys comparable across the
// eviction, and SnapSeq names the newest snapshot covering the server at
// eviction time.
type Stub struct {
	Server  feedback.EntityID
	Count   int
	XOR     uint64
	Version uint64
	SnapSeq uint64
}

// AppendStub encodes s compactly into dst: uvarint-length-prefixed server ID
// followed by uvarint count, XOR, version, and snapshot sequence. The
// persistence layer writes these as a sidecar next to snapshots so offline
// tools can enumerate evicted state.
func AppendStub(dst []byte, s Stub) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s.Server)))
	dst = append(dst, s.Server...)
	dst = binary.AppendUvarint(dst, uint64(s.Count))
	dst = binary.AppendUvarint(dst, s.XOR)
	dst = binary.AppendUvarint(dst, s.Version)
	dst = binary.AppendUvarint(dst, s.SnapSeq)
	return dst
}

// DecodeStub decodes one stub from the front of buf, returning the stub and
// the number of bytes consumed. It rejects truncated input, empty or
// oversized server IDs, and counts that cannot fit in an int.
func DecodeStub(buf []byte) (Stub, int, error) {
	var s Stub
	n, used := binary.Uvarint(buf)
	if used <= 0 {
		return s, 0, errors.New("store: stub: bad server length")
	}
	if n == 0 || n > uint64(len(buf)-used) || n > 1<<16 {
		return s, 0, fmt.Errorf("store: stub: server length %d out of range", n)
	}
	off := used
	s.Server = feedback.EntityID(buf[off : off+int(n)])
	off += int(n)
	count, used := binary.Uvarint(buf[off:])
	if used <= 0 || count > 1<<48 {
		return s, 0, errors.New("store: stub: bad count")
	}
	s.Count = int(count)
	off += used
	for _, field := range []*uint64{&s.XOR, &s.Version, &s.SnapSeq} {
		v, used := binary.Uvarint(buf[off:])
		if used <= 0 {
			return s, 0, errors.New("store: stub: truncated")
		}
		*field = v
		off += used
	}
	return s, off, nil
}

// LifecycleStats is the governor's view of the store for /metricz and
// mem-status: how many servers are resident vs evicted, the accounted
// resident bytes against the budget (0 = unlimited), and the cumulative
// eviction/reinstate counters.
type LifecycleStats struct {
	Resident      int    `json:"resident"`
	Evicted       int    `json:"evicted"`
	ResidentBytes int64  `json:"resident_bytes"`
	BudgetBytes   int64  `json:"budget_bytes"`
	Evictions     uint64 `json:"evictions"`
	Reinstates    uint64 `json:"reinstates"`
}

// Lifecycle returns the current governor counters.
func (s *Store) Lifecycle() LifecycleStats {
	return LifecycleStats{
		Resident:      int(s.residentCount.Load()),
		Evicted:       int(s.evictedCount.Load()),
		ResidentBytes: s.residentBytes.Load(),
		BudgetBytes:   s.budget.Load(),
		Evictions:     s.evictions.Load(),
		Reinstates:    s.reinstates.Load(),
	}
}

// ResidentBytes returns the accounted footprint of all resident server state.
func (s *Store) ResidentBytes() int64 { return s.residentBytes.Load() }

// SetBudget installs the node-wide resident-byte budget; 0 or negative means
// unlimited. Once set, every write that pushes the accounted footprint over
// the budget synchronously evicts idle servers back under it, so the peak
// accounted footprint never exceeds the budget by more than the write that
// triggered enforcement. Only set a budget when a persistence layer can
// rebuild evicted servers.
func (s *Store) SetBudget(bytes int64) {
	s.budget.Store(bytes)
	s.maybeEvict()
}

// SetEvictGuard installs the pin check consulted (under the shard lock)
// before each eviction. A nil guard pins nothing.
func (s *Store) SetEvictGuard(g EvictGuard) {
	if g == nil {
		s.evictGuard.Store(nil)
		return
	}
	s.evictGuard.Store(&g)
}

// SetEvictPreference installs the preferred-victim check used by the sweep's
// first pass. A nil preference makes the first pass a no-op.
func (s *Store) SetEvictPreference(p EvictPreference) {
	if p == nil {
		s.evictPref.Store(nil)
		return
	}
	s.evictPref.Store(&p)
}

// SetSnapshotSeq records the sequence number of the newest durable snapshot;
// stubs minted from now on carry it. The persistence layer calls this after
// every successful snapshot.
func (s *Store) SetSnapshotSeq(seq uint64) { s.snapSeq.Store(seq) }

// maybeEvict runs budget enforcement when the accounted footprint exceeds a
// configured budget. Enforcement is serialised on evictMu, so concurrent
// writers past the budget act as backpressure: they queue behind the sweep
// instead of racing it.
func (s *Store) maybeEvict() {
	b := s.budget.Load()
	if b <= 0 || s.residentBytes.Load() <= b {
		return
	}
	s.EvictUntil(b)
}

// EvictUntil evicts idle servers until the accounted resident footprint is
// at most budget, returning how many servers it evicted. Victims drop their
// history, memoized snapshot, accumulator, and dedup-index hashes, keeping
// only the compact stub. The sweep escalates through three passes — idle
// preferred victims, any idle server, then any unpinned server — and walks
// shards in rotation from where the previous sweep stopped, clearing touched
// bits as it passes (clock / second chance).
func (s *Store) EvictUntil(budget int64) int {
	s.evictMu.Lock()
	defer s.evictMu.Unlock()
	if s.residentBytes.Load() <= budget {
		return 0
	}
	var guard EvictGuard
	if g := s.evictGuard.Load(); g != nil {
		guard = *g
	}
	var pref EvictPreference
	if p := s.evictPref.Load(); p != nil {
		pref = *p
	}
	evicted := 0
	for pass := 0; pass < 3 && s.residentBytes.Load() > budget; pass++ {
		if pass == 0 && pref == nil {
			continue
		}
		for i := 0; i < len(s.shards) && s.residentBytes.Load() > budget; i++ {
			idx := (s.clock + i) % len(s.shards)
			sh := &s.shards[idx]
			sh.mu.Lock()
			for srv, e := range sh.byServ {
				if s.residentBytes.Load() <= budget {
					break
				}
				if e.hist == nil {
					continue // already a stub
				}
				if guard != nil && guard(srv) {
					continue // write in flight to the ledger
				}
				switch pass {
				case 0:
					if !pref(srv) || e.touched.Load() {
						continue
					}
				case 1:
					// Second chance: a server read or written since the last
					// sweep survives this pass but loses its bit.
					if e.touched.Swap(false) {
						continue
					}
				}
				s.evictLocked(sh, e)
				evicted++
			}
			sh.mu.Unlock()
		}
	}
	s.clock = (s.clock + 1) % len(s.shards)
	return evicted
}

// evictLocked drops e to a stub. The caller holds sh's write lock and e must
// be resident. The dedup-index hashes are removed (and restored on
// reinstate) so the index's memory follows the history out; duplicate
// suppression stays airtight because writes against a stub are refused with
// ErrEvicted until the server is faulted back in.
func (s *Store) evictLocked(sh *shard, e *entry) {
	n := e.hist.Len()
	for i := 0; i < n; i++ {
		delete(sh.seen, HashOf(e.hist.At(i)))
	}
	e.count = n
	e.stubSnapSeq = s.snapSeq.Load()
	e.hist = nil
	e.snap.Store(nil)
	if e.acc != nil {
		e.acc = nil
		s.accTracked.Add(-1)
	}
	s.residentBytes.Add(-int64(e.sizeBytes))
	e.sizeBytes = 0
	s.residentCount.Add(-1)
	s.evictedCount.Add(1)
	s.evictions.Add(1)
}

// EvictServer evicts one server by ID regardless of budget and touch state
// (the guard still applies). It returns false when the server is unknown,
// already evicted, or pinned. Tests and the persistence layer's shutdown
// path use it; budget enforcement goes through EvictUntil.
func (s *Store) EvictServer(server feedback.EntityID) bool {
	var guard EvictGuard
	if g := s.evictGuard.Load(); g != nil {
		guard = *g
	}
	sh := s.shardOf(server)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.byServ[server]
	if e == nil || e.hist == nil || (guard != nil && guard(server)) {
		return false
	}
	s.evictLocked(sh, e)
	return true
}

// StubOf returns the compact stub of an evicted server; ok is false when the
// server is unknown or resident.
func (s *Store) StubOf(server feedback.EntityID) (Stub, bool) {
	sh := s.shardOf(server)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e := sh.byServ[server]
	if e == nil || e.hist != nil {
		return Stub{}, false
	}
	return Stub{Server: server, Count: e.count, XOR: e.xor, Version: e.version, SnapSeq: e.stubSnapSeq}, true
}

// Stubs returns the stubs of all evicted servers, sorted by server ID — the
// payload of the snapshot sidecar.
func (s *Store) Stubs() []Stub {
	var out []Stub
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for srv, e := range sh.byServ {
			if e.hist == nil {
				out = append(out, Stub{Server: srv, Count: e.count, XOR: e.xor, Version: e.version, SnapSeq: e.stubSnapSeq})
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Server < out[j].Server })
	return out
}

// ReinstateServer swaps a rebuilt history (and optionally its accumulator,
// with state covering exactly recs) back into an evicted server's slot. The
// rebuild is verified against the stub before anything is committed: the
// record count and XOR digest must match what was evicted, making a
// reinstated server bit-identical to one that never left. The preserved
// version counter keeps assessment-cache entries valid across the
// round-trip. Reinstating an already-resident server is a no-op (concurrent
// fault-ins race benignly); reinstating an unknown server is an error.
//
// recs must be sorted by (time, hash) and duplicate-free, as Add would have
// stored them; the store takes ownership of the slice.
func (s *Store) ReinstateServer(server feedback.EntityID, recs []feedback.Feedback, acc Accumulator) error {
	sh := s.shardOf(server)
	sh.mu.Lock()
	e := sh.byServ[server]
	if e == nil {
		sh.mu.Unlock()
		return fmt.Errorf("store: reinstate of %q: unknown server", server)
	}
	if e.hist != nil {
		sh.mu.Unlock()
		return nil // already resident
	}
	if len(recs) != e.count {
		sh.mu.Unlock()
		return fmt.Errorf("store: reinstate of %q: rebuilt %d records, stub has %d", server, len(recs), e.count)
	}
	hist, err := feedback.NewHistoryFromRecords(server, recs)
	if err != nil {
		sh.mu.Unlock()
		return fmt.Errorf("store: reinstate of %q: %w", server, err)
	}
	var xor uint64
	hashes := make([]Hash, len(recs))
	for i, f := range recs {
		if i > 0 && !lessRecord(recs[i-1], f) {
			sh.mu.Unlock()
			return fmt.Errorf("store: reinstate of %q record %d: out of order", server, i)
		}
		hashes[i] = HashOf(f)
		xor ^= uint64(hashes[i])
	}
	if xor != e.xor {
		sh.mu.Unlock()
		return fmt.Errorf("store: reinstate of %q: digest mismatch (rebuilt %x, stub %x)", server, xor, e.xor)
	}
	for _, h := range hashes {
		sh.seen[h] = struct{}{}
	}
	e.hist = hist
	e.count = 0
	if acc != nil {
		e.acc = acc
		s.accTracked.Add(1)
	} else if fp := s.accFactory.Load(); fp != nil {
		if a := (*fp)(server); a != nil {
			e.acc = a
			s.accTracked.Add(1)
			replayAccumulator(e.acc, e.hist)
		}
	}
	e.touched.Store(true)
	s.resizeLocked(e)
	s.residentCount.Add(1)
	s.evictedCount.Add(-1)
	s.reinstates.Add(1)
	sh.mu.Unlock()
	s.maybeEvict()
	return nil
}

// resizeLocked re-derives e's accounted size after a mutation and folds the
// delta into the node-wide total. The caller holds the shard write lock and
// e must be resident.
func (s *Store) resizeLocked(e *entry) {
	n := entryOverhead + e.hist.SizeBytes()
	if e.acc != nil {
		n += e.acc.SizeBytes()
	}
	s.residentBytes.Add(int64(n - e.sizeBytes))
	e.sizeBytes = n
}

// ResidentSize names one resident server and its accounted footprint.
type ResidentSize struct {
	Server  feedback.EntityID `json:"server"`
	Bytes   int               `json:"bytes"`
	Records int               `json:"records"`
}

// TopResident returns the k largest resident servers by accounted bytes,
// descending (ties by server ID). It walks every shard under its read lock;
// it is an operator-tooling path (trustctl mem-status), not a serving path.
func (s *Store) TopResident(k int) []ResidentSize {
	if k <= 0 {
		return nil
	}
	var all []ResidentSize
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for srv, e := range sh.byServ {
			if e.hist == nil {
				continue
			}
			all = append(all, ResidentSize{Server: srv, Bytes: e.sizeBytes, Records: e.hist.Len()})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Bytes != all[j].Bytes {
			return all[i].Bytes > all[j].Bytes
		}
		return all[i].Server < all[j].Server
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}
