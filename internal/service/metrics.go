package service

import (
	"sync"
	"sync/atomic"
	"time"

	"honestplayer/internal/wire"
)

// latencyBuckets are the fixed upper bounds of the latency histogram,
// exponential from 50µs to 10s. One more implicit +Inf bucket catches the
// overflow. Fixed buckets keep Observe allocation-free and lock-free on the
// hot path; quantiles are interpolated within a bucket, which is exact
// enough for serving dashboards (a Prometheus-style trade).
var latencyBuckets = [...]time.Duration{
	50 * time.Microsecond,
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2500 * time.Millisecond,
	5 * time.Second,
	10 * time.Second,
}

const numBuckets = len(latencyBuckets) + 1 // +Inf overflow

// typeMetrics holds one message type's counters. All fields are atomics so
// Observe never takes a lock after the typeMetrics exists.
type typeMetrics struct {
	requests atomic.Uint64
	errors   atomic.Uint64
	totalNs  atomic.Uint64
	buckets  [numBuckets]atomic.Uint64
}

func (tm *typeMetrics) observe(d time.Duration, isErr bool) {
	if d < 0 {
		d = 0
	}
	tm.requests.Add(1)
	if isErr {
		tm.errors.Add(1)
	}
	tm.totalNs.Add(uint64(d))
	i := 0
	for i < len(latencyBuckets) && d > latencyBuckets[i] {
		i++
	}
	tm.buckets[i].Add(1)
}

// Metrics aggregates per-type request counters and latency histograms. The
// zero value is not usable; create with NewMetrics. Safe for concurrent
// use.
type Metrics struct {
	mu      sync.RWMutex
	perType map[wire.MsgType]*typeMetrics
}

// NewMetrics returns an empty metrics aggregate.
func NewMetrics() *Metrics {
	return &Metrics{perType: make(map[wire.MsgType]*typeMetrics)}
}

// Observe records one served request of type t with latency d.
func (m *Metrics) Observe(t wire.MsgType, d time.Duration, isErr bool) {
	m.mu.RLock()
	tm, ok := m.perType[t]
	m.mu.RUnlock()
	if !ok {
		m.mu.Lock()
		tm, ok = m.perType[t]
		if !ok {
			tm = &typeMetrics{}
			m.perType[t] = tm
		}
		m.mu.Unlock()
	}
	tm.observe(d, isErr)
}

// TypeSnapshot is one message type's counters at a point in time. Latency
// quantiles are estimated from the fixed-bucket histogram (linear
// interpolation within the bucket; the overflow bucket reports the largest
// finite bound).
type TypeSnapshot struct {
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
	// MeanMs is the exact mean latency in milliseconds.
	MeanMs float64 `json:"mean_ms"`
	// P50Ms, P90Ms, P99Ms are estimated latency quantiles in milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// Snapshot maps message types to their counters.
type Snapshot map[string]TypeSnapshot

// Snapshot returns a point-in-time copy of all counters. Counters are read
// without a global pause, so a snapshot taken under load is approximate
// across types but each counter is individually consistent.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.RLock()
	types := make(map[wire.MsgType]*typeMetrics, len(m.perType))
	for t, tm := range m.perType {
		types[t] = tm
	}
	m.mu.RUnlock()

	out := make(Snapshot, len(types))
	for t, tm := range types {
		var counts [numBuckets]uint64
		var total uint64
		for i := range counts {
			counts[i] = tm.buckets[i].Load()
			total += counts[i]
		}
		snap := TypeSnapshot{
			Requests: tm.requests.Load(),
			Errors:   tm.errors.Load(),
		}
		if total > 0 {
			snap.MeanMs = float64(tm.totalNs.Load()) / float64(total) / 1e6
			snap.P50Ms = quantile(counts, total, 0.50)
			snap.P90Ms = quantile(counts, total, 0.90)
			snap.P99Ms = quantile(counts, total, 0.99)
		}
		out[string(t)] = snap
	}
	return out
}

// ClusterStats is the cluster-routing slice of a node's observability
// surface, exported through repserver.Stats and the /metricz endpoint. A
// non-clustered node reports the zero value (Enabled=false).
type ClusterStats struct {
	// Enabled reports that the node runs with cluster routing.
	Enabled bool `json:"enabled"`
	// Node is the local node ID.
	Node string `json:"node,omitempty"`
	// Replicas is the configured replication factor.
	Replicas int `json:"replicas,omitempty"`
	// Forwarded counts requests this node routed to a peer (forwarded
	// assess/submit calls, batch subsets, and replication writes).
	Forwarded uint64 `json:"forwarded"`
	// ForwardErrors counts forwarded calls that failed at the transport
	// level (unreachable peer, broken connection) — not typed per-request
	// errors relayed from the peer.
	ForwardErrors uint64 `json:"forward_errors"`
	// MergedAssess counts assessments answered by weight-merging more than
	// one node's view.
	MergedAssess uint64 `json:"merged_assess"`
	// DigestMismatch counts forwarded reads whose replica state digests
	// disagreed with the owner's (a replica missed a write), forcing a
	// full per-node assessment fetch and weight-merge.
	DigestMismatch uint64 `json:"digest_mismatch"`
	// PeerRTTMs is the last measured round trip to each peer in
	// milliseconds, keyed by node ID; peers never dialed are absent.
	PeerRTTMs map[string]float64 `json:"peer_rtt_ms,omitempty"`
}

// quantile estimates the q-quantile (0 < q < 1) in milliseconds from the
// bucket counts.
func quantile(counts [numBuckets]uint64, total uint64, q float64) float64 {
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		// The rank falls in bucket i: interpolate between its bounds.
		hi := latencyBuckets[len(latencyBuckets)-1]
		if i < len(latencyBuckets) {
			hi = latencyBuckets[i]
		}
		var lo time.Duration
		if i > 0 {
			lo = latencyBuckets[i-1]
		}
		frac := (rank - prev) / float64(c)
		if frac < 0 {
			frac = 0
		} else if frac > 1 {
			frac = 1
		}
		return (float64(lo) + frac*float64(hi-lo)) / 1e6
	}
	return float64(latencyBuckets[len(latencyBuckets)-1]) / 1e6
}
