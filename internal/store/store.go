// Package store provides the concurrent feedback store shared by the
// reputation server (the paper's central-collector deployment) and the
// gossip layer (the P2P deployment): per-server transaction histories with
// duplicate suppression and deterministic time ordering.
package store

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"honestplayer/internal/feedback"
)

// Hash is the content hash of a feedback record, used for duplicate
// suppression and gossip set reconciliation.
type Hash uint64

// HashOf returns the content hash of a feedback record.
func HashOf(f feedback.Feedback) Hash {
	h := fnv.New64a()
	var buf [8]byte
	n := f.Time.UnixNano()
	for i := 0; i < 8; i++ {
		buf[i] = byte(n >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte{byte(f.Rating)})
	_, _ = h.Write([]byte(f.Server))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(f.Client))
	return Hash(h.Sum64())
}

// Store is a concurrent, deduplicating feedback store. Records are kept
// per server, sorted by transaction time (ties broken by content hash for
// determinism across nodes), which is the order behaviour tests require.
//
// The zero value is not usable; construct with New.
type Store struct {
	mu     sync.RWMutex
	byServ map[feedback.EntityID][]feedback.Feedback
	seen   map[Hash]struct{}
}

// New returns an empty store.
func New() *Store {
	return &Store{
		byServ: make(map[feedback.EntityID][]feedback.Feedback),
		seen:   make(map[Hash]struct{}),
	}
}

// Add inserts a feedback record. It returns false when an identical record
// (same content hash) was already present, and an error when the record is
// invalid.
func (s *Store) Add(f feedback.Feedback) (bool, error) {
	if err := f.Validate(); err != nil {
		return false, err
	}
	h := HashOf(f)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.seen[h]; dup {
		return false, nil
	}
	s.seen[h] = struct{}{}
	recs := s.byServ[f.Server]
	// Insert keeping (time, hash) order; appends dominate in practice, so
	// check the tail first.
	idx := len(recs)
	if idx > 0 && !lessRecord(recs[idx-1], f) {
		idx = sort.Search(len(recs), func(i int) bool { return lessRecord(f, recs[i]) })
	}
	recs = append(recs, feedback.Feedback{})
	copy(recs[idx+1:], recs[idx:])
	recs[idx] = f
	s.byServ[f.Server] = recs
	return true, nil
}

// lessRecord orders records by time, then content hash.
func lessRecord(a, b feedback.Feedback) bool {
	if !a.Time.Equal(b.Time) {
		return a.Time.Before(b.Time)
	}
	return HashOf(a) < HashOf(b)
}

// AddAll inserts records, returning how many were new.
func (s *Store) AddAll(recs []feedback.Feedback) (int, error) {
	added := 0
	for i, f := range recs {
		ok, err := s.Add(f)
		if err != nil {
			return added, fmt.Errorf("record %d: %w", i, err)
		}
		if ok {
			added++
		}
	}
	return added, nil
}

// History returns the server's transaction history in time order as a
// freshly built feedback.History. It is empty (not nil) for unknown
// servers.
func (s *Store) History(server feedback.EntityID) (*feedback.History, error) {
	s.mu.RLock()
	recs := s.byServ[server]
	cp := make([]feedback.Feedback, len(recs))
	copy(cp, recs)
	s.mu.RUnlock()
	h := feedback.NewHistory(server)
	for _, f := range cp {
		if err := h.Append(f); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// Records returns a copy of the server's records in time order.
func (s *Store) Records(server feedback.EntityID) []feedback.Feedback {
	s.mu.RLock()
	defer s.mu.RUnlock()
	recs := s.byServ[server]
	cp := make([]feedback.Feedback, len(recs))
	copy(cp, recs)
	return cp
}

// Servers returns the known server IDs, sorted.
func (s *Store) Servers() []feedback.EntityID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]feedback.EntityID, 0, len(s.byServ))
	for id := range s.byServ {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the total number of stored records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.seen)
}

// ServerLen returns the number of records for one server.
func (s *Store) ServerLen(server feedback.EntityID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byServ[server])
}

// Hashes returns the content hashes of all stored records, sorted. It is
// the digest the gossip layer exchanges.
func (s *Store) Hashes() []Hash {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Hash, 0, len(s.seen))
	for h := range s.seen {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Checksum summarises one server's records: the count and the XOR of all
// content hashes. Equal checksums mean (up to hash collisions) equal record
// sets, letting gossip peers skip servers that are already in sync.
type Checksum struct {
	Count int    `json:"count"`
	XOR   uint64 `json:"xor"`
}

// Checksums returns the per-server summary of the whole store.
func (s *Store) Checksums() map[feedback.EntityID]Checksum {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[feedback.EntityID]Checksum, len(s.byServ))
	for srv, recs := range s.byServ {
		var x uint64
		for _, f := range recs {
			x ^= uint64(HashOf(f))
		}
		out[srv] = Checksum{Count: len(recs), XOR: x}
	}
	return out
}

// ServerHashes returns the content hashes of one server's records, sorted.
func (s *Store) ServerHashes(server feedback.EntityID) []Hash {
	s.mu.RLock()
	defer s.mu.RUnlock()
	recs := s.byServ[server]
	out := make([]Hash, 0, len(recs))
	for _, f := range recs {
		out = append(out, HashOf(f))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ServerMissingFrom returns one server's records whose hashes are absent
// from the digest.
func (s *Store) ServerMissingFrom(server feedback.EntityID, digest []Hash) []feedback.Feedback {
	have := make(map[Hash]struct{}, len(digest))
	for _, h := range digest {
		have[h] = struct{}{}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []feedback.Feedback
	for _, f := range s.byServ[server] {
		if _, ok := have[HashOf(f)]; !ok {
			out = append(out, f)
		}
	}
	return out
}

// MissingFrom returns the stored records whose hashes are absent from the
// given digest — the records a gossip peer with that digest still needs.
func (s *Store) MissingFrom(digest []Hash) []feedback.Feedback {
	have := make(map[Hash]struct{}, len(digest))
	for _, h := range digest {
		have[h] = struct{}{}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []feedback.Feedback
	for _, recs := range s.byServ {
		for _, f := range recs {
			if _, ok := have[HashOf(f)]; !ok {
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return lessRecord(out[i], out[j]) })
	return out
}
