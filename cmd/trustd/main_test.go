package main

import "testing"

func TestTrustFunc(t *testing.T) {
	for _, name := range []string{"average", "weighted", "beta"} {
		fn, err := trustFunc(name, 0.5)
		if err != nil || fn == nil {
			t.Errorf("trustFunc(%q) = %v, %v", name, fn, err)
		}
	}
	if _, err := trustFunc("nope", 0.5); err == nil {
		t.Error("unknown trust function must fail")
	}
	if _, err := trustFunc("weighted", 2); err == nil {
		t.Error("invalid lambda must fail")
	}
}

func TestTesterSelection(t *testing.T) {
	for _, scheme := range []string{"single", "multi", "collusion", "collusion-multi"} {
		ts, err := tester(scheme, 10, 1)
		if err != nil || ts == nil {
			t.Errorf("tester(%q) = %v, %v", scheme, ts, err)
		}
	}
	ts, err := tester("none", 10, 1)
	if err != nil || ts != nil {
		t.Errorf("tester(none) = %v, %v", ts, err)
	}
	if _, err := tester("bogus", 10, 1); err == nil {
		t.Error("unknown scheme must fail")
	}
	if _, err := tester("single", -1, 1); err == nil {
		t.Error("invalid window must fail")
	}
}
