package gossip

import (
	"bufio"
	"net"
	"testing"
	"time"

	"honestplayer/internal/feedback"
	"honestplayer/internal/stats"
	"honestplayer/internal/store"
	"honestplayer/internal/wire"
)

func rec(s, c feedback.EntityID, good bool, at int64) feedback.Feedback {
	r := feedback.Negative
	if good {
		r = feedback.Positive
	}
	return feedback.Feedback{Time: time.Unix(at, 0).UTC(), Server: s, Client: c, Rating: r}
}

func newNode(t *testing.T, name string, peers ...string) *Node {
	t.Helper()
	n, err := New("127.0.0.1:0", Config{Name: name, Peers: peers, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := n.Close(); err != nil {
			t.Errorf("close %s: %v", name, err)
		}
	})
	return n
}

func TestNewValidation(t *testing.T) {
	if _, err := New("127.0.0.1:0", Config{}); err == nil {
		t.Fatal("missing name must fail")
	}
}

func TestTwoNodeConvergenceManualRounds(t *testing.T) {
	a := newNode(t, "a")
	b := newNode(t, "b")
	a.AddPeer(b.Addr())
	b.AddPeer(a.Addr())
	// Only the accept loops run; rounds are driven manually for
	// determinism.
	a.Start()
	b.Start()

	for i := 0; i < 20; i++ {
		if _, err := a.Store().Add(rec("srv", "ca", i%5 != 0, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 20; i < 40; i++ {
		if _, err := b.Store().Add(rec("srv", "cb", i%4 != 0, int64(i))); err != nil {
			t.Fatal(err)
		}
	}

	// a pulls from b, then b pulls from a.
	if err := a.RoundOnce(); err != nil {
		t.Fatal(err)
	}
	if err := b.RoundOnce(); err != nil {
		t.Fatal(err)
	}
	if a.Store().Len() != 40 || b.Store().Len() != 40 {
		t.Fatalf("stores did not converge: a=%d b=%d", a.Store().Len(), b.Store().Len())
	}
	// Time-ordered histories are identical on both nodes.
	ra, rb := a.Store().Records("srv"), b.Store().Records("srv")
	for i := range ra {
		if store.HashOf(ra[i]) != store.HashOf(rb[i]) {
			t.Fatalf("record %d differs between nodes", i)
		}
	}
	if a.Received() == 0 || b.Received() == 0 {
		t.Fatal("received counters did not move")
	}
}

func TestThreeNodeConvergenceBackground(t *testing.T) {
	a := newNode(t, "a")
	b := newNode(t, "b")
	c := newNode(t, "c")
	// Chain topology: a <-> b <-> c; records must cross b to reach c.
	a.AddPeer(b.Addr())
	b.AddPeer(a.Addr())
	b.AddPeer(c.Addr())
	c.AddPeer(b.Addr())
	a.Start()
	b.Start()
	c.Start()

	rng := stats.NewRNG(7)
	for i := 0; i < 30; i++ {
		if _, err := a.Store().Add(rec("srv", "ca", rng.Bernoulli(0.9), int64(i))); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if c.Store().Len() == 30 && b.Store().Len() == 30 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("no convergence: a=%d b=%d c=%d", a.Store().Len(), b.Store().Len(), c.Store().Len())
}

func TestRoundOnceNoPeers(t *testing.T) {
	a := newNode(t, "a")
	if err := a.RoundOnce(); err != nil {
		t.Fatalf("round with no peers: %v", err)
	}
}

func TestRoundOnceDeadPeer(t *testing.T) {
	a := newNode(t, "a")
	// Reserve an address then close it so the dial fails fast.
	dead := newNode(t, "dead")
	addr := dead.Addr()
	if err := dead.Close(); err != nil {
		t.Fatal(err)
	}
	a.AddPeer(addr)
	if err := a.RoundOnce(); err == nil {
		t.Fatal("round against dead peer must fail")
	}
	// The node remains usable.
	if a.Store().Len() != 0 {
		t.Fatal("store corrupted")
	}
}

func TestCloseIdempotent(t *testing.T) {
	n, err := New("127.0.0.1:0", Config{Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestBackgroundLoopGossips(t *testing.T) {
	a, err := New("127.0.0.1:0", Config{Name: "a", Interval: 20 * time.Millisecond, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })
	b := newNode(t, "b")
	a.AddPeer(b.Addr())
	a.Start()
	b.Start()
	if _, err := b.Store().Add(rec("srv", "c", true, 1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if a.Store().Len() == 1 && a.Rounds() > 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("background gossip never delivered the record (rounds=%d)", a.Rounds())
}

func TestServeConnIgnoresGarbage(t *testing.T) {
	n := newNode(t, "a")
	n.Start()
	conn, err := net.Dial("tcp", n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("garbage\n")); err != nil {
		t.Fatal(err)
	}
	_ = conn.Close()
	// A second, valid exchange still works.
	b := newNode(t, "b")
	b.Start()
	if _, err := n.Store().Add(rec("srv", "c", true, 1)); err != nil {
		t.Fatal(err)
	}
	b.AddPeer(n.Addr())
	if err := b.RoundOnce(); err != nil {
		t.Fatal(err)
	}
	if b.Store().Len() != 1 {
		t.Fatal("valid exchange failed after garbage")
	}
}

func TestServeConnWrongType(t *testing.T) {
	n := newNode(t, "a")
	n.Start()
	conn, err := net.Dial("tcp", n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	env, err := wire.Encode(wire.TypePing, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.Write(conn, env); err != nil {
		t.Fatal(err)
	}
	// The node silently drops non-digest messages; the connection closes.
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("expected connection close for wrong message type")
	}
}

func TestSummaryShortCircuitWhenInSync(t *testing.T) {
	a := newNode(t, "a")
	b := newNode(t, "b")
	a.AddPeer(b.Addr())
	b.AddPeer(a.Addr())
	a.Start()
	b.Start()
	for i := 0; i < 10; i++ {
		r := rec("srv", "c", i%3 != 0, int64(i))
		if _, err := a.Store().Add(r); err != nil {
			t.Fatal(err)
		}
	}
	// First round transfers; second round is summary-only.
	if err := b.RoundOnce(); err != nil {
		t.Fatal(err)
	}
	if b.Store().Len() != 10 {
		t.Fatalf("not converged: %d", b.Store().Len())
	}
	if b.InSyncRounds() != 0 {
		t.Fatalf("first round marked in-sync")
	}
	if err := b.RoundOnce(); err != nil {
		t.Fatal(err)
	}
	if b.InSyncRounds() != 1 {
		t.Fatalf("in-sync rounds = %d, want 1", b.InSyncRounds())
	}
	if b.Store().Len() != 10 {
		t.Fatalf("in-sync round changed the store: %d", b.Store().Len())
	}
}

func TestScopedDigestOnlyTouchesStaleServers(t *testing.T) {
	a := newNode(t, "a")
	b := newNode(t, "b")
	a.AddPeer(b.Addr())
	b.AddPeer(a.Addr())
	a.Start()
	b.Start()
	// Both share srv1 exactly; b additionally has srv2.
	shared := []feedback.Feedback{rec("srv1", "c", true, 1), rec("srv1", "d", false, 2)}
	for _, r := range shared {
		if _, err := a.Store().Add(r); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Store().Add(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.Store().Add(rec("srv2", "e", true, 3)); err != nil {
		t.Fatal(err)
	}
	if err := a.RoundOnce(); err != nil {
		t.Fatal(err)
	}
	if a.Store().Len() != 3 {
		t.Fatalf("a has %d records, want 3", a.Store().Len())
	}
	// Only srv2's record crossed the wire.
	if a.Received() != 1 {
		t.Fatalf("received = %d, want 1", a.Received())
	}
}

func TestLegacyUnscopedDigestStillServed(t *testing.T) {
	n := newNode(t, "a")
	n.Start()
	if _, err := n.Store().Add(rec("srv", "c", true, 1)); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	env, err := wire.Encode(wire.TypeDigest, 1, wire.DigestMsg{Node: "legacy"})
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.Write(conn, env); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	resp, err := wire.Read(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != wire.TypeDelta {
		t.Fatalf("type = %s", resp.Type)
	}
	var delta wire.DeltaMsg
	if err := wire.DecodePayload(resp, &delta); err != nil {
		t.Fatal(err)
	}
	if len(delta.Records) != 1 {
		t.Fatalf("delta = %d records", len(delta.Records))
	}
}
