module honestplayer

go 1.22
