// Filesharing: a decentralised P2P deployment. Three peers gossip their
// feedback stores by anti-entropy; feedback about a file server lands on
// one peer but every peer converges to the same history and reaches the
// same two-phase verdict locally — no central collector needed.
package main

import (
	"fmt"
	"log"
	"time"

	"honestplayer"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Three gossip nodes in a chain: n1 <-> n2 <-> n3.
	n1, err := honestplayer.NewGossipNode("127.0.0.1:0", honestplayer.GossipConfig{
		Name: "n1", Interval: 50 * time.Millisecond, Seed: 1,
	})
	if err != nil {
		return err
	}
	defer closeNode(n1)
	n2, err := honestplayer.NewGossipNode("127.0.0.1:0", honestplayer.GossipConfig{
		Name: "n2", Interval: 50 * time.Millisecond, Seed: 2,
	})
	if err != nil {
		return err
	}
	defer closeNode(n2)
	n3, err := honestplayer.NewGossipNode("127.0.0.1:0", honestplayer.GossipConfig{
		Name: "n3", Interval: 50 * time.Millisecond, Seed: 3,
	})
	if err != nil {
		return err
	}
	defer closeNode(n3)
	n1.AddPeer(n2.Addr())
	n2.AddPeer(n1.Addr())
	n2.AddPeer(n3.Addr())
	n3.AddPeer(n2.Addr())
	n1.Start()
	n2.Start()
	n3.Start()

	// Clients of node n1 record their experience with a file server that
	// runs a periodic attack: one corrupted download per ten.
	rng := honestplayer.NewRNG(99)
	h, err := honestplayer.GenPeriodic("file-server", 400, 10, 0.1, rng)
	if err != nil {
		return err
	}
	for i := 0; i < h.Len(); i++ {
		if _, err := n1.Store().Add(h.At(i)); err != nil {
			return err
		}
	}
	fmt.Printf("node n1 ingested %d feedback records about %q\n", n1.Store().Len(), "file-server")

	// Wait for anti-entropy to converge across the chain.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if n2.Store().Len() == h.Len() && n3.Store().Len() == h.Len() {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("after gossip: n1=%d n2=%d n3=%d records\n",
		n1.Store().Len(), n2.Store().Len(), n3.Store().Len())

	// Every node assesses locally and reaches the same verdict.
	tester, err := honestplayer.NewMultiTester(honestplayer.TesterConfig{})
	if err != nil {
		return err
	}
	assessor, err := honestplayer.NewTwoPhase(tester, honestplayer.Average{})
	if err != nil {
		return err
	}
	for _, node := range []*honestplayer.GossipNode{n1, n2, n3} {
		local, err := node.Store().History("file-server")
		if err != nil {
			return err
		}
		a, err := assessor.Assess(local)
		if err != nil {
			return err
		}
		fmt.Printf("node verdict: suspicious=%v goodRatio=%.3f (history %d txns)\n",
			a.Suspicious, local.GoodRatio(), local.Len())
	}
	fmt.Println("a periodic attacker at 90% good keeps its ratio above the threshold, but")
	fmt.Println("every peer's behaviour test flags the non-binomial pattern locally.")
	return nil
}

func closeNode(n *honestplayer.GossipNode) {
	if err := n.Close(); err != nil {
		log.Printf("close node: %v", err)
	}
}
