package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRunIncrBenchQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := runIncrBench(&buf, 1, true); err != nil {
		t.Fatal(err)
	}
	var report incrBenchReport
	if err := json.Unmarshal(buf.Bytes(), &report); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(report.Sizes) != 1 {
		t.Fatalf("sizes = %+v", report.Sizes)
	}
	r := report.Sizes[0]
	if r.History != 1000 || r.RecomputeNsOp <= 0 || r.IncrementalNsOp <= 0 {
		t.Fatalf("result = %+v", r)
	}
	// The speedup varies with machine and history size; what must always
	// hold is the differential guarantee.
	if !r.AssessmentsMatch {
		t.Fatalf("incremental and recompute assessments diverged: %+v", r)
	}
}

func TestRunBootBenchQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := runBootBench(&buf, true, 0); err != nil {
		t.Fatal(err)
	}
	var report bootBenchReport
	if err := json.Unmarshal(buf.Bytes(), &report); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(report.Sizes) != 2 {
		t.Fatalf("sizes = %+v", report.Sizes)
	}
	for _, r := range report.Sizes {
		if r.Records != 20000 || r.ReplayBootMs <= 0 || r.SnapshotBootMs <= 0 {
			t.Fatalf("result = %+v", r)
		}
		// Timing varies with the machine; the differential guarantees —
		// identical store state and a boot that really used the snapshot —
		// must always hold.
		if !r.StateMatch {
			t.Fatalf("snapshot boot diverged from full replay: %+v", r)
		}
		if r.SnapshotBootMode != "snapshot" {
			t.Fatalf("boot mode = %q, want snapshot: %+v", r.SnapshotBootMode, r)
		}
	}
}

func TestSelectFigures(t *testing.T) {
	all, err := selectFigures("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 7 {
		t.Fatalf("all = %v", all)
	}
	abl, err := selectFigures("ablations")
	if err != nil {
		t.Fatal(err)
	}
	if len(abl) != 5 {
		t.Fatalf("ablations = %v", abl)
	}
	every, err := selectFigures("everything")
	if err != nil {
		t.Fatal(err)
	}
	if len(every) != 12 {
		t.Fatalf("everything = %v", every)
	}
	if got, err := selectFigures("ablation-window"); err != nil || len(got) != 1 {
		t.Fatalf("ablation-window -> %v, %v", got, err)
	}
	for _, in := range []string{"3", "fig3", "9", "fig9"} {
		got, err := selectFigures(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if len(got) != 1 {
			t.Fatalf("%q -> %v", in, got)
		}
	}
	if _, err := selectFigures("42"); err == nil {
		t.Fatal("unknown figure must fail")
	}
	if _, err := selectFigures("nonsense"); err == nil {
		t.Fatal("garbage must fail")
	}
}
