package store

import (
	"reflect"
	"testing"
	"time"

	"honestplayer/internal/feedback"
)

func seedRecs(server feedback.EntityID, n int) []feedback.Feedback {
	base := time.Unix(1700000000, 0)
	out := make([]feedback.Feedback, n)
	for i := range out {
		r := feedback.Negative
		if i%3 != 0 {
			r = feedback.Positive
		}
		out[i] = feedback.Feedback{
			Server: server,
			Client: feedback.EntityID([]byte{'c', byte('a' + i%4)}),
			Rating: r,
			Time:   base.Add(time.Duration(i) * time.Second),
		}
	}
	return out
}

// TestSeedServerMatchesAdd proves a seeded store is indistinguishable from
// one built through Add: same histories, versions, checksums, dedup state,
// and accumulator feed.
func TestSeedServerMatchesAdd(t *testing.T) {
	recs := seedRecs("srv-seed", 25)
	added := NewSharded(4)
	var addFeed []feedback.Feedback
	added.SetAccumulatorFactory(func(feedback.EntityID) Accumulator {
		return accFn(func(f feedback.Feedback) { addFeed = append(addFeed, f) })
	})
	for _, f := range recs {
		if ok, err := added.Add(f); !ok || err != nil {
			t.Fatalf("Add: %v %v", ok, err)
		}
	}

	seeded := NewSharded(4)
	var seedFeed []feedback.Feedback
	seeded.SetAccumulatorFactory(func(feedback.EntityID) Accumulator {
		return accFn(func(f feedback.Feedback) { seedFeed = append(seedFeed, f) })
	})
	if err := seeded.SeedServer("srv-seed", recs, nil); err != nil {
		t.Fatalf("SeedServer: %v", err)
	}

	if !reflect.DeepEqual(added.Records("srv-seed"), seeded.Records("srv-seed")) {
		t.Fatal("records differ")
	}
	if av, sv := added.Version("srv-seed"), seeded.Version("srv-seed"); av != sv {
		t.Fatalf("versions differ: %d vs %d", av, sv)
	}
	if ac, sc := added.ServerChecksum("srv-seed"), seeded.ServerChecksum("srv-seed"); ac != sc {
		t.Fatalf("checksums differ: %+v vs %+v", ac, sc)
	}
	if added.Len() != seeded.Len() || added.GlobalVersion() != seeded.GlobalVersion() {
		t.Fatal("totals differ")
	}
	if !reflect.DeepEqual(addFeed, seedFeed) {
		t.Fatal("accumulator feeds differ")
	}
	// Duplicates of seeded records must be suppressed exactly like Add's.
	if ok, err := seeded.Add(recs[3]); ok || err != nil {
		t.Fatalf("duplicate accepted after seed: %v %v", ok, err)
	}
}

// TestSeedServerWithAccumulator checks a pre-restored accumulator is adopted
// without re-feeding and receives only post-seed appends.
func TestSeedServerWithAccumulator(t *testing.T) {
	recs := seedRecs("srv-acc", 10)
	s := NewSharded(2)
	var feed []feedback.Feedback
	acc := accFn(func(f feedback.Feedback) { feed = append(feed, f) })
	if err := s.SeedServer("srv-acc", recs, acc); err != nil {
		t.Fatal(err)
	}
	if len(feed) != 0 {
		t.Fatalf("restored accumulator was re-fed %d records", len(feed))
	}
	if s.AccumulatorsTracked() != 1 {
		t.Fatalf("tracked = %d", s.AccumulatorsTracked())
	}
	next := seedRecs("srv-acc", 11)[10]
	if ok, err := s.Add(next); !ok || err != nil {
		t.Fatalf("Add after seed: %v %v", ok, err)
	}
	if len(feed) != 1 || !feed[0].Time.Equal(next.Time) {
		t.Fatalf("accumulator missed the post-seed append: %v", feed)
	}
}

// TestSeedServerRejects checks the strict preconditions: out-of-order or
// duplicate records, wrong server, and double seeding all fail atomically.
func TestSeedServerRejects(t *testing.T) {
	recs := seedRecs("srv-rej", 5)
	s := NewSharded(2)

	swapped := append([]feedback.Feedback(nil), recs...)
	swapped[1], swapped[2] = swapped[2], swapped[1]
	if err := s.SeedServer("srv-rej", swapped, nil); err == nil {
		t.Fatal("out-of-order seed accepted")
	}
	if s.Len() != 0 || s.Version("srv-rej") != 0 {
		t.Fatal("failed seed left state behind")
	}

	wrong := append([]feedback.Feedback(nil), recs...)
	wrong[4].Server = "other"
	if err := s.SeedServer("srv-rej", wrong, nil); err == nil {
		t.Fatal("wrong-server record accepted")
	}

	if err := s.SeedServer("srv-rej", recs, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.SeedServer("srv-rej", recs, nil); err == nil {
		t.Fatal("double seed accepted")
	}
	if s.Len() != len(recs) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(recs))
	}
}

// TestSnapshotShard checks the walk covers every server of the shard, in
// sorted order, with the memoized snapshot and version.
func TestSnapshotShard(t *testing.T) {
	s := NewSharded(3)
	servers := []feedback.EntityID{"alpha", "beta", "gamma", "delta", "epsilon"}
	for _, srv := range servers {
		for _, f := range seedRecs(srv, 4) {
			if ok, err := s.Add(f); !ok || err != nil {
				t.Fatalf("Add: %v %v", ok, err)
			}
		}
	}
	got := map[feedback.EntityID]int{}
	for idx := 0; idx < s.NumShards(); idx++ {
		var prev feedback.EntityID
		s.SnapshotShard(idx, func(ent ShardEntry) {
			if prev != "" && ent.Server <= prev {
				t.Fatalf("shard %d: unsorted walk: %q after %q", idx, ent.Server, prev)
			}
			prev = ent.Server
			if s.ShardIndex(ent.Server) != idx {
				t.Fatalf("server %q visited on wrong shard", ent.Server)
			}
			if ent.Snap.Len() != 4 || ent.Version != 4 || ent.Count != 4 {
				t.Fatalf("server %q: len %d version %d count %d", ent.Server, ent.Snap.Len(), ent.Version, ent.Count)
			}
			if ent.SizeBytes <= 0 {
				t.Fatalf("server %q: accounted size %d", ent.Server, ent.SizeBytes)
			}
			got[ent.Server] = ent.Snap.Len()
		})
	}
	if len(got) != len(servers) {
		t.Fatalf("walked %d servers, want %d", len(got), len(servers))
	}
}

// accFn adapts a function to the Accumulator interface.
type accFn func(feedback.Feedback)

func (a accFn) Append(f feedback.Feedback) { a(f) }

func (a accFn) SizeBytes() int { return 0 }
