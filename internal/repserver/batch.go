package repserver

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"honestplayer/internal/assesscache"
	"honestplayer/internal/core"
	"honestplayer/internal/feedback"
	"honestplayer/internal/service"
	"honestplayer/internal/store"
	"honestplayer/internal/wire"
)

// handleAssessBatch serves TypeAssessB: the shard-grouped, pool-parallel form
// of handleAssess. Per-server failures (unknown server, assessment error)
// land in their item's error slot; only request-level problems — malformed
// payload, empty or oversized batch, expired context — fail the envelope.
func (s *Server) handleAssessBatch(ctx context.Context, env wire.Envelope) (wire.Envelope, error) {
	var req wire.AssessBatchRequest
	if err := wire.DecodePayload(env, &req); err != nil {
		return wire.Envelope{}, service.Errorf(wire.CodeBadRequest, "%v", err)
	}
	if cl := s.clusterRef.Load(); cl != nil && cl.Size() > 1 {
		resp, err := s.clusterAssessBatch(ctx, cl, req)
		if err != nil {
			return wire.Envelope{}, err
		}
		return service.CodecFrom(ctx).Encode(wire.TypeAssessBR, env.ID, resp)
	}
	resp, err := s.assessBatch(ctx, req)
	if err != nil {
		return wire.Envelope{}, err
	}
	return service.CodecFrom(ctx).Encode(wire.TypeAssessBR, env.ID, resp)
}

// AssessBatch runs one batch assessment in process, exactly as a TypeAssessB
// request would be served minus the wire decode and socket I/O — the batch
// counterpart of Assess, for embedders and benchmark harnesses.
func (s *Server) AssessBatch(ctx context.Context, req wire.AssessBatchRequest) (wire.AssessBatchResponse, error) {
	return s.assessBatch(ctx, req)
}

// shardGroup is the unit of batch fan-out: the request positions of all
// items living on one store shard. Grouping is what lets the pool serve a
// whole shard's items under a single read-lock acquisition.
type shardGroup struct {
	shard   int
	pos     []int               // positions into the request's Servers
	servers []feedback.EntityID // aligned with pos
}

// assessBatch serves one TypeAssessB request. Items are grouped by store
// shard and the groups fanned out across a bounded worker pool
// (Config.BatchWorkers, default GOMAXPROCS); each group holds its shard's
// read lock once while the items with a live incremental accumulator are
// served in place, and runs cache probes and two-phase recomputes for the
// rest after the lock is released. Every item follows the same serving order
// as the single-assess path — accumulator, then version-stamped cache, then
// recompute — so verdicts are bit-identical to N sequential assess calls.
//
// Items[i] always answers Servers[i]; len(Items) == len(Servers).
func (s *Server) assessBatch(ctx context.Context, req wire.AssessBatchRequest) (wire.AssessBatchResponse, error) {
	n := len(req.Servers)
	if n == 0 {
		return wire.AssessBatchResponse{}, service.Errorf(wire.CodeBadRequest, "empty batch")
	}
	if n > wire.MaxAssessBatch {
		return wire.AssessBatchResponse{}, service.Errorf(wire.CodeBadRequest,
			"batch of %d servers exceeds max %d", n, wire.MaxAssessBatch)
	}
	if err := ctx.Err(); err != nil {
		return wire.AssessBatchResponse{}, err
	}
	items := make([]wire.AssessBatchItem, n)
	byShard := make(map[int]*shardGroup)
	groups := make([]*shardGroup, 0, s.cfg.Store.NumShards())
	for i, srv := range req.Servers {
		items[i].Server = srv
		if srv == "" {
			items[i].Error = &wire.ErrorResponse{Code: wire.CodeBadRequest, Message: "missing server"}
			continue
		}
		idx := s.cfg.Store.ShardIndex(srv)
		g := byShard[idx]
		if g == nil {
			g = &shardGroup{shard: idx}
			byShard[idx] = g
			groups = append(groups, g)
		}
		g.pos = append(g.pos, i)
		g.servers = append(g.servers, srv)
	}

	workers := s.cfg.BatchWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(groups) {
		workers = len(groups)
	}
	if workers <= 1 {
		for _, g := range groups {
			s.assessGroup(ctx, req.Threshold, g, items)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(groups) {
						return
					}
					s.assessGroup(ctx, req.Threshold, groups[i], items)
				}
			}()
		}
		wg.Wait()
	}

	// A batch cut short by deadline or shutdown fails whole: a half-filled
	// response would be indistinguishable from per-item failures.
	if err := ctx.Err(); err != nil {
		return wire.AssessBatchResponse{}, err
	}
	s.nBatchItems.Add(uint64(n))
	return wire.AssessBatchResponse{Items: items}, nil
}

// assessGroup serves one shard group in two passes. Pass one holds the shard
// read lock once for the whole group: items with a live incremental
// accumulator are answered in place (each read is O(windows) and the loop
// takes no further locks and allocates nothing per item), everything else
// just captures its snapshot and version. Pass two runs the cache probes and
// two-phase recomputes for the captured items after the lock is released, so
// batch fallbacks never stall the shard's writers.
func (s *Server) assessGroup(ctx context.Context, threshold float64, g *shardGroup, items []wire.AssessBatchItem) {
	type fallback struct {
		pos     int
		snap    *feedback.History
		version uint64
	}
	var falls []fallback
	var served uint64
	s.cfg.Store.ViewShard(g.shard, g.servers, func(i int, acc store.Accumulator, snap *feedback.History, version uint64) {
		pos := g.pos[i]
		if s.cfg.Incremental {
			if sa, ok := acc.(*core.ServerAccumulator); ok {
				item := &items[pos]
				accept, a, err := sa.Accept(threshold)
				if err != nil {
					item.Error = &wire.ErrorResponse{Code: wire.CodeAssessmentFailed, Message: err.Error()}
					return
				}
				item.AssessResponse = wire.AssessResponse{Assessment: a, Accept: accept, Incremental: true}
				served++
				return
			}
		}
		falls = append(falls, fallback{pos: pos, snap: snap, version: version})
	})
	s.nIncremental.Add(served)

	for _, f := range falls {
		item := &items[f.pos]
		if ctx.Err() != nil {
			// The request-level check in assessBatch reports the expiry; no
			// point starting more recomputes for a response nobody will see.
			return
		}
		if f.snap == nil && f.version > 0 {
			// Evicted: fault the server in and serve the item through the
			// single-assess path (same order — accumulator, cache,
			// recompute — so the verdict matches a sequential assess).
			resp, err := s.assess(ctx, wire.AssessRequest{Server: item.Server, Threshold: threshold})
			if err != nil {
				item.Error = errorResponseFrom(err)
				continue
			}
			item.AssessResponse = resp
			continue
		}
		if f.snap == nil || f.snap.Len() == 0 {
			item.Error = &wire.ErrorResponse{
				Code:    wire.CodeUnknownServer,
				Message: fmt.Sprintf("no records for %q", item.Server),
			}
			continue
		}
		if s.cfg.Incremental {
			s.nFallback.Add(1)
		}
		if s.cache != nil {
			if res, ok := s.cache.Get(item.Server, f.version, threshold); ok {
				item.AssessResponse = wire.AssessResponse{Assessment: res.Assessment, Accept: res.Accept, Cached: true}
				continue
			}
		}
		accept, a, err := s.cfg.Assessor.Accept(f.snap, threshold)
		if err != nil {
			item.Error = &wire.ErrorResponse{Code: wire.CodeAssessmentFailed, Message: err.Error()}
			continue
		}
		if s.cache != nil {
			s.cache.Put(item.Server, f.version, threshold, assesscache.Result{Assessment: a, Accept: accept})
		}
		item.AssessResponse = wire.AssessResponse{Assessment: a, Accept: accept}
	}
}
