// Command trustctl is the CLI client for a trustd reputation server.
//
// Usage:
//
//	trustctl -addr 127.0.0.1:7700 ping
//	trustctl -addr 127.0.0.1:7700 submit -server s1 -client alice -rating positive
//	trustctl -addr 127.0.0.1:7700 history -server s1 -limit 20
//	trustctl -addr 127.0.0.1:7700 assess -server s1 -threshold 0.9
//	trustctl -addr 127.0.0.1:7700 assess-batch -threshold 0.9 s1 s2 s3
//	trustctl assess-batch -threshold 0.9 < servers.txt   # IDs from stdin
//	trustctl submit-batch '{"time":"...","server":"s1","client":"c1","rating":1}'
//	trustctl submit-batch < records.jsonl                # records from stdin
//	trustctl local-assess -file history.jsonl -scheme multi -trust average
//	trustctl ledger-info -path /var/lib/trustd/ledger   # offline checksum audit
//	trustctl mem-status -metrics http://127.0.0.1:7780  # memory lifecycle via /metricz
//	trustctl -addr host1:7700,host2:7700,host3:7700 assess -server s1
//	trustctl -addr host1:7700 cluster-status
//
// A comma-separated -addr probes every address at dial time and talks to the
// fastest responder, failing over to the others if it goes down.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"honestplayer/internal/behavior"
	"honestplayer/internal/core"
	"honestplayer/internal/feedback"
	"honestplayer/internal/ledger"
	"honestplayer/internal/repclient"
	"honestplayer/internal/stats"
	"honestplayer/internal/store"
	"honestplayer/internal/trust"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "trustctl:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("trustctl", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7700", "reputation server address (comma-separated list probes all and prefers the fastest)")
	timeout := fs.Duration("timeout", 5*time.Second, "request timeout (bounds dial and each request)")
	proto := fs.String("proto", "auto", "wire protocol: auto (try v2, fall back to JSON) | json | v2 (fail unless the server speaks v2)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	protocol, err := parseProto(*proto)
	if err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("missing command: ping | submit | submit-batch | history | assess | assess-batch | cluster-status | mem-status | local-assess | ledger-info")
	}
	// local-assess, ledger-info, and mem-status need no wire connection
	// (mem-status talks to the metrics HTTP endpoint instead).
	if rest[0] == "local-assess" {
		return localAssess(rest[1:], out)
	}
	if rest[0] == "ledger-info" {
		return ledgerInfo(rest[1:], out)
	}
	if rest[0] == "mem-status" {
		return memStatus(rest[1:], out)
	}

	// The flag bounds the whole command through the context-taking client
	// methods (the dial timeout rides along via WithTimeout).
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	addrs := strings.Split(*addr, ",")
	client, err := repclient.DialCluster(addrs, repclient.WithTimeout(*timeout), repclient.WithProtocol(protocol))
	if err != nil {
		return err
	}
	defer func() { _ = client.Close() }()

	switch rest[0] {
	case "ping":
		if err := client.PingCtx(ctx); err != nil {
			return err
		}
		fmt.Fprintln(out, "pong")
		return nil
	case "submit":
		return submit(ctx, client, rest[1:], out)
	case "submit-batch":
		return submitBatch(ctx, client, rest[1:], out)
	case "history":
		return history(ctx, client, rest[1:], out)
	case "assess":
		return assess(ctx, client, rest[1:], out)
	case "assess-batch":
		return assessBatch(ctx, client, rest[1:], out)
	case "cluster-status":
		return clusterStatus(ctx, client, out)
	default:
		return fmt.Errorf("unknown command %q", rest[0])
	}
}

// parseProto maps the -proto flag onto the client's protocol selection.
func parseProto(s string) (repclient.Proto, error) {
	switch s {
	case "auto":
		return repclient.ProtoAuto, nil
	case "json":
		return repclient.ProtoJSON, nil
	case "v2":
		return repclient.ProtoV2, nil
	default:
		return 0, fmt.Errorf("unknown -proto %q (want auto, json, or v2)", s)
	}
}

func submit(ctx context.Context, client *repclient.Client, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("submit", flag.ContinueOnError)
	var (
		server = fs.String("server", "", "server being rated")
		cl     = fs.String("client", "", "feedback issuer")
		rating = fs.String("rating", "positive", "positive | negative")
		at     = fs.String("time", "", "transaction time (RFC3339; empty = now)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	r := feedback.Positive
	switch *rating {
	case "positive":
	case "negative":
		r = feedback.Negative
	default:
		return fmt.Errorf("invalid rating %q", *rating)
	}
	when := time.Now().UTC()
	if *at != "" {
		parsed, err := time.Parse(time.RFC3339, *at)
		if err != nil {
			return fmt.Errorf("parse -time: %w", err)
		}
		when = parsed
	}
	stored, err := client.SubmitCtx(ctx, feedback.Feedback{
		Time: when, Server: feedback.EntityID(*server), Client: feedback.EntityID(*cl), Rating: r,
	})
	if err != nil {
		return err
	}
	if stored {
		fmt.Fprintln(out, "stored")
	} else {
		fmt.Fprintln(out, "duplicate (ignored)")
	}
	return nil
}

func history(ctx context.Context, client *repclient.Client, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("history", flag.ContinueOnError)
	var (
		server = fs.String("server", "", "server to fetch")
		limit  = fs.Int("limit", 0, "max records (0 = server default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	recs, total, err := client.HistoryCtx(ctx, feedback.EntityID(*server), *limit)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%d records (of %d total)\n", len(recs), total)
	for _, r := range recs {
		fmt.Fprintf(out, "%s  %-8s  client=%s\n", r.Time.Format(time.RFC3339), r.Rating, r.Client)
	}
	return nil
}

func assess(ctx context.Context, client *repclient.Client, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("assess", flag.ContinueOnError)
	var (
		server    = fs.String("server", "", "server to assess")
		threshold = fs.Float64("threshold", 0.9, "trust threshold")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	resp, err := client.AssessCtx(ctx, feedback.EntityID(*server), *threshold)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(resp)
}

// stdin is the assess-batch fallback input, swappable in tests.
var stdin io.Reader = os.Stdin

// assessBatch assesses many servers in one request (the client chunks
// transparently past the wire's max batch size). Server IDs come from the
// positional arguments, or — when none are given — one per line from stdin.
// The output is the JSON item array; per-server failures appear in their
// item's "error" field without failing the command.
func assessBatch(ctx context.Context, client *repclient.Client, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("assess-batch", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 0.9, "trust threshold applied to every server")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var servers []feedback.EntityID
	for _, a := range fs.Args() {
		servers = append(servers, feedback.EntityID(a))
	}
	if len(servers) == 0 {
		sc := bufio.NewScanner(stdin)
		for sc.Scan() {
			if line := strings.TrimSpace(sc.Text()); line != "" {
				servers = append(servers, feedback.EntityID(line))
			}
		}
		if err := sc.Err(); err != nil {
			return fmt.Errorf("read server IDs from stdin: %w", err)
		}
	}
	if len(servers) == 0 {
		return fmt.Errorf("assess-batch: no server IDs (pass them as arguments or one per line on stdin)")
	}
	items, err := client.AssessBatchCtx(ctx, servers, *threshold)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(items)
}

// submitBatch submits many records in one request (the client chunks
// transparently past the wire's max batch size). Records come from the
// positional arguments — one JSON object each, in the ledger / JSON-lines
// record shape — or, when none are given, as JSON lines from stdin. The
// output is the server's per-record report; rejected records appear in
// their item's "error" field without failing the command.
func submitBatch(ctx context.Context, client *repclient.Client, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("submit-batch", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var recs []feedback.Feedback
	if rest := fs.Args(); len(rest) > 0 {
		for i, a := range rest {
			var f feedback.Feedback
			if err := json.Unmarshal([]byte(a), &f); err != nil {
				return fmt.Errorf("record %d: %w", i, err)
			}
			recs = append(recs, f)
		}
	} else {
		var err error
		recs, err = feedback.ReadJSONLines(stdin)
		if err != nil {
			return fmt.Errorf("read records from stdin: %w", err)
		}
	}
	if len(recs) == 0 {
		return fmt.Errorf("submit-batch: no records (pass JSON objects as arguments or JSON lines on stdin)")
	}
	resp, err := client.SubmitBatchReportCtx(ctx, recs)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(resp)
}

// clusterStatus prints the contacted node's view of its cluster: membership
// with addresses and measured RTTs, replica factor, and how many server IDs
// the node currently owns. Against a single-node (unclustered) trustd the
// response reports enabled=false.
func clusterStatus(ctx context.Context, client *repclient.Client, out io.Writer) error {
	resp, err := client.ClusterStatusCtx(ctx)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(resp)
}

// memStatus fetches a trustd node's /metricz endpoint and prints the memory
// lifecycle picture: resident/evicted counts against the budget, eviction
// and rebuild activity, and the largest resident servers by accounted bytes.
func memStatus(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mem-status", flag.ContinueOnError)
	var (
		metrics = fs.String("metrics", "http://127.0.0.1:7780", "trustd metrics endpoint base URL (-metrics-addr)")
		timeout = fs.Duration("timeout", 5*time.Second, "HTTP timeout")
		asJSON  = fs.Bool("json", false, "emit the lifecycle section as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	url := strings.TrimSuffix(*metrics, "/") + "/metricz"
	if !strings.Contains(*metrics, "://") {
		url = "http://" + url
	}
	hc := &http.Client{Timeout: *timeout}
	resp, err := hc.Get(url)
	if err != nil {
		return fmt.Errorf("fetch %s: %w", url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fetch %s: %s", url, resp.Status)
	}
	var body struct {
		Lifecycle struct {
			Enabled bool `json:"enabled"`
			store.LifecycleStats
			FaultIns    uint64 `json:"fault_ins"`
			FaultWaits  uint64 `json:"fault_waits"`
			FaultErrors uint64 `json:"fault_errors"`
		} `json:"lifecycle"`
		Ledger *struct {
			SnapshotSeq   uint64 `json:"snapshot_seq"`
			Rebuilds      uint64 `json:"rebuilds"`
			RebuildErrors uint64 `json:"rebuild_errors"`
		} `json:"ledger"`
		TopResident []store.ResidentSize `json:"top_resident"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return fmt.Errorf("decode %s: %w", url, err)
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(body)
	}
	if !body.Lifecycle.Enabled {
		fmt.Fprintln(out, "memory lifecycle: disabled (start trustd with -mem-budget and -ledger)")
		return nil
	}
	l := body.Lifecycle
	fmt.Fprintf(out, "memory budget: %s\n", fmtBytes(l.BudgetBytes))
	fmt.Fprintf(out, "  resident: %d servers, %s accounted (%.1f%% of budget)\n",
		l.Resident, fmtBytes(l.ResidentBytes), 100*float64(l.ResidentBytes)/float64(max64(l.BudgetBytes, 1)))
	fmt.Fprintf(out, "  evicted:  %d servers\n", l.Evicted)
	fmt.Fprintf(out, "  evictions %d, reinstates %d\n", l.Evictions, l.Reinstates)
	fmt.Fprintf(out, "  fault-ins %d (waited %d, errors %d)\n", l.FaultIns, l.FaultWaits, l.FaultErrors)
	if body.Ledger != nil {
		fmt.Fprintf(out, "  ledger: snapshot seq %d, rebuilds %d (errors %d)\n",
			body.Ledger.SnapshotSeq, body.Ledger.Rebuilds, body.Ledger.RebuildErrors)
	}
	if len(body.TopResident) > 0 {
		fmt.Fprintln(out, "top resident servers by accounted bytes:")
		for _, r := range body.TopResident {
			fmt.Fprintf(out, "  %-24s %10s  %d records\n", r.Server, fmtBytes(int64(r.Bytes)), r.Records)
		}
	}
	return nil
}

// fmtBytes renders a byte count with a binary-unit suffix.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// localAssess runs the two-phase assessment offline over a JSON-lines
// history file (the ledger / WriteJSONLines format), without contacting a
// server — useful for auditing exported histories.
func localAssess(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("local-assess", flag.ContinueOnError)
	var (
		file      = fs.String("file", "", "JSON-lines feedback file")
		server    = fs.String("server", "", "server to assess (empty = sole server in the file)")
		scheme    = fs.String("scheme", "multi", "none | single | multi | collusion | collusion-multi")
		trustName = fs.String("trust", "average", "average | weighted | beta")
		lambda    = fs.Float64("lambda", 0.5, "lambda for weighted")
		threshold = fs.Float64("threshold", 0.9, "trust threshold")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" {
		return fmt.Errorf("local-assess: missing -file")
	}
	f, err := os.Open(*file)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	recs, err := feedback.ReadJSONLines(f)
	if err != nil {
		return fmt.Errorf("read %s: %w", *file, err)
	}
	st := store.New()
	if _, err := st.AddAll(recs); err != nil {
		return err
	}
	target := feedback.EntityID(*server)
	if target == "" {
		servers := st.Servers()
		if len(servers) != 1 {
			return fmt.Errorf("file contains %d servers %v; pass -server", len(servers), servers)
		}
		target = servers[0]
	}
	h, err := st.History(target)
	if err != nil {
		return err
	}
	if h.Len() == 0 {
		return fmt.Errorf("no records for %q", target)
	}

	var fn trust.Func
	switch *trustName {
	case "average":
		fn = trust.Average{}
	case "weighted":
		w, err := trust.NewWeighted(*lambda)
		if err != nil {
			return err
		}
		fn = w
	case "beta":
		fn = trust.Beta{}
	default:
		return fmt.Errorf("unknown trust function %q", *trustName)
	}
	cfg := behavior.Config{Calibrator: stats.NewCalibrator(stats.CalibrationConfig{}, 0)}
	var tester behavior.Tester
	switch *scheme {
	case "none":
	case "single":
		tester, err = behavior.NewSingle(cfg)
	case "multi":
		tester, err = behavior.NewMulti(cfg)
	case "collusion":
		tester, err = behavior.NewCollusion(cfg)
	case "collusion-multi":
		tester, err = behavior.NewCollusionMulti(cfg)
	default:
		return fmt.Errorf("unknown scheme %q", *scheme)
	}
	if err != nil {
		return err
	}
	assessor, err := core.NewTwoPhase(tester, fn)
	if err != nil {
		return err
	}
	accept, a, err := assessor.Accept(h, *threshold)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "server %q: %d transactions, good ratio %.3f\n", target, h.Len(), h.GoodRatio())
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(struct {
		Accept     bool            `json:"accept"`
		Assessment core.Assessment `json:"assessment"`
	}{accept, a}); err != nil {
		return err
	}
	return nil
}

// ledgerInfo inspects a ledger directory (or a legacy single-file ledger)
// offline: segment layout, sealed/active sizes, record counts, snapshot
// sequence, and full checksum verification of every segment and snapshot.
func ledgerInfo(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ledger-info", flag.ContinueOnError)
	var (
		path    = fs.String("path", "", "ledger directory (or legacy single-file ledger)")
		asJSON  = fs.Bool("json", false, "emit the full report as JSON")
		verbose = fs.Bool("v", false, "list every segment and snapshot")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return fmt.Errorf("ledger-info: missing -path")
	}
	info, err := ledger.Inspect(*path)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(info)
	}

	if info.Legacy {
		fmt.Fprintf(out, "%s: legacy single-file ledger (migrates on next open)\n", info.Path)
	} else {
		fmt.Fprintf(out, "%s: segmented ledger\n", info.Path)
	}
	var sealed int
	var sealedBytes, activeBytes int64
	for _, seg := range info.Segments {
		if seg.Sealed {
			sealed++
			sealedBytes += seg.Size
		} else {
			activeBytes += seg.Size
		}
	}
	fmt.Fprintf(out, "  segments: %d (%d sealed, %d bytes sealed, %d bytes unsealed)\n",
		len(info.Segments), sealed, sealedBytes, activeBytes)
	fmt.Fprintf(out, "  records: %d verified\n", info.Records)
	if info.TruncatedBytes > 0 {
		fmt.Fprintf(out, "  CORRUPTION: %d bytes fail verification (next open truncates to the intact prefix)\n",
			info.TruncatedBytes)
	} else {
		fmt.Fprintln(out, "  checksums: all segments verify")
	}
	if n := len(info.Snapshots); n > 0 {
		latest := info.Snapshots[n-1]
		status := "valid"
		if !latest.Valid {
			status = "INVALID: " + latest.Error
		}
		fmt.Fprintf(out, "  snapshots: %d (latest seq %d: %s, %d servers, %d records, covers segments < %d)\n",
			n, latest.Seq, status, latest.Servers, latest.Records, latest.CoveredSegment)
	} else if !info.Legacy {
		fmt.Fprintln(out, "  snapshots: none (next boot replays the whole ledger)")
	}
	if *verbose {
		for _, seg := range info.Segments {
			state := "active"
			if seg.Sealed {
				state = "sealed"
			}
			fmt.Fprintf(out, "    segment %06d: %s %s, %d bytes, %d records", seg.Index, seg.Kind, state, seg.Size, seg.Records)
			if seg.Truncated > 0 {
				fmt.Fprintf(out, ", %d bytes CORRUPT", seg.Truncated)
			}
			fmt.Fprintln(out)
		}
		for _, sn := range info.Snapshots {
			if sn.Valid {
				fmt.Fprintf(out, "    snapshot %d: valid, %d bytes, %d servers, %d records, %d accumulators\n",
					sn.Seq, sn.Size, sn.Servers, sn.Records, sn.Accumulators)
			} else {
				fmt.Fprintf(out, "    snapshot %d: INVALID (%s)\n", sn.Seq, sn.Error)
			}
		}
	}
	return nil
}
