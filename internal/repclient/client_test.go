package repclient

import (
	"bufio"
	"errors"
	"net"
	"testing"
	"time"

	"honestplayer/internal/wire"
)

func TestDialFailure(t *testing.T) {
	// Reserve a port, close it, then dial: connection refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Dial(addr, WithTimeout(time.Second)); err == nil {
		t.Fatal("dial to closed port must fail")
	}
}

// fakeServer accepts one connection and runs handler on it.
func fakeServer(t *testing.T, handler func(net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer func() { _ = conn.Close() }()
		handler(conn)
	}()
	return ln.Addr().String()
}

func TestTimeout(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		// Read the request but never answer.
		_, _ = wire.Read(bufio.NewReader(conn))
		time.Sleep(2 * time.Second)
	})
	c, err := Dial(addr, WithTimeout(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	start := time.Now()
	if err := c.Ping(); err == nil {
		t.Fatal("ping against silent server must time out")
	}
	if time.Since(start) > time.Second {
		t.Fatal("timeout took too long")
	}
}

func TestMismatchedResponseID(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		if _, err := wire.Read(bufio.NewReader(conn)); err != nil {
			return
		}
		env, _ := wire.Encode(wire.TypePong, 999, nil)
		_ = wire.Write(conn, env)
	})
	c, err := Dial(addr, WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if err := c.Ping(); err == nil {
		t.Fatal("mismatched id must fail")
	}
}

func TestUnexpectedResponseType(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		env, err := wire.Read(bufio.NewReader(conn))
		if err != nil {
			return
		}
		resp, _ := wire.Encode(wire.TypeHistoryR, env.ID, wire.HistoryResponse{})
		_ = wire.Write(conn, resp)
	})
	c, err := Dial(addr, WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if err := c.Ping(); err == nil {
		t.Fatal("unexpected response type must fail")
	}
}

func TestRemoteErrorSurfaces(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		env, err := wire.Read(bufio.NewReader(conn))
		if err != nil {
			return
		}
		resp, _ := wire.Encode(wire.TypeError, env.ID, wire.ErrorResponse{Code: "boom", Message: "x"})
		_ = wire.Write(conn, resp)
	})
	c, err := Dial(addr, WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	err = c.Ping()
	var remote *wire.ErrorResponse
	if !errors.As(err, &remote) || remote.Code != "boom" {
		t.Fatalf("err = %v", err)
	}
}

func TestClosedClient(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
}
