package trust

// Accumulator is the serving-path wrapper around a Tracker: it consumes
// transaction outcomes in O(1) like the tracker, but reproduces the owning
// Func's Evaluate contract exactly — including ErrEmptyHistory before the
// first update — and keeps the good/total counts the assessment layer needs
// for Wilson confidence intervals. After consuming a history's outcomes in
// order, Value returns bit-identically what Evaluate returns on that
// history.
type Accumulator struct {
	fn      Func
	tracker Tracker
	n, good int
}

// NewAccumulator returns an incremental accumulator for fn, or (nil, false)
// when fn does not implement TrackerFunc. All built-in trust functions do.
func NewAccumulator(fn Func) (*Accumulator, bool) {
	tf, ok := fn.(TrackerFunc)
	if !ok {
		return nil, false
	}
	return &Accumulator{fn: fn, tracker: tf.NewTracker()}, true
}

// Name returns the name of the wrapped trust function.
func (a *Accumulator) Name() string { return a.fn.Name() }

// Update consumes the outcome of the next transaction in O(1).
func (a *Accumulator) Update(good bool) {
	a.n++
	if good {
		a.good++
	}
	a.tracker.Update(good)
}

// Value returns the current trust value, mirroring Func.Evaluate: it
// returns ErrEmptyHistory before the first update.
func (a *Accumulator) Value() (float64, error) {
	if a.n == 0 {
		return 0, ErrEmptyHistory
	}
	return a.tracker.Value(), nil
}

// Counts returns the number of consumed outcomes and how many were good —
// the inputs of the Wilson score interval around the trust value.
func (a *Accumulator) Counts() (n, good int) { return a.n, a.good }

// SizeBytes returns the approximate resident heap footprint of the
// accumulator. Trust trackers are small fixed-size counters (running sums,
// weighted averages, beta parameters), so a flat estimate covers the wrapper
// struct plus the tracker allocation; the behaviour-side accumulator is where
// per-server memory actually varies.
func (a *Accumulator) SizeBytes() int {
	const accSize = 64 // wrapper struct + interface boxes + counter tracker
	return accSize
}

// Reset returns the accumulator to its initial state.
func (a *Accumulator) Reset() {
	a.n, a.good = 0, 0
	a.tracker.Reset()
}
