package stats

import (
	"fmt"
	"strings"
)

// Histogram counts integer observations over the fixed support [0, max]. It
// is the empirical side of the distribution test: the per-window good-count
// histogram compared against a binomial PMF.
//
// The zero value is not useful; construct with NewHistogram. Histogram
// supports O(1) incremental addition and removal of observations, which is
// what makes the optimised multi-testing scheme linear-time.
type Histogram struct {
	counts []int64
	total  int64
	sum    int64 // sum of observed values, for MLE reuse
}

// NewHistogram returns an empty histogram over the support [0, max].
func NewHistogram(max int) (*Histogram, error) {
	if max < 0 {
		return nil, fmt.Errorf("%w: histogram support max %d", ErrInvalidDistribution, max)
	}
	return &Histogram{counts: make([]int64, max+1)}, nil
}

// MustHistogram is NewHistogram that panics on invalid input.
func MustHistogram(max int) *Histogram {
	h, err := NewHistogram(max)
	if err != nil {
		panic(err)
	}
	return h
}

// Max returns the largest value in the support.
func (h *Histogram) Max() int { return len(h.counts) - 1 }

// Add records one observation of value v. It returns an error when v is
// outside the support.
func (h *Histogram) Add(v int) error {
	if v < 0 || v >= len(h.counts) {
		return fmt.Errorf("%w: observation %d outside [0, %d]", ErrInvalidDistribution, v, h.Max())
	}
	h.counts[v]++
	h.total++
	h.sum += int64(v)
	return nil
}

// Remove deletes one previously recorded observation of value v. It returns
// an error when v is outside the support or has zero count.
func (h *Histogram) Remove(v int) error {
	if v < 0 || v >= len(h.counts) {
		return fmt.Errorf("%w: observation %d outside [0, %d]", ErrInvalidDistribution, v, h.Max())
	}
	if h.counts[v] == 0 {
		return fmt.Errorf("%w: removing value %d with zero count", ErrInvalidDistribution, v)
	}
	h.counts[v]--
	h.total--
	h.sum -= int64(v)
	return nil
}

// AddCount records n observations of value v in O(1), the bulk counterpart
// of Add. The incremental assessment engine uses it to materialise a suffix
// histogram from checkpoint differences in O(support) instead of O(windows).
// It returns an error when v is outside the support or n is negative.
func (h *Histogram) AddCount(v int, n int64) error {
	if v < 0 || v >= len(h.counts) {
		return fmt.Errorf("%w: observation %d outside [0, %d]", ErrInvalidDistribution, v, h.Max())
	}
	if n < 0 {
		return fmt.Errorf("%w: negative count %d for value %d", ErrInvalidDistribution, n, v)
	}
	h.counts[v] += n
	h.total += n
	h.sum += n * int64(v)
	return nil
}

// Count returns the number of observations of value v (0 outside support).
func (h *Histogram) Count(v int) int64 {
	if v < 0 || v >= len(h.counts) {
		return 0
	}
	return h.counts[v]
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int64 { return h.total }

// Sum returns the sum of all recorded observation values.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the sample mean, or 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Freq returns the empirical frequency of value v: count(v) / total. It is
// 0 for an empty histogram.
func (h *Histogram) Freq(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Count(v)) / float64(h.total)
}

// Freqs returns the full empirical frequency table indexed by value.
func (h *Histogram) Freqs() []float64 {
	out := make([]float64, len(h.counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// Reset clears all observations, keeping the support.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.sum = 0
}

// Clone returns an independent copy.
func (h *Histogram) Clone() *Histogram {
	c := &Histogram{counts: make([]int64, len(h.counts)), total: h.total, sum: h.sum}
	copy(c.counts, h.counts)
	return c
}

// AddAll records every observation in vs, stopping at the first error.
func (h *Histogram) AddAll(vs []int) error {
	for _, v := range vs {
		if err := h.Add(v); err != nil {
			return err
		}
	}
	return nil
}

// String renders a compact "v:count" listing of non-zero bins.
func (h *Histogram) String() string {
	var sb strings.Builder
	sb.WriteString("hist{")
	first := true
	for v, c := range h.counts {
		if c == 0 {
			continue
		}
		if !first {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "%d:%d", v, c)
		first = false
	}
	sb.WriteString("}")
	return sb.String()
}
