package core

import (
	"reflect"
	"testing"
	"time"

	"honestplayer/internal/behavior"
	"honestplayer/internal/feedback"
	"honestplayer/internal/stats"
	"honestplayer/internal/trust"
)

// TestServerAccumulatorMatchesAssess checks the incremental assessment
// against TwoPhase.Assess/Accept at every prefix, across testers, trust
// functions and short-history policies. Equality is exact (bit-identical
// floats): both paths run the same arithmetic over the same inputs.
func TestServerAccumulatorMatchesAssess(t *testing.T) {
	cal := stats.NewCalibrator(stats.CalibrationConfig{Replicates: 120, Seed: 5}, 0)
	cfg := behavior.Config{Calibrator: cal, FamilywiseCorrection: true}
	multi, err := behavior.NewMulti(cfg)
	if err != nil {
		t.Fatalf("NewMulti: %v", err)
	}
	collMulti, err := behavior.NewCollusionMulti(cfg)
	if err != nil {
		t.Fatalf("NewCollusionMulti: %v", err)
	}
	weighted, err := trust.NewWeighted(0.5)
	if err != nil {
		t.Fatalf("NewWeighted: %v", err)
	}
	testers := map[string]behavior.Tester{"multi": multi, "collusion-multi": collMulti, "none": nil}
	funcs := map[string]trust.Func{"average": trust.Average{}, "weighted": weighted, "beta": trust.Beta{}}
	policies := []ShortHistoryPolicy{RejectShort, AllowShort}

	full := genHistory(t, "srv", 130, 0.9, 6, stats.NewRNG(31))
	for testerName, tester := range testers {
		for fnName, fn := range funcs {
			for _, policy := range policies {
				tp, err := NewTwoPhase(tester, fn, WithShortHistoryPolicy(policy))
				if err != nil {
					t.Fatalf("NewTwoPhase: %v", err)
				}
				if !tp.SupportsIncremental() {
					t.Fatalf("%s+%s: SupportsIncremental = false", testerName, fnName)
				}
				sa, err := tp.NewServerAccumulator(full.Server())
				if err != nil {
					t.Fatalf("NewServerAccumulator: %v", err)
				}
				label := testerName + "+" + fnName + "/" + policy.String()
				prefix := feedback.NewHistory(full.Server())

				// Empty state first: both paths must fail identically.
				gotA, gotErr := sa.Assess()
				wantA, wantErr := tp.Assess(prefix)
				requireSameAssessment(t, label, 0, gotA, gotErr, wantA, wantErr)

				for i := 0; i < full.Len(); i++ {
					rec := full.At(i)
					sa.Append(rec)
					if err := prefix.Append(rec); err != nil {
						t.Fatalf("append: %v", err)
					}
					gotOK, gotA, gotErr := sa.Accept(0.7)
					wantOK, wantA, wantErr := tp.Accept(prefix, 0.7)
					requireSameAssessment(t, label, i+1, gotA, gotErr, wantA, wantErr)
					if gotOK != wantOK {
						t.Fatalf("%s at n=%d: accept %v != batch %v", label, i+1, gotOK, wantOK)
					}
				}
				if sa.Len() != full.Len() {
					t.Fatalf("%s: Len %d != %d", label, sa.Len(), full.Len())
				}
			}
		}
	}
}

func requireSameAssessment(t *testing.T, label string, n int, got Assessment, gotErr error, want Assessment, wantErr error) {
	t.Helper()
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("%s at n=%d: error mismatch: incremental=%v batch=%v", label, n, gotErr, wantErr)
	}
	if gotErr != nil && gotErr.Error() != wantErr.Error() {
		t.Fatalf("%s at n=%d: error text mismatch:\nincremental: %v\nbatch:       %v", label, n, gotErr, wantErr)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s at n=%d: assessment mismatch:\nincremental: %+v\nbatch:       %+v", label, n, got, want)
	}
}

// genHistory builds a Bernoulli(p) history over a small client pool (the
// attack package has richer generators, but importing it here would cycle).
func genHistory(t *testing.T, server feedback.EntityID, n int, p float64, clients int, rng *stats.RNG) *feedback.History {
	t.Helper()
	h := feedback.NewHistory(server)
	for i := 0; i < n; i++ {
		client := feedback.EntityID(rune('a' + rng.Intn(clients)))
		if err := h.AppendOutcome(client, rng.Float64() < p, time.Unix(int64(i)+1, 0)); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	return h
}

// plainFunc is a trust function without a tracker.
type plainFunc struct{}

func (plainFunc) Name() string                                  { return "plain" }
func (plainFunc) Evaluate(h *feedback.History) (float64, error) { return 0.5, nil }

func TestServerAccumulatorUnsupported(t *testing.T) {
	tp, err := NewTwoPhase(nil, plainFunc{})
	if err != nil {
		t.Fatalf("NewTwoPhase: %v", err)
	}
	if tp.SupportsIncremental() {
		t.Fatal("SupportsIncremental should be false for a non-tracker trust function")
	}
	if _, err := tp.NewServerAccumulator("srv"); err == nil {
		t.Fatal("NewServerAccumulator should fail for a non-tracker trust function")
	}
}
