package store

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"honestplayer/internal/feedback"
)

// fillServer adds n records for server s and returns them in store order.
func fillServer(t *testing.T, st *Store, s feedback.EntityID, n int) []feedback.Feedback {
	t.Helper()
	recs := make([]feedback.Feedback, n)
	for i := 0; i < n; i++ {
		recs[i] = rec(s, feedback.EntityID(fmt.Sprintf("c%d", i%5)), i%3 != 0, int64(i+1))
		if ok, err := st.Add(recs[i]); err != nil || !ok {
			t.Fatalf("add %s/%d: %v %v", s, i, ok, err)
		}
	}
	return recs
}

func TestEvictReinstateRoundTrip(t *testing.T) {
	st := New()
	recs := fillServer(t, st, "srv", 7)
	wantHist, wantVer := st.Snapshot("srv")
	wantBytes := st.ResidentBytes()

	if !st.EvictServer("srv") {
		t.Fatal("EvictServer returned false for a resident server")
	}
	if st.EvictServer("srv") {
		t.Fatal("second EvictServer must be a no-op")
	}
	stub, ok := st.StubOf("srv")
	if !ok {
		t.Fatal("StubOf after evict: not found")
	}
	if stub.Count != 7 || stub.Version != wantVer {
		t.Fatalf("stub = %+v, want count 7 version %d", stub, wantVer)
	}
	if h, v := st.Snapshot("srv"); h != nil || v != wantVer {
		t.Fatalf("Snapshot(evicted) = (%v, %d), want (nil, %d)", h, v, wantVer)
	}
	if _, err := st.History("srv"); !errors.Is(err, ErrEvicted) {
		t.Fatalf("History(evicted) err = %v, want ErrEvicted", err)
	}
	if _, err := st.Add(recs[0]); !errors.Is(err, ErrEvicted) {
		t.Fatalf("Add to evicted err = %v, want ErrEvicted", err)
	}
	if st.ResidentBytes() >= wantBytes {
		t.Fatalf("resident bytes %d not reduced from %d by eviction", st.ResidentBytes(), wantBytes)
	}
	life := st.Lifecycle()
	if life.Resident != 0 || life.Evicted != 1 || life.Evictions != 1 {
		t.Fatalf("lifecycle after evict = %+v", life)
	}

	if err := st.ReinstateServer("srv", recs, nil); err != nil {
		t.Fatalf("reinstate: %v", err)
	}
	gotHist, gotVer := st.Snapshot("srv")
	if gotVer != wantVer {
		t.Fatalf("version after reinstate = %d, want %d (cache keys must survive)", gotVer, wantVer)
	}
	if !reflect.DeepEqual(gotHist.Records(), wantHist.Records()) {
		t.Fatal("reinstated history differs from pre-eviction history")
	}
	// Dedup index must be restored: re-adding an old record is a duplicate,
	// a genuinely new one lands.
	if ok, err := st.Add(recs[3]); err != nil || ok {
		t.Fatalf("re-add of reinstated record = (%v, %v), want dup", ok, err)
	}
	if ok, err := st.Add(rec("srv", "c9", true, 99)); err != nil || !ok {
		t.Fatalf("new add after reinstate = (%v, %v)", ok, err)
	}
	if life := st.Lifecycle(); life.Reinstates != 1 || life.Evicted != 0 {
		t.Fatalf("lifecycle after reinstate = %+v", life)
	}
}

func TestReinstateRejectsWrongRecords(t *testing.T) {
	st := New()
	recs := fillServer(t, st, "srv", 5)
	st.EvictServer("srv")

	if err := st.ReinstateServer("srv", recs[:4], nil); err == nil {
		t.Fatal("reinstate with missing record must fail")
	}
	tampered := append([]feedback.Feedback(nil), recs...)
	tampered[2].Rating = 1 - tampered[2].Rating
	if err := st.ReinstateServer("srv", tampered, nil); err == nil {
		t.Fatal("reinstate with tampered record must fail the XOR digest")
	}
	shuffled := append([]feedback.Feedback(nil), recs...)
	shuffled[0], shuffled[1] = shuffled[1], shuffled[0]
	if err := st.ReinstateServer("srv", shuffled, nil); err == nil {
		t.Fatal("reinstate with out-of-order records must fail")
	}
	if err := st.ReinstateServer("nosuch", recs, nil); err == nil {
		t.Fatal("reinstate of unknown server must fail")
	}
	// The failed attempts must not have mutated the stub.
	if err := st.ReinstateServer("srv", recs, nil); err != nil {
		t.Fatalf("correct reinstate after rejected attempts: %v", err)
	}
}

func TestBudgetEnforced(t *testing.T) {
	st := NewSharded(4)
	for i := 0; i < 64; i++ {
		fillServer(t, st, feedback.EntityID(fmt.Sprintf("s%02d", i)), 6)
	}
	full := st.ResidentBytes()
	budget := full / 4
	st.SetBudget(budget)
	if got := st.ResidentBytes(); got > budget {
		t.Fatalf("SetBudget did not trim: resident %d > budget %d", got, budget)
	}
	life := st.Lifecycle()
	if life.Evicted == 0 || life.Resident+life.Evicted != 64 {
		t.Fatalf("lifecycle after trim = %+v", life)
	}
	// New writes to resident servers keep the store under budget via the
	// synchronous sweep.
	for i := 0; i < 64; i++ {
		id := feedback.EntityID(fmt.Sprintf("s%02d", i))
		if _, err := st.Add(rec(id, "cx", true, 1000+int64(i))); errors.Is(err, ErrEvicted) {
			continue
		} else if err != nil {
			t.Fatalf("add under budget: %v", err)
		}
		if got := st.ResidentBytes(); got > budget {
			t.Fatalf("write pushed store over budget: %d > %d", got, budget)
		}
	}
	if len(st.Stubs()) != st.Lifecycle().Evicted {
		t.Fatalf("Stubs() length %d != evicted count %d", len(st.Stubs()), st.Lifecycle().Evicted)
	}
}

// clearTouched resets every clock bit, simulating entries the sweep has
// already given their second chance.
func clearTouched(st *Store) {
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		for _, e := range sh.byServ {
			e.touched.Store(false)
		}
		sh.mu.Unlock()
	}
}

func TestSecondChanceKeepsHotServers(t *testing.T) {
	st := NewSharded(2)
	for i := 0; i < 40; i++ {
		fillServer(t, st, feedback.EntityID(fmt.Sprintf("s%02d", i)), 4)
	}
	// Writes set the clock bit on every server; age them all out, then
	// re-touch the "hot" half via reads. The sweep's second-chance pass
	// should prefer the cold half.
	clearTouched(st)
	for i := 0; i < 20; i++ {
		st.Snapshot(feedback.EntityID(fmt.Sprintf("s%02d", i)))
	}
	// Evict roughly half the store.
	st.EvictUntil(st.ResidentBytes() / 2)
	hotEvicted, coldEvicted := 0, 0
	for i := 0; i < 40; i++ {
		if _, ok := st.StubOf(feedback.EntityID(fmt.Sprintf("s%02d", i))); ok {
			if i < 20 {
				hotEvicted++
			} else {
				coldEvicted++
			}
		}
	}
	if hotEvicted >= coldEvicted {
		t.Fatalf("second chance failed: %d hot vs %d cold evicted", hotEvicted, coldEvicted)
	}
}

func TestEvictGuardAndPreference(t *testing.T) {
	st := NewSharded(2)
	fillServer(t, st, "pinned", 4)
	fillServer(t, st, "other", 4)
	st.SetEvictGuard(func(s feedback.EntityID) bool { return s == "pinned" })
	if st.EvictServer("pinned") {
		t.Fatal("guard must block EvictServer")
	}
	st.EvictUntil(0)
	if _, ok := st.StubOf("pinned"); ok {
		t.Fatal("guard must block the sweep")
	}
	if _, ok := st.StubOf("other"); !ok {
		t.Fatal("unguarded server must be evicted by EvictUntil(0)")
	}

	// Preference: with plenty of candidates, the preferred victims go first.
	st2 := NewSharded(2)
	for i := 0; i < 30; i++ {
		fillServer(t, st2, feedback.EntityID(fmt.Sprintf("p%02d", i)), 4)
	}
	st2.SetEvictPreference(func(s feedback.EntityID) bool { return s >= "p15" })
	clearTouched(st2) // preferred pass only takes untouched victims
	st2.EvictUntil(st2.ResidentBytes() / 2)
	owned, foreign := 0, 0
	for i := 0; i < 30; i++ {
		if _, ok := st2.StubOf(feedback.EntityID(fmt.Sprintf("p%02d", i))); ok {
			if i >= 15 {
				foreign++
			} else {
				owned++
			}
		}
	}
	if foreign <= owned {
		t.Fatalf("preference ignored: %d preferred vs %d owned evicted", foreign, owned)
	}
}

func TestStubEncodeDecodeRoundTrip(t *testing.T) {
	stubs := []Stub{
		{Server: "a", Count: 0, XOR: 0, Version: 0, SnapSeq: 0},
		{Server: "srv-0001", Count: 12, XOR: 0xdeadbeefcafe, Version: 9, SnapSeq: 3},
		{Server: feedback.EntityID(string(make([]byte, 300))), Count: 1 << 30, XOR: ^uint64(0), Version: 1 << 40, SnapSeq: 1 << 20},
	}
	var buf []byte
	for _, s := range stubs {
		buf = AppendStub(buf, s)
	}
	for i, want := range stubs {
		got, n, err := DecodeStub(buf)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("decode %d = %+v, want %+v", i, got, want)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes after decoding all stubs", len(buf))
	}
}

func TestDecodeStubRejectsCorrupt(t *testing.T) {
	good := AppendStub(nil, Stub{Server: "srv", Count: 5, XOR: 7, Version: 2, SnapSeq: 1})
	for cut := 0; cut < len(good); cut++ {
		if _, _, err := DecodeStub(good[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, _, err := DecodeStub(AppendStub(nil, Stub{Server: ""})); err == nil {
		t.Fatal("empty server ID accepted")
	}
}

func FuzzStubDecode(f *testing.F) {
	f.Add(AppendStub(nil, Stub{Server: "srv", Count: 5, XOR: 7, Version: 2, SnapSeq: 1}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, n, err := DecodeStub(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Whatever decodes must survive a re-encode/decode cycle unchanged
		// (byte-identity is too strong: uvarints accept non-minimal forms).
		enc := AppendStub(nil, s)
		s2, n2, err := DecodeStub(enc)
		if err != nil {
			t.Fatalf("re-decode of %+v: %v", s, err)
		}
		if n2 != len(enc) || !reflect.DeepEqual(s2, s) {
			t.Fatalf("round trip: %+v (%d bytes) vs %+v (%d of %d)", s, len(enc), s2, n2, len(enc))
		}
	})
}
