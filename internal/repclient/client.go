// Package repclient is the client library for the reputation server: it
// submits feedback, fetches histories, and requests two-phase trust
// assessments over the wire protocol.
//
// Every method has a context-taking variant (PingCtx, SubmitCtx, …) whose
// deadline bounds the round trip; the plain methods delegate with a
// background context and the client's configured timeout. After any
// transport failure — timeout, short read, id mismatch, unattributable
// error frame — the connection is poisoned (a late response could otherwise
// be read as the answer to the next request) and the client transparently
// redials on the next call; if the redial fails the error matches
// ErrConnBroken.
//
// By default the client negotiates the binary v2 protocol at dial time and
// falls back to JSON when the server predates it (ProtoAuto). On a v2
// connection concurrent callers share one pipelined connection: up to
// WithWindow requests ride in flight at once and responses are paired with
// callers by envelope id, so one slow request does not stall the others and
// a cancelled request simply abandons its id instead of poisoning the
// stream. WithProtocol(ProtoJSON) restores the exact pre-v2 lock-step
// behaviour.
package repclient

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"honestplayer/internal/feedback"
	"honestplayer/internal/wire"
)

// DefaultTimeout bounds each request round trip.
const DefaultTimeout = 5 * time.Second

// ErrClosed reports use of a closed client.
var ErrClosed = errors.New("repclient: client closed")

// ErrConnBroken reports that the connection was poisoned by an earlier
// transport failure and could not be re-established.
var ErrConnBroken = errors.New("repclient: connection broken")

// Proto selects the wire protocol a client speaks.
type Proto int

const (
	// ProtoAuto attempts the v2 handshake and falls back to JSON when the
	// server does not speak v2. The fallback is sticky: once a server
	// answers in JSON, redials skip the handshake.
	ProtoAuto Proto = iota
	// ProtoJSON speaks the v1 JSON protocol only — byte-for-byte the
	// pre-v2 client, lock-step over one connection.
	ProtoJSON
	// ProtoV2 requires the binary v2 protocol; dialing a JSON-only server
	// fails with an error matching wire.ErrNotV2.
	ProtoV2
)

// Client is a reputation-server client, safe for concurrent use. On a JSON
// connection requests are serialised lock-step over one connection; on a
// negotiated v2 connection they are pipelined through a shared multiplexer
// (see the package comment).
type Client struct {
	addr    string
	timeout time.Duration
	proto   Proto
	window  int
	// addrs and rtts are set by DialCluster: the full candidate address
	// list and the probed round trip per address. Redials then walk the
	// candidates in failover order instead of retrying one address (see
	// probe.go). Guarded by mu after the client escapes DialCluster.
	addrs []string
	rtts  map[string]time.Duration

	mu     sync.Mutex
	conn   net.Conn
	reader *bufio.Reader
	mux    *mux // non-nil iff the current connection negotiated v2
	nextID uint64
	closed bool
	// broken marks a JSON connection poisoned: a request died
	// mid-round-trip, so a late response may still be in flight and the
	// stream cannot be trusted to pair responses with requests. The next
	// round trip redials. (v2 connections track poisoning in mux.err —
	// see mux.dead — because any of many in-flight callers may poison.)
	broken bool
}

// Option configures a Client.
type Option func(*Client)

// WithTimeout overrides the per-request timeout.
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.timeout = d }
}

// WithProtocol pins the wire protocol instead of auto-negotiating.
func WithProtocol(p Proto) Option {
	return func(c *Client) { c.proto = p }
}

// WithWindow overrides the v2 in-flight window (DefaultWindow when n <= 0;
// no effect on JSON connections, which are lock-step by construction).
func WithWindow(n int) Option {
	return func(c *Client) { c.window = n }
}

// Dial connects to a reputation server and negotiates the wire protocol
// according to the configured Proto (ProtoAuto by default).
func Dial(addr string, opts ...Option) (*Client, error) {
	c := &Client{addr: addr, timeout: DefaultTimeout, proto: ProtoAuto, window: DefaultWindow}
	for _, o := range opts {
		o(c)
	}
	ctx := context.Background()
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	if err := c.connectLocked(ctx); err != nil {
		return nil, fmt.Errorf("repclient: dial %s: %w", addr, err)
	}
	return c, nil
}

// Protocol reports the wire protocol of the current connection: "v2" or
// "json".
func (c *Client) Protocol() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.mux != nil {
		return "v2"
	}
	return "json"
}

// connectLocked dials and negotiates a fresh connection per c.proto,
// installing either a pipelined v2 mux or a lock-step JSON reader. Called
// with c.mu held (or from Dial, before the client escapes its goroutine).
func (c *Client) connectLocked(ctx context.Context) error {
	d := net.Dialer{Timeout: c.timeout}
	nc, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return err
	}
	if c.proto != ProtoJSON {
		reader, nerr := negotiateV2(nc, c.timeout)
		if nerr == nil {
			c.conn = nc
			c.reader = nil
			c.mux = newMux(nc, reader, c.window)
			c.broken = false
			return nil
		}
		_ = nc.Close()
		if c.proto == ProtoV2 || !errors.Is(nerr, wire.ErrNotV2) {
			return nerr
		}
		// ProtoAuto against a JSON-only server: it answered the hello with
		// its id-0 error frame and closed, so redial and speak JSON. Pin
		// the choice so redials skip the wasted handshake round trip.
		c.proto = ProtoJSON
		if nc, err = d.DialContext(ctx, "tcp", c.addr); err != nil {
			return err
		}
	}
	c.conn = nc
	c.reader = bufio.NewReader(nc)
	c.mux = nil
	c.broken = false
	return nil
}

// Close releases the connection. It is idempotent.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}

// redialLocked replaces a poisoned connection, re-running protocol
// negotiation — across every configured address, in failover order, for a
// cluster client. Called with c.mu held.
func (c *Client) redialLocked(ctx context.Context) error {
	_ = c.conn.Close()
	if err := c.connectAnyLocked(ctx); err != nil {
		return fmt.Errorf("%w: redial %s: %v", ErrConnBroken, c.addr, err)
	}
	return nil
}

// deadline derives the round-trip deadline: the context's deadline when it
// has one, the configured timeout otherwise.
func (c *Client) deadline(ctx context.Context) time.Time {
	if d, ok := ctx.Deadline(); ok {
		return d
	}
	return time.Now().Add(c.timeout)
}

// roundTrip sends one request and decodes the matching response into out
// (skipped when out is nil). A TypeError response is returned as a
// *wire.ErrorResponse error. Any transport failure poisons the connection;
// the next round trip redials.
//
// It is a package function rather than a method only because Go methods
// cannot have type parameters: the response type T lets the expected frame
// decode straight into out in one json.Unmarshal — envelope and payload
// together — instead of detouring through a RawMessage. Anything but the
// expected response (error frames, id mismatches, bad versions) takes the
// slow path through wire.Parse for the precise error semantics.
func roundTrip[T any](c *Client, ctx context.Context, reqType, respType wire.MsgType, payload any, out *T) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		c.mu.Unlock()
		return fmt.Errorf("repclient: %s: %w", reqType, err)
	}
	if c.broken || (c.mux != nil && c.mux.dead()) {
		if err := c.redialLocked(ctx); err != nil {
			c.mu.Unlock()
			return err
		}
	}
	c.nextID++
	id := c.nextID
	if mx := c.mux; mx != nil {
		// v2: release the client lock before the round trip so concurrent
		// callers pipeline their requests onto the shared connection.
		c.mu.Unlock()
		return muxRoundTrip(c, mx, ctx, id, reqType, respType, payload, out)
	}
	defer c.mu.Unlock()
	env, err := wire.Encode(reqType, id, payload)
	if err != nil {
		return err
	}
	if err := c.conn.SetDeadline(c.deadline(ctx)); err != nil {
		return fmt.Errorf("repclient: set deadline: %w", err)
	}
	// A cancelled context must interrupt a blocked read, not just a
	// deadline: fire an immediate conn deadline on cancellation. The conn
	// is captured directly (not via c) because roundTrip holds c.mu for the
	// whole call; poking an already-replaced conn is harmless.
	conn := c.conn
	stop := context.AfterFunc(ctx, func() {
		_ = conn.SetDeadline(time.Unix(1, 0))
	})
	defer stop()
	if err := wire.Write(c.conn, env); err != nil {
		c.broken = true
		return c.transportErr(ctx, reqType, err)
	}
	line, err := wire.ReadRaw(c.reader)
	if err != nil {
		c.broken = true
		return c.transportErr(ctx, reqType, fmt.Errorf("read response: %w", err))
	}
	var fast struct {
		V       int          `json:"v"`
		Type    wire.MsgType `json:"type"`
		ID      uint64       `json:"id"`
		Payload *T           `json:"payload"`
	}
	fast.Payload = out
	if err := json.Unmarshal(line, &fast); err == nil &&
		fast.V == wire.Version && fast.Type == respType && fast.ID == id {
		return nil
	}
	resp, err := wire.Parse(line)
	if err != nil {
		c.broken = true
		return c.transportErr(ctx, reqType, fmt.Errorf("read response: %w", err))
	}
	if resp.Type == wire.TypeError && resp.ID == wire.UnattributableID {
		// The server could not parse a frame and cannot say which request
		// the error answers; the stream is desynchronised (PROTOCOL.md
		// documents id 0 as unattributable and connection-fatal).
		c.broken = true
		var e wire.ErrorResponse
		if derr := wire.DecodePayload(resp, &e); derr != nil {
			return derr
		}
		return fmt.Errorf("%w: unattributable server error: %v", ErrConnBroken, &e)
	}
	if resp.ID != id {
		// A response for another id means an earlier abandoned request's
		// late answer: drop the connection before it poisons anything else.
		c.broken = true
		return fmt.Errorf("%w: response id %d for request %d", ErrConnBroken, resp.ID, id)
	}
	if resp.Type == wire.TypeError {
		var e wire.ErrorResponse
		if err := wire.DecodePayload(resp, &e); err != nil {
			return err
		}
		return &e
	}
	if resp.Type != respType {
		return fmt.Errorf("repclient: unexpected response type %s", resp.Type)
	}
	if out == nil {
		return nil
	}
	return wire.DecodePayload(resp, out)
}

// transportErr dresses a transport failure, preferring the context's own
// error when the failure was caused by cancellation or deadline expiry.
func (c *Client) transportErr(ctx context.Context, reqType wire.MsgType, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return fmt.Errorf("repclient: %s: %w", reqType, cerr)
	}
	return fmt.Errorf("repclient: %s: %w", reqType, err)
}

// Ping checks connectivity.
func (c *Client) Ping() error { return c.PingCtx(context.Background()) }

// PingCtx is Ping bounded by ctx.
func (c *Client) PingCtx(ctx context.Context) error {
	return roundTrip[struct{}](c, ctx, wire.TypePing, wire.TypePong, nil, nil)
}

// Submit stores one feedback record; it reports whether the record was new.
func (c *Client) Submit(f feedback.Feedback) (bool, error) {
	return c.SubmitCtx(context.Background(), f)
}

// SubmitCtx is Submit bounded by ctx.
func (c *Client) SubmitCtx(ctx context.Context, f feedback.Feedback) (bool, error) {
	var resp wire.SubmitResponse
	if err := roundTrip(c, ctx, wire.TypeSubmit, wire.TypeSubmitR, wire.SubmitRequest{Feedback: f}, &resp); err != nil {
		return false, err
	}
	return resp.Stored, nil
}

// SubmitBatchReport stores many records in one round trip (or several:
// batches above wire.MaxSubmitBatch are chunked transparently and the chunk
// responses merged) and returns the server's per-record report. Items[i]
// answers recs[i] and invalid records do not abort the batch: every valid
// record is stored and each rejected one is listed with its request index
// and reason. Only transport and request-level failures return an error;
// records of chunks submitted before such a failure stay stored.
func (c *Client) SubmitBatchReport(recs []feedback.Feedback) (wire.BatchResponse, error) {
	return c.SubmitBatchReportCtx(context.Background(), recs)
}

// SubmitBatchReportCtx is SubmitBatchReport bounded by ctx. The deadline
// covers the whole call: every chunk's round trip runs under the same ctx.
func (c *Client) SubmitBatchReportCtx(ctx context.Context, recs []feedback.Feedback) (wire.BatchResponse, error) {
	if len(recs) == 0 {
		return wire.BatchResponse{}, nil
	}
	out := wire.BatchResponse{Items: make([]wire.SubmitBatchItem, 0, len(recs))}
	for start := 0; start < len(recs); start += wire.MaxSubmitBatch {
		chunk := recs[start:min(start+wire.MaxSubmitBatch, len(recs))]
		var resp wire.BatchResponse
		if err := roundTrip(c, ctx, wire.TypeSubmitB, wire.TypeSubmitBR, wire.BatchRequest{Records: chunk}, &resp); err != nil {
			return wire.BatchResponse{}, err
		}
		if len(resp.Items) != len(chunk) {
			// The protocol guarantees one item per submitted record; a
			// mismatch means the report cannot be aligned with the request.
			return wire.BatchResponse{}, fmt.Errorf("repclient: submit batch returned %d items for %d records",
				len(resp.Items), len(chunk))
		}
		out.Stored += resp.Stored
		out.Duplicates += resp.Duplicates
		for _, rej := range resp.Rejected {
			rej.Index += start
			out.Rejected = append(out.Rejected, rej)
		}
		out.Items = append(out.Items, resp.Items...)
	}
	return out, nil
}

// SubmitBatch stores many records in one round trip, reporting how many
// were new and how many duplicates. When the server rejected records, the
// counts are returned together with an error naming the first rejection.
func (c *Client) SubmitBatch(recs []feedback.Feedback) (stored, duplicates int, err error) {
	return c.SubmitBatchCtx(context.Background(), recs)
}

// SubmitBatchCtx is SubmitBatch bounded by ctx.
func (c *Client) SubmitBatchCtx(ctx context.Context, recs []feedback.Feedback) (stored, duplicates int, err error) {
	resp, err := c.SubmitBatchReportCtx(ctx, recs)
	if err != nil {
		return 0, 0, err
	}
	if len(resp.Rejected) > 0 {
		r := resp.Rejected[0]
		return resp.Stored, resp.Duplicates, fmt.Errorf(
			"repclient: batch rejected %d of %d records (first: record %d: %s)",
			len(resp.Rejected), len(recs), r.Index, r.Reason)
	}
	return resp.Stored, resp.Duplicates, nil
}

// History fetches up to limit most recent records of a server (0 = server
// default), along with the full history length.
func (c *Client) History(server feedback.EntityID, limit int) ([]feedback.Feedback, int, error) {
	return c.HistoryCtx(context.Background(), server, limit)
}

// HistoryCtx is History bounded by ctx.
func (c *Client) HistoryCtx(ctx context.Context, server feedback.EntityID, limit int) ([]feedback.Feedback, int, error) {
	var resp wire.HistoryResponse
	req := wire.HistoryRequest{Server: server, Limit: limit}
	if err := roundTrip(c, ctx, wire.TypeHistory, wire.TypeHistoryR, req, &resp); err != nil {
		return nil, 0, err
	}
	return resp.Records, resp.Total, nil
}

// Assess runs a server-side two-phase assessment and accept decision.
func (c *Client) Assess(server feedback.EntityID, threshold float64) (wire.AssessResponse, error) {
	return c.AssessCtx(context.Background(), server, threshold)
}

// AssessCtx is Assess bounded by ctx.
func (c *Client) AssessCtx(ctx context.Context, server feedback.EntityID, threshold float64) (wire.AssessResponse, error) {
	var resp wire.AssessResponse
	req := wire.AssessRequest{Server: server, Threshold: threshold}
	err := roundTrip(c, ctx, wire.TypeAssess, wire.TypeAssessR, req, &resp)
	return resp, err
}

// AssessBatch assesses many servers in one round trip (or several: requests
// above wire.MaxAssessBatch are chunked transparently and the chunk
// responses concatenated). Items[i] answers servers[i] and per-server
// failures — unknown servers above all — land in their item's Error slot
// without failing the batch; only transport and request-level failures
// return an error, in which case no items are returned (a partially
// assessed prefix would be indistinguishable from a short response).
func (c *Client) AssessBatch(servers []feedback.EntityID, threshold float64) ([]wire.AssessBatchItem, error) {
	return c.AssessBatchCtx(context.Background(), servers, threshold)
}

// AssessBatchCtx is AssessBatch bounded by ctx. The deadline covers the
// whole call: every chunk's round trip runs under the same ctx.
func (c *Client) AssessBatchCtx(ctx context.Context, servers []feedback.EntityID, threshold float64) ([]wire.AssessBatchItem, error) {
	if len(servers) == 0 {
		return nil, errors.New("repclient: empty assess batch")
	}
	items := make([]wire.AssessBatchItem, 0, len(servers))
	for start := 0; start < len(servers); start += wire.MaxAssessBatch {
		chunk := servers[start:min(start+wire.MaxAssessBatch, len(servers))]
		var resp wire.AssessBatchResponse
		req := wire.AssessBatchRequest{Servers: chunk, Threshold: threshold}
		if err := roundTrip(c, ctx, wire.TypeAssessB, wire.TypeAssessBR, req, &resp); err != nil {
			return nil, err
		}
		if len(resp.Items) != len(chunk) {
			// The protocol guarantees one item per requested server; a
			// mismatch means the response cannot be aligned with the request.
			return nil, fmt.Errorf("repclient: assess batch returned %d items for %d servers",
				len(resp.Items), len(chunk))
		}
		items = append(items, resp.Items...)
	}
	return items, nil
}
