package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrInvalidDistribution reports parameters outside the valid domain of a
// distribution constructor.
var ErrInvalidDistribution = errors.New("stats: invalid distribution parameters")

// Binomial is the distribution B(n, p) of the number of successes in n
// independent Bernoulli(p) trials. It is the honest-player model of the
// paper: the number of good transactions in a window of n transactions by a
// server with trustworthiness p follows B(n, p).
//
// The zero value is not useful; construct with NewBinomial.
type Binomial struct {
	n int
	p float64

	// pmf caches P(X = k) for k = 0..n; computed once at construction in
	// log space for numerical stability, so repeated distance computations
	// are O(n) table lookups.
	pmf []float64
}

// NewBinomial returns the binomial distribution B(n, p). It returns
// ErrInvalidDistribution if n < 0 or p is outside [0, 1] or NaN.
func NewBinomial(n int, p float64) (*Binomial, error) {
	b := &Binomial{n: n, p: p, pmf: make([]float64, n+1)}
	if err := BinomialPMFInto(b.pmf, n, p); err != nil {
		return nil, err
	}
	return b, nil
}

// MustBinomial is NewBinomial that panics on invalid parameters. Reserve it
// for statically known-valid parameters (tests, package defaults).
func MustBinomial(n int, p float64) *Binomial {
	b, err := NewBinomial(n, p)
	if err != nil {
		panic(err)
	}
	return b
}

// BinomialPMFInto fills dst, which must have length n+1, with the PMF of
// B(n, p), computed in log space for numerical stability. NewBinomial
// delegates to it, so a caller-managed buffer (e.g. the incremental
// accumulator's PMF arena) holds bit-identical values to a freshly
// constructed Binomial's table — there is exactly one fill code path.
func BinomialPMFInto(dst []float64, n int, p float64) error {
	if n < 0 || math.IsNaN(p) || p < 0 || p > 1 {
		return fmt.Errorf("%w: B(%d, %v)", ErrInvalidDistribution, n, p)
	}
	if len(dst) != n+1 {
		return fmt.Errorf("%w: pmf buffer length %d for B(%d,·)", ErrInvalidDistribution, len(dst), n)
	}
	switch {
	case p == 0:
		clear(dst)
		dst[0] = 1
	case p == 1:
		clear(dst)
		dst[n] = 1
	default:
		logP, logQ := math.Log(p), math.Log1p(-p)
		lgN, _ := math.Lgamma(float64(n) + 1)
		for k := 0; k <= n; k++ {
			lgK, _ := math.Lgamma(float64(k) + 1)
			lgNK, _ := math.Lgamma(float64(n-k) + 1)
			logPMF := lgN - lgK - lgNK + float64(k)*logP + float64(n-k)*logQ
			dst[k] = math.Exp(logPMF)
		}
	}
	return nil
}

// N returns the number of trials.
func (b *Binomial) N() int { return b.n }

// P returns the per-trial success probability.
func (b *Binomial) P() float64 { return b.p }

// PMF returns P(X = k). It is 0 for k outside [0, n].
func (b *Binomial) PMF(k int) float64 {
	if k < 0 || k > b.n {
		return 0
	}
	return b.pmf[k]
}

// PMFTable returns a copy of the full probability mass table indexed by k.
func (b *Binomial) PMFTable() []float64 {
	out := make([]float64, len(b.pmf))
	copy(out, b.pmf)
	return out
}

// CDF returns P(X <= k).
func (b *Binomial) CDF(k int) float64 {
	if k < 0 {
		return 0
	}
	if k >= b.n {
		return 1
	}
	sum := 0.0
	for i := 0; i <= k; i++ {
		sum += b.pmf[i]
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// Quantile returns the smallest k with CDF(k) >= q for q in [0, 1].
func (b *Binomial) Quantile(q float64) int {
	if q <= 0 {
		return 0
	}
	if q >= 1 {
		return b.n
	}
	sum := 0.0
	for k := 0; k <= b.n; k++ {
		sum += b.pmf[k]
		if sum >= q {
			return k
		}
	}
	return b.n
}

// Mean returns n·p.
func (b *Binomial) Mean() float64 { return float64(b.n) * b.p }

// Variance returns n·p·(1−p).
func (b *Binomial) Variance() float64 { return float64(b.n) * b.p * (1 - b.p) }

// StdDev returns the standard deviation.
func (b *Binomial) StdDev() float64 { return math.Sqrt(b.Variance()) }

// Sample draws one variate using rng.
func (b *Binomial) Sample(rng *RNG) int { return rng.Binomial(b.n, b.p) }

// SampleN draws count variates using rng.
func (b *Binomial) SampleN(rng *RNG, count int) []int {
	out := make([]int, count)
	for i := range out {
		out[i] = rng.Binomial(b.n, b.p)
	}
	return out
}

// String implements fmt.Stringer.
func (b *Binomial) String() string { return fmt.Sprintf("B(%d, %g)", b.n, b.p) }

// BinomialMLE returns the maximum-likelihood estimate of p for B(m, p) given
// per-window success counts, i.e. the total number of successes divided by
// the total number of trials. It returns an error when the sample is empty
// or a count is outside [0, m].
func BinomialMLE(m int, counts []int) (float64, error) {
	if m <= 0 {
		return 0, fmt.Errorf("%w: window size %d", ErrInvalidDistribution, m)
	}
	if len(counts) == 0 {
		return 0, fmt.Errorf("%w: empty sample", ErrInvalidDistribution)
	}
	total := 0
	for _, c := range counts {
		if c < 0 || c > m {
			return 0, fmt.Errorf("%w: count %d outside [0, %d]", ErrInvalidDistribution, c, m)
		}
		total += c
	}
	return float64(total) / float64(m*len(counts)), nil
}
