package experiment

import (
	"errors"
	"fmt"
	"time"

	"honestplayer/internal/attack"
	"honestplayer/internal/behavior"
	"honestplayer/internal/core"
	"honestplayer/internal/stats"
	"honestplayer/internal/trust"
)

// AblationCUSUMConfig parameterises the change-detection ablation: how fast
// the online CUSUM detector and the windowed multi-test flag a hibernating
// turn, as a function of the post-turn quality.
type AblationCUSUMConfig struct {
	// PostQualities are the post-turn success probabilities; nil means
	// {0, 0.2, 0.4, 0.6}.
	PostQualities []float64
	// Prep is the honest prefix length; zero means 400.
	Prep int
	// PrepP is the honest quality; zero means 0.95.
	PrepP float64
	// MaxDelay bounds the measured delay; zero means 300.
	MaxDelay int
	// Trials per point; zero means 100.
	Trials int
	// Seed drives all randomness.
	Seed uint64
	// CalibrationReplicates tunes ε estimation; zero means 500.
	CalibrationReplicates int
}

func (c AblationCUSUMConfig) withDefaults() AblationCUSUMConfig {
	if c.PostQualities == nil {
		c.PostQualities = []float64{0, 0.2, 0.4, 0.6}
	}
	if c.Prep == 0 {
		c.Prep = 400
	}
	if c.PrepP == 0 {
		c.PrepP = 0.95
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = 300
	}
	if c.Trials == 0 {
		c.Trials = 100
	}
	return c
}

// RunAblationCUSUM measures the mean detection delay (transactions after
// the behaviour change; undetected runs count as MaxDelay) of the CUSUM
// detector versus the windowed multi-test.
func RunAblationCUSUM(cfg AblationCUSUMConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	cal := newCalibrator(cfg.Seed+7000, cfg.CalibrationReplicates)
	multi, err := behavior.NewMulti(behavior.Config{Calibrator: cal})
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "ablation-cusum",
		Title:  "Detection delay after a hibernating turn: CUSUM vs. multi-testing",
		XLabel: "post-turn quality",
		YLabel: fmt.Sprintf("mean detection delay (transactions, cap %d)", cfg.MaxDelay),
	}
	cusumSeries := Series{Name: "cusum(p1=0.5,h=12)"}
	multiSeries := Series{Name: "multi-testing (per transaction)"}
	rng := stats.NewRNG(cfg.Seed)
	for _, q := range cfg.PostQualities {
		cusumTotal, multiTotal := 0, 0
		for trial := 0; trial < cfg.Trials; trial++ {
			h, err := attack.PrepareHistory("a", cfg.Prep, cfg.PrepP, 50, rng)
			if err != nil {
				return nil, err
			}
			detector, err := behavior.NewCUSUM(cfg.PrepP, 0.5, 12)
			if err != nil {
				return nil, err
			}
			for i := 0; i < h.Len(); i++ {
				detector.Observe(h.At(i).Good())
			}
			if detector.Alarmed() {
				// False alarm during prep: restart the detector for a fair
				// post-turn measurement.
				detector.Reset()
			}
			cusumDelay, multiDelay := cfg.MaxDelay, cfg.MaxDelay
			for d := 1; d <= cfg.MaxDelay; d++ {
				good := rng.Bernoulli(q)
				if err := h.AppendOutcome("v", good, logical(cfg.Prep+d)); err != nil {
					return nil, err
				}
				if cusumDelay == cfg.MaxDelay && detector.Observe(good) {
					cusumDelay = d
				}
				if multiDelay == cfg.MaxDelay {
					v, err := multi.Test(h)
					if err != nil && !errors.Is(err, behavior.ErrInsufficientHistory) {
						return nil, err
					}
					if err == nil && !v.Honest {
						multiDelay = d
					}
				}
				if cusumDelay < cfg.MaxDelay && multiDelay < cfg.MaxDelay {
					break
				}
			}
			cusumTotal += cusumDelay
			multiTotal += multiDelay
		}
		cusumSeries.Points = append(cusumSeries.Points, Point{
			X: q, Y: float64(cusumTotal) / float64(cfg.Trials)})
		multiSeries.Points = append(multiSeries.Points, Point{
			X: q, Y: float64(multiTotal) / float64(cfg.Trials)})
	}
	res.Series = append(res.Series, cusumSeries, multiSeries)
	res.Notes = append(res.Notes,
		"with end-aligned windows the multi-test also reacts per transaction and detects slightly faster; CUSUM's advantage is O(1) per-transaction cost versus a full re-test")
	return res, nil
}

// AblationLambdaConfig parameterises the λ-sensitivity ablation of the
// weighted trust function: attacker cost as λ varies, with and without
// Scheme-2 behaviour testing.
type AblationLambdaConfig struct {
	// Lambdas to sweep; nil means {0.1, 0.3, 0.5, 0.7, 0.9}.
	Lambdas []float64
	// Prep is the preparation length; zero means 400.
	Prep int
	// GoalBad is M; zero means 20.
	GoalBad int
	// Trials per point; zero means 3.
	Trials int
	// Seed drives all randomness.
	Seed uint64
	// CalibrationReplicates tunes ε estimation; zero means 500.
	CalibrationReplicates int
}

func (c AblationLambdaConfig) withDefaults() AblationLambdaConfig {
	if c.Lambdas == nil {
		c.Lambdas = []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	}
	if c.Prep == 0 {
		c.Prep = 400
	}
	if c.GoalBad == 0 {
		c.GoalBad = DefaultGoalBad
	}
	if c.Trials == 0 {
		c.Trials = 3
	}
	return c
}

// RunAblationLambda measures the strategic attacker's cost against the
// weighted function across λ, bare and with Scheme-2 testing. The paper
// fixes λ = 0.5; the sweep shows how much of Fig. 4's baseline cost comes
// from that choice.
func RunAblationLambda(cfg AblationLambdaConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	cal := newCalibrator(cfg.Seed+8000, cfg.CalibrationReplicates)
	multi, err := behavior.NewMulti(behavior.Config{Calibrator: cal})
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "ablation-lambda",
		Title:  "Weighted-function λ sweep: attacker cost, bare vs. scheme2",
		XLabel: "lambda",
		YLabel: fmt.Sprintf("good transactions to launch %d attacks", cfg.GoalBad),
	}
	bare := Series{Name: "weighted"}
	tested := Series{Name: "scheme2+weighted"}
	for _, lambda := range cfg.Lambdas {
		fn, err := trust.NewWeighted(lambda)
		if err != nil {
			return nil, err
		}
		for _, tc := range []struct {
			series *Series
			tester behavior.Tester
		}{{&bare, nil}, {&tested, multi}} {
			assessor, err := core.NewTwoPhase(tc.tester, fn)
			if err != nil {
				return nil, err
			}
			total := 0
			for trial := 0; trial < cfg.Trials; trial++ {
				rng := stats.NewRNG(cfg.Seed ^ (uint64(trial+1) * 7919))
				h, err := attack.PrepareHistory("a", cfg.Prep, DefaultPrepP, 50, rng)
				if err != nil {
					return nil, err
				}
				s := &attack.Strategic{
					Assessor: assessor, Threshold: DefaultThreshold,
					GoalBad: cfg.GoalBad, MaxSteps: 500 * cfg.GoalBad,
				}
				cost, err := s.Run(h, rng)
				if err != nil && !errors.Is(err, attack.ErrGoalUnreachable) {
					return nil, err
				}
				total += cost.Good
			}
			tc.series.Points = append(tc.series.Points, Point{
				X: lambda, Y: float64(total) / float64(cfg.Trials)})
		}
	}
	res.Series = append(res.Series, bare, tested)
	return res, nil
}

// logical maps a transaction index to a timestamp; simulations care about
// order only.
func logical(i int) time.Time { return time.Unix(int64(i), 0).UTC() }
