package repclient

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"honestplayer/internal/wire"
)

// fakeNode is a minimal v2-speaking server for failover tests: it accepts
// any number of connections, answers ping (after pingDelay, which shapes the
// RTT the probing dial measures) and history (with its fixed total, which
// identifies the node that served a call). killOnHistory makes it close the
// connection instead of answering the next history request — the
// mid-pipeline crash the client must fail over from.
type fakeNode struct {
	ln        net.Listener
	total     int
	pingDelay time.Duration

	mu            sync.Mutex
	conns         []net.Conn
	killOnHistory bool
}

func newFakeNode(t *testing.T, total int, pingDelay time.Duration) *fakeNode {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n := &fakeNode{ln: ln, total: total, pingDelay: pingDelay}
	t.Cleanup(n.kill)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			n.mu.Lock()
			n.conns = append(n.conns, conn)
			n.mu.Unlock()
			go n.serve(conn)
		}
	}()
	return n
}

func (n *fakeNode) addr() string { return n.ln.Addr().String() }

// kill closes the listener and every live connection: in-flight requests
// break, and redials are refused.
func (n *fakeNode) kill() {
	_ = n.ln.Close()
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, c := range n.conns {
		_ = c.Close()
	}
	n.conns = nil
}

func (n *fakeNode) setKillOnHistory(v bool) {
	n.mu.Lock()
	n.killOnHistory = v
	n.mu.Unlock()
}

func (n *fakeNode) serve(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	reader := bufio.NewReader(conn)
	if _, err := wire.ReadHello(reader); err != nil {
		return
	}
	if err := wire.WriteHelloAck(conn); err != nil {
		return
	}
	for {
		env, err := wire.ReadV2(reader)
		if err != nil {
			return
		}
		var resp wire.Envelope
		switch env.Type {
		case wire.TypePing:
			time.Sleep(n.pingDelay)
			resp, err = wire.V2Codec.Encode(wire.TypePong, env.ID, nil)
		case wire.TypeHistory:
			n.mu.Lock()
			die := n.killOnHistory
			n.mu.Unlock()
			if die {
				return // close mid-request: the caller's frame never gets an answer
			}
			resp, err = wire.V2Codec.Encode(wire.TypeHistoryR, env.ID, wire.HistoryResponse{Total: n.total})
		default:
			return
		}
		if err != nil {
			return
		}
		if err := wire.WriteV2(conn, resp); err != nil {
			return
		}
	}
}

// TestDialClusterPrefersFastest: the probing dial measures every address and
// talks to the quickest responder.
func TestDialClusterPrefersFastest(t *testing.T) {
	fast := newFakeNode(t, 1, 0)
	slow := newFakeNode(t, 2, 80*time.Millisecond)

	c, err := DialCluster([]string{slow.addr(), fast.addr()},
		WithProtocol(ProtoV2), WithTimeout(3*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if c.Addr() != fast.addr() {
		t.Fatalf("preferred %s; want fastest node %s", c.Addr(), fast.addr())
	}
	rtts := c.RTTs()
	if len(rtts) != 2 {
		t.Fatalf("RTTs() = %v; want both addresses probed", rtts)
	}
	if rtts[fast.addr()] >= rtts[slow.addr()] {
		t.Fatalf("RTTs() = %v; fast node not measured faster", rtts)
	}
	if _, total, err := c.History("s", 0); err != nil || total != 1 {
		t.Fatalf("history = %d, %v; want served by fast node (total 1)", total, err)
	}
}

// TestClusterFailover is the killed-node drill: the preferred node dies with
// a request in flight. That request surfaces ErrConnBroken — once — and
// every subsequent call transparently lands on the surviving replica.
func TestClusterFailover(t *testing.T) {
	preferred := newFakeNode(t, 1, 0)
	survivor := newFakeNode(t, 2, 60*time.Millisecond)

	c, err := DialCluster([]string{preferred.addr(), survivor.addr()},
		WithProtocol(ProtoV2), WithTimeout(3*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if c.Addr() != preferred.addr() {
		t.Fatalf("preferred %s; want %s", c.Addr(), preferred.addr())
	}

	// Kill the preferred node mid-pipeline: it drops the connection on the
	// in-flight history call and refuses redials from then on.
	preferred.setKillOnHistory(true)
	if _, _, err := c.History("s", 0); !errors.Is(err, ErrConnBroken) {
		t.Fatalf("in-flight call on killed node: err = %v; want ErrConnBroken", err)
	}
	preferred.kill()

	// The very next call redials in failover order — dead preferred first,
	// then the survivor by RTT — and succeeds without the caller doing
	// anything.
	_, total, err := c.History("s", 0)
	if err != nil {
		t.Fatalf("call after failover: %v", err)
	}
	if total != 2 {
		t.Fatalf("post-failover history total = %d; want 2 (the survivor)", total)
	}
	if c.Addr() != survivor.addr() {
		t.Fatalf("client still reports %s after failover; want %s", c.Addr(), survivor.addr())
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after failover: %v", err)
	}
}

// TestDialClusterAllDown: every address refusing connections fails the dial
// with a useful error instead of a zero client.
func TestDialClusterAllDown(t *testing.T) {
	dead := newFakeNode(t, 0, 0)
	dead.kill()
	if _, err := DialCluster([]string{dead.addr()}, WithTimeout(time.Second)); err == nil {
		t.Fatal("DialCluster against a dead node succeeded")
	}
	dead2 := newFakeNode(t, 0, 0)
	dead2.kill()
	if _, err := DialCluster([]string{dead.addr(), dead2.addr()}, WithTimeout(time.Second)); err == nil {
		t.Fatal("DialCluster against two dead nodes succeeded")
	}
}

// TestDialClusterEmpty rejects a dial with no addresses.
func TestDialClusterEmpty(t *testing.T) {
	if _, err := DialCluster(nil); err == nil {
		t.Fatal("DialCluster(nil) succeeded")
	}
}
