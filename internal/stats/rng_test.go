package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %d vs %d", i, av, bv)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical values in 100 draws", same)
	}
}

func TestRNGZeroSeedValid(t *testing.T) {
	r := NewRNG(0)
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("zero seed produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestRNGIntnUniform(t *testing.T) {
	r := NewRNG(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("Intn(%d): value %d drawn %d times, want ~%v", n, v, c, want)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGBernoulli(t *testing.T) {
	r := NewRNG(9)
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 0}, {1, 1}, {-0.5, 0}, {1.5, 1}, {0.3, 0.3}, {0.9, 0.9},
	}
	for _, tt := range tests {
		const n = 50000
		hits := 0
		for i := 0; i < n; i++ {
			if r.Bernoulli(tt.p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-tt.want) > 0.01 {
			t.Errorf("Bernoulli(%v) rate = %v, want ~%v", tt.p, got, tt.want)
		}
	}
}

func TestRNGBinomialSmall(t *testing.T) {
	r := NewRNG(13)
	const n, p, draws = 10, 0.9, 50000
	sum := 0
	for i := 0; i < draws; i++ {
		v := r.Binomial(n, p)
		if v < 0 || v > n {
			t.Fatalf("Binomial(%d,%v) = %d out of range", n, p, v)
		}
		sum += v
	}
	mean := float64(sum) / draws
	if math.Abs(mean-n*p) > 0.05 {
		t.Fatalf("Binomial(%d,%v) mean = %v, want ~%v", n, p, mean, n*p)
	}
}

func TestRNGBinomialLarge(t *testing.T) {
	r := NewRNG(17)
	const n, p, draws = 500, 0.3, 5000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < draws; i++ {
		v := float64(r.Binomial(n, p))
		sum += v
		sumsq += v * v
	}
	mean := sum / draws
	variance := sumsq/draws - mean*mean
	if math.Abs(mean-n*p) > 1.0 {
		t.Fatalf("mean = %v, want ~%v", mean, n*p)
	}
	wantVar := n * p * (1 - p)
	if math.Abs(variance-wantVar) > 0.15*wantVar {
		t.Fatalf("variance = %v, want ~%v", variance, wantVar)
	}
}

func TestRNGBinomialEdges(t *testing.T) {
	r := NewRNG(19)
	if got := r.Binomial(0, 0.5); got != 0 {
		t.Errorf("Binomial(0, .5) = %d, want 0", got)
	}
	if got := r.Binomial(10, 0); got != 0 {
		t.Errorf("Binomial(10, 0) = %d, want 0", got)
	}
	if got := r.Binomial(10, 1); got != 10 {
		t.Errorf("Binomial(10, 1) = %d, want 10", got)
	}
}

func TestRNGBinomialVeryLargeN(t *testing.T) {
	// Exercises the underflow-splitting path: (1-p)^n underflows for
	// n=100000, p=0.5.
	r := NewRNG(23)
	const n, p = 100000, 0.5
	v := r.Binomial(n, p)
	if v < 0 || v > n {
		t.Fatalf("Binomial(%d,%v) = %d out of range", n, p, v)
	}
	if math.Abs(float64(v)-n*p) > 10*math.Sqrt(n*p*(1-p)) {
		t.Fatalf("Binomial(%d,%v) = %d implausibly far from mean %v", n, p, v, n*p)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(29)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGShuffleIsPermutation(t *testing.T) {
	r := NewRNG(31)
	xs := make([]int, 100)
	for i := range xs {
		xs[i] = i
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, 100)
	for _, v := range xs {
		if seen[v] {
			t.Fatalf("shuffle duplicated value %d", v)
		}
		seen[v] = true
	}
}

func TestRNGSample(t *testing.T) {
	r := NewRNG(37)
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(50)
		k := r.Intn(n + 1)
		s := r.Sample(n, k)
		if len(s) != k {
			t.Fatalf("Sample(%d,%d) returned %d values", n, k, len(s))
		}
		for i, v := range s {
			if v < 0 || v >= n {
				t.Fatalf("Sample(%d,%d) value %d out of range", n, k, v)
			}
			if i > 0 && s[i-1] >= v {
				t.Fatalf("Sample(%d,%d) not strictly increasing: %v", n, k, s)
			}
		}
	}
}

func TestRNGSamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(2,3) did not panic")
		}
	}()
	NewRNG(1).Sample(2, 3)
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(41)
	child := parent.Split()
	// The child stream must differ from the parent's continuation.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("parent and child streams matched %d/100 draws", same)
	}
}

func TestMul64Property(t *testing.T) {
	f := func(x, y uint32) bool {
		hi, lo := mul64(uint64(x), uint64(y))
		return hi == 0 && lo == uint64(x)*uint64(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGIntnLemireUnbiasedSmallN(t *testing.T) {
	// n=3 exercises the rejection path; verify no value is starved.
	r := NewRNG(43)
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[r.Intn(3)]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn(3): value %d drawn %d/30000 times", v, c)
		}
	}
}
