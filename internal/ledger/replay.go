package ledger

// Boot replay. Sealed segments are immutable and self-verifying, so they are
// decoded in parallel across a bounded worker pool and consumed strictly in
// file order — the order appends happened — so per-server history order is
// preserved without a merge step. The active segment is streamed in batches
// so boot never materializes the whole log in memory. Snapshot boots pass a
// starting segment: everything before it is covered by the snapshot and is
// skipped entirely (only its footer is read, for record accounting).
//
// Corruption in a sealed segment degrades exactly like a torn active tail:
// replay keeps the segment's intact record prefix, deletes every later
// segment, truncates the file back to the intact prefix, and re-adopts it as
// the active segment — the ledger's longest verified prefix, ready for new
// appends. The byte and segment counts of everything discarded are surfaced
// via Stats (the ledger_truncations metric) instead of vanishing silently.

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"

	"honestplayer/internal/feedback"
)

// replayBatch is the record batch size streamed out of the active segment.
const replayBatch = 4096

// maxReplayWorkers caps the sealed-segment decode pool (and with it the
// number of decoded segments held in memory at once).
const maxReplayWorkers = 8

// segResult is one decoded sealed segment.
type segResult struct {
	recs []feedback.Feedback
	scan segScan
	err  error
}

// replayFrom replays every intact record in segments from..active, in log
// order, invoking emit with successive batches. It must run once, right
// after openLedger and before any Append. Corrupt content never fails the
// replay — it truncates the ledger to its longest verified prefix — but
// emit errors and ctx cancellation abort it.
func (l *Ledger) replayFrom(ctx context.Context, from uint64, emit func([]feedback.Feedback) error) error {
	segs, err := l.listSegments()
	if err != nil {
		return err
	}
	active := l.segIndex
	if from > active {
		from = active
	}
	var sealed []uint64 // non-active segments, ascending
	for _, idx := range segs {
		if idx != active {
			sealed = append(sealed, idx)
		}
	}
	// Segments below the snapshot horizon: record accounting only.
	consume := sealed[:0]
	for _, idx := range sealed {
		if idx < from {
			count, size := l.skippedSegmentStats(idx)
			l.records += count
			l.sealedSegs++
			l.sealedBytes += size
			continue
		}
		consume = append(consume, idx)
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > maxReplayWorkers {
		workers = maxReplayWorkers
	}
	if workers < 1 {
		workers = 1
	}
	results := make([]chan segResult, len(consume))
	spawned := 0
	spawn := func() {
		idx := consume[spawned]
		ch := make(chan segResult, 1)
		results[spawned] = ch
		spawned++
		go func() {
			data, err := readSegmentFile(l.segPath(idx))
			if err != nil {
				ch <- segResult{err: err}
				return
			}
			recs := make([]feedback.Feedback, 0, len(data)/32)
			sc, _ := scanSegment(data, func(f feedback.Feedback) error {
				recs = append(recs, f)
				return nil
			})
			ch <- segResult{recs: recs, scan: sc}
		}()
	}

	for i := 0; i < len(consume); i++ {
		for spawned < len(consume) && spawned < i+workers {
			spawn()
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("ledger: replay: %w", err)
		}
		res := <-results[i]
		if res.err != nil {
			return res.err
		}
		if len(res.recs) > 0 && emit != nil {
			if err := emit(res.recs); err != nil {
				return err
			}
		}
		l.records += res.scan.records
		if !res.scan.sealed && res.scan.truncated > 0 {
			// Corrupt sealed segment: everything after it is suspect. Truncate
			// the ledger here and adopt the segment as the new active tail.
			return l.adoptTruncated(consume[i], res.scan, append(consume[i+1:], active))
		}
		l.sealedSegs++
		l.sealedBytes += res.scan.intact
	}

	// The active segment was truncated to its intact prefix at open; stream
	// it in batches.
	if emit == nil {
		l.records += l.segRecs
		return nil
	}
	data, err := readSegmentFile(l.segPath(active))
	if err != nil {
		return err
	}
	batch := make([]feedback.Feedback, 0, replayBatch)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := emit(batch); err != nil {
			return err
		}
		batch = batch[:0]
		return nil
	}
	n := 0
	if _, err := scanSegment(data, func(f feedback.Feedback) error {
		if n%replayBatch == 0 {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("ledger: replay: %w", err)
			}
		}
		n++
		batch = append(batch, f)
		if len(batch) == replayBatch {
			return flush()
		}
		return nil
	}); err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	l.records += l.segRecs
	return nil
}

// skippedSegmentStats reads a snapshot-covered segment's footer for its
// record count without decoding the segment. Legacy JSON segments have no
// footer; their count is reported as 0 (Stats documents the approximation).
func (l *Ledger) skippedSegmentStats(idx uint64) (records uint64, size int64) {
	path := l.segPath(idx)
	fi, err := os.Stat(path)
	if err != nil {
		return 0, 0
	}
	size = fi.Size()
	if size < footerSize {
		return 0, size
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, size
	}
	defer func() { _ = f.Close() }()
	buf := make([]byte, footerSize)
	if _, err := f.ReadAt(buf, size-footerSize); err != nil {
		return 0, size
	}
	if fc, ok := parseFooter(buf); ok {
		return fc.count, size
	}
	return 0, size
}

// adoptTruncated makes a corrupt sealed segment the ledger's new active
// tail: later segments (including the previously active one) are deleted,
// the file is truncated back to its intact prefix, and appends resume there.
func (l *Ledger) adoptTruncated(idx uint64, sc segScan, later []uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	discarded := sc.truncated
	ferr := l.w.Flush()
	cerr := l.f.Close()
	if err := errors.Join(ferr, cerr); err != nil {
		return fmt.Errorf("ledger: close active during truncation: %w", err)
	}
	for _, j := range later {
		if fi, err := os.Stat(l.segPath(j)); err == nil {
			discarded += fi.Size()
		}
		if err := os.Remove(l.segPath(j)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("ledger: drop segment %d: %w", j, err)
		}
	}
	path := l.segPath(idx)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("ledger: reopen segment %s: %w", path, err)
	}
	intact := sc.intact
	if sc.kind == segBinary && intact < int64(len(segMagic)) {
		intact = 0
	}
	if err := f.Truncate(intact); err != nil {
		cerr := f.Close()
		return errors.Join(fmt.Errorf("ledger: truncate %s: %w", path, err), cerr)
	}
	if intact == 0 {
		if _, err := f.Write(segMagic[:]); err != nil {
			cerr := f.Close()
			return errors.Join(fmt.Errorf("ledger: segment header: %w", err), cerr)
		}
		intact = int64(len(segMagic))
	} else if _, err := f.Seek(intact, io.SeekStart); err != nil {
		cerr := f.Close()
		return errors.Join(fmt.Errorf("ledger: seek %s: %w", path, err), cerr)
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	l.segIndex = idx
	l.segSize = intact
	l.segRecs = sc.records
	l.segKind = sc.kind
	l.chain = sc.chain
	l.truncatedSegments++
	l.truncatedBytes += discarded
	syncDir(l.dir)
	return nil
}
