package behavior

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"honestplayer/internal/feedback"
	"honestplayer/internal/stats"
)

// honestMultiClientHistory builds an honest history whose feedbacks come
// from many clients chosen at random — the supporter base of an honest
// player.
func honestMultiClientHistory(t *testing.T, rng *stats.RNG, n int, p float64, clients int) *feedback.History {
	t.Helper()
	h := feedback.NewHistory("s")
	for i := 0; i < n; i++ {
		c := feedback.EntityID(fmt.Sprintf("client-%d", rng.Intn(clients)))
		if err := h.AppendOutcome(c, rng.Bernoulli(p), time.Unix(int64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

// collusionHistory builds the attack of §4: the attacker's positive
// feedback comes almost entirely from a small ring of colluders while real
// clients get cheated.
func collusionHistory(t *testing.T, rng *stats.RNG, n, colluders int, victimBadRate float64) *feedback.History {
	t.Helper()
	h := feedback.NewHistory("s")
	for i := 0; i < n; i++ {
		if rng.Bernoulli(0.8) {
			c := feedback.EntityID(fmt.Sprintf("colluder-%d", rng.Intn(colluders)))
			if err := h.AppendOutcome(c, true, time.Unix(int64(i), 0)); err != nil {
				t.Fatal(err)
			}
		} else {
			c := feedback.EntityID(fmt.Sprintf("victim-%d", i))
			if err := h.AppendOutcome(c, !rng.Bernoulli(victimBadRate), time.Unix(int64(i), 0)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return h
}

func TestCollusionHonestPasses(t *testing.T) {
	c, err := NewCollusion(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(41)
	pass := 0
	const trials = 60
	for i := 0; i < trials; i++ {
		h := honestMultiClientHistory(t, rng, 400, 0.9, 50)
		v, err := c.Test(h)
		if err != nil {
			t.Fatal(err)
		}
		if v.Honest {
			pass++
		}
	}
	if pass < trials*8/10 {
		t.Fatalf("honest multi-client players passed only %d/%d collusion tests", pass, trials)
	}
}

func TestCollusionDetectsRing(t *testing.T) {
	c, err := NewCollusion(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(43)
	detected := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		h := collusionHistory(t, rng, 400, 5, 0.9)
		v, err := c.Test(h)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Honest {
			detected++
		}
	}
	if detected < trials*8/10 {
		t.Fatalf("collusion ring detected in only %d/%d trials", detected, trials)
	}
}

func TestCollusionOrderingMatters(t *testing.T) {
	// The same collusion history must look much worse to the collusion
	// tester than to the plain single tester, because the re-ordering
	// concentrates the colluders' all-positive blocks.
	cfg := testConfig()
	single, err := NewSingle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	collusion, err := NewCollusion(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(47)
	// Interleave colluder positives with victim negatives evenly so the
	// plain time-order distribution looks binomial-ish.
	h := feedback.NewHistory("s")
	for i := 0; i < 400; i++ {
		if i%10 == 9 {
			c := feedback.EntityID(fmt.Sprintf("victim-%d", i))
			_ = h.AppendOutcome(c, false, time.Unix(int64(i), 0))
		} else {
			c := feedback.EntityID(fmt.Sprintf("colluder-%d", rng.Intn(5)))
			_ = h.AppendOutcome(c, true, time.Unix(int64(i), 0))
		}
	}
	vs, err := single.Test(h)
	if err != nil {
		t.Fatal(err)
	}
	vc, err := collusion.Test(h)
	if err != nil {
		t.Fatal(err)
	}
	if vc.Worst().Distance <= vs.Worst().Distance {
		t.Fatalf("collusion reordering did not amplify the deviation: %v <= %v",
			vc.Worst().Distance, vs.Worst().Distance)
	}
	if vc.Honest {
		t.Fatal("re-ordered collusion pattern passed")
	}
}

func TestCollusionMulti(t *testing.T) {
	cm, err := NewCollusionMulti(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(53)
	h := collusionHistory(t, rng, 400, 5, 0.9)
	v, err := cm.Test(h)
	if err != nil {
		t.Fatal(err)
	}
	if v.Honest {
		t.Fatal("collusion-multi missed the ring")
	}
	if len(v.Suffixes) < 2 {
		t.Fatalf("collusion-multi tested %d suffixes", len(v.Suffixes))
	}
}

func TestCollusionInsufficientHistory(t *testing.T) {
	c, err := NewCollusion(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	cm, err := NewCollusionMulti(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := honestMultiClientHistory(t, stats.NewRNG(1), 30, 0.9, 5)
	if _, err := c.Test(h); !errors.Is(err, ErrInsufficientHistory) {
		t.Errorf("collusion = %v", err)
	}
	if _, err := cm.Test(h); !errors.Is(err, ErrInsufficientHistory) {
		t.Errorf("collusion-multi = %v", err)
	}
}

func TestCollusionConfigValidation(t *testing.T) {
	bad := Config{WindowSize: 10, Stride: 7}
	if _, err := NewCollusion(bad); !errors.Is(err, ErrBadConfig) {
		t.Errorf("NewCollusion = %v", err)
	}
	if _, err := NewCollusionMulti(bad); !errors.Is(err, ErrBadConfig) {
		t.Errorf("NewCollusionMulti = %v", err)
	}
}
