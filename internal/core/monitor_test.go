package core

import (
	"testing"
	"time"

	"honestplayer/internal/behavior"
	"honestplayer/internal/stats"
	"honestplayer/internal/trust"
)

func monitorAssessor(t *testing.T) *TwoPhase {
	t.Helper()
	tester, err := behavior.NewMulti(behavior.Config{
		Calibrator: stats.NewCalibrator(
			stats.CalibrationConfig{Seed: 2, Replicates: 1500}, 0),
		FamilywiseCorrection: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tp, err := NewTwoPhase(tester, trust.Average{})
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestNewMonitorValidation(t *testing.T) {
	tp := monitorAssessor(t)
	if _, err := NewMonitor(nil, "s", 1, 0.9); err == nil {
		t.Error("nil assessor must fail")
	}
	if _, err := NewMonitor(tp, "s", 0, 0.9); err == nil {
		t.Error("interval 0 must fail")
	}
	if _, err := NewMonitor(tp, "s", 1, 2); err == nil {
		t.Error("threshold > 1 must fail")
	}
}

func TestMonitorIntervalGates(t *testing.T) {
	m, err := NewMonitor(monitorAssessor(t), "s", 10, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	assessments := 0
	for i := 0; i < 95; i++ {
		a, err := m.Record("c", true, time.Unix(int64(i), 0))
		if err != nil {
			t.Fatal(err)
		}
		if a != nil {
			assessments++
		}
	}
	if assessments != 9 {
		t.Fatalf("assessments = %d, want 9 (every 10th of 95)", assessments)
	}
	if m.History().Len() != 95 {
		t.Fatalf("history len = %d", m.History().Len())
	}
}

func TestMonitorFlagsHibernatorAndRecords(t *testing.T) {
	m, err := NewMonitor(monitorAssessor(t), "s", 10, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(3)
	// Honest phase.
	for i := 0; i < 400; i++ {
		if _, err := m.Record("c", rng.Bernoulli(0.95), time.Unix(int64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	if m.Suspicious() {
		t.Fatalf("flagged during honest phase: %+v", m.Alerts())
	}
	// Attack burst.
	turned := -1
	for i := 400; i < 460; i++ {
		if _, err := m.Record("v", false, time.Unix(int64(i), 0)); err != nil {
			t.Fatal(err)
		}
		if m.Suspicious() && turned < 0 {
			turned = i
		}
	}
	if turned < 0 {
		t.Fatal("hibernating burst never flagged")
	}
	if turned > 430 {
		t.Fatalf("flagged only at transaction %d; expected within ~3 windows of the turn", turned)
	}
	alerts := m.Alerts()
	if len(alerts) == 0 {
		t.Fatal("no alerts recorded")
	}
	last := alerts[len(alerts)-1]
	if !last.Suspicious {
		t.Fatalf("last alert = %+v", last)
	}
}

func TestMonitorShortHistoryNoAlert(t *testing.T) {
	m, err := NewMonitor(monitorAssessor(t), "s", 1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		a, err := m.Record("c", true, time.Unix(int64(i), 0))
		if err != nil {
			t.Fatal(err)
		}
		if a == nil {
			t.Fatal("interval 1 must assess every transaction")
		}
		if !a.ShortHistory {
			t.Fatalf("20-transaction history unexpectedly testable: %+v", a)
		}
	}
	if len(m.Alerts()) != 0 {
		t.Fatalf("short-history alerts: %+v", m.Alerts())
	}
}
