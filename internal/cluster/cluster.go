package cluster

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"honestplayer/internal/feedback"
	"honestplayer/internal/repclient"
	"honestplayer/internal/service"
	"honestplayer/internal/wire"
)

// Node is one cluster member: its stable ID and the address its serving
// listener binds. Gossip optionally names a separate gossip listener
// address; empty means the node does not gossip.
type Node struct {
	ID     string
	Addr   string
	Gossip string
}

// Config configures a node's view of its cluster. The same Nodes list (any
// order) must be given to every member — membership is static; rolling a
// new list through the cluster is a restart, not a protocol.
type Config struct {
	// Self is the local node's ID; it must appear in Nodes.
	Self string
	// Nodes is the full cluster membership, including the local node.
	Nodes []Node
	// Replicas is how many nodes hold each server's history (owner
	// included). Clamped to [1, len(Nodes)]; 0 means DefaultReplicas.
	Replicas int
	// VNodes is the virtual nodes per member (DefaultVNodes when 0).
	VNodes int
	// DialTimeout bounds dialing a peer and each forwarded round trip.
	// Zero means DefaultDialTimeout.
	DialTimeout time.Duration
	// Logger receives peer-failure logs; nil discards them.
	Logger *log.Logger
}

// DefaultReplicas is the replication factor when none is configured: the
// owner plus one replica, the minimum that makes a single node failure
// non-fatal for reads.
const DefaultReplicas = 2

// DefaultDialTimeout bounds peer dials and forwarded calls when the
// configuration does not.
const DefaultDialTimeout = 5 * time.Second

// Cluster is one node's runtime view of the cluster: the ring, lazily
// dialed peer connections, and the routing counters. Safe for concurrent
// use; a nil *Cluster behaves as "not clustered" for the Enabled check.
type Cluster struct {
	self     Node
	nodes    map[string]Node // by ID
	ring     *Ring
	replicas int
	vnodes   int
	timeout  time.Duration
	logger   *log.Logger

	mu    sync.Mutex
	conns map[string]*repclient.Client
	rtts  map[string]time.Duration

	forwarded      atomic.Uint64
	forwardErrors  atomic.Uint64
	mergedAssess   atomic.Uint64
	digestMismatch atomic.Uint64
}

// New validates the membership and builds the node's cluster view. No
// connections are opened: peers are dialed on first use so a cluster can
// boot in any node order.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: empty membership")
	}
	nodes := make(map[string]Node, len(cfg.Nodes))
	ids := make([]string, 0, len(cfg.Nodes))
	for _, n := range cfg.Nodes {
		if n.ID == "" || n.Addr == "" {
			return nil, fmt.Errorf("cluster: node needs id and addr (got id=%q addr=%q)", n.ID, n.Addr)
		}
		if _, dup := nodes[n.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate node id %q", n.ID)
		}
		nodes[n.ID] = n
		ids = append(ids, n.ID)
	}
	self, ok := nodes[cfg.Self]
	if !ok {
		return nil, fmt.Errorf("cluster: self %q not in membership %v", cfg.Self, ids)
	}
	vnodes := cfg.VNodes
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	ring, err := NewRing(ids, vnodes)
	if err != nil {
		return nil, err
	}
	replicas := cfg.Replicas
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	if replicas > len(ids) {
		replicas = len(ids)
	}
	timeout := cfg.DialTimeout
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	return &Cluster{
		self:     self,
		nodes:    nodes,
		ring:     ring,
		replicas: replicas,
		vnodes:   vnodes,
		timeout:  timeout,
		logger:   cfg.Logger,
		conns:    make(map[string]*repclient.Client),
		rtts:     make(map[string]time.Duration),
	}, nil
}

// Self returns the local node's ID.
func (c *Cluster) Self() string { return c.self.ID }

// Replicas returns the effective replication factor.
func (c *Cluster) Replicas() int { return c.replicas }

// Size returns the membership size.
func (c *Cluster) Size() int { return len(c.nodes) }

// Nodes returns the membership sorted by ID.
func (c *Cluster) Nodes() []Node {
	out := make([]Node, 0, len(c.nodes))
	for _, id := range c.ring.Nodes() {
		out = append(out, c.nodes[id])
	}
	return out
}

// Owner returns the node ID owning server.
func (c *Cluster) Owner(server feedback.EntityID) string {
	return c.ring.Owner(string(server))
}

// ReplicaSet returns the node IDs responsible for server, owner first.
func (c *Cluster) ReplicaSet(server feedback.EntityID) []string {
	return c.ring.Replicas(string(server), c.replicas)
}

// IsOwner reports whether the local node owns server.
func (c *Cluster) IsOwner(server feedback.EntityID) bool {
	return c.Owner(server) == c.self.ID
}

// Owns reports whether the local node is in server's replica set — i.e.
// whether local state for server should exist at all. It is the predicate
// behind store scoping, accumulator materialization, and gossip filtering.
func (c *Cluster) Owns(server feedback.EntityID) bool {
	for _, id := range c.ReplicaSet(server) {
		if id == c.self.ID {
			return true
		}
	}
	return false
}

// GossipPeers returns the gossip addresses of the local node's ring
// successors — the members sharing replica sets with it, which is where
// anti-entropy repairs converge. Members without a gossip listener are
// skipped.
func (c *Cluster) GossipPeers() []string {
	var out []string
	for _, id := range c.ring.Successors(c.self.ID, 0) {
		if g := c.nodes[id].Gossip; g != "" {
			out = append(out, g)
		}
	}
	return out
}

// Peer returns a (cached) client connection to the given node, dialing and
// RTT-probing it on first use. The returned client is shared: callers must
// not Close it.
func (c *Cluster) Peer(node string) (*repclient.Client, error) {
	if node == c.self.ID {
		return nil, fmt.Errorf("cluster: %s dialing itself", node)
	}
	n, ok := c.nodes[node]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown node %q", node)
	}
	c.mu.Lock()
	cl := c.conns[node]
	c.mu.Unlock()
	if cl != nil {
		return cl, nil
	}
	start := time.Now()
	cl, err := repclient.Dial(n.Addr, repclient.WithTimeout(c.timeout))
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s (%s): %w", node, n.Addr, err)
	}
	if err := cl.Ping(); err != nil {
		_ = cl.Close()
		return nil, fmt.Errorf("cluster: ping %s (%s): %w", node, n.Addr, err)
	}
	rtt := time.Since(start)
	c.mu.Lock()
	if existing := c.conns[node]; existing != nil {
		// Lost a dial race; keep the established connection.
		c.mu.Unlock()
		_ = cl.Close()
		return existing, nil
	}
	c.conns[node] = cl
	c.rtts[node] = rtt
	c.mu.Unlock()
	return cl, nil
}

// Close releases all peer connections.
func (c *Cluster) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, cl := range c.conns {
		_ = cl.Close()
		delete(c.conns, id)
	}
	return nil
}

// callCtx bounds one forwarded call when the inbound request carried no
// deadline of its own.
func (c *Cluster) callCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if _, ok := ctx.Deadline(); ok {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, c.timeout)
}

// ForwardAssess asks node for its local view of server; with digestOnly it
// asks only for the node's O(1) state digest (no assessment computed).
// Transport failures count as forward errors; a typed *wire.ErrorResponse
// (e.g. the peer holds no records) is returned to the caller to relay and
// does not.
func (c *Cluster) ForwardAssess(ctx context.Context, node string, server feedback.EntityID, threshold float64, digestOnly bool) (wire.NodeAssessment, error) {
	cl, err := c.Peer(node)
	if err != nil {
		c.forwardErrors.Add(1)
		return wire.NodeAssessment{}, err
	}
	ctx, cancel := c.callCtx(ctx)
	defer cancel()
	c.forwarded.Add(1)
	resp, err := cl.ForwardAssessCtx(ctx, c.self.ID, server, threshold, digestOnly)
	c.noteErr(node, err)
	return resp, err
}

// ForwardSubmit hands one record to node.
func (c *Cluster) ForwardSubmit(ctx context.Context, node string, f feedback.Feedback, replica bool) (bool, error) {
	cl, err := c.Peer(node)
	if err != nil {
		c.forwardErrors.Add(1)
		return false, err
	}
	ctx, cancel := c.callCtx(ctx)
	defer cancel()
	c.forwarded.Add(1)
	stored, err := cl.ForwardSubmitCtx(ctx, c.self.ID, f, replica)
	c.noteErr(node, err)
	return stored, err
}

// ForwardBatch hands records to node in one frame.
func (c *Cluster) ForwardBatch(ctx context.Context, node string, recs []feedback.Feedback, replica bool) (wire.BatchResponse, error) {
	cl, err := c.Peer(node)
	if err != nil {
		c.forwardErrors.Add(1)
		return wire.BatchResponse{}, err
	}
	ctx, cancel := c.callCtx(ctx)
	defer cancel()
	c.forwarded.Add(1)
	resp, err := cl.ForwardBatchCtx(ctx, c.self.ID, recs, replica)
	c.noteErr(node, err)
	return resp, err
}

// ForwardAssessBatch asks node to assess servers from local state.
func (c *Cluster) ForwardAssessBatch(ctx context.Context, node string, servers []feedback.EntityID, threshold float64) ([]wire.AssessBatchItem, error) {
	cl, err := c.Peer(node)
	if err != nil {
		c.forwardErrors.Add(1)
		return nil, err
	}
	ctx, cancel := c.callCtx(ctx)
	defer cancel()
	c.forwarded.Add(1)
	items, err := cl.ForwardAssessBatchCtx(ctx, c.self.ID, servers, threshold)
	c.noteErr(node, err)
	return items, err
}

// noteErr classifies a forwarded call's outcome: transport failures bump
// ForwardErrors and are logged; typed per-request errors relayed from the
// peer are the caller's business.
func (c *Cluster) noteErr(node string, err error) {
	if err == nil {
		return
	}
	var typed *wire.ErrorResponse
	if isTyped := asErrorResponse(err, &typed); isTyped {
		return
	}
	c.forwardErrors.Add(1)
	if c.logger != nil {
		c.logger.Printf("cluster: forward to %s failed: %v", node, err)
	}
}

// asErrorResponse reports whether err is (or wraps) a typed wire error.
func asErrorResponse(err error, out **wire.ErrorResponse) bool {
	for err != nil {
		if e, ok := err.(*wire.ErrorResponse); ok {
			*out = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// CountMerge records one weight-merged assessment.
func (c *Cluster) CountMerge() { c.mergedAssess.Add(1) }

// CountDigestMismatch records one forwarded read whose replica digests
// disagreed (a replica missed a write), forcing a full weight-merge.
func (c *Cluster) CountDigestMismatch() { c.digestMismatch.Add(1) }

// Stats snapshots the routing counters for /metricz.
func (c *Cluster) Stats() service.ClusterStats {
	s := service.ClusterStats{
		Enabled:        true,
		Node:           c.self.ID,
		Replicas:       c.replicas,
		Forwarded:      c.forwarded.Load(),
		ForwardErrors:  c.forwardErrors.Load(),
		MergedAssess:   c.mergedAssess.Load(),
		DigestMismatch: c.digestMismatch.Load(),
	}
	c.mu.Lock()
	if len(c.rtts) > 0 {
		s.PeerRTTMs = make(map[string]float64, len(c.rtts))
		for id, d := range c.rtts {
			s.PeerRTTMs[id] = float64(d) / 1e6
		}
	}
	c.mu.Unlock()
	return s
}

// Status describes the cluster for the cluster.info RPC.
func (c *Cluster) Status(ownedServers int) wire.ClusterStatusResponse {
	resp := wire.ClusterStatusResponse{
		Enabled:  true,
		Node:     c.self.ID,
		Replicas: c.replicas,
		VNodes:   c.vnodes,
		Owned:    ownedServers,
	}
	c.mu.Lock()
	rtts := make(map[string]time.Duration, len(c.rtts))
	for id, d := range c.rtts {
		rtts[id] = d
	}
	c.mu.Unlock()
	for _, n := range c.Nodes() {
		p := wire.ClusterPeer{ID: n.ID, Addr: n.Addr, Self: n.ID == c.self.ID}
		if d, ok := rtts[n.ID]; ok {
			p.RTTMs = float64(d) / 1e6
		}
		resp.Peers = append(resp.Peers, p)
	}
	return resp
}

// ParseNodes parses a `-peers` membership spec: comma-separated
// `id=addr` or `id=addr~gossipaddr` entries, e.g.
//
//	n1=10.0.0.1:7700~10.0.0.1:7800,n2=10.0.0.2:7700,n3=10.0.0.3:7700
func ParseNodes(spec string) ([]Node, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("cluster: empty membership spec")
	}
	var out []Node
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("cluster: bad membership entry %q (want id=addr[~gossipaddr])", part)
		}
		n := Node{ID: id}
		n.Addr, n.Gossip, _ = strings.Cut(addr, "~")
		if n.Addr == "" {
			return nil, fmt.Errorf("cluster: bad membership entry %q (empty addr)", part)
		}
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}
