// Package stats provides the statistical substrate the honest-player model
// depends on: a deterministic random number generator, Bernoulli and binomial
// distributions, distribution distances, descriptive statistics, and the
// Monte-Carlo calibration of distribution-distance thresholds.
//
// Go's standard library has math/rand, but reproducing the paper's
// experiments requires (a) a seedable generator whose streams are stable
// across runs and platforms, and (b) distribution machinery (PMFs, CDFs,
// quantiles, L1 distances) that the standard library does not provide. All of
// it lives here, implemented from scratch on top of package math only.
package stats

import "math"

// RNG is a deterministic pseudo-random number generator based on
// xoshiro256** seeded through splitmix64. Streams are fully determined by
// the seed, so every simulation and experiment in this repository is
// reproducible bit-for-bit.
//
// RNG is not safe for concurrent use; give each goroutine its own instance
// (use Split to derive independent streams).
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from the given seed. Any seed value,
// including zero, produces a valid, well-mixed state.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from seed using splitmix64, which
// guarantees the four xoshiro words are never all zero.
func (r *RNG) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
}

// Split derives a new, statistically independent generator from r. It
// advances r, so the parent and child streams do not overlap in practice.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniformly distributed float in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high-quality bits into the mantissa.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0,
// matching the contract of math/rand.Intn.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and fast.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		threshold := -un % un
		for lo < threshold {
			v = r.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return hi, lo
}

// Bernoulli returns true with probability p. Values of p outside [0, 1] are
// clamped.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Binomial draws a sample from B(n, p): the number of successes in n
// independent Bernoulli(p) trials. For the small n used by transaction
// windows (n <= ~64) direct simulation is both exact and fast; for large n
// it uses the BTRS transformation-rejection algorithm boundary-free fallback
// of inversion on the CDF, which is exact as well.
func (r *RNG) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n <= 64 {
		k := 0
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	}
	// CDF inversion: O(n·p) expected steps starting from the mode-adjacent
	// recurrence; exact and adequate for calibration workloads.
	u := r.Float64()
	pmf := math.Pow(1-p, float64(n)) // P(X = 0)
	if pmf == 0 {
		// Underflow guard for large n: recurse via normal-free splitting.
		half := n / 2
		return r.Binomial(half, p) + r.Binomial(n-half, p)
	}
	cdf := pmf
	k := 0
	for u > cdf && k < n {
		k++
		pmf *= (float64(n-k+1) / float64(k)) * (p / (1 - p))
		cdf += pmf
	}
	return k
}

// Shuffle pseudo-randomly permutes the order of n elements using the
// Fisher-Yates algorithm, calling swap for each exchange.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a pseudo-random permutation of the integers [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Sample returns k distinct indices drawn uniformly from [0, n) in
// increasing order, using Floyd's algorithm. It panics if k > n or k < 0.
func (r *RNG) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("stats: Sample called with k out of range")
	}
	chosen := make(map[int]struct{}, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, ok := chosen[t]; ok {
			t = j
		}
		chosen[t] = struct{}{}
	}
	out := make([]int, 0, k)
	for i := 0; i < n && len(out) < k; i++ {
		if _, ok := chosen[i]; ok {
			out = append(out, i)
		}
	}
	return out
}
