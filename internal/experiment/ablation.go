package experiment

import (
	"honestplayer/internal/attack"
	"honestplayer/internal/behavior"
	"honestplayer/internal/stats"
)

// Ablation experiments beyond the paper's figures, backing the design
// choices called out in DESIGN.md: the transaction-window size m, the
// familywise correction for multi-testing, and the Monte-Carlo replicate
// count behind the threshold calibration.

// AblationWindowConfig parameterises the window-size ablation: detection
// rate of a periodic attacker and pass rate of honest players as the
// window size m varies around the paper's choice of 10.
type AblationWindowConfig struct {
	// WindowSizes are the m values to compare; nil means {5, 10, 20, 50}.
	WindowSizes []int
	// HistoryLen is the tested history length; zero means 600.
	HistoryLen int
	// AttackWindow is the periodic attacker's window; zero means 20.
	AttackWindow int
	// Trials per point; zero means 150.
	Trials int
	// Seed drives all randomness.
	Seed uint64
	// CalibrationReplicates tunes ε estimation; zero means 500.
	CalibrationReplicates int
}

func (c AblationWindowConfig) withDefaults() AblationWindowConfig {
	if c.WindowSizes == nil {
		c.WindowSizes = []int{5, 10, 20, 50}
	}
	if c.HistoryLen == 0 {
		c.HistoryLen = 600
	}
	if c.AttackWindow == 0 {
		c.AttackWindow = 20
	}
	if c.Trials == 0 {
		c.Trials = 150
	}
	return c
}

// RunAblationWindow measures how the window size m trades attacker
// detection against honest-player false positives.
func RunAblationWindow(cfg AblationWindowConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	cal := newCalibrator(cfg.Seed+5000, cfg.CalibrationReplicates)
	res := &Result{
		ID:     "ablation-window",
		Title:  "Window size m: attacker detection vs. honest false positives (single test)",
		XLabel: "window size m",
		YLabel: "rate",
	}
	detect := Series{Name: "periodic-attacker detection"}
	falsePos := Series{Name: "honest false positive"}
	rng := stats.NewRNG(cfg.Seed)
	for _, m := range cfg.WindowSizes {
		tester, err := behavior.NewSingle(behavior.Config{WindowSize: m, Calibrator: cal})
		if err != nil {
			return nil, err
		}
		detected, flaggedHonest := 0, 0
		for trial := 0; trial < cfg.Trials; trial++ {
			att, err := attack.GenPeriodic("a", cfg.HistoryLen, cfg.AttackWindow, 0.1, rng)
			if err != nil {
				return nil, err
			}
			v, err := tester.Test(att)
			if err != nil {
				return nil, err
			}
			if !v.Honest {
				detected++
			}
			hon, err := attack.GenHonest("h", cfg.HistoryLen, 0.9, 100, rng)
			if err != nil {
				return nil, err
			}
			v, err = tester.Test(hon)
			if err != nil {
				return nil, err
			}
			if !v.Honest {
				flaggedHonest++
			}
		}
		detect.Points = append(detect.Points, Point{X: float64(m), Y: float64(detected) / float64(cfg.Trials)})
		falsePos.Points = append(falsePos.Points, Point{X: float64(m), Y: float64(flaggedHonest) / float64(cfg.Trials)})
	}
	res.Series = append(res.Series, detect, falsePos)
	return res, nil
}

// AblationCorrectionConfig parameterises the familywise-correction
// ablation: honest-player pass rate of the multi tester with and without
// the Bonferroni correction, as history length grows (and with it the
// number of tested suffixes).
type AblationCorrectionConfig struct {
	// HistorySizes in transactions; nil means {200, 400, 800, 1600}.
	HistorySizes []int
	// Trials per point; zero means 100.
	Trials int
	// Seed drives all randomness.
	Seed uint64
	// CalibrationReplicates tunes ε estimation; zero means 2000 (the
	// corrected quantiles sit deep in the tail).
	CalibrationReplicates int
}

func (c AblationCorrectionConfig) withDefaults() AblationCorrectionConfig {
	if c.HistorySizes == nil {
		c.HistorySizes = []int{200, 400, 800, 1600}
	}
	if c.Trials == 0 {
		c.Trials = 100
	}
	if c.CalibrationReplicates == 0 {
		c.CalibrationReplicates = 2000
	}
	return c
}

// RunAblationCorrection measures the honest-player pass rate of
// multi-testing with and without the familywise correction. Without it the
// per-suffix 5% false-positive chance compounds and the pass rate collapses
// as histories grow; with it the pass rate stays near the configured 95%.
func RunAblationCorrection(cfg AblationCorrectionConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	cal := newCalibrator(cfg.Seed+6000, cfg.CalibrationReplicates)
	res := &Result{
		ID:     "ablation-correction",
		Title:  "Honest pass rate of multi-testing: familywise correction on/off",
		XLabel: "history size",
		YLabel: "honest pass rate",
	}
	plain, err := behavior.NewMulti(behavior.Config{Calibrator: cal})
	if err != nil {
		return nil, err
	}
	corrected, err := behavior.NewMulti(behavior.Config{Calibrator: cal, FamilywiseCorrection: true})
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(cfg.Seed)
	for _, tc := range []struct {
		name   string
		tester behavior.Tester
	}{
		{"uncorrected (paper)", plain},
		{"bonferroni-corrected", corrected},
	} {
		series := Series{Name: tc.name}
		for _, n := range cfg.HistorySizes {
			pass := 0
			for trial := 0; trial < cfg.Trials; trial++ {
				h, err := attack.GenHonest("h", n, 0.9, 100, rng)
				if err != nil {
					return nil, err
				}
				v, err := tc.tester.Test(h)
				if err != nil {
					return nil, err
				}
				if v.Honest {
					pass++
				}
			}
			series.Points = append(series.Points, Point{X: float64(n), Y: float64(pass) / float64(cfg.Trials)})
		}
		res.Series = append(res.Series, series)
	}
	res.Notes = append(res.Notes,
		"the paper calibrates each suffix test at 95% individually; the correction divides the miss probability across suffixes")
	return res, nil
}

// AblationReplicatesConfig parameterises the calibration-replicates
// ablation: stability of the ε estimate as the Monte-Carlo budget grows.
type AblationReplicatesConfig struct {
	// ReplicateCounts to compare; nil means {50, 100, 250, 500, 1000, 2000}.
	ReplicateCounts []int
	// Windows of the calibrated test; zero means 50.
	Windows int
	// PHat of the calibrated test; zero means 0.9.
	PHat float64
	// Resamples is how many independent ε estimates feed the spread; zero
	// means 20.
	Resamples int
	// Seed drives all randomness.
	Seed uint64
}

func (c AblationReplicatesConfig) withDefaults() AblationReplicatesConfig {
	if c.ReplicateCounts == nil {
		c.ReplicateCounts = []int{50, 100, 250, 500, 1000, 2000}
	}
	if c.Windows == 0 {
		c.Windows = 50
	}
	if c.PHat == 0 {
		c.PHat = 0.9
	}
	if c.Resamples == 0 {
		c.Resamples = 20
	}
	return c
}

// RunAblationReplicates measures the mean and spread (P95−P05) of the ε
// estimate as a function of the Monte-Carlo replicate count, justifying the
// default of 1000.
func RunAblationReplicates(cfg AblationReplicatesConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:     "ablation-replicates",
		Title:  "Calibration replicates vs. threshold stability",
		XLabel: "Monte-Carlo replicates",
		YLabel: "epsilon",
	}
	meanSeries := Series{Name: "epsilon mean"}
	spreadSeries := Series{Name: "epsilon spread (P95-P05)"}
	for _, reps := range cfg.ReplicateCounts {
		eps := make([]float64, cfg.Resamples)
		for i := range eps {
			v, err := stats.CalibrateL1(DefaultWindowSize, cfg.Windows, cfg.PHat, stats.CalibrationConfig{
				Seed:       cfg.Seed + uint64(i)*7919 + uint64(reps),
				Replicates: reps,
			})
			if err != nil {
				return nil, err
			}
			eps[i] = v
		}
		summary, err := stats.Describe(eps)
		if err != nil {
			return nil, err
		}
		meanSeries.Points = append(meanSeries.Points, Point{X: float64(reps), Y: summary.Mean})
		spreadSeries.Points = append(spreadSeries.Points, Point{X: float64(reps), Y: summary.P95 - summary.P05})
	}
	res.Series = append(res.Series, meanSeries, spreadSeries)
	return res, nil
}
