package repserver

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"honestplayer/internal/core"
	"honestplayer/internal/feedback"
	"honestplayer/internal/trust"
	"honestplayer/internal/wire"
)

// TestAssessBatchMatchesSequential is the batch path's differential
// guarantee under concurrent writes: with the store state frozen, an
// assess.batch response must DeepEqual the N sequential single-assess
// responses, item for item, including per-item errors and the Cached /
// Incremental flags. Writers run between comparisons behind a world lock —
// each write holds it shared, each comparison holds it exclusively — so the
// comparison sees one consistent state while the workload still interleaves
// writes with batches exactly as a live server would.
func TestAssessBatchMatchesSequential(t *testing.T) {
	for _, workers := range []int{0, 1} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			srv, err := New("127.0.0.1:0", Config{
				Assessor:     testAssessor(t),
				Incremental:  true,
				BatchWorkers: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = srv.Close() })

			servers := make([]feedback.EntityID, 0, 12)
			for i := 0; i < 10; i++ {
				servers = append(servers, feedback.EntityID(fmt.Sprintf("srv-%02d", i)))
			}
			servers = append(servers, "ghost-a", "ghost-b")

			// world freezes the store for comparisons: writers hold it shared
			// per write, the comparator exclusively per round.
			var world sync.RWMutex
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					client := feedback.EntityID(fmt.Sprintf("writer-%d", w))
					for k := 0; ; k++ {
						select {
						case <-stop:
							return
						default:
						}
						world.RLock()
						f := rec(servers[k%10], client, k%7 != 0, int64(10000*(w+1)+k))
						if _, err := srv.cfg.Recorder.Add(f); err != nil {
							t.Errorf("add: %v", err)
						}
						world.RUnlock()
					}
				}(w)
			}

			ctx := context.Background()
			req := wire.AssessBatchRequest{Servers: servers, Threshold: 0.7}
			for round := 0; round < 20; round++ {
				world.Lock()
				got, err := srv.assessBatch(ctx, req)
				if err != nil {
					world.Unlock()
					t.Fatalf("round %d: batch: %v", round, err)
				}
				if len(got.Items) != len(servers) {
					world.Unlock()
					t.Fatalf("round %d: %d items for %d servers", round, len(got.Items), len(servers))
				}
				for i, item := range got.Items {
					if item.Server != servers[i] {
						world.Unlock()
						t.Fatalf("round %d: item %d answers %q, want %q", round, i, item.Server, servers[i])
					}
					single, serr := srv.assess(ctx, wire.AssessRequest{Server: servers[i], Threshold: 0.7})
					if serr != nil {
						var proto *wire.ErrorResponse
						if !errors.As(serr, &proto) {
							world.Unlock()
							t.Fatalf("round %d: single assess %q: unexpected error type %v", round, servers[i], serr)
						}
						if !reflect.DeepEqual(item.Error, proto) {
							world.Unlock()
							t.Fatalf("round %d: item %q error = %+v, single path = %+v", round, servers[i], item.Error, proto)
						}
						continue
					}
					if item.Error != nil {
						world.Unlock()
						t.Fatalf("round %d: item %q failed (%+v) but single path served %+v", round, servers[i], item.Error, single)
					}
					if !reflect.DeepEqual(item.AssessResponse, single) {
						world.Unlock()
						t.Fatalf("round %d: item %q mismatch:\nbatch:  %+v\nsingle: %+v", round, servers[i], item.AssessResponse, single)
					}
				}
				world.Unlock()
			}
			close(stop)
			wg.Wait()

			if st := srv.Stats(); st.BatchItems != uint64(20*len(servers)) {
				t.Fatalf("BatchItems = %d, want %d", st.BatchItems, 20*len(servers))
			}
		})
	}
}

// TestAssessBatchNeverStale hammers the version-stamped assessment cache
// with concurrent assess.batch reads and feedback writes, and proves no
// batch item ever reflects a history older than what was fully written when
// the batch started. The assessor is trust-only (Average), so a response's
// trust value t over a server seeded with A positives and fed only negatives
// pins the history length the verdict was computed from at n = A/t; that n
// must fall between the writes completed before the batch and the writes
// started after it. A stale cached verdict lands below the lower bound. Run
// under -race this also checks the locking of the whole batch read path.
func TestAssessBatchNeverStale(t *testing.T) {
	tp, err := core.NewTwoPhase(nil, trust.Average{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New("127.0.0.1:0", Config{Assessor: tp, AssessCacheSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	const seedPositives = 64
	servers := []feedback.EntityID{"st-0", "st-1", "st-2", "st-3"}
	for _, s := range servers {
		for i := 0; i < seedPositives; i++ {
			if _, err := srv.cfg.Recorder.Add(rec(s, "seed", true, int64(i)+1)); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Per-server write progress: started is bumped before the store accepts
	// the record, done after. Negative-only writes keep trust = A/n exact.
	started := make([]atomic.Int64, len(servers))
	done := make([]atomic.Int64, len(servers))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := feedback.EntityID(fmt.Sprintf("neg-%d", w))
			for k := 0; ; k++ {
				select {
				case <-stop:
					return
				default:
				}
				si := k % len(servers)
				started[si].Add(1)
				if _, err := srv.cfg.Recorder.Add(rec(servers[si], client, false, int64(100000*(w+1)+k))); err != nil {
					t.Errorf("add: %v", err)
				}
				done[si].Add(1)
			}
		}(w)
	}

	ctx := context.Background()
	req := wire.AssessBatchRequest{Servers: servers, Threshold: 0.01}
	for round := 0; round < 200; round++ {
		doneBefore := make([]int64, len(servers))
		for i := range servers {
			doneBefore[i] = done[i].Load()
		}
		resp, err := srv.assessBatch(ctx, req)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i, item := range resp.Items {
			startedAfter := started[i].Load()
			if item.Error != nil {
				t.Fatalf("round %d: item %q failed: %+v", round, servers[i], item.Error)
			}
			tr := item.Assessment.Trust
			if tr <= 0 || tr > 1 {
				t.Fatalf("round %d: item %q trust = %v", round, servers[i], tr)
			}
			n := int64(math.Round(seedPositives / tr))
			lo := seedPositives + doneBefore[i]
			hi := seedPositives + startedAfter
			if n < lo || n > hi {
				t.Fatalf("round %d: item %q served a verdict over %d records, want within [%d, %d] — stale cache entry",
					round, servers[i], n, lo, hi)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestAssessBatchFlags pins the Cached / Incremental wire flags across every
// serving path, batch and single: accumulator serves mark Incremental,
// cache hits mark Cached, fallback recomputes mark neither, and a write
// invalidates the cache entry for exactly the written server.
func TestAssessBatchFlags(t *testing.T) {
	ctx := context.Background()
	seed := func(t *testing.T, srv *Server, s feedback.EntityID) {
		t.Helper()
		for i := 0; i < 60; i++ {
			if _, err := srv.cfg.Recorder.Add(rec(s, feedback.EntityID(rune('a'+i%4)), true, int64(i)+1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	batchFlags := func(t *testing.T, srv *Server, servers []feedback.EntityID) []wire.AssessResponse {
		t.Helper()
		resp, err := srv.assessBatch(ctx, wire.AssessBatchRequest{Servers: servers, Threshold: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]wire.AssessResponse, len(resp.Items))
		for i, item := range resp.Items {
			if item.Error != nil {
				t.Fatalf("item %q: %+v", item.Server, item.Error)
			}
			out[i] = item.AssessResponse
		}
		return out
	}

	t.Run("incremental", func(t *testing.T) {
		srv, err := New("127.0.0.1:0", Config{Assessor: testAssessor(t), Incremental: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		seed(t, srv, "a")
		seed(t, srv, "b")
		for _, got := range batchFlags(t, srv, []feedback.EntityID{"a", "b"}) {
			if !got.Incremental || got.Cached {
				t.Fatalf("accumulator-served batch item flags = incremental:%v cached:%v", got.Incremental, got.Cached)
			}
		}
		single, err := srv.assess(ctx, wire.AssessRequest{Server: "a", Threshold: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if !single.Incremental || single.Cached {
			t.Fatalf("accumulator-served single flags = incremental:%v cached:%v", single.Incremental, single.Cached)
		}
	})

	t.Run("cache", func(t *testing.T) {
		srv, err := New("127.0.0.1:0", Config{Assessor: testAssessor(t), AssessCacheSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		seed(t, srv, "a")
		seed(t, srv, "b")

		// First serve of "a" is a single-path recompute that populates the
		// cache; "b" has never been assessed.
		single, err := srv.assess(ctx, wire.AssessRequest{Server: "a", Threshold: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if single.Cached || single.Incremental {
			t.Fatalf("first single serve flags = %+v", single)
		}

		got := batchFlags(t, srv, []feedback.EntityID{"a", "b"})
		if !got[0].Cached || got[0].Incremental {
			t.Fatalf("cache-hit batch item flags = %+v", got[0])
		}
		if got[1].Cached || got[1].Incremental {
			t.Fatalf("fallback batch item flags = %+v", got[1])
		}

		// The batch recompute of "b" must itself populate the cache...
		got = batchFlags(t, srv, []feedback.EntityID{"a", "b"})
		if !got[0].Cached || !got[1].Cached {
			t.Fatalf("second batch flags = %+v", got)
		}
		// ...and a write to "a" invalidates exactly "a".
		if _, err := srv.cfg.Recorder.Add(rec("a", "z", false, 1000)); err != nil {
			t.Fatal(err)
		}
		got = batchFlags(t, srv, []feedback.EntityID{"a", "b"})
		if got[0].Cached {
			t.Fatal("batch served a stale cache entry after a write")
		}
		if !got[1].Cached {
			t.Fatalf("unwritten server lost its cache entry: %+v", got[1])
		}
		single, err = srv.assess(ctx, wire.AssessRequest{Server: "a", Threshold: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if !single.Cached {
			t.Fatal("single serve after batch recompute should hit the cache")
		}
	})
}

// TestAssessBatchValidation covers the request-level rejections and the
// per-item bad-request slot for an empty server ID.
func TestAssessBatchValidation(t *testing.T) {
	srv := startServer(t)
	ctx := context.Background()

	if _, err := srv.assessBatch(ctx, wire.AssessBatchRequest{Threshold: 0.5}); err == nil {
		t.Fatal("empty batch must fail")
	}
	big := make([]feedback.EntityID, wire.MaxAssessBatch+1)
	for i := range big {
		big[i] = feedback.EntityID(fmt.Sprintf("s%d", i))
	}
	_, err := srv.assessBatch(ctx, wire.AssessBatchRequest{Servers: big, Threshold: 0.5})
	var proto *wire.ErrorResponse
	if !errors.As(err, &proto) || proto.Code != wire.CodeBadRequest {
		t.Fatalf("oversized batch error = %v", err)
	}

	if _, err := srv.cfg.Recorder.Add(rec("known", "c", true, 1)); err != nil {
		t.Fatal(err)
	}
	resp, err := srv.assessBatch(ctx, wire.AssessBatchRequest{
		Servers: []feedback.EntityID{"known", "", "ghost"}, Threshold: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Items[0].Error != nil {
		t.Fatalf("known server failed: %+v", resp.Items[0].Error)
	}
	if e := resp.Items[1].Error; e == nil || e.Code != wire.CodeBadRequest {
		t.Fatalf("empty server item error = %+v", e)
	}
	if e := resp.Items[2].Error; e == nil || e.Code != wire.CodeUnknownServer ||
		!strings.Contains(e.Message, `"ghost"`) {
		t.Fatalf("unknown server item error = %+v", e)
	}
}

// TestAssessBatchOverWire drives the registered handler through a raw TCP
// connection: the response envelope must echo the request id as
// assess.batch.resp with items aligned to the request order.
func TestAssessBatchOverWire(t *testing.T) {
	srv := startServer(t)
	for i := 0; i < 30; i++ {
		if _, err := srv.cfg.Recorder.Add(rec("wired", "c", true, int64(i)+1)); err != nil {
			t.Fatal(err)
		}
	}
	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = nc.Close() })

	env, err := wire.Encode(wire.TypeAssessB, 42, wire.AssessBatchRequest{
		Servers: []feedback.EntityID{"wired", "ghost"}, Threshold: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.Write(nc, env); err != nil {
		t.Fatal(err)
	}
	got, err := wire.Read(bufio.NewReader(nc))
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != wire.TypeAssessBR || got.ID != 42 {
		t.Fatalf("envelope = type %s id %d", got.Type, got.ID)
	}
	var resp wire.AssessBatchResponse
	if err := wire.DecodePayload(got, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != 2 || resp.Items[0].Server != "wired" || resp.Items[1].Server != "ghost" {
		t.Fatalf("items = %+v", resp.Items)
	}
	if resp.Items[0].Error != nil || resp.Items[1].Error == nil {
		t.Fatalf("per-item outcomes = %+v", resp.Items)
	}
}
