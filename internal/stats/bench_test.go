package stats

import (
	"fmt"
	"testing"
)

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkRNGBernoulli(b *testing.B) {
	r := NewRNG(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Bernoulli(0.9)
	}
}

func BenchmarkBinomialSample(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r := NewRNG(1)
			dist := MustBinomial(n, 0.9)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = dist.Sample(r)
			}
		})
	}
}

func BenchmarkNewBinomial(b *testing.B) {
	for _, n := range []int{10, 100} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := NewBinomial(n, 0.9); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkL1HistDistance(b *testing.B) {
	dist := MustBinomial(10, 0.9)
	h := MustHistogram(10)
	r := NewRNG(1)
	for i := 0; i < 100; i++ {
		_ = h.Add(dist.Sample(r))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := L1HistDistance(h, dist); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCalibrateL1 is the ablation for the calibration-replicates
// design choice: threshold estimation cost scales linearly in replicates.
func BenchmarkCalibrateL1(b *testing.B) {
	for _, replicates := range []int{100, 500, 1000} {
		b.Run(fmt.Sprintf("replicates=%d", replicates), func(b *testing.B) {
			cfg := CalibrationConfig{Seed: 1, Replicates: replicates}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := CalibrateL1(10, 50, 0.9, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCalibratorCached shows the grid cache turning Monte-Carlo
// calibration into a map lookup (the optimisation Fig. 9 depends on).
func BenchmarkCalibratorCached(b *testing.B) {
	c := NewCalibrator(CalibrationConfig{Seed: 1, Replicates: 500}, 0)
	if _, err := c.Threshold(10, 50, 0.9); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Threshold(10, 50, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}
