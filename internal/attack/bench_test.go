package attack

import (
	"errors"
	"testing"

	"honestplayer/internal/behavior"
	"honestplayer/internal/core"
	"honestplayer/internal/stats"
	"honestplayer/internal/trust"
)

// BenchmarkStrategicRun measures a full strategic attack against the
// Scheme-2 defence — the inner loop of the Fig. 3/4 experiments.
func BenchmarkStrategicRun(b *testing.B) {
	cal := stats.NewCalibrator(stats.CalibrationConfig{Seed: 1, Replicates: 200}, 0)
	tester, err := behavior.NewMulti(behavior.Config{Calibrator: cal})
	if err != nil {
		b.Fatal(err)
	}
	assessor, err := core.NewTwoPhase(tester, trust.Average{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := stats.NewRNG(uint64(i))
		h, err := PrepareHistory("a", 300, 0.95, 50, rng)
		if err != nil {
			b.Fatal(err)
		}
		s := &Strategic{Assessor: assessor, Threshold: 0.9, GoalBad: 5}
		// ErrGoalUnreachable is a legitimate outcome: some preparation
		// histories trip the behaviour test on their own and the defence
		// simply never lets the attacker cheat within the budget.
		if _, err := s.Run(h, rng); err != nil && !errors.Is(err, ErrGoalUnreachable) {
			b.Fatal(err)
		}
	}
}
